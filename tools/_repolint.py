"""Shared infrastructure for the repo's dependency-free Python tools.

tools/lint.py (textual conventions) and tools/analyze.py (semantic
analysis over compile_commands.json) present the same interface — named
warnings enabled with -W<name>/-Wno-<name>/-Wall, a --list-warnings
table, and a --check-readme mode that keeps README.md's documentation
in lock-step with the code.  This module is the single definition of
that interface plus the C++ lexing helper both tools scan with.

Internal module (leading underscore): not a tool itself, never grows an
entry point.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

# Repo root is the parent of tools/, where this module lives.
REPO_ROOT = Path(__file__).resolve().parent.parent
README = REPO_ROOT / "README.md"


def strip_comments(text: str) -> str:
    """Remove // and /* */ comments, preserving line structure so the
    reported line numbers stay true.  String and character literals are
    blanked (quotes kept) so their contents cannot fake tokens."""
    out = []
    i, n = 0, len(text)
    while i < n:
        if text.startswith("//", i):
            j = text.find("\n", i)
            i = n if j < 0 else j
        elif text.startswith("/*", i):
            j = text.find("*/", i + 2)
            end = n if j < 0 else j + 2
            out.append("\n" * text.count("\n", i, end))
            i = end
        elif text[i] in "\"'":
            quote = text[i]
            out.append(quote)
            i += 1
            while i < n and text[i] != quote:
                out.append(" " if text[i] != "\n" else "\n")
                i += 2 if text[i] == "\\" else 1
            if i < n:
                out.append(quote)
                i += 1
        else:
            out.append(text[i])
            i += 1
    return "".join(out)


def source_files(subdirs, root: Path = REPO_ROOT):
    """All .hpp/.cpp files under the given subdirectories of root, in a
    deterministic order."""
    for subdir in subdirs:
        base = root / subdir
        if base.is_dir():
            yield from sorted(base.rglob("*.hpp"))
            yield from sorted(base.rglob("*.cpp"))


def parse_warning_flags(parser, flags, warnings):
    """Resolve -Wall / -W<name> / -Wno-<name> flags against the given
    warning table (name -> description).  Default — no positive -W flag
    at all — is everything enabled, matching the compilers' spirit of
    'the gate runs whole unless narrowed'.  Unknown names are fatal via
    parser.error."""
    enabled = set(warnings) if not any(
        f.startswith("-W") and not f.startswith("-Wno-") and f != "-Wall"
        for f in flags) else set()
    for flag in flags:
        if flag == "-Wall":
            enabled = set(warnings)
        elif flag.startswith("-Wno-"):
            name = flag[len("-Wno-"):]
            if name not in warnings:
                parser.error(f"unknown warning: {flag}")
            enabled.discard(name)
        elif flag.startswith("-W"):
            name = flag[len("-W"):]
            if name not in warnings:
                parser.error(f"unknown warning: {flag}")
            enabled.add(name)
        else:
            parser.error(f"unrecognised argument: {flag}")
    return enabled


def readme_table_lines(warnings):
    """The warning table as it must appear verbatim in README.md."""
    return [f"| `-W{name}` | {description} |"
            for name, description in warnings.items()]


def check_readme(warnings, readme: Path = README):
    """Verify README.md reproduces every warning row verbatim; returns
    the number of missing rows."""
    if not readme.is_file():
        print(f"{readme.name}: missing — cannot verify the warning table")
        return 1
    text = readme.read_text(encoding="utf-8")
    failures = 0
    for line in readme_table_lines(warnings):
        if line not in text:
            print(f"{readme.name}: warning table out of sync — "
                  f"missing row: {line}")
            failures += 1
    return failures


def make_parser(doc, warnings):
    """The common argument surface: --list-warnings, --check-readme and
    the trailing -W flag list.  Tools add their own options on top."""
    parser = argparse.ArgumentParser(
        add_help=True,
        description=doc,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--list-warnings", action="store_true",
                        help="print the warning table and exit")
    parser.add_argument("--check-readme", action="store_true",
                        help="also verify README.md documents every warning")
    parser.add_argument("flags", nargs="*", metavar="-W...",
                        help="-Wall, -W<name>, -Wno-<name>")
    return parser


def list_warnings(warnings, stream=sys.stdout):
    width = max(len(name) for name in warnings) + 2
    for name, description in warnings.items():
        print(f"-W{name:<{width}} {description}", file=stream)
