#!/usr/bin/env python3
"""Prometheus text-exposition validator for the telemetry layer.

Checks a metrics dump (`sharded_service --metrics-dump FILE`, or any
`telemetry::write_prometheus` output) against the exposition grammar
and the histogram invariants a scraper relies on:

  * every sample line parses as  name[{labels}] value
  * a family's # TYPE line precedes its samples, one TYPE per family
  * counter/gauge families expose plain samples only; histogram
    families expose only _bucket/_sum/_count samples
  * histogram buckets are cumulative (monotone non-decreasing in le),
    the le="+Inf" bucket is present and equals the _count sample, and
    every series has exactly one _sum and one _count
  * no duplicate series (same name + identical label set)

Exit 0 when the file is valid, 1 with one message per violation
otherwise.  Dependency-free; runs as a ctest
(`ctest -R metrics_exposition`) against a live dump.

    tools/check_metrics.py build/metrics-exposition/metrics.prom
"""

from __future__ import annotations

import math
import re
import sys

NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
LABEL_NAME = r"[a-zA-Z_][a-zA-Z0-9_]*"
HELP_LINE = re.compile(rf"^# HELP ({NAME}) (.*)$")
TYPE_LINE = re.compile(rf"^# TYPE ({NAME}) (counter|gauge|histogram)$")
SAMPLE_LINE = re.compile(rf"^({NAME})(\{{.*\}})? (\S+)$")
LABEL_PAIR = re.compile(rf'({LABEL_NAME})="((?:[^"\\]|\\.)*)"')

HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def parse_value(text):
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)  # raises ValueError on garbage


def parse_labels(block, errors, lineno):
    """`{a="1",b="2"}` -> ordered (name, value) list, or None on bad
    syntax."""
    if block is None:
        return []
    inner = block[1:-1]
    labels = []
    pos = 0
    while pos < len(inner):
        match = LABEL_PAIR.match(inner, pos)
        if not match:
            errors.append(f"line {lineno}: malformed label block: {block}")
            return None
        labels.append((match.group(1), match.group(2)))
        pos = match.end()
        if pos < len(inner):
            if inner[pos] != ",":
                errors.append(f"line {lineno}: expected ',' in labels: {block}")
                return None
            pos += 1
    names = [name for name, _ in labels]
    if len(names) != len(set(names)):
        errors.append(f"line {lineno}: duplicate label name in {block}")
        return None
    return labels


def family_of(name, types):
    """The family a sample belongs to: histogram samples carry a
    _bucket/_sum/_count suffix on the family name."""
    if name in types:
        return name
    for suffix in HISTOGRAM_SUFFIXES:
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if types.get(base) == "histogram":
                return base
    return None


def validate(path):
    errors = []
    try:
        with open(path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except OSError as error:
        return [f"{path}: {error}"]

    types = {}  # family -> type
    # (family, frozenset(labels minus le)) -> {"buckets": [(le, v)],
    # "sum": v or None, "count": v or None}
    histograms = {}
    scalar_series = set()

    for lineno, line in enumerate(lines, 1):
        if not line:
            continue
        if line.startswith("#"):
            if HELP_LINE.match(line):
                continue
            type_match = TYPE_LINE.match(line)
            if type_match:
                family = type_match.group(1)
                if family in types:
                    errors.append(
                        f"line {lineno}: duplicate # TYPE for {family}")
                types[family] = type_match.group(2)
                continue
            errors.append(f"line {lineno}: malformed comment line: {line}")
            continue

        sample = SAMPLE_LINE.match(line)
        if not sample:
            errors.append(f"line {lineno}: unparseable sample: {line}")
            continue
        name, label_block, value_text = sample.groups()
        try:
            value = parse_value(value_text)
        except ValueError:
            errors.append(f"line {lineno}: bad sample value: {value_text}")
            continue
        labels = parse_labels(label_block, errors, lineno)
        if labels is None:
            continue
        family = family_of(name, types)
        if family is None:
            errors.append(
                f"line {lineno}: sample {name} has no preceding # TYPE")
            continue

        if types[family] == "histogram":
            if name == family:
                errors.append(
                    f"line {lineno}: histogram {family} exposes a bare "
                    "sample — expected _bucket/_sum/_count")
                continue
            le = [v for k, v in labels if k == "le"]
            base_labels = frozenset(
                (k, v) for k, v in labels if k != "le")
            series = histograms.setdefault(
                (family, base_labels),
                {"buckets": [], "sum": None, "count": None, "line": lineno})
            if name.endswith("_bucket"):
                if len(le) != 1:
                    errors.append(
                        f"line {lineno}: _bucket sample without a single "
                        "le label")
                    continue
                series["buckets"].append((le[0], value, lineno))
            elif le:
                errors.append(
                    f"line {lineno}: le label outside a _bucket sample")
            elif name.endswith("_sum"):
                if series["sum"] is not None:
                    errors.append(f"line {lineno}: duplicate _sum for "
                                  f"{family}{dict(base_labels)}")
                series["sum"] = value
            else:
                if series["count"] is not None:
                    errors.append(f"line {lineno}: duplicate _count for "
                                  f"{family}{dict(base_labels)}")
                series["count"] = value
        else:
            if name != family:
                errors.append(
                    f"line {lineno}: {name} collides with {types[family]} "
                    f"family {family}")
                continue
            key = (name, frozenset(labels))
            if key in scalar_series:
                errors.append(f"line {lineno}: duplicate series {line}")
            scalar_series.add(key)
            if types[family] == "counter" and (
                    value < 0 or math.isnan(value)):
                errors.append(
                    f"line {lineno}: counter {name} has non-monotone "
                    f"value {value_text}")

    for (family, base_labels), series in sorted(
            histograms.items(), key=lambda item: repr(item[0])):
        where = f"{family}{{{', '.join(f'{k}={v}' for k, v in sorted(base_labels))}}}"
        buckets = series["buckets"]
        if not buckets or buckets[-1][0] != "+Inf":
            errors.append(f"{where}: missing le=\"+Inf\" bucket")
            continue
        bounds = []
        for le, _, lineno in buckets[:-1]:
            try:
                bounds.append(parse_value(le))
            except ValueError:
                errors.append(f"line {lineno}: bad le bound {le!r}")
        if bounds != sorted(bounds) or len(bounds) != len(set(bounds)):
            errors.append(f"{where}: le bounds not strictly increasing")
        counts = [value for _, value, _ in buckets]
        if any(b > a for b, a in zip(counts, counts[1:])):
            errors.append(f"{where}: bucket counts not cumulative")
        if series["count"] is None:
            errors.append(f"{where}: missing _count sample")
        elif series["count"] != counts[-1]:
            errors.append(
                f"{where}: le=\"+Inf\" bucket ({counts[-1]:g}) != _count "
                f"({series['count']:g})")
        if series["sum"] is None:
            errors.append(f"{where}: missing _sum sample")

    return errors


def main(argv):
    if len(argv) != 1:
        print("usage: check_metrics.py METRICS_FILE", file=sys.stderr)
        return 2
    errors = validate(argv[0])
    for error in errors:
        print(f"{argv[0]}: {error}")
    if errors:
        print(f"check_metrics: {len(errors)} violation(s)")
        return 1
    print(f"check_metrics: {argv[0]} is valid")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
