"""Semantic analysis suite behind tools/analyze.py.

Three analyses, all stdlib-only and driven by the build tree's
compile_commands.json plus the architecture manifest layers.toml:

- include_graph: transitive project-include graph per TU, checked
  against the explicit layer DAG (``-Wlayer``) and for cycles
  (``-Winclude-cycle``), with Graphviz emission for ARCHITECTURE.md.
- lock_order: static lock-order deadlock detection over the annotated
  util/sync.hpp guard sites and an approximated call graph
  (``-Wlock-order``).
- noexcept_audit: atomic-publish functions checked noexcept-clean from
  the first guarded write to the end of the exclusive section
  (``-Wswap-noexcept``).

cpp_scan holds the shared approximate C++ scanner; manifest loads
layers.toml and the named-suppression baseline (suppressions.toml,
shipped empty).
"""

from dataclasses import dataclass


@dataclass
class Finding:
    """One analyzer hit: a warning name, a location, a human message,
    and a stable id the suppression baseline can name."""

    warning: str
    path: str
    line: int
    message: str
    id: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [-W{self.warning}] {self.message}"
