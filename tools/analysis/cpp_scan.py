"""Approximate C++ scanner shared by the lock-order and noexcept
analyses.

This is a brace-tracking lexical scanner, not a parser: it classifies
every `{` in a comment-stripped file as namespace / class / function /
lambda / control-or-init block, extracts function definitions with
their (class-qualified) names, records the util/sync.hpp guard
acquisitions inside each function with exact block scoping, and
collects the unqualified call sites used to approximate the call
graph.

Known approximations, by design:
- Lambda bodies are treated as deferred execution: locks held at the
  point a lambda is *written* are not considered held inside it, and a
  function's transitive-acquisition closure excludes what only its
  lambdas acquire.  Immediately-invoked lambdas are therefore under-
  approximated; task/factory lambdas (the dominant use) are exact.
- Calls through std::function or other type-erased values are
  invisible.
- Method calls record their receiver chain (`state_->delta` in
  `state_->delta->delete_row(r)`), and the receiver's class is
  resolved through declared member types and local declarations; a
  resolved receiver restricts callee candidates to that class, and a
  receiver that resolves to a type defining no such method (a std
  container's `clear()`, say) contributes nothing to the call graph.
  When the receiver cannot be resolved, the call falls back to
  matching every class method of that unqualified name — the safe,
  over-connecting direction for deadlock detection, which the named
  suppression baseline exists to trim — with a justification — if it
  ever manufactures a cycle.
"""

from __future__ import annotations

import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from _repolint import strip_comments  # noqa: E402

KEYWORDS = {
    "if", "for", "while", "switch", "return", "catch", "sizeof", "alignof",
    "decltype", "new", "delete", "throw", "static_cast", "dynamic_cast",
    "const_cast", "reinterpret_cast", "noexcept", "assert", "static_assert",
    "defined", "alignas", "typeid", "co_await", "co_return", "co_yield",
}
CONTROL = {"if", "for", "while", "switch", "catch", "do", "try", "else"}

MUTEX_DECL = re.compile(r"util::(?:Mutex|SharedMutex)\s+(\w+)\b")
GUARDED_DECL = re.compile(r"(\w+)\s+TOPK_GUARDED_BY\s*\(")
CALL = re.compile(r"([A-Za-z_]\w*)\s*\(")
RECEIVER = re.compile(
    r"([A-Za-z_]\w*(?:\s*(?:\.|->)\s*[A-Za-z_]\w*)*)\s*(?:\.|->)\s*$")
MEMBER_PIECE = re.compile(
    r"(?:(?:public|private|protected)\s*:\s*)?"
    r"(?:mutable\s+|static\s+|inline\s+|constexpr\s+)*"
    r"(?:const\s+)?"
    r"([A-Za-z_][\w:]*(?:<[^;]*>)?)\s*[&*]?\s+"
    r"(\w+)\s*"
    r"(?:TOPK_GUARDED_BY\s*\([^)]*\)\s*)?"
    r"(?:=[^;]*)?$")
MEMBER_SKIP = re.compile(
    r"\s*(?:using|typedef|friend|template|struct|class|enum|union)\b")
SMART_PTR = re.compile(
    r"(?:std::)?(?:shared_ptr|unique_ptr|weak_ptr|atomic|optional)"
    r"\s*<\s*(?:const\s+)?(.*)>\s*$")
FUNC_NAME = re.compile(r"((?:~?\w+\s*::\s*)*~?\w+)\s*$")
LAMBDA_TAIL = re.compile(
    r"\[[^\[\]]*\]\s*"
    r"(?:\([^()]*(?:\([^()]*\)[^()]*)*\)\s*)?"
    r"(?:mutable\b\s*)?(?:noexcept\b[^{;]*)?(?:->[^{;]*)?$")


@dataclass
class Acquisition:
    lock: str        # resolved class-qualified identity
    guard: str       # MutexLock / WriterLock / ReaderLock
    line: int
    offset: int      # offset of the acquisition in the stripped text
    block_open: int  # offset of the enclosing block's '{'
    held: tuple      # lock identities held at this point
    in_lambda: bool


@dataclass
class CallSite:
    name: str
    line: int
    held: tuple
    in_lambda: bool
    receiver: str = ""        # receiver chain for x.f() / x->f(), else ""
    receiver_class: str = ""  # resolved class of the receiver, else ""


@dataclass
class Function:
    qualname: str
    cls: str
    path: Path
    header: str
    start: int  # offset of the body '{'
    end: int    # offset of the matching '}'
    line: int
    acquisitions: list[Acquisition] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.qualname.rsplit("::", 1)[-1]


@dataclass
class FileModel:
    path: Path
    text: str
    functions: list[Function]
    classes: dict[str, set]       # class -> mutex member names
    guarded_members: set
    brace_kind: dict              # open-brace offset -> kind
    brace_match: dict              # open-brace offset -> close offset
    member_types: dict[str, dict] = field(default_factory=dict)
    # class -> {data member -> stripped type name}, for receiver typing

    def line_of(self, offset: int) -> int:
        return self.text.count("\n", 0, offset) + 1


def _first_toplevel_paren(chunk: str) -> int:
    """Offset of the first '(' outside <> / [] nesting, or -1."""
    angle = square = 0
    for i, c in enumerate(chunk):
        if c == "<":
            angle += 1
        elif c == ">":
            angle = max(0, angle - 1)
        elif c == "[":
            square += 1
        elif c == "]":
            square = max(0, square - 1)
        elif c == "(" and angle == 0 and square == 0:
            return i
    return -1


def _classify(chunk: str, stack: list) -> tuple:
    """Classify the block opened after `chunk`: returns (kind, name)."""
    s = chunk.strip()
    enclosing = stack[-1][0] if stack else "namespace"
    if enclosing in ("namespace", "class"):
        m = re.search(r"\bnamespace\b\s*([\w:]*)\s*$", s)
        if m:
            return "namespace", m.group(1)
        m = re.search(r"\b(?:class|struct|union)\s+(?:TOPK_\w+\s*(?:\([^)]*\)\s*)?)?(\w+)"
                      r"(?:\s+final)?(?:\s*:[^{;]*)?$", s)
        if m:
            return "class", m.group(1)
        if re.search(r"\benum\b", s):
            return "class", ""
        # Top-level `= { ... }` initializers (arrays, constexpr tables).
        if s.endswith("=") or re.search(r"=\s*$", s):
            return "plain", ""
        if LAMBDA_TAIL.search(s) and "[" in s:
            return "lambda", ""
        first = s.split(None, 1)[0] if s else ""
        if first in CONTROL:
            return "plain", ""
        paren = _first_toplevel_paren(s)
        if paren > 0:
            m = FUNC_NAME.search(s[:paren].rstrip())
            if m and m.group(1).split("::")[-1] not in KEYWORDS:
                name = re.sub(r"\s+", "", m.group(1))
                return "function", name
        return "plain", ""
    # Inside a function body: only lambdas and plain blocks.
    if "[" in s and LAMBDA_TAIL.search(s):
        return "lambda", ""
    return "plain", ""


def _strip_type(decl: str) -> str:
    """Bare class name of a declared type: unwraps one smart-pointer
    layer, drops template arguments and namespace qualification."""
    decl = decl.strip()
    m = SMART_PTR.fullmatch(decl)
    if m:
        decl = m.group(1).strip()
    decl = re.sub(r"<.*", "", decl)
    return decl.rstrip("&* \t").rsplit("::", 1)[-1]


def _class_members(body: str) -> dict:
    """{member name -> stripped type} from a class body whose nested
    blocks have already been blanked out."""
    members: dict[str, str] = {}
    for piece in body.split(";"):
        piece = re.sub(r"TOPK_GUARDED_BY\s*\([^)]*\)", "",
                       piece).strip()
        if not piece or "(" in piece or MEMBER_SKIP.match(piece):
            continue
        m = MEMBER_PIECE.fullmatch(piece)
        if m:
            members[m.group(2)] = _strip_type(m.group(1))
    return members


def parse_file(path: Path, text: str | None = None) -> FileModel:
    if text is None:
        text = path.read_text(encoding="utf-8")
    text = strip_comments(text)
    functions: list[Function] = []
    classes: dict[str, set] = {}
    member_types: dict[str, dict] = {}
    guarded = set(m.group(1) for m in GUARDED_DECL.finditer(text))
    brace_kind: dict = {}
    brace_match: dict = {}
    stack: list = []   # [kind, name, open_offset, nested-block holes]
    boundary = 0
    for i, c in enumerate(text):
        if c == ";":
            boundary = i + 1
        elif c == "{":
            kind, name = _classify(text[boundary:i], stack)
            if kind == "function":
                # Qualify with the enclosing class for in-class bodies.
                encl_class = next((f[1] for f in reversed(stack)
                                   if f[0] == "class" and f[1]), "")
                if encl_class and "::" not in name:
                    name = f"{encl_class}::{name}"
            brace_kind[i] = kind
            stack.append([kind, name, i, []])
            if kind == "function":
                functions.append(Function(
                    qualname=name,
                    cls=name.rsplit("::", 1)[0] if "::" in name else next(
                        (f[1] for f in reversed(stack[:-1])
                         if f[0] == "class" and f[1]), ""),
                    path=path,
                    header=text[boundary:i],
                    start=i,
                    end=-1,
                    line=text.count("\n", 0, i) + 1,
                ))
            boundary = i + 1
        elif c == "}":
            if stack:
                kind, name, open_off, holes = stack.pop()
                brace_match[open_off] = i
                if stack:
                    stack[-1][3].append((open_off, i))
                if kind == "function":
                    for fn in reversed(functions):
                        if fn.start == open_off:
                            fn.end = i
                            break
                elif kind == "class" and name:
                    # Blank direct nested blocks (methods, nested
                    # classes, default initialisers) so only this
                    # class's own top-level declarations are read.
                    segs, pos = [], open_off + 1
                    for h_open, h_close in sorted(holes):
                        segs.append(text[pos:h_open])
                        segs.append(" " * (h_close - h_open + 1))
                        pos = h_close + 1
                    segs.append(text[pos:i])
                    body = "".join(segs)
                    members = classes.setdefault(name, set())
                    for m in MUTEX_DECL.finditer(body):
                        members.add(m.group(1))
                    member_types.setdefault(name, {}).update(
                        _class_members(body))
            boundary = i + 1
    model = FileModel(path=path, text=text, functions=functions,
                      classes=classes, guarded_members=guarded,
                      brace_kind=brace_kind, brace_match=brace_match,
                      member_types=member_types)
    return model


def _read_parens(text: str, open_paren: int) -> tuple:
    """Contents of a balanced paren group starting at open_paren."""
    depth = 0
    for i in range(open_paren, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return text[open_paren + 1:i], i + 1
    return text[open_paren + 1:], len(text)


def _infer_type(root: str, fn: Function, model: FileModel) -> str:
    """Best-effort local type of `root` from the function body and
    signature: references, shared_ptr declarations, make_shared."""
    scope = fn.header + model.text[fn.start:fn.end]
    m = re.search(
        rf"std::shared_ptr<\s*(?:const\s+)?([\w:]+)\s*>\s*&?\s*{root}\b",
        scope)
    if m:
        return m.group(1).rsplit("::", 1)[-1]
    m = re.search(rf"\b{root}\s*=\s*std::make_shared<\s*([\w:]+)", scope)
    if m:
        return m.group(1).rsplit("::", 1)[-1]
    m = re.search(rf"([A-Za-z_][\w:]*)\s*[&*]\s*{root}\b", scope)
    if m and m.group(1) not in ("const", "auto", "return"):
        return m.group(1).rsplit("::", 1)[-1]
    m = re.search(
        rf"(?:^|[;{{(,])\s*(?:const\s+)?"
        rf"([A-Za-z_][\w:]*(?:<[^<>;]*>)?)\s+{root}\s*[;=({{]", scope)
    if m and m.group(1).split("::")[0] not in (
            "auto", "return", "delete", "new", "else", "case", "using"):
        return _strip_type(m.group(1))
    return ""


def resolve_receiver(receiver: str, callee: str, fn: Function,
                     model: FileModel, member_types: dict,
                     method_owners: dict) -> str:
    """Best-effort class of a method call's receiver chain.  Empty
    string when nothing credible resolves — the caller then falls back
    to name matching."""
    parts = [p.strip() for p in re.split(r"->|\.", receiver) if p.strip()]
    if not parts:
        return ""
    if parts[0] == "this":
        cur = fn.cls
    else:
        root = parts[0]
        cur = _infer_type(root, fn, model)
        if not cur:
            cur = member_types.get(fn.cls, {}).get(root, "")
        if not cur:
            types = {ms[root] for ms in member_types.values() if root in ms}
            if len(types) == 1:
                cur = next(iter(types))
    for part in parts[1:]:
        if not cur:
            break
        cur = member_types.get(cur, {}).get(part, "")
    if cur:
        return cur
    # The chain didn't resolve end to end (auto roots, loop bindings):
    # fall back to the owners of the final link, preferring the unique
    # type that actually defines the called method.
    last = parts[-1]
    types = {ms[last] for ms in member_types.values() if last in ms}
    defined = {t for t in types if callee in method_owners.get(t, ())}
    if len(defined) == 1:
        return next(iter(defined))
    if len(types) == 1:
        return next(iter(types))
    return ""


def resolve_lock(expr: str, fn: Function, model: FileModel,
                 all_classes: dict) -> str:
    """Class-qualified identity of a guard's lock expression."""
    expr = expr.strip().lstrip("&*").strip()
    parts = re.split(r"->|\.", expr)
    parts = [p.strip() for p in parts if p.strip()]
    if not parts:
        return f"{fn.path.stem}::<unknown>"
    if len(parts) == 1:
        name = parts[0]
        if fn.cls and name in all_classes.get(fn.cls, ()):
            return f"{fn.cls}::{name}"
        if re.search(rf"util::(?:Mutex|SharedMutex)\s+{name}\b",
                     model.text[fn.start:fn.end]):
            return f"{fn.qualname}::{name}"  # function-local lock
        owners = sorted(c for c, ms in all_classes.items() if name in ms)
        if len(owners) == 1:
            return f"{owners[0]}::{name}"
        return f"{fn.path.stem}::{name}"
    root, member = parts[0], parts[-1]
    inferred = _infer_type(root, fn, model)
    if inferred and member in all_classes.get(inferred, ()):
        return f"{inferred}::{member}"
    owners = sorted(c for c, ms in all_classes.items() if member in ms)
    if len(owners) == 1:
        return f"{owners[0]}::{member}"
    return f"{fn.path.stem}::{member}"


def scan_function(fn: Function, model: FileModel, all_classes: dict,
                  guard_names: tuple, member_types: dict | None = None,
                  method_owners: dict | None = None) -> None:
    """Populate fn.acquisitions and fn.calls with exact block scoping:
    a guard's lock is held from its statement to the closing brace of
    its block; lambda openings act as held-set barriers."""
    text = model.text
    member_types = member_types or {}
    method_owners = method_owners or {}
    guard_re = re.compile(
        r"util::(" + "|".join(guard_names) + r")\s+\w+\s*\(")
    frames = [{"open": fn.start, "barrier": False, "locks": []}]

    def held() -> tuple:
        out = []
        for frame in reversed(frames):
            out.extend(frame["locks"])
            if frame["barrier"]:
                break
        return tuple(reversed(out))

    def in_lambda() -> bool:
        return any(f["barrier"] for f in frames)

    i = fn.start + 1
    while i < fn.end:
        c = text[i]
        if c == "{":
            frames.append({"open": i,
                           "barrier": model.brace_kind.get(i) == "lambda",
                           "locks": []})
            i += 1
            continue
        if c == "}":
            if len(frames) > 1:
                frames.pop()
            i += 1
            continue
        m = guard_re.match(text, i)
        if m:
            expr, after = _read_parens(text, text.index("(", m.end() - 1))
            lock = resolve_lock(expr, fn, model, all_classes)
            fn.acquisitions.append(Acquisition(
                lock=lock, guard=m.group(1),
                line=model.line_of(i), offset=i,
                block_open=frames[-1]["open"],
                held=held(), in_lambda=in_lambda()))
            frames[-1]["locks"].append(lock)
            i = after
            continue
        m = CALL.match(text, i)
        if m and (i == 0 or not (text[i - 1].isalnum()
                                 or text[i - 1] in "_:~")):
            name = m.group(1)
            if name not in KEYWORDS and not name[0].isupper():
                receiver = ""
                if text[i - 1] in ".>":
                    rm = RECEIVER.search(text, max(fn.start, i - 200), i)
                    if rm:
                        receiver = re.sub(r"\s+", "", rm.group(1))
                receiver_class = resolve_receiver(
                    receiver, name, fn, model, member_types,
                    method_owners) if receiver else ""
                fn.calls.append(CallSite(
                    name=name, line=model.line_of(i),
                    held=held(), in_lambda=in_lambda(),
                    receiver=receiver, receiver_class=receiver_class))
            i = m.end() - 1  # rescan from '(' so nested args are seen
            continue
        i += 1


def scan_tree(files, guard_names: tuple):
    """Parse and scan every file; returns (models, all_classes)."""
    models = []
    all_classes: dict[str, set] = {}
    member_types: dict[str, dict] = {}
    method_owners: dict[str, set] = {}
    for path in files:
        model = parse_file(path)
        models.append(model)
        for cls, members in model.classes.items():
            all_classes.setdefault(cls, set()).update(members)
        for cls, types in model.member_types.items():
            member_types.setdefault(cls, {}).update(types)
        for fn in model.functions:
            if fn.cls:
                method_owners.setdefault(fn.cls, set()).add(fn.name)
    for model in models:
        for fn in model.functions:
            scan_function(fn, model, all_classes, guard_names,
                          member_types, method_owners)
    return models, all_classes
