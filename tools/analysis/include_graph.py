"""Include-graph construction and architecture layering gate
(-Wlayer, -Winclude-cycle), plus Graphviz emission.

TUs come from the build tree's compile_commands.json (include search
dirs are read from each entry's -I flags); without a build tree the
analyzer falls back to treating every src/**/*.cpp as a TU with
src/ as the lone include root.  Only project (quoted) includes are
followed; system headers are out of scope.

A module is a first-level directory under src/.  The layer manifest
(layers.toml) assigns each module a tier; an include edge is legal
when the including module's tier is >= the included module's tier
(same-tier edges allowed), and the module graph must be acyclic.
Cross-cutting modules are checked against their explicit allow-lists
instead of tiers.
"""

from __future__ import annotations

import json
import re
import shlex
from pathlib import Path

from . import Finding

INCLUDE = re.compile(r'^\s*#\s*include\s+"([^"]+)"', re.M)


def load_tus(build_dir: Path, repo_root: Path):
    """(tu_paths, include_dirs) from compile_commands.json, or the
    src-walk fallback."""
    cc = build_dir / "compile_commands.json"
    src_root = repo_root / "src"
    if not cc.is_file():
        return sorted(src_root.rglob("*.cpp")), [src_root]
    entries = json.loads(cc.read_text(encoding="utf-8"))
    tus = []
    include_dirs = set()
    for entry in entries:
        directory = Path(entry.get("directory", "."))
        file = Path(entry["file"])
        if not file.is_absolute():
            file = directory / file
        file = file.resolve()
        if repo_root not in file.parents:
            continue  # generated / external TU (e.g. googletest)
        tus.append(file)
        args = entry.get("arguments")
        if args is None:
            args = shlex.split(entry.get("command", ""))
        for i, arg in enumerate(args):
            if arg.startswith("-I") and len(arg) > 2:
                include_dirs.add((directory / arg[2:]).resolve())
            elif arg == "-I" and i + 1 < len(args):
                include_dirs.add((directory / args[i + 1]).resolve())
    if src_root.is_dir():
        include_dirs.add(src_root)
    return sorted(set(tus)), sorted(include_dirs)


def build_file_graph(tus, include_dirs, repo_root: Path):
    """file -> [(included file, line)] over project includes, expanded
    transitively from the TUs."""
    graph: dict[Path, list] = {}
    queue = list(tus)
    while queue:
        path = queue.pop()
        if path in graph or not path.is_file():
            continue
        text = path.read_text(encoding="utf-8", errors="replace")
        out = []
        for m in INCLUDE.finditer(text):
            target = None
            for base in [path.parent, *include_dirs]:
                candidate = (base / m.group(1)).resolve()
                if candidate.is_file() and repo_root in candidate.parents:
                    target = candidate
                    break
            if target is not None:
                line = text.count("\n", 0, m.start()) + 1
                out.append((target, line))
                queue.append(target)
        graph[path] = out
    return graph


def module_of(path: Path, repo_root: Path):
    """src/<module>/... -> module; files outside src/ have none (tests,
    benches and examples are unconstrained by the layer table)."""
    try:
        rel = path.relative_to(repo_root / "src")
    except ValueError:
        return None
    return rel.parts[0] if len(rel.parts) > 1 else None


def module_edges(file_graph, repo_root: Path):
    """(from_module, to_module) -> example (path, line, target)."""
    edges: dict[tuple, tuple] = {}
    for path, includes in sorted(file_graph.items()):
        m_from = module_of(path, repo_root)
        if m_from is None:
            continue
        for target, line in includes:
            m_to = module_of(target, repo_root)
            if m_to is None or m_to == m_from:
                continue
            edges.setdefault((m_from, m_to), (path, line, target))
    return edges


def _cycles(adjacency):
    """All elementary cycles found by DFS; returned normalised (rotated
    to the lexicographically smallest member) and deduplicated."""
    cycles = set()
    nodes = sorted(adjacency)

    def dfs(node, path, on_path):
        for nxt in sorted(adjacency.get(node, ())):
            if nxt in on_path:
                cycle = path[path.index(nxt):]
                pivot = cycle.index(min(cycle))
                cycles.add(tuple(cycle[pivot:] + cycle[:pivot]))
            elif len(path) < 64:
                dfs(nxt, path + [nxt], on_path | {nxt})

    for start in nodes:
        dfs(start, [start], {start})
    return sorted(cycles)


def check(manifest, edges, file_graph, repo_root: Path):
    findings = []

    def rel(path):
        try:
            return str(path.relative_to(repo_root))
        except ValueError:
            return str(path)

    # Unknown modules: every directory under src/ must be placed.
    placed = set(manifest.rank) | set(manifest.crosscutting)
    seen = sorted({m for pair in edges for m in pair}
                  | {module_of(p, repo_root) for p in file_graph
                     if module_of(p, repo_root)})
    for module in seen:
        if module not in placed:
            findings.append(Finding(
                warning="layer", path=f"src/{module}", line=1,
                message=(f"module '{module}' is not placed in "
                         "tools/analysis/layers.toml — every src/ module "
                         "must have an explicit tier"),
                id=f"layer:unplaced:{module}"))

    for (m_from, m_to), (path, line, target) in sorted(edges.items()):
        if m_from not in placed or m_to not in placed:
            continue  # already reported as unplaced
        detail = f"'{rel(path)}' includes '{rel(target)}'"
        if m_from in manifest.crosscutting:
            allowed = manifest.crosscutting[m_from].may_include
            if m_to not in allowed:
                findings.append(Finding(
                    warning="layer", path=rel(path), line=line,
                    message=(f"cross-cutting module '{m_from}' may only "
                             f"include {allowed}, not '{m_to}' ({detail})"),
                    id=f"layer:{m_from}->{m_to}"))
            continue
        if m_to in manifest.crosscutting:
            allowed = manifest.crosscutting[m_to].importable_from
            if m_from not in allowed:
                findings.append(Finding(
                    warning="layer", path=rel(path), line=line,
                    message=(f"'{m_from}' may not include cross-cutting "
                             f"'{m_to}' (importable from {allowed} only; "
                             f"{detail})"),
                    id=f"layer:{m_from}->{m_to}"))
            continue
        if manifest.rank[m_from] < manifest.rank[m_to]:
            findings.append(Finding(
                warning="layer", path=rel(path), line=line,
                message=(f"layering violation: '{m_from}' (tier "
                         f"{manifest.rank[m_from]}) includes '{m_to}' "
                         f"(tier {manifest.rank[m_to]}) — dependencies "
                         f"must point downward ({detail})"),
                id=f"layer:{m_from}->{m_to}"))

    # Module-level cycles (covers same-tier back edges).
    adjacency: dict[str, set] = {}
    for (m_from, m_to) in edges:
        adjacency.setdefault(m_from, set()).add(m_to)
    for cycle in _cycles(adjacency):
        example = edges[(cycle[0], cycle[1 % len(cycle)])]
        findings.append(Finding(
            warning="include-cycle", path=rel(example[0]), line=example[1],
            message=("module include cycle: "
                     + " -> ".join(cycle + (cycle[0],))),
            id="include-cycle:" + "->".join(cycle)))

    # File-level cycles (pragma-once hides them at compile time when
    # the entry order is lucky; they are still architecture rot).
    file_adj = {p: {t for t, _ in incs} for p, incs in file_graph.items()}
    for cycle in _cycles(file_adj):
        names = tuple(rel(p) for p in cycle)
        findings.append(Finding(
            warning="include-cycle", path=names[0], line=1,
            message=("file include cycle: "
                     + " -> ".join(names + (names[0],))),
            id="include-cycle:" + "->".join(names)))
    return findings


def to_dot(manifest, edges) -> str:
    """Graphviz rendering of the module graph grouped by tier."""
    lines = [
        "// Generated by tools/analyze.py --dot; the layer table lives",
        "// in tools/analysis/layers.toml.",
        "digraph architecture {",
        "  rankdir=BT;",
        "  node [shape=box, fontname=\"Helvetica\"];",
    ]
    tier_names = ["foundation", "formats", "kernels", "indexing",
                  "durability", "serving"]
    for tier, modules in enumerate(manifest.layers):
        label = tier_names[tier] if tier < len(tier_names) else f"tier {tier}"
        lines.append(f"  subgraph cluster_{tier} {{")
        lines.append(f"    label=\"{label}\"; style=dashed;")
        for module in modules:
            lines.append(f"    \"{module}\";")
        lines.append("  }")
    for name in manifest.crosscutting:
        lines.append(f"  \"{name}\" [style=filled, fillcolor=lightgrey];")
    for (m_from, m_to) in sorted(edges):
        lines.append(f"  \"{m_from}\" -> \"{m_to}\";")
    lines.append("}")
    return "\n".join(lines) + "\n"


def run(build_dir: Path, repo_root: Path, manifest, dot_path=None):
    tus, include_dirs = load_tus(build_dir, repo_root)
    file_graph = build_file_graph(tus, include_dirs, repo_root)
    edges = module_edges(file_graph, repo_root)
    findings = check(manifest, edges, file_graph, repo_root)
    if dot_path is not None:
        dot = Path(dot_path)
        dot.parent.mkdir(parents=True, exist_ok=True)
        dot.write_text(to_dot(manifest, edges), encoding="utf-8")
    return findings
