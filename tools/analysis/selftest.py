#!/usr/bin/env python3
"""Self-test for tools/analyze.py over synthetic source trees.

Each case materialises a miniature repository (src/ tree + layer
manifest + suppression baseline) in a temp directory and runs the real
analyzer binary against it, asserting that every rule fires by name on
its seeded violation and stays silent on the clean tree:

- layer:          a tier-0 module including a tier-1 module
- include-cycle:  two headers including each other
- lock-order:     A->B in one call chain, B->A in another
- swap-noexcept:  a throwing call after the guarded write of an
                  audited publish function
- clean:          all four rules enabled, no findings
- suppression round-trip: a justified baseline entry silences the
  seeded lock-order finding; once the finding is gone the entry is
  reported stale.

Runs as the `repo_analyze_selftest` ctest and standalone.
"""

from __future__ import annotations

import subprocess
import sys
import tempfile
from pathlib import Path

ANALYZE = Path(__file__).resolve().parent.parent / "analyze.py"

MANIFEST = """\
[layers]
order = [["util"], ["core"]]

[lock_order]
exclusive_guards = ["MutexLock", "WriterLock"]
shared_guards = ["ReaderLock"]

[noexcept_audit]
functions = {audit_functions}
allowed_calls = ["move"]
"""

EMPTY_SUPPRESSIONS = "suppress = []\n"

failures = []


def build_tree(tmp: Path, name: str, files: dict, *,
               audit_functions: str = "[]",
               suppressions: str = EMPTY_SUPPRESSIONS) -> Path:
    root = tmp / name
    for rel, text in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
    (root / "manifest.toml").write_text(
        MANIFEST.format(audit_functions=audit_functions), encoding="utf-8")
    (root / "suppressions.toml").write_text(suppressions, encoding="utf-8")
    return root


def run_analyze(root: Path, *flags: str):
    cmd = [sys.executable, str(ANALYZE),
           "--root", str(root),
           "--manifest", str(root / "manifest.toml"),
           "--suppressions", str(root / "suppressions.toml"),
           *flags]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


def expect(case: str, code: int, output: str, *,
           exit_code: int, contains: tuple = (), absent: tuple = ()):
    problems = []
    if code != exit_code:
        problems.append(f"exit {code}, expected {exit_code}")
    for needle in contains:
        if needle not in output:
            problems.append(f"missing {needle!r}")
    for needle in absent:
        if needle in output:
            problems.append(f"unexpected {needle!r}")
    if problems:
        failures.append(case)
        print(f"FAIL {case}: {'; '.join(problems)}")
        print("  ---- analyzer output ----")
        for line in output.splitlines():
            print(f"  {line}")
    else:
        print(f"ok   {case}")


# The seeded lock inversion: lock_ab takes alpha then (via a helper)
# beta; lock_ba takes beta then (via a helper) alpha.  File-scope
# mutexes resolve to `locks::<name>` identities.
LOCK_INVERSION_CPP = """\
#include "util/sync.hpp"

namespace demo {

util::Mutex alpha_mutex;
util::Mutex beta_mutex;

void grab_beta() { util::MutexLock lock(beta_mutex); }
void grab_alpha() { util::MutexLock lock(alpha_mutex); }

void lock_ab() {
  util::MutexLock lock(alpha_mutex);
  grab_beta();
}

void lock_ba() {
  util::MutexLock lock(beta_mutex);
  grab_alpha();
}

}  // namespace demo
"""

LOCK_CLEAN_CPP = """\
#include "util/sync.hpp"

namespace demo {

util::Mutex alpha_mutex;
util::Mutex beta_mutex;

void grab_beta() { util::MutexLock lock(beta_mutex); }

void lock_ab() {
  util::MutexLock lock(alpha_mutex);
  grab_beta();
}

void also_ab() {
  util::MutexLock lock(alpha_mutex);
  grab_beta();
}

}  // namespace demo
"""

SWAP_BAD_CPP = """\
#include "util/sync.hpp"

namespace demo {

int prepare(int v) { return v * 2; }
void audit_log(int v) { (void)v; }

class Widget {
 public:
  void publish(int v);

 private:
  util::Mutex mutex_;
  int value_ TOPK_GUARDED_BY(mutex_) = 0;
};

void Widget::publish(int v) {
  int staged = prepare(v);
  util::MutexLock lock(mutex_);
  value_ = staged;
  audit_log(staged + 1);
}

}  // namespace demo
"""

SWAP_CLEAN_CPP = """\
#include "util/sync.hpp"

namespace demo {

int prepare(int v) { return v * 2; }

class Widget {
 public:
  void publish(int v);

 private:
  util::Mutex mutex_;
  int value_ TOPK_GUARDED_BY(mutex_) = 0;
};

void Widget::publish(int v) {
  int staged = prepare(v);
  util::MutexLock lock(mutex_);
  value_ = staged;
}

}  // namespace demo
"""


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="analyze-selftest-") as td:
        tmp = Path(td)

        # 1. Layering violation: util (tier 0) includes core (tier 1).
        root = build_tree(tmp, "layer-bad", {
            "src/util/helper.hpp": '#include "core/engine.hpp"\n',
            "src/util/helper.cpp": '#include "util/helper.hpp"\n',
            "src/core/engine.hpp": "inline int engine() { return 1; }\n",
            "src/core/engine.cpp": '#include "core/engine.hpp"\n',
        })
        code, out = run_analyze(root, "-Wlayer")
        expect("layer fires on seeded violation", code, out, exit_code=1,
               contains=("[-Wlayer]", "layer:util->core"))

        # 2. Include cycle between two same-tier modules.
        root = build_tree(tmp, "cycle-bad", {
            "src/util/x.hpp": '#include "core/y.hpp"\n',
            "src/core/y.hpp": '#include "util/x.hpp"\n',
            "src/core/y.cpp": '#include "core/y.hpp"\n',
        })
        code, out = run_analyze(root, "-Winclude-cycle")
        expect("include-cycle fires on seeded cycle", code, out, exit_code=1,
               contains=("[-Winclude-cycle]", "include-cycle:"))

        # 3. Lock-order inversion A->B / B->A through helpers.
        root = build_tree(tmp, "lock-bad", {
            "src/util/sync.hpp": "namespace util { }\n",
            "src/core/locks.cpp": LOCK_INVERSION_CPP,
        })
        code, out = run_analyze(root, "-Wlock-order")
        expect("lock-order fires on seeded inversion", code, out, exit_code=1,
               contains=("[-Wlock-order]",
                         "locks::alpha_mutex", "locks::beta_mutex"))

        # 4. Throwing call in the publish suffix of an audited function.
        root = build_tree(tmp, "swap-bad", {
            "src/util/sync.hpp": "namespace util { }\n",
            "src/core/widget.cpp": SWAP_BAD_CPP,
        }, audit_functions='["Widget::publish"]')
        code, out = run_analyze(root, "-Wswap-noexcept")
        expect("swap-noexcept fires on seeded violation", code, out,
               exit_code=1,
               contains=("[-Wswap-noexcept]",
                         "swap-noexcept:Widget::publish", "audit_log"))

        # 5. Clean tree: every rule on, nothing fires.
        root = build_tree(tmp, "clean", {
            "src/util/sync.hpp": "namespace util { }\n",
            "src/util/helper.hpp": "inline int helper() { return 1; }\n",
            "src/core/engine.hpp": '#include "util/helper.hpp"\n',
            "src/core/engine.cpp": '#include "core/engine.hpp"\n',
            "src/core/locks.cpp": LOCK_CLEAN_CPP,
            "src/core/widget.cpp": SWAP_CLEAN_CPP,
        }, audit_functions='["Widget::publish"]')
        code, out = run_analyze(root, "-Wall")
        expect("clean tree passes -Wall", code, out, exit_code=0,
               absent=("[-W",))

        # 6a. A justified suppression silences the seeded inversion.
        justified = ('[[suppress]]\n'
                     'id = "lock-order:locks::alpha_mutex->'
                     'locks::beta_mutex"\n'
                     'justification = "seeded by the self-test"\n')
        root = build_tree(tmp, "lock-suppressed", {
            "src/util/sync.hpp": "namespace util { }\n",
            "src/core/locks.cpp": LOCK_INVERSION_CPP,
        }, suppressions=justified)
        code, out = run_analyze(root, "-Wlock-order")
        expect("justified suppression silences the finding", code, out,
               exit_code=0, contains=("1 suppressed",))

        # 6b. The same entry over a clean tree is stale, and fatal.
        root = build_tree(tmp, "lock-stale", {
            "src/util/sync.hpp": "namespace util { }\n",
            "src/core/locks.cpp": LOCK_CLEAN_CPP,
        }, suppressions=justified)
        code, out = run_analyze(root, "-Wlock-order")
        expect("stale suppression is fatal", code, out, exit_code=1,
               contains=("stale suppression",))

        # 6c. A suppression without a justification is rejected.
        unjustified = ('[[suppress]]\n'
                       'id = "lock-order:locks::alpha_mutex->'
                       'locks::beta_mutex"\n')
        root = build_tree(tmp, "lock-unjustified", {
            "src/util/sync.hpp": "namespace util { }\n",
            "src/core/locks.cpp": LOCK_INVERSION_CPP,
        }, suppressions=unjustified)
        code, out = run_analyze(root, "-Wlock-order")
        expect("unjustified suppression is rejected", code, out, exit_code=1,
               contains=("no justification",))

    if failures:
        print(f"selftest: {len(failures)} case(s) failed")
        return 1
    print("selftest: all cases passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
