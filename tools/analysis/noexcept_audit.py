"""Exception-safety audit of atomic-publish sections (-Wswap-noexcept).

The audited functions (layers.toml [noexcept_audit].functions) follow
the prepare-outside / publish-inside pattern: everything fallible —
allocation, string building, validation throws — happens before the
first write to lock-guarded state, and from that first write to the
end of the exclusive section (the *publish suffix*) every statement
must be statically noexcept-clean.  An exception escaping mid-publish
would leave guarded state half-swapped for every other thread.

Guarded state is identified from the TOPK_GUARDED_BY annotations in
the scanned sources, so the rule tracks the same ground truth Clang's
thread-safety analysis proves.

Allowed in a publish suffix:
- assignment whose right side is std::move(...), a plain identifier
  chain, a literal, or a static_cast of one of those;
- increments/decrements of guarded scalars;
- `.merge(x)` node splicing into a guarded container;
- calls (alone or in a return) whose unqualified name is in the
  manifest's allowed_calls list — each must be noexcept in the code;
- bare `return` / `return <safe expr>` / `break` / `continue`.
"""

from __future__ import annotations

import re
from pathlib import Path

from . import Finding
from . import cpp_scan

MUTATORS = ("merge|emplace|emplace_back|insert|insert_or_assign|push_back|"
            "pop_back|pop_front|erase|clear|resize|reserve|assign|swap")
ASSIGN = re.compile(r"(?<![=!<>])=(?!=)")
CHAIN = re.compile(r"[\w.\->:\[\]]+")


def _unqualified(callee: str) -> str:
    return re.split(r"->|\.|::", callee)[-1]


def _expr_safe(expr: str, allowed_calls) -> bool:
    expr = expr.strip()
    if not expr:
        return True
    if CHAIN.fullmatch(expr):
        return True  # identifier chain, literal, nullptr, enum value
    m = re.fullmatch(r"std::move\(\s*([\w.\->:\[\]]+)\s*\)", expr)
    if m:
        return True
    m = re.fullmatch(r"static_cast<[^<>]+>\(\s*([\w.\->:\[\]]+)\s*\)", expr)
    if m:
        return True
    m = re.fullmatch(r"([\w.\->:]+)\(\s*\)", expr)
    if m and _unqualified(m.group(1)) in allowed_calls:
        return True
    return False


def _statement_safe(stmt: str, allowed_calls) -> bool:
    s = stmt.strip().strip("{}").strip()
    if not s:
        return True
    if s in ("break", "continue", "return"):
        return True
    if s.startswith("return"):
        return _expr_safe(s[len("return"):], allowed_calls)
    if re.fullmatch(r"(\+\+|--)\s*[\w.\->]+", s) or \
            re.fullmatch(r"[\w.\->]+\s*(\+\+|--)", s):
        return True
    m = ASSIGN.search(s)
    if m:
        lhs, rhs = s[:m.start()], s[m.end():]
        return (CHAIN.fullmatch(lhs.strip()) is not None
                and _expr_safe(rhs, allowed_calls))
    m = re.fullmatch(r"([\w.\->:]+)\s*\(\s*([\w.\->:\[\]]*)\s*\)", s)
    if m and _unqualified(m.group(1)) in allowed_calls:
        return True
    return False


def _guarded_write(stmt: str, guarded) -> bool:
    """Does this statement mutate TOPK_GUARDED_BY state?"""
    m = ASSIGN.search(stmt)
    if m:
        lhs = stmt[:m.start()]
        if any(re.search(rf"\b{g}\b", lhs) for g in guarded):
            return True
    for g in guarded:
        if re.search(rf"\b{g}\b\s*(?:\.|->)\s*(?:{MUTATORS})\s*\(", stmt):
            return True
        if re.search(rf"(?:\+\+|--)\s*{g}\b", stmt) or \
                re.search(rf"\b{g}\s*(?:\+\+|--)", stmt):
            return True
    return False


def _statements(text: str, start: int, end: int):
    """(offset, statement) pieces split on ';' between start and end."""
    out = []
    piece_start = start
    for i in range(start, end):
        if text[i] == ";":
            out.append((piece_start, text[piece_start:i]))
            piece_start = i + 1
    if piece_start < end:
        out.append((piece_start, text[piece_start:end]))
    return out


def audit_function(fn, model, guarded, manifest, repo_root: Path):
    findings = []
    try:
        rel = str(fn.path.relative_to(repo_root))
    except ValueError:
        rel = str(fn.path)
    exclusive = set(manifest.exclusive_guards)
    for acq in fn.acquisitions:
        if acq.guard not in exclusive or acq.in_lambda:
            continue
        scope_end = model.brace_match.get(acq.block_open, fn.end)
        # Start after the acquisition's own statement.
        stmt_start = model.text.find(";", acq.offset)
        if stmt_start < 0 or stmt_start >= scope_end:
            continue
        statements = _statements(model.text, stmt_start + 1, scope_end)
        publishing = False
        for offset, stmt in statements:
            if not publishing:
                if _guarded_write(stmt, guarded):
                    publishing = True
                else:
                    continue
            if not _statement_safe(stmt, manifest.allowed_calls):
                line = model.line_of(offset + len(stmt)
                                     - len(stmt.lstrip()))
                summary = " ".join(stmt.split())
                if len(summary) > 100:
                    summary = summary[:97] + "..."
                findings.append(Finding(
                    warning="swap-noexcept", path=rel, line=line,
                    message=(f"{fn.qualname}: potentially-throwing "
                             f"statement inside the publish suffix of an "
                             f"exclusive section: `{summary}` — once "
                             "guarded state is written, every statement "
                             "until the lock releases must be noexcept"),
                    id=f"swap-noexcept:{fn.qualname}"))
    return findings


def check(models, repo_root: Path, manifest):
    guarded = set()
    for model in models:
        guarded |= model.guarded_members
    findings = []
    audited = set(manifest.audit_functions)
    matched = set()
    for model in models:
        for fn in model.functions:
            hit = next((a for a in audited
                        if fn.qualname == a or fn.qualname.endswith("::" + a)
                        or fn.name == a and "::" not in a), None)
            if hit is None:
                continue
            matched.add(hit)
            findings.extend(
                audit_function(fn, model, guarded, manifest, repo_root))
    for missing in sorted(audited - matched):
        findings.append(Finding(
            warning="swap-noexcept", path="tools/analysis/layers.toml",
            line=1,
            message=(f"audited function '{missing}' was not found in the "
                     "tree — update [noexcept_audit].functions"),
            id=f"swap-noexcept:missing:{missing}"))
    return findings


def run(src_files, repo_root: Path, manifest):
    guard_names = tuple(manifest.exclusive_guards + manifest.shared_guards)
    models, _ = cpp_scan.scan_tree(src_files, guard_names)
    return check(models, repo_root, manifest)
