"""layers.toml / suppressions.toml loading for tools/analyze.py."""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field
from pathlib import Path

ANALYSIS_DIR = Path(__file__).resolve().parent
DEFAULT_MANIFEST = ANALYSIS_DIR / "layers.toml"
DEFAULT_SUPPRESSIONS = ANALYSIS_DIR / "suppressions.toml"


@dataclass
class Crosscutting:
    name: str
    may_include: list[str]
    importable_from: list[str]


@dataclass
class Manifest:
    layers: list[list[str]]
    crosscutting: dict[str, Crosscutting]
    exclusive_guards: list[str]
    shared_guards: list[str]
    audit_functions: list[str]
    allowed_calls: list[str]
    rank: dict[str, int] = field(default_factory=dict)

    def __post_init__(self):
        for tier, modules in enumerate(self.layers):
            for module in modules:
                self.rank[module] = tier

    def is_known(self, module: str) -> bool:
        return module in self.rank or module in self.crosscutting


def load_manifest(path: Path = DEFAULT_MANIFEST) -> Manifest:
    with open(path, "rb") as handle:
        data = tomllib.load(handle)
    layers = data.get("layers", {}).get("order", [])
    crosscutting = {}
    for name, spec in data.get("crosscutting", {}).items():
        crosscutting[name] = Crosscutting(
            name=name,
            may_include=spec.get("may_include", []),
            importable_from=spec.get("importable_from", []),
        )
    lock = data.get("lock_order", {})
    audit = data.get("noexcept_audit", {})
    return Manifest(
        layers=layers,
        crosscutting=crosscutting,
        exclusive_guards=lock.get("exclusive_guards",
                                  ["MutexLock", "WriterLock"]),
        shared_guards=lock.get("shared_guards", ["ReaderLock"]),
        audit_functions=audit.get("functions", []),
        allowed_calls=audit.get("allowed_calls", []),
    )


@dataclass
class Suppression:
    id: str
    justification: str
    used: bool = False


def load_suppressions(path: Path = DEFAULT_SUPPRESSIONS):
    """Returns (suppressions, errors): entries missing a justification
    are reported as errors rather than silently honoured."""
    if not path.is_file():
        return [], []
    with open(path, "rb") as handle:
        data = tomllib.load(handle)
    suppressions, errors = [], []
    for entry in data.get("suppress", []):
        sid = entry.get("id", "")
        justification = entry.get("justification", "").strip()
        if not sid:
            errors.append(f"{path}: suppression without an id")
            continue
        if not justification:
            errors.append(
                f"{path}: suppression '{sid}' has no justification — "
                "every baseline entry must explain the false positive")
            continue
        suppressions.append(Suppression(id=sid, justification=justification))
    return suppressions, errors
