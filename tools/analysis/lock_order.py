"""Static lock-order deadlock detection (-Wlock-order).

Builds the per-function lock acquisition facts from cpp_scan, then:

1. intra-function edges: acquiring B while A is held adds A -> B;
2. call propagation: if f holds A when it calls g, A -> every lock in
   g's transitive acquisition closure (lambda bodies excluded from
   closures — deferred execution).  Method calls whose receiver class
   resolves are matched only against that class's methods (so a std
   container's `clear()` propagates nothing); unresolved method calls
   match every class method of the name, and free calls match every
   function of the name;
3. any cycle in the resulting lock graph — including a self-loop,
   which is a recursive acquisition of a non-recursive mutex — is an
   ordering inversion two threads can interleave into a deadlock.

Lock identity is class-qualified (`DeltaIndex::mutex_`), so the many
members named `mutex_` across the codebase stay distinct.
"""

from __future__ import annotations

from pathlib import Path

from . import Finding
from . import cpp_scan


def _candidates(call, by_name, by_method):
    """Callee candidates for one call site, narrowed by the resolved
    receiver class when the scanner could type it."""
    if call.receiver_class:
        return by_method.get((call.receiver_class, call.name), ())
    if call.receiver:
        # Method call on an untyped receiver: any class method of the
        # name, but never a free function.
        return tuple(f for f in by_name.get(call.name, ()) if f.cls)
    return by_name.get(call.name, ())


def _closures(functions):
    """Transitive acquisition closure per function, fixpoint over the
    receiver-narrowed call graph.  Lambda-scoped facts are excluded:
    what a lambda acquires happens when the lambda runs, not when its
    owner is called."""
    by_name = {}
    by_method = {}
    for fn in functions:
        by_name.setdefault(fn.name, []).append(fn)
        if fn.cls:
            by_method.setdefault((fn.cls, fn.name), []).append(fn)
    closure = {id(fn): set(a.lock for a in fn.acquisitions
                           if not a.in_lambda)
               for fn in functions}
    changed = True
    while changed:
        changed = False
        for fn in functions:
            acc = closure[id(fn)]
            before = len(acc)
            for call in fn.calls:
                if call.in_lambda:
                    continue
                for callee in _candidates(call, by_name, by_method):
                    acc |= closure[id(callee)]
            if len(acc) != before:
                changed = True
    return by_name, by_method, closure


def build_lock_graph(models):
    """Directed acquired-before graph over lock identities.  Returns
    (edges, provenance) where provenance maps an edge to one example
    (path, line, description)."""
    functions = [fn for model in models for fn in model.functions]
    by_name, by_method, closure = _closures(functions)
    edges: dict[str, set] = {}
    provenance: dict[tuple, tuple] = {}

    def add(a: str, b: str, path: Path, line: int, why: str):
        edges.setdefault(a, set()).add(b)
        provenance.setdefault((a, b), (path, line, why))

    for fn in functions:
        for acq in fn.acquisitions:
            for heldlock in acq.held:
                add(heldlock, acq.lock, fn.path, acq.line,
                    f"{fn.qualname or fn.path.stem}: acquires {acq.lock} "
                    f"while holding {heldlock}")
        for call in fn.calls:
            if not call.held:
                continue
            for callee in _candidates(call, by_name, by_method):
                for lock in closure[id(callee)]:
                    for heldlock in call.held:
                        add(heldlock, lock, fn.path, call.line,
                            f"{fn.qualname or fn.path.stem}: calls "
                            f"{call.name}() (reaching {callee.qualname}, "
                            f"which acquires {lock}) while holding "
                            f"{heldlock}")
    return edges, provenance


def _strongly_connected(edges):
    """Iterative Tarjan SCC over the lock graph."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set = set()
    stack: list = []
    sccs: list = []
    counter = [0]
    nodes = sorted(set(edges) | {b for bs in edges.values() for b in bs})

    for root in nodes:
        if root in index:
            continue
        work = [(root, iter(sorted(edges.get(root, ()))))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for nxt in it:
                if nxt not in index:
                    index[nxt] = low[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(sorted(edges.get(nxt, ())))))
                    advanced = True
                    break
                if nxt in on_stack:
                    low[node] = min(low[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(scc)
    return sccs


def check(models, repo_root: Path):
    """All lock-order findings over the scanned models."""
    edges, provenance = build_lock_graph(models)
    findings = []
    for scc in _strongly_connected(edges):
        cyclic = len(scc) > 1 or (scc[0] in edges.get(scc[0], ()))
        if not cyclic:
            continue
        members = sorted(scc)
        fid = "lock-order:" + "->".join(members)
        lines = []
        for a in members:
            for b in sorted(edges.get(a, ())):
                if b in scc and (a, b) in provenance:
                    path, line, why = provenance[(a, b)]
                    try:
                        rel = path.relative_to(repo_root)
                    except ValueError:
                        rel = path
                    lines.append(f"    {rel}:{line}: {why}")
        first = provenance.get(
            (members[0], next(b for b in sorted(edges[members[0]])
                              if b in scc)))
        path, line, _ = first
        try:
            rel = str(path.relative_to(repo_root))
        except ValueError:
            rel = str(path)
        findings.append(Finding(
            warning="lock-order",
            path=rel,
            line=line,
            message=("lock-order inversion cycle: "
                     + " <-> ".join(members) + "\n"
                     + "\n".join(lines)),
            id=fid,
        ))
    return findings


def run(src_files, repo_root: Path, manifest):
    guard_names = tuple(manifest.exclusive_guards + manifest.shared_guards)
    models, _ = cpp_scan.scan_tree(src_files, guard_names)
    return check(models, repo_root)
