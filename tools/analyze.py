#!/usr/bin/env python3
"""Semantic analyzer: architecture layering, include cycles, static
lock-order deadlock detection, and the noexcept publish audit —
dependency-free, driven by compile_commands.json and the layer
manifest tools/analysis/layers.toml.

Warnings follow the tools/lint.py idiom: enable with -W<name>, disable
with -Wno-<name>, -Wall (the default) turns on the whole set, and any
emitted warning is fatal (exit 1).  Findings can be suppressed by
stable id in tools/analysis/suppressions.toml, where every entry must
justify itself; the shipped baseline is empty, and a suppression that
no longer matches anything is itself an error.

    tools/analyze.py                       # full gate against ./build
    tools/analyze.py -p build-clang        # another build tree
    tools/analyze.py -Wlayer               # one rule only
    tools/analyze.py --dot arch.dot        # emit the Graphviz diagram
    tools/analyze.py --list-warnings       # the rule table (in README)
    tools/analyze.py --check-readme        # verify README documents it

Runs from any directory and as a ctest (`ctest -R repo_analyze`).
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import _repolint  # noqa: E402
from analysis import cpp_scan, include_graph, lock_order  # noqa: E402
from analysis import manifest as manifest_mod  # noqa: E402
from analysis import noexcept_audit  # noqa: E402

WARNINGS = {
    "layer": (
        "include edge that violates the architecture layer manifest "
        "(tools/analysis/layers.toml)"
    ),
    "include-cycle": (
        "cycle in the project include graph, at module or file "
        "granularity"
    ),
    "lock-order": (
        "lock acquisition order inversion over the annotated guard "
        "sites and approximated call graph"
    ),
    "swap-noexcept": (
        "potentially-throwing statement inside the publish suffix of "
        "an atomic-swap section"
    ),
}


def main(argv):
    parser = _repolint.make_parser(__doc__, WARNINGS)
    parser.add_argument("-p", "--build-dir", default=None, metavar="DIR",
                        help="build tree holding compile_commands.json "
                             "(default: <repo>/build; falls back to a "
                             "src/ walk when absent)")
    parser.add_argument("--root", default=None, metavar="DIR",
                        help="project root (default: the repo root; "
                             "overridden by the self-test)")
    parser.add_argument("--manifest", default=None, metavar="FILE",
                        help="layer manifest (default: "
                             "tools/analysis/layers.toml)")
    parser.add_argument("--suppressions", default=None, metavar="FILE",
                        help="suppression baseline (default: "
                             "tools/analysis/suppressions.toml)")
    parser.add_argument("--dot", default=None, metavar="FILE",
                        help="write the Graphviz architecture diagram")
    args, unknown = parser.parse_known_args(argv)
    flags = args.flags + unknown

    if args.list_warnings:
        _repolint.list_warnings(WARNINGS)
        return 0

    enabled = _repolint.parse_warning_flags(parser, flags, WARNINGS)

    root = Path(args.root).resolve() if args.root else _repolint.REPO_ROOT
    build_dir = (Path(args.build_dir).resolve() if args.build_dir
                 else root / "build")
    manifest_path = (Path(args.manifest) if args.manifest
                     else manifest_mod.DEFAULT_MANIFEST)
    suppressions_path = (Path(args.suppressions) if args.suppressions
                         else manifest_mod.DEFAULT_SUPPRESSIONS)

    manifest = manifest_mod.load_manifest(manifest_path)
    suppressions, errors = manifest_mod.load_suppressions(suppressions_path)

    findings = []
    if enabled & {"layer", "include-cycle"} or args.dot:
        graph_findings = include_graph.run(build_dir, root, manifest,
                                           dot_path=args.dot)
        findings.extend(f for f in graph_findings if f.warning in enabled)
    if enabled & {"lock-order", "swap-noexcept"}:
        guard_names = tuple(manifest.exclusive_guards
                            + manifest.shared_guards)
        src_files = list(_repolint.source_files(["src"], root))
        models, _ = cpp_scan.scan_tree(src_files, guard_names)
        if "lock-order" in enabled:
            findings.extend(lock_order.check(models, root))
        if "swap-noexcept" in enabled:
            findings.extend(noexcept_audit.check(models, root, manifest))

    by_id = {s.id: s for s in suppressions}
    failures = len(errors)
    for message in errors:
        print(message)
    suppressed = 0
    for finding in findings:
        suppression = by_id.get(finding.id)
        if suppression is not None:
            suppression.used = True
            suppressed += 1
            continue
        print(finding.render())
        print(f"  (suppress as id: {finding.id})")
        failures += 1
    for suppression in suppressions:
        if not suppression.used:
            print(f"{suppressions_path}: stale suppression "
                  f"'{suppression.id}' matches no finding — remove it")
            failures += 1

    if args.check_readme:
        failures += _repolint.check_readme(WARNINGS)

    if failures:
        print(f"analyze: {failures} failure(s)"
              + (f" ({suppressed} suppressed)" if suppressed else ""))
        return 1
    if suppressed:
        print(f"analyze: clean ({suppressed} suppressed)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
