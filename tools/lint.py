#!/usr/bin/env python3
"""Repo-invariant linter: fast, dependency-free checks of conventions
the compilers cannot express.

Each rule is a named warning in the css-tools style: enable with
-W<name>, disable with -Wno-<name>, -Wall (the default) turns on the
whole set.  Any emitted warning is fatal (exit 1) — there is no
"warning but pass" mode, because every rule below guards an invariant
with a concrete failure story, not a style preference.

    tools/lint.py                    # lint the tree with every rule
    tools/lint.py -Wno-include-order # all but one rule
    tools/lint.py -Wraw-mutex        # exactly one rule
    tools/lint.py --list-warnings    # the rule table (mirrored in README)
    tools/lint.py --check-readme     # also verify README documents the rules

Runs from any directory (paths resolve relative to the repo root, the
parent of tools/) and as a ctest (`ctest -R repo_lint`).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

import _repolint
from _repolint import REPO_ROOT, strip_comments

# name -> one-line description.  --list-warnings prints this table and
# --check-readme requires README.md to reproduce it verbatim, so the
# docs cannot drift from the code.
WARNINGS = {
    "raw-mutex": (
        "bare std::mutex/lock in src/ instead of the annotated "
        "util/sync.hpp wrappers"
    ),
    "raw-stat": (
        "std::atomic stat counter in src/ outside the telemetry "
        "registry (use telemetry::Counter/Gauge)"
    ),
    "tie-break": (
        "hand-rolled TopKEntry ordering instead of "
        "core::topk_entry_before/TopKEntryOrder"
    ),
    "raw-hwconcurrency": (
        "direct std::thread::hardware_concurrency() call outside "
        "util/ (use util::default_thread_count())"
    ),
    "pragma-once": "header missing #pragma once",
    "include-order": (
        "includes not in own-header-first, sorted-system, "
        "sorted-project order"
    ),
}

# Raw synchronisation primitives that must not appear in src/ outside
# util/sync.hpp: the annotated wrappers exist so Clang's thread-safety
# analysis sees every lock, and one bare std::mutex is a hole in the
# proof.
RAW_SYNC = re.compile(
    r"\bstd::(mutex|shared_mutex|timed_mutex|recursive_mutex|"
    r"condition_variable(_any)?|lock_guard|unique_lock|shared_lock|"
    r"scoped_lock)\b"
)

# An std::atomic member whose name reads like a statistic is a metric
# the registry cannot see: it has no labels, no exposition, and no
# single source of truth.  The name list is deliberately narrow so the
# coordination atomics that are NOT stats (inflight routing counts,
# EWMA cells, health flags, round-robin cursors) stay untouched.
RAW_STAT = re.compile(
    r"\bstd::atomic<[^<>]*>\s+"
    r"(\w*(?:quer(?:y|ies)|failures?|hits?|misses|errors?|totals?|"
    r"failovers?|rejections?|dropped|served|latenc|bytes|depth|peak|"
    r"scanned|samples?|counts?)\w*)\s*[;{=]"
)

# A two-sided comparison of TopKEntry values (x.value < y.value) is a
# hand-rolled ordering; outside core/topk_spmv it silently drops the
# index tie-break that keeps equal-score results deterministic across
# shard counts and thread counts.
TIE_BREAK = re.compile(r"\.value\s*[<>]=?\s*[A-Za-z_]\w*(?:\.|->)value\b")

# The hardware_concurrency()==0 fallback used to be copy-pasted per
# call site, where the copies drift; util::default_thread_count() is
# the one definition, and util/ is the only place allowed to call the
# raw primitive.
RAW_HWCONCURRENCY = re.compile(r"\bhardware_concurrency\s*\(")

INCLUDE = re.compile(r'^\s*#\s*include\s+([<"])([^">]+)[">]')


class Linter:
    def __init__(self, enabled):
        self.enabled = enabled
        self.failures = 0

    def warn(self, name, path, line, message):
        if name not in self.enabled:
            return
        rel = path.relative_to(REPO_ROOT)
        print(f"{rel}:{line}: [-W{name}] {message}")
        self.failures += 1

    # ---- rules ----

    def check_raw_mutex(self, path, text):
        if path == REPO_ROOT / "src" / "util" / "sync.hpp":
            return
        if "src" not in path.relative_to(REPO_ROOT).parts:
            return
        raw_lines = text.splitlines()
        for lineno, line in enumerate(strip_comments(text).splitlines(), 1):
            match = RAW_SYNC.search(line)
            if match:
                self.warn(
                    "raw-mutex", path, lineno,
                    f"{match.group(0)} bypasses util/sync.hpp — the "
                    "thread-safety analysis cannot see this lock",
                )
            # A waiver turns the analysis off; sync.hpp's contract is
            # that every use justifies itself in an adjacent comment.
            if "TOPK_NO_THREAD_SAFETY_ANALYSIS" in line:
                context = raw_lines[max(0, lineno - 4):lineno]
                if not any("//" in c or "/*" in c for c in context):
                    self.warn(
                        "raw-mutex", path, lineno,
                        "naked TOPK_NO_THREAD_SAFETY_ANALYSIS — every "
                        "waiver needs a comment justifying why the "
                        "analysis cannot see the invariant",
                    )

    def check_raw_stat(self, path, text):
        parts = path.relative_to(REPO_ROOT).parts
        if "src" not in parts or "telemetry" in parts:
            return
        for lineno, line in enumerate(strip_comments(text).splitlines(), 1):
            match = RAW_STAT.search(line)
            if match:
                self.warn(
                    "raw-stat", path, lineno,
                    f"std::atomic stat '{match.group(1)}' bypasses the "
                    "telemetry registry — use telemetry::Counter/Gauge so "
                    "the metric has one source of truth and an exposition",
                )

    def check_tie_break(self, path, text):
        if path.parent == REPO_ROOT / "src" / "core" and \
                path.stem == "topk_spmv":
            return  # the one place the ordering is defined
        for lineno, line in enumerate(strip_comments(text).splitlines(), 1):
            if TIE_BREAK.search(line):
                self.warn(
                    "tie-break", path, lineno,
                    "hand-rolled entry ordering — use "
                    "core::topk_entry_before or core::TopKEntryOrder so "
                    "equal scores keep the deterministic index tie-break",
                )

    def check_raw_hwconcurrency(self, path, text):
        parts = path.relative_to(REPO_ROOT).parts
        if parts[:2] == ("src", "util"):
            return  # the one place the raw call is allowed
        for lineno, line in enumerate(strip_comments(text).splitlines(), 1):
            if RAW_HWCONCURRENCY.search(line):
                self.warn(
                    "raw-hwconcurrency", path, lineno,
                    "direct hardware_concurrency() call — use "
                    "util::default_thread_count() so the 0-means-unknown "
                    "fallback has one definition",
                )

    def check_pragma_once(self, path, text):
        if path.suffix != ".hpp":
            return
        if "#pragma once" not in text:
            self.warn("pragma-once", path, 1, "header missing #pragma once")

    def check_include_order(self, path, text):
        includes = []  # (lineno, kind, target); kind: '<' or '"'
        depth = 0  # skip conditionally-compiled includes
        for lineno, line in enumerate(text.splitlines(), 1):
            stripped = line.strip()
            if re.match(r"#\s*if", stripped):
                depth += 1
            elif re.match(r"#\s*endif", stripped):
                depth = max(0, depth - 1)
            elif depth == 0:
                match = INCLUDE.match(line)
                if match:
                    includes.append((lineno, match.group(1), match.group(2)))
        if not includes:
            return
        # The own header (foo.cpp -> "<dir>/foo.hpp") comes first and is
        # exempt from the sort: it sits alone so a missing transitive
        # include in it cannot hide behind an earlier one.  Test files
        # open with the header under test in the same spirit.
        in_tests = "tests" in path.relative_to(REPO_ROOT).parts
        rest = includes
        if includes[0][1] == '"' and (
                in_tests or
                (path.suffix == ".cpp" and
                 Path(includes[0][2]).stem == path.stem)):
            rest = includes[1:]
        # Framework headers (gtest/gmock/benchmark) form their own block
        # ahead of the std block — the repo's test/bench convention.
        framework = re.compile(r"^(gtest|gmock|benchmark)/")
        saw_quote = False
        saw_plain_angle = False
        prev = {"<": None, '"': None}
        for lineno, kind, target in rest:
            if kind == '"':
                saw_quote = True
            elif saw_quote:
                self.warn(
                    "include-order", path, lineno,
                    f"<{target}> after a project include — system headers "
                    "form one block before project headers",
                )
                continue
            elif framework.match(target):
                if saw_plain_angle:
                    self.warn(
                        "include-order", path, lineno,
                        f"<{target}> after the std block — framework "
                        "headers come first",
                    )
                continue
            else:
                saw_plain_angle = True
            if prev[kind] is not None and target < prev[kind]:
                self.warn(
                    "include-order", path, lineno,
                    f"{target!r} breaks the sorted order within its block "
                    f"(follows {prev[kind]!r})",
                )
            prev[kind] = target


def main(argv):
    parser = _repolint.make_parser(__doc__, WARNINGS)
    args, unknown = parser.parse_known_args(argv)
    flags = args.flags + unknown

    if args.list_warnings:
        _repolint.list_warnings(WARNINGS)
        return 0

    enabled = _repolint.parse_warning_flags(parser, flags, WARNINGS)

    linter = Linter(enabled)
    for path in _repolint.source_files(["src", "tests", "bench", "examples"]):
        text = path.read_text(encoding="utf-8")
        linter.check_raw_mutex(path, text)
        linter.check_raw_stat(path, text)
        linter.check_tie_break(path, text)
        linter.check_raw_hwconcurrency(path, text)
        linter.check_pragma_once(path, text)
        linter.check_include_order(path, text)

    failures = linter.failures
    if args.check_readme:
        failures += _repolint.check_readme(WARNINGS)
    if failures:
        print(f"lint: {failures} failure(s)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
