// Tests for the serving layer: the persistent ThreadPool, the
// QueryEngine facade (sync, batched, async), and the surfaced
// max_rows_in_packet execution counter.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/accelerator.hpp"
#include "serve/query_engine.hpp"
#include "serve/thread_pool.hpp"
#include "test_helpers.hpp"

namespace topk::serve {
namespace {

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, RejectsNegativeWorkerCount) {
  EXPECT_THROW(ThreadPool(-1), std::invalid_argument);
}

TEST(ThreadPoolTest, ParallelForRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                              std::size_t{64}, std::size_t{1000}}) {
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, 4, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " of " << n;
    }
  }
}

TEST(ThreadPoolTest, ZeroWorkerPoolRunsOnCaller) {
  ThreadPool pool(0);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(8);
  pool.parallel_for(8, 1, [&](std::size_t i) { seen[i] = std::this_thread::get_id(); });
  for (const auto& id : seen) {
    EXPECT_EQ(id, caller);
  }
}

TEST(ThreadPoolTest, PoolIsReusableAcrossManyCalls) {
  ThreadPool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> sum{0};
    pool.parallel_for(10, 3, [&](std::size_t i) {
      sum += static_cast<int>(i);
    });
    EXPECT_EQ(sum.load(), 45) << "round " << round;
  }
}

TEST(ThreadPoolTest, PropagatesFirstException) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.parallel_for(20, 4,
                        [&](std::size_t i) {
                          ++ran;
                          if (i == 7) {
                            throw std::runtime_error("boom");
                          }
                        }),
      std::runtime_error);
  // Exceptions record but do not cancel: every item still ran.
  EXPECT_EQ(ran.load(), 20);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> leaf{0};
  pool.parallel_for(4, 3, [&](std::size_t) {
    pool.parallel_for(4, 3, [&](std::size_t) { ++leaf; });
  });
  EXPECT_EQ(leaf.load(), 16);
}

TEST(ThreadPoolTest, PostedTasksRun) {
  std::promise<int> promise;
  auto future = promise.get_future();
  {
    ThreadPool pool(1);
    pool.post([&] { promise.set_value(41); });
    EXPECT_EQ(future.get(), 41);
  }  // destructor drains and joins
}

TEST(ThreadPoolTest, EnsureWorkersGrowsButNeverShrinks) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.workers(), 1);
  pool.ensure_workers(3);
  EXPECT_EQ(pool.workers(), 3);
  pool.ensure_workers(2);
  EXPECT_EQ(pool.workers(), 3);
}

// -------------------------------------------------------------- QueryEngine

class QueryEngineTest : public ::testing::Test {
 protected:
  QueryEngineTest()
      : matrix_(test::small_random_matrix(800, 256, 12.0, 97)),
        accelerator_(matrix_, core::DesignConfig::fixed(20, 8)) {}

  [[nodiscard]] std::vector<std::vector<float>> make_queries(int count,
                                                             std::uint64_t seed) {
    util::Xoshiro256 rng(seed);
    std::vector<std::vector<float>> queries;
    queries.reserve(static_cast<std::size_t>(count));
    for (int q = 0; q < count; ++q) {
      queries.push_back(sparse::generate_dense_vector(256, rng));
    }
    return queries;
  }

  sparse::Csr matrix_;
  core::TopKAccelerator accelerator_;
};

TEST_F(QueryEngineTest, WorkerCountDoesNotChangeResults) {
  const auto queries = make_queries(6, 201);
  const core::QueryResult reference = accelerator_.query(queries[0], 32);
  const int oversubscribed =
      4 * std::max(1u, std::thread::hardware_concurrency());
  for (const int workers : {1, 2, 8, 16, oversubscribed}) {
    QueryEngine engine(accelerator_, {.workers = workers});
    const core::QueryResult result = engine.query(queries[0], 32);
    ASSERT_EQ(result.entries.size(), reference.entries.size())
        << workers << " workers";
    for (std::size_t i = 0; i < result.entries.size(); ++i) {
      EXPECT_EQ(result.entries[i], reference.entries[i])
          << workers << " workers, rank " << i;
    }
    EXPECT_EQ(result.stats.total_packets, reference.stats.total_packets);
    EXPECT_EQ(result.stats.max_rows_in_packet,
              reference.stats.max_rows_in_packet);
  }
}

TEST_F(QueryEngineTest, BatchMatchesSingleThreadedQueries) {
  const auto queries = make_queries(9, 202);
  for (const int workers : {1, 2, 8, 16}) {
    QueryEngine engine(accelerator_, {.workers = workers});
    const auto batch = engine.query_batch(queries, 16);
    ASSERT_EQ(batch.size(), queries.size());
    for (std::size_t q = 0; q < queries.size(); ++q) {
      const core::QueryResult individual = accelerator_.query(queries[q], 16);
      ASSERT_EQ(batch[q].entries.size(), individual.entries.size())
          << workers << " workers, query " << q;
      for (std::size_t i = 0; i < individual.entries.size(); ++i) {
        EXPECT_EQ(batch[q].entries[i], individual.entries[i])
            << workers << " workers, query " << q << ", rank " << i;
      }
    }
  }
}

TEST_F(QueryEngineTest, BatchValidatesUpFront) {
  QueryEngine engine(accelerator_, {.workers = 2});
  auto queries = make_queries(2, 203);
  EXPECT_THROW((void)engine.query_batch(queries, 0), std::invalid_argument);
  EXPECT_THROW((void)engine.query_batch(queries, 8 * 8 + 1),
               std::invalid_argument);
  queries.push_back(std::vector<float>(17, 0.0f));
  EXPECT_THROW((void)engine.query_batch(queries, 8), std::invalid_argument);
  EXPECT_TRUE(engine.query_batch({}, 8).empty());
}

TEST_F(QueryEngineTest, SubmitResultsAlignWithSubmissionOrder) {
  const auto queries = make_queries(12, 204);
  QueryEngine engine(accelerator_, {.workers = 4});
  std::vector<std::future<core::QueryResult>> futures;
  futures.reserve(queries.size());
  for (const auto& x : queries) {
    futures.push_back(engine.submit(x, 16));
  }
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const core::QueryResult expected = accelerator_.query(queries[q], 16);
    const core::QueryResult got = futures[q].get();
    ASSERT_EQ(got.entries.size(), expected.entries.size()) << "query " << q;
    for (std::size_t i = 0; i < expected.entries.size(); ++i) {
      EXPECT_EQ(got.entries[i], expected.entries[i])
          << "query " << q << ", rank " << i;
    }
  }
  engine.drain();
  EXPECT_EQ(engine.pending(), 0u);
}

TEST_F(QueryEngineTest, SubmitPropagatesValidationErrorsThroughFuture) {
  QueryEngine engine(accelerator_, {.workers = 2});
  auto wrong_size = engine.submit(std::vector<float>(17, 0.0f), 8);
  EXPECT_THROW((void)wrong_size.get(), std::invalid_argument);
  auto bad_topk = engine.submit(make_queries(1, 205)[0], 8 * 8 + 1);
  EXPECT_THROW((void)bad_topk.get(), std::invalid_argument);
  // The engine stays serviceable after failed requests.
  auto good = engine.submit(make_queries(1, 206)[0], 8);
  EXPECT_EQ(good.get().entries.size(), 8u);
}

TEST_F(QueryEngineTest, BoundedQueueBackpressureStillCompletesEverything) {
  const auto queries = make_queries(10, 207);
  QueryEngine engine(accelerator_, {.workers = 2, .max_pending = 2});
  std::vector<std::future<core::QueryResult>> futures;
  for (const auto& x : queries) {
    futures.push_back(engine.submit(x, 8));  // blocks when 2 in flight
  }
  for (auto& future : futures) {
    EXPECT_EQ(future.get().entries.size(), 8u);
  }
}

TEST_F(QueryEngineTest, RejectsBadConfig) {
  EXPECT_THROW(QueryEngine(accelerator_, {.workers = -1}),
               std::invalid_argument);
  EXPECT_THROW(QueryEngine(accelerator_, {.max_pending = 0}),
               std::invalid_argument);
}

TEST_F(QueryEngineTest, LatencySummaryCountsEveryServedQuery) {
  const auto queries = make_queries(5, 208);
  QueryEngine engine(accelerator_, {.workers = 2});
  EXPECT_EQ(engine.latency_summary().count, 0u);
  (void)engine.query(queries[0], 8);
  (void)engine.query_batch(queries, 8);
  engine.submit(queries[1], 8).get();
  const LatencySummary summary = engine.latency_summary();
  EXPECT_EQ(summary.count, 1u + queries.size() + 1u);
  EXPECT_GE(summary.p50_ms, 0.0);
  EXPECT_GE(summary.p99_ms, summary.p50_ms);
  EXPECT_GE(summary.max_ms, summary.p99_ms);
  EXPECT_GT(summary.mean_ms, 0.0);
}

// ----------------------------------------------------- ExecutionStats fix

TEST_F(QueryEngineTest, MaxRowsInPacketSurfacesInExecutionStats) {
  util::Xoshiro256 rng(209);
  const auto x = sparse::generate_dense_vector(256, rng);
  const core::QueryResult result = accelerator_.query(x, 32);
  // The aggregate must equal the busiest packet across the per-core
  // encoder stats — the kernel re-counts exactly what the encoder laid
  // out.
  std::uint64_t expected = 0;
  for (const auto& stream : accelerator_.core_streams()) {
    expected = std::max(expected, stream.stats().max_rows_in_packet);
  }
  EXPECT_GT(result.stats.max_rows_in_packet, 0u);
  EXPECT_EQ(result.stats.max_rows_in_packet, expected);
}

}  // namespace
}  // namespace topk::serve
