// Tests for the serving layer: the persistent ThreadPool and the
// backend-agnostic QueryEngine facade (sync, batched, async) over
// index::SimilarityIndex.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/accelerator.hpp"
#include "index/backends.hpp"
#include "index/registry.hpp"
#include "serve/query_engine.hpp"
#include "test_helpers.hpp"
#include "util/cpu_features.hpp"
#include "util/thread_pool.hpp"

namespace topk::serve {
namespace {

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, RejectsNegativeWorkerCount) {
  EXPECT_THROW(util::ThreadPool(-1), std::invalid_argument);
}

TEST(ThreadPoolTest, ParallelForRunsEveryIndexExactlyOnce) {
  util::ThreadPool pool(4);
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                              std::size_t{64}, std::size_t{1000}}) {
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, 4, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " of " << n;
    }
  }
}

TEST(ThreadPoolTest, ZeroWorkerPoolRunsOnCaller) {
  util::ThreadPool pool(0);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(8);
  pool.parallel_for(8, 1, [&](std::size_t i) { seen[i] = std::this_thread::get_id(); });
  for (const auto& id : seen) {
    EXPECT_EQ(id, caller);
  }
}

TEST(ThreadPoolTest, PoolIsReusableAcrossManyCalls) {
  util::ThreadPool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> sum{0};
    pool.parallel_for(10, 3, [&](std::size_t i) {
      sum += static_cast<int>(i);
    });
    EXPECT_EQ(sum.load(), 45) << "round " << round;
  }
}

TEST(ThreadPoolTest, PropagatesFirstException) {
  util::ThreadPool pool(3);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.parallel_for(20, 4,
                        [&](std::size_t i) {
                          ++ran;
                          if (i == 7) {
                            throw std::runtime_error("boom");
                          }
                        }),
      std::runtime_error);
  // Exceptions record but do not cancel: every item still ran.
  EXPECT_EQ(ran.load(), 20);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  util::ThreadPool pool(2);
  std::atomic<int> leaf{0};
  pool.parallel_for(4, 3, [&](std::size_t) {
    pool.parallel_for(4, 3, [&](std::size_t) { ++leaf; });
  });
  EXPECT_EQ(leaf.load(), 16);
}

TEST(ThreadPoolTest, PostedTasksRun) {
  std::promise<int> promise;
  auto future = promise.get_future();
  {
    util::ThreadPool pool(1);
    pool.post([&] { promise.set_value(41); });
    EXPECT_EQ(future.get(), 41);
  }  // destructor drains and joins
}

TEST(ThreadPoolTest, EnsureWorkersGrowsButNeverShrinks) {
  util::ThreadPool pool(1);
  EXPECT_EQ(pool.workers(), 1);
  pool.ensure_workers(3);
  EXPECT_EQ(pool.workers(), 3);
  pool.ensure_workers(2);
  EXPECT_EQ(pool.workers(), 3);
}

// -------------------------------------------------------------- QueryEngine

class QueryEngineTest : public ::testing::Test {
 protected:
  QueryEngineTest()
      : matrix_(std::make_shared<const sparse::Csr>(
            test::small_random_matrix(800, 256, 12.0, 97))),
        fpga_(std::make_shared<index::FpgaSimIndex>(
            matrix_, core::DesignConfig::fixed(20, 8))) {}

  [[nodiscard]] std::vector<std::vector<float>> make_queries(int count,
                                                             std::uint64_t seed) {
    util::Xoshiro256 rng(seed);
    std::vector<std::vector<float>> queries;
    queries.reserve(static_cast<std::size_t>(count));
    for (int q = 0; q < count; ++q) {
      queries.push_back(sparse::generate_dense_vector(256, rng));
    }
    return queries;
  }

  std::shared_ptr<const sparse::Csr> matrix_;
  std::shared_ptr<const index::FpgaSimIndex> fpga_;
};

TEST_F(QueryEngineTest, WorkerCountDoesNotChangeResults) {
  const auto queries = make_queries(6, 201);
  const index::QueryResult reference = fpga_->query(queries[0], 32);
  const int oversubscribed = 4 * topk::util::default_thread_count();
  for (const int workers : {1, 2, 8, 16, oversubscribed}) {
    QueryEngine engine(fpga_, {.workers = workers});
    const index::QueryResult result = engine.query(queries[0], 32);
    ASSERT_EQ(result.entries.size(), reference.entries.size())
        << workers << " workers";
    for (std::size_t i = 0; i < result.entries.size(); ++i) {
      EXPECT_EQ(result.entries[i], reference.entries[i])
          << workers << " workers, rank " << i;
    }
    const core::ExecutionStats* stats = index::fpga_stats(result);
    const core::ExecutionStats* expected = index::fpga_stats(reference);
    ASSERT_NE(stats, nullptr);
    ASSERT_NE(expected, nullptr);
    EXPECT_EQ(stats->total_packets, expected->total_packets);
    EXPECT_EQ(stats->max_rows_in_packet, expected->max_rows_in_packet);
  }
}

TEST_F(QueryEngineTest, BatchMatchesSingleThreadedQueries) {
  const auto queries = make_queries(9, 202);
  for (const int workers : {1, 2, 8, 16}) {
    QueryEngine engine(fpga_, {.workers = workers});
    const auto batch = engine.query_batch(queries, 16);
    ASSERT_EQ(batch.size(), queries.size());
    for (std::size_t q = 0; q < queries.size(); ++q) {
      const index::QueryResult individual = fpga_->query(queries[q], 16);
      ASSERT_EQ(batch[q].entries.size(), individual.entries.size())
          << workers << " workers, query " << q;
      for (std::size_t i = 0; i < individual.entries.size(); ++i) {
        EXPECT_EQ(batch[q].entries[i], individual.entries[i])
            << workers << " workers, query " << q << ", rank " << i;
      }
    }
  }
}

TEST_F(QueryEngineTest, BatchValidatesUpFront) {
  QueryEngine engine(fpga_, {.workers = 2});
  auto queries = make_queries(2, 203);
  EXPECT_THROW((void)engine.query_batch(queries, 0), std::invalid_argument);
  EXPECT_THROW((void)engine.query_batch(queries, 8 * 8 + 1),
               std::invalid_argument);
  queries.push_back(std::vector<float>(17, 0.0f));
  EXPECT_THROW((void)engine.query_batch(queries, 8), std::invalid_argument);
  EXPECT_TRUE(engine.query_batch({}, 8).empty());
}

TEST_F(QueryEngineTest, SubmitResultsAlignWithSubmissionOrder) {
  const auto queries = make_queries(12, 204);
  QueryEngine engine(fpga_, {.workers = 4});
  std::vector<std::future<index::QueryResult>> futures;
  futures.reserve(queries.size());
  for (const auto& x : queries) {
    futures.push_back(engine.submit(x, 16));
  }
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const index::QueryResult expected = fpga_->query(queries[q], 16);
    const index::QueryResult got = futures[q].get();
    ASSERT_EQ(got.entries.size(), expected.entries.size()) << "query " << q;
    for (std::size_t i = 0; i < expected.entries.size(); ++i) {
      EXPECT_EQ(got.entries[i], expected.entries[i])
          << "query " << q << ", rank " << i;
    }
  }
  engine.drain();
  EXPECT_EQ(engine.pending(), 0u);
}

TEST_F(QueryEngineTest, SubmitPropagatesValidationErrorsThroughFuture) {
  QueryEngine engine(fpga_, {.workers = 2});
  auto wrong_size = engine.submit(std::vector<float>(17, 0.0f), 8);
  EXPECT_THROW((void)wrong_size.get(), std::invalid_argument);
  auto bad_topk = engine.submit(make_queries(1, 205)[0], 8 * 8 + 1);
  EXPECT_THROW((void)bad_topk.get(), std::invalid_argument);
  // The engine stays serviceable after failed requests.
  auto good = engine.submit(make_queries(1, 206)[0], 8);
  EXPECT_EQ(good.get().entries.size(), 8u);
}

TEST_F(QueryEngineTest, BoundedQueueBackpressureStillCompletesEverything) {
  const auto queries = make_queries(10, 207);
  QueryEngine engine(fpga_, {.workers = 2, .max_pending = 2});
  std::vector<std::future<index::QueryResult>> futures;
  for (const auto& x : queries) {
    futures.push_back(engine.submit(x, 8));  // blocks when 2 in flight
  }
  for (auto& future : futures) {
    EXPECT_EQ(future.get().entries.size(), 8u);
  }
}

TEST_F(QueryEngineTest, RejectsBadConfig) {
  EXPECT_THROW(QueryEngine(fpga_, {.workers = -1}), std::invalid_argument);
  EXPECT_THROW(QueryEngine(fpga_, {.max_pending = 0}), std::invalid_argument);
  EXPECT_THROW(QueryEngine(fpga_, {.latency_window = 0}),
               std::invalid_argument);
  EXPECT_THROW(
      QueryEngine(std::shared_ptr<const index::SimilarityIndex>(), {}),
      std::invalid_argument);
  EXPECT_THROW(QueryEngine(std::shared_ptr<index::MutableIndex>(), {}),
               std::invalid_argument);
}

TEST_F(QueryEngineTest, LatencySummaryCountsEveryServedQuery) {
  const auto queries = make_queries(5, 208);
  QueryEngine engine(fpga_, {.workers = 2});
  EXPECT_EQ(engine.latency_summary().count, 0u);
  (void)engine.query(queries[0], 8);
  (void)engine.query_batch(queries, 8);
  engine.submit(queries[1], 8).get();
  const LatencySummary summary = engine.latency_summary();
  EXPECT_EQ(summary.count, 1u + queries.size() + 1u);
  EXPECT_GE(summary.p50_ms, 0.0);
  EXPECT_GE(summary.p99_ms, summary.p50_ms);
  EXPECT_GE(summary.max_ms, summary.p99_ms);
  EXPECT_GT(summary.mean_ms, 0.0);
}

TEST_F(QueryEngineTest, ResetLatencyStartsAFreshEpoch) {
  const auto queries = make_queries(4, 209);
  QueryEngine engine(fpga_, {.workers = 2});
  (void)engine.query_batch(queries, 8);
  EXPECT_EQ(engine.latency_summary().count, queries.size());
  engine.reset_latency();
  const LatencySummary cleared = engine.latency_summary();
  EXPECT_EQ(cleared.count, 0u);
  EXPECT_EQ(cleared.mean_ms, 0.0);
  EXPECT_EQ(cleared.p99_ms, 0.0);
  // The engine keeps serving and measuring after a reset.
  (void)engine.query(queries[0], 8);
  EXPECT_EQ(engine.latency_summary().count, 1u);
}

TEST_F(QueryEngineTest, LatencyWindowSizeComesFromConfig) {
  const auto queries = make_queries(6, 210);
  QueryEngine engine(fpga_, {.workers = 1, .latency_window = 2});
  EXPECT_EQ(engine.latency_window(), 2u);
  (void)engine.query_batch(queries, 8);
  // Lifetime count covers everything even though the percentile window
  // only holds the last two samples.
  EXPECT_EQ(engine.latency_summary().count, queries.size());
}

// ------------------------------------------- backend-agnostic serving paths

TEST_F(QueryEngineTest, ServesCpuAndFpgaBackendsThroughIdenticalCodePath) {
  const auto queries = make_queries(6, 211);
  const auto cpu = std::make_shared<index::CpuHeapIndex>(matrix_);

  QueryEngine fpga_engine(fpga_, {.workers = 4});
  QueryEngine cpu_engine(cpu, {.workers = 4});

  const auto fpga_batch = fpga_engine.query_batch(queries, 10);
  const auto cpu_batch = cpu_engine.query_batch(queries, 10);
  ASSERT_EQ(fpga_batch.size(), queries.size());
  ASSERT_EQ(cpu_batch.size(), queries.size());

  for (std::size_t q = 0; q < queries.size(); ++q) {
    // Each engine reproduces its own backend bit-for-bit...
    const auto direct_cpu = cpu->query(queries[q], 10);
    ASSERT_EQ(cpu_batch[q].entries, direct_cpu.entries) << "query " << q;
    // ...and the async path agrees with the sync one per backend.
    EXPECT_EQ(fpga_engine.submit(queries[q], 10).get().entries,
              fpga_batch[q].entries)
        << "query " << q;
    EXPECT_EQ(cpu_engine.submit(queries[q], 10).get().entries,
              cpu_batch[q].entries)
        << "query " << q;
  }

  // Per-backend latency digests accumulate independently.
  EXPECT_EQ(fpga_engine.latency_summary().count, 2 * queries.size());
  EXPECT_EQ(cpu_engine.latency_summary().count, 2 * queries.size());
  EXPECT_EQ(fpga_engine.index().describe().backend, "fpga-sim");
  EXPECT_EQ(cpu_engine.index().describe().backend, "cpu-heap");
}

TEST_F(QueryEngineTest, RegistryBackendsServeThroughTheEngine) {
  const auto queries = make_queries(3, 212);
  index::IndexOptions options;
  options.design = core::DesignConfig::fixed(20, 8);
  for (const std::string& name : index::registered_backends()) {
    QueryEngine engine(index::make_index(name, matrix_, options),
                       {.workers = 2});
    const auto results = engine.query_batch(queries, 8);
    ASSERT_EQ(results.size(), queries.size()) << name;
    for (const auto& result : results) {
      EXPECT_EQ(result.entries.size(), 8u) << name;
    }
    EXPECT_EQ(engine.latency_summary().count, queries.size()) << name;
  }
}

// ----------------------------------------------------- ExecutionStats fix

TEST_F(QueryEngineTest, MaxRowsInPacketSurfacesInExecutionStats) {
  util::Xoshiro256 rng(209);
  const auto x = sparse::generate_dense_vector(256, rng);
  const index::QueryResult result = fpga_->query(x, 32);
  // The aggregate must equal the busiest packet across the per-core
  // encoder stats — the kernel re-counts exactly what the encoder laid
  // out.
  std::uint64_t expected = 0;
  for (const auto& stream : fpga_->accelerator().core_streams()) {
    expected = std::max(expected, stream.stats().max_rows_in_packet);
  }
  const core::ExecutionStats* stats = index::fpga_stats(result);
  ASSERT_NE(stats, nullptr);
  EXPECT_GT(stats->max_rows_in_packet, 0u);
  EXPECT_EQ(stats->max_rows_in_packet, expected);
}

}  // namespace
}  // namespace topk::serve
