#include "embed/sparsify.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "embed/dense_embedding.hpp"

namespace topk::embed {
namespace {

TEST(DenseEmbeddings, ShapeAndRowAccess) {
  DenseEmbeddings embeddings(10, 16);
  EXPECT_EQ(embeddings.rows(), 10u);
  EXPECT_EQ(embeddings.dim(), 16u);
  embeddings.row(3)[5] = 2.5f;
  EXPECT_FLOAT_EQ(embeddings.row(3)[5], 2.5f);
  EXPECT_THROW((void)embeddings.row(10), std::out_of_range);
  EXPECT_THROW(DenseEmbeddings(0, 4), std::invalid_argument);
}

TEST(DenseEmbeddings, NormalizeMakesUnitRows) {
  DenseEmbeddings embeddings(3, 4);
  embeddings.row(0)[0] = 3.0f;
  embeddings.row(0)[1] = 4.0f;
  embeddings.l2_normalize_rows();  // row 1/2 all-zero: untouched
  EXPECT_FLOAT_EQ(embeddings.row(0)[0], 0.6f);
  EXPECT_FLOAT_EQ(embeddings.row(0)[1], 0.8f);
  EXPECT_FLOAT_EQ(embeddings.row(1)[0], 0.0f);
}

TEST(CorpusConfig, Validation) {
  CorpusConfig config;
  config.rows = 0;
  EXPECT_THROW(validate(config), std::invalid_argument);
  config = {};
  config.clusters = config.rows + 1;
  EXPECT_THROW(validate(config), std::invalid_argument);
  config = {};
  config.cluster_spread = 0.0;
  EXPECT_THROW(validate(config), std::invalid_argument);
  EXPECT_NO_THROW(validate(CorpusConfig{}));
}

CorpusConfig small_corpus_config() {
  CorpusConfig config;
  config.rows = 400;
  config.dim = 64;
  config.clusters = 8;
  config.seed = 51;
  return config;
}

TEST(GloveLikeCorpus, RowsAreUnitNorm) {
  const DenseEmbeddings corpus = generate_glove_like(small_corpus_config());
  for (std::uint32_t r = 0; r < corpus.rows(); ++r) {
    double norm_sq = 0.0;
    for (const float v : corpus.row(r)) {
      norm_sq += static_cast<double>(v) * v;
    }
    ASSERT_NEAR(norm_sq, 1.0, 1e-5) << "row " << r;
  }
}

TEST(GloveLikeCorpus, HasClusterStructure) {
  // Rows must correlate much more with some rows (same cluster) than
  // the isotropic baseline: max pairwise cosine well above average.
  const DenseEmbeddings corpus = generate_glove_like(small_corpus_config());
  double max_cos = -1.0;
  double sum_cos = 0.0;
  int pairs = 0;
  for (std::uint32_t a = 0; a < 50; ++a) {
    for (std::uint32_t b = a + 1; b < 50; ++b) {
      double dot = 0.0;
      for (std::uint32_t j = 0; j < corpus.dim(); ++j) {
        dot += static_cast<double>(corpus.row(a)[j]) * corpus.row(b)[j];
      }
      max_cos = std::max(max_cos, dot);
      sum_cos += dot;
      ++pairs;
    }
  }
  EXPECT_GT(max_cos, 0.8);
  EXPECT_LT(sum_cos / pairs, 0.6);
}

TEST(Dictionary, AtomsAreUnitNorm) {
  const Dictionary dictionary(128, 64, 52);
  EXPECT_EQ(dictionary.atoms(), 128u);
  EXPECT_EQ(dictionary.dim(), 64u);
  for (std::uint32_t a = 0; a < dictionary.atoms(); ++a) {
    double norm_sq = 0.0;
    for (const float v : dictionary.atom(a)) {
      norm_sq += static_cast<double>(v) * v;
    }
    ASSERT_NEAR(norm_sq, 1.0, 1e-5);
  }
  EXPECT_THROW(Dictionary(0, 4, 1), std::invalid_argument);
}

TEST(SparseCode, RespectsTargetNnzAndNonNegativity) {
  const Dictionary dictionary(256, 64, 53);
  const DenseEmbeddings corpus = generate_glove_like(small_corpus_config());
  SparsifyConfig config;
  config.target_nnz = 12;
  for (const bool mp : {true, false}) {
    config.use_matching_pursuit = mp;
    const auto code = sparse_code(corpus.row(0), dictionary, config);
    EXPECT_LE(code.size(), 12u);
    EXPECT_GE(code.size(), 1u);
    for (std::size_t i = 0; i < code.size(); ++i) {
      EXPECT_GT(code[i].second, 0.0f);
      if (i > 0) {
        EXPECT_LT(code[i - 1].first, code[i].first);  // sorted by atom
      }
    }
  }
}

TEST(SparseCode, MatchingPursuitReducesResidual) {
  // More coding steps must (weakly) improve reconstruction.
  const Dictionary dictionary(256, 64, 54);
  const DenseEmbeddings corpus = generate_glove_like(small_corpus_config());
  const auto residual_norm = [&](std::uint32_t steps) {
    SparsifyConfig config;
    config.target_nnz = steps;
    const auto code = sparse_code(corpus.row(7), dictionary, config);
    std::vector<double> reconstruction(64, 0.0);
    for (const auto& [atom, coefficient] : code) {
      const auto direction = dictionary.atom(atom);
      for (std::size_t j = 0; j < direction.size(); ++j) {
        reconstruction[j] += static_cast<double>(coefficient) * direction[j];
      }
    }
    double err = 0.0;
    for (std::size_t j = 0; j < reconstruction.size(); ++j) {
      const double d = reconstruction[j] - corpus.row(7)[j];
      err += d * d;
    }
    return err;
  };
  EXPECT_LE(residual_norm(16), residual_norm(4) + 1e-9);
  EXPECT_LE(residual_norm(4), residual_norm(1) + 1e-9);
}

TEST(SparsifyCorpus, ProducesNormalizedCsr) {
  const Dictionary dictionary(512, 64, 55);
  const DenseEmbeddings corpus = generate_glove_like(small_corpus_config());
  SparsifyConfig config;
  config.target_nnz = 16;
  const sparse::Csr matrix = sparsify_corpus(corpus, dictionary, config);
  EXPECT_EQ(matrix.rows(), corpus.rows());
  EXPECT_EQ(matrix.cols(), 512u);
  EXPECT_LE(matrix.max_row_nnz(), 16u);
  const double avg_nnz =
      static_cast<double>(matrix.nnz()) / matrix.rows();
  EXPECT_GT(avg_nnz, 4.0);  // codes are not degenerate
  for (std::uint32_t r = 0; r < 20; ++r) {
    double norm_sq = 0.0;
    for (const float v : matrix.row_values(r)) {
      norm_sq += static_cast<double>(v) * v;
    }
    ASSERT_NEAR(norm_sq, 1.0, 1e-5);
  }
}

TEST(SparsifyCorpus, NearbyDenseRowsStayNearbySparse) {
  // The (default) projection coder must approximately preserve the
  // neighbourhood structure: the sparse codes of two same-cluster
  // rows should be more similar than those of cross-cluster rows on
  // average.  (Matching pursuit deliberately does NOT guarantee this;
  // see SparsifyConfig.)
  CorpusConfig corpus_config = small_corpus_config();
  corpus_config.rows = 200;
  const DenseEmbeddings corpus = generate_glove_like(corpus_config);
  const Dictionary dictionary(512, 64, 56);
  SparsifyConfig config;
  config.target_nnz = 24;
  ASSERT_FALSE(config.use_matching_pursuit);  // default: projection coder
  const sparse::Csr matrix = sparsify_corpus(corpus, dictionary, config);

  // Dense cosine vs sparse cosine over some pairs: positive rank
  // correlation expected (crude check: the most-similar dense pair is
  // far above the sparse-average for random pairs).
  const auto sparse_cosine = [&](std::uint32_t a, std::uint32_t b) {
    std::vector<float> dense_b(matrix.cols(), 0.0f);
    const auto cols = matrix.row_cols(b);
    const auto vals = matrix.row_values(b);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      dense_b[cols[i]] = vals[i];
    }
    return matrix.row_dot(a, dense_b);
  };
  const auto dense_cosine = [&](std::uint32_t a, std::uint32_t b) {
    double dot = 0.0;
    for (std::uint32_t j = 0; j < corpus.dim(); ++j) {
      dot += static_cast<double>(corpus.row(a)[j]) * corpus.row(b)[j];
    }
    return dot;
  };

  std::uint32_t best_b = 1;
  double best_dense = -1.0;
  double sum_sparse = 0.0;
  for (std::uint32_t b = 1; b < corpus.rows(); ++b) {
    const double d = dense_cosine(0, b);
    if (d > best_dense) {
      best_dense = d;
      best_b = b;
    }
    sum_sparse += sparse_cosine(0, b);
  }
  const double avg_sparse = sum_sparse / (corpus.rows() - 1);
  EXPECT_GT(sparse_cosine(0, best_b), avg_sparse + 0.1);
}

TEST(SparsifyConfig, Validation) {
  const Dictionary dictionary(64, 32, 57);
  SparsifyConfig config;
  config.target_nnz = 0;
  EXPECT_THROW(validate(config, dictionary), std::invalid_argument);
  config.target_nnz = 65;
  EXPECT_THROW(validate(config, dictionary), std::invalid_argument);
  const DenseEmbeddings wrong_dim(4, 16);
  config.target_nnz = 4;
  EXPECT_THROW((void)sparsify_corpus(wrong_dim, dictionary, config),
               std::invalid_argument);
}

}  // namespace
}  // namespace topk::embed
