#include "core/bscsr.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/packet_layout.hpp"
#include "fixed/fixed_point.hpp"
#include "test_helpers.hpp"

namespace topk::core {
namespace {

/// Expected decode of `matrix`: values quantised to the layout's
/// format, empty rows replaced by the (0, 0) placeholder.
sparse::Csr quantized_with_placeholders(const sparse::Csr& matrix, int val_bits,
                                        ValueKind kind) {
  const fixed::FixedFormat format{val_bits, 1};
  sparse::Coo coo(matrix.rows(), matrix.cols());
  for (std::uint32_t r = 0; r < matrix.rows(); ++r) {
    const auto cols = matrix.row_cols(r);
    const auto vals = matrix.row_values(r);
    if (cols.empty()) {
      coo.push_back(r, 0, 0.0f);
      continue;
    }
    for (std::size_t i = 0; i < cols.size(); ++i) {
      const float quantized =
          kind == ValueKind::kFloat32
              ? vals[i]
              : static_cast<float>(fixed::dequantize(
                    fixed::quantize(static_cast<double>(vals[i]), format),
                    format));
      coo.push_back(r, cols[i], quantized);
    }
  }
  return sparse::Csr::from_coo(std::move(coo));
}

void expect_same_matrix(const sparse::Csr& a, const sparse::Csr& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  ASSERT_EQ(a.row_ptr(), b.row_ptr());
  ASSERT_EQ(a.col_idx(), b.col_idx());
  ASSERT_EQ(a.values(), b.values());
}

TEST(BsCsrEncode, PacketCountMatchesCeilDivision) {
  const sparse::Csr matrix = test::small_random_matrix(100, 256, 10.0, 1);
  const PacketLayout layout = PacketLayout::solve(matrix.cols(), 20);
  const BsCsrMatrix encoded = encode_bscsr(matrix, layout, ValueKind::kFixed);
  const std::uint64_t entries = encoded.stored_entries();
  EXPECT_EQ(entries, matrix.nnz());  // no empty rows in this generator
  const std::uint64_t expected_packets =
      (entries + layout.capacity - 1) / layout.capacity;
  EXPECT_EQ(encoded.num_packets(), expected_packets);
  EXPECT_EQ(encoded.stream_bytes(), expected_packets * 64);
  EXPECT_EQ(encoded.words().size(), expected_packets * 8);
}

TEST(BsCsrEncode, ValidatesArguments) {
  const sparse::Csr matrix = test::small_random_matrix(10, 2048, 4.0, 2);
  // idx_bits for cols=1024 cannot index 2048 columns.
  const PacketLayout small = PacketLayout::solve(1024, 20);
  EXPECT_THROW((void)encode_bscsr(matrix, small, ValueKind::kFixed),
               std::invalid_argument);
  // float32 demands 32-bit value slots.
  const PacketLayout layout20 = PacketLayout::solve(2048, 20);
  EXPECT_THROW((void)encode_bscsr(matrix, layout20, ValueKind::kFloat32),
               std::invalid_argument);
  EncodeOptions bad;
  bad.max_rows_per_packet = -1;
  EXPECT_THROW((void)encode_bscsr(matrix, layout20, ValueKind::kFixed, bad),
               std::invalid_argument);
}

TEST(BsCsrDecode, RoundTripSmall) {
  const sparse::Csr matrix = test::small_random_matrix(50, 128, 6.0, 3);
  const PacketLayout layout = PacketLayout::solve(matrix.cols(), 20);
  const BsCsrMatrix encoded = encode_bscsr(matrix, layout, ValueKind::kFixed);
  expect_same_matrix(decode_bscsr(encoded),
                     quantized_with_placeholders(matrix, 20, ValueKind::kFixed));
}

TEST(BsCsrDecode, RoundTripFloat32IsExact) {
  const sparse::Csr matrix = test::small_random_matrix(80, 512, 15.0, 4);
  const PacketLayout layout = PacketLayout::solve(matrix.cols(), 32);
  const BsCsrMatrix encoded = encode_bscsr(matrix, layout, ValueKind::kFloat32);
  const sparse::Csr decoded = decode_bscsr(encoded);
  expect_same_matrix(decoded, matrix);
}

TEST(BsCsrDecode, AdversarialStructureRoundTrips) {
  // Empty rows, single-entry rows, and one row spanning several
  // packets.
  const sparse::Csr matrix = test::adversarial_matrix(64);
  const PacketLayout layout = PacketLayout::solve(matrix.cols(), 20);
  const BsCsrMatrix encoded = encode_bscsr(matrix, layout, ValueKind::kFixed);
  EXPECT_EQ(encoded.stats().placeholder_entries, 2u);
  expect_same_matrix(decode_bscsr(encoded),
                     quantized_with_placeholders(matrix, 20, ValueKind::kFixed));
}

TEST(BsCsrEncode, SingleRowSpanningManyPackets) {
  // One row with 100 entries: every packet but the first must carry
  // new_row = 0.
  sparse::Coo coo(1, 128);
  for (std::uint32_t c = 0; c < 100; ++c) {
    coo.push_back(0, c, 0.5f);
  }
  const sparse::Csr matrix = sparse::Csr::from_coo(std::move(coo));
  const PacketLayout layout = PacketLayout::solve(matrix.cols(), 20);
  const BsCsrMatrix encoded = encode_bscsr(matrix, layout, ValueKind::kFixed);

  PacketCursor cursor(encoded);
  std::size_t packet_index = 0;
  std::size_t total_boundaries = 0;
  while (!cursor.done()) {
    const PacketView view = cursor.next();
    EXPECT_EQ(view.new_row, packet_index == 0);
    total_boundaries += view.boundaries.size();
    ++packet_index;
  }
  EXPECT_EQ(total_boundaries, 1u);  // exactly one row boundary overall
  expect_same_matrix(decode_bscsr(encoded),
                     quantized_with_placeholders(matrix, 20, ValueKind::kFixed));
}

TEST(BsCsrEncode, RowEndingExactlyAtPacketEdge) {
  // Rows sized exactly B: every boundary lands on the packet edge and
  // every packet starts a new row.
  const PacketLayout layout = PacketLayout::solve(64, 20);
  const int b = layout.capacity;
  sparse::Coo coo(4, 64);
  for (std::uint32_t r = 0; r < 4; ++r) {
    for (int i = 0; i < b; ++i) {
      coo.push_back(r, static_cast<std::uint32_t>(i), 0.25f);
    }
  }
  const sparse::Csr matrix = sparse::Csr::from_coo(std::move(coo));
  const BsCsrMatrix encoded = encode_bscsr(matrix, layout, ValueKind::kFixed);
  EXPECT_EQ(encoded.num_packets(), 4u);

  PacketCursor cursor(encoded);
  while (!cursor.done()) {
    const PacketView view = cursor.next();
    EXPECT_TRUE(view.new_row);
    ASSERT_EQ(view.boundaries.size(), 1u);
    EXPECT_EQ(view.boundaries[0], static_cast<std::uint32_t>(b));
  }
  expect_same_matrix(decode_bscsr(encoded),
                     quantized_with_placeholders(matrix, 20, ValueKind::kFixed));
}

TEST(BsCsrEncode, MaxRowsPerPacketBoundsBoundaries) {
  // Many single-entry rows would otherwise pack B boundaries into one
  // packet; enforcement must cap them (at the price of padding).
  sparse::Coo coo(60, 32);
  for (std::uint32_t r = 0; r < 60; ++r) {
    coo.push_back(r, r % 32, 0.5f);
  }
  const sparse::Csr matrix = sparse::Csr::from_coo(std::move(coo));
  const PacketLayout layout = PacketLayout::solve(matrix.cols(), 20);

  EncodeOptions options;
  options.max_rows_per_packet = 4;
  const BsCsrMatrix encoded =
      encode_bscsr(matrix, layout, ValueKind::kFixed, options);
  EXPECT_LE(encoded.stats().max_rows_in_packet, 4u);
  EXPECT_EQ(encoded.num_packets(), 15u);  // 60 rows / 4 per packet
  EXPECT_GT(encoded.stats().padded_slots, 0u);
  expect_same_matrix(decode_bscsr(encoded),
                     quantized_with_placeholders(matrix, 20, ValueKind::kFixed));
}

TEST(BsCsrEncode, UnconstrainedPacksManyRowsPerPacket) {
  sparse::Coo coo(60, 32);
  for (std::uint32_t r = 0; r < 60; ++r) {
    coo.push_back(r, r % 32, 0.5f);
  }
  const sparse::Csr matrix = sparse::Csr::from_coo(std::move(coo));
  const PacketLayout layout = PacketLayout::solve(matrix.cols(), 20);
  const BsCsrMatrix encoded = encode_bscsr(matrix, layout, ValueKind::kFixed);
  EXPECT_EQ(encoded.stats().max_rows_in_packet,
            static_cast<std::uint64_t>(layout.capacity));
}

TEST(PacketCursor, ThrowsPastEnd) {
  const sparse::Csr matrix = test::small_random_matrix(5, 32, 3.0, 6);
  const BsCsrMatrix encoded =
      encode_bscsr(matrix, PacketLayout::solve(32, 20), ValueKind::kFixed);
  PacketCursor cursor(encoded);
  while (!cursor.done()) {
    (void)cursor.next();
  }
  EXPECT_THROW((void)cursor.next(), std::out_of_range);
}

/// Property sweep: encode -> decode is the identity (modulo value
/// quantisation and empty-row placeholders) across layouts, value
/// kinds, densities and distributions.
struct RoundTripParam {
  std::uint32_t rows;
  std::uint32_t cols;
  double mean_nnz;
  int val_bits;
  ValueKind kind;
  sparse::RowDistribution distribution;
  int max_rows_per_packet;  // 0 = unconstrained
};

class BsCsrRoundTrip : public ::testing::TestWithParam<RoundTripParam> {};

TEST_P(BsCsrRoundTrip, EncodeDecodeIdentity) {
  const RoundTripParam param = GetParam();
  const sparse::Csr matrix = test::small_random_matrix(
      param.rows, param.cols, param.mean_nnz, 1000 + param.rows,
      param.distribution);
  const PacketLayout layout =
      PacketLayout::solve(param.cols, param.val_bits);
  EncodeOptions options;
  options.max_rows_per_packet = param.max_rows_per_packet;
  const BsCsrMatrix encoded =
      encode_bscsr(matrix, layout, param.kind, options);
  expect_same_matrix(
      decode_bscsr(encoded),
      quantized_with_placeholders(matrix, param.val_bits, param.kind));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BsCsrRoundTrip,
    ::testing::Values(
        RoundTripParam{200, 512, 20.0, 20, ValueKind::kFixed,
                       sparse::RowDistribution::kUniform, 0},
        RoundTripParam{200, 512, 20.0, 25, ValueKind::kFixed,
                       sparse::RowDistribution::kUniform, 0},
        RoundTripParam{200, 512, 20.0, 32, ValueKind::kFixed,
                       sparse::RowDistribution::kUniform, 0},
        RoundTripParam{200, 512, 20.0, 32, ValueKind::kFloat32,
                       sparse::RowDistribution::kUniform, 0},
        RoundTripParam{300, 1024, 40.0, 20, ValueKind::kFixed,
                       sparse::RowDistribution::kGamma, 0},
        RoundTripParam{300, 1024, 40.0, 25, ValueKind::kFixed,
                       sparse::RowDistribution::kGamma, 4},
        RoundTripParam{500, 64, 2.0, 20, ValueKind::kFixed,
                       sparse::RowDistribution::kGamma, 0},
        RoundTripParam{500, 64, 2.0, 20, ValueKind::kFixed,
                       sparse::RowDistribution::kGamma, 2},
        RoundTripParam{64, 4096, 60.0, 12, ValueKind::kFixed,
                       sparse::RowDistribution::kUniform, 0},
        RoundTripParam{100, 128, 1.0, 8, ValueKind::kFixed,
                       sparse::RowDistribution::kUniform, 1}));

}  // namespace
}  // namespace topk::core
