#include "hbmsim/boards.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "hbmsim/timing_model.hpp"

namespace topk::hbmsim {
namespace {

using core::DesignConfig;
using core::PacketLayout;

TEST(Boards, BuiltinProfilesValidate) {
  for (const BoardProfile& board : all_boards()) {
    EXPECT_NO_THROW(validate(board)) << board.name;
  }
  EXPECT_EQ(all_boards().size(), 3u);
  EXPECT_EQ(all_boards().front().name, "Alveo U280");
}

TEST(Boards, U50HasLessBandwidthAndFabric) {
  const BoardProfile u280 = board_u280();
  const BoardProfile u50 = board_u50();
  EXPECT_LT(u50.hbm.peak_channel_gbps, u280.hbm.peak_channel_gbps);
  EXPECT_NEAR(u50.hbm.peak_channel_gbps * u50.hbm.channels, 316.0, 0.5);
  EXPECT_LT(u50.resources.lut, u280.resources.lut);
  EXPECT_LT(u50.max_power_w, u280.max_power_w);
}

TEST(Boards, U55CHasDoubleCapacity) {
  EXPECT_EQ(board_u55c().hbm.capacity_bytes, 16ULL << 30);
  EXPECT_EQ(board_u280().hbm.capacity_bytes, 8ULL << 30);
}

TEST(Boards, ValidateRejectsBadProfiles) {
  BoardProfile board = board_u280();
  board.name.clear();
  EXPECT_THROW(validate(board), std::invalid_argument);
  board = board_u280();
  board.resources.dsp = 0;
  EXPECT_THROW(validate(board), std::invalid_argument);
  board = board_u280();
  board.max_power_w = board.static_power_w;
  EXPECT_THROW(validate(board), std::invalid_argument);
}

TEST(Boards, MaxCoresLimitedByChannels) {
  // The paper's design: fabric is not the limit on the U280 — all 32
  // channels can host a core (and more would fit).
  const DesignConfig design = DesignConfig::fixed(20);
  const PacketLayout layout = PacketLayout::solve(1024, 20);
  EXPECT_EQ(max_cores_on_board(design, layout, board_u280()), 32);
  EXPECT_EQ(max_cores_on_board(design, layout, board_u55c()), 32);
}

TEST(Boards, SmallerFabricCanLimitCores) {
  // On the U50 the URAM budget (640 banks) caps ~10-URAM cores at 32
  // channels minus shell; verify the limiter engages below channels
  // when the fabric is shrunk further.
  const DesignConfig design = DesignConfig::fixed(20);
  const PacketLayout layout = PacketLayout::solve(1024, 20);
  BoardProfile tiny = board_u50();
  tiny.resources.uram = 128;  // room for ~12 cores of ceil(B/2)+2 = 10
  const int cores = max_cores_on_board(design, layout, tiny);
  EXPECT_LT(cores, 32);
  EXPECT_GE(cores, 8);

  tiny.resources.uram = 5;  // below a single core's footprint
  EXPECT_THROW((void)max_cores_on_board(design, layout, tiny),
               std::invalid_argument);
}

TEST(Boards, PaperFutureWorkClaimHolds) {
  // Section VI: on a smaller card with similar per-channel bandwidth,
  // performance per channel is unchanged — the computation is
  // bandwidth-bound per channel, so a cheaper board loses nothing per
  // channel it retains.
  const DesignConfig design = DesignConfig::fixed(20);
  const PacketLayout layout = PacketLayout::solve(1024, 20);
  const auto u280_estimate = estimate_query_time(
      design, layout, 400'000, 100'000'000, board_u280().hbm);
  const auto u55c_estimate = estimate_query_time(
      design, layout, 400'000, 100'000'000, board_u55c().hbm);
  EXPECT_NEAR(u280_estimate.seconds, u55c_estimate.seconds, 1e-9);

  // The U50's ~31% lower bandwidth shows up proportionally.
  const auto u50_estimate = estimate_query_time(
      design, layout, 400'000, 100'000'000, board_u50().hbm);
  EXPECT_GT(u50_estimate.seconds, u280_estimate.seconds * 1.2);
  EXPECT_LT(u50_estimate.seconds, u280_estimate.seconds * 1.6);
}

}  // namespace
}  // namespace topk::hbmsim
