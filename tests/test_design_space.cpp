#include "hbmsim/design_space.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace topk::hbmsim {
namespace {

using core::DesignConfig;

WorkloadGoal paper_goal() {
  WorkloadGoal goal;
  goal.rows = 10'000'000;
  goal.cols = 1024;
  goal.nnz = 200'000'000;
  goal.top_k = 100;
  goal.min_precision = 0.99;
  return goal;
}

TEST(WorkloadGoal, Validation) {
  WorkloadGoal goal = paper_goal();
  EXPECT_NO_THROW(validate(goal));
  goal.rows = 0;
  EXPECT_THROW(validate(goal), std::invalid_argument);
  goal = paper_goal();
  goal.min_precision = 0.0;
  EXPECT_THROW(validate(goal), std::invalid_argument);
  goal = paper_goal();
  goal.min_precision = 1.5;
  EXPECT_THROW(validate(goal), std::invalid_argument);
  goal = paper_goal();
  goal.min_value_bits = 1;
  EXPECT_THROW(validate(goal), std::invalid_argument);
}

TEST(EvaluateDesign, PaperDefaultIsFeasible) {
  const OperatingPoint point =
      evaluate_design(DesignConfig::fixed(20), paper_goal(), board_u280());
  EXPECT_TRUE(point.fits);
  EXPECT_TRUE(point.meets_precision);
  EXPECT_GT(point.expected_precision, 0.99);
  EXPECT_LT(point.modelled_seconds, 4e-3);  // the paper's < 4 ms claim
}

TEST(EvaluateDesign, StarvedCandidatePoolFailsPrecision) {
  // k * cores < K can never surface enough candidates.
  WorkloadGoal goal = paper_goal();
  DesignConfig design = DesignConfig::fixed(20, 8);
  design.k = 8;  // 64 < K = 100
  const OperatingPoint point = evaluate_design(design, goal, board_u280());
  EXPECT_FALSE(point.meets_precision);
}

TEST(EnumerateDesignSpace, CoversGridAndRespectsFloor) {
  WorkloadGoal goal = paper_goal();
  goal.min_value_bits = 16;
  const auto points = enumerate_design_space(goal, board_u280());
  EXPECT_GT(points.size(), 20u);
  for (const OperatingPoint& point : points) {
    EXPECT_GE(point.design.value_bits, 16);
  }
  // Fixed and float designs both present.
  bool has_float = false;
  for (const OperatingPoint& point : points) {
    has_float |= point.design.value_kind == core::ValueKind::kFloat32;
  }
  EXPECT_TRUE(has_float);
}

TEST(RecommendFastest, PicksNarrowFixedFullCores) {
  // Fastest feasible design for the paper workload: maximum cores,
  // narrow values (bigger B), fixed point.
  const OperatingPoint best = recommend_fastest(paper_goal(), board_u280());
  EXPECT_EQ(best.design.cores, 32);
  EXPECT_EQ(best.design.value_kind, core::ValueKind::kFixed);
  EXPECT_LE(best.design.value_bits, 20);
  EXPECT_TRUE(best.feasible());
}

TEST(RecommendFastest, PrecisionFloorForcesMoreCandidates) {
  // An extreme precision floor at K=100 forces k > 8 or more cores.
  WorkloadGoal strict = paper_goal();
  strict.min_precision = 0.9999;
  const OperatingPoint best = recommend_fastest(strict, board_u280());
  EXPECT_TRUE(best.feasible());
  EXPECT_GE(best.expected_precision, 0.9999);
  EXPECT_GT(static_cast<std::int64_t>(best.design.k) * best.design.cores, 256);
}

TEST(RecommendFastest, ThrowsWhenNothingFeasible) {
  WorkloadGoal impossible = paper_goal();
  impossible.min_precision = 1.0;
  impossible.top_k = 10'000;  // k*c can never reach 10000 on the grid
  EXPECT_THROW((void)recommend_fastest(impossible, board_u280()),
               std::runtime_error);
}

TEST(RecommendCheapest, TradesSpeedForPower) {
  const OperatingPoint fastest = recommend_fastest(paper_goal(), board_u280());
  const OperatingPoint cheapest =
      recommend_cheapest(paper_goal(), board_u280(), 3.0);
  EXPECT_LE(cheapest.modelled_power_w, fastest.modelled_power_w);
  EXPECT_LE(cheapest.modelled_seconds, fastest.modelled_seconds * 3.0 + 1e-12);
  EXPECT_THROW((void)recommend_cheapest(paper_goal(), board_u280(), 0.5),
               std::invalid_argument);
}

TEST(ParetoFront, KeepsOnlyNonDominatedPoints) {
  const auto make_point = [](double seconds, double precision, bool fits) {
    OperatingPoint point;
    point.modelled_seconds = seconds;
    point.expected_precision = precision;
    point.fits = fits;
    return point;
  };
  const std::vector<OperatingPoint> points{
      make_point(1.0, 0.90, true),   // on the front
      make_point(2.0, 0.95, true),   // on the front
      make_point(3.0, 0.93, true),   // dominated by the 2.0/0.95 point
      make_point(4.0, 0.99, true),   // on the front
      make_point(0.5, 0.999, false), // would dominate, but does not fit
  };
  const auto front = pareto_front(points);
  ASSERT_EQ(front.size(), 3u);
  for (std::size_t i = 1; i < front.size(); ++i) {
    EXPECT_GT(front[i].modelled_seconds, front[i - 1].modelled_seconds);
    EXPECT_GT(front[i].expected_precision, front[i - 1].expected_precision);
  }
}

TEST(ParetoFront, RealGridCollapsesWhenMaxCoresDominates) {
  // On the paper's own workload more cores are simultaneously faster
  // AND more precise, so the (latency, precision) front collapses to
  // the full-width configuration — the quantitative form of the
  // paper's "use all 32 channels" guidance.
  const auto points = enumerate_design_space(paper_goal(), board_u280());
  const auto front = pareto_front(points);
  ASSERT_FALSE(front.empty());
  EXPECT_EQ(front.back().design.cores, 32);
  // Every front point must be undominated within the enumerated set.
  for (const OperatingPoint& front_point : front) {
    for (const OperatingPoint& other : points) {
      if (!other.fits) {
        continue;
      }
      const bool dominates =
          other.modelled_seconds < front_point.modelled_seconds &&
          other.expected_precision > front_point.expected_precision;
      EXPECT_FALSE(dominates);
    }
  }
}

TEST(DesignSpace, U50NeedsNoPerfSacrificePerChannel) {
  // The future-work scenario: the same goal on the U50 stays feasible
  // (the fabric holds 32 cores of this design), just slower by the
  // bandwidth ratio.
  const OperatingPoint u280 = recommend_fastest(paper_goal(), board_u280());
  const OperatingPoint u50 = recommend_fastest(paper_goal(), board_u50());
  EXPECT_TRUE(u50.feasible());
  EXPECT_GT(u50.modelled_seconds, u280.modelled_seconds);
  EXPECT_LT(u50.modelled_seconds, u280.modelled_seconds * 1.6);
}

}  // namespace
}  // namespace topk::hbmsim
