// Tests for the annotated synchronisation wrappers of util/sync.hpp:
// mutual exclusion through Mutex/MutexLock, shared-vs-exclusive
// semantics of ReaderLock/WriterLock, CondVar wait/notify round-trips,
// try_lock contracts, and the guarantee that every TOPK_* annotation
// macro compiles to nothing on non-Clang builds (the GCC legs must
// build this file identically to the Clang leg).
#include "util/sync.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

namespace topk::util {
namespace {

TEST(SyncTest, MutexLockProvidesMutualExclusion) {
  Mutex mutex;
  std::int64_t counter = 0;  // deliberately non-atomic: the lock is the test
  constexpr int kThreads = 8;
  constexpr int kIncrements = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(mutex);
        ++counter;
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter, static_cast<std::int64_t>(kThreads) * kIncrements);
}

TEST(SyncTest, TryLockFailsWhileHeldAndSucceedsAfterRelease) {
  Mutex mutex;
  mutex.lock();
  std::atomic<bool> acquired{true};
  // try_lock from another thread: std::mutex::try_lock from the owner
  // thread is undefined, so probe from outside.  The branch-on-result
  // shape is what the thread-safety analysis tracks a try-acquire by.
  std::thread probe([&] {
    if (mutex.try_lock()) {
      acquired.store(true, std::memory_order_relaxed);
      mutex.unlock();
    } else {
      acquired.store(false, std::memory_order_relaxed);
    }
  });
  probe.join();
  EXPECT_FALSE(acquired.load(std::memory_order_relaxed));
  mutex.unlock();
  const bool reacquired = mutex.try_lock();
  EXPECT_TRUE(reacquired);
  if (reacquired) {
    mutex.unlock();
  }
}

TEST(SyncTest, ReaderLocksAdmitConcurrentReaders) {
  SharedMutex mutex;
  std::atomic<int> readers_inside{0};
  std::atomic<int> max_readers{0};
  constexpr int kReaders = 4;
  std::vector<std::thread> threads;
  threads.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&] {
      ReaderLock lock(mutex);
      const int inside = readers_inside.fetch_add(1, std::memory_order_acq_rel) + 1;
      int seen = max_readers.load(std::memory_order_relaxed);
      while (inside > seen &&
             !max_readers.compare_exchange_weak(seen, inside,
                                                std::memory_order_relaxed)) {
      }
      // Hold the shared lock long enough for the others to arrive.
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      readers_inside.fetch_sub(1, std::memory_order_acq_rel);
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  // All readers must have overlapped at least once; a SharedMutex that
  // serialises readers would report max_readers == 1.
  EXPECT_GT(max_readers.load(std::memory_order_relaxed), 1);
}

TEST(SyncTest, WriterLockExcludesReadersAndWriters) {
  SharedMutex mutex;
  std::int64_t value = 0;
  std::atomic<bool> torn_read{false};
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int i = 0; i < 2000; ++i) {
      WriterLock lock(mutex);
      // A reader overlapping this section would observe the odd
      // intermediate value.
      ++value;
      ++value;
    }
    stop.store(true, std::memory_order_release);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        ReaderLock lock(mutex);
        if (value % 2 != 0) {
          torn_read.store(true, std::memory_order_relaxed);
        }
      }
    });
  }
  writer.join();
  for (auto& thread : readers) {
    thread.join();
  }
  EXPECT_FALSE(torn_read.load(std::memory_order_relaxed));
  EXPECT_EQ(value, 4000);
}

TEST(SyncTest, CondVarWakesWaiterOnNotify) {
  Mutex mutex;
  CondVar cv;
  bool ready = false;
  bool consumed = false;
  std::thread consumer([&] {
    MutexLock lock(mutex);
    while (!ready) {
      cv.wait(mutex);
    }
    consumed = true;
  });
  {
    MutexLock lock(mutex);
    ready = true;
  }
  cv.notify_one();
  consumer.join();
  MutexLock lock(mutex);
  EXPECT_TRUE(consumed);
}

TEST(SyncTest, CondVarNotifyAllReleasesEveryWaiter) {
  Mutex mutex;
  CondVar cv;
  bool open = false;
  int through = 0;
  constexpr int kWaiters = 6;
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int t = 0; t < kWaiters; ++t) {
    waiters.emplace_back([&] {
      MutexLock lock(mutex);
      while (!open) {
        cv.wait(mutex);
      }
      ++through;
    });
  }
  {
    MutexLock lock(mutex);
    open = true;
  }
  cv.notify_all();
  for (auto& thread : waiters) {
    thread.join();
  }
  MutexLock lock(mutex);
  EXPECT_EQ(through, kWaiters);
}

// The annotation macros must vanish on non-Clang compilers: this
// struct uses every user-facing macro, and the GCC Debug/Release legs
// compile it as plain C++.  On Clang the same code must satisfy the
// analysis (MutexLock in each accessor), so the one source serves
// both proofs.
struct AnnotatedCounter {
  Mutex mutex;
  int value TOPK_GUARDED_BY(mutex) = 0;
  int* slot TOPK_PT_GUARDED_BY(mutex) = nullptr;

  void bump() TOPK_EXCLUDES(mutex) {
    MutexLock lock(mutex);
    bump_locked();
  }
  void bump_locked() TOPK_REQUIRES(mutex) { ++value; }
  [[nodiscard]] int read() TOPK_EXCLUDES(mutex) {
    MutexLock lock(mutex);
    return value;
  }
};

#if !defined(__clang__)
// The macros must expand to nothing on GCC — not to attributes it
// ignores with a warning (-Wattributes would fire under -Werror
// configs).  An empty expansion concatenates with "" to a 1-byte
// string literal; anything else fails to compile.
#define TOPK_SYNC_TEST_PROBE TOPK_GUARDED_BY(mutex) TOPK_REQUIRES(mutex)
static_assert(sizeof(TOPK_SYNC_TEST_PROBE "") == 1,
              "TOPK annotation macros must be empty on non-Clang");
#undef TOPK_SYNC_TEST_PROBE
#endif

TEST(SyncTest, AnnotationMacrosCompileAwayOutsideClang) {
  AnnotatedCounter counter;
  counter.bump();
  counter.bump();
  EXPECT_EQ(counter.read(), 2);
}

}  // namespace
}  // namespace topk::util
