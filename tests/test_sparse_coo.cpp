#include "sparse/coo.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace topk::sparse {
namespace {

TEST(Coo, ConstructionValidatesShape) {
  EXPECT_THROW(Coo(0, 5), std::invalid_argument);
  EXPECT_THROW(Coo(5, 0), std::invalid_argument);
  const Coo matrix(3, 4);
  EXPECT_EQ(matrix.rows(), 3u);
  EXPECT_EQ(matrix.cols(), 4u);
  EXPECT_EQ(matrix.nnz(), 0u);
}

TEST(Coo, PushBackBoundsChecked) {
  Coo matrix(2, 2);
  matrix.push_back(1, 1, 3.0f);
  EXPECT_THROW(matrix.push_back(2, 0, 1.0f), std::out_of_range);
  EXPECT_THROW(matrix.push_back(0, 2, 1.0f), std::out_of_range);
  EXPECT_EQ(matrix.nnz(), 1u);
  EXPECT_EQ(matrix.entry(0), (Triplet{1, 1, 3.0f}));
}

TEST(Coo, SortRowMajorOrdersEntries) {
  Coo matrix(3, 3);
  matrix.push_back(2, 0, 1.0f);
  matrix.push_back(0, 1, 2.0f);
  matrix.push_back(0, 0, 3.0f);
  matrix.push_back(1, 2, 4.0f);
  EXPECT_FALSE(matrix.is_canonical());
  matrix.sort_row_major();
  EXPECT_TRUE(matrix.is_canonical());
  EXPECT_EQ(matrix.entry(0), (Triplet{0, 0, 3.0f}));
  EXPECT_EQ(matrix.entry(1), (Triplet{0, 1, 2.0f}));
  EXPECT_EQ(matrix.entry(2), (Triplet{1, 2, 4.0f}));
  EXPECT_EQ(matrix.entry(3), (Triplet{2, 0, 1.0f}));
}

TEST(Coo, SumDuplicatesMerges) {
  Coo matrix(2, 2);
  matrix.push_back(0, 0, 1.0f);
  matrix.push_back(0, 0, 2.0f);
  matrix.push_back(1, 1, 4.0f);
  matrix.push_back(0, 0, 3.0f);
  matrix.sum_duplicates();
  EXPECT_EQ(matrix.nnz(), 2u);
  EXPECT_EQ(matrix.entry(0), (Triplet{0, 0, 6.0f}));
  EXPECT_EQ(matrix.entry(1), (Triplet{1, 1, 4.0f}));
  EXPECT_TRUE(matrix.is_canonical());
}

TEST(Coo, SumDuplicatesOnEmptyIsNoop) {
  Coo matrix(2, 2);
  matrix.sum_duplicates();
  EXPECT_EQ(matrix.nnz(), 0u);
}

TEST(Coo, IsCanonicalDetectsDuplicates) {
  Coo matrix(2, 2);
  matrix.push_back(0, 1, 1.0f);
  matrix.push_back(0, 1, 1.0f);
  EXPECT_FALSE(matrix.is_canonical());
}

TEST(Coo, NaiveStreamBytesIsTwelvePerEntry) {
  Coo matrix(4, 4);
  matrix.push_back(0, 0, 1.0f);
  matrix.push_back(1, 1, 1.0f);
  EXPECT_EQ(matrix.naive_stream_bytes(), 24u);
}

}  // namespace
}  // namespace topk::sparse
