#include "sparse/generator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "util/stats.hpp"

namespace topk::sparse {
namespace {

TEST(GeneratorConfig, ValidateRejectsNonsense) {
  GeneratorConfig config;
  config.rows = 0;
  EXPECT_THROW(validate(config), std::invalid_argument);
  config = {};
  config.mean_nnz_per_row = 0.5;
  EXPECT_THROW(validate(config), std::invalid_argument);
  config = {};
  config.cols = 16;
  config.mean_nnz_per_row = 17.0;
  EXPECT_THROW(validate(config), std::invalid_argument);
  config = {};
  config.distribution = RowDistribution::kGamma;
  config.gamma_shape = 0.5;
  EXPECT_THROW(validate(config), std::invalid_argument);
  EXPECT_NO_THROW(validate(GeneratorConfig{}));
}

TEST(Generator, Deterministic) {
  GeneratorConfig config;
  config.rows = 500;
  config.cols = 128;
  config.mean_nnz_per_row = 10.0;
  config.seed = 99;
  const Csr a = generate_matrix(config);
  const Csr b = generate_matrix(config);
  EXPECT_EQ(a.col_idx(), b.col_idx());
  EXPECT_EQ(a.values(), b.values());
}

TEST(Generator, RowsAreL2Normalized) {
  GeneratorConfig config;
  config.rows = 200;
  config.cols = 256;
  config.mean_nnz_per_row = 20.0;
  const Csr matrix = generate_matrix(config);
  for (std::uint32_t r = 0; r < matrix.rows(); ++r) {
    double norm_sq = 0.0;
    for (const float v : matrix.row_values(r)) {
      norm_sq += static_cast<double>(v) * v;
    }
    ASSERT_NEAR(norm_sq, 1.0, 1e-5) << "row " << r;
  }
}

TEST(Generator, ColumnsSortedUniqueInRange) {
  GeneratorConfig config;
  config.rows = 300;
  config.cols = 64;
  config.mean_nnz_per_row = 30.0;  // dense draws exercise Fisher-Yates
  const Csr matrix = generate_matrix(config);
  for (std::uint32_t r = 0; r < matrix.rows(); ++r) {
    const auto cols = matrix.row_cols(r);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      ASSERT_LT(cols[i], matrix.cols());
      if (i > 0) {
        ASSERT_LT(cols[i - 1], cols[i]) << "row " << r;
      }
    }
  }
}

TEST(Generator, ValuesNonNegative) {
  GeneratorConfig config;
  config.rows = 100;
  config.cols = 128;
  const Csr matrix = generate_matrix(config);
  for (const float v : matrix.values()) {
    ASSERT_GT(v, 0.0f);
  }
}

struct SweepParam {
  RowDistribution distribution;
  double mean_nnz;
  std::uint32_t cols;
};

class GeneratorSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(GeneratorSweep, MeanRowDensityMatchesTarget) {
  const SweepParam param = GetParam();
  GeneratorConfig config;
  config.rows = 4000;
  config.cols = param.cols;
  config.mean_nnz_per_row = param.mean_nnz;
  config.distribution = param.distribution;
  config.seed = 1234;

  util::Xoshiro256 rng(config.seed);
  util::RunningStats stats;
  for (int i = 0; i < 4000; ++i) {
    stats.add(static_cast<double>(sample_row_nnz(config, rng)));
  }
  // 5% tolerance on the empirical mean (rounding biases the extremes
  // slightly).
  EXPECT_NEAR(stats.mean(), param.mean_nnz, param.mean_nnz * 0.05);
  EXPECT_GE(stats.min(), 1.0);
  EXPECT_LE(stats.max(), static_cast<double>(param.cols));
}

TEST_P(GeneratorSweep, MatrixNnzWithinExpectedBand) {
  const SweepParam param = GetParam();
  GeneratorConfig config;
  config.rows = 2000;
  config.cols = param.cols;
  config.mean_nnz_per_row = param.mean_nnz;
  config.distribution = param.distribution;
  const Csr matrix = generate_matrix(config);
  const double expected = config.mean_nnz_per_row * config.rows;
  EXPECT_NEAR(static_cast<double>(matrix.nnz()), expected, expected * 0.10);
}

INSTANTIATE_TEST_SUITE_P(
    TableIIIConfigs, GeneratorSweep,
    ::testing::Values(SweepParam{RowDistribution::kUniform, 20.0, 512},
                      SweepParam{RowDistribution::kUniform, 40.0, 1024},
                      SweepParam{RowDistribution::kGamma, 20.0, 512},
                      SweepParam{RowDistribution::kGamma, 40.0, 1024}));

TEST(GammaDistribution, IsRightSkewed) {
  GeneratorConfig config;
  config.cols = 1024;
  config.mean_nnz_per_row = 20.0;
  config.distribution = RowDistribution::kGamma;
  util::Xoshiro256 rng(77);
  // Skewness of Gamma(3) is 2/sqrt(3) ~ 1.15; the empirical third
  // moment must be clearly positive.
  util::RunningStats stats;
  std::vector<double> samples;
  for (int i = 0; i < 20'000; ++i) {
    samples.push_back(static_cast<double>(sample_row_nnz(config, rng)));
    stats.add(samples.back());
  }
  double third_moment = 0.0;
  for (const double s : samples) {
    third_moment += std::pow(s - stats.mean(), 3.0);
  }
  third_moment /= static_cast<double>(samples.size());
  const double skewness = third_moment / std::pow(stats.stddev(), 3.0);
  EXPECT_GT(skewness, 0.6);
}

TEST(DenseVector, UnitNormNonNegative) {
  util::Xoshiro256 rng(5);
  const std::vector<float> x = generate_dense_vector(512, rng);
  ASSERT_EQ(x.size(), 512u);
  double norm_sq = 0.0;
  for (const float v : x) {
    ASSERT_GE(v, 0.0f);
    norm_sq += static_cast<double>(v) * v;
  }
  EXPECT_NEAR(norm_sq, 1.0, 1e-6);
}

TEST(QueryNearRow, SourceRowRanksHighest) {
  GeneratorConfig config;
  config.rows = 500;
  config.cols = 256;
  config.mean_nnz_per_row = 16.0;
  const Csr matrix = generate_matrix(config);
  util::Xoshiro256 rng(9);
  const std::uint32_t source = 123;
  const std::vector<float> x =
      generate_query_near_row(matrix, source, 0.01, rng);

  double best = -1.0;
  std::uint32_t best_row = 0;
  for (std::uint32_t r = 0; r < matrix.rows(); ++r) {
    const double score = matrix.row_dot(r, x);
    if (score > best) {
      best = score;
      best_row = r;
    }
  }
  EXPECT_EQ(best_row, source);
  EXPECT_THROW((void)generate_query_near_row(matrix, 500, 0.01, rng),
               std::out_of_range);
}

}  // namespace
}  // namespace topk::sparse
