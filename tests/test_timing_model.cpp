#include "hbmsim/timing_model.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "test_helpers.hpp"

namespace topk::hbmsim {
namespace {

using core::DesignConfig;
using core::PacketLayout;

TEST(HbmConfig, DefaultsMatchPaperFigures) {
  const HbmConfig hbm = alveo_u280();
  EXPECT_EQ(hbm.channels, 32);
  // 460 GB/s aggregate peak over 32 channels.
  EXPECT_NEAR(hbm.peak_channel_gbps * hbm.channels, 460.0, 0.5);
  // Figure 6a: "32 cores, 422.4 GB/s" streaming ceiling.
  EXPECT_NEAR(hbm.streaming_bytes_per_s(32), 422.4e9, 1e6);
  EXPECT_NEAR(hbm.streaming_bytes_per_s(1), 13.2e9, 1e6);
  EXPECT_NO_THROW(validate(hbm));
}

TEST(HbmConfig, ValidateRejectsBadValues) {
  HbmConfig hbm;
  hbm.channels = 0;
  EXPECT_THROW(validate(hbm), std::invalid_argument);
  hbm = {};
  hbm.measured_efficiency = 0.0;
  EXPECT_THROW(validate(hbm), std::invalid_argument);
  hbm = {};
  hbm.measured_efficiency = 1.5;
  EXPECT_THROW(validate(hbm), std::invalid_argument);
  hbm = {};
  hbm.streaming_channel_gbps = 20.0;  // above peak
  EXPECT_THROW(validate(hbm), std::invalid_argument);
  hbm = {};
  hbm.capacity_bytes = 0;
  EXPECT_THROW(validate(hbm), std::invalid_argument);
}

TEST(DesignClock, TableIIAnchors) {
  EXPECT_NEAR(design_clock_hz(DesignConfig::fixed(20)), 253e6, 1e3);
  EXPECT_NEAR(design_clock_hz(DesignConfig::fixed(25)), 240e6, 1e3);
  EXPECT_NEAR(design_clock_hz(DesignConfig::fixed(32)), 249e6, 1e3);
  EXPECT_NEAR(design_clock_hz(DesignConfig::float32()), 204e6, 1e3);
}

TEST(DesignClock, InterpolatesBetweenAnchorsAndDeratesForLargeK) {
  const double clock22 = design_clock_hz(DesignConfig::fixed(22));
  EXPECT_LT(clock22, 253e6);
  EXPECT_GT(clock22, 240e6);

  DesignConfig big_k = DesignConfig::fixed(20);
  big_k.k = 16;
  EXPECT_LT(design_clock_hz(big_k), 253e6);
  DesignConfig small_k = DesignConfig::fixed(20);
  small_k.k = 4;  // below 8: no bonus, same as anchor
  EXPECT_NEAR(design_clock_hz(small_k), 253e6, 1e3);
}

TEST(InitiationInterval, FixedOneFloatThree) {
  EXPECT_DOUBLE_EQ(initiation_interval(DesignConfig::fixed(20)), 1.0);
  EXPECT_DOUBLE_EQ(initiation_interval(DesignConfig::float32()), 3.0);
}

TEST(TimingModel, ReproducesPaperHeadlineThroughput) {
  // Paper section V-A: the 32-core design finds the Top-K of a matrix
  // with 1e7 rows and 2e8 non-zeros in under 4 ms, sustaining "over 57
  // billion non-zeros per second".
  const DesignConfig design = DesignConfig::fixed(20);
  const PacketLayout layout = PacketLayout::solve(1024, 20);
  ASSERT_EQ(layout.capacity, 15);
  const std::uint64_t nnz = 200'000'000;
  const std::uint64_t packets_per_core =
      nnz / (32ULL * static_cast<std::uint64_t>(layout.capacity)) + 1;

  const TimingEstimate estimate =
      estimate_query_time(design, layout, packets_per_core, nnz);
  EXPECT_LT(estimate.seconds, 4e-3);
  EXPECT_GT(estimate.nnz_per_second, 50e9);
  EXPECT_LT(estimate.nnz_per_second, 65e9);
  EXPECT_TRUE(estimate.bandwidth_bound);  // fixed point saturates the channel
}

TEST(TimingModel, DesignOrderingMatchesFigure5) {
  // Figure 5 (N = 1e7): 20b > 25b > 32b fixed > float32.
  const std::uint64_t nnz = 100'000'000;
  const auto latency = [&](const DesignConfig& design) {
    const PacketLayout layout = PacketLayout::solve(1024, design.value_bits);
    const std::uint64_t packets =
        nnz / (32ULL * static_cast<std::uint64_t>(layout.capacity)) + 1;
    return estimate_query_time(design, layout, packets, nnz).seconds;
  };
  const double t20 = latency(DesignConfig::fixed(20));
  const double t25 = latency(DesignConfig::fixed(25));
  const double t32 = latency(DesignConfig::fixed(32));
  const double tf32 = latency(DesignConfig::float32());
  EXPECT_LT(t20, t25);
  EXPECT_LT(t25, t32);
  EXPECT_LT(t32, tf32);

  // The float design is ~2.4x slower than 20b (Figure 5: 106x vs 43x
  // speedups -> ratio ~2.47).
  EXPECT_NEAR(tf32 / t20, 2.45, 0.35);
}

TEST(TimingModel, FloatDesignIsComputeBound) {
  const DesignConfig design = DesignConfig::float32();
  const PacketLayout layout = PacketLayout::solve(1024, 32);
  const TimingEstimate estimate =
      estimate_query_time(design, layout, 1'000'000, 10'000'000);
  EXPECT_FALSE(estimate.bandwidth_bound);
  EXPECT_NEAR(estimate.packets_per_second_per_core, 204e6 / 3.0, 1e3);
}

TEST(TimingModel, ScalesLinearlyWithPackets) {
  const DesignConfig design = DesignConfig::fixed(20);
  const PacketLayout layout = PacketLayout::solve(1024, 20);
  TimingOptions options;
  options.fixed_overhead_s = 0.0;
  const double t1 =
      estimate_query_time(design, layout, 1'000'000, 1, alveo_u280(), options)
          .seconds;
  const double t2 =
      estimate_query_time(design, layout, 2'000'000, 1, alveo_u280(), options)
          .seconds;
  EXPECT_NEAR(t2 / t1, 2.0, 1e-9);
}

TEST(TimingModel, EffectiveBandwidthScalesWithCores) {
  // Figure 6's key observation: performance scales linearly with the
  // number of HBM channels used.
  const PacketLayout layout = PacketLayout::solve(1024, 20);
  double previous = 0.0;
  for (const int cores : {1, 8, 16, 32}) {
    const DesignConfig design = DesignConfig::fixed(20, cores);
    const TimingEstimate estimate =
        estimate_query_time(design, layout, 1'000'000, 15'000'000);
    EXPECT_GT(estimate.effective_bandwidth_bytes_per_s, previous);
    EXPECT_NEAR(estimate.effective_bandwidth_bytes_per_s,
                cores * alveo_u280().effective_channel_bytes_per_s(), 1e6);
    previous = estimate.effective_bandwidth_bytes_per_s;
  }
}

TEST(TimingModel, ValidatesArguments) {
  const PacketLayout layout = PacketLayout::solve(1024, 20);
  const DesignConfig too_many_cores = DesignConfig::fixed(20, 64);
  EXPECT_THROW(
      (void)estimate_query_time(too_many_cores, layout, 1000, 1000),
      std::invalid_argument);
  TimingOptions bad;
  bad.fixed_overhead_s = -1.0;
  EXPECT_THROW((void)estimate_query_time(DesignConfig::fixed(20), layout, 1000,
                                         1000, alveo_u280(), bad),
               std::invalid_argument);
}

TEST(TimingModel, AcceleratorOverloadUsesItsGeometry) {
  const sparse::Csr matrix = test::small_random_matrix(320, 1024, 20.0, 15);
  const core::TopKAccelerator accelerator(matrix,
                                          DesignConfig::fixed(20, 4));
  const TimingEstimate estimate = estimate_query_time(accelerator, matrix.nnz());
  EXPECT_GT(estimate.seconds, 0.0);
  EXPECT_GT(estimate.nnz_per_second, 0.0);
}

}  // namespace
}  // namespace topk::hbmsim
