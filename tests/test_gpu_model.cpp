#include "baselines/gpu_model.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <unordered_set>

#include "baselines/cpu_topk_spmv.hpp"
#include "test_helpers.hpp"

namespace topk::baselines {
namespace {

TEST(GpuPerfModel, ValidatesConstants) {
  EXPECT_NO_THROW(validate(GpuPerfModel{}));
  GpuPerfModel model;
  model.peak_bandwidth_gbps = 0.0;
  EXPECT_THROW(validate(model), std::invalid_argument);
  model = {};
  model.spmv_efficiency_f32 = 1.5;
  EXPECT_THROW(validate(model), std::invalid_argument);
  model = {};
  model.sort_pairs_per_second = -1.0;
  EXPECT_THROW(validate(model), std::invalid_argument);
  model = {};
  model.fixed_overhead_s = -1.0;
  EXPECT_THROW(validate(model), std::invalid_argument);
}

TEST(GpuPerfModel, SpmvTimeMatchesBandwidthArithmetic) {
  const GpuPerfModel model;
  const std::uint64_t nnz = 150'000'000;
  // 8 bytes/nnz at 549 * 0.43 GB/s.
  const double expected =
      nnz * 8.0 / (549e9 * 0.43) + model.fixed_overhead_s;
  EXPECT_NEAR(model.spmv_seconds(nnz, false), expected, 1e-9);
  // F16 moves 6 bytes at lower efficiency.
  EXPECT_LT(model.spmv_seconds(nnz, true), model.spmv_seconds(nnz, false));
}

TEST(GpuPerfModel, SortCostDominatesTopKForLargeN) {
  const GpuPerfModel model;
  const std::uint64_t rows = 10'000'000;
  const std::uint64_t nnz = 200'000'000;
  const double spmv = model.spmv_seconds(nnz, false);
  const double topk = model.topk_seconds(nnz, rows, false);
  EXPECT_GT(topk, spmv * 3.0);  // sorting 1e7 pairs swamps the SpMV
}

TEST(GpuPerfModel, ReproducesPaperScale) {
  // Figure 5, N = 0.5e7 (~1.5e8 nnz): CPU 279 ms, GPU F32 SpMV-only
  // ~55x -> ~5 ms.
  const GpuPerfModel model;
  const double seconds = model.spmv_seconds(150'000'000, false);
  EXPECT_NEAR(seconds, 279e-3 / 55.0, 1e-3);
}

TEST(GpuF16, MatchesExactForWellSeparatedScores) {
  // With few, well-separated rows the F16 rounding cannot permute the
  // ranking.
  sparse::Coo coo(4, 8);
  coo.push_back(0, 0, 0.9f);
  coo.push_back(1, 1, 0.5f);
  coo.push_back(2, 2, 0.25f);
  coo.push_back(3, 3, 0.06f);
  const sparse::Csr matrix = sparse::Csr::from_coo(std::move(coo));
  const std::vector<float> x(8, 0.35f);
  const auto result = gpu_f16_topk_spmv(matrix, x, 3);
  ASSERT_EQ(result.size(), 3u);
  EXPECT_EQ(result[0].index, 0u);
  EXPECT_EQ(result[1].index, 1u);
  EXPECT_EQ(result[2].index, 2u);
}

TEST(GpuF16, ScoresAreHalfPrecisionRounded) {
  const sparse::Csr matrix = test::small_random_matrix(100, 128, 20.0, 41);
  util::Xoshiro256 rng(42);
  const auto x = sparse::generate_dense_vector(128, rng);
  const auto f16 = gpu_f16_topk_spmv(matrix, x, 10);
  const auto exact = cpu_topk_spmv(matrix, x, 10, 1);
  // Scores must be close to exact but (almost surely) not identical:
  // fp16 has ~3 decimal digits.
  bool any_difference = false;
  for (const auto& entry : f16) {
    const double exact_score = matrix.row_dot(entry.index, x);
    EXPECT_NEAR(entry.value, exact_score, 0.02);
    any_difference |= entry.value != exact_score;
  }
  EXPECT_TRUE(any_difference);
  // Top-10 overlap should still be high.
  std::unordered_set<std::uint32_t> exact_rows;
  for (const auto& entry : exact) {
    exact_rows.insert(entry.index);
  }
  int hits = 0;
  for (const auto& entry : f16) {
    hits += exact_rows.count(entry.index);
  }
  EXPECT_GE(hits, 7);
}

TEST(GpuF16, ValidatesArguments) {
  const sparse::Csr matrix = test::small_random_matrix(10, 32, 3.0, 43);
  const std::vector<float> wrong(16, 0.1f);
  const std::vector<float> x(32, 0.1f);
  EXPECT_THROW((void)gpu_f16_topk_spmv(matrix, wrong, 5), std::invalid_argument);
  EXPECT_THROW((void)gpu_f16_topk_spmv(matrix, x, 0), std::invalid_argument);
}

}  // namespace
}  // namespace topk::baselines
