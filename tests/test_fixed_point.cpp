#include "fixed/fixed_point.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace topk::fixed {
namespace {

TEST(FixedFormat, ResolutionAndMaxRaw) {
  EXPECT_DOUBLE_EQ(kQ1_19.resolution(), std::ldexp(1.0, -19));
  EXPECT_DOUBLE_EQ(kQ1_31.resolution(), std::ldexp(1.0, -31));
  EXPECT_EQ(kQ1_19.max_raw(), (1u << 20) - 1);
  EXPECT_EQ(kQ1_31.max_raw(), 0xFFFFFFFFu);
  EXPECT_EQ(kQ1_19.frac_bits(), 19);
}

TEST(FixedFormat, ValidateRejectsBadFormats) {
  EXPECT_THROW(validate(FixedFormat{1, 0}), std::invalid_argument);
  EXPECT_THROW(validate(FixedFormat{33, 1}), std::invalid_argument);
  EXPECT_THROW(validate(FixedFormat{8, 8}), std::invalid_argument);
  EXPECT_THROW(validate(FixedFormat{8, -1}), std::invalid_argument);
  EXPECT_NO_THROW(validate(kQ1_19));
}

TEST(Quantize, ZeroAndNegativeClampToZero) {
  EXPECT_EQ(quantize(0.0, kQ1_19), 0u);
  EXPECT_EQ(quantize(-0.5, kQ1_19), 0u);
  EXPECT_EQ(quantize(std::nan(""), kQ1_19), 0u);
}

TEST(Quantize, SaturatesAtMax) {
  EXPECT_EQ(quantize(100.0, kQ1_19), kQ1_19.max_raw());
  EXPECT_EQ(quantize(2.0, kQ1_19), kQ1_19.max_raw());
}

TEST(Quantize, RoundTripErrorBoundedByHalfLsb) {
  util::Xoshiro256 rng(17);
  for (const FixedFormat& format : {kQ1_19, kQ1_24, kQ1_31, FixedFormat{10, 1}}) {
    for (int i = 0; i < 1000; ++i) {
      const double value = rng.uniform();
      const std::uint32_t raw = quantize(value, format);
      const double back = dequantize(raw, format);
      EXPECT_LE(std::abs(back - value), format.resolution() * 0.5 + 1e-15)
          << "V=" << format.total_bits;
    }
  }
}

TEST(Quantize, ExactValuesRoundTripExactly) {
  for (std::uint32_t raw : {0u, 1u, 12345u, (1u << 19), (1u << 20) - 1}) {
    EXPECT_EQ(quantize(dequantize(raw, kQ1_19), kQ1_19), raw);
  }
}

TEST(FixedAccumulator, SingleProductMatchesDouble) {
  FixedAccumulator acc;
  const std::uint32_t a = quantize(0.75, kQ1_19);
  const std::uint32_t b = quantize(0.5, kQ1_31);
  acc.add_product(a, kQ1_19.frac_bits(), b);
  EXPECT_NEAR(acc.to_double(), 0.375, 1e-9);
}

TEST(FixedAccumulator, AccumulationIsExactIntegerArithmetic) {
  // Two accumulators fed the same products in different groupings
  // must agree bit-for-bit (integer addition is associative).
  util::Xoshiro256 rng(23);
  FixedAccumulator all_at_once;
  FixedAccumulator grouped_a;
  FixedAccumulator grouped_b;
  for (int i = 0; i < 100; ++i) {
    const std::uint32_t v = quantize(rng.uniform(), kQ1_19);
    const std::uint32_t x = quantize(rng.uniform(), kQ1_31);
    all_at_once.add_product(v, 19, x);
    (i % 2 == 0 ? grouped_a : grouped_b).add_product(v, 19, x);
  }
  grouped_a.add(grouped_b);
  EXPECT_EQ(all_at_once.raw(), grouped_a.raw());
}

TEST(FixedAccumulator, ComparesByRaw) {
  FixedAccumulator small;
  FixedAccumulator large;
  small.add_product(quantize(0.1, kQ1_19), 19, quantize(0.9, kQ1_31));
  large.add_product(quantize(0.9, kQ1_19), 19, quantize(0.9, kQ1_31));
  EXPECT_LT(small, large);
  EXPECT_EQ(small, small);
}

TEST(FixedAccumulator, LowFracFormatsShiftLeft) {
  // frac bits below kAccFracBits - 31 exercise the left-shift path.
  const FixedFormat narrow{8, 1};  // 7 frac bits
  FixedAccumulator acc;
  acc.add_product(quantize(0.5, narrow), narrow.frac_bits(),
                  quantize(0.5, kQ1_31));
  EXPECT_NEAR(acc.to_double(), 0.25, 1.0 / 128.0);
}

using UQ1_19 = UFixed<20, 1>;

TEST(UFixed, FromDoubleToDouble) {
  const auto half = UQ1_19::from_double(0.5);
  EXPECT_DOUBLE_EQ(half.to_double(), 0.5);
  EXPECT_EQ(UQ1_19::from_double(0.0).raw(), 0u);
}

TEST(UFixed, AdditionSaturates) {
  const auto big = UQ1_19::from_double(1.5);
  const auto sum = big + big;
  EXPECT_DOUBLE_EQ(sum.to_double(),
                   dequantize(UQ1_19::format().max_raw(), UQ1_19::format()));
}

TEST(UFixed, MultiplicationMatchesDoubleWithinLsb) {
  util::Xoshiro256 rng(31);
  for (int i = 0; i < 1000; ++i) {
    const double a = rng.uniform();
    const double b = rng.uniform();
    const auto product = UQ1_19::from_double(a) * UQ1_19::from_double(b);
    EXPECT_NEAR(product.to_double(), a * b, 3.0 * UQ1_19::format().resolution());
  }
}

TEST(UFixed, ComparisonsFollowValues) {
  EXPECT_LT(UQ1_19::from_double(0.25), UQ1_19::from_double(0.5));
  EXPECT_EQ(UQ1_19::from_double(0.5), UQ1_19::from_double(0.5));
  EXPECT_GT(UQ1_19::from_double(1.0), UQ1_19::from_double(0.99));
}

/// Parameterised sweep: quantisation error stays within half an LSB
/// across the whole family of formats the benches explore.
class FixedFormatSweep : public ::testing::TestWithParam<int> {};

TEST_P(FixedFormatSweep, QuantizationErrorWithinHalfLsb) {
  const FixedFormat format{GetParam(), 1};
  validate(format);
  util::Xoshiro256 rng(GetParam());
  double max_error = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const double value = rng.uniform();
    const double back = dequantize(quantize(value, format), format);
    max_error = std::max(max_error, std::abs(back - value));
  }
  EXPECT_LE(max_error, format.resolution() * 0.5 + 1e-15);
}

TEST_P(FixedFormatSweep, DotProductErrorScalesWithResolution) {
  const FixedFormat format{GetParam(), 1};
  util::Xoshiro256 rng(GetParam() * 7);
  constexpr int kTerms = 40;  // a typical embedding row
  double exact = 0.0;
  FixedAccumulator acc;
  for (int i = 0; i < kTerms; ++i) {
    const double v = rng.uniform(0.0, 0.15);
    const double x = rng.uniform(0.0, 0.15);
    exact += v * x;
    acc.add_product(quantize(v, format), format.frac_bits(),
                    quantize(x, kQ1_31));
  }
  // Error per product is <= lsb/2 * |x| + tiny accumulator truncation.
  const double bound = kTerms * (format.resolution() * 0.5 * 0.15 + 1e-12) +
                       kTerms * std::ldexp(1.0, -kAccFracBits);
  EXPECT_NEAR(acc.to_double(), exact, bound) << "V=" << format.total_bits;
}

INSTANTIATE_TEST_SUITE_P(BitWidths, FixedFormatSweep,
                         ::testing::Values(8, 10, 12, 16, 20, 24, 25, 28, 32));

}  // namespace
}  // namespace topk::fixed
