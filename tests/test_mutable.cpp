// Tests for the mutable LSM tier: the DeltaIndex memtable (exact scan,
// masking, capacity backpressure, sequence bookkeeping), the
// MutableShardedIndex merge of sealed shards with the delta overlay,
// and the Compactor's fold -> save -> verified warm load -> atomic swap
// pipeline.  The acceptance gate runs throughout: every post-mutation
// query — before and after a compaction swap, at one and two replicas —
// must be bit-identical to an exact-sort index built cold from the
// logically-equivalent matrix (the live rows in ascending id order).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "index/backends.hpp"
#include "index/delta_index.hpp"
#include "index/mutable_index.hpp"
#include "index/registry.hpp"
#include "persist/compactor.hpp"
#include "persist/deployment.hpp"
#include "shard/mutable_sharded_index.hpp"
#include "test_helpers.hpp"

namespace topk::shard {
namespace {

std::shared_ptr<const sparse::Csr> shared_matrix(std::uint32_t rows,
                                                 std::uint32_t cols,
                                                 double mean_nnz,
                                                 std::uint64_t seed) {
  return std::make_shared<const sparse::Csr>(
      test::small_random_matrix(rows, cols, mean_nnz, seed));
}

/// One sparse row as (sorted unique column, value) pairs.
using SparseRow = std::vector<std::pair<std::uint32_t, float>>;

SparseRow random_row(std::uint32_t cols, std::uint32_t nnz,
                     util::Xoshiro256& rng) {
  std::vector<std::uint32_t> pool(cols);
  for (std::uint32_t c = 0; c < cols; ++c) {
    pool[c] = c;
  }
  for (std::uint32_t i = 0; i < nnz; ++i) {
    std::swap(pool[i], pool[i + rng() % (cols - i)]);
  }
  SparseRow row;
  for (std::uint32_t i = 0; i < nnz; ++i) {
    row.emplace_back(pool[i], static_cast<float>(rng.uniform(0.05, 1.0)));
  }
  std::sort(row.begin(), row.end());
  return row;
}

std::vector<std::uint32_t> row_columns(const SparseRow& row) {
  std::vector<std::uint32_t> columns;
  for (const auto& [c, v] : row) {
    columns.push_back(c);
  }
  return columns;
}

std::vector<float> row_values(const SparseRow& row) {
  std::vector<float> values;
  for (const auto& [c, v] : row) {
    values.push_back(v);
  }
  return values;
}

/// Appends a one-entry row — the minimal mutation for tests that only
/// need the mutation COUNT to move.
std::uint32_t append_single(index::MutableIndex& mut, std::uint32_t col,
                            float value) {
  const std::vector<std::uint32_t> columns{col};
  const std::vector<float> values{value};
  return mut.insert_row(columns, values);
}

/// Mirror of the logical matrix a mutable index represents: every
/// mutation applied to the index is applied here too, and oracle()
/// yields the live rows in ascending id order — the matrix the index's
/// results must be bit-identical to under the monotone live-id remap.
class LogicalModel {
 public:
  explicit LogicalModel(const sparse::Csr& base) : cols_(base.cols()) {
    for (std::uint32_t r = 0; r < base.rows(); ++r) {
      const auto cols = base.row_cols(r);
      const auto vals = base.row_values(r);
      SparseRow row;
      for (std::size_t i = 0; i < cols.size(); ++i) {
        row.emplace_back(cols[i], vals[i]);
      }
      rows_.emplace_back(std::move(row));
    }
  }

  std::uint32_t append(const SparseRow& row) {
    rows_.emplace_back(row);
    return static_cast<std::uint32_t>(rows_.size() - 1);
  }
  void upsert(std::uint32_t id, const SparseRow& row) { rows_.at(id) = row; }
  void erase(std::uint32_t id) { rows_.at(id) = std::nullopt; }

  /// The live-rows matrix plus the oracle-row -> global-id remap.
  struct Oracle {
    std::shared_ptr<const sparse::Csr> matrix;
    std::vector<std::uint32_t> live_ids;
  };
  [[nodiscard]] Oracle oracle() const {
    Oracle out;
    for (std::uint32_t id = 0; id < rows_.size(); ++id) {
      if (rows_[id].has_value()) {
        out.live_ids.push_back(id);
      }
    }
    sparse::Coo coo(static_cast<std::uint32_t>(out.live_ids.size()), cols_);
    for (std::uint32_t r = 0; r < out.live_ids.size(); ++r) {
      for (const auto& [c, v] : *rows_[out.live_ids[r]]) {
        coo.push_back(r, c, v);
      }
    }
    out.matrix =
        std::make_shared<const sparse::Csr>(sparse::Csr::from_coo(std::move(coo)));
    return out;
  }

 private:
  std::uint32_t cols_;
  std::vector<std::optional<SparseRow>> rows_;
};

/// The acceptance gate: `index` must answer every query bit-identically
/// to an exact-sort rebuild of the model's live matrix (values AND row
/// ids, after the monotone live-id remap), on the single-query and the
/// batch path.
void expect_matches_oracle(const index::SimilarityIndex& index,
                           const LogicalModel& model, int top_k,
                           std::uint64_t seed, const std::string& context) {
  const LogicalModel::Oracle oracle = model.oracle();
  ASSERT_GT(oracle.matrix->rows(), 0u) << context;
  const index::ExactSortIndex rebuilt(oracle.matrix);
  util::Xoshiro256 rng(seed);
  std::vector<std::vector<float>> queries;
  for (int q = 0; q < 4; ++q) {
    queries.push_back(sparse::generate_dense_vector(index.cols(), rng));
  }
  std::vector<std::vector<core::TopKEntry>> expected;
  for (const auto& x : queries) {
    auto entries = rebuilt.query(x, top_k).entries;
    // The remap is monotone in the row id, so the repo-wide tie order
    // (descending value, ascending id) survives it untouched.
    for (core::TopKEntry& entry : entries) {
      entry.index = oracle.live_ids[entry.index];
    }
    expected.push_back(std::move(entries));
  }
  for (std::size_t q = 0; q < queries.size(); ++q) {
    EXPECT_EQ(index.query(queries[q], top_k).entries, expected[q])
        << context << " query " << q;
  }
  const auto batch = index.query_batch(queries, top_k);
  ASSERT_EQ(batch.size(), queries.size()) << context;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    EXPECT_EQ(batch[q].entries, expected[q]) << context << " batch " << q;
  }
}

/// Builds a registry mutable index and hands back both typed views.
struct MutableHandles {
  std::shared_ptr<index::SimilarityIndex> index;
  std::shared_ptr<index::MutableIndex> mut;
  std::shared_ptr<MutableShardedIndex> typed;
};

MutableHandles build_mutable(std::shared_ptr<const sparse::Csr> matrix,
                             const std::string& inner, int shards,
                             int replicas,
                             const index::IndexOptions& extra = {}) {
  index::IndexOptions options = extra;
  options.shards = shards;
  options.replicas = replicas;
  MutableHandles handles;
  handles.index =
      index::make_index("mutable-sharded-" + inner, std::move(matrix), options);
  handles.mut = index::as_mutable(handles.index);
  handles.typed =
      std::dynamic_pointer_cast<MutableShardedIndex>(handles.index);
  EXPECT_NE(handles.mut, nullptr);
  EXPECT_NE(handles.typed, nullptr);
  return handles;
}

// ---------------------------------------------------------------- DeltaIndex

TEST(DeltaIndexTest, ScanScoresExactlyAndMasksSupersededAndDeleted) {
  // Base of 4 rows, 8 columns.  Append two rows, supersede base row 1,
  // delete base row 2 and appended row 4 — the scan must surface the
  // live delta versions with hand-computable double-accumulation
  // scores and mask exactly the base ids the sealed tier must hide.
  index::DeltaIndex delta(4, 8, 0);
  const std::vector<std::uint32_t> cols_a{1, 3};
  const std::vector<float> vals_a{0.5f, 0.25f};
  const std::vector<std::uint32_t> cols_b{0, 7};
  const std::vector<float> vals_b{1.0f, 0.125f};
  EXPECT_EQ(delta.append_row(cols_a, vals_a), 4u);
  EXPECT_EQ(delta.append_row(cols_b, vals_b), 5u);
  delta.upsert_row(1, cols_b, vals_b);   // supersedes base row 1
  EXPECT_TRUE(delta.delete_row(2));      // tombstones a base row
  EXPECT_TRUE(delta.delete_row(4));      // tombstones an appended row

  EXPECT_EQ(delta.rows(), 6u);
  EXPECT_EQ(delta.live_rows(), 4u);   // 6 ids - 2 tombstones
  EXPECT_EQ(delta.delta_rows(), 2u);  // live versions: ids 1, 5
  EXPECT_EQ(delta.tombstones(), 2u);
  EXPECT_EQ(delta.superseded(), 1u);
  EXPECT_EQ(delta.mutations(), 5u);

  std::vector<float> x(8, 0.0f);
  x[0] = 0.5f;
  x[7] = 2.0f;
  const auto scan = delta.scan(x, 10);
  EXPECT_EQ(scan.scanned, 2u);
  ASSERT_EQ(scan.masked, (std::vector<std::uint32_t>{1, 2}));
  // Both live versions hold row B; equal scores tie-break by ascending
  // global id.  Score = 1.0 * 0.5 + 0.125 * 2.0, accumulated in
  // doubles in ascending column order.
  const double score = 1.0 * 0.5 + 0.125 * 2.0;
  ASSERT_EQ(scan.entries.size(), 2u);
  EXPECT_EQ(scan.entries[0].index, 1u);
  EXPECT_EQ(scan.entries[0].value, score);
  EXPECT_EQ(scan.entries[1].index, 5u);
  EXPECT_EQ(scan.entries[1].value, score);

  // The SimilarityIndex view serves the same entries with global ids.
  EXPECT_EQ(delta.query(x, 10).entries, scan.entries);
}

TEST(DeltaIndexTest, UnsortedColumnsCanonicaliseBeforeScoring) {
  index::DeltaIndex delta(0, 16, 0);
  const std::vector<std::uint32_t> shuffled{9, 2, 14};
  const std::vector<float> shuffled_vals{0.3f, 0.7f, 0.1f};
  const std::vector<std::uint32_t> sorted{2, 9, 14};
  const std::vector<float> sorted_vals{0.7f, 0.3f, 0.1f};
  (void)delta.append_row(shuffled, shuffled_vals);
  (void)delta.append_row(sorted, sorted_vals);
  util::Xoshiro256 rng(7);
  const auto x = sparse::generate_dense_vector(16, rng);
  const auto scan = delta.scan(x, 2);
  ASSERT_EQ(scan.entries.size(), 2u);
  // Identical logical rows must score bit-identically regardless of
  // the column order they were inserted in.
  EXPECT_EQ(scan.entries[0].value, scan.entries[1].value);
}

TEST(DeltaIndexTest, RejectsMalformedRowsAndEnforcesCapacity) {
  index::DeltaIndex delta(2, 8, 2);
  const std::vector<std::uint32_t> ok_cols{0, 1};
  const std::vector<float> ok_vals{0.5f, 0.5f};
  const std::vector<float> one_val{0.5f};
  const std::vector<std::uint32_t> dup_cols{3, 3};
  const std::vector<std::uint32_t> oob_cols{1, 8};

  EXPECT_THROW((void)delta.append_row(ok_cols, one_val), std::invalid_argument);
  EXPECT_THROW((void)delta.append_row(dup_cols, ok_vals), std::invalid_argument);
  EXPECT_THROW((void)delta.append_row(oob_cols, ok_vals), std::invalid_argument);
  EXPECT_THROW((void)delta.upsert_row(5, ok_cols, ok_vals),
               std::invalid_argument);  // ids are append-only: no holes
  EXPECT_THROW((void)delta.delete_row(2), std::invalid_argument);

  // Capacity bounds LIVE delta rows: two appends fill it, the third
  // throws, and tombstoning a delta row frees a slot again.
  EXPECT_EQ(delta.append_row(ok_cols, ok_vals), 2u);
  EXPECT_EQ(delta.append_row(ok_cols, ok_vals), 3u);
  EXPECT_THROW((void)delta.append_row(ok_cols, ok_vals), std::runtime_error);
  EXPECT_TRUE(delta.delete_row(3));
  EXPECT_FALSE(delta.delete_row(3));  // idempotent
  EXPECT_EQ(delta.append_row(ok_cols, ok_vals), 4u);
}

// ------------------------------------------------ the bit-identicality gate

class MutableIndexTest : public test::TempDirFixture {};

TEST_F(MutableIndexTest, MutationsBitIdenticalToExactRebuildAcrossReplicas) {
  // The acceptance gate of the mutable tier: a scripted mix of
  // appends, upserts and deletes, checked against a cold exact-sort
  // rebuild of the logically-equivalent matrix BEFORE the compaction
  // swap, AFTER it, and again after a second mutate + compact round —
  // at one and two replicas.
  const auto matrix = shared_matrix(400, 64, 6.0, 91);
  for (const int replicas : {1, 2}) {
    SCOPED_TRACE("replicas " + std::to_string(replicas));
    auto handles = build_mutable(matrix, "exact-sort", 3, replicas);
    LogicalModel model(*matrix);
    util::Xoshiro256 rng(92);

    for (int i = 0; i < 12; ++i) {
      const SparseRow row = random_row(64, 5, rng);
      const std::uint32_t id =
          handles.mut->insert_row(row_columns(row), row_values(row));
      EXPECT_EQ(id, model.append(row));
    }
    for (const std::uint32_t id : {7u, 100u, 399u}) {
      const SparseRow row = random_row(64, 4, rng);
      handles.mut->insert_row(id, row_columns(row), row_values(row));
      model.upsert(id, row);
    }
    for (const std::uint32_t id : {0u, 5u, 250u, 404u}) {
      EXPECT_TRUE(handles.mut->delete_row(id));
      model.erase(id);
    }
    EXPECT_EQ(handles.mut->live_rows(), 412u - 4u);
    expect_matches_oracle(*handles.index, model, 25, 93, "pre-compaction");

    persist::Compactor compactor(
        handles.typed, dir() / ("r" + std::to_string(replicas)));
    const auto report = compactor.compact();
    ASSERT_TRUE(report.has_value());
    EXPECT_EQ(report->generation, 1u);
    EXPECT_EQ(report->folded_rows, 412u);
    EXPECT_EQ(report->tombstones, 4u);
    EXPECT_EQ(report->residual_mutations, 0u);
    EXPECT_TRUE(std::filesystem::exists(report->dir / persist::kManifestFilename));
    EXPECT_EQ(handles.mut->delta_stats().generation, 1u);
    EXPECT_EQ(handles.mut->delta_stats().mutations_since_seal, 0u);
    EXPECT_EQ(handles.mut->live_rows(), 412u - 4u);
    expect_matches_oracle(*handles.index, model, 25, 93, "post-compaction");

    // Round two exercises the inherited-tombstone paths: revive one
    // folded deletion via upsert, delete another row, fold again.
    const SparseRow revived = random_row(64, 6, rng);
    handles.mut->insert_row(5, row_columns(revived), row_values(revived));
    model.upsert(5, revived);
    EXPECT_TRUE(handles.mut->delete_row(42));
    model.erase(42);
    expect_matches_oracle(*handles.index, model, 25, 94, "post-revival");

    const auto second = compactor.compact();
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->generation, 2u);
    EXPECT_EQ(second->tombstones, 4u);  // 0, 250, 404 inherited + 42; 5 revived
    expect_matches_oracle(*handles.index, model, 25, 94, "generation 2");
    ASSERT_EQ(compactor.history().size(), 2u);
    EXPECT_GT(second->total_seconds, 0.0);
  }
}

TEST_F(MutableIndexTest, TombstoningAnEntireShardStillGathersExactly) {
  const auto matrix = shared_matrix(200, 32, 5.0, 95);
  auto handles = build_mutable(matrix, "exact-sort", 4, 1);
  LogicalModel model(*matrix);
  // Wipe out every row of sealed shard 0: its scatter calls return
  // only masked candidates, and the gather must still produce the
  // exact global top-k from the remaining shards.
  const core::Partition range = handles.typed->base()->shard(0).range;
  ASSERT_GT(range.rows(), 0u);
  for (std::uint32_t id = range.row_begin; id < range.row_end; ++id) {
    EXPECT_TRUE(handles.mut->delete_row(id));
    model.erase(id);
  }
  expect_matches_oracle(*handles.index, model, 15, 96, "empty shard");

  persist::Compactor compactor(handles.typed, dir());
  ASSERT_TRUE(compactor.compact().has_value());
  expect_matches_oracle(*handles.index, model, 15, 96, "empty shard folded");
}

TEST_F(MutableIndexTest, TopKBeyondLiveRowsReturnsExactlyTheLiveRows) {
  const auto matrix = shared_matrix(30, 32, 4.0, 97);
  auto handles = build_mutable(matrix, "exact-sort", 2, 1);
  LogicalModel model(*matrix);
  for (std::uint32_t id = 0; id < 25; ++id) {
    EXPECT_TRUE(handles.mut->delete_row(id));
    model.erase(id);
  }
  EXPECT_EQ(handles.mut->live_rows(), 5u);
  // top_k far above live_rows: every live row comes back, no deleted
  // id ever does — before and after the fold.
  util::Xoshiro256 rng(98);
  const auto x = sparse::generate_dense_vector(32, rng);
  const auto result = handles.index->query(x, 20);
  EXPECT_EQ(result.entries.size(), 5u);
  for (const core::TopKEntry& entry : result.entries) {
    EXPECT_GE(entry.index, 25u);
  }
  expect_matches_oracle(*handles.index, model, 20, 99, "sparse survivors");

  persist::Compactor compactor(handles.typed, dir());
  ASSERT_TRUE(compactor.compact().has_value());
  EXPECT_EQ(handles.index->query(x, 20).entries, result.entries);
  expect_matches_oracle(*handles.index, model, 20, 99, "folded survivors");
}

// -------------------------------------------------------- mutation edge cases

TEST(MutableShardedTest, DeleteOfNonexistentRowThrows) {
  const auto matrix = shared_matrix(50, 32, 4.0, 101);
  auto handles = build_mutable(matrix, "cpu-heap", 2, 1);
  EXPECT_THROW((void)handles.mut->delete_row(50), std::invalid_argument);
  EXPECT_THROW((void)handles.mut->delete_row(57), std::invalid_argument);
  EXPECT_THROW(handles.mut->insert_row(51, {}, {}), std::invalid_argument);
  EXPECT_EQ(handles.mut->live_rows(), 50u);
  EXPECT_EQ(handles.mut->delta_stats().mutations_since_seal, 0u);
}

TEST(MutableShardedTest, ReinsertAfterDeleteRevivesTheId) {
  const auto matrix = shared_matrix(60, 32, 4.0, 102);
  auto handles = build_mutable(matrix, "exact-sort", 2, 1);
  LogicalModel model(*matrix);
  EXPECT_TRUE(handles.mut->delete_row(10));
  EXPECT_FALSE(handles.mut->delete_row(10));
  model.erase(10);
  EXPECT_EQ(handles.mut->live_rows(), 59u);
  expect_matches_oracle(*handles.index, model, 10, 103, "deleted");

  util::Xoshiro256 rng(104);
  const SparseRow row = random_row(32, 5, rng);
  handles.mut->insert_row(10, row_columns(row), row_values(row));
  model.upsert(10, row);
  EXPECT_EQ(handles.mut->live_rows(), 60u);
  EXPECT_EQ(handles.mut->delta_stats().tombstones, 0u);
  expect_matches_oracle(*handles.index, model, 10, 103, "revived");
}

TEST_F(MutableIndexTest, EmptyDeltaCompactionIsANoOp) {
  const auto matrix = shared_matrix(80, 32, 4.0, 105);
  auto handles = build_mutable(matrix, "cpu-heap", 2, 1);
  persist::Compactor compactor(handles.typed, dir());
  EXPECT_FALSE(compactor.compact().has_value());
  EXPECT_EQ(handles.mut->delta_stats().generation, 0u);
  EXPECT_FALSE(std::filesystem::exists(dir() / "gen-1"));
  EXPECT_TRUE(compactor.history().empty());

  // After a real compaction the delta is sealed again: an immediate
  // second compact() is the same no-op at the next generation.
  (void)append_single(*handles.mut, 0, 0.5f);
  ASSERT_TRUE(compactor.compact().has_value());
  EXPECT_FALSE(compactor.compact().has_value());
  EXPECT_EQ(handles.mut->delta_stats().generation, 1u);
  EXPECT_FALSE(std::filesystem::exists(dir() / "gen-2"));
}

TEST_F(MutableIndexTest, CapacityBackpressureLiftsAfterCompaction) {
  const auto matrix = shared_matrix(40, 32, 4.0, 106);
  index::IndexOptions options;
  options.delta_capacity = 2;
  options.compact_threshold = 8;
  auto handles = build_mutable(matrix, "cpu-heap", 2, 1, options);
  EXPECT_EQ(handles.mut->delta_stats().delta_capacity, 2u);
  EXPECT_EQ(handles.mut->delta_stats().compact_threshold, 8u);

  (void)append_single(*handles.mut, 0, 0.5f);
  (void)append_single(*handles.mut, 1, 0.5f);
  EXPECT_THROW((void)append_single(*handles.mut, 2, 0.5f),
               std::runtime_error);

  // Two mutations is under the threshold of 8 — maybe_compact holds
  // off; an explicit compact() folds the delta and frees the capacity.
  persist::Compactor compactor(handles.typed, dir());
  EXPECT_FALSE(compactor.maybe_compact().has_value());
  ASSERT_TRUE(compactor.compact().has_value());
  EXPECT_EQ(append_single(*handles.mut, 2, 0.5f), 42u);

  // Seven more mutations reach the threshold and maybe_compact fires.
  for (int i = 0; i < 7; ++i) {
    (void)handles.mut->delete_row(static_cast<std::uint32_t>(i));
    if (i < 6) {
      EXPECT_FALSE(compactor.maybe_compact().has_value());
    }
  }
  const auto report = compactor.maybe_compact();
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->generation, 2u);
}

TEST(MutableShardedTest, CompactionGuardIsExclusiveAndAbortable) {
  const auto matrix = shared_matrix(60, 32, 4.0, 107);
  auto handles = build_mutable(matrix, "cpu-heap", 2, 1);
  (void)append_single(*handles.mut, 0, 0.5f);
  auto ticket = handles.typed->begin_compaction();
  ASSERT_TRUE(ticket.has_value());
  EXPECT_THROW((void)handles.typed->begin_compaction(), std::logic_error);
  handles.typed->abort_compaction();
  // The guard is free again and the index kept serving generation 0.
  EXPECT_EQ(handles.mut->delta_stats().generation, 0u);
  auto second = handles.typed->begin_compaction();
  ASSERT_TRUE(second.has_value());
  handles.typed->abort_compaction();

  // A next generation of the wrong shape is rejected before any swap.
  const auto folded = MutableShardedIndex::fold(*second);
  EXPECT_EQ(folded.matrix.rows(), 61u);  // 60 base rows + 1 append
  EXPECT_TRUE(folded.retired.empty());
  const auto wrong = shared_matrix(10, 32, 4.0, 108);
  EXPECT_THROW((void)handles.typed->finish_compaction(
                   *second, test::build_test_sharded(wrong, 2, "cpu-heap"),
                   wrong, {}),
               std::invalid_argument);
  handles.typed->abort_compaction();
}

// ------------------------------------------------- concurrency during swap

TEST_F(MutableIndexTest, ConcurrentQueriesDuringCompactionSwapNeverFail) {
  // Four query threads run flat out while the main thread compacts
  // twice and a mutator appends rows.  No query may throw, block on
  // the swap, return a deleted id, or see a malformed top-k — and the
  // final settled state must still pass the oracle gate.
  const auto matrix = shared_matrix(300, 32, 5.0, 109);
  auto handles = build_mutable(matrix, "cpu-heap", 2, 1);
  LogicalModel model(*matrix);
  const std::vector<std::uint32_t> deleted{3, 77};
  for (const std::uint32_t id : deleted) {
    ASSERT_TRUE(handles.mut->delete_row(id));
    model.erase(id);
  }

  constexpr int kTopK = 8;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> failures{0};
  std::atomic<std::uint64_t> served{0};
  std::vector<std::thread> readers;
  std::set<std::uint64_t> generations;
  std::mutex generations_mutex;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      util::Xoshiro256 rng(200 + static_cast<std::uint64_t>(t));
      std::set<std::uint64_t> seen;
      while (!stop.load(std::memory_order_relaxed)) {
        try {
          const auto x = sparse::generate_dense_vector(32, rng);
          const auto result = handles.index->query(x, kTopK);
          bool ok =
              result.entries.size() == static_cast<std::size_t>(kTopK);
          for (std::size_t i = 0; ok && i < result.entries.size(); ++i) {
            const core::TopKEntry& entry = result.entries[i];
            ok = !std::binary_search(deleted.begin(), deleted.end(),
                                     entry.index) &&
                 (i == 0 || !core::topk_entry_before(entry,
                                                     result.entries[i - 1]));
          }
          const auto* stats = index::mutable_stats(result);
          ok = ok && stats != nullptr;
          if (stats != nullptr) {
            seen.insert(stats->generation);
          }
          if (!ok) {
            failures.fetch_add(1, std::memory_order_relaxed);
          }
          served.fetch_add(1, std::memory_order_relaxed);
        } catch (...) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
      const std::lock_guard<std::mutex> lock(generations_mutex);
      generations.insert(seen.begin(), seen.end());
    });
  }
  // One mutator thread appends deterministic rows: ids are sequential
  // because it is the only concurrent mutation source, so the logical
  // model can be mirrored after the fact.
  std::vector<SparseRow> appended;
  {
    util::Xoshiro256 rng(110);
    for (int i = 0; i < 120; ++i) {
      appended.push_back(random_row(32, 4, rng));
    }
  }
  std::thread mutator([&] {
    for (const SparseRow& row : appended) {
      (void)handles.mut->insert_row(row_columns(row), row_values(row));
      std::this_thread::yield();
    }
  });

  persist::Compactor compactor(handles.typed, dir());
  const auto first = compactor.compact();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->generation, 1u);
  mutator.join();
  const auto second = compactor.compact();  // residual appends, if any
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& reader : readers) {
    reader.join();
  }

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GT(served.load(), 0u);
  EXPECT_FALSE(generations.empty());
  const std::uint64_t final_generation = second.has_value() ? 2u : 1u;
  EXPECT_EQ(handles.mut->delta_stats().generation, final_generation);
  for (const std::uint64_t g : generations) {
    EXPECT_LE(g, final_generation);
  }

  for (const SparseRow& row : appended) {
    model.append(row);
  }
  expect_matches_oracle(*handles.index, model, 15, 111, "settled");
}

// ------------------------------------------------------------ warm restarts

TEST_F(MutableIndexTest, WarmRestartAdoptsGenerationAndTombstones) {
  const auto matrix = shared_matrix(150, 32, 5.0, 112);
  auto handles = build_mutable(matrix, "exact-sort", 2, 2);
  LogicalModel model(*matrix);
  util::Xoshiro256 rng(113);
  for (int i = 0; i < 6; ++i) {
    const SparseRow row = random_row(32, 4, rng);
    (void)handles.mut->insert_row(row_columns(row), row_values(row));
    model.append(row);
  }
  for (const std::uint32_t id : {9u, 33u}) {
    ASSERT_TRUE(handles.mut->delete_row(id));
    model.erase(id);
  }
  persist::Compactor compactor(handles.typed, dir());
  const auto report = compactor.compact();
  ASSERT_TRUE(report.has_value());

  // A fresh process resumes from the generation image alone: the v2
  // manifest supplies the generation, the inherited tombstones, and
  // the replica fan-out comes from the options.
  const auto warm = index::IndexBuilder()
                        .backend("mutable-sharded-exact-sort")
                        .deployment_dir(report->dir.string())
                        .replicas(2)
                        .build();
  const auto warm_mut = index::as_mutable(warm);
  ASSERT_NE(warm_mut, nullptr);
  EXPECT_EQ(warm_mut->delta_stats().generation, 1u);
  EXPECT_EQ(warm_mut->rows(), 156u);
  EXPECT_EQ(warm_mut->live_rows(), 154u);
  expect_matches_oracle(*warm, model, 12, 114, "warm restart");

  // The warm index stays fully mutable: it can absorb new mutations
  // and fold them into generation 2 (the exact-sort images carry the
  // host matrix, so the fold has something to fold against).
  ASSERT_TRUE(warm_mut->delete_row(100));
  model.erase(100);
  const SparseRow row = random_row(32, 5, rng);
  (void)warm_mut->insert_row(row_columns(row), row_values(row));
  model.append(row);
  expect_matches_oracle(*warm, model, 12, 115, "warm + mutated");

  persist::Compactor warm_compactor(
      std::dynamic_pointer_cast<MutableShardedIndex>(warm), dir() / "warm");
  const auto second = warm_compactor.compact();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->generation, 2u);
  EXPECT_EQ(second->tombstones, 3u);  // 9, 33 inherited + 100
  expect_matches_oracle(*warm, model, 12, 115, "warm generation 2");
}

TEST_F(MutableIndexTest, FpgaWarmLoadServesButRefusesToCompact) {
  // An fpga-sim warm load serves its quantised device image only — no
  // host matrix to fold against, so compaction must refuse cleanly
  // while queries keep working.
  const auto matrix = shared_matrix(120, 64, 6.0, 116);
  index::IndexOptions options;
  options.design = core::DesignConfig::fixed(20, 4);
  auto handles = build_mutable(matrix, "fpga-sim", 2, 1, options);
  (void)handles.mut->delete_row(11);
  persist::Compactor compactor(handles.typed, dir());
  const auto report = compactor.compact();
  ASSERT_TRUE(report.has_value());  // cold build retains the matrix

  index::IndexOptions warm_options = options;
  warm_options.deployment_dir = report->dir.string();
  const auto warm =
      index::make_index("mutable-sharded-fpga-sim", nullptr, warm_options);
  const auto warm_mut = index::as_mutable(warm);
  ASSERT_NE(warm_mut, nullptr);
  EXPECT_EQ(warm_mut->delta_stats().generation, 1u);

  // Same sealed generation, empty deltas on both sides: bit-identical.
  util::Xoshiro256 rng(117);
  const auto x = sparse::generate_dense_vector(64, rng);
  EXPECT_EQ(warm->query(x, 10).entries, handles.index->query(x, 10).entries);

  (void)warm_mut->delete_row(40);
  persist::Compactor warm_compactor(
      std::dynamic_pointer_cast<MutableShardedIndex>(warm), dir() / "warm");
  EXPECT_THROW((void)warm_compactor.compact(), std::runtime_error);
  // The refusal left no claimed guard and no swapped state behind.
  EXPECT_EQ(warm_mut->delta_stats().generation, 1u);
  EXPECT_EQ(warm->query(x, 10).entries.size(), 10u);
  EXPECT_THROW((void)warm_compactor.compact(), std::runtime_error);
}

// -------------------------------------------------------- registry + stats

TEST(MutableRegistryTest, MutableBackendsAreRegisteredAndTyped) {
  const auto names = index::registered_backends();
  for (const char* name :
       {"mutable-sharded-fpga-sim", "mutable-sharded-cpu-heap",
        "mutable-sharded-exact-sort", "mutable-sharded-gpu-f16"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end())
        << name;
  }
  const auto matrix = shared_matrix(40, 32, 4.0, 118);
  // Sealed backends stay sealed: as_mutable is the typed gate.
  EXPECT_EQ(index::as_mutable(index::make_index("cpu-heap", matrix)), nullptr);
  EXPECT_EQ(index::as_mutable(index::make_index("sharded-exact-sort", matrix)),
            nullptr);
  EXPECT_THROW((void)index::make_index("mutable-sharded-cpu-heap", nullptr),
               std::invalid_argument);

  const auto built = index::IndexBuilder()
                         .backend("mutable-sharded-cpu-heap")
                         .matrix(matrix)
                         .shards(2)
                         .delta_capacity(16)
                         .compact_threshold(8)
                         .build();
  const auto mut = index::as_mutable(built);
  ASSERT_NE(mut, nullptr);
  EXPECT_EQ(mut->delta_stats().delta_capacity, 16u);
  EXPECT_EQ(mut->delta_stats().compact_threshold, 8u);
  EXPECT_EQ(built->describe().backend, "mutable-sharded-cpu-heap");
}

TEST(MutableRegistryTest, QueryStatsExposeTheMutableTier) {
  const auto matrix = shared_matrix(100, 32, 4.0, 119);
  auto handles = build_mutable(matrix, "cpu-heap", 2, 2);
  util::Xoshiro256 rng(120);
  const SparseRow row = random_row(32, 4, rng);
  (void)handles.mut->insert_row(row_columns(row), row_values(row));
  (void)handles.mut->delete_row(17);

  const auto x = sparse::generate_dense_vector(32, rng);
  const auto result = handles.index->query(x, 10);
  const auto* stats = index::mutable_stats(result);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->generation, 0u);
  EXPECT_EQ(stats->delta_scanned, 1u);
  EXPECT_EQ(stats->masked_rows, 1u);  // the tombstoned base id
  EXPECT_LE(stats->delta_candidates, 1u);
  // Dashboards written against the sealed tier read the same result:
  // shard_stats() surfaces the embedded gather stats.
  const auto* shard = index::shard_stats(result);
  ASSERT_NE(shard, nullptr);
  EXPECT_EQ(shard->replicas, 2);
  EXPECT_GE(result.stats.rows_scanned, 100u);
}

// ------------------------------------------------ stats-vs-mutation races

TEST(MutableShardedTest, ConcurrentDeltaStats) {
  // Regression for the unlocked DeltaIndex::delta_rows(): stats
  // readers (delta_stats()/describe() walking the version map) raced
  // concurrent mutations rebalancing it.  Under TSan this test is the
  // proof; under plain builds it still checks the settled counters.
  const auto matrix = shared_matrix(200, 32, 4.0, 211);
  auto handles = build_mutable(matrix, "cpu-heap", 2, 1);

  constexpr int kAppendThreads = 2;
  constexpr int kAppendsPerThread = 150;
  constexpr std::uint32_t kDeletes = 60;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> snapshots{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const index::DeltaStats stats = handles.mut->delta_stats();
        // Bounds that hold at every instant of the run, whatever
        // interleaving the snapshot lands on.
        EXPECT_LE(stats.tombstones, kDeletes);
        EXPECT_LE(stats.delta_rows,
                  static_cast<std::uint64_t>(kAppendThreads) *
                      kAppendsPerThread);
        EXPECT_LE(stats.delta_rows + stats.tombstones,
                  stats.mutations_since_seal);
        const index::IndexDescription description = handles.index->describe();
        EXPECT_GE(description.rows, matrix->rows());
        EXPECT_LE(handles.mut->live_rows(),
                  static_cast<std::uint64_t>(matrix->rows()) +
                      static_cast<std::uint64_t>(kAppendThreads) *
                          kAppendsPerThread);
        snapshots.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::vector<std::thread> mutators;
  for (int t = 0; t < kAppendThreads; ++t) {
    mutators.emplace_back([&, t] {
      for (int i = 0; i < kAppendsPerThread; ++i) {
        (void)append_single(*handles.mut,
                            static_cast<std::uint32_t>((t * 7 + i) % 32),
                            0.25f);
      }
    });
  }
  mutators.emplace_back([&] {
    for (std::uint32_t id = 0; id < kDeletes; ++id) {
      EXPECT_TRUE(handles.mut->delete_row(id));
    }
  });
  for (auto& thread : mutators) {
    thread.join();
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& thread : readers) {
    thread.join();
  }
  EXPECT_GT(snapshots.load(std::memory_order_relaxed), 0u);

  const index::DeltaStats settled = handles.mut->delta_stats();
  EXPECT_EQ(settled.delta_rows,
            static_cast<std::uint64_t>(kAppendThreads) * kAppendsPerThread);
  EXPECT_EQ(settled.tombstones, kDeletes);
  EXPECT_EQ(settled.mutations_since_seal,
            static_cast<std::uint64_t>(kAppendThreads) * kAppendsPerThread +
                kDeletes);
  EXPECT_EQ(handles.mut->live_rows(),
            static_cast<std::uint64_t>(matrix->rows()) - kDeletes +
                static_cast<std::uint64_t>(kAppendThreads) *
                    kAppendsPerThread);
}

}  // namespace
}  // namespace topk::shard
