#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/stats.hpp"

namespace topk::util {
namespace {

TEST(Xoshiro256, DeterministicForSeed) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += (a() == b());
  }
  EXPECT_LT(equal, 2);
}

TEST(Xoshiro256, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  RunningStats stats;
  for (int i = 0; i < 100'000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    stats.add(u);
  }
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.005);
}

TEST(Xoshiro256, UniformRangeRespectsBounds) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform(2.5, 7.5);
    ASSERT_GE(u, 2.5);
    ASSERT_LT(u, 7.5);
  }
}

TEST(Xoshiro256, BoundedCoversRangeUniformly) {
  Xoshiro256 rng(11);
  constexpr std::uint64_t kBound = 10;
  std::vector<int> counts(kBound, 0);
  constexpr int kTrials = 100'000;
  for (int i = 0; i < kTrials; ++i) {
    const std::uint64_t v = rng.bounded(kBound);
    ASSERT_LT(v, kBound);
    ++counts[v];
  }
  for (const int count : counts) {
    EXPECT_NEAR(count, kTrials / kBound, kTrials * 0.01);
  }
}

TEST(Xoshiro256, BoundedZeroReturnsZero) {
  Xoshiro256 rng(5);
  EXPECT_EQ(rng.bounded(0), 0u);
  EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Xoshiro256, SplitStreamsAreIndependent) {
  Xoshiro256 parent(13);
  Xoshiro256 child = parent.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += (parent() == child());
  }
  EXPECT_LT(equal, 2);
}

TEST(SplitMix64, KnownSequence) {
  // Reference values from the splitmix64 reference implementation
  // seeded with 0.
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64(state), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(splitmix64(state), 0x6E789E6AA1B965F4ULL);
  EXPECT_EQ(splitmix64(state), 0x06C45D188009454FULL);
}

}  // namespace
}  // namespace topk::util
