// Tests for the unified multi-backend index subsystem: the backend
// registry, IndexBuilder, the shared validation path, describe()
// metadata, and — the comparative heart of the paper — cross-backend
// agreement: the exact backends must be bit-identical, and the
// approximate ones must clear a recall floor against them.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/accelerator.hpp"
#include "eval/ranking.hpp"
#include "index/backends.hpp"
#include "index/registry.hpp"
#include "test_helpers.hpp"

namespace topk::index {
namespace {

std::shared_ptr<const sparse::Csr> shared_matrix(std::uint32_t rows,
                                                 std::uint32_t cols,
                                                 double mean_nnz,
                                                 std::uint64_t seed) {
  return std::make_shared<const sparse::Csr>(
      test::small_random_matrix(rows, cols, mean_nnz, seed));
}

std::vector<std::uint32_t> indices_of(const QueryResult& result) {
  std::vector<std::uint32_t> indices;
  indices.reserve(result.entries.size());
  for (const core::TopKEntry& entry : result.entries) {
    indices.push_back(entry.index);
  }
  return indices;
}

// ------------------------------------------------------------------ Registry

TEST(IndexRegistryTest, RegisteredBackendsContainsAllBuiltins) {
  const auto names = registered_backends();
  for (const char* expected : {"cpu-heap", "exact-sort", "fpga-sim", "gpu-f16"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
    EXPECT_TRUE(has_backend(expected)) << expected;
  }
}

TEST(IndexRegistryTest, MakeIndexConstructsEveryRegisteredBackend) {
  const auto matrix = shared_matrix(300, 128, 8.0, 11);
  IndexOptions options;
  options.design = core::DesignConfig::fixed(20, 4);
  for (const std::string& name : registered_backends()) {
    const auto index = make_index(name, matrix, options);
    ASSERT_NE(index, nullptr) << name;
    EXPECT_EQ(index->describe().backend, name);
    EXPECT_EQ(index->rows(), matrix->rows()) << name;
    EXPECT_EQ(index->cols(), matrix->cols()) << name;
    EXPECT_GT(index->describe().memory_bytes, 0u) << name;
  }
}

TEST(IndexRegistryTest, UnknownBackendThrowsWithRegisteredNames) {
  const auto matrix = shared_matrix(100, 64, 6.0, 12);
  try {
    (void)make_index("annoy", matrix);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("annoy"), std::string::npos);
    EXPECT_NE(message.find("fpga-sim"), std::string::npos);
  }
}

TEST(IndexRegistryTest, RejectsDuplicateAndInvalidRegistrations) {
  EXPECT_THROW(register_backend("cpu-heap",
                                [](std::shared_ptr<const sparse::Csr> m,
                                   const IndexOptions&)
                                    -> std::shared_ptr<SimilarityIndex> {
                                  return std::make_shared<CpuHeapIndex>(m);
                                }),
               std::invalid_argument);
  EXPECT_THROW(register_backend("", nullptr), std::invalid_argument);
  EXPECT_THROW(register_backend("null-factory", nullptr),
               std::invalid_argument);
}

TEST(IndexRegistryTest, CustomBackendsPlugIntoTheRegistry) {
  // A third-party backend (here: just the CPU heap under a new name)
  // registers once and is immediately constructible by name.
  register_backend("custom-cpu-alias",
                   [](std::shared_ptr<const sparse::Csr> m, const IndexOptions&)
                       -> std::shared_ptr<SimilarityIndex> {
                     return std::make_shared<CpuHeapIndex>(std::move(m));
                   });
  EXPECT_TRUE(has_backend("custom-cpu-alias"));
  const auto matrix = shared_matrix(200, 64, 6.0, 13);
  const auto index = make_index("custom-cpu-alias", matrix);
  EXPECT_EQ(index->query(std::vector<float>(64, 0.5f), 5).entries.size(), 5u);
}

TEST(IndexRegistryTest, MakeIndexRejectsNullMatrix) {
  EXPECT_THROW((void)make_index("cpu-heap", nullptr), std::invalid_argument);
}

TEST(IndexBuilderTest, BuildsConfiguredBackends) {
  const auto matrix = shared_matrix(300, 128, 8.0, 14);
  const auto fpga = IndexBuilder()
                        .backend("fpga-sim")
                        .matrix(matrix)
                        .design(core::DesignConfig::fixed(25, 4))
                        .build();
  const auto description = fpga->describe();
  EXPECT_EQ(description.backend, "fpga-sim");
  EXPECT_NE(description.detail.find("25b"), std::string::npos)
      << description.detail;
  EXPECT_THROW((void)IndexBuilder().backend("cpu-heap").build(),
               std::invalid_argument);
  EXPECT_THROW(
      (void)IndexBuilder().backend("annoy").matrix(matrix).build(),
      std::invalid_argument);
}

// -------------------------------------------------------------- describe()

TEST(IndexDescribeTest, CapabilityMetadataPerBackend) {
  const auto matrix = shared_matrix(400, 128, 8.0, 15);
  IndexOptions options;
  options.design = core::DesignConfig::fixed(20, 4);

  const auto fpga = make_index("fpga-sim", matrix, options);
  EXPECT_FALSE(fpga->describe().exact);
  EXPECT_EQ(fpga->describe().max_top_k, 8 * 4);  // k * cores
  EXPECT_EQ(fpga->max_top_k(), 8 * 4);

  const auto cpu = make_index("cpu-heap", matrix);
  EXPECT_TRUE(cpu->describe().exact);
  EXPECT_EQ(cpu->describe().max_top_k, 0);  // bounded only by rows

  const auto exact = make_index("exact-sort", matrix);
  EXPECT_TRUE(exact->describe().exact);

  const auto gpu = make_index("gpu-f16", matrix);
  EXPECT_FALSE(gpu->describe().exact);
  EXPECT_LT(gpu->describe().memory_bytes, cpu->describe().memory_bytes)
      << "F16 image must be smaller than the F32 CSR";
}

// -------------------------------------------------------------- validation

TEST(IndexValidationTest, UniformErrorsAcrossBackends) {
  const auto matrix = shared_matrix(300, 128, 8.0, 16);
  IndexOptions options;
  options.design = core::DesignConfig::fixed(20, 4);
  for (const std::string& name : registered_backends()) {
    const auto index = make_index(name, matrix, options);
    EXPECT_THROW((void)index->query(std::vector<float>(5, 0.0f), 10),
                 std::invalid_argument)
        << name;
    EXPECT_THROW((void)index->query(std::vector<float>(128, 0.0f), 0),
                 std::invalid_argument)
        << name;
    EXPECT_THROW((void)index->query_batch({std::vector<float>(5, 0.0f)}, 10),
                 std::invalid_argument)
        << name;
    // An empty batch still rejects an invalid top_k.
    EXPECT_THROW((void)index->query_batch({}, -1), std::invalid_argument)
        << name;
  }
  // The FPGA merge bound applies on top of the shared checks.
  const auto fpga = make_index("fpga-sim", matrix, options);
  EXPECT_THROW((void)fpga->query(std::vector<float>(128, 0.0f), 8 * 4 + 1),
               std::invalid_argument);
}

TEST(IndexValidationTest, AcceleratorSingleAndBatchMessagesCannotDrift) {
  // Satellite check: TopKAccelerator::query and validate_batch funnel
  // through one validate_query, so the messages are identical.
  const auto matrix = shared_matrix(300, 128, 8.0, 17);
  const core::TopKAccelerator accelerator(*matrix,
                                          core::DesignConfig::fixed(20, 4));
  const std::vector<float> wrong_size(5, 0.0f);
  std::string single_message;
  std::string batch_message;
  try {
    (void)accelerator.query(wrong_size, 10);
  } catch (const std::invalid_argument& error) {
    single_message = error.what();
  }
  try {
    accelerator.validate_batch({wrong_size}, 10);
  } catch (const std::invalid_argument& error) {
    batch_message = error.what();
  }
  ASSERT_FALSE(single_message.empty());
  EXPECT_EQ(single_message, batch_message);

  std::string single_topk;
  std::string batch_topk;
  try {
    (void)accelerator.query(std::vector<float>(128, 0.0f), 8 * 4 + 1);
  } catch (const std::invalid_argument& error) {
    single_topk = error.what();
  }
  try {
    accelerator.validate_batch({std::vector<float>(128, 0.0f)}, 8 * 4 + 1);
  } catch (const std::invalid_argument& error) {
    batch_topk = error.what();
  }
  ASSERT_FALSE(single_topk.empty());
  EXPECT_EQ(single_topk, batch_topk);
}

// -------------------------------------------------- stats extension payloads

TEST(IndexStatsTest, TypedExtensionsMatchTheBackend) {
  const auto matrix = shared_matrix(400, 128, 8.0, 18);
  IndexOptions options;
  options.design = core::DesignConfig::fixed(20, 4);
  util::Xoshiro256 rng(18);
  const auto x = sparse::generate_dense_vector(128, rng);

  const auto fpga_result = make_index("fpga-sim", matrix, options)->query(x, 10);
  ASSERT_NE(fpga_stats(fpga_result), nullptr);
  EXPECT_EQ(gpu_stats(fpga_result), nullptr);
  EXPECT_GT(fpga_stats(fpga_result)->total_packets, 0u);
  EXPECT_GT(fpga_result.stats.modelled_seconds, 0.0);
  EXPECT_EQ(fpga_result.stats.rows_scanned, matrix->rows());

  const auto gpu_result = make_index("gpu-f16", matrix)->query(x, 10);
  ASSERT_NE(gpu_stats(gpu_result), nullptr);
  EXPECT_EQ(fpga_stats(gpu_result), nullptr);
  EXPECT_GT(gpu_stats(gpu_result)->modelled_spmv_seconds, 0.0);
  EXPECT_GE(gpu_stats(gpu_result)->modelled_topk_seconds,
            gpu_stats(gpu_result)->modelled_spmv_seconds);

  const auto cpu_result = make_index("cpu-heap", matrix)->query(x, 10);
  EXPECT_EQ(fpga_stats(cpu_result), nullptr);
  EXPECT_EQ(gpu_stats(cpu_result), nullptr);
  EXPECT_EQ(cpu_result.stats.modelled_seconds, 0.0);
  EXPECT_EQ(cpu_result.stats.rows_scanned, matrix->rows());
}

// ------------------------------------------------- cross-backend agreement

struct AgreementParam {
  std::uint32_t rows;
  std::uint32_t cols;
  double mean_nnz;
  std::uint64_t seed;
  int top_k;
};

class CrossBackendAgreementTest
    : public ::testing::TestWithParam<AgreementParam> {};

TEST_P(CrossBackendAgreementTest, ExactBackendsAreBitIdentical) {
  const AgreementParam param = GetParam();
  const auto matrix =
      shared_matrix(param.rows, param.cols, param.mean_nnz, param.seed);
  const auto cpu = make_index("cpu-heap", matrix);
  const auto exact = make_index("exact-sort", matrix);
  const auto simd = make_index("cpu-simd", matrix);

  util::Xoshiro256 rng(param.seed + 1);
  for (int q = 0; q < 4; ++q) {
    const auto x = sparse::generate_dense_vector(param.cols, rng);
    const auto cpu_result = cpu->query(x, param.top_k);
    const auto exact_result = exact->query(x, param.top_k);
    ASSERT_EQ(cpu_result.entries.size(), exact_result.entries.size());
    for (std::size_t i = 0; i < cpu_result.entries.size(); ++i) {
      EXPECT_EQ(cpu_result.entries[i], exact_result.entries[i])
          << "query " << q << ", rank " << i;
    }
    // The vectorized screen + rescore path is exact by construction.
    EXPECT_EQ(simd->query(x, param.top_k).entries, cpu_result.entries)
        << "query " << q;
    // The multi-threaded scan must agree with itself at any fan-out.
    QueryOptions threaded;
    threaded.threads = 4;
    const auto threaded_result = cpu->query(x, param.top_k, threaded);
    EXPECT_EQ(threaded_result.entries, cpu_result.entries) << "query " << q;
  }
}

TEST_P(CrossBackendAgreementTest, ApproximateBackendsClearRecallFloor) {
  const AgreementParam param = GetParam();
  const auto matrix =
      shared_matrix(param.rows, param.cols, param.mean_nnz, param.seed);
  IndexOptions options;
  options.design = core::DesignConfig::fixed(20, 4);
  const auto exact = make_index("exact-sort", matrix);
  const auto fpga = make_index("fpga-sim", matrix, options);
  const auto gpu = make_index("gpu-f16", matrix);
  const auto simd_half = make_index("cpu-simd-f16", matrix);

  // 20-bit fixed point and binary16 both retrieve nearly all of the
  // exact top-K on embedding-scale data (paper Figure 7); 0.7 is a
  // conservative per-query floor that still catches a broken kernel.
  constexpr double kRecallFloor = 0.7;
  util::Xoshiro256 rng(param.seed + 2);
  for (int q = 0; q < 4; ++q) {
    const auto x = sparse::generate_dense_vector(param.cols, rng);
    const auto exact_indices = indices_of(exact->query(x, param.top_k));
    const double fpga_recall = eval::precision_at_k(
        indices_of(fpga->query(x, param.top_k)), exact_indices);
    const double gpu_recall = eval::precision_at_k(
        indices_of(gpu->query(x, param.top_k)), exact_indices);
    const double simd_half_recall = eval::precision_at_k(
        indices_of(simd_half->query(x, param.top_k)), exact_indices);
    EXPECT_GE(fpga_recall, kRecallFloor) << "query " << q;
    EXPECT_GE(gpu_recall, kRecallFloor) << "query " << q;
    EXPECT_GE(simd_half_recall, kRecallFloor) << "query " << q;
  }
}

TEST_P(CrossBackendAgreementTest, DefaultBatchPathMatchesPerQueryPath) {
  const AgreementParam param = GetParam();
  const auto matrix =
      shared_matrix(param.rows, param.cols, param.mean_nnz, param.seed);
  const auto cpu = make_index("cpu-heap", matrix);

  util::Xoshiro256 rng(param.seed + 3);
  std::vector<std::vector<float>> queries;
  for (int q = 0; q < 5; ++q) {
    queries.push_back(sparse::generate_dense_vector(param.cols, rng));
  }
  QueryOptions options;
  options.threads = 3;
  const auto batch = cpu->query_batch(queries, param.top_k, options);
  ASSERT_EQ(batch.size(), queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    EXPECT_EQ(batch[q].entries, cpu->query(queries[q], param.top_k).entries)
        << "query " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CrossBackendAgreementTest,
    ::testing::Values(AgreementParam{400, 128, 8.0, 21, 10},
                      AgreementParam{999, 256, 16.0, 22, 25},
                      AgreementParam{2000, 64, 4.0, 23, 15}),
    [](const ::testing::TestParamInfo<AgreementParam>& info) {
      return std::to_string(info.param.rows) + "x" +
             std::to_string(info.param.cols) + "_seed" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace topk::index
