// Failure injection and randomised fuzzing of the BS-CSR stream path.
//
// The decoder and kernel must reject structurally corrupt streams
// (non-monotone ptr fields, boundary values past the capacity, row
// counts that do not add up) rather than silently mis-attributing
// results — on the FPGA these conditions indicate a DMA or encoder
// bug and the host must be able to detect them.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/bscsr.hpp"
#include "core/topk_spmv.hpp"
#include "test_helpers.hpp"
#include "util/bitio.hpp"

namespace topk::core {
namespace {

BsCsrMatrix encoded_fixture(std::uint64_t seed = 71) {
  const sparse::Csr matrix = test::small_random_matrix(60, 64, 6.0, seed);
  return encode_bscsr(matrix, PacketLayout::solve(64, 20), ValueKind::kFixed);
}

/// Rebuilds a stream with one ptr field of one packet overwritten.
BsCsrMatrix with_ptr_field(const BsCsrMatrix& original, std::size_t packet,
                           int field, std::uint32_t value) {
  std::vector<std::uint64_t> words = original.words();
  const PacketLayout& layout = original.layout();
  const std::size_t base_bit =
      packet * static_cast<std::size_t>(layout.packet_bits) + 1 +
      static_cast<std::size_t>(field) * layout.ptr_bits;
  // Clear then set the field bits.
  for (int b = 0; b < layout.ptr_bits; ++b) {
    const std::size_t bit = base_bit + static_cast<std::size_t>(b);
    words[bit / 64] &= ~(std::uint64_t{1} << (bit % 64));
    if ((value >> b) & 1u) {
      words[bit / 64] |= std::uint64_t{1} << (bit % 64);
    }
  }
  return BsCsrMatrix::from_parts(layout, original.value_kind(), original.rows(),
                                 original.cols(), original.source_nnz(),
                                 original.stored_entries(), std::move(words),
                                 original.stats());
}

std::uint32_t read_ptr_field(const BsCsrMatrix& matrix, std::size_t packet,
                             int field) {
  util::BitReader reader(matrix.words());
  const std::size_t base_bit =
      packet * static_cast<std::size_t>(matrix.layout().packet_bits) + 1 +
      static_cast<std::size_t>(field) * matrix.layout().ptr_bits;
  return static_cast<std::uint32_t>(
      reader.read(base_bit, matrix.layout().ptr_bits));
}

TEST(StreamRobustness, NonMonotonePtrDetected) {
  const BsCsrMatrix original = encoded_fixture();
  // Make the second boundary smaller than the first: malformed.
  const std::uint32_t first = read_ptr_field(original, 0, 0);
  ASSERT_GT(first, 1u);  // need room below it
  const BsCsrMatrix corrupt = with_ptr_field(original, 0, 1, first - 1);
  PacketCursor cursor(corrupt);
  EXPECT_THROW((void)cursor.next(), std::runtime_error);
}

TEST(StreamRobustness, BoundaryAfterPaddingDetected) {
  const BsCsrMatrix original = encoded_fixture();
  const PacketLayout& layout = original.layout();
  // Write a zero into an early ptr slot while later slots are
  // non-zero: padding must be terminal.
  const std::uint32_t second = read_ptr_field(original, 0, 1);
  ASSERT_GT(second, 0u);  // the fixture has 2+ rows per packet
  const BsCsrMatrix corrupt = with_ptr_field(original, 0, 0, 0);
  PacketCursor cursor(corrupt);
  EXPECT_THROW((void)cursor.next(), std::runtime_error);
  (void)layout;
}

TEST(StreamRobustness, KernelRejectsRowCountMismatch) {
  const BsCsrMatrix original = encoded_fixture();
  // Inject an extra boundary into a zero (padding or value) slot of
  // the final packet so the stream "contains" one more row than the
  // matrix declares.
  const std::size_t last_packet =
      static_cast<std::size_t>(original.num_packets()) - 1;
  // Find the first zero ptr slot of the last packet.
  int free_slot = -1;
  for (int f = 0; f < original.layout().capacity; ++f) {
    if (read_ptr_field(original, last_packet, f) == 0) {
      free_slot = f;
      break;
    }
  }
  ASSERT_GE(free_slot, 1);
  const std::uint32_t previous =
      read_ptr_field(original, last_packet, free_slot - 1);
  ASSERT_LT(previous, static_cast<std::uint32_t>(original.layout().capacity));
  const BsCsrMatrix corrupt =
      with_ptr_field(original, last_packet, free_slot, previous + 1);

  const std::vector<float> x(original.cols(), 0.1f);
  EXPECT_THROW((void)run_topk_spmv(corrupt, x, 8, 8), std::runtime_error);
  EXPECT_THROW((void)decode_bscsr(corrupt), std::runtime_error);
}

TEST(StreamRobustness, TruncatedWordBufferRejectedAtConstruction) {
  const BsCsrMatrix original = encoded_fixture();
  std::vector<std::uint64_t> words = original.words();
  words.pop_back();
  EXPECT_THROW((void)BsCsrMatrix::from_parts(
                   original.layout(), original.value_kind(), original.rows(),
                   original.cols(), original.source_nnz(),
                   original.stored_entries(), std::move(words),
                   original.stats()),
               std::invalid_argument);
}

/// Randomised fuzz: random shapes, densities, value widths and packet
/// sizes; encode -> kernel must equal the bit-exact oracle every time.
TEST(StreamFuzz, RandomConfigurationsMatchOracle) {
  util::Xoshiro256 rng(2026);
  for (int trial = 0; trial < 40; ++trial) {
    const auto rows = static_cast<std::uint32_t>(2 + rng.bounded(300));
    const auto cols = static_cast<std::uint32_t>(2 + rng.bounded(2048));
    const double mean_nnz =
        1.0 + rng.uniform() * std::min<double>(cols - 1, 30.0);
    const int val_bits = 4 + static_cast<int>(rng.bounded(29));  // 4..32
    const int packet_bits = 64 * static_cast<int>(2 + rng.bounded(15));
    const int k = 1 + static_cast<int>(rng.bounded(16));

    sparse::GeneratorConfig config;
    config.rows = rows;
    config.cols = cols;
    config.mean_nnz_per_row = mean_nnz;
    config.distribution = (trial % 2 == 0) ? sparse::RowDistribution::kUniform
                                           : sparse::RowDistribution::kGamma;
    config.seed = 5000 + static_cast<std::uint64_t>(trial);
    const sparse::Csr matrix = sparse::generate_matrix(config);

    PacketLayout layout;
    try {
      layout = PacketLayout::solve(cols, val_bits, packet_bits);
    } catch (const std::invalid_argument&) {
      continue;  // infeasible tiny packet; not this test's subject
    }
    const auto encoded = encode_bscsr(matrix, layout, ValueKind::kFixed);
    const auto x = sparse::generate_dense_vector(cols, rng);
    const KernelResult result =
        run_topk_spmv(encoded, x, k, layout.capacity);
    const auto scores =
        test::reference_scores(matrix, x, ValueKind::kFixed, val_bits);
    test::expect_exact_topk(result.topk, scores, k);
    ASSERT_EQ(result.stats.rows_emitted, matrix.rows())
        << "trial " << trial << " rows=" << rows << " cols=" << cols
        << " V=" << val_bits << " packet=" << packet_bits;
  }
}

/// Fuzz the encoder's r-enforcement: with max_rows_per_packet == r the
/// kernel must never drop a row, whatever the shape.
TEST(StreamFuzz, EnforcedEncoderNeverDrops) {
  util::Xoshiro256 rng(2027);
  for (int trial = 0; trial < 20; ++trial) {
    const auto rows = static_cast<std::uint32_t>(2 + rng.bounded(200));
    const auto cols = static_cast<std::uint32_t>(8 + rng.bounded(256));
    const int r = 1 + static_cast<int>(rng.bounded(6));

    sparse::GeneratorConfig config;
    config.rows = rows;
    config.cols = cols;
    config.mean_nnz_per_row = 1.0 + rng.uniform() * 4.0;  // adversarial
    config.seed = 6000 + static_cast<std::uint64_t>(trial);
    const sparse::Csr matrix = sparse::generate_matrix(config);

    const PacketLayout layout = PacketLayout::solve(cols, 20);
    EncodeOptions options;
    options.max_rows_per_packet = r;
    const auto encoded =
        encode_bscsr(matrix, layout, ValueKind::kFixed, options);
    EXPECT_LE(encoded.stats().max_rows_in_packet,
              static_cast<std::uint64_t>(r));

    const auto x = sparse::generate_dense_vector(cols, rng);
    const KernelResult result = run_topk_spmv(encoded, x, 8, r);
    EXPECT_EQ(result.stats.rows_dropped, 0u) << "trial " << trial;
    const auto scores = test::reference_scores(matrix, x, ValueKind::kFixed, 20);
    test::expect_exact_topk(result.topk, scores, 8);
  }
}

}  // namespace
}  // namespace topk::core
