#include "hbmsim/device.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "baselines/cpu_topk_spmv.hpp"
#include "test_helpers.hpp"

namespace topk::hbmsim {
namespace {

using core::DesignConfig;

TEST(DeviceSimulator, LoadsAndBindsChannels) {
  const sparse::Csr matrix = test::small_random_matrix(640, 512, 10.0, 111);
  DeviceSimulator device(matrix, DesignConfig::fixed(20, 8));
  ASSERT_EQ(device.bindings().size(), 8u);
  std::uint32_t previous_end = 0;
  for (std::size_t i = 0; i < device.bindings().size(); ++i) {
    const ChannelBinding& binding = device.bindings()[i];
    EXPECT_EQ(binding.channel, static_cast<int>(i));
    EXPECT_EQ(binding.row_begin, previous_end);
    EXPECT_GT(binding.image_bytes, 0u);
    previous_end = binding.row_end;
  }
  EXPECT_EQ(previous_end, matrix.rows());
  EXPECT_GT(device.image_bytes(), 0u);
  EXPECT_GT(device.hbm_utilization(), 0.0);
  EXPECT_LT(device.hbm_utilization(), 0.001);  // tiny test matrix
}

TEST(DeviceSimulator, QueryMatchesAcceleratorAndCounts) {
  const sparse::Csr matrix = test::small_random_matrix(640, 512, 10.0, 112);
  const DesignConfig design = DesignConfig::fixed(20, 8);
  DeviceSimulator device(matrix, design);
  const core::TopKAccelerator reference(matrix, design);

  util::Xoshiro256 rng(113);
  const auto x = sparse::generate_dense_vector(512, rng);
  const DeviceQueryResult from_device = device.query(x, 16);
  const core::QueryResult from_accelerator = reference.query(x, 16);
  ASSERT_EQ(from_device.result.entries.size(),
            from_accelerator.entries.size());
  for (std::size_t i = 0; i < from_accelerator.entries.size(); ++i) {
    EXPECT_EQ(from_device.result.entries[i], from_accelerator.entries[i]);
  }
  EXPECT_GT(from_device.timing.seconds, 0.0);

  EXPECT_EQ(device.counters().queries, 1u);
  EXPECT_EQ(device.counters().bytes_streamed,
            from_accelerator.stats.total_packets * 64);
  EXPECT_GT(device.average_throughput(), 0.0);

  (void)device.query(x, 16, /*host_threads=*/4);
  EXPECT_EQ(device.counters().queries, 2u);
}

TEST(DeviceSimulator, RejectsTooManyChannels) {
  const sparse::Csr matrix = test::small_random_matrix(640, 512, 10.0, 114);
  BoardProfile narrow = board_u280();
  narrow.hbm.channels = 4;
  EXPECT_THROW(DeviceSimulator(matrix, DesignConfig::fixed(20, 8), narrow),
               std::invalid_argument);
}

TEST(DeviceSimulator, RejectsFabricOverflow) {
  const sparse::Csr matrix = test::small_random_matrix(640, 512, 10.0, 115);
  BoardProfile tiny = board_u280();
  tiny.resources.uram = 16;  // 8 cores need ~80 URAM
  EXPECT_THROW(DeviceSimulator(matrix, DesignConfig::fixed(20, 8), tiny),
               std::invalid_argument);
}

TEST(DeviceSimulator, RejectsHbmCapacityOverflow) {
  const sparse::Csr matrix = test::small_random_matrix(640, 512, 10.0, 116);
  BoardProfile small_memory = board_u280();
  small_memory.hbm.capacity_bytes = 32 * 1024;  // 1 KiB per channel slice
  EXPECT_THROW(
      DeviceSimulator(matrix, DesignConfig::fixed(20, 8), small_memory),
      std::invalid_argument);
}

TEST(DeviceSimulator, ResultsAreExactWhenUnapproximated) {
  const sparse::Csr matrix = test::small_random_matrix(300, 256, 12.0, 117);
  DesignConfig design = DesignConfig::fixed(32, 1);
  design.k = 10;
  DeviceSimulator device(matrix, design);
  util::Xoshiro256 rng(118);
  const auto x = sparse::generate_dense_vector(256, rng);
  const auto result = device.query(x, 10);
  const auto exact = baselines::cpu_topk_spmv(matrix, x, 10, 1);
  for (std::size_t i = 0; i < exact.size(); ++i) {
    EXPECT_EQ(result.result.entries[i].index, exact[i].index);
  }
}

}  // namespace
}  // namespace topk::hbmsim
