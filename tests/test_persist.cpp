// Tests for the persistent shard deployment subsystem: save/load
// round-trip bit-identicality across backends, shard counts and mixed
// deployments; manifest field coverage; registry warm-loading
// (IndexOptions::deployment_dir) with different-inner-backend
// rejection; and the corruption-hardening suite — truncated image,
// flipped byte (digest mismatch), wrong magic, future manifest
// version, missing shard file, manifest/image shape disagreement — all
// of which must throw std::runtime_error naming the offending file,
// never crash or serve a partial deployment.
#include "persist/deployment.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <iterator>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "index/registry.hpp"
#include "persist/digest.hpp"
#include "shard/sharded_index.hpp"
#include "test_helpers.hpp"

namespace topk::persist {
namespace {

using PersistTest = test::TempDirFixture;

std::shared_ptr<const sparse::Csr> shared_matrix(std::uint32_t rows,
                                                 std::uint32_t cols,
                                                 double mean_nnz,
                                                 std::uint64_t seed) {
  return std::make_shared<const sparse::Csr>(
      test::small_random_matrix(rows, cols, mean_nnz, seed));
}

void expect_same_description(const index::IndexDescription& cold,
                             const index::IndexDescription& warm) {
  EXPECT_EQ(warm.backend, cold.backend);
  EXPECT_EQ(warm.detail, cold.detail);
  EXPECT_EQ(warm.exact, cold.exact);
  EXPECT_EQ(warm.rows, cold.rows);
  EXPECT_EQ(warm.cols, cold.cols);
  EXPECT_EQ(warm.max_top_k, cold.max_top_k);
  EXPECT_EQ(warm.memory_bytes, cold.memory_bytes);
}

/// Cold and warm indexes must agree bit-for-bit: entries (values and
/// row ids), aggregate stats, and the batch path.
void expect_bit_identical(const index::SimilarityIndex& cold,
                          const index::SimilarityIndex& warm, int top_k,
                          std::uint64_t seed) {
  expect_same_description(cold.describe(), warm.describe());
  util::Xoshiro256 rng(seed);
  std::vector<std::vector<float>> queries;
  for (int q = 0; q < 4; ++q) {
    queries.push_back(sparse::generate_dense_vector(cold.cols(), rng));
  }
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto from_cold = cold.query(queries[q], top_k);
    const auto from_warm = warm.query(queries[q], top_k);
    EXPECT_EQ(from_warm.entries, from_cold.entries) << "query " << q;
    EXPECT_EQ(from_warm.stats.rows_scanned, from_cold.stats.rows_scanned);
    EXPECT_EQ(from_warm.stats.modelled_seconds, from_cold.stats.modelled_seconds);
  }
  const auto cold_batch = cold.query_batch(queries, top_k);
  const auto warm_batch = warm.query_batch(queries, top_k);
  ASSERT_EQ(cold_batch.size(), warm_batch.size());
  for (std::size_t q = 0; q < cold_batch.size(); ++q) {
    EXPECT_EQ(warm_batch[q].entries, cold_batch[q].entries) << "batch " << q;
  }
}

/// Expects load_deployment(dir) to throw std::runtime_error whose
/// message contains `needle` (typically the offending file's name).
void expect_load_error(const std::filesystem::path& dir,
                       const std::string& needle) {
  try {
    (void)load_deployment(dir);
    FAIL() << "load_deployment succeeded on a corrupt deployment (wanted '"
           << needle << "')";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find(needle), std::string::npos)
        << error.what();
  }
}

std::vector<std::string> manifest_lines(const std::filesystem::path& dir) {
  std::istringstream in(test::read_file(dir / kManifestFilename));
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    lines.push_back(line);
  }
  return lines;
}

void write_manifest_lines(const std::filesystem::path& dir,
                          const std::vector<std::string>& lines) {
  std::string text;
  for (const std::string& line : lines) {
    text += line;
    text += '\n';
  }
  test::write_file(dir / kManifestFilename, text);
}

std::vector<std::string> tokens_of(const std::string& line) {
  std::istringstream in(line);
  return {std::istream_iterator<std::string>(in),
          std::istream_iterator<std::string>()};
}

std::string join_tokens(const std::vector<std::string>& tokens) {
  std::string line;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (i > 0) {
      line += ' ';
    }
    line += tokens[i];
  }
  return line;
}

/// Re-records a (deliberately tampered) image's digest and size in the
/// manifest, so a load proceeds past the digest gate into the deeper
/// image validation under test.
void patch_digest(const std::filesystem::path& dir, const std::string& file) {
  auto lines = manifest_lines(dir);
  const std::string fresh = sha256_file(dir / file);
  const auto bytes = std::filesystem::file_size(dir / file);
  bool patched = false;
  for (auto& line : lines) {
    if (line.find(' ' + file + ' ') == std::string::npos) {
      continue;
    }
    auto tokens = tokens_of(line);
    ASSERT_GE(tokens.size(), 3u);
    tokens[tokens.size() - 2] = std::to_string(bytes);
    tokens.back() = fresh;
    line = join_tokens(tokens);
    patched = true;
  }
  ASSERT_TRUE(patched) << file << " not found in manifest";
  write_manifest_lines(dir, lines);
}

// ----------------------------------------------------------------- digest

TEST(Sha256Test, MatchesKnownVectors) {
  // FIPS 180-4 test vectors: the digest gate is only as good as the
  // hash behind it.
  EXPECT_EQ(sha256_hex({}),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  const std::string abc = "abc";
  EXPECT_EQ(sha256_hex({reinterpret_cast<const std::uint8_t*>(abc.data()),
                        abc.size()}),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  // One spanning several blocks with a 55-byte tail (the padding edge).
  const std::string long_input(119, 'a');
  EXPECT_EQ(sha256_hex({reinterpret_cast<const std::uint8_t*>(long_input.data()),
                        long_input.size()}),
            "31eba51c313a5c08226adf18d4a359cfdfd8d2e816b13f4af952f7ea6584dcfb");
}

// ------------------------------------------------------------- round trips

TEST_F(PersistTest, RoundTripBitIdenticalAcrossBackendsAndShardCounts) {
  const auto matrix = shared_matrix(600, 128, 8.0, 61);
  index::IndexOptions options;
  options.design = core::DesignConfig::fixed(20, 4);
  for (const char* backend : {"fpga-sim", "cpu-heap", "exact-sort", "gpu-f16"}) {
    for (const int shards : {1, 2, 3}) {
      const auto deploy_dir =
          dir() / (std::string(backend) + "-" + std::to_string(shards));
      const auto cold = test::build_test_sharded(matrix, shards, backend, options);
      save_deployment(*cold, deploy_dir);
      const auto warm = load_deployment(deploy_dir);
      SCOPED_TRACE(std::string(backend) + " x" + std::to_string(shards));
      expect_bit_identical(*cold, *warm, 15, 62);
    }
  }
}

TEST_F(PersistTest, RoundTripFloat32AndSignedDesigns) {
  const auto matrix = shared_matrix(400, 128, 8.0, 63);
  for (const core::DesignConfig& design :
       {core::DesignConfig::float32(4), core::DesignConfig::signed_fixed(25, 2)}) {
    index::IndexOptions options;
    options.design = design;
    const auto deploy_dir = dir() / design.name();
    const auto cold = test::build_test_sharded(matrix, 2, "fpga-sim", options);
    save_deployment(*cold, deploy_dir);
    const auto warm = load_deployment(deploy_dir);
    SCOPED_TRACE(design.name());
    expect_bit_identical(*cold, *warm, 10, 64);
    EXPECT_EQ(read_manifest(deploy_dir).design, design);
  }
}

TEST_F(PersistTest, MixedBackendDeploymentRoundTrips) {
  const auto matrix = shared_matrix(500, 128, 8.0, 65);
  index::IndexOptions options;
  options.design = core::DesignConfig::fixed(20, 4);
  const auto cold = test::build_test_sharded(matrix, 3, "fpga-sim", options,
                                             {{2, "cpu-heap"}});
  EXPECT_EQ(cold->describe().backend, "sharded");
  save_deployment(*cold, dir());
  const auto warm = load_deployment(dir());
  expect_bit_identical(*cold, *warm, 12, 66);
}

TEST_F(PersistTest, ManifestRecordsEveryField) {
  const auto matrix = shared_matrix(300, 64, 6.0, 67);
  index::IndexOptions options;
  options.design = core::DesignConfig::fixed(25, 2);
  const auto cold = test::build_test_sharded(matrix, 2, "fpga-sim", options,
                                             {{1, "exact-sort"}});
  save_deployment(*cold, dir());

  const DeploymentManifest manifest = read_manifest(dir());
  EXPECT_EQ(manifest.version, kManifestVersion);
  EXPECT_EQ(manifest.label, "sharded");
  EXPECT_EQ(manifest.rows, matrix->rows());
  EXPECT_EQ(manifest.cols, matrix->cols());
  EXPECT_EQ(manifest.design, options.design);
  ASSERT_EQ(manifest.shards.size(), 2u);
  EXPECT_EQ(manifest.shards[0].range.row_begin, 0u);
  EXPECT_EQ(manifest.shards[0].range.row_end,
            manifest.shards[1].range.row_begin);
  EXPECT_EQ(manifest.shards[1].range.row_end, matrix->rows());
  EXPECT_EQ(manifest.shards[0].backend, "fpga-sim");
  EXPECT_EQ(manifest.shards[0].format, "fpga");
  EXPECT_EQ(manifest.shards[1].backend, "exact-sort");
  EXPECT_EQ(manifest.shards[1].format, "csr");
  for (const ShardImage& image : manifest.shards) {
    const auto path = dir() / image.file;
    ASSERT_TRUE(std::filesystem::exists(path)) << path;
    EXPECT_EQ(image.bytes, std::filesystem::file_size(path));
    EXPECT_EQ(image.digest, sha256_file(path));
  }
}

// ------------------------------------------------- manifest v1 <-> v2

TEST_F(PersistTest, ManifestV2RoundTripsGenerationAndTombstones) {
  const auto matrix = shared_matrix(120, 64, 6.0, 90);
  const auto cold = test::build_test_sharded(matrix, 2, "cpu-heap");
  DeploymentMeta meta;
  meta.generation = 3;
  meta.tombstones = {2, 9, 41};
  save_deployment(*cold, dir(), meta);

  const DeploymentManifest manifest = read_manifest(dir());
  EXPECT_EQ(manifest.version, kManifestVersion);
  EXPECT_EQ(manifest.generation, 3u);
  EXPECT_EQ(manifest.tombstones, meta.tombstones);
  // The stamped deployment still passes the digest gate and serves.
  const auto warm = load_deployment(dir());
  expect_bit_identical(*cold, *warm, 10, 91);

  // Tombstones outside the row space or out of order never reach disk.
  DeploymentMeta bad = meta;
  bad.tombstones = {2, 200};
  EXPECT_THROW(save_deployment(*cold, dir() / "bad", bad),
               std::invalid_argument);
  bad.tombstones = {9, 9};
  EXPECT_THROW(save_deployment(*cold, dir() / "bad", bad),
               std::invalid_argument);
  EXPECT_FALSE(std::filesystem::exists(dir() / "bad" / kManifestFilename));
}

TEST_F(PersistTest, ManifestV1StillParsesAsGenerationZero) {
  // A deployment saved before the mutable tier existed has no
  // generation and no tombstone line; it must load as generation 0
  // with an empty set — exactly a never-compacted sealed deployment.
  const auto matrix = shared_matrix(150, 64, 6.0, 92);
  const auto cold = test::build_test_sharded(matrix, 2, "exact-sort");
  save_deployment(*cold, dir());

  auto lines = manifest_lines(dir());
  lines.front() = "topk-deployment 1";
  lines.erase(std::remove_if(lines.begin(), lines.end(),
                             [](const std::string& line) {
                               const auto tokens = tokens_of(line);
                               return !tokens.empty() &&
                                      (tokens.front() == "generation" ||
                                       tokens.front() == "tombstones");
                             }),
              lines.end());
  write_manifest_lines(dir(), lines);

  const DeploymentManifest manifest = read_manifest(dir());
  EXPECT_EQ(manifest.version, 1);
  EXPECT_EQ(manifest.generation, 0u);
  EXPECT_TRUE(manifest.tombstones.empty());
  const auto warm = load_deployment(dir());
  expect_bit_identical(*cold, *warm, 10, 93);
}

TEST_F(PersistTest, MalformedV2TombstoneListsAreRejected) {
  const auto matrix = shared_matrix(100, 64, 6.0, 94);
  const auto cold = test::build_test_sharded(matrix, 1, "cpu-heap");
  DeploymentMeta meta;
  meta.tombstones = {5, 6};
  save_deployment(*cold, dir(), meta);

  const auto original = manifest_lines(dir());
  const auto with_tombstone_line = [&](const std::string& replacement) {
    auto lines = original;
    for (auto& line : lines) {
      const auto tokens = tokens_of(line);
      if (!tokens.empty() && tokens.front() == "tombstones") {
        line = replacement;
      }
    }
    write_manifest_lines(dir(), lines);
  };

  with_tombstone_line("tombstones 2 5 999");
  expect_load_error(dir(), "outside the row space");
  with_tombstone_line("tombstones 3 5 6");
  expect_load_error(dir(), "truncated tombstone list");
  with_tombstone_line("tombstones 2 6 5");
  expect_load_error(dir(), "strictly increasing");
  with_tombstone_line("tombstones 101 0");
  expect_load_error(dir(), "implausible tombstone count");

  // A v2 manifest with the generation line missing entirely fails the
  // field check rather than misparsing the rows line as a generation.
  auto lines = original;
  lines.erase(std::remove_if(lines.begin(), lines.end(),
                             [](const std::string& line) {
                               const auto tokens = tokens_of(line);
                               return !tokens.empty() &&
                                      tokens.front() == "generation";
                             }),
              lines.end());
  write_manifest_lines(dir(), lines);
  expect_load_error(dir(), "generation");
}

TEST_F(PersistTest, SavingAnUnpersistableBackendThrows) {
  // A sharded index whose shard is itself sharded has no image format.
  const auto matrix = shared_matrix(200, 64, 6.0, 68);
  const auto inner = test::build_test_sharded(matrix, 2, "cpu-heap");
  std::vector<shard::Shard> shards{
      shard::Shard{core::Partition{0, matrix->rows()}, inner}};
  const shard::ShardedIndex nested(shards, "sharded-nested");
  EXPECT_THROW(save_deployment(nested, dir()), std::invalid_argument);
}

// -------------------------------------------------------- registry wiring

TEST_F(PersistTest, RegistryWarmLoadsFromDeploymentDir) {
  const auto matrix = shared_matrix(450, 64, 6.0, 69);
  index::IndexOptions cold_options;
  cold_options.shards = 2;
  const auto cold =
      index::make_index("sharded-exact-sort", matrix, cold_options);
  const auto cold_sharded =
      std::dynamic_pointer_cast<const shard::ShardedIndex>(cold);
  ASSERT_NE(cold_sharded, nullptr);
  save_deployment(*cold_sharded, dir());

  // Warm load through the registry: no matrix, just the directory.
  index::IndexOptions warm_options;
  warm_options.deployment_dir = dir().string();
  const auto warm =
      index::make_index("sharded-exact-sort", nullptr, warm_options);
  expect_bit_identical(*cold, *warm, 10, 70);

  // And through the fluent builder.
  const auto built = index::IndexBuilder()
                         .backend("sharded-exact-sort")
                         .deployment_dir(dir().string())
                         .build();
  expect_bit_identical(*cold, *built, 10, 71);

  // ShardedIndexBuilder::from_deployment is the typed entry point.
  const auto typed = shard::ShardedIndexBuilder::from_deployment(dir());
  expect_bit_identical(*cold, *typed, 10, 72);
}

TEST_F(PersistTest, RegistryRejectsReloadIntoDifferentInnerBackend) {
  const auto matrix = shared_matrix(300, 64, 6.0, 73);
  index::IndexOptions cold_options;
  cold_options.shards = 2;
  const auto cold = index::make_index("sharded-cpu-heap", matrix, cold_options);
  const auto cold_sharded =
      std::dynamic_pointer_cast<const shard::ShardedIndex>(cold);
  ASSERT_NE(cold_sharded, nullptr);
  save_deployment(*cold_sharded, dir());

  index::IndexOptions warm_options;
  warm_options.deployment_dir = dir().string();
  try {
    (void)index::make_index("sharded-fpga-sim", nullptr, warm_options);
    FAIL() << "a sharded-cpu-heap deployment served as sharded-fpga-sim";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("sharded-cpu-heap"),
              std::string::npos)
        << error.what();
  }
}

// -------------------------------------------------- corruption hardening

/// Fixture with one saved two-shard fpga-sim deployment to corrupt.
class PersistCorruptionTest : public test::TempDirFixture {
 protected:
  void SetUp() override {
    test::TempDirFixture::SetUp();
    matrix_ = shared_matrix(400, 128, 8.0, 74);
    index::IndexOptions options;
    options.design = core::DesignConfig::fixed(20, 2);
    const auto cold = test::build_test_sharded(matrix_, 2, "fpga-sim", options);
    save_deployment(*cold, dir());
  }

  std::shared_ptr<const sparse::Csr> matrix_;
};

TEST_F(PersistCorruptionTest, MissingManifest) {
  std::filesystem::remove(dir() / kManifestFilename);
  expect_load_error(dir(), kManifestFilename);
  expect_load_error(dir() / "never-created", kManifestFilename);
}

TEST_F(PersistCorruptionTest, MissingShardFile) {
  std::filesystem::remove(dir() / "shard-1.fpga.img");
  expect_load_error(dir(), "shard-1.fpga.img");
}

TEST_F(PersistCorruptionTest, FlippedByteFailsTheDigestGate) {
  const auto path = dir() / "shard-0.fpga.img";
  test::flip_byte(path, std::filesystem::file_size(path) / 2);
  expect_load_error(dir(), "shard-0.fpga.img");
  expect_load_error(dir(), "digest mismatch");
}

TEST_F(PersistCorruptionTest, TruncatedImageIsRejectedPastTheDigestGate) {
  const auto path = dir() / "shard-0.fpga.img";
  test::truncate_file(path, std::filesystem::file_size(path) - 16);
  patch_digest(dir(), "shard-0.fpga.img");  // digest now matches: parser must catch it
  expect_load_error(dir(), "shard-0.fpga.img");
}

TEST_F(PersistCorruptionTest, WrongImageMagic) {
  const auto path = dir() / "shard-1.fpga.img";
  test::flip_byte(path, 0);
  patch_digest(dir(), "shard-1.fpga.img");
  expect_load_error(dir(), "shard-1.fpga.img");
  expect_load_error(dir(), "bad magic");
}

TEST_F(PersistCorruptionTest, WrongManifestMagic) {
  auto lines = manifest_lines(dir());
  lines.front() = "not-a-deployment 1";
  write_manifest_lines(dir(), lines);
  expect_load_error(dir(), kManifestFilename);
  expect_load_error(dir(), "bad magic");
}

TEST_F(PersistCorruptionTest, FutureManifestVersion) {
  auto lines = manifest_lines(dir());
  lines.front() = std::string("topk-deployment ") + "99";
  write_manifest_lines(dir(), lines);
  expect_load_error(dir(), kManifestFilename);
  expect_load_error(dir(), "newer");
}

TEST_F(PersistCorruptionTest, ManifestRowsDisagreeingWithImagesAreRejected) {
  // Shift the shard 0/1 boundary by one row: the manifest stays
  // internally consistent (contiguous, covering all rows) but both
  // images now disagree with their recorded ranges — the first one
  // checked must be named in the error.
  auto lines = manifest_lines(dir());
  bool shifted = false;
  for (auto& line : lines) {
    auto tokens = tokens_of(line);
    if (tokens.empty() || tokens.front() != "shard") {
      continue;
    }
    ASSERT_GE(tokens.size(), 4u);
    if (tokens[1] == "0") {
      tokens[3] = std::to_string(std::stoul(tokens[3]) + 1);
    } else {
      tokens[2] = std::to_string(std::stoul(tokens[2]) + 1);
    }
    line = join_tokens(tokens);
    shifted = true;
  }
  ASSERT_TRUE(shifted);
  write_manifest_lines(dir(), lines);
  expect_load_error(dir(), "shard-0.fpga.img");
  expect_load_error(dir(), "disagree");
}

TEST_F(PersistCorruptionTest, TamperedManifestBackendIsRejected) {
  // Claiming a BS-CSR image belongs to a CSR backend (or vice versa)
  // must fail the format/backend consistency gate, not misparse.
  auto lines = manifest_lines(dir());
  for (auto& line : lines) {
    auto tokens = tokens_of(line);
    if (tokens.empty() || tokens.front() != "shard" || tokens[1] != "0") {
      continue;
    }
    tokens[4] = "cpu-heap";  // backend; format stays "fpga"
    line = join_tokens(tokens);
  }
  write_manifest_lines(dir(), lines);
  expect_load_error(dir(), "shard-0.fpga.img");
}

TEST_F(PersistCorruptionTest, TruncatedCsrImageIsRejected) {
  // A CSR-backed shard must harden the same way: re-save the second
  // shard as exact-sort, then truncate its image and patch the digest.
  index::IndexOptions options;
  options.design = core::DesignConfig::fixed(20, 2);
  const auto cold = test::build_test_sharded(matrix_, 2, "fpga-sim", options,
                                             {{1, "exact-sort"}});
  save_deployment(*cold, dir());
  const auto path = dir() / "shard-1.csr.img";
  ASSERT_TRUE(std::filesystem::exists(path));
  test::truncate_file(path, std::filesystem::file_size(path) - 32);
  patch_digest(dir(), "shard-1.csr.img");
  expect_load_error(dir(), "shard-1.csr.img");
}

}  // namespace
}  // namespace topk::persist
