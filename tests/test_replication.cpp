// Tests for per-shard replica sets: replicated builds bit-identical to
// the unreplicated index at every replica count and routing policy,
// failover absorbing a throwing replica without changing a single bit,
// the all-replicas-down rethrow, routing-policy load spreading, the
// IndexOptions::replicas knob through the registry, and replicated
// warm loads from persisted deployments.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "index/backends.hpp"
#include "index/registry.hpp"
#include "persist/deployment.hpp"
#include "shard/sharded_index.hpp"
#include "test_helpers.hpp"

namespace topk::shard {
namespace {

std::shared_ptr<const sparse::Csr> shared_matrix(std::uint32_t rows,
                                                 std::uint32_t cols,
                                                 double mean_nnz,
                                                 std::uint64_t seed) {
  return std::make_shared<const sparse::Csr>(
      test::small_random_matrix(rows, cols, mean_nnz, seed));
}

/// Copies the shards of `index` and wraps replica `replica` of every
/// shard in a ThrowingIndex — the standard fault-injection transform.
std::vector<Shard> with_throwing_replica(const ShardedIndex& index,
                                         std::size_t replica) {
  std::vector<Shard> shards;
  for (std::size_t s = 0; s < index.shard_count(); ++s) {
    shards.push_back(index.shard(s));
    shards.back().replicas[replica] =
        std::make_shared<test::ThrowingIndex>(shards.back().replicas[replica]);
  }
  return shards;
}

// ----------------------------------------------------------- replica builds

TEST(ReplicationTest, ReplicatedBuildsBitIdenticalToUnreplicated) {
  const auto matrix = shared_matrix(900, 64, 6.0, 71);
  const index::ExactSortIndex flat(matrix);
  util::Xoshiro256 rng(72);
  std::vector<std::vector<float>> queries;
  for (int q = 0; q < 4; ++q) {
    queries.push_back(sparse::generate_dense_vector(64, rng));
  }
  for (const int replicas : {1, 2, 3}) {
    for (const RoutingPolicy routing :
         {RoutingPolicy::kRoundRobin, RoutingPolicy::kLeastLoaded}) {
      const auto sharded = ShardedIndexBuilder()
                               .matrix(matrix)
                               .shards(3)
                               .inner_backend("exact-sort")
                               .replicas(replicas)
                               .routing(routing)
                               .build();
      EXPECT_EQ(sharded->routing(), routing);
      for (std::size_t s = 0; s < sharded->shard_count(); ++s) {
        EXPECT_EQ(sharded->replica_count(s),
                  static_cast<std::size_t>(replicas));
      }
      for (const auto& x : queries) {
        const auto result = sharded->query(x, 20);
        EXPECT_EQ(result.entries, flat.query(x, 20).entries)
            << to_string(routing) << " R=" << replicas;
        const index::ShardStats* stats = index::shard_stats(result);
        ASSERT_NE(stats, nullptr);
        EXPECT_EQ(stats->replicas, replicas);
        EXPECT_EQ(stats->failovers, 0u);
        EXPECT_NE(stats->slowest_shard, -1);
      }
      // The batch grid path routes per (query, shard) cell; the
      // results must not depend on which replica served which cell.
      const auto batch = sharded->query_batch(queries, 20);
      for (std::size_t q = 0; q < queries.size(); ++q) {
        EXPECT_EQ(batch[q].entries, flat.query(queries[q], 20).entries)
            << to_string(routing) << " R=" << replicas << " query " << q;
      }
    }
  }
}

// ---------------------------------------------------------------- failover

TEST(ReplicationTest, FailoverServesBitIdenticalAndRecordsFailures) {
  const auto matrix = shared_matrix(1000, 64, 6.0, 73);
  const index::CpuHeapIndex flat(matrix);
  const auto healthy = ShardedIndexBuilder()
                           .matrix(matrix)
                           .shards(4)
                           .inner_backend("cpu-heap")
                           .replicas(2)
                           .build();
  // Replica 0 of every shard is down (throws on every call).
  const ShardedIndex faulty(with_throwing_replica(*healthy, 0),
                            "sharded-faulty", RoutingPolicy::kRoundRobin);

  util::Xoshiro256 rng(74);
  std::vector<std::vector<float>> queries;
  for (int q = 0; q < 3; ++q) {
    queries.push_back(sparse::generate_dense_vector(64, rng));
  }

  // First query: round-robin routes every shard's cell to replica 0
  // first, so all four cells fail over — and still return exactly the
  // unreplicated answer.
  const auto first = faulty.query(queries[0], 15);
  EXPECT_EQ(first.entries, flat.query(queries[0], 15).entries);
  const index::ShardStats* stats = index::shard_stats(first);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->failovers, 4u);
  EXPECT_EQ(stats->replicas, 2);

  // Later queries route around the now-unhealthy replica without new
  // failovers; the batch path stays bit-identical too.
  for (const auto& x : queries) {
    EXPECT_EQ(faulty.query(x, 15).entries, flat.query(x, 15).entries);
  }
  const auto batch = faulty.query_batch(queries, 15);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    EXPECT_EQ(batch[q].entries, flat.query(queries[q], 15).entries);
  }

  // The per-replica surface recorded the episode: replica 0 failed
  // once (health-aware routing never re-picked it), replica 1 served
  // everything, in-flight counts drained back to zero.
  for (std::size_t s = 0; s < faulty.shard_count(); ++s) {
    const auto replicas = faulty.replica_stats(s);
    ASSERT_EQ(replicas.size(), 2u);
    EXPECT_GE(replicas[0].failures, 1u) << "shard " << s;
    EXPECT_EQ(replicas[0].queries, 0u) << "shard " << s;
    EXPECT_FALSE(replicas[0].healthy) << "shard " << s;
    EXPECT_NE(replicas[0].last_error.find("injected"), std::string::npos)
        << "shard " << s << ": " << replicas[0].last_error;
    EXPECT_GT(replicas[1].queries, 0u) << "shard " << s;
    EXPECT_EQ(replicas[1].failures, 0u) << "shard " << s;
    EXPECT_TRUE(replicas[1].healthy) << "shard " << s;
    EXPECT_GT(replicas[1].ewma_seconds, 0.0) << "shard " << s;
    EXPECT_EQ(replicas[0].inflight, 0) << "shard " << s;
    EXPECT_EQ(replicas[1].inflight, 0) << "shard " << s;
  }
}

TEST(ReplicationTest, FailedReplicaCallsFeedTheLatencyEwma) {
  // Regression: a failed call must be wall-timed and blended into the
  // replica's latency EWMA BEFORE it is marked unhealthy.  Otherwise a
  // replica that dies mid-traffic keeps its stale pre-failure EWMA, and
  // once a recovery probe flips it back healthy, least-loaded routing
  // ranks it by latency it never demonstrated.
  const auto matrix = shared_matrix(300, 32, 4.0, 87);
  const auto healthy = ShardedIndexBuilder()
                           .matrix(matrix)
                           .shards(1)
                           .inner_backend("cpu-heap")
                           .replicas(2)
                           .routing(RoutingPolicy::kRoundRobin)
                           .build();
  auto shards = std::vector<Shard>{healthy->shard(0)};
  shards[0].replicas[0] =
      std::make_shared<test::ThrowingIndex>(shards[0].replicas[0]);
  const ShardedIndex faulty(std::move(shards), "sharded-faulty",
                            RoutingPolicy::kRoundRobin);

  const std::vector<float> x(32, 0.1f);
  (void)faulty.query(x, 5);  // replica 0 fails, replica 1 serves
  const auto replicas = faulty.replica_stats(0);
  ASSERT_EQ(replicas.size(), 2u);
  EXPECT_EQ(replicas[0].failures, 1u);
  EXPECT_EQ(replicas[0].queries, 0u);  // failed calls are not served queries
  EXPECT_FALSE(replicas[0].healthy);
  EXPECT_GT(replicas[0].ewma_seconds, 0.0)
      << "the failed call's duration never reached the EWMA";
  EXPECT_EQ(replicas[0].inflight, 0);
}

TEST(ReplicationTest, AllReplicasFailedRethrowsLastError) {
  const auto matrix = shared_matrix(200, 32, 4.0, 75);
  const auto healthy = ShardedIndexBuilder()
                           .matrix(matrix)
                           .shards(2)
                           .inner_backend("exact-sort")
                           .replicas(2)
                           .build();
  auto shards = with_throwing_replica(*healthy, 0);
  // Shard 0 loses its second replica as well: the whole shard is down.
  shards[0].replicas[1] = std::make_shared<test::ThrowingIndex>(
      shards[0].replicas[1], "second replica down");
  const ShardedIndex dead(std::move(shards), "sharded-dead");

  const std::vector<float> x(32, 0.1f);
  try {
    (void)dead.query(x, 5);
    FAIL() << "query over an all-failed shard did not throw";
  } catch (const std::runtime_error& error) {
    // The LAST error in failover order surfaces.
    EXPECT_NE(std::string(error.what()).find("replica"), std::string::npos)
        << error.what();
  }
  EXPECT_THROW((void)dead.query_batch({x}, 5), std::runtime_error);
  const auto replicas = dead.replica_stats(0);
  EXPECT_GE(replicas[0].failures + replicas[1].failures, 2u);
  EXPECT_FALSE(replicas[0].healthy);
  EXPECT_FALSE(replicas[1].healthy);
}

/// Fails its first `failures` calls, then serves normally — a replica
/// with a transient fault.
class FlakyIndex final : public index::SimilarityIndex {
 public:
  FlakyIndex(std::shared_ptr<const index::SimilarityIndex> inner,
             std::uint64_t failures)
      : inner_(std::move(inner)), remaining_(failures) {}

  [[nodiscard]] index::QueryResult query(
      std::span<const float> x, int top_k,
      const index::QueryOptions& options = {}) const override {
    if (remaining_.load(std::memory_order_relaxed) > 0) {
      remaining_.fetch_sub(1, std::memory_order_relaxed);
      throw std::runtime_error("transient fault");
    }
    return inner_->query(x, top_k, options);
  }
  [[nodiscard]] std::uint32_t rows() const noexcept override {
    return inner_->rows();
  }
  [[nodiscard]] std::uint32_t cols() const noexcept override {
    return inner_->cols();
  }
  [[nodiscard]] index::IndexDescription describe() const override {
    return inner_->describe();
  }
  [[nodiscard]] int max_top_k() const noexcept override {
    return inner_->max_top_k();
  }

 private:
  std::shared_ptr<const index::SimilarityIndex> inner_;
  mutable std::atomic<std::uint64_t> remaining_;
};

TEST(ReplicationTest, TransientlyFailedReplicaRejoinsViaRecoveryProbe) {
  // One blip must not drain a replica forever: routing skips an
  // unhealthy replica, but every 16th pick probes one, and a probe
  // that succeeds flips it healthy again.
  const auto matrix = shared_matrix(300, 32, 4.0, 86);
  const auto healthy = ShardedIndexBuilder()
                           .matrix(matrix)
                           .shards(1)
                           .inner_backend("cpu-heap")
                           .replicas(2)
                           .routing(RoutingPolicy::kRoundRobin)
                           .build();
  auto shards = std::vector<Shard>{healthy->shard(0)};
  shards[0].replicas[0] =
      std::make_shared<FlakyIndex>(shards[0].replicas[0], 1);
  const ShardedIndex flaky(std::move(shards), "sharded-flaky",
                           RoutingPolicy::kRoundRobin);

  const std::vector<float> x(32, 0.1f);
  const auto reference = healthy->query(x, 5).entries;
  // Pick 0 routes to replica 0, absorbs the one transient failure and
  // marks it unhealthy; picks 1..14 route around it; pick 15 probes it,
  // succeeds, and flips it back to healthy.
  for (int q = 0; q < 20; ++q) {
    EXPECT_EQ(flaky.query(x, 5).entries, reference) << "query " << q;
  }
  const auto replicas = flaky.replica_stats(0);
  EXPECT_EQ(replicas[0].failures, 1u);
  EXPECT_TRUE(replicas[0].healthy);
  EXPECT_GT(replicas[0].queries, 0u);   // served again after recovery
  EXPECT_GT(replicas[1].queries, 0u);
  EXPECT_EQ(replicas[0].queries + replicas[1].queries, 20u);
}

// ------------------------------------------------------------------ routing

TEST(ReplicationTest, RoundRobinSpreadsQueriesAcrossReplicas) {
  const auto matrix = shared_matrix(400, 32, 4.0, 76);
  const auto sharded = ShardedIndexBuilder()
                           .matrix(matrix)
                           .shards(2)
                           .inner_backend("cpu-heap")
                           .replicas(2)
                           .routing(RoutingPolicy::kRoundRobin)
                           .build();
  const std::vector<float> x(32, 0.1f);
  for (int q = 0; q < 4; ++q) {
    (void)sharded->query(x, 5);
  }
  for (std::size_t s = 0; s < sharded->shard_count(); ++s) {
    const auto replicas = sharded->replica_stats(s);
    EXPECT_EQ(replicas[0].queries, 2u) << "shard " << s;
    EXPECT_EQ(replicas[1].queries, 2u) << "shard " << s;
  }
}

TEST(ReplicationTest, LeastLoadedExploresUnmeasuredReplicasFirst) {
  const auto matrix = shared_matrix(400, 32, 4.0, 77);
  const auto sharded = ShardedIndexBuilder()
                           .matrix(matrix)
                           .shards(2)
                           .inner_backend("cpu-heap")
                           .replicas(3)
                           .routing(RoutingPolicy::kLeastLoaded)
                           .build();
  const std::vector<float> x(32, 0.1f);
  // Serial traffic: all in-flight counts are 0, so the EWMA tie-break
  // sends each of the first three queries to a different (still
  // unmeasured, EWMA = 0) replica before any repeats.
  for (int q = 0; q < 3; ++q) {
    (void)sharded->query(x, 5);
  }
  for (std::size_t s = 0; s < sharded->shard_count(); ++s) {
    const auto replicas = sharded->replica_stats(s);
    for (std::size_t r = 0; r < replicas.size(); ++r) {
      EXPECT_EQ(replicas[r].queries, 1u) << "shard " << s << " replica " << r;
      EXPECT_GT(replicas[r].ewma_seconds, 0.0);
    }
  }
}

// --------------------------------------------- top_k vs small-shard gather

TEST(ReplicationTest, TopKLargerThanSmallestShardGathersMinTopKRows) {
  // 15 rows split even-rows across 4 shards -> 4+4+4+3: the last shard
  // holds fewer rows than top_k = 10 and must contribute exactly its 3
  // rows to the gather, at every replica count.
  const auto matrix = shared_matrix(15, 32, 4.0, 78);
  const index::ExactSortIndex flat(matrix);
  util::Xoshiro256 rng(79);
  const auto x = sparse::generate_dense_vector(32, rng);
  for (const int replicas : {1, 2, 3}) {
    const auto sharded = ShardedIndexBuilder()
                             .matrix(matrix)
                             .shards(4)
                             .policy(ShardPolicy::kEvenRows)
                             .inner_backend("exact-sort")
                             .replicas(replicas)
                             .build();
    ASSERT_EQ(sharded->shard(3).range.rows(), 3u);
    const auto result = sharded->query(x, 10);
    EXPECT_EQ(result.entries, flat.query(x, 10).entries) << "R=" << replicas;
    EXPECT_EQ(result.entries.size(), 10u);
    // Every shard contributes min(top_k, shard rows): 4 + 4 + 4 + 3.
    ASSERT_NE(index::shard_stats(result), nullptr);
    EXPECT_EQ(index::shard_stats(result)->gathered_candidates, 15u);

    // top_k above the whole collection: min(top_k, rows) global rows.
    const auto all = sharded->query(x, 40);
    EXPECT_EQ(all.entries, flat.query(x, 40).entries);
    EXPECT_EQ(all.entries.size(), 15u);
  }
}

// ----------------------------------------------------- registry + builders

TEST(ReplicationTest, RegistryAndIndexBuilderForwardReplicas) {
  const auto matrix = shared_matrix(500, 64, 6.0, 80);
  index::IndexOptions options;
  options.shards = 2;
  options.replicas = 2;
  const auto replicated =
      index::make_index("sharded-cpu-heap", matrix, options);
  const auto flat = index::make_index("cpu-heap", matrix);
  util::Xoshiro256 rng(81);
  const auto x = sparse::generate_dense_vector(64, rng);
  const auto result = replicated->query(x, 10);
  EXPECT_EQ(result.entries, flat->query(x, 10).entries);
  ASSERT_NE(index::shard_stats(result), nullptr);
  EXPECT_EQ(index::shard_stats(result)->replicas, 2);

  // Non-positive counts are clamped by the factory (generic sweeps),
  // but the explicit builder rejects them.
  options.replicas = 0;
  const auto clamped = index::make_index("sharded-cpu-heap", matrix, options);
  const auto clamped_result = clamped->query(x, 10);
  ASSERT_NE(index::shard_stats(clamped_result), nullptr);
  EXPECT_EQ(index::shard_stats(clamped_result)->replicas, 1);
  EXPECT_THROW(
      (void)ShardedIndexBuilder().matrix(matrix).replicas(0).build(),
      std::invalid_argument);

  const auto built = index::IndexBuilder()
                         .backend("sharded-exact-sort")
                         .matrix(matrix)
                         .shards(3)
                         .replicas(2)
                         .build();
  const auto built_result = built->query(x, 10);
  ASSERT_NE(index::shard_stats(built_result), nullptr);
  EXPECT_EQ(index::shard_stats(built_result)->replicas, 2);
}

// --------------------------------------------------- replicated warm loads

class ReplicatedDeploymentTest : public test::TempDirFixture {};

TEST_F(ReplicatedDeploymentTest, DeploymentLoadsReplicasBitIdentically) {
  const auto matrix = shared_matrix(600, 64, 6.0, 82);
  const auto cold = test::build_test_sharded(matrix, 2, "cpu-heap");
  persist::save_deployment(*cold, dir());

  index::IndexOptions options;
  options.replicas = 2;
  const auto warm = ShardedIndexBuilder::from_deployment(dir(), options);
  for (std::size_t s = 0; s < warm->shard_count(); ++s) {
    EXPECT_EQ(warm->replica_count(s), 2u);
  }
  util::Xoshiro256 rng(83);
  for (int q = 0; q < 3; ++q) {
    const auto x = sparse::generate_dense_vector(64, rng);
    EXPECT_EQ(warm->query(x, 12).entries, cold->query(x, 12).entries)
        << "query " << q;
  }

  // The registry warm path honours the knob too (no matrix needed).
  index::IndexOptions registry_options;
  registry_options.deployment_dir = dir().string();
  registry_options.replicas = 2;
  const auto via_registry =
      index::make_index("sharded-cpu-heap", nullptr, registry_options);
  const auto x = sparse::generate_dense_vector(64, rng);
  const auto result = via_registry->query(x, 12);
  EXPECT_EQ(result.entries, cold->query(x, 12).entries);
  ASSERT_NE(index::shard_stats(result), nullptr);
  EXPECT_EQ(index::shard_stats(result)->replicas, 2);
}

TEST_F(ReplicatedDeploymentTest, FpgaImagesReplayPerReplica) {
  // The fpga-sim image path re-reads the device image once per replica
  // (streams move into each accelerator); the replicas must serve
  // bit-identically to the cold index and to each other via failover.
  const auto matrix = shared_matrix(300, 64, 6.0, 84);
  index::IndexOptions build_options;
  build_options.design = core::DesignConfig::fixed(20, 4);
  const auto cold =
      test::build_test_sharded(matrix, 2, "fpga-sim", build_options);
  persist::save_deployment(*cold, dir());

  index::IndexOptions load_options;
  load_options.replicas = 2;
  const auto warm = ShardedIndexBuilder::from_deployment(dir(), load_options);
  for (std::size_t s = 0; s < warm->shard_count(); ++s) {
    ASSERT_EQ(warm->replica_count(s), 2u);
  }
  util::Xoshiro256 rng(85);
  const auto x = sparse::generate_dense_vector(64, rng);
  EXPECT_EQ(warm->query(x, 10).entries, cold->query(x, 10).entries);

  // Kill replica 0 everywhere: failover onto the second loaded image
  // must reproduce the same bits.
  const ShardedIndex faulty(with_throwing_replica(*warm, 0),
                            "sharded-faulty");
  EXPECT_EQ(faulty.query(x, 10).entries, cold->query(x, 10).entries);
}

// ------------------------------------------------- stats under failover load

TEST(ReplicationTest, StatsSnapshotsStayCoherentUnderFailoverLoad) {
  // The TSan leg's probe of the ReplicaState surface: reader threads
  // hammer replica_stats() and per-query ShardStats while query
  // threads drive both failing (replica 0 throws) and succeeding
  // calls, exercising every counter — queries, failures, inflight,
  // ewma, health flips and the mutex-guarded last_error string —
  // concurrently with the snapshots.
  const auto matrix = shared_matrix(400, 32, 5.0, 91);
  const auto healthy = ShardedIndexBuilder()
                           .matrix(matrix)
                           .shards(3)
                           .inner_backend("cpu-heap")
                           .replicas(2)
                           .build();
  const ShardedIndex faulty(with_throwing_replica(*healthy, 0),
                            "sharded-faulty", RoutingPolicy::kRoundRobin);
  const index::CpuHeapIndex flat(matrix);

  constexpr int kQueryThreads = 3;
  constexpr int kQueriesPerThread = 120;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> snapshots{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (std::size_t s = 0; s < faulty.shard_count(); ++s) {
          const auto replicas = faulty.replica_stats(s);
          ASSERT_EQ(replicas.size(), 2u);
          for (const index::ReplicaStats& replica : replicas) {
            // Invariants that hold at any instant mid-run.  (failures
            // and last_error are updated in separate steps, so their
            // implication is NOT an instant invariant — the string is
            // only touched, which is what TSan needs to see.)
            EXPECT_GE(replica.inflight, 0);
            EXPECT_GE(replica.ewma_seconds, 0.0);
            EXPECT_LE(replica.last_error.size(), std::size_t{256});
          }
        }
        snapshots.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::vector<std::thread> queriers;
  for (int t = 0; t < kQueryThreads; ++t) {
    queriers.emplace_back([&, t] {
      util::Xoshiro256 rng(92 + static_cast<std::uint64_t>(t));
      for (int q = 0; q < kQueriesPerThread; ++q) {
        const auto x = sparse::generate_dense_vector(32, rng);
        // Every query fails over (or routes around) replica 0 and must
        // still return the unreplicated answer bit-for-bit.
        EXPECT_EQ(faulty.query(x, 10).entries, flat.query(x, 10).entries);
      }
    });
  }
  for (auto& thread : queriers) {
    thread.join();
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& thread : readers) {
    thread.join();
  }
  EXPECT_GT(snapshots.load(std::memory_order_relaxed), 0u);

  // Settled state: in-flight drained, replica 1 served every cell,
  // replica 0 recorded only failures.
  std::uint64_t served = 0;
  for (std::size_t s = 0; s < faulty.shard_count(); ++s) {
    const auto replicas = faulty.replica_stats(s);
    EXPECT_EQ(replicas[0].inflight, 0) << "shard " << s;
    EXPECT_EQ(replicas[1].inflight, 0) << "shard " << s;
    EXPECT_EQ(replicas[0].queries, 0u) << "shard " << s;
    EXPECT_EQ(replicas[1].failures, 0u) << "shard " << s;
    served += replicas[1].queries;
  }
  EXPECT_EQ(served, static_cast<std::uint64_t>(kQueryThreads) *
                        kQueriesPerThread * faulty.shard_count());
}

}  // namespace
}  // namespace topk::shard
