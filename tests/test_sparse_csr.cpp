#include "sparse/csr.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "test_helpers.hpp"

namespace topk::sparse {
namespace {

Csr make_example() {
  // [ 1 0 2 ]
  // [ 0 0 0 ]
  // [ 3 4 0 ]
  Coo coo(3, 3);
  coo.push_back(0, 0, 1.0f);
  coo.push_back(0, 2, 2.0f);
  coo.push_back(2, 0, 3.0f);
  coo.push_back(2, 1, 4.0f);
  return Csr::from_coo(std::move(coo));
}

TEST(Csr, FromCooBuildsRowPointers) {
  const Csr matrix = make_example();
  EXPECT_EQ(matrix.rows(), 3u);
  EXPECT_EQ(matrix.cols(), 3u);
  EXPECT_EQ(matrix.nnz(), 4u);
  const std::vector<std::uint64_t> expected_ptr{0, 2, 2, 4};
  EXPECT_EQ(matrix.row_ptr(), expected_ptr);
  EXPECT_EQ(matrix.row_nnz(0), 2u);
  EXPECT_EQ(matrix.row_nnz(1), 0u);
  EXPECT_EQ(matrix.row_nnz(2), 2u);
}

TEST(Csr, FromCooHandlesUnsortedDuplicates) {
  Coo coo(2, 2);
  coo.push_back(1, 1, 1.0f);
  coo.push_back(0, 0, 2.0f);
  coo.push_back(1, 1, 3.0f);
  const Csr matrix = Csr::from_coo(std::move(coo));
  EXPECT_EQ(matrix.nnz(), 2u);
  EXPECT_FLOAT_EQ(matrix.row_values(1)[0], 4.0f);
}

TEST(Csr, FromPartsValidates) {
  EXPECT_THROW(
      Csr::from_parts(2, 2, {0, 1}, {0}, {1.0f}),  // row_ptr too short
      std::invalid_argument);
  EXPECT_THROW(
      Csr::from_parts(1, 1, {0, 2}, {0}, {1.0f}),  // back != nnz
      std::invalid_argument);
  EXPECT_THROW(
      Csr::from_parts(2, 2, {0, 2, 1}, {0, 1}, {1.0f, 1.0f}),  // not monotone
      std::invalid_argument);
  EXPECT_THROW(
      Csr::from_parts(1, 1, {0, 1}, {5}, {1.0f}),  // col out of range
      std::invalid_argument);
  EXPECT_THROW(Csr::from_parts(0, 1, {0}, {}, {}), std::invalid_argument);
  EXPECT_NO_THROW(Csr::from_parts(2, 2, {0, 1, 2}, {0, 1}, {1.0f, 2.0f}));
}

TEST(Csr, RowDotComputesDotProduct) {
  const Csr matrix = make_example();
  const std::vector<float> x{1.0f, 2.0f, 3.0f};
  EXPECT_DOUBLE_EQ(matrix.row_dot(0, x), 1.0 + 6.0);
  EXPECT_DOUBLE_EQ(matrix.row_dot(1, x), 0.0);
  EXPECT_DOUBLE_EQ(matrix.row_dot(2, x), 3.0 + 8.0);
  EXPECT_THROW((void)matrix.row_dot(0, std::vector<float>{1.0f}),
               std::invalid_argument);
}

TEST(Csr, SpmvMatchesRowDots) {
  const Csr matrix = make_example();
  const std::vector<float> x{1.0f, 2.0f, 3.0f};
  std::vector<float> y(3);
  matrix.spmv(x, y);
  EXPECT_FLOAT_EQ(y[0], 7.0f);
  EXPECT_FLOAT_EQ(y[1], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 11.0f);
  std::vector<float> wrong(2);
  EXPECT_THROW(matrix.spmv(x, wrong), std::invalid_argument);
}

TEST(Csr, SliceRowsPreservesContent) {
  const Csr matrix = make_example();
  const Csr slice = matrix.slice_rows(1, 3);
  EXPECT_EQ(slice.rows(), 2u);
  EXPECT_EQ(slice.cols(), 3u);
  EXPECT_EQ(slice.nnz(), 2u);
  EXPECT_EQ(slice.row_nnz(0), 0u);
  EXPECT_EQ(slice.row_nnz(1), 2u);
  EXPECT_FLOAT_EQ(slice.row_values(1)[0], 3.0f);
  EXPECT_THROW((void)matrix.slice_rows(2, 1), std::out_of_range);
  EXPECT_THROW((void)matrix.slice_rows(0, 4), std::out_of_range);
}

TEST(Csr, SlicesConcatenateToWhole) {
  const Csr matrix = test::small_random_matrix(100, 64, 8.0, 5);
  const Csr first = matrix.slice_rows(0, 40);
  const Csr second = matrix.slice_rows(40, 100);
  EXPECT_EQ(first.nnz() + second.nnz(), matrix.nnz());
  for (std::uint32_t r = 0; r < 40; ++r) {
    EXPECT_EQ(first.row_nnz(r), matrix.row_nnz(r));
  }
  for (std::uint32_t r = 40; r < 100; ++r) {
    EXPECT_EQ(second.row_nnz(r - 40), matrix.row_nnz(r));
  }
}

TEST(Csr, ToCooRoundTrips) {
  const Csr matrix = make_example();
  const Csr back = Csr::from_coo(matrix.to_coo());
  EXPECT_EQ(back.row_ptr(), matrix.row_ptr());
  EXPECT_EQ(back.col_idx(), matrix.col_idx());
  EXPECT_EQ(back.values(), matrix.values());
}

TEST(Csr, L2NormalizeMakesUnitRows) {
  Csr matrix = make_example();
  matrix.l2_normalize_rows();
  for (std::uint32_t r : {0u, 2u}) {
    double norm_sq = 0.0;
    for (const float v : matrix.row_values(r)) {
      norm_sq += static_cast<double>(v) * v;
    }
    EXPECT_NEAR(norm_sq, 1.0, 1e-6);
  }
  EXPECT_EQ(matrix.row_nnz(1), 0u);  // empty rows untouched
}

TEST(Csr, MaxRowNnz) {
  const Csr matrix = make_example();
  EXPECT_EQ(matrix.max_row_nnz(), 2u);
  EXPECT_EQ(test::adversarial_matrix(64).max_row_nnz(), 48u);
}

TEST(Csr, CsrBytesAccountsAllArrays) {
  const Csr matrix = make_example();
  EXPECT_EQ(matrix.csr_bytes(), 4u * 8 + 4u * 4 + 4u * 4);
}

}  // namespace
}  // namespace topk::sparse
