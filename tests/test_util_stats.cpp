#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <array>
#include <stdexcept>

namespace topk::util {
namespace {

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats stats;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.add(x);
  }
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats stats;
  stats.add(3.5);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 3.5);
  EXPECT_DOUBLE_EQ(stats.max(), 3.5);
}

TEST(Quantile, InterpolatesLinearly) {
  const std::array<double, 5> values{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(quantile(values, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(values, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(quantile(values, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(quantile(values, 0.25), 20.0);
  EXPECT_DOUBLE_EQ(quantile(values, 0.125), 15.0);
}

TEST(Quantile, UnsortedInputHandled) {
  const std::array<double, 4> values{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(values, 1.0), 4.0);
}

TEST(Quantile, RejectsBadArguments) {
  const std::array<double, 2> values{1.0, 2.0};
  EXPECT_THROW((void)quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW((void)quantile(values, -0.1), std::invalid_argument);
  EXPECT_THROW((void)quantile(values, 1.1), std::invalid_argument);
}

TEST(Mean, ComputesArithmeticMean) {
  const std::array<double, 3> values{1.0, 2.0, 6.0};
  EXPECT_DOUBLE_EQ(mean(values), 3.0);
  EXPECT_THROW((void)mean({}), std::invalid_argument);
}

TEST(GeometricMean, ComputesCorrectly) {
  const std::array<double, 3> values{1.0, 8.0, 27.0};
  EXPECT_NEAR(geometric_mean(values), 6.0, 1e-12);
}

TEST(GeometricMean, RejectsNonPositive) {
  const std::array<double, 2> values{1.0, -1.0};
  EXPECT_THROW((void)geometric_mean(values), std::invalid_argument);
  EXPECT_THROW((void)geometric_mean({}), std::invalid_argument);
}

}  // namespace
}  // namespace topk::util
