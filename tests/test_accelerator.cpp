#include "core/accelerator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <unordered_set>

#include "baselines/cpu_topk_spmv.hpp"
#include "core/precision_model.hpp"
#include "eval/ranking.hpp"
#include "test_helpers.hpp"

namespace topk::core {
namespace {

TEST(DesignConfig, NamedConstructorsAndNames) {
  const DesignConfig d20 = DesignConfig::fixed(20);
  EXPECT_EQ(d20.value_kind, ValueKind::kFixed);
  EXPECT_EQ(d20.value_bits, 20);
  EXPECT_EQ(d20.cores, 32);
  EXPECT_EQ(d20.name(), "FPGA 20b 32C");

  const DesignConfig f32 = DesignConfig::float32(16);
  EXPECT_EQ(f32.value_kind, ValueKind::kFloat32);
  EXPECT_EQ(f32.value_bits, 32);
  EXPECT_EQ(f32.name(), "FPGA F32 16C");
  EXPECT_EQ(to_string(ValueKind::kFixed), "fixed");
  EXPECT_EQ(to_string(ValueKind::kFloat32), "float32");
}

TEST(DesignConfig, ValidateRejectsInconsistent) {
  DesignConfig config;
  config.value_bits = 1;
  EXPECT_THROW(validate(config), std::invalid_argument);
  config = {};
  config.value_kind = ValueKind::kFloat32;
  config.value_bits = 20;
  EXPECT_THROW(validate(config), std::invalid_argument);
  config = {};
  config.cores = 0;
  EXPECT_THROW(validate(config), std::invalid_argument);
  config = {};
  config.k = 0;
  EXPECT_THROW(validate(config), std::invalid_argument);
  config = {};
  config.rows_per_packet = 0;
  EXPECT_THROW(validate(config), std::invalid_argument);
  config = {};
  config.packet_bits = 100;
  EXPECT_THROW(validate(config), std::invalid_argument);
}

TEST(TopKAccelerator, ConstructionValidates) {
  const sparse::Csr matrix = test::small_random_matrix(100, 128, 8.0, 1);
  DesignConfig config = DesignConfig::fixed(20, 4);
  EXPECT_NO_THROW(TopKAccelerator(matrix, config));

  config.cores = 200;  // more cores than rows
  EXPECT_THROW(TopKAccelerator(matrix, config), std::invalid_argument);
}

TEST(TopKAccelerator, PartitionsAndStreamsConsistent) {
  const sparse::Csr matrix = test::small_random_matrix(100, 128, 8.0, 2);
  const DesignConfig config = DesignConfig::fixed(20, 8);
  const TopKAccelerator accelerator(matrix, config);

  EXPECT_EQ(accelerator.partitions().size(), 8u);
  EXPECT_EQ(accelerator.core_streams().size(), 8u);
  EXPECT_EQ(accelerator.rows(), 100u);
  EXPECT_EQ(accelerator.cols(), 128u);

  std::uint64_t total_entries = 0;
  std::uint64_t max_packets = 0;
  for (const BsCsrMatrix& stream : accelerator.core_streams()) {
    total_entries += stream.source_nnz();
    max_packets = std::max(max_packets, stream.num_packets());
  }
  EXPECT_EQ(total_entries, matrix.nnz());
  EXPECT_EQ(accelerator.max_core_packets(), max_packets);
  EXPECT_GT(accelerator.stream_bytes(), 0u);
}

TEST(TopKAccelerator, QueryValidatesArguments) {
  const sparse::Csr matrix = test::small_random_matrix(64, 64, 6.0, 3);
  const DesignConfig config = DesignConfig::fixed(20, 4);  // k*c = 32
  const TopKAccelerator accelerator(matrix, config);
  util::Xoshiro256 rng(4);
  const auto x = sparse::generate_dense_vector(64, rng);

  EXPECT_THROW((void)accelerator.query(std::vector<float>(32, 0.1f), 8),
               std::invalid_argument);
  EXPECT_THROW((void)accelerator.query(x, 0), std::invalid_argument);
  EXPECT_THROW((void)accelerator.query(x, 33), std::invalid_argument);
  EXPECT_NO_THROW((void)accelerator.query(x, 32));
}

TEST(TopKAccelerator, SinglePartitionIsExact) {
  // c = 1, k = K: no approximation at all; only quantisation remains.
  const sparse::Csr matrix = test::small_random_matrix(300, 256, 12.0, 5);
  DesignConfig config = DesignConfig::fixed(20, 1);
  config.k = 10;
  const TopKAccelerator accelerator(matrix, config);
  util::Xoshiro256 rng(6);
  const auto x = sparse::generate_dense_vector(256, rng);

  const QueryResult result = accelerator.query(x, 10);
  const auto scores = test::reference_scores(matrix, x, ValueKind::kFixed, 20);
  test::expect_exact_topk(result.entries, scores, 10);
}

TEST(TopKAccelerator, MultiCoreMatchesQuantizedReferenceWhenKLarge) {
  // With k >= K every partition surfaces enough candidates for the
  // merge to be exact over quantised scores.
  const sparse::Csr matrix = test::small_random_matrix(400, 512, 20.0, 7);
  DesignConfig config = DesignConfig::fixed(25, 8);
  config.k = 16;
  const TopKAccelerator accelerator(matrix, config);
  util::Xoshiro256 rng(8);
  const auto x = sparse::generate_dense_vector(512, rng);

  const QueryResult result = accelerator.query(x, 16);
  const auto scores = test::reference_scores(matrix, x, ValueKind::kFixed, 25);
  test::expect_exact_topk(result.entries, scores, 16);
  EXPECT_EQ(result.stats.rows_emitted, 400u);
}

TEST(TopKAccelerator, Float32DesignWorks) {
  const sparse::Csr matrix = test::small_random_matrix(200, 128, 10.0, 9);
  DesignConfig config = DesignConfig::float32(4);
  config.k = 8;
  const TopKAccelerator accelerator(matrix, config);
  EXPECT_EQ(accelerator.layout().val_bits, 32);
  util::Xoshiro256 rng(10);
  const auto x = sparse::generate_dense_vector(128, rng);
  const QueryResult result = accelerator.query(x, 8);
  EXPECT_EQ(result.entries.size(), 8u);
  // Approximate agreement with the exact CPU result.
  const auto exact = baselines::cpu_topk_spmv(matrix, x, 8, 1);
  std::unordered_set<std::uint32_t> exact_rows;
  for (const TopKEntry& entry : exact) {
    exact_rows.insert(entry.index);
  }
  int hits = 0;
  for (const TopKEntry& entry : result.entries) {
    hits += exact_rows.count(entry.index);
  }
  EXPECT_GE(hits, 7);  // float rounding may flip one borderline rank
}

TEST(TopKAccelerator, ApproximationPrecisionTracksModel) {
  // Paper section III-A: measured precision should be close to the
  // hypergeometric expectation.  Small N exaggerates the loss, which
  // is exactly what the model predicts.
  const sparse::Csr matrix = test::small_random_matrix(2000, 256, 10.0, 11);
  DesignConfig config = DesignConfig::fixed(32, 16);
  config.k = 2;  // deliberately starved so losses are visible
  const TopKAccelerator accelerator(matrix, config);

  constexpr int kTopK = 24;
  const double expected =
      expected_precision_closed(2000, 16, 2, kTopK);

  util::Xoshiro256 rng(12);
  double total_precision = 0.0;
  constexpr int kQueries = 20;
  for (int q = 0; q < kQueries; ++q) {
    const auto x = sparse::generate_dense_vector(256, rng);
    const QueryResult result = accelerator.query(x, kTopK);
    const auto exact = baselines::cpu_topk_spmv(matrix, x, kTopK, 1);
    std::unordered_set<std::uint32_t> exact_rows;
    for (const TopKEntry& entry : exact) {
      exact_rows.insert(entry.index);
    }
    int hits = 0;
    for (const TopKEntry& entry : result.entries) {
      hits += exact_rows.count(entry.index);
    }
    total_precision += static_cast<double>(hits) / kTopK;
  }
  const double measured = total_precision / kQueries;
  EXPECT_NEAR(measured, expected, 0.08);
  EXPECT_LT(measured, 1.0);  // the starved config must actually lose rows
}

TEST(TopKAccelerator, ThirtyTwoCoreDefaultOnRealisticMatrix) {
  const sparse::Csr matrix = test::small_random_matrix(3200, 1024, 20.0, 13);
  const TopKAccelerator accelerator(matrix, DesignConfig::fixed(20));
  EXPECT_EQ(accelerator.layout().capacity, 15);
  util::Xoshiro256 rng(14);
  const auto x = sparse::generate_dense_vector(1024, rng);
  const QueryResult result = accelerator.query(x, 100);
  EXPECT_EQ(result.entries.size(), 100u);
  EXPECT_EQ(result.stats.rows_dropped, 0u);
  EXPECT_EQ(result.stats.rows_emitted, 3200u);

  // Precision against exact: with c=32, k=8, K=100 on N=3200 the
  // hypergeometric model predicts ~0.99; the measured precision (which
  // also absorbs 20-bit quantisation noise) must track it.
  const auto exact = baselines::cpu_topk_spmv(matrix, x, 100, 1);
  const eval::TopKQuality quality = eval::evaluate_topk(
      result.entries, exact,
      [&](std::uint32_t row) { return matrix.row_dot(row, x); });
  const double expected = expected_precision_closed(3200, 32, 8, 100);
  EXPECT_NEAR(quality.precision, expected, 0.10);
  EXPECT_GT(quality.ndcg, 0.9);
}

}  // namespace
}  // namespace topk::core
