// Tests for the vectorized cpu-simd backend: ISA dispatch coverage,
// bit-identity of every compiled-in kernel level and both screening
// layouts against the scalar baseline (including tails, unaligned
// group starts, explicit zero blocks, empty rows, and near-ties),
// argument validation, the registry/describe surface, and the
// approximate binary16 screen's recall floor.
//
// The whole suite also runs under TOPK_NO_AVX=1 (a dedicated ctest
// entry) where available_levels() collapses to the scalar kernel —
// the dispatch test asserts that collapse instead of skipping.
#include "simd/topk_simd.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <vector>

#include "baselines/cpu_topk_spmv.hpp"
#include "eval/ranking.hpp"
#include "index/backends.hpp"
#include "index/registry.hpp"
#include "simd/blocked_csr.hpp"
#include "test_helpers.hpp"

namespace topk::simd {
namespace {

std::shared_ptr<const sparse::Csr> shared_matrix(std::uint32_t rows,
                                                 std::uint32_t cols,
                                                 double mean_nnz,
                                                 std::uint64_t seed) {
  return std::make_shared<const sparse::Csr>(
      test::small_random_matrix(rows, cols, mean_nnz, seed));
}

/// Runs the exact kernel under every available ISA level (and a
/// 3-thread fan-out at the widest) and asserts each result is
/// bit-identical to the scalar double-precision baseline.
void expect_all_levels_match(const BlockedCsr& layout,
                             std::span<const float> x, int top_k) {
  const auto reference =
      baselines::cpu_topk_spmv(layout.source(), x, top_k, 1);
  for (const IsaLevel level : available_levels()) {
    SimdQueryOptions options;
    options.force_level = level;
    const auto result = topk_spmv_exact(layout, x, top_k, options);
    EXPECT_EQ(result, reference) << "level " << to_string(level);
  }
  SimdQueryOptions threaded;
  threaded.threads = 3;
  EXPECT_EQ(topk_spmv_exact(layout, x, top_k, threaded), reference)
      << "3 threads";
}

// ---------------------------------------------------------------- dispatch

TEST(SimdDispatchTest, LevelsAreConsistent) {
  const auto levels = available_levels();
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels.front(), IsaLevel::kScalar);
  // Narrowest-first and duplicate-free.
  for (std::size_t i = 1; i < levels.size(); ++i) {
    EXPECT_LT(static_cast<int>(levels[i - 1]), static_cast<int>(levels[i]));
  }
  // The dispatched level is always runnable, and it is the widest.
  EXPECT_EQ(levels.back(), dispatch_level());
  if (std::getenv("TOPK_NO_AVX") != nullptr) {
    EXPECT_EQ(levels.size(), 1u) << "TOPK_NO_AVX must disable every "
                                    "vector kernel";
    EXPECT_EQ(dispatch_level(), IsaLevel::kScalar);
  }
}

TEST(SimdDispatchTest, ToStringCoversEveryLevel) {
  EXPECT_STREQ(to_string(IsaLevel::kScalar), "scalar");
  EXPECT_STREQ(to_string(IsaLevel::kAvx2), "avx2");
  EXPECT_STREQ(to_string(IsaLevel::kAvx512), "avx512");
}

// ------------------------------------------------------------------ parity

TEST(SimdParityTest, AllLevelsAndStrategiesMatchScalarBaseline) {
  const auto matrix = shared_matrix(800, 256, 10.0, 41);
  util::Xoshiro256 rng(42);
  for (const auto strategy : {Strategy::kBlocked, Strategy::kGather}) {
    LayoutOptions options;
    options.strategy = strategy;
    const BlockedCsr layout = BlockedCsr::build(matrix, options);
    ASSERT_EQ(layout.strategy(), strategy);
    for (int q = 0; q < 4; ++q) {
      const auto x = sparse::generate_dense_vector(256, rng);
      expect_all_levels_match(layout, x, 25);
    }
  }
}

TEST(SimdParityTest, ExhaustiveTailWidths) {
  // Sweep every vector-width remainder: cols 1..40 covers full 16-wide
  // blocks, 8-wide halves, and every scalar tail length, for both
  // layouts (group starts land on all alignments as rows shuffle).
  util::Xoshiro256 rng(43);
  for (std::uint32_t cols = 1; cols <= 40; ++cols) {
    const double nnz = std::min<double>(cols, 3.0);
    const auto matrix = shared_matrix(48, cols, nnz, 100 + cols);
    const auto x = sparse::generate_dense_vector(cols, rng);
    for (const auto strategy : {Strategy::kBlocked, Strategy::kGather}) {
      LayoutOptions options;
      options.strategy = strategy;
      const BlockedCsr layout = BlockedCsr::build(matrix, options);
      expect_all_levels_match(layout, x, 8);
    }
  }
}

TEST(SimdParityTest, AdversarialRowStructure) {
  // Empty rows, single-entry rows, and one long row — the pathologies
  // that break padding/tail logic first.
  const auto matrix =
      std::make_shared<const sparse::Csr>(test::adversarial_matrix(64));
  util::Xoshiro256 rng(44);
  const auto x = sparse::generate_dense_vector(64, rng);
  for (const auto strategy : {Strategy::kBlocked, Strategy::kGather}) {
    LayoutOptions options;
    options.strategy = strategy;
    const BlockedCsr layout = BlockedCsr::build(matrix, options);
    expect_all_levels_match(layout, x, static_cast<int>(matrix->rows()));
  }
}

TEST(SimdParityTest, ExplicitZeroBlocksAndNearTies) {
  // Rows 0..9 are bit-identical (exact ties broken by row index), row
  // 10 stores an entire block of explicit zeros, row 11 differs from
  // row 0 by one ulp-scale entry (the screen cannot separate them —
  // the rescore must).
  sparse::Coo coo(12, 64);
  for (std::uint32_t r = 0; r < 10; ++r) {
    coo.push_back(r, 3, 0.5f);
    coo.push_back(r, 17, 0.25f);
  }
  for (std::uint32_t c = 0; c < 16; ++c) {
    coo.push_back(10, c, 0.0f);
  }
  coo.push_back(11, 3, 0.5f);
  coo.push_back(11, 17, 0.25000003f);
  const auto matrix =
      std::make_shared<const sparse::Csr>(sparse::Csr::from_coo(std::move(coo)));
  std::vector<float> x(64, 0.0f);
  x[3] = 1.0f;
  x[17] = 1.0f;
  for (const auto strategy : {Strategy::kBlocked, Strategy::kGather}) {
    LayoutOptions options;
    options.strategy = strategy;
    const BlockedCsr layout = BlockedCsr::build(matrix, options);
    expect_all_levels_match(layout, x, 12);
  }
}

TEST(SimdParityTest, WideMatrixFallsBackToU32Columns) {
  // cols > 65536 cannot use the 16-bit gather-column compression; the
  // u32 path must engage and stay exact.
  const auto wide = shared_matrix(300, 70'000, 6.0, 45);
  LayoutOptions options;
  options.strategy = Strategy::kGather;
  const BlockedCsr layout = BlockedCsr::build(wide, options);
  EXPECT_FALSE(layout.narrow_cols());
  EXPECT_TRUE(layout.group_cols16().empty());
  util::Xoshiro256 rng(46);
  const auto x = sparse::generate_dense_vector(70'000, rng);
  expect_all_levels_match(layout, x, 10);

  const BlockedCsr narrow = BlockedCsr::build(shared_matrix(64, 512, 8.0, 47),
                                              options);
  EXPECT_TRUE(narrow.narrow_cols());
  EXPECT_TRUE(narrow.group_cols().empty());
}

// -------------------------------------------------------------- validation

TEST(SimdValidationTest, RejectsBadArguments) {
  const auto matrix = shared_matrix(100, 64, 6.0, 48);
  const BlockedCsr layout = BlockedCsr::build(matrix);
  const std::vector<float> x(64, 0.1f);
  const std::vector<float> wrong(16, 0.1f);
  EXPECT_THROW((void)topk_spmv_exact(layout, wrong, 5), std::invalid_argument);
  EXPECT_THROW((void)topk_spmv_exact(layout, x, 0), std::invalid_argument);
  SimdQueryOptions negative;
  negative.threads = -2;
  EXPECT_THROW((void)topk_spmv_exact(layout, x, 5, negative),
               std::invalid_argument);
  EXPECT_THROW((void)topk_spmv_exact(BlockedCsr{}, x, 5),
               std::invalid_argument);
  EXPECT_THROW((void)BlockedCsr::build(nullptr), std::invalid_argument);
}

TEST(SimdValidationTest, ExactQueryRejectsHalfScreenLayout) {
  const auto matrix = shared_matrix(100, 64, 6.0, 49);
  LayoutOptions options;
  options.precision = ScreenPrecision::kHalf;
  const BlockedCsr layout = BlockedCsr::build(matrix, options);
  const std::vector<float> x(64, 0.1f);
  EXPECT_THROW((void)topk_spmv_exact(layout, x, 5), std::invalid_argument);
  EXPECT_EQ(topk_spmv_screen(layout, x, 5).size(), 5u);
}

TEST(SimdValidationTest, ForcingAnUnavailableLevelThrows) {
  const auto levels = available_levels();
  if (levels.size() == 3) {
    GTEST_SKIP() << "every level is available on this host (set "
                    "TOPK_NO_AVX to exercise the rejection)";
  }
  const auto matrix = shared_matrix(50, 32, 4.0, 50);
  const BlockedCsr layout = BlockedCsr::build(matrix);
  SimdQueryOptions options;
  options.force_level = IsaLevel::kAvx512;
  EXPECT_THROW(
      (void)topk_spmv_exact(layout, std::vector<float>(32, 0.1f), 5, options),
      std::invalid_argument);
}

// ----------------------------------------------------------- index backend

TEST(CpuSimdIndexTest, RegistryAndDescribe) {
  for (const char* name : {"cpu-simd", "cpu-simd-f16", "sharded-cpu-simd",
                           "mutable-sharded-cpu-simd"}) {
    EXPECT_TRUE(index::has_backend(name)) << name;
  }
  const auto matrix = shared_matrix(400, 128, 8.0, 51);
  const auto exact = index::make_index("cpu-simd", matrix);
  EXPECT_TRUE(exact->describe().exact);
  EXPECT_NE(exact->describe().detail.find("dispatch"), std::string::npos)
      << exact->describe().detail;
  EXPECT_GT(exact->describe().memory_bytes, matrix->csr_bytes())
      << "the screening layout must be accounted on top of the CSR";
  EXPECT_EQ(exact->host_csr(), matrix.get())
      << "cpu-simd persists through the host CSR image";

  const auto half = index::make_index("cpu-simd-f16", matrix);
  EXPECT_FALSE(half->describe().exact);
}

TEST(CpuSimdIndexTest, SimdStatsExposedPerQuery) {
  const auto matrix = shared_matrix(400, 128, 8.0, 52);
  const auto index = index::make_index("cpu-simd", matrix);
  util::Xoshiro256 rng(53);
  const auto result =
      index->query(sparse::generate_dense_vector(128, rng), 10);
  ASSERT_NE(index::simd_stats(result), nullptr);
  EXPECT_EQ(index::fpga_stats(result), nullptr);
  EXPECT_EQ(index::simd_stats(result)->isa, to_string(dispatch_level()));
  EXPECT_GE(index::simd_stats(result)->rows_rescored, 10u)
      << "every returned row must have been rescored";
  EXPECT_EQ(result.stats.rows_scanned, matrix->rows());
}

TEST(CpuSimdIndexTest, HalfScreenClearsRecallFloor) {
  const auto matrix = shared_matrix(400, 128, 8.0, 54);
  const auto exact = index::make_index("exact-sort", matrix);
  const auto half = index::make_index("cpu-simd-f16", matrix);
  // Same conservative floor as the gpu-f16 backend (test_index.cpp):
  // binary16 screening retrieves nearly all of the exact top-K.
  constexpr double kRecallFloor = 0.7;
  util::Xoshiro256 rng(55);
  for (int q = 0; q < 4; ++q) {
    const auto x = sparse::generate_dense_vector(128, rng);
    std::vector<std::uint32_t> exact_indices;
    for (const auto& entry : exact->query(x, 20).entries) {
      exact_indices.push_back(entry.index);
    }
    std::vector<std::uint32_t> half_indices;
    for (const auto& entry : half->query(x, 20).entries) {
      half_indices.push_back(entry.index);
    }
    EXPECT_GE(eval::precision_at_k(half_indices, exact_indices),
              kRecallFloor)
        << "query " << q;
  }
}

TEST(ShardedCpuSimdTest, FourShardsBitIdenticalToExactSort) {
  const auto matrix = shared_matrix(600, 128, 8.0, 56);
  const auto sharded = test::build_test_sharded(matrix, 4, "cpu-simd");
  const auto exact = index::make_index("exact-sort", matrix);
  util::Xoshiro256 rng(57);
  for (int q = 0; q < 4; ++q) {
    const auto x = sparse::generate_dense_vector(128, rng);
    EXPECT_EQ(sharded->query(x, 20).entries, exact->query(x, 20).entries)
        << "query " << q;
  }
}

}  // namespace
}  // namespace topk::simd
