// End-to-end integration tests: the full pipeline the benches run,
// at reduced scale — generate/sparsify a corpus, build the
// accelerator, query, compare against the exact CPU baseline and the
// GPU F16 emulation, and sanity-check the timing/resource models on
// the same artefacts.
#include <gtest/gtest.h>

#include <stdexcept>

#include "baselines/cpu_topk_spmv.hpp"
#include "baselines/gpu_model.hpp"
#include "core/accelerator.hpp"
#include "core/precision_model.hpp"
#include "embed/sparsify.hpp"
#include "eval/ranking.hpp"
#include "hbmsim/power_model.hpp"
#include "hbmsim/resource_model.hpp"
#include "hbmsim/timing_model.hpp"
#include "test_helpers.hpp"

namespace topk {
namespace {

TEST(Integration, SyntheticMatrixFullPipeline) {
  // Table III-style synthetic matrix (shrunk), all four designs.
  const sparse::Csr matrix = test::small_random_matrix(
      6400, 1024, 20.0, 71, sparse::RowDistribution::kGamma);
  util::Xoshiro256 rng(72);
  const auto x = sparse::generate_dense_vector(1024, rng);
  const auto exact = baselines::cpu_topk_spmv(matrix, x, 100, 2);
  const auto true_score = [&](std::uint32_t row) {
    return matrix.row_dot(row, x);
  };

  for (const core::DesignConfig& design :
       {core::DesignConfig::fixed(20), core::DesignConfig::fixed(25),
        core::DesignConfig::fixed(32), core::DesignConfig::float32()}) {
    const core::TopKAccelerator accelerator(matrix, design);
    const core::QueryResult result = accelerator.query(x, 100);
    ASSERT_EQ(result.entries.size(), 100u) << design.name();

    const eval::TopKQuality quality =
        eval::evaluate_topk(result.entries, exact, true_score);
    // Figure 7: precision stays high for every design even at K=100.
    EXPECT_GT(quality.precision, 0.90) << design.name();
    EXPECT_GT(quality.ndcg, 0.95) << design.name();
    EXPECT_GT(quality.kendall_tau, 0.80) << design.name();

    // Timing and resource models accept the same artefacts.
    const auto timing = hbmsim::estimate_query_time(accelerator, matrix.nnz());
    EXPECT_GT(timing.nnz_per_second, 0.0) << design.name();
    const auto usage =
        hbmsim::estimate_resources(design, accelerator.layout());
    EXPECT_TRUE(hbmsim::fits_device(usage)) << design.name();
    const auto power = hbmsim::fpga_power(design, accelerator.layout());
    EXPECT_GT(power.device_w, 0.0);
  }
}

TEST(Integration, SparsifiedCorpusPipeline) {
  // The "Sparsified GloVe" path: dense corpus -> dictionary codes ->
  // accelerator; a query near a known row must retrieve that row
  // first.
  embed::CorpusConfig corpus_config;
  corpus_config.rows = 1500;
  corpus_config.dim = 64;
  corpus_config.clusters = 16;
  corpus_config.seed = 73;
  const embed::DenseEmbeddings corpus = embed::generate_glove_like(corpus_config);
  const embed::Dictionary dictionary(512, 64, 74);
  embed::SparsifyConfig sparsify_config;
  sparsify_config.target_nnz = 20;
  const sparse::Csr matrix =
      embed::sparsify_corpus(corpus, dictionary, sparsify_config);

  core::DesignConfig design = core::DesignConfig::fixed(20, 8);
  const core::TopKAccelerator accelerator(matrix, design);

  util::Xoshiro256 rng(75);
  const std::uint32_t source_row = 321;
  const auto x =
      sparse::generate_query_near_row(matrix, source_row, 0.02, rng);
  const core::QueryResult result = accelerator.query(x, 10);
  ASSERT_FALSE(result.entries.empty());
  EXPECT_EQ(result.entries.front().index, source_row);
}

TEST(Integration, Fig7StyleAccuracyOrdering) {
  // 32-bit fixed must be at least as accurate as 20-bit on average,
  // and both close to exact; GPU F16 shows visible degradation (the
  // ordering of Figure 7).
  const sparse::Csr matrix = test::small_random_matrix(3200, 512, 20.0, 76);
  util::Xoshiro256 rng(77);

  double ndcg20 = 0.0;
  double ndcg32 = 0.0;
  double ndcg_f16 = 0.0;
  constexpr int kQueries = 5;
  constexpr int kTopK = 50;
  const core::TopKAccelerator acc20(matrix, core::DesignConfig::fixed(20));
  const core::TopKAccelerator acc32(matrix, core::DesignConfig::fixed(32));
  for (int q = 0; q < kQueries; ++q) {
    const auto x = sparse::generate_dense_vector(512, rng);
    const auto exact = baselines::cpu_topk_spmv(matrix, x, kTopK, 2);
    const auto true_score = [&](std::uint32_t row) {
      return matrix.row_dot(row, x);
    };
    ndcg20 += eval::evaluate_topk(acc20.query(x, kTopK).entries, exact,
                                     true_score)
                  .ndcg;
    ndcg32 += eval::evaluate_topk(acc32.query(x, kTopK).entries, exact,
                                     true_score)
                  .ndcg;
    ndcg_f16 += eval::evaluate_topk(
                    baselines::gpu_f16_topk_spmv(matrix, x, kTopK), exact,
                    true_score)
                    .ndcg;
  }
  EXPECT_GT(ndcg20 / kQueries, 0.97);
  EXPECT_GT(ndcg32 / kQueries, 0.97);
  EXPECT_GT(ndcg_f16 / kQueries, 0.90);
  // 32-bit quantisation error is ~4000x smaller than 20-bit; its NDCG
  // cannot be meaningfully worse.
  EXPECT_GE(ndcg32 / kQueries, ndcg20 / kQueries - 0.005);
}

TEST(Integration, FailureInjectionBadConfigurations) {
  const sparse::Csr matrix = test::small_random_matrix(100, 128, 8.0, 78);
  // Cores > rows.
  EXPECT_THROW(core::TopKAccelerator(matrix, core::DesignConfig::fixed(20, 128)),
               std::invalid_argument);
  // K beyond the k*c candidate pool.
  const core::TopKAccelerator accelerator(matrix,
                                          core::DesignConfig::fixed(20, 4));
  util::Xoshiro256 rng(79);
  const auto x = sparse::generate_dense_vector(128, rng);
  EXPECT_THROW((void)accelerator.query(x, 4 * 8 + 1), std::invalid_argument);
  // Vector of the wrong dimensionality.
  const std::vector<float> wrong(64, 0.1f);
  EXPECT_THROW((void)accelerator.query(wrong, 8), std::invalid_argument);
  // Invalid design parameters surface at construction.
  core::DesignConfig bad = core::DesignConfig::fixed(20, 4);
  bad.value_bits = 40;
  EXPECT_THROW(core::TopKAccelerator(matrix, bad), std::invalid_argument);
}

TEST(Integration, MeasuredPrecisionTracksTableIModel) {
  // The bench-scale version of Table I: measured precision across
  // random queries vs the closed-form expectation, c = 16, k = 8.
  const sparse::Csr matrix = test::small_random_matrix(4000, 256, 10.0, 80);
  core::DesignConfig design = core::DesignConfig::fixed(32, 16);
  design.k = 8;
  const core::TopKAccelerator accelerator(matrix, design);

  util::Xoshiro256 rng(81);
  constexpr int kTopK = 100;
  constexpr int kQueries = 10;
  double measured = 0.0;
  for (int q = 0; q < kQueries; ++q) {
    const auto x = sparse::generate_dense_vector(256, rng);
    const auto exact = baselines::cpu_topk_spmv(matrix, x, kTopK, 2);
    const auto result = accelerator.query(x, kTopK);
    std::vector<std::uint32_t> retrieved;
    std::vector<std::uint32_t> relevant;
    for (const auto& entry : result.entries) {
      retrieved.push_back(entry.index);
    }
    for (const auto& entry : exact) {
      relevant.push_back(entry.index);
    }
    measured += eval::precision_at_k(retrieved, relevant);
  }
  measured /= kQueries;
  const double expected = core::expected_precision_closed(4000, 16, 8, kTopK);
  EXPECT_NEAR(measured, expected, 0.05);
}

}  // namespace
}  // namespace topk
