// Tests for the telemetry layer: instrument semantics (counter/gauge/
// histogram), registry registration + label canonicalisation + type
// clashes, snapshot determinism, the Prometheus/JSON exposition
// grammar, the trace recorder (capacity, context propagation, Chrome
// export), the shared percentile estimators, and a TSan-targeted
// stress suite (concurrent instruments + scrapes + a live compaction
// swap under tracing).
#include "telemetry/metrics.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "index/mutable_index.hpp"
#include "index/registry.hpp"
#include "persist/compactor.hpp"
#include "shard/mutable_sharded_index.hpp"
#include "sparse/generator.hpp"
#include "telemetry/exposition.hpp"
#include "telemetry/trace.hpp"
#include "util/percentile.hpp"
#include "util/rng.hpp"

namespace topk::telemetry {
namespace {

// ---- instruments ---------------------------------------------------------

TEST(TelemetryMetricsTest, CounterAccumulatesMonotonically) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.inc();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(TelemetryMetricsTest, GaugeSetAddAndTrackMax) {
  Gauge gauge;
  EXPECT_EQ(gauge.value(), 0.0);
  gauge.set(3.5);
  EXPECT_EQ(gauge.value(), 3.5);
  gauge.add(-1.5);
  EXPECT_EQ(gauge.value(), 2.0);
  gauge.track_max(1.0);  // below current: no-op
  EXPECT_EQ(gauge.value(), 2.0);
  gauge.track_max(7.0);
  EXPECT_EQ(gauge.value(), 7.0);
}

TEST(TelemetryMetricsTest, HistogramUsesLeBucketSemantics) {
  Histogram hist({1.0, 2.0, 4.0});
  hist.observe(0.5);  // <= 1
  hist.observe(1.0);  // le: boundary lands in its own bucket
  hist.observe(3.0);  // <= 4
  hist.observe(9.0);  // overflow
  const HistogramSnapshot snap = hist.snapshot();
  ASSERT_EQ(snap.bounds.size(), 3u);
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 0u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 13.5);
}

TEST(TelemetryMetricsTest, HistogramRejectsBadBounds) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(TelemetryMetricsTest, ExponentialBucketsLadder) {
  const auto bounds = Histogram::exponential_buckets(1.0, 2.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[3], 8.0);
  EXPECT_THROW(Histogram::exponential_buckets(0.0, 2.0, 4),
               std::invalid_argument);
  EXPECT_THROW(Histogram::exponential_buckets(1.0, 1.0, 4),
               std::invalid_argument);
  EXPECT_THROW(Histogram::exponential_buckets(1.0, 2.0, 0),
               std::invalid_argument);
}

// ---- registry ------------------------------------------------------------

TEST(TelemetryMetricsTest, RegistryDedupesByNameAndCanonicalLabels) {
  MetricsRegistry reg;
  Counter& a = reg.counter("topk_test_total", {{"a", "1"}, {"b", "2"}});
  // Same cell regardless of label order.
  Counter& b = reg.counter("topk_test_total", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&a, &b);
  Counter& c = reg.counter("topk_test_total", {{"a", "1"}, {"b", "3"}});
  EXPECT_NE(&a, &c);
  a.inc();
  const auto families = reg.snapshot();
  ASSERT_EQ(families.size(), 1u);
  ASSERT_EQ(families[0].series.size(), 2u);
}

TEST(TelemetryMetricsTest, RegistryRejectsTypeClash) {
  MetricsRegistry reg;
  (void)reg.counter("topk_clash_total");
  EXPECT_THROW((void)reg.gauge("topk_clash_total"), std::invalid_argument);
  EXPECT_THROW((void)reg.histogram("topk_clash_total", {1.0}),
               std::invalid_argument);
}

TEST(TelemetryMetricsTest, RegistryRejectsHistogramBoundsMismatch) {
  MetricsRegistry reg;
  (void)reg.histogram("topk_h_seconds", {1.0, 2.0}, {{"phase", "a"}});
  // New cell of the same family must reuse the family's bucket layout.
  EXPECT_THROW(
      (void)reg.histogram("topk_h_seconds", {1.0, 3.0}, {{"phase", "b"}}),
      std::invalid_argument);
  EXPECT_NO_THROW(
      (void)reg.histogram("topk_h_seconds", {1.0, 2.0}, {{"phase", "b"}}));
}

TEST(TelemetryMetricsTest, RegistryValidatesNames) {
  MetricsRegistry reg;
  EXPECT_THROW((void)reg.counter("0bad"), std::invalid_argument);
  EXPECT_THROW((void)reg.counter("has space"), std::invalid_argument);
  EXPECT_THROW((void)reg.counter("topk_ok", {{"bad:label", "v"}}),
               std::invalid_argument);
  EXPECT_THROW((void)reg.counter("topk_ok", {{"a", "1"}, {"a", "2"}}),
               std::invalid_argument);
  EXPECT_NO_THROW((void)reg.counter("topk_ok:sub", {{"a", "1"}}));
}

TEST(TelemetryMetricsTest, SnapshotIsSortedAndAdoptsFirstHelp) {
  MetricsRegistry reg;
  (void)reg.gauge("topk_zz", {}, "");
  (void)reg.counter("topk_aa_total", {}, "first help");
  (void)reg.counter("topk_aa_total", {}, "second help ignored");
  const auto families = reg.snapshot();
  ASSERT_EQ(families.size(), 2u);
  EXPECT_EQ(families[0].name, "topk_aa_total");
  EXPECT_EQ(families[0].help, "first help");
  EXPECT_EQ(families[1].name, "topk_zz");
}

// ---- exposition ----------------------------------------------------------

TEST(TelemetryExpositionTest, PrometheusScalarGrammar) {
  MetricsRegistry reg;
  reg.counter("topk_q_total", {{"shard", "0"}}, "Queries.").add(3);
  reg.gauge("topk_depth", {}, "Queue depth.").set(2.0);
  const std::string text = to_prometheus(reg.snapshot());
  EXPECT_NE(text.find("# HELP topk_depth Queue depth.\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE topk_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("topk_depth 2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE topk_q_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("topk_q_total{shard=\"0\"} 3\n"), std::string::npos);
}

TEST(TelemetryExpositionTest, PrometheusHistogramIsCumulative) {
  MetricsRegistry reg;
  Histogram& hist = reg.histogram("topk_lat_seconds", {0.5, 1.0});
  hist.observe(0.25);
  hist.observe(0.75);
  hist.observe(5.0);
  const std::string text = to_prometheus(reg.snapshot());
  EXPECT_NE(text.find("topk_lat_seconds_bucket{le=\"0.5\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("topk_lat_seconds_bucket{le=\"1\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("topk_lat_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("topk_lat_seconds_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("topk_lat_seconds_sum 6\n"), std::string::npos);
}

TEST(TelemetryExpositionTest, BucketBoundsRenderCompactly) {
  MetricsRegistry reg;
  (void)reg.histogram("topk_ladder_seconds",
                      Histogram::exponential_buckets(1e-5, 2.5, 3));
  const std::string text = to_prometheus(reg.snapshot());
  // The ladder's second rung must not pick up max_digits10 noise
  // ("2.5000000000000001e-05") — le values are identity labels.
  EXPECT_NE(text.find("le=\"2.5e-05\""), std::string::npos);
  EXPECT_EQ(text.find("0000000"), std::string::npos);
}

TEST(TelemetryExpositionTest, PrometheusEscapesLabelValues) {
  MetricsRegistry reg;
  reg.counter("topk_esc_total", {{"path", "a\\b\"c\nd"}}).inc();
  const std::string text = to_prometheus(reg.snapshot());
  EXPECT_NE(text.find("path=\"a\\\\b\\\"c\\nd\""), std::string::npos);
}

TEST(TelemetryExpositionTest, JsonMirrorsTheSnapshot) {
  MetricsRegistry reg;
  reg.counter("topk_j_total", {{"k", "v"}}).add(7);
  reg.histogram("topk_j_seconds", {1.0}).observe(0.5);
  const std::string text = to_json(reg.snapshot());
  EXPECT_NE(text.find("\"name\":\"topk_j_total\""), std::string::npos);
  EXPECT_NE(text.find("\"labels\":{\"k\":\"v\"}"), std::string::npos);
  EXPECT_NE(text.find("\"value\":7"), std::string::npos);
  EXPECT_NE(text.find("\"count\":1"), std::string::npos);
  EXPECT_NE(text.find("{\"le\":\"1\",\"count\":1}"), std::string::npos);
  EXPECT_NE(text.find("{\"le\":\"+Inf\",\"count\":0}"), std::string::npos);
}

TEST(TelemetryExpositionTest, JsonEscapeCoversControlCharacters) {
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("x\n\t\r"), "x\\n\\t\\r");
  EXPECT_EQ(json_escape(std::string("\x01", 1)), "\\u0001");
}

// ---- trace recorder ------------------------------------------------------

TEST(TelemetryTraceTest, DisabledRecorderIsSilent) {
  TraceRecorder recorder;
  TraceSpan span;
  span.name = "query";
  recorder.record(span);
  EXPECT_TRUE(recorder.snapshot().empty());
  EXPECT_EQ(recorder.dropped(), 0u);
}

TEST(TelemetryTraceTest, CapacityDropsAreCounted) {
  TraceRecorder recorder;
  recorder.enable(2);
  for (int i = 0; i < 5; ++i) {
    TraceSpan span;
    span.name = "s" + std::to_string(i);
    recorder.record(std::move(span));
  }
  EXPECT_EQ(recorder.snapshot().size(), 2u);
  EXPECT_EQ(recorder.dropped(), 3u);
  recorder.enable(8);  // re-enable resets the buffer and the counter
  EXPECT_TRUE(recorder.snapshot().empty());
  EXPECT_EQ(recorder.dropped(), 0u);
}

TEST(TelemetryTraceTest, MintedTraceIdsAreUniqueAndNonZero) {
  TraceRecorder recorder;
  const std::uint64_t first = recorder.mint_trace_id();
  const std::uint64_t second = recorder.mint_trace_id();
  EXPECT_NE(first, 0u);
  EXPECT_NE(first, second);
}

TEST(TelemetryTraceTest, ContextScopeRestoresPreviousId) {
  const std::uint64_t outer = current_trace_id();
  {
    TraceContextScope scope(1234);
    EXPECT_EQ(current_trace_id(), 1234u);
    {
      TraceContextScope inner(5678);
      EXPECT_EQ(current_trace_id(), 5678u);
    }
    EXPECT_EQ(current_trace_id(), 1234u);
  }
  EXPECT_EQ(current_trace_id(), outer);
}

TEST(TelemetryTraceTest, ContextIsThreadLocal) {
  TraceContextScope scope(99);
  std::uint64_t seen_in_thread = 99;
  std::thread worker([&] { seen_in_thread = current_trace_id(); });
  worker.join();
  EXPECT_EQ(seen_in_thread, 0u);
  EXPECT_EQ(current_trace_id(), 99u);
}

TEST(TelemetryTraceTest, ChromeTraceExportShape) {
  TraceRecorder recorder;
  recorder.enable(16);
  TraceSpan span;
  span.name = "cell";
  span.category = "shard";
  span.trace_id = 7;
  span.thread_id = 3;
  span.start_seconds = 1.0;
  span.duration_seconds = 0.5;
  span.args.push_back(arg("shard", 2));
  span.args.push_back(arg("label", std::string("a\"b")));
  recorder.record(std::move(span));
  std::ostringstream out;
  recorder.write_chrome_trace(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("{\"traceEvents\":["), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"cell\""), std::string::npos);
  EXPECT_NE(text.find("\"cat\":\"shard\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"ts\":1000000"), std::string::npos);
  EXPECT_NE(text.find("\"dur\":500000"), std::string::npos);
  EXPECT_NE(text.find("\"trace\":7"), std::string::npos);
  EXPECT_NE(text.find("\"shard\":2"), std::string::npos);
  EXPECT_NE(text.find("\"label\":\"a\\\"b\""), std::string::npos);
}

// ---- percentile estimators ----------------------------------------------

TEST(PercentileTest, WindowEvictsOldestSamples) {
  util::PercentileWindow window(3);
  EXPECT_THROW(util::PercentileWindow(0), std::invalid_argument);
  window.add(1.0);
  window.add(2.0);
  window.add(3.0);
  window.add(100.0);  // evicts 1.0
  EXPECT_EQ(window.size(), 3u);
  EXPECT_DOUBLE_EQ(window.quantile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(window.quantile(1.0), 100.0);
  window.clear();
  EXPECT_TRUE(window.empty());
  EXPECT_THROW((void)window.quantile(0.5), std::invalid_argument);
}

TEST(PercentileTest, HistogramQuantileInterpolates) {
  const std::vector<double> bounds{1.0, 2.0, 4.0};
  // 10 observations uniformly in (0, 1]; median of the first bucket
  // interpolates to its middle.
  const std::vector<std::uint64_t> first_bucket{10, 0, 0, 0};
  EXPECT_DOUBLE_EQ(util::histogram_quantile(bounds, first_bucket, 0.5), 0.5);
  // Rank crossing into the second bucket interpolates inside [1, 2].
  const std::vector<std::uint64_t> split{5, 5, 0, 0};
  EXPECT_DOUBLE_EQ(util::histogram_quantile(bounds, split, 0.75), 1.5);
  // Overflow ranks clamp to the largest finite bound.
  const std::vector<std::uint64_t> overflow{0, 0, 0, 4};
  EXPECT_DOUBLE_EQ(util::histogram_quantile(bounds, overflow, 0.99), 4.0);
  // Empty histogram reads 0 by contract.
  const std::vector<std::uint64_t> empty{0, 0, 0, 0};
  EXPECT_DOUBLE_EQ(util::histogram_quantile(bounds, empty, 0.5), 0.0);
  EXPECT_THROW(
      (void)util::histogram_quantile(bounds, first_bucket, 1.5),
      std::invalid_argument);
  const std::vector<std::uint64_t> short_counts{1, 2};
  EXPECT_THROW(
      (void)util::histogram_quantile(bounds, short_counts, 0.5),
      std::invalid_argument);
}

TEST(PercentileTest, HistogramSnapshotQuantileUsesSharedEstimator) {
  Histogram hist({1.0, 2.0, 4.0});
  for (int i = 0; i < 10; ++i) {
    hist.observe(0.5);
  }
  const HistogramSnapshot snap = hist.snapshot();
  EXPECT_DOUBLE_EQ(
      snap.quantile(0.5),
      util::histogram_quantile(snap.bounds, snap.counts, 0.5));
}

// ---- TSan stress ---------------------------------------------------------
// These run under the CI TSan leg (and plain ctest elsewhere): many
// writers on one instrument set while a scraper snapshots, and a live
// mutable index serving queries through a compaction swap with tracing
// on.  Assertions are exact where the instruments promise exactness.

TEST(TelemetryStressTest, ConcurrentInstrumentsAndScrapes) {
  MetricsRegistry reg;
  Counter& counter = reg.counter("topk_stress_total");
  Gauge& gauge = reg.gauge("topk_stress_depth");
  Histogram& hist = reg.histogram("topk_stress_seconds", {0.5, 1.0});
  constexpr int kThreads = 8;
  constexpr int kEvents = 4000;
  std::atomic<bool> done{false};
  std::thread scraper([&] {
    while (!done.load(std::memory_order_relaxed)) {
      for (const auto& family : reg.snapshot()) {
        for (const auto& series : family.series) {
          // Cumulative per-cell reads can never run backwards past the
          // final total.
          ASSERT_LE(series.histogram.count,
                    static_cast<std::uint64_t>(kThreads) * kEvents);
        }
      }
    }
  });
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < kEvents; ++i) {
        counter.inc();
        gauge.add(1.0);
        gauge.add(-1.0);
        hist.observe(i % 2 == 0 ? 0.25 : 2.0);
      }
    });
  }
  for (auto& writer : writers) {
    writer.join();
  }
  done.store(true, std::memory_order_relaxed);
  scraper.join();
  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kThreads) * kEvents);
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
  const HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kEvents);
  EXPECT_EQ(snap.counts[0], static_cast<std::uint64_t>(kThreads) * kEvents / 2);
}

TEST(TelemetryStressTest, ConcurrentSpanRecordingNeverLosesCount) {
  TraceRecorder recorder;
  recorder.enable(1000);  // deliberately smaller than the offered load
  constexpr int kThreads = 8;
  constexpr int kSpans = 500;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      TraceContextScope scope(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kSpans; ++i) {
        TraceSpan span;
        span.name = "stress";
        span.trace_id = current_trace_id();
        recorder.record(std::move(span));
        (void)recorder.snapshot();  // concurrent scrape on the same lock
      }
    });
  }
  for (auto& writer : writers) {
    writer.join();
  }
  EXPECT_EQ(recorder.snapshot().size(), 1000u);
  EXPECT_EQ(recorder.dropped(),
            static_cast<std::uint64_t>(kThreads) * kSpans - 1000u);
}

TEST(TelemetryStressTest, TracedQueriesThroughCompactionSwap) {
  // A small mutable sharded index serving concurrent queries while a
  // mutator appends and a compaction swaps the sealed generation, all
  // with the global tracer enabled and a scraper hammering both the
  // registry and the span buffer — the telemetry-on version of the
  // mutable tier's race surface.
  sparse::GeneratorConfig generator;
  generator.rows = 2000;
  generator.cols = 64;
  generator.mean_nnz_per_row = 8.0;
  generator.seed = 7;
  const auto matrix = std::make_shared<const sparse::Csr>(
      sparse::generate_matrix(generator));
  index::IndexOptions options;
  options.shards = 2;
  auto index = index::make_index("mutable-sharded-cpu-heap", matrix, options);
  const auto mut = index::as_mutable(index);
  ASSERT_NE(mut, nullptr);
  const auto typed =
      std::dynamic_pointer_cast<shard::MutableShardedIndex>(index);
  ASSERT_NE(typed, nullptr);
  const std::filesystem::path root =
      std::filesystem::temp_directory_path() / "topk_test_telemetry_stress";
  persist::Compactor compactor(typed, root);

  tracer().enable(4096);
  std::atomic<bool> done{false};
  std::thread scraper([&] {
    while (!done.load(std::memory_order_relaxed)) {
      (void)registry().snapshot();
      (void)tracer().snapshot();
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      util::Xoshiro256 rng(100 + static_cast<std::uint64_t>(t));
      while (!done.load(std::memory_order_relaxed)) {
        TraceContextScope scope(tracer().mint_trace_id());
        const auto x = sparse::generate_dense_vector(generator.cols, rng);
        (void)index->query(x, 10);
      }
    });
  }
  {
    util::Xoshiro256 rng(200);
    for (int m = 0; m < 300; ++m) {
      std::vector<std::uint32_t> cols{static_cast<std::uint32_t>(m % 64)};
      std::vector<float> vals{0.5f};
      (void)mut->insert_row(cols, vals);
      if (m == 150) {
        ASSERT_TRUE(compactor.compact().has_value());
      }
    }
  }
  done.store(true, std::memory_order_relaxed);
  for (auto& reader : readers) {
    reader.join();
  }
  scraper.join();
  tracer().disable();
  tracer().clear();
  std::filesystem::remove_all(root);
  SUCCEED();  // the assertion is TSan/ASan cleanliness
}

}  // namespace
}  // namespace topk::telemetry
