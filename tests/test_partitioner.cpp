#include "core/partitioner.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace topk::core {
namespace {

TEST(MakeRowPartitions, EvenSplit) {
  const auto partitions = make_row_partitions(100, 4);
  ASSERT_EQ(partitions.size(), 4u);
  for (const Partition& partition : partitions) {
    EXPECT_EQ(partition.rows(), 25u);
  }
  EXPECT_EQ(partitions.front().row_begin, 0u);
  EXPECT_EQ(partitions.back().row_end, 100u);
}

TEST(MakeRowPartitions, RemainderSpreadOverFirstPartitions) {
  const auto partitions = make_row_partitions(10, 3);
  ASSERT_EQ(partitions.size(), 3u);
  EXPECT_EQ(partitions[0].rows(), 4u);
  EXPECT_EQ(partitions[1].rows(), 3u);
  EXPECT_EQ(partitions[2].rows(), 3u);
  // Contiguous and covering.
  EXPECT_EQ(partitions[0].row_end, partitions[1].row_begin);
  EXPECT_EQ(partitions[1].row_end, partitions[2].row_begin);
}

TEST(MakeRowPartitions, SizesDifferByAtMostOne) {
  for (const std::uint32_t rows : {31u, 97u, 1000u, 12345u}) {
    for (const int count : {1, 2, 7, 16, 28, 32}) {
      if (static_cast<std::uint32_t>(count) > rows) {
        continue;
      }
      const auto partitions = make_row_partitions(rows, count);
      std::uint32_t min_size = rows;
      std::uint32_t max_size = 0;
      std::uint32_t total = 0;
      for (const Partition& partition : partitions) {
        min_size = std::min(min_size, partition.rows());
        max_size = std::max(max_size, partition.rows());
        total += partition.rows();
      }
      EXPECT_EQ(total, rows);
      EXPECT_LE(max_size - min_size, 1u);
    }
  }
}

TEST(MakeRowPartitions, RejectsBadCounts) {
  EXPECT_THROW((void)make_row_partitions(10, 0), std::invalid_argument);
  EXPECT_THROW((void)make_row_partitions(10, -1), std::invalid_argument);
  EXPECT_THROW((void)make_row_partitions(10, 11), std::invalid_argument);
  EXPECT_NO_THROW((void)make_row_partitions(10, 10));
}

TEST(MergePartitionResults, RebasesIndicesAndSorts) {
  const std::vector<Partition> partitions{{0, 50}, {50, 100}};
  const std::vector<std::vector<TopKEntry>> per_partition{
      {{3, 0.9}, {7, 0.5}},
      {{0, 0.7}, {10, 0.6}},
  };
  const auto merged = merge_partition_results(per_partition, partitions, 3);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].index, 3u);    // 0.9 from partition 0
  EXPECT_EQ(merged[1].index, 50u);   // 0.7 rebased from partition 1
  EXPECT_EQ(merged[2].index, 60u);   // 0.6 rebased from partition 1
}

TEST(MergePartitionResults, TruncatesToTopK) {
  const std::vector<Partition> partitions{{0, 10}};
  const std::vector<std::vector<TopKEntry>> per_partition{
      {{0, 0.1}, {1, 0.2}, {2, 0.3}}};
  EXPECT_EQ(merge_partition_results(per_partition, partitions, 2).size(), 2u);
  EXPECT_EQ(merge_partition_results(per_partition, partitions, 10).size(), 3u);
}

TEST(MergePartitionResults, TieBreaksByIndex) {
  const std::vector<Partition> partitions{{0, 10}, {10, 20}};
  const std::vector<std::vector<TopKEntry>> per_partition{
      {{5, 0.5}},
      {{1, 0.5}},
  };
  const auto merged = merge_partition_results(per_partition, partitions, 2);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].index, 5u);
  EXPECT_EQ(merged[1].index, 11u);
}

TEST(MergePartitionResults, Validates) {
  const std::vector<Partition> partitions{{0, 10}};
  const std::vector<std::vector<TopKEntry>> wrong_count{{}, {}};
  EXPECT_THROW((void)merge_partition_results(wrong_count, partitions, 1),
               std::invalid_argument);
  const std::vector<std::vector<TopKEntry>> ok{{}};
  EXPECT_THROW((void)merge_partition_results(ok, partitions, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace topk::core
