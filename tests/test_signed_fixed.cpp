// Tests for the kSignedFixed extension: two's-complement quantisation,
// the signed streaming kernel, and end-to-end accelerator queries on
// embeddings with negative components.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "core/accelerator.hpp"
#include "core/bscsr.hpp"
#include "fixed/fixed_point.hpp"
#include "test_helpers.hpp"

namespace topk {
namespace {

using core::DesignConfig;
using core::PacketLayout;
using core::ValueKind;
using fixed::dequantize_signed;
using fixed::FixedFormat;
using fixed::quantize_signed;
using fixed::sign_extend;

TEST(SignExtend, KnownPatterns) {
  EXPECT_EQ(sign_extend(0x0, 4), 0);
  EXPECT_EQ(sign_extend(0x7, 4), 7);
  EXPECT_EQ(sign_extend(0x8, 4), -8);
  EXPECT_EQ(sign_extend(0xF, 4), -1);
  EXPECT_EQ(sign_extend(0xFFFFF, 20), -1);
  EXPECT_EQ(sign_extend(0x80000000u, 32),
            std::numeric_limits<std::int32_t>::min());
  EXPECT_EQ(sign_extend(0x7FFFFFFFu, 32), 0x7FFFFFFF);
}

TEST(QuantizeSigned, ZeroAndExtremes) {
  const FixedFormat format{20, 1};
  EXPECT_EQ(quantize_signed(0.0, format), 0u);
  // +1.0 saturates at 2^19 - 1 raw (just below 1.0).
  const std::uint32_t max_raw = quantize_signed(10.0, format);
  EXPECT_EQ(max_raw, (1u << 19) - 1);
  // -1.0 is exactly representable: raw = -2^19 (two's complement).
  const std::uint32_t min_raw = quantize_signed(-10.0, format);
  EXPECT_EQ(min_raw, 1u << 19);
  EXPECT_DOUBLE_EQ(dequantize_signed(min_raw, format), -1.0);
  EXPECT_EQ(quantize_signed(std::nan(""), format), 0u);
}

TEST(QuantizeSigned, RoundTripErrorWithinHalfLsb) {
  util::Xoshiro256 rng(61);
  for (const FixedFormat format : {FixedFormat{20, 1}, FixedFormat{25, 1},
                                   FixedFormat{32, 1}, FixedFormat{8, 1}}) {
    for (int i = 0; i < 1000; ++i) {
      const double value = rng.uniform(-0.999, 0.999);
      const double back =
          dequantize_signed(quantize_signed(value, format), format);
      EXPECT_LE(std::abs(back - value), format.resolution() * 0.5 + 1e-15)
          << "V=" << format.total_bits << " value=" << value;
    }
  }
}

TEST(QuantizeSigned, NegativeValuesPreserveOrdering) {
  const FixedFormat format{20, 1};
  double previous = -2.0;
  for (double v = -1.0; v <= 1.0; v += 0.01) {
    const double decoded = dequantize_signed(quantize_signed(v, format), format);
    EXPECT_GE(decoded, previous);
    previous = decoded;
  }
}

TEST(SignedDesign, ConstructorAndName) {
  const DesignConfig design = DesignConfig::signed_fixed(20, 16);
  EXPECT_EQ(design.value_kind, ValueKind::kSignedFixed);
  EXPECT_EQ(design.name(), "FPGA s20b 16C");
  EXPECT_EQ(core::to_string(ValueKind::kSignedFixed), "signed-fixed");
}

TEST(SignedBsCsr, RoundTripPreservesSigns) {
  const sparse::Csr matrix = test::small_signed_matrix(100, 128, 10.0, 62);
  const PacketLayout layout = PacketLayout::solve(128, 20);
  const auto encoded = core::encode_bscsr(matrix, layout, ValueKind::kSignedFixed);
  const sparse::Csr decoded = core::decode_bscsr(encoded);
  ASSERT_EQ(decoded.nnz(), matrix.nnz());
  bool saw_negative = false;
  for (std::size_t i = 0; i < matrix.nnz(); ++i) {
    EXPECT_NEAR(decoded.values()[i], matrix.values()[i], 1.0f / (1 << 19));
    saw_negative |= decoded.values()[i] < 0.0f;
  }
  EXPECT_TRUE(saw_negative);
}

struct SignedKernelParam {
  std::uint32_t rows;
  std::uint32_t cols;
  int val_bits;
  int k;
};

class SignedKernelOracle : public ::testing::TestWithParam<SignedKernelParam> {};

TEST_P(SignedKernelOracle, MatchesBitExactReference) {
  const SignedKernelParam param = GetParam();
  const sparse::Csr matrix =
      test::small_signed_matrix(param.rows, param.cols, 15.0, 63 + param.rows);
  const PacketLayout layout = PacketLayout::solve(param.cols, param.val_bits);
  const auto encoded =
      core::encode_bscsr(matrix, layout, ValueKind::kSignedFixed);
  util::Xoshiro256 rng(64 + param.k);
  const auto x = test::signed_query(param.cols, rng);

  const core::KernelResult result =
      core::run_topk_spmv(encoded, x, param.k, layout.capacity);
  const auto scores = test::reference_scores(
      matrix, x, ValueKind::kSignedFixed, param.val_bits);
  test::expect_exact_topk(result.topk, scores, param.k);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SignedKernelOracle,
    ::testing::Values(SignedKernelParam{400, 512, 20, 8},
                      SignedKernelParam{400, 512, 25, 8},
                      SignedKernelParam{400, 512, 32, 8},
                      SignedKernelParam{200, 1024, 20, 16},
                      SignedKernelParam{100, 64, 12, 4}));

TEST(SignedAccelerator, RetrievesNegativeCorrelationsLast) {
  // With signed data, anti-correlated rows must sink to the bottom —
  // something the unsigned design cannot express.
  const sparse::Csr matrix = test::small_signed_matrix(500, 256, 12.0, 65);
  DesignConfig design = DesignConfig::signed_fixed(20, 4);
  design.k = 16;
  const core::TopKAccelerator accelerator(matrix, design);
  util::Xoshiro256 rng(66);
  const auto x = test::signed_query(256, rng);

  const auto result = accelerator.query(x, 16);
  const auto scores =
      test::reference_scores(matrix, x, ValueKind::kSignedFixed, 20);
  test::expect_exact_topk(result.entries, scores, 16);
  // Some rows must have genuinely negative scores for this workload.
  const double min_score = *std::min_element(scores.begin(), scores.end());
  EXPECT_LT(min_score, 0.0);
}

TEST(SignedAccelerator, AgreesWithExactCpuOnRanking) {
  const sparse::Csr matrix = test::small_signed_matrix(2000, 512, 20.0, 67);
  const core::TopKAccelerator accelerator(
      matrix, DesignConfig::signed_fixed(25, 16));
  util::Xoshiro256 rng(68);
  int hits = 0;
  constexpr int kTopK = 20;
  for (int q = 0; q < 3; ++q) {
    const auto x = test::signed_query(512, rng);
    const auto result = accelerator.query(x, kTopK);
    std::vector<double> exact(matrix.rows());
    for (std::uint32_t r = 0; r < matrix.rows(); ++r) {
      exact[r] = matrix.row_dot(r, x);
    }
    std::vector<std::uint32_t> order(matrix.rows());
    for (std::uint32_t r = 0; r < matrix.rows(); ++r) {
      order[r] = r;
    }
    std::partial_sort(order.begin(), order.begin() + kTopK, order.end(),
                      [&](std::uint32_t a, std::uint32_t b) {
                        return exact[a] > exact[b];
                      });
    std::unordered_set<std::uint32_t> exact_set(order.begin(),
                                                order.begin() + kTopK);
    for (const auto& entry : result.entries) {
      hits += exact_set.count(entry.index);
    }
  }
  EXPECT_GE(hits, 3 * kTopK - 4);  // 25-bit quantisation barely perturbs
}

}  // namespace
}  // namespace topk
