#include "util/bitio.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace topk::util {
namespace {

TEST(BitWriter, AppendsSingleBits) {
  BitWriter writer;
  writer.append(1, 1);
  writer.append(0, 1);
  writer.append(1, 1);
  EXPECT_EQ(writer.bit_size(), 3u);
  EXPECT_EQ(writer.words()[0] & 0x7u, 0b101u);
}

TEST(BitWriter, AppendsAcrossWordBoundary) {
  BitWriter writer;
  writer.append(0, 60);
  writer.append(0xFF, 8);  // spans bits 60..67
  BitReader reader(writer.words(), writer.bit_size());
  EXPECT_EQ(reader.read(60, 8), 0xFFu);
  EXPECT_EQ(reader.read(0, 60), 0u);
}

TEST(BitWriter, Appends64BitValues) {
  BitWriter writer;
  writer.append(0xDEADBEEFCAFEF00DULL, 64);
  writer.append(0x123456789ABCDEFULL, 64);
  BitReader reader(writer.words(), writer.bit_size());
  EXPECT_EQ(reader.read(0, 64), 0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(reader.read(64, 64), 0x123456789ABCDEFULL);
}

TEST(BitWriter, RejectsOversizedValue) {
  BitWriter writer;
  EXPECT_THROW(writer.append(0b100, 2), std::invalid_argument);
  EXPECT_THROW(writer.append(1, 0), std::invalid_argument);
  EXPECT_THROW(writer.append(1, 65), std::invalid_argument);
  EXPECT_THROW(writer.append(1, -1), std::invalid_argument);
}

TEST(BitWriter, ZeroBitsOfZeroIsNoop) {
  BitWriter writer;
  writer.append(0, 0);
  EXPECT_EQ(writer.bit_size(), 0u);
}

TEST(BitWriter, AlignPadsWithZeros) {
  BitWriter writer;
  writer.append(0x3, 2);
  writer.align_to(512);
  EXPECT_EQ(writer.bit_size(), 512u);
  writer.append(1, 1);
  writer.align_to(512);
  EXPECT_EQ(writer.bit_size(), 1024u);
  BitReader reader(writer.words(), writer.bit_size());
  EXPECT_EQ(reader.read(2, 64), 0u);
  EXPECT_EQ(reader.read(512, 1), 1u);
}

TEST(BitWriter, AlignOnBoundaryIsNoop) {
  BitWriter writer;
  writer.append(0xFFFF, 16);
  writer.align_to(16);
  EXPECT_EQ(writer.bit_size(), 16u);
  EXPECT_THROW(writer.align_to(0), std::invalid_argument);
}

TEST(BitWriter, TakeWordsTrimsAndResets) {
  BitWriter writer;
  writer.append(0x1, 1);
  const std::vector<std::uint64_t> words = writer.take_words();
  EXPECT_EQ(words.size(), 1u);
  EXPECT_EQ(writer.bit_size(), 0u);
  EXPECT_TRUE(writer.words().empty());
}

TEST(BitReader, BoundsChecked) {
  BitWriter writer;
  writer.append(0xABCD, 16);
  BitReader reader(writer.words(), writer.bit_size());
  EXPECT_EQ(reader.bit_size(), 16u);
  EXPECT_THROW((void)reader.read(9, 8), std::out_of_range);
  EXPECT_THROW((void)reader.read(0, 65), std::invalid_argument);
  EXPECT_EQ(reader.read(0, 0), 0u);
}

TEST(BitRoundTrip, RandomFieldsSurviveRoundTrip) {
  Xoshiro256 rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    BitWriter writer;
    std::vector<std::pair<std::uint64_t, int>> fields;
    for (int i = 0; i < 200; ++i) {
      const int bits = 1 + static_cast<int>(rng.bounded(64));
      const std::uint64_t value =
          bits == 64 ? rng() : rng() & ((std::uint64_t{1} << bits) - 1);
      fields.emplace_back(value, bits);
      writer.append(value, bits);
    }
    BitReader reader(writer.words(), writer.bit_size());
    std::size_t pos = 0;
    for (const auto& [value, bits] : fields) {
      EXPECT_EQ(reader.read(pos, bits), value);
      pos += static_cast<std::size_t>(bits);
    }
  }
}

TEST(BitsForValue, MatchesCeilLog2) {
  EXPECT_EQ(bits_for_value(0), 1);
  EXPECT_EQ(bits_for_value(1), 1);
  EXPECT_EQ(bits_for_value(2), 2);
  EXPECT_EQ(bits_for_value(3), 2);
  EXPECT_EQ(bits_for_value(4), 3);
  EXPECT_EQ(bits_for_value(15), 4);  // the paper's B = 15 ptr width
  EXPECT_EQ(bits_for_value(16), 5);
  EXPECT_EQ(bits_for_value(1023), 10);  // idx bits for M = 1024
  EXPECT_EQ(bits_for_value(0xFFFFFFFFFFFFFFFFULL), 64);
}

}  // namespace
}  // namespace topk::util
