#include "sparse/matrix_stats.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

#include "test_helpers.hpp"

namespace topk::sparse {
namespace {

TEST(RowDensityStats, HandComputedExample) {
  // Rows with 0, 1, 2, 5 non-zeros.
  Coo coo(4, 8);
  coo.push_back(1, 0, 1.0f);
  for (std::uint32_t c = 0; c < 2; ++c) {
    coo.push_back(2, c, 1.0f);
  }
  for (std::uint32_t c = 0; c < 5; ++c) {
    coo.push_back(3, c, 1.0f);
  }
  const Csr matrix = Csr::from_coo(std::move(coo));
  const RowDensityStats stats = row_density_stats(matrix);
  EXPECT_EQ(stats.rows, 4u);
  EXPECT_EQ(stats.nnz, 8u);
  EXPECT_EQ(stats.empty_rows, 1u);
  EXPECT_EQ(stats.min_nnz, 0u);
  EXPECT_EQ(stats.max_nnz, 5u);
  EXPECT_DOUBLE_EQ(stats.mean_nnz, 2.0);
  EXPECT_NEAR(stats.density, 8.0 / 32.0, 1e-12);
  // Gini of {0,1,2,5}: 2*(1*0+2*1+3*2+4*5)/(4*8) - 5/4 = 56/32 - 1.25 = 0.5.
  EXPECT_NEAR(stats.gini, 0.5, 1e-12);
}

TEST(RowDensityStats, UniformRowsHaveLowGini) {
  const Csr uniform = test::small_random_matrix(
      2000, 512, 20.0, 93, RowDistribution::kUniform);
  const Csr gamma = test::small_random_matrix(
      2000, 512, 20.0, 94, RowDistribution::kGamma);
  const RowDensityStats uniform_stats = row_density_stats(uniform);
  const RowDensityStats gamma_stats = row_density_stats(gamma);
  // Gamma(3) is much more imbalanced than the bounded uniform.
  EXPECT_LT(uniform_stats.gini, 0.2);
  EXPECT_GT(gamma_stats.gini, uniform_stats.gini + 0.05);
  EXPECT_NEAR(uniform_stats.mean_nnz, 20.0, 1.0);
  EXPECT_NEAR(gamma_stats.mean_nnz, 20.0, 1.0);
}

TEST(RowDensityStats, ConstantRowsHaveZeroGini) {
  Coo coo(5, 8);
  for (std::uint32_t r = 0; r < 5; ++r) {
    coo.push_back(r, r % 8, 1.0f);
    coo.push_back(r, (r + 1) % 8, 1.0f);
  }
  const RowDensityStats stats = row_density_stats(Csr::from_coo(std::move(coo)));
  EXPECT_NEAR(stats.gini, 0.0, 1e-12);
  EXPECT_NEAR(stats.stddev_nnz, 0.0, 1e-12);
}

TEST(RowDensityHistogram, CountsSumToRows) {
  const Csr matrix = test::small_random_matrix(1000, 256, 15.0, 95);
  const auto histogram = row_density_histogram(matrix, 10);
  ASSERT_EQ(histogram.size(), 10u);
  EXPECT_EQ(std::accumulate(histogram.begin(), histogram.end(),
                            std::uint64_t{0}),
            matrix.rows());
  EXPECT_THROW((void)row_density_histogram(matrix, 0), std::invalid_argument);
}

TEST(RowDensityHistogram, AdversarialMatrixSpread) {
  const Csr matrix = test::adversarial_matrix(64);
  const auto histogram = row_density_histogram(matrix, 4);
  // Empty/single-entry rows in the first bucket, the long row in the
  // last.
  EXPECT_GT(histogram.front(), 0u);
  EXPECT_GT(histogram.back(), 0u);
}

}  // namespace
}  // namespace topk::sparse
