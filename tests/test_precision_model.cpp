#include "core/precision_model.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace topk::core {
namespace {

TEST(PrecisionModel, PerfectWhenKBelowPartitionBudget) {
  // With K <= k, no partition can ever hold more than k of the top-K.
  EXPECT_DOUBLE_EQ(expected_precision_closed(1'000'000, 16, 8, 8), 1.0);
  EXPECT_NEAR(expected_precision_closed(1'000'000, 32, 8, 16), 1.0, 1e-6);
}

TEST(PrecisionModel, SinglePartitionCapsAtKOverK) {
  // One partition retrieves exactly k of the K values.
  EXPECT_NEAR(expected_precision_closed(1000, 1, 8, 100), 0.08, 1e-9);
  EXPECT_NEAR(expected_precision_closed(1000, 1, 8, 8), 1.0, 1e-9);
}

TEST(PrecisionModel, MonotoneInPartitions) {
  double previous = 0.0;
  for (const int partitions : {2, 4, 8, 16, 32}) {
    const double p = expected_precision_closed(1'000'000, partitions, 8, 100);
    EXPECT_GE(p, previous);
    previous = p;
  }
  EXPECT_GT(previous, 0.99);  // 32 partitions are nearly exact
}

TEST(PrecisionModel, MonotoneInK) {
  double previous = 0.0;
  for (const int k : {1, 2, 4, 8, 16}) {
    const double p = expected_precision_closed(1'000'000, 16, k, 100);
    EXPECT_GT(p, previous);
    previous = p;
  }
}

TEST(PrecisionModel, DecreasesWithTopK) {
  double previous = 1.1;
  for (const int top_k : {8, 16, 32, 50, 75, 100, 200}) {
    const double p = expected_precision_closed(1'000'000, 16, 8, top_k);
    EXPECT_LE(p, previous + 1e-12);
    previous = p;
  }
}

struct TableICell {
  std::uint64_t rows;
  int partitions;
  int top_k;
  double paper_value;
};

class TableIPrecision : public ::testing::TestWithParam<TableICell> {};

TEST_P(TableIPrecision, ClosedFormMatchesPaper) {
  const TableICell cell = GetParam();
  const double p =
      expected_precision_closed(cell.rows, cell.partitions, 8, cell.top_k);
  EXPECT_NEAR(p, cell.paper_value, 0.01)
      << "N=" << cell.rows << " c=" << cell.partitions << " K=" << cell.top_k;
}

// Table I of the paper (k = 8); the sub-0.001 cells are listed as 1 /
// 0.999 there.
INSTANTIATE_TEST_SUITE_P(
    PaperValues, TableIPrecision,
    ::testing::Values(TableICell{1'000'000, 16, 8, 1.0},
                      TableICell{1'000'000, 16, 16, 1.0},
                      TableICell{1'000'000, 16, 32, 0.999},
                      TableICell{1'000'000, 16, 50, 0.998},
                      TableICell{1'000'000, 16, 75, 0.983},
                      TableICell{1'000'000, 16, 100, 0.942},
                      TableICell{1'000'000, 28, 100, 0.996},
                      TableICell{1'000'000, 32, 50, 0.999},
                      TableICell{1'000'000, 32, 100, 0.997},
                      TableICell{10'000'000, 16, 75, 0.986},
                      TableICell{10'000'000, 16, 100, 0.947},
                      TableICell{10'000'000, 28, 100, 0.995},
                      TableICell{10'000'000, 32, 100, 0.998}));

TEST(PrecisionModel, MonteCarloAgreesWithClosedForm) {
  util::Xoshiro256 rng(2024);
  for (const int partitions : {8, 16, 32}) {
    for (const int top_k : {16, 50, 100}) {
      const double closed =
          expected_precision_closed(1'000'000, partitions, 8, top_k);
      const double mc = expected_precision_mc(1'000'000, partitions, 8, top_k,
                                              20'000, rng);
      EXPECT_NEAR(mc, closed, 0.005)
          << "c=" << partitions << " K=" << top_k;
    }
  }
}

TEST(PrecisionModel, MonteCarloHandlesUnevenPartitions) {
  // 1e6 rows over 28 partitions: 35714/35715-row partitions.
  util::Xoshiro256 rng(11);
  const double closed = expected_precision_closed(1'000'000, 28, 8, 100);
  const double mc = expected_precision_mc(1'000'000, 28, 8, 100, 20'000, rng);
  EXPECT_NEAR(mc, closed, 0.005);
}

TEST(PrecisionModel, AveragedFormIsAtLeastFinalForm) {
  // Averaging over prefixes K_i <= K can only improve the estimate
  // (precision decreases with K).
  const double final_form = expected_precision_closed(1'000'000, 16, 8, 100);
  const double averaged = expected_precision_averaged(1'000'000, 16, 8, 100);
  EXPECT_GE(averaged, final_form);
  EXPECT_LE(averaged, 1.0);
}

TEST(PrecisionModel, ValidatesArguments) {
  util::Xoshiro256 rng(1);
  EXPECT_THROW((void)expected_precision_closed(0, 1, 8, 8),
               std::invalid_argument);
  EXPECT_THROW((void)expected_precision_closed(100, 0, 8, 8),
               std::invalid_argument);
  EXPECT_THROW((void)expected_precision_closed(100, 101, 8, 8),
               std::invalid_argument);
  EXPECT_THROW((void)expected_precision_closed(100, 4, 0, 8),
               std::invalid_argument);
  EXPECT_THROW((void)expected_precision_closed(100, 4, 8, 0),
               std::invalid_argument);
  EXPECT_THROW((void)expected_precision_mc(100, 4, 8, 8, 0, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace topk::core
