#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace topk::util {
namespace {

TEST(TablePrinter, RendersAlignedColumns) {
  TablePrinter table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "12345"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 12345 |"), std::string::npos);
}

TEST(TablePrinter, SeparatorRows) {
  TablePrinter table({"a"});
  table.add_row({"1"});
  table.add_separator();
  table.add_row({"2"});
  const std::string out = table.to_string();
  // header top + header bottom + mid separator + final = 4 rules
  std::size_t rules = 0;
  for (std::size_t pos = out.find("+--"); pos != std::string::npos;
       pos = out.find("+--", pos + 1)) {
    ++rules;
  }
  EXPECT_EQ(rules, 4u);
}

TEST(TablePrinter, RejectsMismatchedRow) {
  TablePrinter table({"a", "b"});
  EXPECT_THROW(table.add_row({"only one"}), std::invalid_argument);
  EXPECT_THROW(TablePrinter({}), std::invalid_argument);
}

TEST(TablePrinter, PrintWritesToStream) {
  TablePrinter table({"x"});
  table.add_row({"y"});
  std::ostringstream os;
  table.print(os);
  EXPECT_EQ(os.str(), table.to_string());
  EXPECT_EQ(table.row_count(), 1u);
}

TEST(FormatDouble, RespectsDigits) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
  EXPECT_EQ(format_double(-1.005, 1), "-1.0");
}

TEST(FormatSpeedup, MatchesPaperStyle) {
  EXPECT_EQ(format_speedup(106.4), "106x");
  EXPECT_EQ(format_speedup(2.04), "2.0x");
  EXPECT_EQ(format_speedup(9.96), "10x");
}

TEST(FormatBytes, PicksUnits) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(1.7e9), "1.70 GB");
  EXPECT_EQ(format_bytes(412e6), "412 MB");
}

}  // namespace
}  // namespace topk::util
