#include "eval/ranking.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace topk::eval {
namespace {

TEST(PrecisionAtK, ExactAndPartialOverlap) {
  const std::vector<std::uint32_t> relevant{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(
      precision_at_k(std::vector<std::uint32_t>{4, 3, 2, 1}, relevant), 1.0);
  EXPECT_DOUBLE_EQ(
      precision_at_k(std::vector<std::uint32_t>{1, 2, 9, 8}, relevant), 0.5);
  EXPECT_DOUBLE_EQ(
      precision_at_k(std::vector<std::uint32_t>{7, 8, 9, 10}, relevant), 0.0);
}

TEST(PrecisionAtK, OrderInsensitive) {
  const std::vector<std::uint32_t> relevant{1, 2, 3};
  EXPECT_DOUBLE_EQ(
      precision_at_k(std::vector<std::uint32_t>{3, 1, 2}, relevant),
      precision_at_k(std::vector<std::uint32_t>{1, 2, 3}, relevant));
}

TEST(PrecisionAtK, EmptyRelevantThrows) {
  EXPECT_THROW(
      (void)precision_at_k(std::vector<std::uint32_t>{1}, {}),
      std::invalid_argument);
}

TEST(KendallTau, PerfectAgreement) {
  const std::vector<std::uint32_t> a{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(kendall_tau(a, a), 1.0);
}

TEST(KendallTau, PerfectDisagreement) {
  const std::vector<std::uint32_t> forward{1, 2, 3, 4};
  const std::vector<std::uint32_t> reverse{4, 3, 2, 1};
  EXPECT_DOUBLE_EQ(kendall_tau(forward, reverse), -1.0);
}

TEST(KendallTau, SingleSwap) {
  // One adjacent transposition in 4 items: 5 concordant, 1 discordant
  // -> tau = 4/6.
  const std::vector<std::uint32_t> reference{1, 2, 3, 4};
  const std::vector<std::uint32_t> swapped{2, 1, 3, 4};
  EXPECT_NEAR(kendall_tau(swapped, reference), 4.0 / 6.0, 1e-12);
}

TEST(KendallTau, RestrictsToCommonItems) {
  // Only items 1 and 3 are shared; they appear in the same order.
  const std::vector<std::uint32_t> retrieved{1, 9, 3, 8};
  const std::vector<std::uint32_t> reference{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(kendall_tau(retrieved, reference), 1.0);
}

TEST(KendallTau, FewCommonItemsAgreeTrivially) {
  EXPECT_DOUBLE_EQ(kendall_tau(std::vector<std::uint32_t>{1},
                               std::vector<std::uint32_t>{2}),
                   1.0);
}

TEST(KendallTau, RejectsDuplicates) {
  const std::vector<std::uint32_t> dup{1, 1};
  const std::vector<std::uint32_t> ok{1, 2};
  EXPECT_THROW((void)kendall_tau(dup, ok), std::invalid_argument);
  EXPECT_THROW((void)kendall_tau(ok, dup), std::invalid_argument);
}

TEST(Ndcg, PerfectOrderIsOne) {
  const std::vector<double> gains{3.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(ndcg(gains, gains), 1.0);
}

TEST(Ndcg, HandComputedExample) {
  // Retrieved gains (2, 3, 1) against ideal (3, 2, 1):
  // DCG  = 2 + 3/log2(3) + 1/2 = 2.5 + 3/1.58496
  // IDCG = 3 + 2/log2(3) + 1/2
  const std::vector<double> retrieved{2.0, 3.0, 1.0};
  const std::vector<double> ideal{3.0, 2.0, 1.0};
  const double dcg = 2.0 + 3.0 / std::log2(3.0) + 1.0 / 2.0;
  const double idcg = 3.0 + 2.0 / std::log2(3.0) + 1.0 / 2.0;
  EXPECT_NEAR(ndcg(retrieved, ideal), dcg / idcg, 1e-12);
}

TEST(Ndcg, MissingTailLowersScore) {
  const std::vector<double> ideal{3.0, 2.0, 1.0};
  const std::vector<double> truncated{3.0, 2.0};
  EXPECT_LT(ndcg(truncated, ideal), 1.0);
  EXPECT_GT(ndcg(truncated, ideal), 0.8);
}

TEST(Ndcg, ZeroIdealIsOneAndLongRetrievedThrows) {
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_DOUBLE_EQ(ndcg(zeros, zeros), 1.0);
  const std::vector<double> longer{1.0, 2.0, 3.0};
  EXPECT_THROW((void)ndcg(longer, zeros), std::invalid_argument);
}

TEST(EvaluateTopK, CombinesAllThreeMetrics) {
  // Exact top-3: rows 10 (0.9), 11 (0.8), 12 (0.7).  Retrieved has 10
  // and 12 in order plus an outsider 99 whose true score is 0.5.
  const std::vector<core::TopKEntry> exact{{10, 0.9}, {11, 0.8}, {12, 0.7}};
  const std::vector<core::TopKEntry> retrieved{{10, 0.9}, {12, 0.69}, {99, 0.55}};
  const auto score = [](std::uint32_t row) {
    switch (row) {
      case 10: return 0.9;
      case 11: return 0.8;
      case 12: return 0.7;
      case 99: return 0.5;
      default: return 0.0;
    }
  };
  const TopKQuality quality = evaluate_topk(retrieved, exact, score);
  EXPECT_NEAR(quality.precision, 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(quality.kendall_tau, 1.0);  // common items in order
  const double dcg = 0.9 + 0.7 / std::log2(3.0) + 0.5 / 2.0;
  const double idcg = 0.9 + 0.8 / std::log2(3.0) + 0.7 / 2.0;
  EXPECT_NEAR(quality.ndcg, dcg / idcg, 1e-12);
}

TEST(EvaluateTopK, PerfectRetrievalScoresOnes) {
  const std::vector<core::TopKEntry> exact{{1, 0.5}, {2, 0.4}, {3, 0.3}};
  const TopKQuality quality = evaluate_topk(
      exact, exact, [&](std::uint32_t row) { return 0.6 - 0.1 * row; });
  EXPECT_DOUBLE_EQ(quality.precision, 1.0);
  EXPECT_DOUBLE_EQ(quality.kendall_tau, 1.0);
  EXPECT_NEAR(quality.ndcg, 1.0, 1e-12);
}

}  // namespace
}  // namespace topk::eval
