#include "roofline/roofline.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace topk::roofline {
namespace {

using core::DesignConfig;
using core::PacketLayout;

TEST(Attainable, BandwidthAndComputeRegimes) {
  const Ceiling ceiling{"test", 100.0, 50.0};
  EXPECT_DOUBLE_EQ(attainable(ceiling, 0.1), 10.0);  // bandwidth-bound
  EXPECT_DOUBLE_EQ(attainable(ceiling, 10.0), 50.0);  // compute-bound
  EXPECT_DOUBLE_EQ(attainable(ceiling, 0.5), 50.0);  // exactly at ridge
}

TEST(Attainable, ZeroPeakMeansBandwidthOnly) {
  const Ceiling ceiling{"bw", 100.0, 0.0};
  EXPECT_DOUBLE_EQ(attainable(ceiling, 100.0), 10000.0);
}

TEST(Attainable, Validates) {
  EXPECT_THROW((void)attainable(Ceiling{"bad", 0.0, 1.0}, 1.0),
               std::invalid_argument);
  EXPECT_THROW((void)attainable(Ceiling{"bad", 1.0, 1.0}, -1.0),
               std::invalid_argument);
}

TEST(CeilingSeries, LogSpacedAndMonotone) {
  const Ceiling ceiling{"test", 1e9, 1e10};
  const auto series = ceiling_series(ceiling, 0.01, 10.0, 31);
  ASSERT_EQ(series.size(), 31u);
  EXPECT_NEAR(series.front().operational_intensity, 0.01, 1e-9);
  EXPECT_NEAR(series.back().operational_intensity, 10.0, 1e-6);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GT(series[i].operational_intensity,
              series[i - 1].operational_intensity);
    EXPECT_GE(series[i].performance, series[i - 1].performance);
  }
}

TEST(CeilingSeries, Validates) {
  const Ceiling ceiling{"test", 1e9, 0.0};
  EXPECT_THROW((void)ceiling_series(ceiling, 0.0, 1.0, 10),
               std::invalid_argument);
  EXPECT_THROW((void)ceiling_series(ceiling, 1.0, 0.5, 10),
               std::invalid_argument);
  EXPECT_THROW((void)ceiling_series(ceiling, 0.1, 1.0, 1),
               std::invalid_argument);
}

TEST(FpgaCeiling, MatchesFigure6aLabels) {
  // Figure 6a annotates: 1 core 13.2 GB/s, 8 cores 105.6, 16 cores
  // 211.2, 32 cores 422.4.
  const DesignConfig design = DesignConfig::fixed(20);
  const PacketLayout layout = PacketLayout::solve(1024, 20);
  const hbmsim::HbmConfig hbm = hbmsim::alveo_u280();
  EXPECT_NEAR(fpga_ceiling(design, layout, hbm, 1).bandwidth_bytes_per_s,
              13.2e9, 1e6);
  EXPECT_NEAR(fpga_ceiling(design, layout, hbm, 8).bandwidth_bytes_per_s,
              105.6e9, 1e6);
  EXPECT_NEAR(fpga_ceiling(design, layout, hbm, 16).bandwidth_bytes_per_s,
              211.2e9, 1e6);
  EXPECT_NEAR(fpga_ceiling(design, layout, hbm, 32).bandwidth_bytes_per_s,
              422.4e9, 1e6);
  EXPECT_THROW((void)fpga_ceiling(design, layout, hbm, 0),
               std::invalid_argument);
  EXPECT_THROW((void)fpga_ceiling(design, layout, hbm, 33),
               std::invalid_argument);
}

TEST(FpgaCeiling, ComputePeakIsCoresTimesBTimesClock) {
  const DesignConfig design = DesignConfig::fixed(20);
  const PacketLayout layout = PacketLayout::solve(1024, 20);
  const auto ceiling =
      fpga_ceiling(design, layout, hbmsim::alveo_u280(), 32);
  EXPECT_NEAR(ceiling.compute_peak, 32.0 * 15.0 * 253e6, 1e3);
}

TEST(Intensity, BsCsrVersusCooMatchesFigure6a) {
  // BS-CSR at V=20 (B=15) triples the naive COO intensity (B=5 per
  // 64-byte packet): the "B=5 -> B=15" arrow of Figure 6a.
  const PacketLayout layout = PacketLayout::solve(1024, 20);
  EXPECT_NEAR(bscsr_intensity(layout) / coo_intensity(), 2.8125, 1e-9);
  EXPECT_NEAR(coo_intensity(), 5.0 / 60.0, 1e-9);
  EXPECT_NEAR(bscsr_intensity(layout), 15.0 / 64.0, 1e-12);
}

TEST(Intensity, GpuBytesPerNnz) {
  EXPECT_NEAR(gpu_intensity(false), 0.125, 1e-12);
  EXPECT_NEAR(gpu_intensity(true), 1.0 / 6.0, 1e-12);
  EXPECT_GT(gpu_intensity(true), gpu_intensity(false));
}

TEST(Roofline, FpgaBeatsGpuDespiteLowerBandwidth) {
  // The paper's headline roofline argument (Figure 6b): despite ~20%
  // less bandwidth than the P100 (549 GB/s), the FPGA's higher
  // operational intensity yields higher attainable performance.
  const DesignConfig design = DesignConfig::fixed(20);
  const PacketLayout layout = PacketLayout::solve(1024, 20);
  const auto fpga = fpga_ceiling(design, layout, hbmsim::alveo_u280(), 32);
  const Ceiling gpu{"P100", 549e9, 0.0};

  const double fpga_perf = attainable(fpga, bscsr_intensity(layout));
  const double gpu_perf = attainable(gpu, gpu_intensity(false));
  EXPECT_LT(fpga.bandwidth_bytes_per_s, gpu.bandwidth_bytes_per_s);
  EXPECT_GT(fpga_perf, gpu_perf);
}

}  // namespace
}  // namespace topk::roofline
