#include "sparse/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "test_helpers.hpp"

namespace topk::sparse {
namespace {

class SparseIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "topk_io_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(SparseIoTest, BinaryRoundTrip) {
  const Csr matrix = test::small_random_matrix(200, 128, 12.0, 3);
  const auto path = dir_ / "matrix.bin";
  save_binary(matrix, path);
  const Csr loaded = load_binary(path);
  EXPECT_EQ(loaded.rows(), matrix.rows());
  EXPECT_EQ(loaded.cols(), matrix.cols());
  EXPECT_EQ(loaded.row_ptr(), matrix.row_ptr());
  EXPECT_EQ(loaded.col_idx(), matrix.col_idx());
  EXPECT_EQ(loaded.values(), matrix.values());
}

TEST_F(SparseIoTest, BinaryRejectsBadMagic) {
  const auto path = dir_ / "garbage.bin";
  std::ofstream(path) << "not a matrix at all, definitely";
  EXPECT_THROW((void)load_binary(path), std::runtime_error);
}

TEST_F(SparseIoTest, BinaryRejectsTruncated) {
  const Csr matrix = test::small_random_matrix(50, 32, 6.0, 4);
  std::ostringstream os;
  save_binary(matrix, os);
  const std::string full = os.str();
  std::istringstream is(full.substr(0, full.size() / 2));
  EXPECT_THROW((void)load_binary(is), std::runtime_error);
}

TEST_F(SparseIoTest, MissingFileThrows) {
  EXPECT_THROW((void)load_binary(dir_ / "nope.bin"), std::runtime_error);
  EXPECT_THROW((void)load_matrix_market(dir_ / "nope.mtx"), std::runtime_error);
}

TEST_F(SparseIoTest, MatrixMarketRoundTrip) {
  const Csr matrix = test::small_random_matrix(60, 40, 5.0, 8);
  const auto path = dir_ / "matrix.mtx";
  save_matrix_market(matrix, path);
  const Csr loaded = load_matrix_market(path);
  EXPECT_EQ(loaded.rows(), matrix.rows());
  EXPECT_EQ(loaded.cols(), matrix.cols());
  EXPECT_EQ(loaded.row_ptr(), matrix.row_ptr());
  EXPECT_EQ(loaded.col_idx(), matrix.col_idx());
  for (std::size_t i = 0; i < matrix.nnz(); ++i) {
    EXPECT_NEAR(loaded.values()[i], matrix.values()[i], 1e-6f);
  }
}

TEST_F(SparseIoTest, MatrixMarketSkipsComments) {
  const auto path = dir_ / "comments.mtx";
  std::ofstream os(path);
  os << "%%MatrixMarket matrix coordinate real general\n";
  os << "% a comment line\n";
  os << "% another\n";
  os << "2 2 2\n";
  os << "1 1 1.5\n";
  os << "2 2 2.5\n";
  os.close();
  const Csr loaded = load_matrix_market(path);
  EXPECT_EQ(loaded.rows(), 2u);
  EXPECT_EQ(loaded.nnz(), 2u);
  EXPECT_FLOAT_EQ(loaded.row_values(0)[0], 1.5f);
}

TEST_F(SparseIoTest, MatrixMarketRejectsMalformed) {
  const auto bad_header = dir_ / "bad1.mtx";
  std::ofstream(bad_header) << "hello world\n1 1 0\n";
  EXPECT_THROW((void)load_matrix_market(bad_header), std::runtime_error);

  const auto bad_entry = dir_ / "bad2.mtx";
  std::ofstream(bad_entry) << "%%MatrixMarket matrix coordinate real general\n"
                           << "2 2 1\n"
                           << "3 1 1.0\n";  // row index out of range
  EXPECT_THROW((void)load_matrix_market(bad_entry), std::runtime_error);

  const auto bad_size = dir_ / "bad3.mtx";
  std::ofstream(bad_size) << "%%MatrixMarket matrix coordinate real general\n"
                          << "0 0 0\n";
  EXPECT_THROW((void)load_matrix_market(bad_size), std::runtime_error);
}

}  // namespace
}  // namespace topk::sparse
