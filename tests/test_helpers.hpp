// Shared fixtures and reference implementations for the test suite.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/design.hpp"
#include "core/topk_spmv.hpp"
#include "fixed/fixed_point.hpp"
#include "index/backends.hpp"
#include "shard/sharded_index.hpp"
#include "sparse/csr.hpp"
#include "sparse/generator.hpp"
#include "util/rng.hpp"

namespace topk::test {

/// Fixture owning a unique scratch directory under the system temp
/// path, created fresh per test and removed on teardown — the one
/// temp-file idiom for every I/O and persistence test (bscsr_io,
/// deployments).
class TempDirFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = std::filesystem::temp_directory_path() /
           (std::string("topk_") + info->test_suite_name() + "_" + info->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] const std::filesystem::path& dir() const noexcept {
    return dir_;
  }

 private:
  std::filesystem::path dir_;
};

/// XORs one byte of a file in place — the minimal on-disk corruption
/// (a digest check must catch it).
inline void flip_byte(const std::filesystem::path& path, std::uint64_t offset) {
  std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(file) << "cannot open " << path;
  file.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  file.read(&byte, 1);
  ASSERT_TRUE(file) << "offset " << offset << " past end of " << path;
  byte = static_cast<char>(byte ^ 0x01);
  file.seekp(static_cast<std::streamoff>(offset));
  file.write(&byte, 1);
  ASSERT_TRUE(file);
}

/// Truncates a file to its first `keep_bytes` bytes.
inline void truncate_file(const std::filesystem::path& path,
                          std::uint64_t keep_bytes) {
  std::filesystem::resize_file(path, keep_bytes);
}

/// Reads a whole file into a string (binary).
inline std::string read_file(const std::filesystem::path& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is) << "cannot open " << path;
  return {std::istreambuf_iterator<char>(is), std::istreambuf_iterator<char>()};
}

/// Writes a string to a file (binary), replacing it.
inline void write_file(const std::filesystem::path& path,
                       const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(os) << "cannot open " << path;
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(os);
}

/// Builds the standard test deployment source: a ShardedIndex over a
/// small deterministic matrix, with uniform or per-shard-overridden
/// inner backends — the cold half of every save/load round-trip test.
inline std::shared_ptr<shard::ShardedIndex> build_test_sharded(
    std::shared_ptr<const sparse::Csr> matrix, int shards,
    const std::string& inner_backend,
    const index::IndexOptions& options = {},
    const std::vector<std::pair<int, std::string>>& overrides = {}) {
  shard::ShardedIndexBuilder builder;
  builder.matrix(std::move(matrix))
      .shards(shards)
      .inner_backend(inner_backend)
      .inner_options(options);
  for (const auto& [shard, name] : overrides) {
    builder.shard_backend(shard, name);
  }
  return builder.build();
}

/// Per-row scores computed with the same arithmetic as the streaming
/// kernel, but directly from CSR — the bit-exact oracle the kernel
/// must reproduce.  For kFixed, products/accumulation replicate the
/// Q24.40 datapath; for kFloat32, float accumulation in column order
/// (the kernel's packet-stream order within a row equals column
/// order, so sums associate identically).
inline std::vector<double> reference_scores(const sparse::Csr& matrix,
                                            std::span<const float> x,
                                            core::ValueKind kind,
                                            int value_bits) {
  std::vector<double> scores(matrix.rows(), 0.0);
  if (kind == core::ValueKind::kFloat32) {
    for (std::uint32_t r = 0; r < matrix.rows(); ++r) {
      const auto cols = matrix.row_cols(r);
      const auto vals = matrix.row_values(r);
      float acc = 0.0f;
      for (std::size_t i = 0; i < cols.size(); ++i) {
        acc += vals[i] * x[cols[i]];
      }
      scores[r] = static_cast<double>(acc);
    }
    return scores;
  }
  const fixed::FixedFormat val_format{value_bits, 1};
  const fixed::FixedFormat vec_format{32, 1};
  if (kind == core::ValueKind::kSignedFixed) {
    for (std::uint32_t r = 0; r < matrix.rows(); ++r) {
      const auto cols = matrix.row_cols(r);
      const auto vals = matrix.row_values(r);
      std::int64_t acc = 0;
      for (std::size_t i = 0; i < cols.size(); ++i) {
        const std::int64_t val_raw = fixed::sign_extend(
            fixed::quantize_signed(static_cast<double>(vals[i]), val_format),
            val_format.total_bits);
        const std::int64_t vec_raw = fixed::sign_extend(
            fixed::quantize_signed(static_cast<double>(x[cols[i]]), vec_format),
            32);
        const int shift =
            val_format.frac_bits() + fixed::kVectorFracBits - fixed::kAccFracBits;
        const std::int64_t product = val_raw * vec_raw;
        acc += shift >= 0 ? (product >> shift) : (product << -shift);
      }
      scores[r] = std::ldexp(static_cast<double>(acc), -fixed::kAccFracBits);
    }
    return scores;
  }
  for (std::uint32_t r = 0; r < matrix.rows(); ++r) {
    const auto cols = matrix.row_cols(r);
    const auto vals = matrix.row_values(r);
    fixed::FixedAccumulator acc;
    for (std::size_t i = 0; i < cols.size(); ++i) {
      const std::uint32_t val_raw =
          fixed::quantize(static_cast<double>(vals[i]), val_format);
      const std::uint32_t vec_raw =
          fixed::quantize(static_cast<double>(x[cols[i]]), vec_format);
      acc.add_product(val_raw, val_format.frac_bits(), vec_raw);
    }
    scores[r] = acc.to_double();
  }
  return scores;
}

/// A small matrix with signed values (components in [-1, 1]),
/// L2-normalised rows — the kSignedFixed extension's target workload.
inline sparse::Csr small_signed_matrix(std::uint32_t rows, std::uint32_t cols,
                                       double mean_nnz, std::uint64_t seed) {
  sparse::GeneratorConfig config;
  config.rows = rows;
  config.cols = cols;
  config.mean_nnz_per_row = mean_nnz;
  config.seed = seed;
  config.l2_normalize = false;
  const sparse::Csr unsigned_matrix = sparse::generate_matrix(config);

  // Flip the sign of roughly half the entries, then normalise.
  util::Xoshiro256 rng(seed * 2654435761u + 17);
  sparse::Coo coo(rows, cols);
  for (std::uint32_t r = 0; r < unsigned_matrix.rows(); ++r) {
    const auto row_cols = unsigned_matrix.row_cols(r);
    const auto row_vals = unsigned_matrix.row_values(r);
    for (std::size_t i = 0; i < row_cols.size(); ++i) {
      const float sign = (rng() & 1) ? 1.0f : -1.0f;
      coo.push_back(r, row_cols[i], sign * row_vals[i]);
    }
  }
  sparse::Csr matrix = sparse::Csr::from_coo(std::move(coo));
  matrix.l2_normalize_rows();
  return matrix;
}

/// A signed dense query vector (components in [-1, 1], unit norm).
inline std::vector<float> signed_query(std::uint32_t cols, util::Xoshiro256& rng) {
  std::vector<float> x(cols);
  double norm_sq = 0.0;
  for (auto& v : x) {
    v = static_cast<float>(rng.uniform(-1.0, 1.0));
    norm_sq += static_cast<double>(v) * v;
  }
  const auto inv = static_cast<float>(1.0 / std::sqrt(norm_sq));
  for (auto& v : x) {
    v *= inv;
  }
  return x;
}

/// The top-k values of a score vector, descending (ties keep both).
inline std::vector<double> topk_values(std::span<const double> scores, int k) {
  std::vector<double> sorted(scores.begin(), scores.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  sorted.resize(std::min<std::size_t>(static_cast<std::size_t>(k), sorted.size()));
  return sorted;
}

/// Asserts that `entries` is exactly the top-k of `scores`:
/// descending order, each entry's value matches its row's reference
/// score bit-for-bit, and the value multiset equals the reference
/// top-k multiset (robust to tie-order permutations).
inline void expect_exact_topk(std::span<const core::TopKEntry> entries,
                              std::span<const double> scores, int k) {
  ASSERT_EQ(entries.size(),
            std::min<std::size_t>(static_cast<std::size_t>(k), scores.size()));
  for (std::size_t i = 1; i < entries.size(); ++i) {
    EXPECT_GE(entries[i - 1].value, entries[i].value) << "not descending at " << i;
  }
  std::vector<double> got;
  for (const core::TopKEntry& entry : entries) {
    ASSERT_LT(entry.index, scores.size());
    EXPECT_EQ(entry.value, scores[entry.index])
        << "score mismatch for row " << entry.index;
    got.push_back(entry.value);
  }
  const std::vector<double> expected = topk_values(scores, k);
  std::vector<double> got_sorted = got;
  std::sort(got_sorted.begin(), got_sorted.end(), std::greater<>());
  EXPECT_EQ(got_sorted, expected);
}

/// SimilarityIndex decorator whose query() always throws, forwarding
/// all metadata to the wrapped index — the fault-injection probe for
/// replica-failover tests (a "replica device" that is down but still
/// describes itself correctly).
class ThrowingIndex final : public index::SimilarityIndex {
 public:
  explicit ThrowingIndex(std::shared_ptr<const index::SimilarityIndex> inner,
                         std::string message = "injected replica fault")
      : inner_(std::move(inner)), message_(std::move(message)) {}

  [[nodiscard]] index::QueryResult query(
      std::span<const float> /*x*/, int /*top_k*/,
      const index::QueryOptions& /*options*/ = {}) const override {
    calls_.fetch_add(1, std::memory_order_relaxed);
    throw std::runtime_error(message_);
  }
  [[nodiscard]] std::uint32_t rows() const noexcept override {
    return inner_->rows();
  }
  [[nodiscard]] std::uint32_t cols() const noexcept override {
    return inner_->cols();
  }
  [[nodiscard]] index::IndexDescription describe() const override {
    return inner_->describe();
  }
  [[nodiscard]] int max_top_k() const noexcept override {
    return inner_->max_top_k();
  }

  /// Calls absorbed (each one threw).
  [[nodiscard]] std::uint64_t calls() const noexcept {
    return calls_.load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<const index::SimilarityIndex> inner_;
  std::string message_;
  mutable std::atomic<std::uint64_t> calls_{0};
};

/// Small deterministic random CSR for unit tests.
inline sparse::Csr small_random_matrix(std::uint32_t rows, std::uint32_t cols,
                                       double mean_nnz, std::uint64_t seed,
                                       sparse::RowDistribution dist =
                                           sparse::RowDistribution::kUniform) {
  sparse::GeneratorConfig config;
  config.rows = rows;
  config.cols = cols;
  config.mean_nnz_per_row = mean_nnz;
  config.distribution = dist;
  config.seed = seed;
  return sparse::generate_matrix(config);
}

/// A matrix with deliberately pathological structure: empty rows,
/// single-entry rows, and one long row spanning many packets.
inline sparse::Csr adversarial_matrix(std::uint32_t cols) {
  // Row 0: empty.  Row 1: one entry.  Row 2: long row (3 * cols / 4
  // entries).  Rows 3..12: single entries.  Row 13: empty.
  std::vector<std::uint64_t> row_ptr{0};
  std::vector<std::uint32_t> col_idx;
  std::vector<float> values;
  util::Xoshiro256 rng(123);

  const auto add_row = [&](std::uint32_t nnz) {
    for (std::uint32_t i = 0; i < nnz; ++i) {
      col_idx.push_back((i * 7 + 3) % cols);
      values.push_back(static_cast<float>(rng.uniform(0.05, 1.0)));
    }
    row_ptr.push_back(col_idx.size());
  };

  add_row(0);
  add_row(1);
  add_row(cols * 3 / 4);
  for (int i = 0; i < 10; ++i) {
    add_row(1);
  }
  add_row(0);

  // Column indices within a row must be sorted and unique for CSR
  // canonical form; rebuild each row accordingly.
  sparse::Coo coo(static_cast<std::uint32_t>(row_ptr.size() - 1), cols);
  for (std::uint32_t r = 0; r + 1 < row_ptr.size(); ++r) {
    std::vector<std::pair<std::uint32_t, float>> row;
    for (std::uint64_t i = row_ptr[r]; i < row_ptr[r + 1]; ++i) {
      row.emplace_back(col_idx[i], values[i]);
    }
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end(),
                          [](const auto& a, const auto& b) {
                            return a.first == b.first;
                          }),
              row.end());
    for (const auto& [c, v] : row) {
      coo.push_back(r, c, v);
    }
  }
  return sparse::Csr::from_coo(std::move(coo));
}

}  // namespace topk::test
