#include "hbmsim/power_model.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace topk::hbmsim {
namespace {

using core::DesignConfig;
using core::PacketLayout;

TEST(PowerModel, PaperFigures) {
  const PacketLayout layout20 = PacketLayout::solve(1024, 20);
  const PowerProfile fpga = fpga_power(DesignConfig::fixed(20), layout20);
  EXPECT_NEAR(fpga.device_w, 34.0, 1e-9);  // Table II
  EXPECT_NEAR(fpga.host_w, 40.0, 1e-9);
  EXPECT_NEAR(fpga.total_w(), 74.0, 1e-9);

  EXPECT_NEAR(cpu_power().total_w(), 300.0, 1e-9);
  EXPECT_NEAR(gpu_power().device_w, 250.0, 1e-9);
  EXPECT_NEAR(gpu_power().total_w(), 290.0, 1e-9);
}

TEST(PowerModel, FloatDesignDrawsMore) {
  const PacketLayout layout = PacketLayout::solve(1024, 32);
  const PowerProfile fixed = fpga_power(DesignConfig::fixed(32), layout);
  const PowerProfile fl = fpga_power(DesignConfig::float32(), layout);
  EXPECT_GT(fl.device_w, fixed.device_w);
}

TEST(PowerModel, PerformancePerWatt) {
  const PowerProfile profile{35.0, 40.0};
  EXPECT_NEAR(performance_per_watt(350.0, profile, false), 10.0, 1e-12);
  EXPECT_NEAR(performance_per_watt(750.0, profile, true), 10.0, 1e-12);
  EXPECT_THROW((void)performance_per_watt(1.0, PowerProfile{0.0, 0.0}, false),
               std::invalid_argument);
}

TEST(PowerModel, ReproducesPaperEfficiencyClaims) {
  // Section V-B: the fixed-point FPGA has ~14.2x the idealised GPU's
  // performance/W (board-only) and ~7.7x with equal hosts; vs the CPU
  // the claim is ~400x at a 100x speedup.
  const PacketLayout layout = PacketLayout::solve(1024, 20);
  const PowerProfile fpga = fpga_power(DesignConfig::fixed(20), layout);
  const PowerProfile gpu = gpu_power();
  const PowerProfile cpu = cpu_power();

  // Normalise CPU throughput to 1; paper speedups: FPGA ~100x, GPU ~2x
  // slower than FPGA.
  const double fpga_perf = 100.0;
  const double gpu_perf = 50.0;
  const double cpu_perf = 1.0;

  const double vs_gpu_board =
      performance_per_watt(fpga_perf, fpga, false) /
      performance_per_watt(gpu_perf, gpu, false);
  EXPECT_NEAR(vs_gpu_board, 14.7, 1.0);  // paper: 14.2x

  const double vs_gpu_system =
      performance_per_watt(fpga_perf, fpga, true) /
      performance_per_watt(gpu_perf, gpu, true);
  EXPECT_NEAR(vs_gpu_system, 7.8, 0.8);  // paper: 7.7x

  const double vs_cpu_system =
      performance_per_watt(fpga_perf, fpga, true) /
      performance_per_watt(cpu_perf, cpu, true);
  EXPECT_NEAR(vs_cpu_system, 405.0, 30.0);  // paper: ~400x
}

}  // namespace
}  // namespace topk::hbmsim
