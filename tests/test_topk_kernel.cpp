#include "core/topk_spmv.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/packet_layout.hpp"
#include "test_helpers.hpp"

namespace topk::core {
namespace {

TEST(TopKScratchpad, FillsThenReplacesArgmin) {
  TopKScratchpad pad(3);
  pad.insert(0, 0.5);
  pad.insert(1, 0.2);
  pad.insert(2, 0.8);
  EXPECT_DOUBLE_EQ(pad.worst(), 0.2);
  pad.insert(3, 0.3);  // evicts 0.2
  EXPECT_DOUBLE_EQ(pad.worst(), 0.3);
  pad.insert(4, 0.1);  // below worst: ignored
  EXPECT_DOUBLE_EQ(pad.worst(), 0.3);

  const auto sorted = pad.sorted_descending();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].index, 2u);
  EXPECT_EQ(sorted[1].index, 0u);
  EXPECT_EQ(sorted[2].index, 3u);
}

TEST(TopKScratchpad, TieReplacesIncumbent) {
  // The hardware's >= comparison lets an equal-valued later row evict
  // the current argmin.
  TopKScratchpad pad(2);
  pad.insert(0, 0.5);
  pad.insert(1, 0.5);
  pad.insert(2, 0.5);
  const auto sorted = pad.sorted_descending();
  ASSERT_EQ(sorted.size(), 2u);
  // Row 2 replaced one incumbent.
  EXPECT_TRUE(sorted[0].index == 2 || sorted[1].index == 2);
}

TEST(TopKScratchpad, PartialFillAndValidation) {
  TopKScratchpad pad(8);
  pad.insert(0, 0.1);
  pad.insert(1, 0.7);
  EXPECT_EQ(pad.size(), 2u);
  EXPECT_DOUBLE_EQ(pad.worst(), 0.1);
  EXPECT_EQ(pad.sorted_descending().size(), 2u);
  EXPECT_THROW(TopKScratchpad(0), std::invalid_argument);
  EXPECT_THROW(TopKScratchpad(-1), std::invalid_argument);
}

TEST(QuantizeVector, ProducesQ131Raws) {
  const std::vector<float> x{0.0f, 0.5f, 1.0f};
  const auto raws = quantize_vector(x);
  ASSERT_EQ(raws.size(), 3u);
  EXPECT_EQ(raws[0], 0u);
  EXPECT_EQ(raws[1], 1u << 30);
  EXPECT_EQ(raws[2], 1u << 31);
}

TEST(Kernel, RejectsBadArguments) {
  const sparse::Csr matrix = test::small_random_matrix(20, 64, 4.0, 11);
  const auto encoded = encode_bscsr(matrix, PacketLayout::solve(64, 20),
                                    ValueKind::kFixed);
  const std::vector<float> x(64, 0.1f);
  const std::vector<float> wrong(32, 0.1f);
  EXPECT_THROW((void)run_topk_spmv(encoded, wrong, 8, 8), std::invalid_argument);
  EXPECT_THROW((void)run_topk_spmv(encoded, x, 0, 8), std::invalid_argument);
  EXPECT_THROW((void)run_topk_spmv(encoded, x, 8, 0), std::invalid_argument);
}

TEST(Kernel, EmitsEveryRowExactlyOnce) {
  const sparse::Csr matrix = test::adversarial_matrix(64);
  const auto encoded = encode_bscsr(matrix, PacketLayout::solve(64, 20),
                                    ValueKind::kFixed);
  util::Xoshiro256 rng(5);
  const auto x = sparse::generate_dense_vector(64, rng);
  const KernelResult result = run_topk_spmv(encoded, x, 4, 64);
  EXPECT_EQ(result.stats.rows_emitted, matrix.rows());
  EXPECT_EQ(result.stats.rows_dropped, 0u);
  EXPECT_EQ(result.stats.packets, encoded.num_packets());
}

TEST(Kernel, RLimitDropsExcessRowsAndEnforcementRestoresThem) {
  // 60 single-entry rows -> up to B finished rows per packet.  With
  // r = 2 the kernel must drop rows; with encoder enforcement it must
  // not.
  sparse::Coo coo(60, 32);
  for (std::uint32_t r = 0; r < 60; ++r) {
    coo.push_back(r, r % 32, 0.25f + 0.01f * static_cast<float>(r % 8));
  }
  const sparse::Csr matrix = sparse::Csr::from_coo(std::move(coo));
  const PacketLayout layout = PacketLayout::solve(32, 20);
  util::Xoshiro256 rng(21);
  const auto x = sparse::generate_dense_vector(32, rng);

  const auto unconstrained = encode_bscsr(matrix, layout, ValueKind::kFixed);
  const KernelResult dropped = run_topk_spmv(unconstrained, x, 8, 2);
  EXPECT_GT(dropped.stats.rows_dropped, 0u);
  EXPECT_EQ(dropped.stats.rows_emitted, 60u);

  EncodeOptions options;
  options.max_rows_per_packet = 2;
  const auto enforced = encode_bscsr(matrix, layout, ValueKind::kFixed, options);
  const KernelResult safe = run_topk_spmv(enforced, x, 8, 2);
  EXPECT_EQ(safe.stats.rows_dropped, 0u);

  const auto scores =
      test::reference_scores(matrix, x, ValueKind::kFixed, 20);
  test::expect_exact_topk(safe.topk, scores, 8);
}

TEST(Kernel, GenerousRLimitNeverDrops) {
  const sparse::Csr matrix = test::small_random_matrix(500, 256, 3.0, 31);
  const PacketLayout layout = PacketLayout::solve(256, 20);
  const auto encoded = encode_bscsr(matrix, layout, ValueKind::kFixed);
  util::Xoshiro256 rng(6);
  const auto x = sparse::generate_dense_vector(256, rng);
  const KernelResult result =
      run_topk_spmv(encoded, x, 8, layout.capacity);
  EXPECT_EQ(result.stats.rows_dropped, 0u);
}

TEST(Kernel, RealisticDensityNeedsOnlySmallR) {
  // Section IV-B: B/4 < r < B/2 loses nothing on realistic embedding
  // densities (20+ nnz per row vs B = 15).
  const sparse::Csr matrix = test::small_random_matrix(2000, 1024, 20.0, 77);
  const PacketLayout layout = PacketLayout::solve(1024, 20);
  const auto encoded = encode_bscsr(matrix, layout, ValueKind::kFixed);
  util::Xoshiro256 rng(8);
  const auto x = sparse::generate_dense_vector(1024, rng);
  const KernelResult result = run_topk_spmv(encoded, x, 8, 4);  // r = 4
  EXPECT_EQ(result.stats.rows_dropped, 0u);
  EXPECT_LE(result.stats.max_rows_in_packet, 4u);
}

/// Property sweep: the kernel's top-k equals the bit-exact reference
/// oracle across arithmetic kinds, densities and distributions.
struct KernelParam {
  std::uint32_t rows;
  std::uint32_t cols;
  double mean_nnz;
  int val_bits;
  ValueKind kind;
  sparse::RowDistribution distribution;
  int k;
};

class KernelOracle : public ::testing::TestWithParam<KernelParam> {};

TEST_P(KernelOracle, MatchesBitExactReference) {
  const KernelParam param = GetParam();
  const sparse::Csr matrix =
      test::small_random_matrix(param.rows, param.cols, param.mean_nnz,
                                2000 + param.rows, param.distribution);
  const PacketLayout layout = PacketLayout::solve(param.cols, param.val_bits);
  const auto encoded = encode_bscsr(matrix, layout, param.kind);
  util::Xoshiro256 rng(3000 + param.k);
  const auto x = sparse::generate_dense_vector(param.cols, rng);

  const KernelResult result =
      run_topk_spmv(encoded, x, param.k, layout.capacity);
  const auto scores =
      test::reference_scores(matrix, x, param.kind, param.val_bits);
  test::expect_exact_topk(result.topk, scores, param.k);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KernelOracle,
    ::testing::Values(
        KernelParam{500, 512, 20.0, 20, ValueKind::kFixed,
                    sparse::RowDistribution::kUniform, 8},
        KernelParam{500, 512, 20.0, 25, ValueKind::kFixed,
                    sparse::RowDistribution::kUniform, 8},
        KernelParam{500, 512, 20.0, 32, ValueKind::kFixed,
                    sparse::RowDistribution::kUniform, 8},
        KernelParam{500, 512, 20.0, 32, ValueKind::kFloat32,
                    sparse::RowDistribution::kUniform, 8},
        KernelParam{800, 1024, 40.0, 20, ValueKind::kFixed,
                    sparse::RowDistribution::kGamma, 16},
        KernelParam{800, 1024, 40.0, 32, ValueKind::kFloat32,
                    sparse::RowDistribution::kGamma, 16},
        KernelParam{300, 64, 2.0, 20, ValueKind::kFixed,
                    sparse::RowDistribution::kGamma, 4},
        KernelParam{100, 128, 5.0, 10, ValueKind::kFixed,
                    sparse::RowDistribution::kUniform, 100},
        KernelParam{64, 4096, 60.0, 12, ValueKind::kFixed,
                    sparse::RowDistribution::kUniform, 8},
        KernelParam{50, 32, 1.0, 20, ValueKind::kFixed,
                    sparse::RowDistribution::kUniform, 8}));

TEST(Kernel, AdversarialMatrixMatchesReference) {
  const sparse::Csr matrix = test::adversarial_matrix(64);
  for (const ValueKind kind : {ValueKind::kFixed, ValueKind::kFloat32}) {
    const int val_bits = kind == ValueKind::kFloat32 ? 32 : 20;
    const PacketLayout layout = PacketLayout::solve(64, val_bits);
    const auto encoded = encode_bscsr(matrix, layout, kind);
    util::Xoshiro256 rng(17);
    const auto x = sparse::generate_dense_vector(64, rng);
    const KernelResult result =
        run_topk_spmv(encoded, x, 5, layout.capacity);
    const auto scores = test::reference_scores(matrix, x, kind, val_bits);
    test::expect_exact_topk(result.topk, scores, 5);
  }
}

}  // namespace
}  // namespace topk::core
