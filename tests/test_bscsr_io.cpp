#include "core/bscsr_io.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/topk_spmv.hpp"
#include "test_helpers.hpp"

namespace topk::core {
namespace {

using BsCsrIoTest = test::TempDirFixture;

BsCsrMatrix make_encoded(ValueKind kind, int val_bits) {
  const sparse::Csr matrix = test::small_random_matrix(120, 256, 12.0, 91);
  const PacketLayout layout = PacketLayout::solve(256, val_bits);
  return encode_bscsr(matrix, layout, kind);
}

TEST_F(BsCsrIoTest, RoundTripPreservesEverything) {
  for (const auto& [kind, bits] :
       {std::pair{ValueKind::kFixed, 20}, {ValueKind::kFloat32, 32},
        {ValueKind::kSignedFixed, 25}}) {
    const BsCsrMatrix original = make_encoded(kind, bits);
    const auto path = dir() / "image.bin";
    save_bscsr(original, path);
    const BsCsrMatrix loaded = load_bscsr(path);

    EXPECT_EQ(loaded.layout(), original.layout());
    EXPECT_EQ(loaded.value_kind(), original.value_kind());
    EXPECT_EQ(loaded.rows(), original.rows());
    EXPECT_EQ(loaded.cols(), original.cols());
    EXPECT_EQ(loaded.source_nnz(), original.source_nnz());
    EXPECT_EQ(loaded.stored_entries(), original.stored_entries());
    EXPECT_EQ(loaded.num_packets(), original.num_packets());
    EXPECT_EQ(loaded.words(), original.words());
    EXPECT_EQ(loaded.stats().padded_slots, original.stats().padded_slots);
  }
}

TEST_F(BsCsrIoTest, LoadedImageStreamsIdentically) {
  const BsCsrMatrix original = make_encoded(ValueKind::kFixed, 20);
  std::stringstream buffer;
  save_bscsr(original, buffer);
  const BsCsrMatrix loaded = load_bscsr(buffer);

  util::Xoshiro256 rng(92);
  const auto x = sparse::generate_dense_vector(256, rng);
  const KernelResult from_original = run_topk_spmv(original, x, 8, 8);
  const KernelResult from_loaded = run_topk_spmv(loaded, x, 8, 8);
  ASSERT_EQ(from_original.topk.size(), from_loaded.topk.size());
  for (std::size_t i = 0; i < from_original.topk.size(); ++i) {
    EXPECT_EQ(from_original.topk[i], from_loaded.topk[i]);
  }
}

TEST_F(BsCsrIoTest, RejectsBadMagicAndTruncation) {
  const auto path = dir() / "garbage.bin";
  std::ofstream(path, std::ios::binary) << "definitely not an image";
  EXPECT_THROW((void)load_bscsr(path), std::runtime_error);

  const BsCsrMatrix original = make_encoded(ValueKind::kFixed, 20);
  std::stringstream buffer;
  save_bscsr(original, buffer);
  const std::string full = buffer.str();
  std::istringstream truncated(full.substr(0, full.size() - 16));
  EXPECT_THROW((void)load_bscsr(truncated), std::runtime_error);
  EXPECT_THROW((void)load_bscsr(dir() / "missing.bin"), std::runtime_error);
}

TEST_F(BsCsrIoTest, RejectsTamperedHeader) {
  const BsCsrMatrix original = make_encoded(ValueKind::kFixed, 20);
  std::stringstream buffer;
  save_bscsr(original, buffer);
  std::string bytes = buffer.str();
  // Corrupt the capacity field (offset: magic 8 + packet/ptr/idx/val 16).
  bytes[8 + 16] = 120;
  std::istringstream corrupted(bytes);
  EXPECT_THROW((void)load_bscsr(corrupted), std::runtime_error);
}

// Regression: a header whose row/col counts disagree with the packet
// words actually present used to load silently (from_parts checks only
// word/entry-count arithmetic); the streaming kernel then recovers the
// wrong row ids.  load_bscsr now audits the stream's ptr boundaries.
TEST_F(BsCsrIoTest, RejectsHeaderRowsDisagreeingWithStream) {
  const BsCsrMatrix original = make_encoded(ValueKind::kFixed, 20);
  ASSERT_EQ(original.rows(), 120u);
  const auto path = dir() / "image.bin";
  save_bscsr(original, path);

  // Header layout: magic(8) + 5 layout int32 + kind int32 = 32 bytes,
  // then rows (uint32) at 32 and cols (uint32) at 36.
  std::string bytes = test::read_file(path);
  std::uint32_t rows = 0;
  std::memcpy(&rows, bytes.data() + 32, 4);
  ASSERT_EQ(rows, 120u);
  ++rows;  // 121 claimed rows, 120 boundaries in the stream
  std::memcpy(bytes.data() + 32, &rows, 4);
  test::write_file(path, bytes);
  try {
    (void)load_bscsr(path);
    FAIL() << "tampered row count loaded";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("rows"), std::string::npos)
        << error.what();
  }
}

TEST_F(BsCsrIoTest, RejectsHeaderColsBeyondIndexRange) {
  const BsCsrMatrix original = make_encoded(ValueKind::kFixed, 20);
  ASSERT_EQ(original.cols(), 256u);  // idx_bits == 8 addresses exactly 256
  const auto path = dir() / "image.bin";
  save_bscsr(original, path);

  std::string bytes = test::read_file(path);
  const std::uint32_t cols = 300;  // not addressable by 8-bit indices
  std::memcpy(bytes.data() + 36, &cols, 4);
  test::write_file(path, bytes);
  try {
    (void)load_bscsr(path);
    FAIL() << "tampered column count loaded";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("cols"), std::string::npos)
        << error.what();
  }
}

TEST(BsCsrFromParts, ValidatesConsistency) {
  const BsCsrMatrix original = make_encoded(ValueKind::kFixed, 20);
  // Word count mismatch.
  EXPECT_THROW(
      (void)BsCsrMatrix::from_parts(original.layout(), original.value_kind(),
                                    original.rows(), original.cols(),
                                    original.source_nnz(),
                                    original.stored_entries(), {},
                                    original.stats()),
      std::invalid_argument);
  // Entry count mismatch.
  auto words = original.words();
  EXPECT_THROW(
      (void)BsCsrMatrix::from_parts(original.layout(), original.value_kind(),
                                    original.rows(), original.cols(),
                                    original.source_nnz(),
                                    original.stored_entries() + 1,
                                    std::move(words), original.stats()),
      std::invalid_argument);
}

}  // namespace
}  // namespace topk::core
