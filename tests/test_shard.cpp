// Tests for the sharded scatter-gather tier: shard planning (even vs
// nnz-balanced on skewed matrices), the ShardedIndex scatter/gather
// paths (bit-identical to the unsharded exact backends, stats
// aggregation, mixed backends, registry factories), and the repo-wide
// deterministic Top-K tie-break (descending value, ascending row id)
// that makes sharded and unsharded results bit-comparable even with
// engineered score ties.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "eval/ranking.hpp"
#include "index/backends.hpp"
#include "index/registry.hpp"
#include "shard/shard_planner.hpp"
#include "shard/sharded_index.hpp"
#include "test_helpers.hpp"

namespace topk::shard {
namespace {

std::shared_ptr<const sparse::Csr> shared_matrix(std::uint32_t rows,
                                                 std::uint32_t cols,
                                                 double mean_nnz,
                                                 std::uint64_t seed) {
  return std::make_shared<const sparse::Csr>(
      test::small_random_matrix(rows, cols, mean_nnz, seed));
}

/// A matrix whose first `dense_rows` rows hold `dense_nnz` non-zeros
/// each while every other row holds one — the skew an even row split
/// handles badly.
sparse::Csr skewed_matrix(std::uint32_t rows, std::uint32_t cols,
                          std::uint32_t dense_rows, std::uint32_t dense_nnz) {
  sparse::Coo coo(rows, cols);
  util::Xoshiro256 rng(99);
  for (std::uint32_t r = 0; r < rows; ++r) {
    const std::uint32_t nnz = r < dense_rows ? dense_nnz : 1;
    for (std::uint32_t i = 0; i < nnz; ++i) {
      coo.push_back(r, (r * 31 + i * 7) % cols,
                    static_cast<float>(rng.uniform(0.05, 1.0)));
    }
  }
  return sparse::Csr::from_coo(std::move(coo));
}

void expect_cover(const ShardPlan& plan, std::uint32_t rows) {
  ASSERT_FALSE(plan.empty());
  EXPECT_EQ(plan.front().row_begin, 0u);
  EXPECT_EQ(plan.back().row_end, rows);
  for (std::size_t s = 0; s < plan.size(); ++s) {
    EXPECT_LT(plan[s].row_begin, plan[s].row_end) << "shard " << s;
    if (s > 0) {
      EXPECT_EQ(plan[s].row_begin, plan[s - 1].row_end) << "shard " << s;
    }
  }
}

// ------------------------------------------------------------- ShardPlanner

TEST(ShardPlannerTest, EvenRowsCoverWithBalancedSizes) {
  const ShardPlan plan = plan_even_rows(1003, 4);
  expect_cover(plan, 1003);
  for (const core::Partition& range : plan) {
    EXPECT_GE(range.rows(), 250u);
    EXPECT_LE(range.rows(), 251u);
  }
}

TEST(ShardPlannerTest, NnzBalancedCoversAllRows) {
  const sparse::Csr matrix = test::small_random_matrix(777, 64, 6.0, 31);
  for (const int shards : {1, 2, 4, 8}) {
    const ShardPlan plan = plan_nnz_balanced(matrix, shards);
    ASSERT_EQ(plan.size(), static_cast<std::size_t>(shards));
    expect_cover(plan, matrix.rows());
  }
}

TEST(ShardPlannerTest, NnzBalancedBeatsEvenSplitOnSkewedMatrices) {
  // 100 rows x 64 nnz up front, 900 single-entry rows behind: the even
  // split gives shard 0 ~88% of the work.
  const sparse::Csr matrix = skewed_matrix(1000, 128, 100, 64);
  const double even = plan_nnz_imbalance(matrix, plan_even_rows(matrix.rows(), 4));
  const double balanced =
      plan_nnz_imbalance(matrix, plan_nnz_balanced(matrix, 4));
  EXPECT_GT(even, 2.0);
  EXPECT_LT(balanced, 1.5);
  EXPECT_LT(balanced, even);
}

TEST(ShardPlannerTest, PolicyFacadeDispatches) {
  const sparse::Csr matrix = skewed_matrix(400, 64, 40, 32);
  EXPECT_EQ(ShardPlanner(ShardPolicy::kEvenRows).plan(matrix, 4),
            plan_even_rows(matrix.rows(), 4));
  EXPECT_EQ(ShardPlanner(ShardPolicy::kNnzBalanced).plan(matrix, 4),
            plan_nnz_balanced(matrix, 4));
  EXPECT_EQ(to_string(ShardPolicy::kEvenRows), "even-rows");
  EXPECT_EQ(to_string(ShardPolicy::kNnzBalanced), "nnz-balanced");
}

TEST(ShardPlannerTest, RejectsBadShardCounts) {
  const sparse::Csr matrix = test::small_random_matrix(10, 32, 4.0, 32);
  EXPECT_THROW((void)plan_even_rows(10, 0), std::invalid_argument);
  EXPECT_THROW((void)plan_even_rows(10, -2), std::invalid_argument);
  EXPECT_THROW((void)plan_even_rows(10, 11), std::invalid_argument);
  EXPECT_THROW((void)plan_nnz_balanced(matrix, 0), std::invalid_argument);
  EXPECT_THROW((void)plan_nnz_balanced(matrix, 11), std::invalid_argument);
}

// ------------------------------------------------------------ ShardedIndex

TEST(ShardedIndexTest, FourExactShardsBitIdenticalToExactSort) {
  // The acceptance check: 4 exact shards == unsharded ExactSortIndex,
  // entries (values and row ids, ties included) bit-for-bit, with both
  // planning policies and at every scatter width.
  const auto matrix = shared_matrix(2000, 128, 8.0, 41);
  const index::ExactSortIndex unsharded(matrix);
  for (const ShardPolicy policy :
       {ShardPolicy::kEvenRows, ShardPolicy::kNnzBalanced}) {
    const auto sharded = ShardedIndexBuilder()
                             .matrix(matrix)
                             .shards(4)
                             .policy(policy)
                             .inner_backend("exact-sort")
                             .build();
    util::Xoshiro256 rng(42);
    for (int q = 0; q < 6; ++q) {
      const auto x = sparse::generate_dense_vector(128, rng);
      const auto expected = unsharded.query(x, 25).entries;
      index::QueryOptions sequential;
      sequential.threads = 1;
      index::QueryOptions parallel;
      parallel.threads = 4;
      EXPECT_EQ(sharded->query(x, 25, sequential).entries, expected)
          << to_string(policy) << " query " << q;
      EXPECT_EQ(sharded->query(x, 25, parallel).entries, expected)
          << to_string(policy) << " query " << q;
    }
  }
}

TEST(ShardedIndexTest, CpuHeapShardsMatchUnshardedCpuHeap) {
  const auto matrix = shared_matrix(999, 64, 5.0, 43);
  const index::CpuHeapIndex unsharded(matrix);
  const auto sharded = ShardedIndexBuilder()
                           .matrix(matrix)
                           .shards(3)
                           .inner_backend("cpu-heap")
                           .build();
  util::Xoshiro256 rng(44);
  for (int q = 0; q < 4; ++q) {
    const auto x = sparse::generate_dense_vector(64, rng);
    EXPECT_EQ(sharded->query(x, 15).entries, unsharded.query(x, 15).entries)
        << "query " << q;
  }
}

TEST(ShardedIndexTest, StatsAggregateAcrossShards) {
  // Manual two-shard construction over fpga-sim inners so the
  // aggregates can be checked against the per-shard results directly.
  const auto matrix = shared_matrix(600, 128, 8.0, 45);
  const auto design = core::DesignConfig::fixed(20, 4);
  const ShardPlan plan = plan_nnz_balanced(*matrix, 2);
  std::vector<Shard> shards;
  for (const core::Partition& range : plan) {
    const auto slice = std::make_shared<const sparse::Csr>(
        matrix->slice_rows(range.row_begin, range.row_end));
    shards.push_back(
        Shard{range, std::make_shared<index::FpgaSimIndex>(slice, design)});
  }
  const ShardedIndex sharded(shards, "sharded-fpga-sim");

  util::Xoshiro256 rng(46);
  const auto x = sparse::generate_dense_vector(128, rng);
  const auto result = sharded.query(x, 10);

  std::uint64_t rows_scanned = 0;
  double slowest = 0.0;
  int slowest_shard = -1;
  std::uint64_t candidates = 0;
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const auto inner = shards[s].primary().query(x, 10);
    rows_scanned += inner.stats.rows_scanned;
    if (inner.stats.modelled_seconds > slowest) {
      slowest = inner.stats.modelled_seconds;
      slowest_shard = static_cast<int>(s);
    }
    candidates += inner.entries.size();
  }
  EXPECT_EQ(result.stats.rows_scanned, rows_scanned);
  EXPECT_EQ(result.stats.rows_scanned, matrix->rows());
  EXPECT_EQ(result.stats.modelled_seconds, slowest);
  const index::ShardStats* stats = index::shard_stats(result);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->shards, 2);
  EXPECT_EQ(stats->slowest_shard, slowest_shard);
  EXPECT_EQ(stats->gathered_candidates, candidates);
  EXPECT_EQ(index::fpga_stats(result), nullptr);
  EXPECT_EQ(index::gpu_stats(result), nullptr);
}

TEST(ShardedIndexTest, SlowestShardIsMeasuredForUnmodelledBackends) {
  // Regression: cpu-heap/exact-sort shards report no modelled device
  // time, which used to leave ShardStats::slowest_shard permanently at
  // -1 — the dynamic-resharding load signal was dead for every pure
  // CPU deployment.  The scatter now times each query_shard call and
  // falls back to the measured wall time.
  const auto matrix = shared_matrix(1200, 64, 6.0, 57);
  const auto sharded = ShardedIndexBuilder()
                           .matrix(matrix)
                           .shards(4)
                           .inner_backend("cpu-heap")
                           .build();
  util::Xoshiro256 rng(58);
  for (const int threads : {1, 4}) {
    index::QueryOptions options;
    options.threads = threads;
    const auto result =
        sharded->query(sparse::generate_dense_vector(64, rng), 10, options);
    const index::ShardStats* stats = index::shard_stats(result);
    ASSERT_NE(stats, nullptr);
    EXPECT_NE(stats->slowest_shard, -1) << threads << " threads";
    EXPECT_GE(stats->slowest_shard, 0);
    EXPECT_LT(stats->slowest_shard, 4);
    EXPECT_GT(stats->slowest_seconds, 0.0);
    EXPECT_EQ(result.stats.modelled_seconds, 0.0);  // measured, not modelled
  }
  // The measured wall times also feed the per-replica EWMA the
  // least-loaded router consumes.
  for (std::size_t s = 0; s < sharded->shard_count(); ++s) {
    const auto replicas = sharded->replica_stats(s);
    ASSERT_EQ(replicas.size(), 1u);
    EXPECT_GT(replicas[0].queries, 0u);
    EXPECT_GT(replicas[0].ewma_seconds, 0.0);
    EXPECT_EQ(replicas[0].inflight, 0);
    EXPECT_TRUE(replicas[0].healthy);
  }
  // The batch grid path feeds the same signal.
  const auto batch =
      sharded->query_batch({sparse::generate_dense_vector(64, rng)}, 10);
  ASSERT_NE(index::shard_stats(batch[0]), nullptr);
  EXPECT_NE(index::shard_stats(batch[0])->slowest_shard, -1);
}

TEST(ShardedIndexBuilderTest, DuplicateShardBackendOverrideThrows) {
  // A duplicate override used to be silent last-wins; now it throws at
  // build() time naming the shard, whether the names differ or not.
  const auto matrix = shared_matrix(300, 64, 5.0, 59);
  try {
    (void)ShardedIndexBuilder()
        .matrix(matrix)
        .shards(4)
        .shard_backend(2, "cpu-heap")
        .shard_backend(2, "exact-sort")
        .build();
    FAIL() << "duplicate override did not throw";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("shard 2"), std::string::npos)
        << error.what();
  }
  EXPECT_THROW((void)ShardedIndexBuilder()
                   .matrix(matrix)
                   .shards(4)
                   .shard_backend(1, "cpu-heap")
                   .shard_backend(1, "cpu-heap")
                   .build(),
               std::invalid_argument);
  // A single override per shard still builds.
  EXPECT_NO_THROW((void)ShardedIndexBuilder()
                      .matrix(matrix)
                      .shards(4)
                      .shard_backend(1, "exact-sort")
                      .shard_backend(2, "cpu-heap")
                      .build());
}

TEST(ShardedIndexTest, MixedBackendsGatherCorrectly) {
  // fpga-sim shards with one exact cpu-heap straggler — the
  // mixed-backend deployment the tier exists for.
  const auto matrix = shared_matrix(800, 128, 8.0, 47);
  index::IndexOptions options;
  options.design = core::DesignConfig::fixed(20, 4);
  const auto mixed = ShardedIndexBuilder()
                         .matrix(matrix)
                         .shards(4)
                         .inner_backend("fpga-sim")
                         .inner_options(options)
                         .shard_backend(3, "cpu-heap")
                         .build();
  const auto description = mixed->describe();
  EXPECT_EQ(description.backend, "sharded");
  EXPECT_FALSE(description.exact);  // three approximate shards
  EXPECT_NE(description.detail.find("fpga-sim x3"), std::string::npos)
      << description.detail;
  EXPECT_NE(description.detail.find("cpu-heap x1"), std::string::npos)
      << description.detail;

  const index::ExactSortIndex exact(matrix);
  util::Xoshiro256 rng(48);
  for (int q = 0; q < 3; ++q) {
    const auto x = sparse::generate_dense_vector(128, rng);
    const auto result = mixed->query(x, 10);
    ASSERT_EQ(result.entries.size(), 10u);
    std::vector<std::uint32_t> got;
    std::vector<std::uint32_t> want;
    for (const auto& entry : result.entries) {
      got.push_back(entry.index);
    }
    for (const auto& entry : exact.query(x, 10).entries) {
      want.push_back(entry.index);
    }
    EXPECT_GE(eval::precision_at_k(got, want), 0.7) << "query " << q;
  }
}

TEST(ShardedIndexTest, BatchPathMatchesPerQueryPath) {
  const auto matrix = shared_matrix(700, 64, 6.0, 49);
  const auto sharded = ShardedIndexBuilder()
                           .matrix(matrix)
                           .shards(4)
                           .inner_backend("exact-sort")
                           .build();
  util::Xoshiro256 rng(50);
  std::vector<std::vector<float>> queries;
  for (int q = 0; q < 5; ++q) {
    queries.push_back(sparse::generate_dense_vector(64, rng));
  }
  index::QueryOptions options;
  options.threads = 3;
  const auto batch = sharded->query_batch(queries, 12, options);
  ASSERT_EQ(batch.size(), queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto single = sharded->query(queries[q], 12);
    EXPECT_EQ(batch[q].entries, single.entries) << "query " << q;
    EXPECT_EQ(batch[q].stats.rows_scanned, matrix->rows()) << "query " << q;
    ASSERT_NE(index::shard_stats(batch[q]), nullptr) << "query " << q;
    EXPECT_EQ(index::shard_stats(batch[q])->shards, 4) << "query " << q;
  }
}

TEST(ShardedIndexTest, CappedShardsClampAndSumMaxTopK) {
  const auto matrix = shared_matrix(400, 128, 8.0, 51);
  index::IndexOptions options;
  options.design = core::DesignConfig::fixed(20, 4);  // cap = k * cores = 32
  const auto capped = ShardedIndexBuilder()
                          .matrix(matrix)
                          .shards(2)
                          .inner_backend("fpga-sim")
                          .inner_options(options)
                          .build();
  EXPECT_EQ(capped->max_top_k(), 64);  // 2 shards x 32
  EXPECT_THROW((void)capped->query(std::vector<float>(128, 0.1f), 65),
               std::invalid_argument);
  // A request above one shard's cap but under the sum still serves:
  // each shard contributes its clamped candidate list.
  const auto result = capped->query(std::vector<float>(128, 0.1f), 40);
  EXPECT_EQ(result.entries.size(), 40u);

  // Any uncapped shard makes the composite unbounded.
  const auto uncapped = ShardedIndexBuilder()
                            .matrix(matrix)
                            .shards(2)
                            .inner_backend("cpu-heap")
                            .build();
  EXPECT_EQ(uncapped->max_top_k(), 0);
}

TEST(ShardedIndexTest, ValidationAndConstructionErrors) {
  const auto matrix = shared_matrix(300, 64, 5.0, 52);
  const auto sharded = ShardedIndexBuilder()
                           .matrix(matrix)
                           .shards(3)
                           .inner_backend("exact-sort")
                           .build();
  EXPECT_THROW((void)sharded->query(std::vector<float>(5, 0.0f), 10),
               std::invalid_argument);
  EXPECT_THROW((void)sharded->query(std::vector<float>(64, 0.0f), 0),
               std::invalid_argument);
  EXPECT_THROW((void)sharded->query_batch({}, -1), std::invalid_argument);
  index::QueryOptions negative;
  negative.threads = -1;
  EXPECT_THROW((void)sharded->query(std::vector<float>(64, 0.1f), 5, negative),
               std::invalid_argument);

  EXPECT_THROW((void)ShardedIndexBuilder().build(), std::invalid_argument);
  EXPECT_THROW((void)ShardedIndexBuilder().matrix(matrix).shards(0).build(),
               std::invalid_argument);
  EXPECT_THROW((void)ShardedIndexBuilder()
                   .matrix(matrix)
                   .inner_backend("annoy")
                   .build(),
               std::invalid_argument);
  EXPECT_THROW((void)ShardedIndexBuilder()
                   .matrix(matrix)
                   .shards(2)
                   .shard_backend(2, "cpu-heap")
                   .build(),
               std::invalid_argument);

  // Direct construction rejects malformed shard lists.
  EXPECT_THROW(ShardedIndex({}), std::invalid_argument);
  const auto slice = std::make_shared<const sparse::Csr>(
      matrix->slice_rows(0, 100));
  const auto inner = std::make_shared<index::ExactSortIndex>(slice);
  EXPECT_THROW(
      ShardedIndex({Shard{core::Partition{50, 150}, inner}}),  // not at row 0
      std::invalid_argument);
  EXPECT_THROW(
      ShardedIndex({Shard{core::Partition{0, 99}, inner}}),  // rows mismatch
      std::invalid_argument);
  EXPECT_THROW(ShardedIndex({Shard{core::Partition{0, 100}, nullptr}}),
               std::invalid_argument);
}

// ----------------------------------------------------------- registry keys

TEST(ShardRegistryTest, ShardedBuiltinsAreRegistered) {
  for (const char* name : {"sharded-fpga-sim", "sharded-cpu-heap",
                           "sharded-exact-sort", "sharded-gpu-f16"}) {
    EXPECT_TRUE(index::has_backend(name)) << name;
  }
  const auto matrix = shared_matrix(400, 64, 6.0, 53);
  const auto sharded = index::make_index("sharded-exact-sort", matrix);
  EXPECT_EQ(sharded->describe().backend, "sharded-exact-sort");
  EXPECT_EQ(sharded->rows(), matrix->rows());
  EXPECT_EQ(sharded->cols(), matrix->cols());

  // The registry factory must match the unsharded backend bit-for-bit.
  const auto unsharded = index::make_index("exact-sort", matrix);
  util::Xoshiro256 rng(54);
  const auto x = sparse::generate_dense_vector(64, rng);
  EXPECT_EQ(sharded->query(x, 10).entries, unsharded->query(x, 10).entries);
}

TEST(ShardRegistryTest, OptionsControlShardCountAndClamping) {
  const auto matrix = shared_matrix(500, 64, 6.0, 55);
  index::IndexOptions options;
  options.shards = 2;
  const auto two = index::make_index("sharded-cpu-heap", matrix, options);
  const auto result =
      two->query(std::vector<float>(64, 0.1f), 5);
  ASSERT_NE(index::shard_stats(result), nullptr);
  EXPECT_EQ(index::shard_stats(result)->shards, 2);

  // More shards than rows: clamped, not an error (generic sweeps hand
  // tiny matrices to every registered backend).
  const auto tiny = shared_matrix(3, 64, 4.0, 56);
  options.shards = 8;
  const auto clamped = index::make_index("sharded-cpu-heap", tiny, options);
  const auto tiny_result = clamped->query(std::vector<float>(64, 0.1f), 2);
  ASSERT_NE(index::shard_stats(tiny_result), nullptr);
  EXPECT_EQ(index::shard_stats(tiny_result)->shards, 3);

  // IndexBuilder forwards the shard knobs.
  const auto built = index::IndexBuilder()
                         .backend("sharded-exact-sort")
                         .matrix(matrix)
                         .shards(3)
                         .nnz_balanced_shards(false)
                         .build();
  const auto built_result = built->query(std::vector<float>(64, 0.1f), 5);
  ASSERT_NE(index::shard_stats(built_result), nullptr);
  EXPECT_EQ(index::shard_stats(built_result)->shards, 3);
}

// -------------------------------------------------- deterministic tie-break

/// Rows engineered so scores tie exactly: even rows share value 1.0 at
/// column 0, odd rows share value 0.5.  With x = e0 every even row
/// scores 1.0 and every odd row 0.5 in every exact arithmetic
/// (including binary16 — both values are exactly representable).
sparse::Csr tied_matrix(std::uint32_t rows, std::uint32_t cols) {
  std::vector<std::uint64_t> row_ptr{0};
  std::vector<std::uint32_t> col_idx;
  std::vector<float> values;
  for (std::uint32_t r = 0; r < rows; ++r) {
    col_idx.push_back(0);
    values.push_back(r % 2 == 0 ? 1.0f : 0.5f);
    row_ptr.push_back(col_idx.size());
  }
  return sparse::Csr::from_parts(rows, cols, std::move(row_ptr),
                                 std::move(col_idx), std::move(values));
}

TEST(TopKTieBreakTest, EngineeredTiesResolveByAscendingRowAcrossBackends) {
  constexpr std::uint32_t kRows = 24;
  constexpr std::uint32_t kCols = 8;
  const auto matrix =
      std::make_shared<const sparse::Csr>(tied_matrix(kRows, kCols));
  std::vector<float> x(kCols, 0.0f);
  x[0] = 1.0f;

  // top-16 = all 12 even rows (value 1.0, ascending id), then the
  // first 4 odd rows (value 0.5, ascending id).
  std::vector<core::TopKEntry> expected;
  for (std::uint32_t r = 0; r < kRows; r += 2) {
    expected.push_back(core::TopKEntry{r, 1.0});
  }
  for (std::uint32_t r = 1; r < 8; r += 2) {
    expected.push_back(core::TopKEntry{r, 0.5});
  }

  for (const char* name : {"cpu-heap", "exact-sort", "gpu-f16"}) {
    const auto index = index::make_index(name, matrix);
    EXPECT_EQ(index->query(x, 16).entries, expected) << name;
  }
  // The multi-threaded heap scan merges per-thread heaps across the
  // tie groups — the canonical order must survive the merge.
  index::QueryOptions threaded;
  threaded.threads = 4;
  EXPECT_EQ(index::make_index("cpu-heap", matrix)->query(x, 16, threaded).entries,
            expected);
}

TEST(TopKTieBreakTest, ShardedAndUnshardedTiesAreBitComparable) {
  const auto matrix =
      std::make_shared<const sparse::Csr>(tied_matrix(24, 8));
  std::vector<float> x(8, 0.0f);
  x[0] = 1.0f;
  const auto unsharded = index::make_index("exact-sort", matrix);
  // Shard boundaries cut straight through both tie groups; the k-way
  // gather must still interleave them back into ascending-row order.
  for (const int shards : {2, 3, 4, 6}) {
    index::IndexOptions options;
    options.shards = shards;
    const auto sharded = index::make_index("sharded-exact-sort", matrix, options);
    EXPECT_EQ(sharded->query(x, 16).entries, unsharded->query(x, 16).entries)
        << shards << " shards";
  }
}

}  // namespace
}  // namespace topk::shard
