#include "fixed/half.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/rng.hpp"

namespace topk::fixed {
namespace {

TEST(HalfBits, KnownEncodings) {
  EXPECT_EQ(float_to_half_bits(0.0f), 0x0000);
  EXPECT_EQ(float_to_half_bits(-0.0f), 0x8000);
  EXPECT_EQ(float_to_half_bits(1.0f), 0x3C00);
  EXPECT_EQ(float_to_half_bits(-1.0f), 0xBC00);
  EXPECT_EQ(float_to_half_bits(0.5f), 0x3800);
  EXPECT_EQ(float_to_half_bits(2.0f), 0x4000);
  EXPECT_EQ(float_to_half_bits(65504.0f), 0x7BFF);  // max finite half
  EXPECT_EQ(float_to_half_bits(0.099976f), 0x2E66);
}

TEST(HalfBits, OverflowGoesToInfinity) {
  EXPECT_EQ(float_to_half_bits(65536.0f), 0x7C00);
  EXPECT_EQ(float_to_half_bits(-1e10f), 0xFC00);
  EXPECT_EQ(float_to_half_bits(std::numeric_limits<float>::infinity()), 0x7C00);
}

TEST(HalfBits, NanPreserved) {
  const std::uint16_t nan_bits = float_to_half_bits(std::nanf(""));
  EXPECT_EQ(nan_bits & 0x7C00, 0x7C00);
  EXPECT_NE(nan_bits & 0x03FF, 0);
  EXPECT_TRUE(std::isnan(half_bits_to_float(nan_bits)));
}

TEST(HalfBits, SubnormalsRoundTrip) {
  // Smallest positive subnormal half = 2^-24.
  const float tiny = std::ldexp(1.0f, -24);
  EXPECT_EQ(float_to_half_bits(tiny), 0x0001);
  EXPECT_FLOAT_EQ(half_bits_to_float(0x0001), tiny);
  // Largest subnormal: (1023/1024) * 2^-14.
  const float max_subnormal = std::ldexp(1023.0f / 1024.0f, -14);
  EXPECT_EQ(float_to_half_bits(max_subnormal), 0x03FF);
  EXPECT_FLOAT_EQ(half_bits_to_float(0x03FF), max_subnormal);
}

TEST(HalfBits, UnderflowToZero) {
  EXPECT_EQ(float_to_half_bits(std::ldexp(1.0f, -26)), 0x0000);
  EXPECT_EQ(float_to_half_bits(-std::ldexp(1.0f, -26)), 0x8000);
}

TEST(HalfBits, RoundToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1.0 and 1 + 2^-10; the even
  // mantissa (1.0, bits 0x3C00) must win.
  const float halfway = 1.0f + std::ldexp(1.0f, -11);
  EXPECT_EQ(float_to_half_bits(halfway), 0x3C00);
  // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9 -> round to even
  // mantissa 2 (0x3C02).
  const float halfway_up = 1.0f + 3.0f * std::ldexp(1.0f, -11);
  EXPECT_EQ(float_to_half_bits(halfway_up), 0x3C02);
}

TEST(HalfBits, AllHalfValuesRoundTripThroughFloat) {
  // Every finite half converts to float and back to the identical bits
  // (float superset property).
  for (std::uint32_t bits = 0; bits <= 0xFFFF; ++bits) {
    const auto h = static_cast<std::uint16_t>(bits);
    if ((h & 0x7C00) == 0x7C00 && (h & 0x03FF) != 0) {
      continue;  // NaNs: payloads need not round-trip exactly
    }
    EXPECT_EQ(float_to_half_bits(half_bits_to_float(h)), h) << "bits=" << bits;
  }
}

TEST(Half, ArithmeticRoundsEveryStep) {
  const Half a = Half::from_float(0.1f);
  const Half b = Half::from_float(0.2f);
  const float sum = (a + b).to_float();
  // Half(0.1) + Half(0.2) = 0.30004... rounded to half precision.
  EXPECT_NEAR(sum, 0.3f, 2e-3f);
  EXPECT_NE(sum, 0.1f + 0.2f);  // must differ from float arithmetic
}

TEST(Half, AccumulationDriftMatchesPrecisionLoss) {
  // Summing 1000 copies of 0.001 in half precision drifts noticeably —
  // the effect the GPU F16 accuracy curves of Figure 7 reflect.
  Half acc = Half::from_float(0.0f);
  const Half step = Half::from_float(0.001f);
  for (int i = 0; i < 1000; ++i) {
    acc = acc + step;
  }
  EXPECT_NEAR(acc.to_float(), 1.0f, 0.1f);
  EXPECT_NE(acc.to_float(), 1.0f);
}

TEST(Half, ComparisonsWork) {
  EXPECT_LT(Half::from_float(0.5f), Half::from_float(1.0f));
  EXPECT_EQ(Half::from_float(0.25f), Half::from_float(0.25f));
  EXPECT_EQ(Half::from_bits(0x3C00).to_float(), 1.0f);
}

TEST(Half, RandomValuesStayWithinRelativeTolerance) {
  util::Xoshiro256 rng(41);
  for (int i = 0; i < 10'000; ++i) {
    const auto value = static_cast<float>(rng.uniform(1e-3, 1.0));
    const float back = Half::from_float(value).to_float();
    EXPECT_NEAR(back, value, value * std::ldexp(1.0f, -10));
  }
}

}  // namespace
}  // namespace topk::fixed
