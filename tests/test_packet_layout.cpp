#include "core/packet_layout.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace topk::core {
namespace {

TEST(PacketLayout, PaperDesignPointsForM1024) {
  // Section IV-C: with M = 1024 (10 idx bits) a 512-bit packet holds
  // B = 15 non-zeros at V = 20, 13 at V = 25, 11 at V = 32.
  const PacketLayout v20 = PacketLayout::solve(1024, 20);
  EXPECT_EQ(v20.capacity, 15);
  EXPECT_EQ(v20.ptr_bits, 4);
  EXPECT_EQ(v20.idx_bits, 10);
  EXPECT_EQ(v20.used_bits(), 511);  // Figure 3: "511 bit, 15 values"

  const PacketLayout v25 = PacketLayout::solve(1024, 25);
  EXPECT_EQ(v25.capacity, 13);

  const PacketLayout v32 = PacketLayout::solve(1024, 32);
  EXPECT_EQ(v32.capacity, 11);
}

TEST(PacketLayout, PaperRangeOfB) {
  // Section IV: "B ranges from 7 to 15" across realistic configs.
  // Worst case: 32-bit idx and val.
  const PacketLayout worst = PacketLayout::solve(0xFFFFFFFFu, 32);
  EXPECT_EQ(worst.idx_bits, 32);
  EXPECT_GE(worst.capacity, 7);
  const PacketLayout best = PacketLayout::solve(512, 20);
  EXPECT_LE(best.capacity, 16);
}

TEST(PacketLayout, M512UsesNineIdxBits) {
  const PacketLayout layout = PacketLayout::solve(512, 20);
  EXPECT_EQ(layout.idx_bits, 9);
  EXPECT_EQ(layout.capacity, 15);
}

TEST(PacketLayout, FeasibilityInvariant) {
  // For every solved layout: B slots fit, B+1 slots would not.
  for (const std::uint32_t cols : {64u, 512u, 1024u, 4096u, 100'000u}) {
    for (const int val_bits : {8, 10, 16, 20, 25, 32}) {
      const PacketLayout layout = PacketLayout::solve(cols, val_bits);
      EXPECT_LE(layout.used_bits(), layout.packet_bits);
      const int next_ptr_bits =
          layout.capacity + 1 > (1 << layout.ptr_bits) - 1 ? layout.ptr_bits + 1
                                                           : layout.ptr_bits;
      const long long next_used =
          1LL + static_cast<long long>(layout.capacity + 1) *
                    (next_ptr_bits + layout.idx_bits + layout.val_bits);
      EXPECT_GT(next_used, layout.packet_bits)
          << "cols=" << cols << " V=" << val_bits;
    }
  }
}

TEST(PacketLayout, PtrBitsCoverCapacity) {
  for (const int val_bits : {8, 20, 32}) {
    const PacketLayout layout = PacketLayout::solve(1024, val_bits);
    EXPECT_GE((1 << layout.ptr_bits) - 1, layout.capacity);
  }
}

TEST(PacketLayout, WiderPacketsHoldMore) {
  const PacketLayout narrow = PacketLayout::solve(1024, 20, 256);
  const PacketLayout wide = PacketLayout::solve(1024, 20, 1024);
  EXPECT_LT(narrow.capacity, wide.capacity);
  EXPECT_EQ(narrow.bytes_per_packet(), 32);
  EXPECT_EQ(wide.words_per_packet(), 16);
}

TEST(PacketLayout, IntensityImprovesWithNarrowValues) {
  // The core claim of Figure 3/6a: fewer value bits -> more non-zeros
  // per transaction -> higher operational intensity.
  const double oi20 = PacketLayout::solve(1024, 20).nnz_per_byte();
  const double oi32 = PacketLayout::solve(1024, 32).nnz_per_byte();
  EXPECT_GT(oi20, oi32);
  EXPECT_NEAR(oi20, 15.0 / 64.0, 1e-12);
  // Naive COO carries 12 bytes per non-zero -> 5 per 64-byte packet;
  // BS-CSR at V=20 triples that (the paper's "2 to 3 times").
  EXPECT_NEAR(oi20 / (5.0 / 64.0), 3.0, 1e-12);
}

TEST(PacketLayout, SolveRejectsBadArguments) {
  EXPECT_THROW((void)PacketLayout::solve(0, 20), std::invalid_argument);
  EXPECT_THROW((void)PacketLayout::solve(1024, 1), std::invalid_argument);
  EXPECT_THROW((void)PacketLayout::solve(1024, 33), std::invalid_argument);
  EXPECT_THROW((void)PacketLayout::solve(1024, 20, 100), std::invalid_argument);
  EXPECT_THROW((void)PacketLayout::solve(1024, 20, 0), std::invalid_argument);
  // 64-bit packet cannot hold one 32+32-bit entry.
  EXPECT_THROW((void)PacketLayout::solve(0xFFFFFFFFu, 32, 64),
               std::invalid_argument);
}

struct LayoutParam {
  std::uint32_t cols;
  int val_bits;
  int expected_capacity;
};

class LayoutSweep : public ::testing::TestWithParam<LayoutParam> {};

TEST_P(LayoutSweep, CapacityMatchesHandComputation) {
  const LayoutParam param = GetParam();
  const PacketLayout layout = PacketLayout::solve(param.cols, param.val_bits);
  EXPECT_EQ(layout.capacity, param.expected_capacity);
}

INSTANTIATE_TEST_SUITE_P(
    HandComputed, LayoutSweep,
    ::testing::Values(LayoutParam{1024, 20, 15},  // paper 20-bit
                      LayoutParam{1024, 25, 13},  // paper 25-bit
                      LayoutParam{1024, 32, 11},  // paper 32-bit / F32
                      LayoutParam{512, 20, 15},
                      LayoutParam{512, 32, 11},   // 11*(4+9+32)+1 = 496
                      LayoutParam{65536, 32, 9},  // 9*(4+16+32)+1 = 469
                      LayoutParam{1024, 10, 20},  // 20*(5+10+10)+1 = 501
                      LayoutParam{2, 2, 56}));    // 56*(6+1+2)+1 = 505

}  // namespace
}  // namespace topk::core
