#include "baselines/cpu_topk_spmv.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "test_helpers.hpp"

namespace topk::baselines {
namespace {

TEST(CpuTopK, MatchesSortReferenceSingleThread) {
  const sparse::Csr matrix = test::small_random_matrix(1000, 256, 12.0, 21);
  util::Xoshiro256 rng(22);
  const auto x = sparse::generate_dense_vector(256, rng);
  const auto heap_result = cpu_topk_spmv(matrix, x, 25, 1);
  const auto sort_result = exact_topk_via_sort(matrix, x, 25);
  ASSERT_EQ(heap_result.size(), sort_result.size());
  for (std::size_t i = 0; i < heap_result.size(); ++i) {
    EXPECT_EQ(heap_result[i].index, sort_result[i].index) << "rank " << i;
    EXPECT_DOUBLE_EQ(heap_result[i].value, sort_result[i].value);
  }
}

TEST(CpuTopK, ThreadCountDoesNotChangeResult) {
  const sparse::Csr matrix = test::small_random_matrix(2000, 512, 20.0, 23);
  util::Xoshiro256 rng(24);
  const auto x = sparse::generate_dense_vector(512, rng);
  const auto reference = cpu_topk_spmv(matrix, x, 50, 1);
  for (const int threads : {2, 3, 4, 8}) {
    const auto result = cpu_topk_spmv(matrix, x, 50, threads);
    ASSERT_EQ(result.size(), reference.size()) << threads << " threads";
    for (std::size_t i = 0; i < result.size(); ++i) {
      EXPECT_EQ(result[i].index, reference[i].index)
          << threads << " threads, rank " << i;
    }
  }
}

TEST(CpuTopK, DefaultThreadsWork) {
  const sparse::Csr matrix = test::small_random_matrix(500, 128, 8.0, 25);
  util::Xoshiro256 rng(26);
  const auto x = sparse::generate_dense_vector(128, rng);
  const auto result = cpu_topk_spmv(matrix, x, 10);  // threads = 0 -> auto
  EXPECT_EQ(result.size(), 10u);
}

TEST(CpuTopK, TopKLargerThanRowsReturnsAllRows) {
  const sparse::Csr matrix = test::small_random_matrix(20, 64, 5.0, 27);
  util::Xoshiro256 rng(28);
  const auto x = sparse::generate_dense_vector(64, rng);
  const auto result = cpu_topk_spmv(matrix, x, 100, 2);
  EXPECT_EQ(result.size(), 20u);
  for (std::size_t i = 1; i < result.size(); ++i) {
    EXPECT_GE(result[i - 1].value, result[i].value);
  }
}

TEST(CpuTopK, ThreadClampStaysPositive) {
  // Regression: the thread count used to be clamped via
  // static_cast<int>(matrix.rows()), which goes negative for row
  // counts >= 2^31 and made std::min pick the negative value.  The
  // clamp now stays in uint32 space; extreme thread requests against
  // any row count must degrade to a positive effective count, not
  // wrap, crash, or throw.
  const sparse::Csr matrix = test::small_random_matrix(37, 32, 3.0, 97);
  util::Xoshiro256 rng(98);
  const auto x = sparse::generate_dense_vector(32, rng);
  const auto reference = cpu_topk_spmv(matrix, x, 5, 1);
  for (const int threads :
       {std::numeric_limits<int>::max(), std::numeric_limits<int>::max() - 1,
        1 << 30}) {
    const auto result = cpu_topk_spmv(matrix, x, 5, threads);
    ASSERT_EQ(result.size(), reference.size()) << threads << " threads";
    for (std::size_t i = 0; i < result.size(); ++i) {
      EXPECT_EQ(result[i].index, reference[i].index)
          << threads << " threads, rank " << i;
    }
  }
}

TEST(CpuTopK, MoreThreadsThanRows) {
  const sparse::Csr matrix = test::small_random_matrix(5, 32, 3.0, 29);
  util::Xoshiro256 rng(30);
  const auto x = sparse::generate_dense_vector(32, rng);
  const auto result = cpu_topk_spmv(matrix, x, 3, 16);
  EXPECT_EQ(result.size(), 3u);
}

TEST(CpuTopK, DeterministicTieBreakByRowIndex) {
  // Two identical rows: the lower index must win the last slot.
  sparse::Coo coo(4, 4);
  coo.push_back(0, 0, 0.5f);
  coo.push_back(1, 0, 0.5f);  // tie with row 0
  coo.push_back(2, 1, 0.9f);
  coo.push_back(3, 2, 0.1f);
  const sparse::Csr matrix = sparse::Csr::from_coo(std::move(coo));
  const std::vector<float> x{1.0f, 1.0f, 1.0f, 1.0f};
  const auto result = cpu_topk_spmv(matrix, x, 2, 1);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].index, 2u);
  EXPECT_EQ(result[1].index, 0u);  // not 1: ties break to lower index
}

TEST(CpuTopK, EmptyRowsScoreZero) {
  const sparse::Csr matrix = test::adversarial_matrix(64);
  util::Xoshiro256 rng(31);
  const auto x = sparse::generate_dense_vector(64, rng);
  const auto result = cpu_topk_spmv(matrix, x, static_cast<int>(matrix.rows()), 2);
  EXPECT_DOUBLE_EQ(result.back().value, 0.0);
}

TEST(CpuTopK, ValidatesArguments) {
  const sparse::Csr matrix = test::small_random_matrix(10, 32, 3.0, 33);
  const std::vector<float> x(32, 0.1f);
  const std::vector<float> wrong(16, 0.1f);
  EXPECT_THROW((void)cpu_topk_spmv(matrix, wrong, 5, 1), std::invalid_argument);
  EXPECT_THROW((void)cpu_topk_spmv(matrix, x, 0, 1), std::invalid_argument);
  EXPECT_THROW((void)cpu_topk_spmv(matrix, x, 5, -2), std::invalid_argument);
  EXPECT_THROW((void)exact_topk_via_sort(matrix, wrong, 5),
               std::invalid_argument);
  EXPECT_THROW((void)exact_topk_via_sort(matrix, x, 0), std::invalid_argument);
}

class ThreadSweep : public ::testing::TestWithParam<int> {};

TEST_P(ThreadSweep, AgreesWithSortReference) {
  const sparse::Csr matrix = test::small_random_matrix(
      777, 256, 15.0, 35, sparse::RowDistribution::kGamma);
  util::Xoshiro256 rng(36);
  const auto x = sparse::generate_dense_vector(256, rng);
  const auto result = cpu_topk_spmv(matrix, x, 31, GetParam());
  const auto reference = exact_topk_via_sort(matrix, x, 31);
  ASSERT_EQ(result.size(), reference.size());
  for (std::size_t i = 0; i < result.size(); ++i) {
    EXPECT_EQ(result[i].index, reference[i].index);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadSweep, ::testing::Values(1, 2, 5, 7, 13));

}  // namespace
}  // namespace topk::baselines
