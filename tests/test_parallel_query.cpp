// Tests for the host-side parallel execution paths: multi-threaded
// single queries (threads across core streams) and batched queries
// (threads across queries).
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/accelerator.hpp"
#include "test_helpers.hpp"

namespace topk::core {
namespace {

class ParallelQueryTest : public ::testing::Test {
 protected:
  ParallelQueryTest()
      : matrix_(test::small_random_matrix(800, 256, 12.0, 97)),
        accelerator_(matrix_, DesignConfig::fixed(20, 8)) {}

  sparse::Csr matrix_;
  TopKAccelerator accelerator_;
};

TEST_F(ParallelQueryTest, ThreadCountDoesNotChangeResults) {
  util::Xoshiro256 rng(98);
  const auto x = sparse::generate_dense_vector(256, rng);
  const QueryResult reference = accelerator_.query(x, 32);
  for (const int threads : {0, 2, 3, 8, 16}) {
    QueryOptions options;
    options.threads = threads;
    const QueryResult result = accelerator_.query(x, 32, options);
    ASSERT_EQ(result.entries.size(), reference.entries.size())
        << threads << " threads";
    for (std::size_t i = 0; i < result.entries.size(); ++i) {
      EXPECT_EQ(result.entries[i], reference.entries[i])
          << threads << " threads, rank " << i;
    }
    EXPECT_EQ(result.stats.total_packets, reference.stats.total_packets);
    EXPECT_EQ(result.stats.rows_emitted, reference.stats.rows_emitted);
  }
}

TEST_F(ParallelQueryTest, NegativeThreadsRejected) {
  util::Xoshiro256 rng(99);
  const auto x = sparse::generate_dense_vector(256, rng);
  QueryOptions options;
  options.threads = -1;
  EXPECT_THROW((void)accelerator_.query(x, 8, options), std::invalid_argument);
}

TEST_F(ParallelQueryTest, BatchMatchesIndividualQueries) {
  util::Xoshiro256 rng(100);
  std::vector<std::vector<float>> queries;
  for (int q = 0; q < 7; ++q) {
    queries.push_back(sparse::generate_dense_vector(256, rng));
  }
  QueryOptions options;
  options.threads = 4;
  const auto batch = accelerator_.query_batch(queries, 16, options);
  ASSERT_EQ(batch.size(), queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const QueryResult individual = accelerator_.query(queries[q], 16);
    ASSERT_EQ(batch[q].entries.size(), individual.entries.size());
    for (std::size_t i = 0; i < individual.entries.size(); ++i) {
      EXPECT_EQ(batch[q].entries[i], individual.entries[i])
          << "query " << q << ", rank " << i;
    }
  }
}

TEST_F(ParallelQueryTest, EmptyBatchIsFine) {
  EXPECT_TRUE(accelerator_.query_batch({}, 8).empty());
}

TEST_F(ParallelQueryTest, BatchValidatesUpFront) {
  util::Xoshiro256 rng(101);
  std::vector<std::vector<float>> queries{
      sparse::generate_dense_vector(256, rng)};
  EXPECT_THROW((void)accelerator_.query_batch(queries, 0),
               std::invalid_argument);
  EXPECT_THROW((void)accelerator_.query_batch(queries, 8 * 8 + 1),
               std::invalid_argument);
  queries.push_back(std::vector<float>(17, 0.0f));  // wrong dimension
  EXPECT_THROW((void)accelerator_.query_batch(queries, 8),
               std::invalid_argument);
}

TEST_F(ParallelQueryTest, BatchSmallerThanThreadPool) {
  util::Xoshiro256 rng(102);
  const std::vector<std::vector<float>> queries{
      sparse::generate_dense_vector(256, rng)};
  QueryOptions options;
  options.threads = 16;  // more workers than queries
  const auto batch = accelerator_.query_batch(queries, 8, options);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].entries.size(), 8u);
}

}  // namespace
}  // namespace topk::core
