#include "hbmsim/resource_model.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace topk::hbmsim {
namespace {

using core::DesignConfig;
using core::PacketLayout;

struct TableIIRow {
  DesignConfig design;
  double lut_frac;
  double ff_frac;
  double bram_frac;
  double uram_frac;
  double dsp_frac;
  double clock_mhz;
  double power_w;
};

class TableIIDesigns : public ::testing::TestWithParam<TableIIRow> {};

TEST_P(TableIIDesigns, CalibratedDesignsReproduceTableII) {
  const TableIIRow row = GetParam();
  const PacketLayout layout =
      PacketLayout::solve(1024, row.design.value_bits);
  const ResourceUsage usage = estimate_resources(row.design, layout);
  const ResourceFractions f = fractions(usage);
  EXPECT_NEAR(f.lut, row.lut_frac, 1e-6);
  EXPECT_NEAR(f.ff, row.ff_frac, 1e-6);
  EXPECT_NEAR(f.bram, row.bram_frac, 1e-6);
  EXPECT_NEAR(f.uram, row.uram_frac, 1e-6);
  EXPECT_NEAR(f.dsp, row.dsp_frac, 1e-6);
  EXPECT_NEAR(usage.clock_mhz, row.clock_mhz, 1e-6);
  EXPECT_NEAR(usage.power_w, row.power_w, 1e-6);
  EXPECT_TRUE(fits_device(usage));
}

INSTANTIATE_TEST_SUITE_P(
    PaperRows, TableIIDesigns,
    ::testing::Values(
        TableIIRow{DesignConfig::fixed(20), 0.38, 0.35, 0.20, 0.33, 0.07,
                   253.0, 34.0},
        TableIIRow{DesignConfig::fixed(25), 0.38, 0.36, 0.20, 0.30, 0.11,
                   240.0, 35.0},
        TableIIRow{DesignConfig::fixed(32), 0.35, 0.33, 0.20, 0.27, 0.17,
                   249.0, 35.0},
        TableIIRow{DesignConfig::float32(), 0.44, 0.37, 0.20, 0.26, 0.19,
                   204.0, 45.0}));

TEST(ResourceModel, AnalyticPathTracksCalibrationWithinTolerance) {
  // A 32-core design with a slightly different k leaves the calibration
  // table and takes the analytic path; its estimates should stay close
  // to the Table II figures for the same V.
  DesignConfig design = DesignConfig::fixed(20);
  design.k = 9;
  const PacketLayout layout = PacketLayout::solve(1024, 20);
  const ResourceUsage usage = estimate_resources(design, layout);
  const ResourceFractions f = fractions(usage);
  EXPECT_NEAR(f.lut, 0.38, 0.08);
  EXPECT_NEAR(f.ff, 0.35, 0.08);
  EXPECT_NEAR(f.uram, 0.33, 0.03);
  EXPECT_NEAR(f.dsp, 0.07, 0.03);
  EXPECT_TRUE(fits_device(usage));
}

TEST(ResourceModel, UramFollowsReplicationFormula) {
  // Section IV-A: ceil(B/2) replicas of x per core (2 read ports per
  // URAM), plus buffering.  Halving the cores must halve the URAM.
  const PacketLayout layout = PacketLayout::solve(1024, 20);
  const ResourceUsage at16 =
      estimate_resources(DesignConfig::fixed(20, 16), layout);
  EXPECT_NEAR(at16.uram, 16.0 * (8 + 2), 1e-9);  // ceil(15/2) = 8
  const ResourceUsage at8 =
      estimate_resources(DesignConfig::fixed(20, 8), layout);
  EXPECT_NEAR(at16.uram / at8.uram, 2.0, 1e-9);
}

TEST(ResourceModel, DspGrowsWithValueWidth) {
  // Across the paper's V range the per-lane DSP cost grows faster than
  // the packet capacity shrinks.
  double previous = 0.0;
  for (const int bits : {20, 25, 32}) {
    const DesignConfig design = DesignConfig::fixed(bits, 16);
    const PacketLayout layout = PacketLayout::solve(1024, bits);
    const double dsp = estimate_resources(design, layout).dsp;
    EXPECT_GE(dsp, previous) << "V=" << bits;
    previous = dsp;
  }
}

TEST(ResourceModel, LutGrowsWithKandR) {
  const PacketLayout layout = PacketLayout::solve(1024, 20);
  DesignConfig small = DesignConfig::fixed(20, 16);
  small.k = 4;
  small.rows_per_packet = 4;
  DesignConfig large = DesignConfig::fixed(20, 16);
  large.k = 16;
  large.rows_per_packet = 8;
  EXPECT_LT(estimate_resources(small, layout).lut,
            estimate_resources(large, layout).lut);
}

TEST(ResourceModel, HalvingRSavesTopKLogic) {
  // Section IV-B: tracking r < B rows per packet saves resources (the
  // paper reports up to 50% savings in the Top-K update stage).
  const PacketLayout layout = PacketLayout::solve(1024, 20);
  DesignConfig full = DesignConfig::fixed(20, 16);
  full.rows_per_packet = layout.capacity;  // r = B
  DesignConfig half = DesignConfig::fixed(20, 16);
  half.rows_per_packet = layout.capacity / 2;
  const double lut_full = estimate_resources(full, layout).lut;
  const double lut_half = estimate_resources(half, layout).lut;
  EXPECT_LT(lut_half, lut_full);
}

TEST(ResourceModel, SixtyFourCoreDesignWouldStillFit) {
  // Section V: "we could easily place more cores given our design's
  // low resource footprint" (the 32-channel HBM is the limit, not the
  // fabric).
  const PacketLayout layout = PacketLayout::solve(1024, 20);
  const ResourceUsage usage =
      estimate_resources(DesignConfig::fixed(20, 64), layout);
  EXPECT_TRUE(fits_device(usage));
}

TEST(ResourceModel, FloatCostsMoreLogicThanFixed) {
  const PacketLayout layout = PacketLayout::solve(1024, 32);
  DesignConfig fixed32 = DesignConfig::fixed(32, 16);
  DesignConfig float32 = DesignConfig::float32(16);
  const ResourceUsage fixed_usage = estimate_resources(fixed32, layout);
  const ResourceUsage float_usage = estimate_resources(float32, layout);
  EXPECT_GT(float_usage.lut, fixed_usage.lut);
  EXPECT_GT(float_usage.dsp, fixed_usage.dsp);
  EXPECT_GT(float_usage.power_w, fixed_usage.power_w);
}

TEST(ResourceModel, FractionsDivideByDeviceTotals) {
  ResourceUsage usage;
  usage.lut = 1'097'419 / 2.0;
  usage.uram = 480;
  const ResourceFractions f = fractions(usage);
  EXPECT_NEAR(f.lut, 0.5, 1e-12);
  EXPECT_NEAR(f.uram, 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(f.dsp, 0.0);
}

}  // namespace
}  // namespace topk::hbmsim
