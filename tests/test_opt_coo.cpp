#include "core/opt_coo.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "test_helpers.hpp"

namespace topk::core {
namespace {

TEST(OptCooLayout, MatchesFigure3MiddleRow) {
  // Figure 3: with y < 1024 (10 bits) and 20-bit values, packing the
  // 32-bit row index costs 62 bits per entry -> 8 entries, "496 bit,
  // 8 values".
  const OptCooLayout layout = OptCooLayout::solve(0xFFFFFFFFu, 1024, 20);
  EXPECT_EQ(layout.row_bits, 32);
  EXPECT_EQ(layout.col_bits, 10);
  EXPECT_EQ(layout.capacity, 8);
  EXPECT_EQ(layout.capacity * layout.bits_per_entry(), 496);
}

TEST(OptCooLayout, RowBitsShrinkWithN) {
  // A 1e6-row matrix needs only 20 row bits -> 10 entries per packet;
  // still far below BS-CSR's 15.
  const OptCooLayout layout = OptCooLayout::solve(1'000'000, 1024, 20);
  EXPECT_EQ(layout.row_bits, 20);
  EXPECT_EQ(layout.capacity, 512 / 50);
  EXPECT_LT(layout.capacity, 15);
}

TEST(OptCooLayout, SolveRejectsBadArguments) {
  EXPECT_THROW((void)OptCooLayout::solve(0, 4, 20), std::invalid_argument);
  EXPECT_THROW((void)OptCooLayout::solve(4, 0, 20), std::invalid_argument);
  EXPECT_THROW((void)OptCooLayout::solve(4, 4, 1), std::invalid_argument);
  EXPECT_THROW((void)OptCooLayout::solve(4, 4, 20, 100), std::invalid_argument);
  EXPECT_THROW((void)OptCooLayout::solve(0xFFFFFFFFu, 0xFFFFFFFFu, 32, 64),
               std::invalid_argument);
}

TEST(OptCooEncode, PacketCountAndBytes) {
  const sparse::Csr matrix = test::small_random_matrix(100, 256, 10.0, 121);
  const OptCooLayout layout = OptCooLayout::solve(100, 256, 20);
  const OptCooMatrix encoded = encode_opt_coo(matrix, layout, ValueKind::kFixed);
  const std::uint64_t expected_packets =
      (matrix.nnz() + layout.capacity - 1) / layout.capacity;
  EXPECT_EQ(encoded.num_packets(), expected_packets);
  EXPECT_EQ(encoded.stream_bytes(), expected_packets * 64);
  EXPECT_EQ(encoded.nnz(), matrix.nnz());
}

TEST(OptCooEncode, Validates) {
  const sparse::Csr matrix = test::small_random_matrix(100, 256, 10.0, 122);
  const OptCooLayout small = OptCooLayout::solve(50, 256, 20);  // row bits short
  EXPECT_THROW((void)encode_opt_coo(matrix, small, ValueKind::kFixed),
               std::invalid_argument);
  const OptCooLayout ok = OptCooLayout::solve(100, 256, 20);
  EXPECT_THROW((void)encode_opt_coo(matrix, ok, ValueKind::kFloat32),
               std::invalid_argument);
}

struct OptCooParam {
  std::uint32_t rows;
  std::uint32_t cols;
  int val_bits;
  ValueKind kind;
  int k;
};

class OptCooOracle : public ::testing::TestWithParam<OptCooParam> {};

TEST_P(OptCooOracle, MatchesBitExactReference) {
  const OptCooParam param = GetParam();
  const sparse::Csr matrix =
      param.kind == ValueKind::kSignedFixed
          ? test::small_signed_matrix(param.rows, param.cols, 12.0,
                                      300 + param.rows)
          : test::small_random_matrix(param.rows, param.cols, 12.0,
                                      300 + param.rows);
  const OptCooLayout layout =
      OptCooLayout::solve(param.rows, param.cols, param.val_bits);
  const OptCooMatrix encoded = encode_opt_coo(matrix, layout, param.kind);
  util::Xoshiro256 rng(301 + param.k);
  const auto x = param.kind == ValueKind::kSignedFixed
                     ? test::signed_query(param.cols, rng)
                     : sparse::generate_dense_vector(param.cols, rng);

  const KernelResult result = run_topk_spmv_opt_coo(encoded, x, param.k);
  const auto scores =
      test::reference_scores(matrix, x, param.kind, param.val_bits);
  test::expect_exact_topk(result.topk, scores, param.k);
  EXPECT_EQ(result.stats.rows_emitted, matrix.rows());  // no empty rows here
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OptCooOracle,
    ::testing::Values(OptCooParam{300, 512, 20, ValueKind::kFixed, 8},
                      OptCooParam{300, 512, 32, ValueKind::kFixed, 8},
                      OptCooParam{300, 512, 32, ValueKind::kFloat32, 8},
                      OptCooParam{200, 1024, 25, ValueKind::kFixed, 16},
                      OptCooParam{200, 256, 20, ValueKind::kSignedFixed, 8}));

TEST(OptCooVsBsCsr, SameResultsLowerIntensity) {
  // The two formats must retrieve identical Top-K sets while BS-CSR
  // streams significantly fewer bytes — the measured Figure 3/6a gap.
  const sparse::Csr matrix = test::small_random_matrix(2000, 1024, 20.0, 123);
  const OptCooLayout coo_layout = OptCooLayout::solve(2000, 1024, 20);
  const PacketLayout bscsr_layout = PacketLayout::solve(1024, 20);
  const auto coo = encode_opt_coo(matrix, coo_layout, ValueKind::kFixed);
  const auto bscsr = encode_bscsr(matrix, bscsr_layout, ValueKind::kFixed);

  util::Xoshiro256 rng(124);
  const auto x = sparse::generate_dense_vector(1024, rng);
  const KernelResult from_coo = run_topk_spmv_opt_coo(coo, x, 10);
  const KernelResult from_bscsr =
      run_topk_spmv(bscsr, x, 10, bscsr_layout.capacity);
  ASSERT_EQ(from_coo.topk.size(), from_bscsr.topk.size());
  for (std::size_t i = 0; i < from_coo.topk.size(); ++i) {
    EXPECT_EQ(from_coo.topk[i], from_bscsr.topk[i]) << "rank " << i;
  }

  const double ratio = static_cast<double>(coo.stream_bytes()) /
                       static_cast<double>(bscsr.stream_bytes());
  // 15 entries/packet (BS-CSR) vs 12 (optimized COO at N=2000, 11 row
  // bits) -> 1.25x more traffic; the gap widens with N (1.5x at
  // N=1e6, 1.9x at N=2^32 — Figure 3's 8-entry case).
  EXPECT_GT(ratio, 1.2);
  EXPECT_LT(ratio, 1.35);
}

TEST(OptCooKernel, ValidatesArguments) {
  const sparse::Csr matrix = test::small_random_matrix(50, 64, 5.0, 125);
  const auto encoded = encode_opt_coo(
      matrix, OptCooLayout::solve(50, 64, 20), ValueKind::kFixed);
  const std::vector<float> wrong(32, 0.1f);
  const std::vector<float> x(64, 0.1f);
  EXPECT_THROW((void)run_topk_spmv_opt_coo(encoded, wrong, 8),
               std::invalid_argument);
  EXPECT_THROW((void)run_topk_spmv_opt_coo(encoded, x, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace topk::core
