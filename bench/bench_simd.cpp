// Single-thread speedup of the vectorized cpu-simd backend over the
// scalar cpu-heap baseline.
//
// The cpu-simd kernel screens every row with a wide f32 scan and
// rescores only the rows whose rigorous error interval reaches the
// running k-th best (simd/topk_simd.hpp), so its results are
// bit-identical to cpu-heap while the hot loop runs 8/16-wide.  This
// bench quantifies that trade on two matrix shapes:
//
//   uniform-512   cols = 512, ~24 nnz/row scattered uniformly — the
//                 layout picks the gather strategy (dense blocks would
//                 be mostly padding);
//   dense-64      cols = 64, ~32 nnz/row — high block occupancy, the
//                 layout picks the blocked strategy (contiguous FMAs,
//                 no gathers).
//
// For each shape it builds cpu-heap and cpu-simd over the same CSR,
// checks every query's entries for bit-identity (always fatal on
// mismatch), and reports the best-of-`repeats` mean single-thread
// query time.  The acceptance number is the uniform-512 speedup at the
// default scale (>= 2x) — the gate CI runs via the repo's Release leg.
//
//   $ ./bench_simd [--quick] [--full] [--queries=N] [--seed=N]
//                  [--json=FILE]
//
// --quick shrinks the matrices for CI smoke runs (the speedup is
// printed but not gated — at tiny sizes the heap fits in L1 and the
// measurement is mostly loop overhead).
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "index/backends.hpp"
#include "simd/topk_simd.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

struct ShapeConfig {
  const char* name;
  std::uint32_t rows_default;
  std::uint32_t cols;
  double mean_nnz;
};

}  // namespace

int main(int argc, char** argv) {
  const topk::bench::BenchArgs args = topk::bench::parse_args(argc, argv);

  const int query_count = args.queries > 0 ? args.queries : (args.quick ? 3 : 10);
  const int repeats = args.quick ? 2 : 3;
  constexpr int kTopK = 50;

  std::cout << "cpu-simd vs cpu-heap, single thread, top-" << kTopK << ", "
            << query_count << " queries, best of " << repeats
            << " passes (dispatch: "
            << topk::simd::to_string(topk::simd::dispatch_level()) << ")\n\n";

  topk::util::TablePrinter table({"Shape", "Rows", "Strategy", "cpu-heap (ms)",
                                  "cpu-simd (ms)", "Rescored/query",
                                  "Speedup"});
  std::vector<topk::bench::JsonRecord> records;
  double gated_speedup = 0.0;

  const ShapeConfig shapes[] = {
      {"uniform-512", 40'000, 512, 24.0},
      {"dense-64", 40'000, 64, 32.0},
  };
  for (const ShapeConfig& shape : shapes) {
    topk::sparse::GeneratorConfig generator;
    generator.rows = args.quick ? 4'000
                                : (args.full ? 10 * shape.rows_default
                                             : shape.rows_default);
    generator.cols = shape.cols;
    generator.mean_nnz_per_row = shape.mean_nnz;
    generator.seed = args.seed;
    const auto matrix = std::make_shared<const topk::sparse::Csr>(
        topk::sparse::generate_matrix(generator));

    const topk::index::CpuHeapIndex heap(matrix);
    const topk::index::CpuSimdIndex simd(matrix);
    const std::string strategy =
        simd.layout().strategy() == topk::simd::Strategy::kBlocked ? "blocked"
                                                                   : "gather";

    topk::util::Xoshiro256 rng(args.seed + 17);
    std::vector<std::vector<float>> queries;
    for (int q = 0; q < query_count; ++q) {
      queries.push_back(
          topk::sparse::generate_dense_vector(generator.cols, rng));
    }

    // Identity first (and as warm-up): cpu-simd is exact by
    // construction, so a single differing entry is a bench failure at
    // any scale.
    std::uint64_t rescored = 0;
    for (const auto& x : queries) {
      const auto expected = heap.query(x, kTopK);
      const auto actual = simd.query(x, kTopK);
      if (actual.entries != expected.entries) {
        std::cerr << "FAIL: cpu-simd disagrees with cpu-heap on shape "
                  << shape.name << "\n";
        return 1;
      }
      rescored += topk::index::simd_stats(actual)->rows_rescored;
    }

    double heap_seconds = 1e30;
    double simd_seconds = 1e30;
    for (int r = 0; r < repeats; ++r) {
      topk::util::WallTimer heap_timer;
      for (const auto& x : queries) {
        (void)heap.query(x, kTopK);
      }
      heap_seconds = std::min(heap_seconds, heap_timer.seconds());
      topk::util::WallTimer simd_timer;
      for (const auto& x : queries) {
        (void)simd.query(x, kTopK);
      }
      simd_seconds = std::min(simd_seconds, simd_timer.seconds());
    }
    const double per_query = static_cast<double>(query_count);
    const double speedup = heap_seconds / simd_seconds;
    if (std::string(shape.name) == "uniform-512") {
      gated_speedup = speedup;
    }
    table.add_row(
        {shape.name, std::to_string(matrix->rows()), strategy,
         topk::util::format_double(heap_seconds * 1e3 / per_query, 3),
         topk::util::format_double(simd_seconds * 1e3 / per_query, 3),
         std::to_string(rescored / static_cast<std::uint64_t>(query_count)),
         topk::util::format_double(speedup, 2) + "x"});
    records.push_back(
        topk::bench::JsonRecord()
            .add("shape", shape.name)
            .add("rows", static_cast<std::uint64_t>(matrix->rows()))
            .add("strategy", strategy)
            .add("isa", topk::simd::to_string(topk::simd::dispatch_level()))
            .add("heap_ms_per_query", heap_seconds * 1e3 / per_query)
            .add("simd_ms_per_query", simd_seconds * 1e3 / per_query)
            .add("rescored_per_query",
                 rescored / static_cast<std::uint64_t>(query_count))
            .add("speedup", speedup));
  }
  table.print(std::cout);

  std::cout << "\nSingle-thread speedup on uniform-512: "
            << topk::util::format_double(gated_speedup, 2)
            << "x (acceptance target: >= 2x at the default scale"
            << (args.quick ? "; rerun without --quick for that scale" : "")
            << ")\n";
  topk::bench::write_json_results(args, "bench_simd", records);
  if (!args.quick && gated_speedup < 2.0) {
    std::cerr << "FAIL: cpu-simd is less than 2x faster than cpu-heap on "
                 "the default uniform-512 matrix\n";
    return 1;
  }
  return 0;
}
