// Replicated-shard throughput sweep: queries/sec at R = 1/2/4 replicas
// per shard under concurrent QueryEngine load, with a bit-identicality
// gate against the flat backend.
//
// What replication buys is device throughput, not host FLOPs: a
// replica is one single-occupancy accelerator serving one (query,
// shard) cell at a time (the paper's board runs one Top-K SpMV pass
// per query), so R replicas of a shard serve R cells concurrently.
// This bench models that explicitly, in the same spirit as the repo's
// modelled FPGA times: every replica is wrapped in a single-occupancy
// device — a mutex held for the real inner query plus a fixed modelled
// device dwell — so the measured queries/sec scales with the device
// count rather than this machine's core count (the dwell is slept, not
// burned, which keeps the scaling visible on any host).  The inner
// compute is real cpu-heap work and the results pass through the full
// scatter/route/failover/gather path, so the bit-identicality gate is
// end to end: every result from every client must equal the flat
// cpu-heap answer, at every replica count.
//
// Eight client threads issue batches through one serve::QueryEngine
// (the acceptance setup: 8 concurrent engine clients on the default
// 120k-row collection), and least-loaded routing spreads the cells
// over the replica devices by live in-flight counts.
//
//   $ ./bench_replication [--quick] [--full] [--queries=N] [--seed=N]
//
// The acceptance number is >= 1.5x batch throughput at R=2 vs R=1 at
// the default scale (the bench exits non-zero below it, and always
// exits non-zero on any bit mismatch).  --quick shrinks the matrix,
// dwell and repeat count for CI smoke runs (printed but not gated);
// --queries overrides the per-client batch iteration count.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "index/registry.hpp"
#include "serve/query_engine.hpp"
#include "shard/sharded_index.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

constexpr int kShards = 4;
constexpr int kClients = 8;
constexpr int kClientBatch = 6;  ///< queries per query_batch() call
constexpr int kTopK = 50;

/// Single-occupancy replica device: the mutex is the device (one cell
/// in flight), the dwell is the modelled per-query device time.  Real
/// inner compute runs under the lock, so a device is busy for
/// (compute + dwell) per cell.
class SingleOccupancyDevice final : public topk::index::SimilarityIndex {
 public:
  SingleOccupancyDevice(
      std::shared_ptr<const topk::index::SimilarityIndex> inner,
      double dwell_seconds)
      : inner_(std::move(inner)), dwell_seconds_(dwell_seconds) {}

  [[nodiscard]] topk::index::QueryResult query(
      std::span<const float> x, int top_k,
      const topk::index::QueryOptions& options = {}) const override {
    std::lock_guard<std::mutex> lock(busy_);
    auto result = inner_->query(x, top_k, options);
    std::this_thread::sleep_for(
        std::chrono::duration<double>(dwell_seconds_));
    return result;
  }
  [[nodiscard]] std::uint32_t rows() const noexcept override {
    return inner_->rows();
  }
  [[nodiscard]] std::uint32_t cols() const noexcept override {
    return inner_->cols();
  }
  [[nodiscard]] topk::index::IndexDescription describe() const override {
    return inner_->describe();
  }
  [[nodiscard]] int max_top_k() const noexcept override {
    return inner_->max_top_k();
  }

 private:
  std::shared_ptr<const topk::index::SimilarityIndex> inner_;
  double dwell_seconds_;
  mutable std::mutex busy_;
};

/// R device replicas per shard, each its own single-occupancy wrapper
/// around the shard's (shared, thread-compatible) inner index — the
/// images are byte-identical, so sharing the in-memory copy models R
/// devices loaded from one deployment image.
std::shared_ptr<topk::shard::ShardedIndex> make_device_index(
    const topk::shard::ShardedIndex& base, int replicas, double dwell_seconds) {
  std::vector<topk::shard::Shard> shards;
  for (std::size_t s = 0; s < base.shard_count(); ++s) {
    std::vector<std::shared_ptr<const topk::index::SimilarityIndex>> devices;
    devices.reserve(static_cast<std::size_t>(replicas));
    for (int r = 0; r < replicas; ++r) {
      devices.push_back(std::make_shared<SingleOccupancyDevice>(
          base.shard(s).replicas.front(), dwell_seconds));
    }
    shards.push_back(topk::shard::Shard{base.shard(s).range, std::move(devices)});
  }
  return std::make_shared<topk::shard::ShardedIndex>(
      std::move(shards), "sharded-devices-x" + std::to_string(replicas),
      topk::shard::RoutingPolicy::kLeastLoaded);
}

}  // namespace

int main(int argc, char** argv) {
  const topk::bench::BenchArgs args = topk::bench::parse_args(argc, argv);

  topk::sparse::GeneratorConfig generator;
  generator.rows = args.quick ? 20'000 : (args.full ? 1'000'000 : 120'000);
  generator.cols = 512;
  generator.mean_nnz_per_row = 16.0;
  generator.seed = args.seed;
  const auto matrix = std::make_shared<const topk::sparse::Csr>(
      topk::sparse::generate_matrix(generator));

  // Modelled per-query device dwell.  Sized well above one shard's
  // real cpu-heap compute on this collection so the sweep measures
  // device occupancy (what replication scales), not host cores.
  const double dwell_seconds = args.quick ? 0.008 : 0.025;
  const int iterations = args.queries > 0 ? args.queries : (args.quick ? 2 : 3);

  // One unreplicated base index; every R-config wraps its shards in
  // fresh device replicas.  Flat cpu-heap is the bit-identicality
  // reference for every result of every client.
  const auto base = topk::shard::ShardedIndexBuilder()
                        .matrix(matrix)
                        .shards(kShards)
                        .inner_backend("cpu-heap")
                        .build();
  const auto flat = topk::index::make_index("cpu-heap", matrix);

  topk::util::Xoshiro256 rng(args.seed + 11);
  std::vector<std::vector<std::vector<float>>> client_queries(kClients);
  std::vector<std::vector<std::vector<topk::core::TopKEntry>>> reference(
      kClients);
  for (int c = 0; c < kClients; ++c) {
    for (int q = 0; q < kClientBatch; ++q) {
      client_queries[c].push_back(
          topk::sparse::generate_dense_vector(generator.cols, rng));
      reference[c].push_back(
          flat->query(client_queries[c].back(), kTopK).entries);
    }
  }

  const int total_queries = kClients * kClientBatch * iterations;
  std::cout << "Replication sweep: " << matrix->rows() << " rows, "
            << matrix->nnz() << " nnz, " << kShards
            << " cpu-heap shards behind single-occupancy replica devices ("
            << topk::util::format_double(dwell_seconds * 1e3, 0)
            << " ms modelled dwell each), top-" << kTopK << "\n"
            << kClients << " concurrent engine clients x " << kClientBatch
            << "-query batches x " << iterations << " iterations = "
            << total_queries << " queries per config, least-loaded routing\n\n";

  // Enough pool workers that every client batch fans out fully; the
  // executors mostly sleep in device dwell, so they are cheap.
  topk::util::shared_pool().ensure_workers(kClients * kClientBatch + kClients);

  topk::util::TablePrinter table(
      {"Replicas", "Devices", "Wall (s)", "Queries/s", "Speedup", "Identical"});
  bool all_identical = true;
  double qps_at_1 = 0.0;
  double speedup_at_2 = 0.0;
  std::vector<topk::bench::JsonRecord> records;

  for (const int replicas : {1, 2, 4}) {
    const auto devices = make_device_index(*base, replicas, dwell_seconds);
    topk::serve::QueryEngine engine(
        devices, {.workers = kClientBatch,
                  .max_pending = static_cast<std::size_t>(total_queries),
                  .latency_window = 1024});

    std::atomic<int> mismatches{0};
    topk::util::WallTimer timer;
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (int i = 0; i < iterations; ++i) {
          const auto results = engine.query_batch(client_queries[c], kTopK);
          for (int q = 0; q < kClientBatch; ++q) {
            if (results[static_cast<std::size_t>(q)].entries !=
                reference[c][static_cast<std::size_t>(q)]) {
              mismatches.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      });
    }
    for (auto& client : clients) {
      client.join();
    }
    const double wall_seconds = timer.seconds();
    const double qps = total_queries / wall_seconds;
    if (replicas == 1) {
      qps_at_1 = qps;
    }
    const double speedup = qps_at_1 > 0.0 ? qps / qps_at_1 : 0.0;
    if (replicas == 2) {
      speedup_at_2 = speedup;
    }
    const bool identical = mismatches.load() == 0;
    if (!identical) {
      std::cerr << "FAIL: " << mismatches.load() << " results at R="
                << replicas << " differ from the flat cpu-heap reference\n";
      all_identical = false;
    }
    table.add_row({std::to_string(replicas),
                   std::to_string(kShards * replicas),
                   topk::util::format_double(wall_seconds, 2),
                   topk::util::format_double(qps, 1),
                   topk::util::format_double(speedup, 2) + "x",
                   identical ? "yes" : "NO"});
    records.emplace_back(topk::bench::JsonRecord()
                             .add("replicas", replicas)
                             .add("devices", kShards * replicas)
                             .add("wall_seconds", wall_seconds)
                             .add("queries_per_second", qps)
                             .add("speedup", speedup)
                             .add("identical", identical));
  }
  table.print(std::cout);

  std::cout << "\nBatch throughput speedup at R=2 vs R=1 under " << kClients
            << " concurrent clients: "
            << topk::util::format_double(speedup_at_2, 2)
            << "x (acceptance target: >= 1.5x at the default scale"
            << (args.quick || args.full
                    ? "; rerun without --quick/--full for the gated config"
                    : "")
            << ")\n";
  std::cout << "All results bit-identical to flat cpu-heap: "
            << (all_identical ? "yes" : "NO") << "\n";
  records.emplace_back(topk::bench::JsonRecord()
                           .add("summary", "gate")
                           .add("speedup_at_2", speedup_at_2)
                           .add("all_identical", all_identical));
  topk::bench::write_json_results(args, "replication", records);
  if (!all_identical) {
    return 1;
  }
  if (!args.quick && !args.full && speedup_at_2 < 1.5) {
    std::cerr << "FAIL: R=2 batch throughput is below 1.5x of R=1\n";
    return 1;
  }
  return 0;
}
