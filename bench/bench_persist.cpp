// Cold-encode vs warm-load sweep for persistent shard deployments.
//
// The paper's premise is that encoding a BS-CSR image costs far more
// than streaming it; this bench quantifies the host-scale consequence
// for the shard tier.  For each shard count it measures, on one
// matrix:
//
//   Cold build   ShardedIndexBuilder: slice rows + encode every
//                fpga-sim shard's per-core BS-CSR streams;
//   Save         persist::save_deployment (write images + SHA-256);
//   Warm load    persist::load_deployment in the same process but
//                purely from the on-disk images: digest verification,
//                stream-shape audit, TopKAccelerator::from_parts — no
//                encoder.
//
// The acceptance number is the cold/warm ratio at 4 fpga-sim shards on
// the default matrix (>= 2x), and the warm index must reproduce the
// cold index's results bit for bit — the bench exits non-zero if it
// ever disagrees, and (at default scale) if the speedup bar is missed.
//
//   $ ./bench_persist [--quick] [--full] [--queries=N] [--seed=N]
//
// --quick shrinks the matrix for CI smoke runs (the speedup is still
// printed but not gated — tiny images measure filesystem latency, not
// encoder cost).
#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "persist/deployment.hpp"
#include "shard/sharded_index.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  const topk::bench::BenchArgs args = topk::bench::parse_args(argc, argv);

  topk::sparse::GeneratorConfig generator;
  generator.rows = args.quick ? 20'000 : (args.full ? 1'000'000 : 120'000);
  generator.cols = 512;
  generator.mean_nnz_per_row = 16.0;
  generator.seed = args.seed;
  const auto matrix = std::make_shared<const topk::sparse::Csr>(
      topk::sparse::generate_matrix(generator));

  topk::index::IndexOptions options;
  options.design = topk::core::DesignConfig::fixed(20, 8);

  const int repeats = args.queries > 0 ? args.queries : (args.quick ? 2 : 3);
  const auto root = std::filesystem::temp_directory_path() /
                    ("topk_bench_persist_" + std::to_string(generator.rows));
  std::filesystem::remove_all(root);

  std::cout << "Persistence sweep: " << matrix->rows() << " rows, "
            << matrix->nnz() << " nnz, fpga-sim shards ("
            << options.design.name() << " each), best of " << repeats
            << " loads\n\n";

  topk::util::TablePrinter table({"Shards", "Cold build (ms)", "Save (ms)",
                                  "Warm load (ms)", "Speedup", "Images (MB)",
                                  "Identical"});
  bool all_identical = true;
  double speedup_at_4 = 0.0;

  topk::util::Xoshiro256 rng(args.seed + 7);
  std::vector<std::vector<float>> queries;
  for (int q = 0; q < 3; ++q) {
    queries.push_back(topk::sparse::generate_dense_vector(generator.cols, rng));
  }
  constexpr int kTopK = 50;

  for (const int shards : {1, 2, 4, 8}) {
    topk::util::WallTimer cold_timer;
    const auto cold = topk::shard::ShardedIndexBuilder()
                          .matrix(matrix)
                          .shards(shards)
                          .inner_backend("fpga-sim")
                          .inner_options(options)
                          .build();
    const double cold_seconds = cold_timer.seconds();

    const auto dir = root / ("shards-" + std::to_string(shards));
    topk::util::WallTimer save_timer;
    topk::persist::save_deployment(*cold, dir);
    const double save_seconds = save_timer.seconds();

    std::uint64_t image_bytes = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      image_bytes += std::filesystem::file_size(entry.path());
    }

    double warm_seconds = 1e30;
    std::shared_ptr<topk::shard::ShardedIndex> warm;
    for (int r = 0; r < repeats; ++r) {
      topk::util::WallTimer warm_timer;
      warm = topk::shard::ShardedIndexBuilder::from_deployment(dir);
      warm_seconds = std::min(warm_seconds, warm_timer.seconds());
    }

    bool identical = true;
    for (const auto& x : queries) {
      identical = identical && warm->query(x, kTopK).entries ==
                                   cold->query(x, kTopK).entries;
    }
    if (!identical) {
      std::cerr << "FAIL: warm-loaded index differs from the cold index at "
                << shards << " shards\n";
      all_identical = false;
    }
    const double speedup = cold_seconds / warm_seconds;
    if (shards == 4) {
      speedup_at_4 = speedup;
    }
    table.add_row({std::to_string(shards),
                   topk::util::format_double(cold_seconds * 1e3, 1),
                   topk::util::format_double(save_seconds * 1e3, 1),
                   topk::util::format_double(warm_seconds * 1e3, 1),
                   topk::util::format_double(speedup, 2) + "x",
                   topk::util::format_double(
                       static_cast<double>(image_bytes) / (1024.0 * 1024.0), 1),
                   identical ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::filesystem::remove_all(root);

  std::cout << "\nWarm-load speedup at 4 fpga-sim shards: "
            << topk::util::format_double(speedup_at_4, 2)
            << "x (acceptance target: >= 2x at the default scale"
            << (args.quick ? "; rerun without --quick for that scale" : "")
            << ")\n";
  std::cout << "Warm indexes bit-identical to cold: "
            << (all_identical ? "yes" : "NO") << "\n";
  if (!all_identical) {
    return 1;
  }
  if (!args.quick && speedup_at_4 < 2.0) {
    std::cerr << "FAIL: warm load is less than 2x faster than the cold "
                 "encode at 4 shards\n";
    return 1;
  }
  return 0;
}
