// Ablation: the BS-CSR format itself (paper section III-B, Figure 3).
// Sweeps the value width V, reporting packet capacity B, operational
// intensity, stream footprint versus naive COO / optimized COO / CSR,
// and the modelled throughput impact — quantifying the paper's "2 to 3
// times as many non-zeros per packet" claim across the design space.
#include <iostream>

#include "bench_common.hpp"
#include "core/accelerator.hpp"
#include "core/bscsr.hpp"
#include "core/opt_coo.hpp"
#include "hbmsim/timing_model.hpp"
#include "util/bitio.hpp"
#include "util/table.hpp"

namespace {

using topk::core::DesignConfig;
using topk::core::encode_bscsr;
using topk::core::PacketLayout;
using topk::core::ValueKind;
using topk::util::format_bytes;
using topk::util::format_double;

}  // namespace

int main(int argc, char** argv) {
  const topk::bench::BenchArgs args = topk::bench::parse_args(argc, argv);

  const auto matrix = topk::bench::make_table3_matrix(
      args, 0.5e7, 1024, 20.0, topk::sparse::RowDistribution::kUniform, 3);
  std::cout << "BS-CSR ablation on a Table III matrix: " << matrix.rows()
            << " rows, " << matrix.nnz() << " nnz, M = " << matrix.cols()
            << ".\n\n";

  std::cout << "[V sweep] capacity, intensity and footprint per value "
               "width:\n";
  topk::util::TablePrinter sweep({"V [bits]", "B", "OI [nnz/B]",
                                  "BS-CSR size", "vs naive COO", "vs CSR",
                                  "Modelled latency (32C)"});
  for (const int val_bits : {8, 10, 12, 16, 20, 25, 32}) {
    const PacketLayout layout = PacketLayout::solve(matrix.cols(), val_bits);
    const auto encoded = encode_bscsr(matrix, layout, ValueKind::kFixed);
    const DesignConfig design = DesignConfig::fixed(val_bits);
    const std::uint64_t per_core =
        encoded.num_packets() / 32 + 1;  // even split approximation
    const auto timing = topk::hbmsim::estimate_query_time(
        design, layout, per_core, matrix.nnz());
    sweep.add_row(
        {std::to_string(val_bits), std::to_string(layout.capacity),
         format_double(layout.nnz_per_byte(), 3),
         format_bytes(static_cast<double>(encoded.stream_bytes())),
         format_double(static_cast<double>(matrix.nnz() * 12) /
                           static_cast<double>(encoded.stream_bytes()),
                       2) +
             "x",
         format_double(static_cast<double>(matrix.csr_bytes()) /
                           static_cast<double>(encoded.stream_bytes()),
                       2) +
             "x",
         format_double(timing.seconds * 1e3, 3) + " ms"});
  }
  sweep.print(std::cout);

  std::cout << "\n[Figure 3 comparison] the three layouts at V = 20 "
               "(optimized COO measured with its own codec + kernel):\n";
  const PacketLayout layout20 = PacketLayout::solve(matrix.cols(), 20);
  const auto encoded20 = encode_bscsr(matrix, layout20, ValueKind::kFixed);
  const auto coo_layout =
      topk::core::OptCooLayout::solve(matrix.rows(), matrix.cols(), 20);
  const auto coo20 = topk::core::encode_opt_coo(matrix, coo_layout,
                                                ValueKind::kFixed);
  topk::util::TablePrinter formats({"Format", "Bytes", "nnz per 512b packet"});
  formats.add_row({"Naive COO (3 x 32b)",
                   format_bytes(static_cast<double>(matrix.nnz() * 12)), "5"});
  formats.add_row({"Optimized COO (packed)",
                   format_bytes(static_cast<double>(coo20.stream_bytes())),
                   std::to_string(coo_layout.capacity)});
  formats.add_row({"CSR (64b ptr + 32b idx + 32b val)",
                   format_bytes(static_cast<double>(matrix.csr_bytes())),
                   "n/a (not streamable)"});
  formats.add_row({"BS-CSR (this work)",
                   format_bytes(static_cast<double>(encoded20.stream_bytes())),
                   std::to_string(layout20.capacity)});
  formats.print(std::cout);

  // Cross-check: both streaming kernels retrieve the same Top-10.
  topk::util::Xoshiro256 rng(args.seed + 9);
  const auto x = topk::sparse::generate_dense_vector(matrix.cols(), rng);
  const auto from_bscsr =
      topk::core::run_topk_spmv(encoded20, x, 10, layout20.capacity);
  const auto from_coo = topk::core::run_topk_spmv_opt_coo(coo20, x, 10);
  bool identical = from_bscsr.topk.size() == from_coo.topk.size();
  for (std::size_t i = 0; identical && i < from_coo.topk.size(); ++i) {
    identical = from_bscsr.topk[i] == from_coo.topk[i];
  }
  std::cout << "Kernel cross-check (BS-CSR vs optimized COO Top-10): "
            << (identical ? "identical" : "MISMATCH") << "; BS-CSR streams "
            << format_double(static_cast<double>(coo20.stream_bytes()) /
                                 static_cast<double>(encoded20.stream_bytes()),
                             2)
            << "x fewer bytes.\n";

  std::cout << "\n[Encoder stats] packets = " << encoded20.num_packets()
            << ", padded slots = " << encoded20.stats().padded_slots
            << ", placeholder entries = "
            << encoded20.stats().placeholder_entries
            << ", max rows in a packet = "
            << encoded20.stats().max_rows_in_packet << ".\n";
  std::cout << "\nPaper claims verified here: BS-CSR fits 15 vs 5 non-zeros "
               "per packet at V=20 (3x operational intensity), and naive "
               "COO takes ~3x the space of BS-CSR (Table III caption).\n";
  return 0;
}
