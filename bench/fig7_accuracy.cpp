// Reproduces Figure 7: Top-K accuracy (Precision, Kendall's tau, NDCG)
// versus K for the FPGA designs (bit-accurate functional simulation,
// c = 32 cores, k = 8) and the GPU F16 baseline (software binary16
// emulation), all evaluated against the exact CPU result.
#include <algorithm>
#include <array>
#include <functional>
#include <iostream>

#include "baselines/cpu_topk_spmv.hpp"
#include "baselines/gpu_model.hpp"
#include "bench_common.hpp"
#include "core/accelerator.hpp"
#include "eval/ranking.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using topk::bench::BenchArgs;
using topk::core::DesignConfig;
using topk::core::TopKAccelerator;
using topk::core::TopKEntry;
using topk::eval::TopKQuality;
using topk::util::format_double;

constexpr std::array<int, 6> kTopKs{8, 16, 32, 50, 75, 100};
constexpr int kMaxK = 100;

struct ArchCurves {
  std::string name;
  // [metric][K index] running means; metric: 0 precision, 1 tau, 2 ndcg.
  std::array<std::array<topk::util::RunningStats, kTopKs.size()>, 3> stats;

  void absorb(std::size_t k_index, const TopKQuality& quality) {
    stats[0][k_index].add(quality.precision);
    stats[1][k_index].add(quality.kendall_tau);
    stats[2][k_index].add(quality.ndcg);
  }
};

void evaluate_prefixes(ArchCurves& curves,
                       const std::vector<TopKEntry>& retrieved,
                       const std::vector<TopKEntry>& exact,
                       const std::function<double(std::uint32_t)>& true_score) {
  // A merged Top-100 list's prefix is exactly the Top-K list for any
  // smaller K (same candidate pool), so one query serves all K.
  for (std::size_t i = 0; i < kTopKs.size(); ++i) {
    const auto k = static_cast<std::size_t>(kTopKs[i]);
    const std::vector<TopKEntry> retrieved_k(
        retrieved.begin(), retrieved.begin() + std::min(k, retrieved.size()));
    const std::vector<TopKEntry> exact_k(
        exact.begin(), exact.begin() + std::min(k, exact.size()));
    curves.absorb(i, topk::eval::evaluate_topk(retrieved_k, exact_k,
                                                  true_score));
  }
}

void print_metric(const char* title, int metric,
                  const std::vector<ArchCurves>& curves,
                  const std::string& family) {
  topk::util::TablePrinter table({"Architecture", "K=8", "K=16", "K=32",
                                  "K=50", "K=75", "K=100"});
  for (const ArchCurves& arch : curves) {
    std::vector<std::string> cells{arch.name};
    for (std::size_t i = 0; i < kTopKs.size(); ++i) {
      cells.push_back(format_double(arch.stats[metric][i].mean(), 4));
    }
    table.add_row(std::move(cells));
  }
  std::cout << "\n[" << family << "] " << title << ":\n";
  table.print(std::cout);
}

void run_family(const BenchArgs& args, const std::string& family,
                const topk::sparse::Csr& matrix) {
  const int queries = args.queries > 0 ? args.queries : (args.full ? 30 : 5);

  const std::vector<DesignConfig> designs{
      DesignConfig::fixed(20), DesignConfig::fixed(32), DesignConfig::float32()};
  std::vector<ArchCurves> curves;
  curves.push_back({"FPGA 20b", {}});
  curves.push_back({"FPGA 32b", {}});
  curves.push_back({"FPGA F32", {}});
  curves.push_back({"GPU F16", {}});

  std::vector<TopKAccelerator> accelerators;
  accelerators.reserve(designs.size());
  for (const DesignConfig& design : designs) {
    accelerators.emplace_back(matrix, design);
  }

  topk::util::Xoshiro256 rng(args.seed + 17);
  for (int q = 0; q < queries; ++q) {
    const auto x = topk::sparse::generate_dense_vector(matrix.cols(), rng);
    const auto exact =
        topk::baselines::cpu_topk_spmv(matrix, x, kMaxK, args.threads);
    const auto true_score = [&](std::uint32_t row) {
      return matrix.row_dot(row, x);
    };
    for (std::size_t d = 0; d < accelerators.size(); ++d) {
      const auto result = accelerators[d].query(x, kMaxK);
      evaluate_prefixes(curves[d], result.entries, exact, true_score);
    }
    const auto f16 = topk::baselines::gpu_f16_topk_spmv(matrix, x, kMaxK);
    evaluate_prefixes(curves.back(), f16, exact, true_score);
  }

  print_metric("Precision (higher is better)", 0, curves, family);
  print_metric("Kendall's tau", 1, curves, family);
  print_metric("NDCG", 2, curves, family);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = topk::bench::parse_args(argc, argv);
  std::cout << "Reproducing paper Figure 7 (Top-K accuracy vs K; FPGA "
               "designs with c = 32, k = 8; GPU F16 emulated in software)."
            << "\n";
  if (!args.full) {
    std::cout << "(reduced scale: smaller N and fewer queries; --full for "
                 "paper scale)\n";
  }

  {
    const auto matrix = topk::bench::make_table3_matrix(
        args, 0.5e7, 1024, 20.0, topk::sparse::RowDistribution::kUniform, 1);
    run_family(args, "Uniform, N = 0.5e7 family", matrix);
  }
  {
    const auto matrix = topk::bench::make_table3_matrix(
        args, 0.5e7, 1024, 20.0, topk::sparse::RowDistribution::kGamma, 2);
    run_family(args, "Gamma, N = 0.5e7 family", matrix);
  }
  {
    const auto glove = topk::bench::make_glove_like_matrix(args);
    run_family(args, "Sparse GloVe-like", glove);
  }

  std::cout << "\nPaper reference (Figure 7): Precision stays above ~97% "
               "for every architecture up to K = 100; 32-bit fixed point "
               "meets or beats GPU F16 despite the partition "
               "approximation; Kendall tau and NDCG stay above ~0.95/0.96 "
               "with a mild dip as K grows.\n";
  std::cout << "Note: at reduced N the partition approximation is "
               "relatively harsher (K/N is larger), so default-scale "
               "precision reads slightly below the paper's full-scale "
               "curves; --full restores the paper's regime.\n";
  return 0;
}
