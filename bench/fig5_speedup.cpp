// Reproduces Figure 5: execution-time speedup of the GPU baselines and
// the four FPGA designs over the CPU baseline, for K = 100, plus the
// section V-B power-efficiency claims.
//
// Every execution strategy now runs through the unified
// index::SimilarityIndex API: one loop over the registered backends
// produces every bar of the figure, and --backend=<name> restricts the
// sweep to a single backend (the measured cpu-heap reference always
// runs — it is the denominator of every speedup).
//
// The CPU baseline is *measured* on this machine (the cpu-heap
// backend).  FPGA and GPU times are *modelled* (DESIGN.md
// substitution): the FPGA model runs on the real per-core packet
// counts of the BS-CSR encoder; the GPU model is the calibrated P100
// bandwidth model.  Absolute speedups therefore depend on this
// machine's CPU; the paper's reported speedups are printed alongside
// and the *ordering* (20b > 25b > 32b > F32 > GPU > CPU) is the
// reproduced shape.
#include <algorithm>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "hbmsim/power_model.hpp"
#include "hbmsim/timing_model.hpp"
#include "index/backends.hpp"
#include "index/registry.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using topk::bench::BenchArgs;
using topk::core::DesignConfig;
using topk::util::format_double;
using topk::util::format_speedup;

constexpr int kTopK = 100;

/// One bar of the figure: a backend variant's end-to-end time at
/// paper-scale sizes.
struct PlatformTiming {
  std::string platform;
  double seconds = 0.0;
  bool modelled = false;
};

struct FamilyResult {
  std::string label;
  double cpu_seconds = 0.0;           ///< measured reference (denominator)
  std::vector<PlatformTiming> timings;
  double fpga20_seconds = 0.0;        ///< for the V-B power section
  double gpu_f32_spmv_seconds = 0.0;
  double fpga20_gnnz_per_s = 0.0;
};

/// Measures one backend's single-query wall time: best of `repeats`.
double measure_query_seconds(const topk::index::SimilarityIndex& index,
                             std::span<const float> x, int threads,
                             int repeats) {
  topk::index::QueryOptions options;
  options.threads = threads;
  double best = 1e30;
  for (int i = 0; i < repeats; ++i) {
    topk::util::WallTimer timer;
    const auto result = index.query(x, kTopK, options);
    best = std::min(best, timer.seconds());
    if (result.entries.size() != static_cast<std::size_t>(kTopK)) {
      std::cerr << "unexpected result size from " << index.describe().backend
                << "\n";
      std::exit(1);
    }
  }
  return best;
}

// All platforms are extrapolated to paper-scale non-zero counts before
// speedups are formed: the CPU scan, the GPU bandwidth model and the
// FPGA packet model are all linear in nnz, and per-query fixed
// overheads would otherwise dominate the shrunken default matrices.
FamilyResult run_family(const BenchArgs& args, std::string label,
                        std::shared_ptr<const topk::sparse::Csr> matrix,
                        double scale,
                        const std::vector<std::string>& backends) {
  FamilyResult result;
  result.label = std::move(label);

  topk::util::Xoshiro256 rng(args.seed + 7);
  const auto x = topk::sparse::generate_dense_vector(matrix->cols(), rng);
  const int repeats = args.queries > 0 ? args.queries : 3;

  const auto paper_nnz = static_cast<std::uint64_t>(
      static_cast<double>(matrix->nnz()) * scale);
  const auto paper_rows = static_cast<std::uint64_t>(
      static_cast<double>(matrix->rows()) * scale);

  const auto selected = [&](const char* name) {
    return std::find(backends.begin(), backends.end(), name) != backends.end();
  };

  // Measured CPU reference — always runs (speedup denominator).
  {
    const topk::index::CpuHeapIndex cpu(matrix);
    result.cpu_seconds =
        measure_query_seconds(cpu, x, args.threads, repeats) * scale;
    if (selected("cpu-heap")) {
      result.timings.push_back({"CPU heap (measured)", result.cpu_seconds,
                                false});
    }
  }

  // One loop over the registered backends produces every other bar.
  for (const std::string& name : backends) {
    if (name == "cpu-heap") {
      continue;  // already measured above
    }
    if (name == "exact-sort") {
      const topk::index::ExactSortIndex exact(matrix);
      // The O(N log N) strawman: one repeat is plenty for a reference
      // the paper's section II only argues against.
      result.timings.push_back(
          {"CPU full-sort (measured)",
           measure_query_seconds(exact, x, args.threads, 1) * scale, false});
    } else if (name == "gpu-f16") {
      const auto index = topk::index::make_index(name, matrix);
      const auto* gpu =
          dynamic_cast<const topk::index::GpuModelIndex*>(index.get());
      if (gpu == nullptr) {
        continue;  // a re-registered "gpu-f16" without the model
      }
      const auto& model = gpu->perf_model();
      result.gpu_f32_spmv_seconds = model.spmv_seconds(paper_nnz, false);
      result.timings.push_back(
          {"GPU F32 SpMV only", result.gpu_f32_spmv_seconds, true});
      result.timings.push_back(
          {"GPU F32 +sort", model.topk_seconds(paper_nnz, paper_rows, false),
           true});
      result.timings.push_back(
          {"GPU F16 SpMV only", model.spmv_seconds(paper_nnz, true), true});
      result.timings.push_back(
          {"GPU F16 +sort", model.topk_seconds(paper_nnz, paper_rows, true),
           true});
    } else if (name == "fpga-sim") {
      // Modelled FPGA designs on real encoded packet counts (scaled).
      for (const DesignConfig& design : topk::bench::paper_designs()) {
        topk::index::IndexOptions options;
        options.design = design;
        const auto index = topk::index::make_index(name, matrix, options);
        const auto* fpga =
            dynamic_cast<const topk::index::FpgaSimIndex*>(index.get());
        if (fpga == nullptr) {
          continue;
        }
        const auto& accelerator = fpga->accelerator();
        const auto packets = static_cast<std::uint64_t>(
            static_cast<double>(accelerator.max_core_packets()) * scale);
        const double seconds =
            topk::hbmsim::estimate_query_time(design, accelerator.layout(),
                                              packets, paper_nnz)
                .seconds;
        result.timings.push_back({design.name(), seconds, true});
        if (result.fpga20_seconds == 0.0) {
          result.fpga20_seconds = seconds;
          result.fpga20_gnnz_per_s =
              static_cast<double>(paper_nnz) / seconds / 1e9;
        }
      }
    } else {
      // A backend registered after this bench was written still gets a
      // measured bar — the point of the registry.
      const auto index = topk::index::make_index(name, matrix);
      result.timings.push_back(
          {name + " (measured)",
           measure_query_seconds(*index, x, args.threads, repeats) * scale,
           false});
    }
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = topk::bench::parse_args(argc, argv);
  const double shrink = args.full ? 1.0 : 20.0;
  const std::vector<std::string> backends = args.selected_backends();

  std::cout << "Reproducing paper Figure 5 (speedup vs CPU, K = " << kTopK
            << ").  CPU measured on this machine; FPGA/GPU modelled "
               "(DESIGN.md).\nBackends:";
  for (const std::string& name : backends) {
    std::cout << ' ' << name;
  }
  std::cout << "  (select one with --backend=<name>)\n";
  if (!args.full) {
    std::cout << "(rows scaled by 1/" << shrink << "; --full for paper scale)\n";
  }
  std::cout << '\n';

  std::vector<FamilyResult> results;
  std::uint64_t offset = 0;
  for (const double paper_rows : {0.5e7, 1.0e7, 1.5e7}) {
    const auto matrix = std::make_shared<const topk::sparse::Csr>(
        topk::bench::make_table3_matrix(args, paper_rows, 1024, 20.0,
                                        topk::sparse::RowDistribution::kUniform,
                                        offset++));
    results.push_back(run_family(
        args, "N = " + format_double(paper_rows / 1e7, 1) + "e7", matrix,
        shrink, backends));
  }
  {
    const auto glove = std::make_shared<const topk::sparse::Csr>(
        topk::bench::make_glove_like_matrix(args));
    results.push_back(run_family(args, "Sparse GloVe-like", glove,
                                 args.full ? 1.0 : 100.0, backends));
  }

  topk::util::TablePrinter table(
      {"Matrix", "Platform", "Time [ms]", "Speedup vs CPU", "Kind"});
  for (const FamilyResult& r : results) {
    for (const PlatformTiming& t : r.timings) {
      table.add_row({r.label, t.platform, format_double(t.seconds * 1e3, 2),
                     format_speedup(r.cpu_seconds / t.seconds),
                     t.modelled ? "modelled" : "measured"});
    }
  }
  table.print(std::cout);

  const bool have_fpga = results[1].fpga20_seconds > 0.0;
  const bool have_gpu = results[1].gpu_f32_spmv_seconds > 0.0;

  if (have_fpga && have_gpu) {
    std::cout << "\nFPGA-vs-GPU ratios (machine-independent):\n";
    topk::util::TablePrinter ratio_table(
        {"Matrix", "FPGA 20b vs GPU F32 (SpMV only)",
         "FPGA throughput [Gnnz/s est.]"});
    for (const FamilyResult& r : results) {
      if (r.fpga20_seconds == 0.0 || r.gpu_f32_spmv_seconds == 0.0) {
        continue;
      }
      // Scale-invariant: both sides are linear in nnz.
      ratio_table.add_row(
          {r.label,
           format_double(r.gpu_f32_spmv_seconds / r.fpga20_seconds, 2) + "x",
           format_double(r.fpga20_gnnz_per_s, 1)});
    }
    ratio_table.print(std::cout);
  }

  // Section V-B: power efficiency (needs all three platforms).
  if (have_fpga && have_gpu) {
    const auto layout20 = topk::core::PacketLayout::solve(1024, 20);
    const auto fpga_power =
        topk::hbmsim::fpga_power(DesignConfig::fixed(20), layout20);
    const auto cpu_power = topk::hbmsim::cpu_power();
    const auto gpu_power = topk::hbmsim::gpu_power();
    const FamilyResult& mid = results[1];
    const double fpga_perf = 1.0 / mid.fpga20_seconds;
    const double gpu_perf = 1.0 / mid.gpu_f32_spmv_seconds;
    const double cpu_perf = 1.0 / mid.cpu_seconds;

    std::cout << "\n[Section V-B] Performance/Watt, N = 1e7 row family:\n";
    topk::util::TablePrinter power_table({"Comparison", "This repo", "Paper"});
    power_table.add_row(
        {"FPGA 20b vs idealized GPU (board only)",
         format_double(topk::hbmsim::performance_per_watt(fpga_perf, fpga_power,
                                                          false) /
                           topk::hbmsim::performance_per_watt(gpu_perf,
                                                              gpu_power, false),
                       1) +
             "x",
         "14.2x"});
    power_table.add_row(
        {"FPGA 20b vs idealized GPU (incl. host)",
         format_double(topk::hbmsim::performance_per_watt(fpga_perf, fpga_power,
                                                          true) /
                           topk::hbmsim::performance_per_watt(gpu_perf,
                                                              gpu_power, true),
                       1) +
             "x",
         "7.7x"});
    power_table.add_row(
        {"FPGA 20b vs CPU",
         format_double(topk::hbmsim::performance_per_watt(fpga_perf, fpga_power,
                                                          true) /
                           topk::hbmsim::performance_per_watt(cpu_perf,
                                                              cpu_power, true),
                       0) +
             "x",
         "~400x"});
    power_table.print(std::cout);
  }

  std::cout << "\nPaper reference speedups (Figure 5): GPU F32 51-55x, GPU "
               "F16 58-62x, FPGA 20b 101-106x, 25b 86-89x, 32b 75-89x, F32 "
               "43x (CPU baselines 279/509/747/117 ms on 2x Xeon 6248).\n";
  std::cout << "Shape to verify: FPGA 20b fastest; fixed point beats float; "
               "FPGA 20b ~2x the idealized GPU; sorting costs push the real "
               "GPU Top-K far lower.\n";
  return 0;
}
