// Reproduces Figure 5: execution-time speedup of the GPU baselines and
// the four FPGA designs over the CPU baseline, for K = 100, plus the
// section V-B power-efficiency claims.
//
// The CPU baseline is *measured* on this machine (a from-scratch
// sparse_dot_topn equivalent).  FPGA and GPU times are *modelled*
// (DESIGN.md substitution): the FPGA model runs on the real per-core
// packet counts of the BS-CSR encoder; the GPU model is the calibrated
// P100 bandwidth model.  Absolute speedups therefore depend on this
// machine's CPU; the paper's reported speedups are printed alongside
// and the *ordering* (20b > 25b > 32b > F32 > GPU > CPU) is the
// reproduced shape.
#include <iostream>

#include "baselines/cpu_topk_spmv.hpp"
#include "baselines/gpu_model.hpp"
#include "bench_common.hpp"
#include "core/accelerator.hpp"
#include "hbmsim/power_model.hpp"
#include "hbmsim/timing_model.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using topk::bench::BenchArgs;
using topk::core::DesignConfig;
using topk::core::TopKAccelerator;
using topk::util::format_double;
using topk::util::format_speedup;

constexpr int kTopK = 100;

struct FamilyResult {
  std::string label;
  double cpu_seconds = 0.0;
  double gpu_f32_spmv = 0.0;
  double gpu_f32_topk = 0.0;
  double gpu_f16_spmv = 0.0;
  double gpu_f16_topk = 0.0;
  std::vector<double> fpga_seconds;   // one per design
  double fpga20_gnnz_per_s = 0.0;     // paper-scale throughput estimate
};

// All platforms are extrapolated to paper-scale non-zero counts before
// speedups are formed: the CPU scan, the GPU bandwidth model and the
// FPGA packet model are all linear in nnz, and per-query fixed
// overheads would otherwise dominate the shrunken default matrices.
FamilyResult run_family(const BenchArgs& args, std::string label,
                        const topk::sparse::Csr& matrix, double scale) {
  FamilyResult result;
  result.label = std::move(label);

  // Measured CPU baseline: median of a few runs.
  topk::util::Xoshiro256 rng(args.seed + 7);
  const auto x = topk::sparse::generate_dense_vector(matrix.cols(), rng);
  const int repeats = args.queries > 0 ? args.queries : 3;
  double best = 1e30;
  for (int i = 0; i < repeats; ++i) {
    topk::util::WallTimer timer;
    const auto topk_result =
        topk::baselines::cpu_topk_spmv(matrix, x, kTopK, args.threads);
    best = std::min(best, timer.seconds());
    if (topk_result.size() != kTopK) {
      std::cerr << "unexpected CPU result size\n";
      std::exit(1);
    }
  }
  result.cpu_seconds = best * scale;  // the CPU scan is nnz-linear

  const auto paper_nnz = static_cast<std::uint64_t>(
      static_cast<double>(matrix.nnz()) * scale);
  const auto paper_rows = static_cast<std::uint64_t>(
      static_cast<double>(matrix.rows()) * scale);

  // Modelled GPU baseline at paper-scale sizes.
  const topk::baselines::GpuPerfModel gpu;
  result.gpu_f32_spmv = gpu.spmv_seconds(paper_nnz, false);
  result.gpu_f32_topk = gpu.topk_seconds(paper_nnz, paper_rows, false);
  result.gpu_f16_spmv = gpu.spmv_seconds(paper_nnz, true);
  result.gpu_f16_topk = gpu.topk_seconds(paper_nnz, paper_rows, true);

  // Modelled FPGA designs on real encoded packet counts (scaled).
  for (const DesignConfig& design : topk::bench::paper_designs()) {
    const TopKAccelerator accelerator(matrix, design);
    const auto packets = static_cast<std::uint64_t>(
        static_cast<double>(accelerator.max_core_packets()) * scale);
    result.fpga_seconds.push_back(
        topk::hbmsim::estimate_query_time(design, accelerator.layout(), packets,
                                          paper_nnz)
            .seconds);
  }
  result.fpga20_gnnz_per_s =
      static_cast<double>(paper_nnz) / result.fpga_seconds[0] / 1e9;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = topk::bench::parse_args(argc, argv);
  const double shrink = args.full ? 1.0 : 20.0;

  std::cout << "Reproducing paper Figure 5 (speedup vs CPU, K = " << kTopK
            << ").  CPU measured on this machine; FPGA/GPU modelled "
               "(DESIGN.md).\n";
  if (!args.full) {
    std::cout << "(rows scaled by 1/" << shrink << "; --full for paper scale)\n";
  }
  std::cout << '\n';

  std::vector<FamilyResult> results;
  std::uint64_t offset = 0;
  for (const double paper_rows : {0.5e7, 1.0e7, 1.5e7}) {
    const auto matrix = topk::bench::make_table3_matrix(
        args, paper_rows, 1024, 20.0, topk::sparse::RowDistribution::kUniform,
        offset++);
    results.push_back(run_family(args,
                                 "N = " + format_double(paper_rows / 1e7, 1) +
                                     "e7",
                                 matrix, shrink));
  }
  {
    const auto glove = topk::bench::make_glove_like_matrix(args);
    results.push_back(
        run_family(args, "Sparse GloVe-like", glove, args.full ? 1.0 : 100.0));
  }

  const auto designs = topk::bench::paper_designs();
  topk::util::TablePrinter table(
      {"Matrix", "CPU [ms]", "GPU F32", "GPU F32+sort", "GPU F16",
       "GPU F16+sort", "FPGA 20b", "FPGA 25b", "FPGA 32b", "FPGA F32"});
  for (const FamilyResult& r : results) {
    table.add_row({r.label, format_double(r.cpu_seconds * 1e3, 1),
                   format_speedup(r.cpu_seconds / r.gpu_f32_spmv),
                   format_speedup(r.cpu_seconds / r.gpu_f32_topk),
                   format_speedup(r.cpu_seconds / r.gpu_f16_spmv),
                   format_speedup(r.cpu_seconds / r.gpu_f16_topk),
                   format_speedup(r.cpu_seconds / r.fpga_seconds[0]),
                   format_speedup(r.cpu_seconds / r.fpga_seconds[1]),
                   format_speedup(r.cpu_seconds / r.fpga_seconds[2]),
                   format_speedup(r.cpu_seconds / r.fpga_seconds[3])});
  }
  table.print(std::cout);

  std::cout << "\nFPGA-vs-GPU ratios (machine-independent):\n";
  topk::util::TablePrinter ratio_table(
      {"Matrix", "FPGA 20b vs GPU F32 (SpMV only)",
       "FPGA 20b vs GPU F32 (+sort)", "FPGA throughput [Gnnz/s est.]"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const FamilyResult& r = results[i];
    // Scale-invariant: both sides are linear in nnz.
    const double vs_ideal = r.gpu_f32_spmv / r.fpga_seconds[0];
    const double vs_sorting = r.gpu_f32_topk / r.fpga_seconds[0];
    ratio_table.add_row({r.label, format_double(vs_ideal, 2) + "x",
                         format_double(vs_sorting, 2) + "x",
                         format_double(r.fpga20_gnnz_per_s, 1)});
  }
  ratio_table.print(std::cout);

  // Section V-B: power efficiency.
  const auto layout20 = topk::core::PacketLayout::solve(1024, 20);
  const auto fpga_power =
      topk::hbmsim::fpga_power(DesignConfig::fixed(20), layout20);
  const auto cpu_power = topk::hbmsim::cpu_power();
  const auto gpu_power = topk::hbmsim::gpu_power();
  const FamilyResult& mid = results[1];
  const double fpga_perf = 1.0 / mid.fpga_seconds[0];
  const double gpu_perf = 1.0 / mid.gpu_f32_spmv;
  const double cpu_perf = 1.0 / mid.cpu_seconds;

  std::cout << "\n[Section V-B] Performance/Watt, N = 1e7 row family:\n";
  topk::util::TablePrinter power_table({"Comparison", "This repo", "Paper"});
  power_table.add_row(
      {"FPGA 20b vs idealized GPU (board only)",
       format_double(topk::hbmsim::performance_per_watt(fpga_perf, fpga_power,
                                                        false) /
                         topk::hbmsim::performance_per_watt(gpu_perf, gpu_power,
                                                            false),
                     1) +
           "x",
       "14.2x"});
  power_table.add_row(
      {"FPGA 20b vs idealized GPU (incl. host)",
       format_double(topk::hbmsim::performance_per_watt(fpga_perf, fpga_power,
                                                        true) /
                         topk::hbmsim::performance_per_watt(gpu_perf, gpu_power,
                                                            true),
                     1) +
           "x",
       "7.7x"});
  power_table.add_row(
      {"FPGA 20b vs CPU",
       format_double(topk::hbmsim::performance_per_watt(fpga_perf, fpga_power,
                                                        true) /
                         topk::hbmsim::performance_per_watt(cpu_perf, cpu_power,
                                                            true),
                     0) +
           "x",
       "~400x"});
  power_table.print(std::cout);

  std::cout << "\nPaper reference speedups (Figure 5): GPU F32 51-55x, GPU "
               "F16 58-62x, FPGA 20b 101-106x, 25b 86-89x, 32b 75-89x, F32 "
               "43x (CPU baselines 279/509/747/117 ms on 2x Xeon 6248).\n";
  std::cout << "Shape to verify: FPGA 20b fastest; fixed point beats float; "
               "FPGA 20b ~2x the idealized GPU; sorting costs push the real "
               "GPU Top-K far lower.\n";
  return 0;
}
