// Shared plumbing for the benchmark harness binaries.
//
// Every bench reproduces one table or figure of the paper.  Default
// arguments run in seconds on a laptop-class machine by shrinking the
// matrix sizes; `--full` switches to paper-scale (needs several GB of
// RAM and minutes of CPU).  Output is ASCII tables whose rows mirror
// the paper's, with the paper's reported numbers printed alongside for
// comparison (EXPERIMENTS.md records both).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/design.hpp"
#include "embed/sparsify.hpp"
#include "index/registry.hpp"
#include "sparse/generator.hpp"
#include "telemetry/exposition.hpp"

namespace topk::bench {

/// Parsed command line common to all benches.
struct BenchArgs {
  bool full = false;        ///< paper-scale sizes
  bool quick = false;       ///< CI smoke mode: smallest sizes, fewest repeats
  int queries = 0;          ///< per-config query count (0 = bench default)
  std::uint64_t seed = 42;  ///< master seed
  int threads = 0;          ///< CPU baseline threads (0 = hardware)
  /// Comma-separated backend filter, e.g.
  /// "fpga-sim,sharded-fpga-sim" ("" = all registered backends).
  std::string backend;
  /// Machine-readable result sink ("" = tables only).  Benches append
  /// one JsonRecord per table row and call write_json_results() before
  /// exiting; CI archives the files as artifacts.
  std::string json_path;

  /// The backends this run covers: the comma-separated --backend list
  /// (order preserved, duplicates dropped), or every registered
  /// backend.  Exits with the registered names when the list names an
  /// unknown backend.
  [[nodiscard]] std::vector<std::string> selected_backends() const {
    if (backend.empty()) {
      return index::registered_backends();
    }
    std::vector<std::string> names;
    std::size_t begin = 0;
    while (begin <= backend.size()) {
      const std::size_t comma = backend.find(',', begin);
      const std::size_t end = comma == std::string::npos ? backend.size() : comma;
      const std::string name = backend.substr(begin, end - begin);
      begin = end + 1;
      if (name.empty()) {
        continue;
      }
      if (!index::has_backend(name)) {
        std::cerr << "unknown --backend=" << name << " (registered:";
        for (const std::string& registered : index::registered_backends()) {
          std::cerr << ' ' << registered;
        }
        std::cerr << ")\n";
        std::exit(2);
      }
      if (std::find(names.begin(), names.end(), name) == names.end()) {
        names.push_back(name);
      }
    }
    if (names.empty()) {
      std::cerr << "--backend lists no backend names\n";
      std::exit(2);
    }
    return names;
  }

  /// Scales a paper-scale row count down unless --full is given.
  [[nodiscard]] std::uint32_t scale_rows(double paper_rows,
                                         double shrink = 20.0) const {
    const double rows = full ? paper_rows : paper_rows / shrink;
    return static_cast<std::uint32_t>(rows);
  }
};

/// Parses --full, --queries=N, --seed=N, --threads=N; exits with a
/// usage message on anything unrecognised.  The --backend list is
/// validated here, eagerly: a typo'd backend name is a hard exit(2)
/// listing the registered names before any bench work starts, even in
/// a bench path that never calls selected_backends() (a --quick CI
/// smoke must fail on the typo, not silently bench nothing).
inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    const auto int_value = [&](std::string_view prefix) {
      try {
        return std::stoll(std::string(arg.substr(prefix.size())));
      } catch (const std::exception&) {
        std::cerr << "invalid integer in argument: " << arg << "\n";
        std::exit(2);
      }
    };
    if (arg == "--full") {
      args.full = true;
    } else if (arg == "--quick") {
      args.quick = true;
    } else if (arg.rfind("--queries=", 0) == 0) {
      args.queries = static_cast<int>(int_value("--queries="));
    } else if (arg.rfind("--seed=", 0) == 0) {
      args.seed = static_cast<std::uint64_t>(int_value("--seed="));
    } else if (arg.rfind("--threads=", 0) == 0) {
      args.threads = static_cast<int>(int_value("--threads="));
    } else if (arg.rfind("--backend=", 0) == 0) {
      args.backend = std::string(arg.substr(std::string_view("--backend=").size()));
    } else if (arg.rfind("--json=", 0) == 0) {
      args.json_path = std::string(arg.substr(std::string_view("--json=").size()));
    } else if (arg == "--json" && i + 1 < argc) {
      args.json_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: bench [--full] [--quick] [--queries=N] [--seed=N] "
                   "[--threads=N] [--backend=NAME[,NAME...]] [--json=FILE]\n";
      std::exit(0);
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      std::exit(2);
    }
  }
  if (!args.backend.empty()) {
    (void)args.selected_backends();  // exit(2) on unknown names
  }
  return args;
}

/// One flat result record for the --json report: insertion-ordered
/// key/value pairs with values pre-rendered as JSON fragments, so a
/// bench can mirror each table row without a JSON library.
class JsonRecord {
 public:
  JsonRecord& add(const std::string& key, const std::string& value) {
    return raw(key, "\"" + telemetry::json_escape(value) + "\"");
  }
  JsonRecord& add(const std::string& key, const char* value) {
    return add(key, std::string(value));
  }
  JsonRecord& add(const std::string& key, bool value) {
    return raw(key, value ? "true" : "false");
  }
  JsonRecord& add(const std::string& key, double value) {
    if (!std::isfinite(value)) {
      return raw(key, "null");
    }
    std::ostringstream out;
    out.precision(std::numeric_limits<double>::max_digits10);
    out << value;
    return raw(key, out.str());
  }
  JsonRecord& add(const std::string& key, std::uint64_t value) {
    return raw(key, std::to_string(value));
  }
  JsonRecord& add(const std::string& key, int value) {
    return raw(key, std::to_string(value));
  }

  [[nodiscard]] std::string render() const {
    std::string out = "{";
    bool first = true;
    for (const auto& [key, fragment] : fields_) {
      if (!first) {
        out += ",";
      }
      first = false;
      out += "\"" + telemetry::json_escape(key) + "\":" + fragment;
    }
    out += "}";
    return out;
  }

 private:
  JsonRecord& raw(const std::string& key, std::string fragment) {
    fields_.emplace_back(key, std::move(fragment));
    return *this;
  }

  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Writes the --json report: run configuration plus one record per
/// result row.  No-op when --json was not given; exits non-zero when
/// the file cannot be written (CI treats a missing artifact as a
/// silent pass otherwise).
inline void write_json_results(const BenchArgs& args, const std::string& bench,
                               const std::vector<JsonRecord>& results) {
  if (args.json_path.empty()) {
    return;
  }
  const std::filesystem::path path(args.json_path);
  if (path.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(path.parent_path(), ec);
  }
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write --json report: " << args.json_path << "\n";
    std::exit(2);
  }
  out << "{\"bench\":\"" << telemetry::json_escape(bench) << "\","
      << "\"quick\":" << (args.quick ? "true" : "false") << ","
      << "\"full\":" << (args.full ? "true" : "false") << ","
      << "\"seed\":" << args.seed << ",\"results\":[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i > 0) {
      out << ",";
    }
    out << results[i].render();
  }
  out << "]}\n";
  if (!out.good()) {
    std::cerr << "short write on --json report: " << args.json_path << "\n";
    std::exit(2);
  }
  std::cerr << "wrote " << args.json_path << " (" << results.size()
            << " records)\n";
}

/// The four FPGA designs evaluated throughout the paper (Table II).
inline std::vector<core::DesignConfig> paper_designs(int cores = 32) {
  return {core::DesignConfig::fixed(20, cores),
          core::DesignConfig::fixed(25, cores),
          core::DesignConfig::fixed(32, cores),
          core::DesignConfig::float32(cores)};
}

/// Synthetic Table III matrix, shrunk unless --full.
inline sparse::Csr make_table3_matrix(const BenchArgs& args, double paper_rows,
                                      std::uint32_t cols, double mean_nnz,
                                      sparse::RowDistribution distribution,
                                      std::uint64_t seed_offset = 0) {
  sparse::GeneratorConfig config;
  config.rows = args.scale_rows(paper_rows);
  config.cols = cols;
  config.mean_nnz_per_row = mean_nnz;
  config.distribution = distribution;
  config.seed = args.seed + seed_offset;
  return sparse::generate_matrix(config);
}

/// The sparsified GloVe-like corpus (shrunk unless --full).
inline sparse::Csr make_glove_like_matrix(const BenchArgs& args,
                                          std::uint32_t cols = 1024) {
  embed::CorpusConfig corpus_config;
  // Paper: 0.2e7 rows; dictionary coding is O(rows * atoms * dim), so
  // the default shrink is more aggressive here.
  corpus_config.rows = args.full ? 2'000'000 : 20'000;
  corpus_config.dim = 300;
  corpus_config.clusters = args.full ? 512 : 64;
  corpus_config.seed = args.seed + 100;
  const embed::DenseEmbeddings corpus = embed::generate_glove_like(corpus_config);
  const embed::Dictionary dictionary(cols, corpus_config.dim, args.seed + 101);
  embed::SparsifyConfig sparsify_config;
  sparsify_config.target_nnz = 16;  // paper: ~12-23 nnz/row
  sparsify_config.use_matching_pursuit = false;  // one-shot: corpus-scale
  return embed::sparsify_corpus(corpus, dictionary, sparsify_config);
}

}  // namespace topk::bench
