// Serving-layer benchmark, two parts:
//
//  1. persistent-pool QueryEngine batching vs the seed's spawn-per-call
//     host loop on the FPGA simulator backend ("legacy" reproduces the
//     seed's TopKAccelerator::query_batch exactly: spawn `t`
//     std::threads per call, split the batch into static contiguous
//     blocks, join, repeat for every batch).  Both must produce
//     bit-identical top-k lists; the bench exits non-zero if they ever
//     disagree.
//
//  2. a cross-backend serving sweep: every registered SimilarityIndex
//     backend served through the identical QueryEngine code path, with
//     per-backend throughput and latency percentiles — the
//     apples-to-apples comparison the unified index API exists for.
//
//   $ ./bench_serving [--full] [--queries=N] [--seed=N] [--threads=N]
//                     [--backend=NAME]
//
// --threads pins the sweep to a single thread count (0 = sweep
// {1,2,4,8}); --queries overrides the per-batch-size query count;
// --backend restricts part 2 to one backend (and skips part 1 unless
// it is fpga-sim).
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/accelerator.hpp"
#include "index/backends.hpp"
#include "index/registry.hpp"
#include "serve/query_engine.hpp"
#include "sparse/generator.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using topk::core::TopKAccelerator;

/// One query exactly as the seed executed it: every core stream runs
/// the float-span kernel entry point, which re-derives the quantised
/// raws per core instead of sharing one conversion.
topk::core::QueryResult legacy_query(const TopKAccelerator& accelerator,
                                     std::span<const float> x, int top_k) {
  const auto& streams = accelerator.core_streams();
  std::vector<topk::core::KernelResult> per_core(streams.size());
  for (std::size_t i = 0; i < streams.size(); ++i) {
    per_core[i] =
        run_topk_spmv(streams[i], x, accelerator.config().k,
                      accelerator.config().rows_per_packet);
  }
  topk::core::QueryResult out;
  std::vector<std::vector<topk::core::TopKEntry>> candidates;
  candidates.reserve(per_core.size());
  for (auto& result : per_core) {
    out.stats.total_packets += result.stats.packets;
    out.stats.max_core_packets =
        std::max(out.stats.max_core_packets, result.stats.packets);
    out.stats.rows_dropped += result.stats.rows_dropped;
    out.stats.rows_emitted += result.stats.rows_emitted;
    out.stats.max_rows_in_packet =
        std::max(out.stats.max_rows_in_packet, result.stats.max_rows_in_packet);
    candidates.push_back(std::move(result.topk));
  }
  out.entries = topk::core::merge_partition_results(
      candidates, accelerator.partitions(), top_k);
  return out;
}

/// The seed's spawn-per-call batch loop, kept verbatim as the baseline:
/// `threads` std::threads spawned and joined per call, static blocks.
std::vector<topk::core::QueryResult> legacy_query_batch(
    const TopKAccelerator& accelerator,
    const std::vector<std::vector<float>>& queries, int top_k, int threads) {
  std::vector<topk::core::QueryResult> results(queries.size());
  const auto run_range = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      results[i] = legacy_query(accelerator, queries[i], top_k);
    }
  };
  if (threads <= 1) {
    run_range(0, queries.size());
    return results;
  }
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    const std::size_t begin = queries.size() * t / threads;
    const std::size_t end = queries.size() * (t + 1) / threads;
    workers.emplace_back([&, begin, end] { run_range(begin, end); });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  return results;
}

bool same_results(const std::vector<topk::core::QueryResult>& legacy,
                  const std::vector<topk::index::QueryResult>& engine) {
  if (legacy.size() != engine.size()) {
    return false;
  }
  for (std::size_t q = 0; q < legacy.size(); ++q) {
    if (legacy[q].entries != engine[q].entries) {
      return false;
    }
  }
  return true;
}

std::vector<std::vector<float>> make_queries(int count, std::uint32_t cols,
                                             std::uint64_t seed) {
  topk::util::Xoshiro256 rng(seed);
  std::vector<std::vector<float>> queries;
  queries.reserve(static_cast<std::size_t>(count));
  for (int q = 0; q < count; ++q) {
    queries.push_back(topk::sparse::generate_dense_vector(cols, rng));
  }
  return queries;
}

}  // namespace

int main(int argc, char** argv) {
  const topk::bench::BenchArgs args = topk::bench::parse_args(argc, argv);
  const std::vector<std::string> backends = args.selected_backends();

  // Paper-flavoured index: Table III-scale rows (shrunk by default),
  // 512 columns, ~16 nnz/row, 16 cores.
  topk::sparse::GeneratorConfig generator;
  generator.rows = args.scale_rows(500'000, 25.0);
  generator.cols = 512;
  generator.mean_nnz_per_row = 16.0;
  generator.seed = args.seed;
  const auto matrix = std::make_shared<const topk::sparse::Csr>(
      topk::sparse::generate_matrix(generator));
  const auto design = topk::core::DesignConfig::fixed(20, 16);
  constexpr int kTopK = 50;

  std::cout << "Serving bench: " << matrix->rows() << " rows, "
            << matrix->nnz() << " nnz, top-" << kTopK << "\n\n";

  const std::vector<int> thread_sweep =
      args.threads > 0 ? std::vector<int>{args.threads}
                       : std::vector<int>{1, 2, 4, 8};
  bool all_identical = true;

  // The device image is the expensive setup step; build it once and
  // share it between the legacy comparison and the backend sweep.
  std::shared_ptr<const topk::index::FpgaSimIndex> fpga_index;
  if (std::find(backends.begin(), backends.end(), "fpga-sim") !=
      backends.end()) {
    fpga_index =
        std::make_shared<const topk::index::FpgaSimIndex>(matrix, design);
  }

  // ---- Part 1: engine vs the seed's spawn-per-call loop (fpga-sim) ----
  if (fpga_index) {
    const TopKAccelerator& accelerator = fpga_index->accelerator();
    const std::vector<int> batch_sweep{8, 32, 128};

    topk::util::TablePrinter table({"Threads", "Batch", "Legacy q/s",
                                    "Engine q/s", "Speedup",
                                    "Engine p99 (ms)"});
    double legacy_seconds_at_max = 0.0;
    double engine_seconds_at_max = 0.0;

    for (const int threads : thread_sweep) {
      for (const int batch_size : batch_sweep) {
        const int total_queries =
            args.queries > 0 ? args.queries : std::max(2 * batch_size, 64);
        const auto queries = make_queries(total_queries, 512, args.seed + 7);
        std::vector<std::vector<std::vector<float>>> batches;
        for (int begin = 0; begin < total_queries; begin += batch_size) {
          const int end = std::min(begin + batch_size, total_queries);
          batches.emplace_back(queries.begin() + begin, queries.begin() + end);
        }

        topk::serve::QueryEngine engine(fpga_index, {.workers = threads});

        // Warm-up (page in the streams, spin up pool workers), then
        // alternate legacy/engine repetitions and keep each side's best
        // time — interleaving cancels drift, best-of-N cancels noise.
        // reset_latency() afterwards keeps warm-up out of the p99.
        (void)legacy_query_batch(accelerator, batches.front(), kTopK, threads);
        (void)engine.query_batch(batches.front(), kTopK);
        engine.reset_latency();

        constexpr int kReps = 3;
        double legacy_seconds = 0.0;
        double engine_seconds = 0.0;
        std::vector<topk::core::QueryResult> legacy_results;
        std::vector<topk::index::QueryResult> engine_results;
        for (int rep = 0; rep < kReps; ++rep) {
          legacy_results.clear();
          topk::util::WallTimer legacy_timer;
          for (const auto& batch : batches) {
            auto part = legacy_query_batch(accelerator, batch, kTopK, threads);
            legacy_results.insert(legacy_results.end(),
                                  std::make_move_iterator(part.begin()),
                                  std::make_move_iterator(part.end()));
          }
          const double legacy_rep = legacy_timer.seconds();
          legacy_seconds =
              rep == 0 ? legacy_rep : std::min(legacy_seconds, legacy_rep);

          engine_results.clear();
          topk::util::WallTimer engine_timer;
          for (const auto& batch : batches) {
            auto part = engine.query_batch(batch, kTopK);
            engine_results.insert(engine_results.end(),
                                  std::make_move_iterator(part.begin()),
                                  std::make_move_iterator(part.end()));
          }
          const double engine_rep = engine_timer.seconds();
          engine_seconds =
              rep == 0 ? engine_rep : std::min(engine_seconds, engine_rep);
        }

        if (!same_results(legacy_results, engine_results)) {
          std::cerr << "FAIL: engine results differ from legacy at " << threads
                    << " threads, batch " << batch_size << "\n";
          all_identical = false;
        }

        const double legacy_qps = total_queries / legacy_seconds;
        const double engine_qps = total_queries / engine_seconds;
        if (threads == thread_sweep.back()) {
          legacy_seconds_at_max += legacy_seconds;
          engine_seconds_at_max += engine_seconds;
        }
        table.add_row({std::to_string(threads), std::to_string(batch_size),
                       topk::util::format_double(legacy_qps, 1),
                       topk::util::format_double(engine_qps, 1),
                       topk::util::format_double(engine_qps / legacy_qps, 2) +
                           "x",
                       topk::util::format_double(
                           engine.latency_summary().p99_ms, 2)});
      }
    }
    table.print(std::cout);

    std::cout << "\nResults bit-identical across legacy/engine and all "
                 "thread counts: "
              << (all_identical ? "yes" : "NO") << "\n";
    // Aggregate over the batch sweep at the highest thread count — the
    // acceptance comparison (engine >= spawn-per-call at 8 threads).
    const double aggregate_speedup =
        legacy_seconds_at_max / engine_seconds_at_max;
    std::cout << "Engine vs legacy aggregate at " << thread_sweep.back()
              << " threads: "
              << topk::util::format_double(aggregate_speedup, 3) << "x ("
              << (aggregate_speedup >= 1.0
                      ? "engine >= legacy"
                      : "legacy faster; noise-prone on few cores, rerun "
                        "with --queries=256")
              << ")\n\n";
  }

  // ---- Part 2: every registered backend through the same engine ----
  std::cout << "Cross-backend serving (engine batch path, "
            << thread_sweep.back() << " workers):\n";
  const int serve_queries = args.queries > 0 ? args.queries : 48;
  const auto queries = make_queries(serve_queries, 512, args.seed + 11);

  topk::util::TablePrinter backend_table(
      {"Backend", "Exact", "q/s", "p50 (ms)", "p99 (ms)", "Index size"});
  for (const std::string& name : backends) {
    topk::index::IndexOptions options;
    options.design = design;
    const std::shared_ptr<const topk::index::SimilarityIndex> index =
        name == "fpga-sim" && fpga_index
            ? fpga_index
            : std::shared_ptr<const topk::index::SimilarityIndex>(
                  topk::index::make_index(name, matrix, options));
    topk::serve::QueryEngine engine(index,
                                    {.workers = thread_sweep.back()});

    (void)engine.query_batch({queries.front()}, kTopK);  // warm-up
    engine.reset_latency();
    topk::util::WallTimer timer;
    const auto results = engine.query_batch(queries, kTopK);
    const double seconds = timer.seconds();
    if (results.size() != queries.size()) {
      std::cerr << "FAIL: short batch from " << name << "\n";
      all_identical = false;
    }

    const auto latency = engine.latency_summary();
    const auto description = index->describe();
    backend_table.add_row(
        {name, description.exact ? "yes" : "no",
         topk::util::format_double(serve_queries / seconds, 1),
         topk::util::format_double(latency.p50_ms, 2),
         topk::util::format_double(latency.p99_ms, 2),
         topk::util::format_bytes(
             static_cast<double>(description.memory_bytes))});
  }
  backend_table.print(std::cout);
  std::cout << "\nEvery backend served through the identical QueryEngine "
               "code path; latency digests are directly comparable.\n";
  return all_identical ? 0 : 1;
}
