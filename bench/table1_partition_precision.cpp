// Reproduces Table I: estimated precision of Top-K indices for an
// increasing number of partitions (k = 8), via both the Monte Carlo
// estimator the paper uses (1000 trials by default, like the paper)
// and the closed-form hypergeometric expectation of Equation (1).
#include <iostream>

#include "bench_common.hpp"
#include "core/precision_model.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

constexpr int kPartitionK = 8;
constexpr int kTopKs[] = {8, 16, 32, 50, 75, 100};

void print_block(const char* estimator, int trials, topk::util::Xoshiro256* rng) {
  using topk::core::expected_precision_closed;
  using topk::core::expected_precision_mc;

  topk::util::TablePrinter table({"Matrix rows", "Partitions", "K=8", "K=16",
                                  "K=32", "K=50", "K=75", "K=100"});
  for (const std::uint64_t rows : {std::uint64_t{1'000'000}, std::uint64_t{10'000'000}}) {
    for (const int partitions : {16, 28, 32}) {
      std::vector<std::string> cells{
          "N = 1e" + std::to_string(rows == 1'000'000 ? 6 : 7),
          "c = " + std::to_string(partitions)};
      for (const int top_k : kTopKs) {
        const double p =
            rng == nullptr
                ? expected_precision_closed(rows, partitions, kPartitionK, top_k)
                : expected_precision_mc(rows, partitions, kPartitionK, top_k,
                                        trials, *rng);
        cells.push_back(topk::util::format_double(p, 3));
      }
      table.add_row(std::move(cells));
    }
    table.add_separator();
  }
  std::cout << "\n[Table I] Expected precision of Top-K indices, k = "
            << kPartitionK << " (" << estimator << ")\n";
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const topk::bench::BenchArgs args = topk::bench::parse_args(argc, argv);
  const int trials = args.queries > 0 ? args.queries : (args.full ? 100'000 : 1000);

  std::cout << "Reproducing paper Table I (partitioned Top-K approximation "
               "precision).\n";
  topk::util::Xoshiro256 rng(args.seed);
  print_block("Monte Carlo, as in the paper", trials, &rng);
  print_block("closed form, Equation (1)", 0, nullptr);

  std::cout << "\nPaper reference (Table I, selected cells): N=1e6 c=16 "
               "K=100 -> 0.942; c=28 -> 0.996; c=32 -> 0.997; N=1e7 c=16 "
               "K=100 -> 0.947.\n";
  std::cout << "Claim reproduced: >= 16 partitions keep precision above "
               "0.94 for every K <= 100.\n";
  return 0;
}
