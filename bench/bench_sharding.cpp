// Scatter-gather scaling sweep for the shard tier: 1/2/4/8 shards per
// inner backend on one >=100k-row matrix, against the unsharded
// backend at one thread.  Two timings per row:
//
//   Wall       the composite query with scatter width = shard count,
//              measured on this machine (bounded by its core count);
//   Crit path  the slowest single shard queried alone — the scatter
//              latency with one core per shard, machine-core-count
//              independent in the same spirit as the repo's modelled
//              FPGA times (real measured per-shard work, ideal
//              parallel execution).
//
// The scatter speedup (baseline / critical path) is the acceptance
// number: ~N at N shards because the nnz-balanced planner equalises
// per-shard work.  Sharding parallelises *any* backend — the
// single-threaded exact-sort strawman included — and the exact inner
// backends must stay bit-identical to their unsharded counterparts
// (the bench exits non-zero if they ever disagree).
//
//   $ ./bench_sharding [--quick] [--full] [--queries=N] [--seed=N]
//                      [--backend=NAME[,NAME...]]
//
// --backend selects the *inner* backends to shard (default: cpu-heap
// and exact-sort; sharded-* names are rejected — the bench adds the
// shard tier itself).  --quick shrinks the matrix and repeats for CI
// smoke runs; --queries overrides the best-of repeat count.
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "index/registry.hpp"
#include "shard/shard_planner.hpp"
#include "shard/sharded_index.hpp"
#include "util/cpu_features.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using topk::bench::BenchArgs;

constexpr int kTopK = 100;

double measure_query_seconds(const topk::index::SimilarityIndex& index,
                             std::span<const float> x, int threads,
                             int repeats,
                             std::vector<topk::core::TopKEntry>* entries) {
  topk::index::QueryOptions options;
  options.threads = threads;
  double best = 1e30;
  for (int i = 0; i < repeats; ++i) {
    topk::util::WallTimer timer;
    auto result = index.query(x, kTopK, options);
    best = std::min(best, timer.seconds());
    if (entries != nullptr) {
      *entries = std::move(result.entries);
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = topk::bench::parse_args(argc, argv);

  // Inner backends to shard: the --backend list, or the two exact CPU
  // strategies (the FPGA/GPU simulators are modelled; measuring their
  // host wall-clock says little about the scatter).
  std::vector<std::string> inner_backends;
  if (args.backend.empty()) {
    inner_backends = {"cpu-heap", "exact-sort"};
  } else {
    for (const std::string& name : args.selected_backends()) {
      if (name.rfind("sharded-", 0) == 0) {
        std::cerr << "--backend=" << name
                  << ": pass the inner backend; this bench shards it\n";
        return 2;
      }
      inner_backends.push_back(name);
    }
  }

  // >=100k rows by default (the acceptance scale for the 4-shard
  // speedup); --quick shrinks to a CI smoke size, --full to paper
  // scale.
  topk::sparse::GeneratorConfig generator;
  generator.rows = args.quick ? 20'000 : (args.full ? 1'000'000 : 120'000);
  generator.cols = 512;
  generator.mean_nnz_per_row = 16.0;
  generator.seed = args.seed;
  const auto matrix = std::make_shared<const topk::sparse::Csr>(
      topk::sparse::generate_matrix(generator));
  topk::util::Xoshiro256 rng(args.seed + 5);
  const auto x = topk::sparse::generate_dense_vector(generator.cols, rng);
  const int repeats = args.queries > 0 ? args.queries : (args.quick ? 2 : 5);

  std::cout << "Sharding sweep: " << matrix->rows() << " rows, "
            << matrix->nnz() << " nnz, top-" << kTopK << ", best of "
            << repeats << " (baseline: unsharded at 1 thread; this machine: "
            << topk::util::default_thread_count() << " hardware threads)\n\n";

  topk::util::TablePrinter table({"Inner backend", "Shards", "Build (s)",
                                  "Wall (ms)", "Crit path (ms)",
                                  "Scatter speedup", "Exact match"});
  bool all_identical = true;
  double cpu_heap_speedup_at_4 = 0.0;
  std::vector<topk::bench::JsonRecord> records;

  for (const std::string& inner : inner_backends) {
    const auto unsharded = topk::index::make_index(inner, matrix);
    const bool exact = unsharded->describe().exact;
    std::vector<topk::core::TopKEntry> reference;
    const double baseline_seconds =
        measure_query_seconds(*unsharded, x, 1, repeats, &reference);
    table.add_row({inner, "-", "-",
                   topk::util::format_double(baseline_seconds * 1e3, 2), "-",
                   "1.00x", "-"});
    records.emplace_back(topk::bench::JsonRecord()
                             .add("backend", inner)
                             .add("shards", 0)
                             .add("wall_seconds", baseline_seconds)
                             .add("scatter_speedup", 1.0));

    for (const int shards : {1, 2, 4, 8}) {
      topk::util::WallTimer build_timer;
      const auto sharded = topk::shard::ShardedIndexBuilder()
                               .matrix(matrix)
                               .shards(shards)
                               .policy(topk::shard::ShardPolicy::kNnzBalanced)
                               .inner_backend(inner)
                               .build();
      const double build_seconds = build_timer.seconds();

      std::vector<topk::core::TopKEntry> entries;
      const double wall_seconds =
          measure_query_seconds(*sharded, x, shards, repeats, &entries);
      // Critical path: each shard timed alone — the scatter latency
      // with one core per shard.
      double critical_seconds = 0.0;
      for (std::size_t s = 0; s < sharded->shard_count(); ++s) {
        critical_seconds = std::max(
            critical_seconds,
            measure_query_seconds(sharded->shard(s).primary(), x, 1, repeats,
                                  nullptr));
      }
      const double speedup = baseline_seconds / critical_seconds;
      std::string match = "n/a";
      if (exact) {
        match = entries == reference ? "yes" : "NO";
        if (entries != reference) {
          std::cerr << "FAIL: sharded " << inner << " at " << shards
                    << " shards differs from the unsharded backend\n";
          all_identical = false;
        }
      }
      if (inner == "cpu-heap" && shards == 4) {
        cpu_heap_speedup_at_4 = speedup;
      }
      table.add_row({"sharded-" + inner, std::to_string(shards),
                     topk::util::format_double(build_seconds, 2),
                     topk::util::format_double(wall_seconds * 1e3, 2),
                     topk::util::format_double(critical_seconds * 1e3, 2),
                     topk::util::format_double(speedup, 2) + "x", match});
      records.emplace_back(topk::bench::JsonRecord()
                               .add("backend", inner)
                               .add("shards", shards)
                               .add("build_seconds", build_seconds)
                               .add("wall_seconds", wall_seconds)
                               .add("critical_path_seconds", critical_seconds)
                               .add("scatter_speedup", speedup)
                               .add("exact", exact)
                               .add("identical", !exact || entries == reference));
    }
  }
  table.print(std::cout);

  // Planner comparison on a popularity-sorted Gamma matrix (rows
  // ordered by descending density, the layout of a corpus sorted by
  // item popularity): an even row split hands the first shard the
  // dense head, nnz-balanced boundaries flatten it.
  topk::sparse::GeneratorConfig skewed = generator;
  skewed.rows = args.quick ? 10'000 : 50'000;
  skewed.distribution = topk::sparse::RowDistribution::kGamma;
  skewed.seed = args.seed + 9;
  const topk::sparse::Csr gamma_raw = topk::sparse::generate_matrix(skewed);
  std::vector<std::uint32_t> order(gamma_raw.rows());
  for (std::uint32_t r = 0; r < gamma_raw.rows(); ++r) {
    order[r] = r;
  }
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return gamma_raw.row_nnz(a) > gamma_raw.row_nnz(b);
  });
  topk::sparse::Coo sorted_coo(gamma_raw.rows(), gamma_raw.cols());
  for (std::uint32_t r = 0; r < gamma_raw.rows(); ++r) {
    const auto cols = gamma_raw.row_cols(order[r]);
    const auto vals = gamma_raw.row_values(order[r]);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      sorted_coo.push_back(r, cols[i], vals[i]);
    }
  }
  const topk::sparse::Csr gamma =
      topk::sparse::Csr::from_coo(std::move(sorted_coo));
  std::cout << "\nPlanner imbalance (max shard nnz / ideal) on a "
               "popularity-sorted Gamma matrix, 4 shards:\n";
  topk::util::TablePrinter planner_table({"Policy", "Imbalance"});
  planner_table.add_row(
      {"even-rows",
       topk::util::format_double(
           topk::shard::plan_nnz_imbalance(
               gamma, topk::shard::plan_even_rows(gamma.rows(), 4)),
           3)});
  planner_table.add_row(
      {"nnz-balanced",
       topk::util::format_double(
           topk::shard::plan_nnz_imbalance(
               gamma, topk::shard::plan_nnz_balanced(gamma, 4)),
           3)});
  planner_table.print(std::cout);

  if (cpu_heap_speedup_at_4 > 0.0) {
    std::cout << "\ncpu-heap single-query scatter speedup at 4 shards: "
              << topk::util::format_double(cpu_heap_speedup_at_4, 2)
              << "x (acceptance target: >= 2x on a >= 100k-row matrix"
              << (args.quick ? "; rerun without --quick for that scale" : "")
              << ").  Wall times converge to the critical path on a "
                 "machine with >= one core per shard.\n";
  }
  std::cout << "Exact inner backends bit-identical to unsharded: "
            << (all_identical ? "yes" : "NO") << "\n";
  records.emplace_back(
      topk::bench::JsonRecord()
          .add("summary", "gate")
          .add("cpu_heap_speedup_at_4", cpu_heap_speedup_at_4)
          .add("all_identical", all_identical));
  topk::bench::write_json_results(args, "sharding", records);
  return all_identical ? 0 : 1;
}
