// Google-benchmark micro-kernels for the software components that are
// measured (not modelled): BS-CSR encode/decode, the streaming kernel,
// the CPU baseline, quantisation, and the precision model.
#include <benchmark/benchmark.h>

#include "baselines/cpu_topk_spmv.hpp"
#include "baselines/gpu_model.hpp"
#include "core/accelerator.hpp"
#include "core/precision_model.hpp"
#include "fixed/half.hpp"
#include "sparse/generator.hpp"
#include "util/rng.hpp"

namespace {

using topk::core::DesignConfig;
using topk::core::PacketLayout;
using topk::core::ValueKind;

topk::sparse::Csr bench_matrix(std::uint32_t rows, double mean_nnz) {
  topk::sparse::GeneratorConfig config;
  config.rows = rows;
  config.cols = 1024;
  config.mean_nnz_per_row = mean_nnz;
  config.seed = 7;
  return topk::sparse::generate_matrix(config);
}

void BM_GenerateMatrix(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bench_matrix(static_cast<std::uint32_t>(state.range(0)), 20.0));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GenerateMatrix)->Arg(10'000);

void BM_EncodeBsCsr(benchmark::State& state) {
  const auto matrix =
      bench_matrix(static_cast<std::uint32_t>(state.range(0)), 20.0);
  const PacketLayout layout =
      PacketLayout::solve(matrix.cols(), static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        topk::core::encode_bscsr(matrix, layout, ValueKind::kFixed));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(matrix.nnz()));
}
BENCHMARK(BM_EncodeBsCsr)->Args({10'000, 20})->Args({10'000, 32});

void BM_DecodeBsCsr(benchmark::State& state) {
  const auto matrix = bench_matrix(10'000, 20.0);
  const auto encoded = topk::core::encode_bscsr(
      matrix, PacketLayout::solve(matrix.cols(), 20), ValueKind::kFixed);
  for (auto _ : state) {
    benchmark::DoNotOptimize(topk::core::decode_bscsr(encoded));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(matrix.nnz()));
}
BENCHMARK(BM_DecodeBsCsr);

void BM_StreamingKernel(benchmark::State& state) {
  const auto matrix =
      bench_matrix(static_cast<std::uint32_t>(state.range(0)), 20.0);
  const int val_bits = static_cast<int>(state.range(1));
  const auto kind =
      state.range(2) != 0 ? ValueKind::kFloat32 : ValueKind::kFixed;
  const auto encoded = topk::core::encode_bscsr(
      matrix, PacketLayout::solve(matrix.cols(), val_bits), kind);
  topk::util::Xoshiro256 rng(9);
  const auto x = topk::sparse::generate_dense_vector(matrix.cols(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(topk::core::run_topk_spmv(encoded, x, 8, 8));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(matrix.nnz()));
}
BENCHMARK(BM_StreamingKernel)
    ->Args({10'000, 20, 0})
    ->Args({10'000, 32, 0})
    ->Args({10'000, 32, 1});

void BM_AcceleratorQuery(benchmark::State& state) {
  const auto matrix = bench_matrix(20'000, 20.0);
  const topk::core::TopKAccelerator accelerator(matrix,
                                                DesignConfig::fixed(20));
  topk::util::Xoshiro256 rng(10);
  const auto x = topk::sparse::generate_dense_vector(matrix.cols(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(accelerator.query(x, 100));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(matrix.nnz()));
}
BENCHMARK(BM_AcceleratorQuery);

void BM_CpuTopKSpMV(benchmark::State& state) {
  const auto matrix =
      bench_matrix(static_cast<std::uint32_t>(state.range(0)), 20.0);
  topk::util::Xoshiro256 rng(11);
  const auto x = topk::sparse::generate_dense_vector(matrix.cols(), rng);
  const int threads = static_cast<int>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        topk::baselines::cpu_topk_spmv(matrix, x, 100, threads));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(matrix.nnz()));
}
BENCHMARK(BM_CpuTopKSpMV)->Args({20'000, 1})->Args({20'000, 0});

void BM_GpuF16Emulation(benchmark::State& state) {
  const auto matrix = bench_matrix(5'000, 20.0);
  topk::util::Xoshiro256 rng(12);
  const auto x = topk::sparse::generate_dense_vector(matrix.cols(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(topk::baselines::gpu_f16_topk_spmv(matrix, x, 100));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(matrix.nnz()));
}
BENCHMARK(BM_GpuF16Emulation);

void BM_SignedKernel(benchmark::State& state) {
  const auto matrix = bench_matrix(10'000, 20.0);
  const auto encoded = topk::core::encode_bscsr(
      matrix, PacketLayout::solve(matrix.cols(), 20), ValueKind::kSignedFixed);
  topk::util::Xoshiro256 rng(16);
  const auto x = topk::sparse::generate_dense_vector(matrix.cols(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(topk::core::run_topk_spmv(encoded, x, 8, 8));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(matrix.nnz()));
}
BENCHMARK(BM_SignedKernel);

void BM_QueryBatch(benchmark::State& state) {
  const auto matrix = bench_matrix(10'000, 20.0);
  const topk::core::TopKAccelerator accelerator(matrix,
                                                DesignConfig::fixed(20, 8));
  topk::util::Xoshiro256 rng(17);
  std::vector<std::vector<float>> queries;
  for (int q = 0; q < 8; ++q) {
    queries.push_back(topk::sparse::generate_dense_vector(matrix.cols(), rng));
  }
  topk::core::QueryOptions options;
  options.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(accelerator.query_batch(queries, 32, options));
  }
  state.SetItemsProcessed(state.iterations() * 8 *
                          static_cast<std::int64_t>(matrix.nnz()));
}
BENCHMARK(BM_QueryBatch)->Arg(1)->Arg(0);

void BM_QuantizeVector(benchmark::State& state) {
  topk::util::Xoshiro256 rng(13);
  const auto x = topk::sparse::generate_dense_vector(1024, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(topk::core::quantize_vector(x));
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_QuantizeVector);

void BM_HalfRoundTrip(benchmark::State& state) {
  topk::util::Xoshiro256 rng(14);
  float value = static_cast<float>(rng.uniform());
  for (auto _ : state) {
    value = topk::fixed::half_bits_to_float(
        topk::fixed::float_to_half_bits(value * 1.0001f));
    benchmark::DoNotOptimize(value);
  }
}
BENCHMARK(BM_HalfRoundTrip);

void BM_PrecisionClosedForm(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        topk::core::expected_precision_closed(10'000'000, 32, 8, 100));
  }
}
BENCHMARK(BM_PrecisionClosedForm);

void BM_PrecisionMonteCarlo(benchmark::State& state) {
  topk::util::Xoshiro256 rng(15);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        topk::core::expected_precision_mc(10'000'000, 32, 8, 100, 1000, rng));
  }
}
BENCHMARK(BM_PrecisionMonteCarlo);

}  // namespace
