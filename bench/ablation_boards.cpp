// Ablation: deploying the design on other HBM boards and picking
// operating points automatically (paper section VI, future work).
//
// The conclusion proposes (a) smaller accelerator cards — "with
// similar memory bandwidth, the computation can be cheaper and even
// more power-efficient, with no performance loss" — and (b) adaptive
// reconfiguration of numerical precision for accuracy/performance
// targets.  This bench evaluates the paper's workload on the Alveo
// U280/U50/U55C profiles and runs the design-space explorer for a
// range of precision targets.
#include <iostream>

#include "bench_common.hpp"
#include "hbmsim/design_space.hpp"
#include "hbmsim/power_model.hpp"
#include "util/table.hpp"

namespace {

using topk::core::DesignConfig;
using topk::core::PacketLayout;
using topk::hbmsim::BoardProfile;
using topk::hbmsim::WorkloadGoal;
using topk::util::format_double;

WorkloadGoal paper_workload() {
  WorkloadGoal goal;
  goal.rows = 10'000'000;
  goal.cols = 1024;
  goal.nnz = 200'000'000;
  goal.top_k = 100;
  goal.min_precision = 0.99;
  goal.min_value_bits = 16;
  return goal;
}

}  // namespace

int main(int argc, char** argv) {
  (void)topk::bench::parse_args(argc, argv);
  const WorkloadGoal goal = paper_workload();

  std::cout << "Future-work ablation: boards and adaptive precision "
               "(paper section VI).\nWorkload: N = 1e7, M = 1024, 2e8 nnz, "
               "K = 100, precision floor 0.99.\n\n";

  // --- Boards: the paper's 20-bit design retargeted. -----------------
  std::cout << "[Boards] the 32-core 20-bit design on each card:\n";
  topk::util::TablePrinter boards_table(
      {"Board", "HBM peak [GB/s]", "Max cores (fabric)", "Latency [ms]",
       "Board power [W]", "Perf/W vs U280"});
  const DesignConfig design20 = DesignConfig::fixed(20);
  const PacketLayout layout20 = PacketLayout::solve(goal.cols, 20);
  double u280_perf_per_watt = 0.0;
  for (const BoardProfile& board : topk::hbmsim::all_boards()) {
    const auto point = topk::hbmsim::evaluate_design(design20, goal, board);
    const int max_cores =
        topk::hbmsim::max_cores_on_board(design20, layout20, board);
    const double perf_per_watt =
        (1.0 / point.modelled_seconds) / point.modelled_power_w;
    if (u280_perf_per_watt == 0.0) {
      u280_perf_per_watt = perf_per_watt;
    }
    boards_table.add_row(
        {board.name,
         format_double(board.hbm.peak_channel_gbps * board.hbm.channels, 0),
         std::to_string(max_cores),
         format_double(point.modelled_seconds * 1e3, 2),
         format_double(point.modelled_power_w, 0),
         format_double(perf_per_watt / u280_perf_per_watt, 2) + "x"});
  }
  boards_table.print(std::cout);

  // --- Adaptive precision: explorer recommendations. ------------------
  std::cout << "\n[Adaptive precision] explorer picks per precision "
               "target (U280):\n";
  topk::util::TablePrinter explorer_table(
      {"Precision floor", "Fastest design", "k", "E[P]", "Latency [ms]",
       "Cheapest design (<=1.5x slower)", "Power [W]"});
  for (const double floor : {0.90, 0.99, 0.999, 0.9999}) {
    WorkloadGoal target = goal;
    target.min_precision = floor;
    const auto fastest =
        topk::hbmsim::recommend_fastest(target, topk::hbmsim::board_u280());
    const auto cheapest =
        topk::hbmsim::recommend_cheapest(target, topk::hbmsim::board_u280());
    explorer_table.add_row(
        {format_double(floor, 4), fastest.design.name(),
         std::to_string(fastest.design.k),
         format_double(fastest.expected_precision, 4),
         format_double(fastest.modelled_seconds * 1e3, 2),
         cheapest.design.name(),
         format_double(cheapest.modelled_power_w, 0)});
  }
  explorer_table.print(std::cout);

  std::cout << "\nShape to verify: the U55C — the 'similar memory "
               "bandwidth' card of the paper's future-work claim — "
               "matches the U280 latency at lower static power, i.e. "
               "better perf/W with no performance loss; the U50 trades "
               "~1.45x latency (bandwidth ratio) for the lowest board "
               "power; tighter precision floors force larger k (more "
               "candidates) without hurting the bandwidth-bound "
               "latency.\n";
  return 0;
}
