// Reproduces Figure 6: the roofline model of the architecture.
//  (a) operational-intensity gain of BS-CSR (B = 5 naive COO vs B up
//      to 15) under the 1/8/16/32-core bandwidth ceilings;
//  (b) FPGA vs CPU and GPU: attainable and modelled-measured
//      performance at each platform's operational intensity.
#include <iostream>

#include "baselines/cpu_topk_spmv.hpp"
#include "baselines/gpu_model.hpp"
#include "bench_common.hpp"
#include "core/accelerator.hpp"
#include "hbmsim/timing_model.hpp"
#include "roofline/roofline.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using topk::core::DesignConfig;
using topk::core::PacketLayout;
using topk::roofline::attainable;
using topk::roofline::Ceiling;
using topk::util::format_double;

std::string eng(double value) {
  if (value >= 1e9) {
    return format_double(value / 1e9, 2) + "e9";
  }
  if (value >= 1e6) {
    return format_double(value / 1e6, 2) + "e6";
  }
  return format_double(value, 0);
}

}  // namespace

int main(int argc, char** argv) {
  const topk::bench::BenchArgs args = topk::bench::parse_args(argc, argv);
  const auto hbm = topk::hbmsim::alveo_u280();
  const DesignConfig design20 = DesignConfig::fixed(20);
  const PacketLayout layout20 = PacketLayout::solve(1024, 20);

  std::cout << "Reproducing paper Figure 6 (roofline model, performance in "
               "non-zeros/s, OI in nnz/byte).\n\n";

  // --- (a): BS-CSR OI sweep under core-count ceilings. ---------------
  std::cout << "[Figure 6a] Attainable performance vs OI; BS-CSR moves the "
               "design point from B=5 (naive COO) to B=15.\n";
  topk::util::TablePrinter ceilings({"Cores", "Bandwidth [GB/s]",
                                     "Perf @ B=5 [nnz/s]",
                                     "Perf @ B=15 [nnz/s]", "Gain"});
  for (const int cores : {1, 8, 16, 32}) {
    const Ceiling ceiling = topk::roofline::fpga_ceiling(
        DesignConfig::fixed(20, cores), layout20, hbm, cores);
    const double at_coo = attainable(ceiling, 5.0 / 64.0);
    const double at_bscsr = attainable(ceiling, 15.0 / 64.0);
    ceilings.add_row({std::to_string(cores),
                      format_double(ceiling.bandwidth_bytes_per_s / 1e9, 1),
                      eng(at_coo), eng(at_bscsr),
                      format_double(at_bscsr / at_coo, 2) + "x"});
  }
  ceilings.print(std::cout);

  std::cout << "\nOI sweep of the 32-core ceiling (log-spaced, B = 5..15 "
               "region):\n";
  topk::util::TablePrinter sweep({"OI [nnz/B]", "Attainable [nnz/s]",
                                  "Regime"});
  const Ceiling full = topk::roofline::fpga_ceiling(design20, layout20, hbm, 32);
  for (const auto& point :
       topk::roofline::ceiling_series(full, 0.02, 1.0, 9)) {
    sweep.add_row({format_double(point.operational_intensity, 3),
                   eng(point.performance),
                   point.performance < full.compute_peak ? "bandwidth"
                                                         : "compute"});
  }
  sweep.print(std::cout);

  // --- (b): cross-platform comparison. --------------------------------
  std::cout << "\n[Figure 6b] Platform comparison at each platform's own "
               "OI.\n";

  // CPU: measure a quick Top-K SpMV to place the measured point.
  const auto matrix = topk::bench::make_table3_matrix(
      args, 0.5e7, 1024, 20.0, topk::sparse::RowDistribution::kUniform, 0);
  topk::util::Xoshiro256 rng(args.seed);
  const auto x = topk::sparse::generate_dense_vector(matrix.cols(), rng);
  topk::util::WallTimer timer;
  (void)topk::baselines::cpu_topk_spmv(matrix, x, 100, args.threads);
  const double cpu_measured = matrix.nnz() / timer.seconds();

  // Modelled platforms are evaluated at paper-scale non-zero counts so
  // per-query fixed overheads do not distort the sustained-throughput
  // points (all models are nnz-linear).
  const double scale = args.full ? 1.0 : 20.0;
  const auto paper_nnz =
      static_cast<std::uint64_t>(static_cast<double>(matrix.nnz()) * scale);
  const topk::baselines::GpuPerfModel gpu;
  const double gpu_f32_measured =
      static_cast<double>(paper_nnz) / gpu.spmv_seconds(paper_nnz, false);
  const double gpu_f16_measured =
      static_cast<double>(paper_nnz) / gpu.spmv_seconds(paper_nnz, true);

  const auto fpga_rate = [&](const DesignConfig& design) {
    const topk::core::TopKAccelerator accelerator(matrix, design);
    const auto packets = static_cast<std::uint64_t>(
        static_cast<double>(accelerator.max_core_packets()) * scale);
    return static_cast<double>(paper_nnz) /
           topk::hbmsim::estimate_query_time(design, accelerator.layout(),
                                             packets, paper_nnz)
               .seconds;
  };
  const double fpga20_measured = fpga_rate(design20);
  const double fpga32_measured = fpga_rate(DesignConfig::fixed(32));

  // Platform ceilings: CPU ~282 GB/s (2x Xeon 6248, 6-ch DDR4-2933),
  // GPU 549 GB/s; OI: CSR 8 B/nnz (F32), 6 B/nnz (F16).
  const Ceiling cpu_ceiling{"CPU", 282e9, 0.0};
  const Ceiling gpu_ceiling{"GPU P100", 549e9, 0.0};
  const PacketLayout layout32 = PacketLayout::solve(1024, 32);

  topk::util::TablePrinter platforms(
      {"Platform", "OI [nnz/B]", "Attainable [nnz/s]", "Modelled/measured",
       "% of roof"});
  const auto add_platform = [&](const std::string& name, double oi,
                                const Ceiling& ceiling, double measured) {
    const double roof = attainable(ceiling, oi);
    platforms.add_row({name, format_double(oi, 3), eng(roof), eng(measured),
                       format_double(100.0 * measured / roof, 0) + "%"});
  };
  add_platform("CPU Top-K SpMV (measured here)",
               topk::roofline::gpu_intensity(false), cpu_ceiling, cpu_measured);
  add_platform("GPU SpMV F32 (model)", topk::roofline::gpu_intensity(false),
               gpu_ceiling, gpu_f32_measured);
  add_platform("GPU SpMV F16 (model)", topk::roofline::gpu_intensity(true),
               gpu_ceiling, gpu_f16_measured);
  add_platform("FPGA 32C 32b (model)",
               topk::roofline::bscsr_intensity(layout32),
               topk::roofline::fpga_ceiling(DesignConfig::fixed(32), layout32,
                                            hbm, 32),
               fpga32_measured);
  add_platform("FPGA 32C 20b (model)",
               topk::roofline::bscsr_intensity(layout20), full,
               fpga20_measured);
  platforms.print(std::cout);

  std::cout << "\nShape to verify (paper): performance scales linearly with "
               "HBM channels; BS-CSR lifts OI up to 3x over naive COO "
               "(2.8x at B=15); the FPGA point sits above both GPU points "
               "despite 20% less peak bandwidth.\n";
  return 0;
}
