// Mutable-tier benchmark: what absorbing mutations costs the serving
// path, and what compaction costs the mutating path.
//
// Three measurements over one mutable-sharded-cpu-heap index:
//
//   1. Delta-size vs latency curve — query latency (mean/p95) as the
//      in-memory delta grows from empty to many thousands of rows: the
//      brute-force delta scan rides on every query, so this curve is
//      the price of deferring compaction.
//   2. Sustained insert+query mix — four query threads run flat out
//      while one mutator streams appends/deletes and a compactor
//      thread folds the delta whenever the mutation threshold trips;
//      reported throughput covers the full mix, swap included.
//   3. Compaction pause percentiles — per-compaction snapshot and
//      atomic-swap durations (the ONLY sections mutations/queries can
//      observe as a pause; fold/build/save/load run off the serving
//      path) over every compaction the mix triggered.
//
// The identity gate runs at every stage and the bench exits non-zero
// on any violation: results with a live delta, after every compaction
// swap, and after the sustained mix settle must be bit-identical to an
// exact-sort index rebuilt cold from the logically-equivalent matrix
// (live rows, ascending id order).
//
//   $ ./bench_mutability [--quick] [--full] [--queries=N] [--seed=N]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "index/mutable_index.hpp"
#include "index/registry.hpp"
#include "persist/compactor.hpp"
#include "shard/mutable_sharded_index.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

constexpr int kShards = 4;
constexpr int kTopK = 50;
constexpr int kQueryThreads = 4;

using topk::core::TopKEntry;

/// One sparse row as parallel column/value arrays.
struct Row {
  std::vector<std::uint32_t> columns;
  std::vector<float> values;
};

Row random_row(std::uint32_t cols, std::uint32_t nnz,
               topk::util::Xoshiro256& rng) {
  Row row;
  std::vector<std::uint32_t> pool(cols);
  for (std::uint32_t c = 0; c < cols; ++c) {
    pool[c] = c;
  }
  for (std::uint32_t i = 0; i < nnz; ++i) {
    std::swap(pool[i], pool[i + rng() % (cols - i)]);
  }
  std::vector<std::uint32_t> picked(pool.begin(), pool.begin() + nnz);
  std::sort(picked.begin(), picked.end());
  for (const std::uint32_t c : picked) {
    row.columns.push_back(c);
    row.values.push_back(static_cast<float>(rng.uniform(0.05, 1.0)));
  }
  return row;
}

/// Mirror of the logical matrix: every mutation applied to the index
/// is applied here, and the oracle rebuild reads the live rows back in
/// ascending id order.
class LogicalModel {
 public:
  explicit LogicalModel(const topk::sparse::Csr& base) : cols_(base.cols()) {
    rows_.reserve(base.rows());
    for (std::uint32_t r = 0; r < base.rows(); ++r) {
      Row row;
      const auto cols = base.row_cols(r);
      const auto vals = base.row_values(r);
      row.columns.assign(cols.begin(), cols.end());
      row.values.assign(vals.begin(), vals.end());
      rows_.emplace_back(std::move(row));
    }
  }

  void append(const Row& row) { rows_.emplace_back(row); }
  void erase(std::uint32_t id) { rows_[id] = std::nullopt; }
  [[nodiscard]] std::uint32_t total_rows() const {
    return static_cast<std::uint32_t>(rows_.size());
  }

  /// The live-rows matrix and the oracle-row -> global-id remap.
  [[nodiscard]] std::pair<topk::sparse::Csr, std::vector<std::uint32_t>>
  oracle() const {
    std::vector<std::uint32_t> live_ids;
    for (std::uint32_t id = 0; id < rows_.size(); ++id) {
      if (rows_[id].has_value()) {
        live_ids.push_back(id);
      }
    }
    topk::sparse::Coo coo(static_cast<std::uint32_t>(live_ids.size()), cols_);
    for (std::uint32_t r = 0; r < live_ids.size(); ++r) {
      const Row& row = *rows_[live_ids[r]];
      for (std::size_t i = 0; i < row.columns.size(); ++i) {
        coo.push_back(r, row.columns[i], row.values[i]);
      }
    }
    return {topk::sparse::Csr::from_coo(std::move(coo)), std::move(live_ids)};
  }

 private:
  std::uint32_t cols_;
  std::vector<std::optional<Row>> rows_;
};

/// The identity gate: `index` vs an exact-sort rebuild of the model's
/// live matrix, bit-for-bit under the monotone live-id remap.
bool identical_to_rebuild(const topk::index::SimilarityIndex& index,
                          const LogicalModel& model, int queries,
                          std::uint64_t seed, const std::string& stage) {
  auto [matrix, live_ids] = model.oracle();
  const topk::index::ExactSortIndex rebuilt(
      std::make_shared<const topk::sparse::Csr>(std::move(matrix)));
  topk::util::Xoshiro256 rng(seed);
  for (int q = 0; q < queries; ++q) {
    const auto x = topk::sparse::generate_dense_vector(index.cols(), rng);
    auto expected = rebuilt.query(x, kTopK).entries;
    for (TopKEntry& entry : expected) {
      entry.index = live_ids[entry.index];
    }
    if (index.query(x, kTopK).entries != expected) {
      std::cerr << "FAIL: " << stage << " query " << q
                << " differs from the exact-sort rebuild of the "
                   "logically-equivalent matrix\n";
      return false;
    }
  }
  return true;
}

double quantile_ms(std::vector<double> seconds, double q) {
  if (seconds.empty()) {
    return 0.0;
  }
  return topk::util::quantile(seconds, q) * 1e3;
}

std::string ms(double value) { return topk::util::format_double(value, 3); }

}  // namespace

int main(int argc, char** argv) {
  const topk::bench::BenchArgs args = topk::bench::parse_args(argc, argv);

  topk::sparse::GeneratorConfig generator;
  generator.rows = args.quick ? 8'000 : (args.full ? 400'000 : 60'000);
  generator.cols = 256;
  generator.mean_nnz_per_row = 12.0;
  generator.seed = args.seed;
  const auto matrix = std::make_shared<const topk::sparse::Csr>(
      topk::sparse::generate_matrix(generator));

  const std::vector<std::uint32_t> delta_points =
      args.quick ? std::vector<std::uint32_t>{256, 1'024, 4'096}
                 : (args.full
                        ? std::vector<std::uint32_t>{4'096, 16'384, 65'536}
                        : std::vector<std::uint32_t>{1'024, 4'096, 16'384});
  const int curve_queries = args.queries > 0 ? args.queries
                                             : (args.quick ? 12 : 32);
  const std::uint64_t mix_mutations =
      args.quick ? 2'000 : (args.full ? 40'000 : 10'000);
  const std::uint64_t compact_threshold = mix_mutations / 5;
  const int gate_queries = args.quick ? 3 : 4;

  std::cout << "Mutability bench: " << matrix->rows() << " base rows, "
            << matrix->nnz() << " nnz, " << kShards
            << " cpu-heap shards, top-" << kTopK << "\n\n";

  bool gate_passed = true;
  std::vector<topk::bench::JsonRecord> records;

  // ---- 1. delta-size vs latency curve --------------------------------
  {
    topk::index::IndexOptions options;
    options.shards = kShards;
    auto index = topk::index::make_index("mutable-sharded-cpu-heap", matrix,
                                         options);
    const auto mut = topk::index::as_mutable(index);
    LogicalModel model(*matrix);
    topk::util::Xoshiro256 rng(args.seed + 1);
    topk::util::Xoshiro256 query_rng(args.seed + 2);
    std::vector<std::vector<float>> queries;
    for (int q = 0; q < curve_queries; ++q) {
      queries.push_back(
          topk::sparse::generate_dense_vector(generator.cols, query_rng));
    }

    topk::util::TablePrinter curve({"Delta rows", "Live rows", "Mean (ms)",
                                    "p95 (ms)", "Identical"});
    const auto measure = [&](const std::string& label) {
      std::vector<double> latencies;
      for (const auto& x : queries) {
        topk::util::WallTimer timer;
        (void)index->query(x, kTopK);
        latencies.push_back(timer.seconds());
      }
      const bool identical = identical_to_rebuild(
          *index, model, gate_queries, args.seed + 3, "delta curve " + label);
      gate_passed = gate_passed && identical;
      double sum = 0.0;
      for (const double l : latencies) {
        sum += l;
      }
      const double mean_ms =
          sum / static_cast<double>(latencies.size()) * 1e3;
      curve.add_row({label, std::to_string(mut->live_rows()),
                     ms(mean_ms), ms(quantile_ms(latencies, 0.95)),
                     identical ? "yes" : "NO"});
      records.emplace_back(
          topk::bench::JsonRecord()
              .add("section", "delta_curve")
              .add("delta", label)
              .add("live_rows", static_cast<std::uint64_t>(mut->live_rows()))
              .add("mean_ms", mean_ms)
              .add("p95_ms", quantile_ms(latencies, 0.95))
              .add("identical", identical));
    };

    measure("0");
    std::uint32_t appended = 0;
    for (const std::uint32_t target : delta_points) {
      while (appended < target) {
        const Row row = random_row(generator.cols, 12, rng);
        (void)mut->insert_row(row.columns, row.values);
        model.append(row);
        ++appended;
      }
      measure(std::to_string(target));
    }

    // Fold the accumulated delta and re-run the gate on the swapped
    // generation: compacted results must not move by a bit.
    const auto typed =
        std::dynamic_pointer_cast<topk::shard::MutableShardedIndex>(index);
    topk::persist::Compactor compactor(
        typed, std::filesystem::temp_directory_path() /
                   ("topk_bench_mutability_" + std::to_string(args.seed)));
    const auto report = compactor.compact();
    if (report.has_value()) {
      measure("0 (gen " + std::to_string(report->generation) + ")");
      std::filesystem::remove_all(compactor.root());
    }
    std::cout << "Delta-size vs latency (the cost of deferring compaction):\n";
    curve.print(std::cout);
    std::cout << "\n";
  }

  // ---- 2 + 3. sustained mix with threshold-driven compaction ---------
  {
    topk::index::IndexOptions options;
    options.shards = kShards;
    options.compact_threshold = compact_threshold;
    auto index = topk::index::make_index("mutable-sharded-cpu-heap", matrix,
                                         options);
    const auto mut = topk::index::as_mutable(index);
    const auto typed =
        std::dynamic_pointer_cast<topk::shard::MutableShardedIndex>(index);
    topk::persist::Compactor compactor(
        typed, std::filesystem::temp_directory_path() /
                   ("topk_bench_mutability_mix_" + std::to_string(args.seed)));
    LogicalModel model(*matrix);

    std::atomic<bool> mutator_done{false};
    std::atomic<std::uint64_t> queries_served{0};
    std::vector<std::vector<double>> latencies(kQueryThreads);
    std::vector<std::thread> readers;
    for (int t = 0; t < kQueryThreads; ++t) {
      readers.emplace_back([&, t] {
        topk::util::Xoshiro256 rng(args.seed + 10 + static_cast<std::uint64_t>(t));
        while (!mutator_done.load(std::memory_order_relaxed)) {
          const auto x =
              topk::sparse::generate_dense_vector(generator.cols, rng);
          topk::util::WallTimer timer;
          (void)index->query(x, kTopK);
          latencies[static_cast<std::size_t>(t)].push_back(timer.seconds());
          queries_served.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    // The compactor rides the mutation threshold: poll cheaply, fold
    // whenever mutations_since_seal crosses it.
    std::thread folder([&] {
      while (!mutator_done.load(std::memory_order_relaxed)) {
        (void)compactor.maybe_compact();
        std::this_thread::yield();
      }
    });

    // The single mutator: 80% appends, 20% deletes of base ids, every
    // mutation mirrored into the model (it is the only mutation
    // source, so append ids are sequential and the mirror is exact).
    // Paced so the stream overlaps queries and compactions instead of
    // finishing before either gets a turn.
    topk::util::WallTimer mix_timer;
    {
      topk::util::Xoshiro256 rng(args.seed + 20);
      for (std::uint64_t m = 0; m < mix_mutations; ++m) {
        if (m % 100 == 99) {
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        if (rng() % 5 == 0) {
          const auto id = static_cast<std::uint32_t>(rng() % matrix->rows());
          (void)mut->delete_row(id);
          model.erase(id);
        } else {
          const Row row = random_row(generator.cols, 12, rng);
          (void)mut->insert_row(row.columns, row.values);
          model.append(row);
        }
      }
    }
    mutator_done.store(true, std::memory_order_relaxed);
    const double mix_seconds = mix_timer.seconds();
    for (auto& reader : readers) {
      reader.join();
    }
    folder.join();
    // Fold whatever residue the threshold never reached, so the gate
    // also covers a final post-swap state.
    (void)compactor.compact();

    std::vector<double> all_latencies;
    for (const auto& thread_latencies : latencies) {
      all_latencies.insert(all_latencies.end(), thread_latencies.begin(),
                           thread_latencies.end());
    }
    const auto history = compactor.history();
    std::vector<double> snapshot_pauses;
    std::vector<double> swap_pauses;
    for (const auto& report : history) {
      snapshot_pauses.push_back(report.snapshot_seconds);
      swap_pauses.push_back(report.swap_seconds);
    }

    std::cout << "Sustained mix: " << mix_mutations << " mutations (~80% "
              << "append / 20% delete) against " << kQueryThreads
              << " query threads, compaction threshold " << compact_threshold
              << " mutations\n";
    topk::util::TablePrinter mix({"Metric", "Value"});
    mix.add_row({"Mutations/s", topk::util::format_double(
                                    mix_mutations / mix_seconds, 0)});
    mix.add_row({"Queries served", std::to_string(queries_served.load())});
    mix.add_row({"Query p50 (ms)",
                 ms(all_latencies.empty()
                        ? 0.0
                        : quantile_ms(all_latencies, 0.5))});
    mix.add_row({"Query p95 (ms)", ms(quantile_ms(all_latencies, 0.95))});
    mix.add_row({"Compactions", std::to_string(history.size())});
    mix.add_row({"Final generation",
                 std::to_string(mut->delta_stats().generation)});
    mix.print(std::cout);

    std::cout << "\nCompaction pauses (the only serving-path stalls; "
                 "fold/build/save/load run concurrently):\n";
    topk::util::TablePrinter pauses(
        {"Pause", "p50 (ms)", "p95 (ms)", "max (ms)"});
    const auto max_ms = [](const std::vector<double>& seconds) {
      double max_value = 0.0;
      for (const double s : seconds) {
        max_value = std::max(max_value, s);
      }
      return max_value * 1e3;
    };
    pauses.add_row({"Delta snapshot", ms(quantile_ms(snapshot_pauses, 0.5)),
                    ms(quantile_ms(snapshot_pauses, 0.95)),
                    ms(max_ms(snapshot_pauses))});
    pauses.add_row({"Atomic swap", ms(quantile_ms(swap_pauses, 0.5)),
                    ms(quantile_ms(swap_pauses, 0.95)),
                    ms(max_ms(swap_pauses))});
    pauses.print(std::cout);

    const bool identical = identical_to_rebuild(
        *index, model, gate_queries, args.seed + 30, "sustained mix settle");
    gate_passed = gate_passed && identical;
    std::cout << "\nSettled state bit-identical to exact-sort rebuild: "
              << (identical ? "yes" : "NO") << "\n";
    records.emplace_back(
        topk::bench::JsonRecord()
            .add("section", "mix")
            .add("mutations", mix_mutations)
            .add("mutations_per_second", mix_mutations / mix_seconds)
            .add("queries_served", queries_served.load())
            .add("query_p50_ms", quantile_ms(all_latencies, 0.5))
            .add("query_p95_ms", quantile_ms(all_latencies, 0.95))
            .add("compactions", static_cast<std::uint64_t>(history.size()))
            .add("final_generation", mut->delta_stats().generation)
            .add("identical", identical));
    records.emplace_back(
        topk::bench::JsonRecord()
            .add("section", "pauses")
            .add("snapshot_p50_ms", quantile_ms(snapshot_pauses, 0.5))
            .add("snapshot_p95_ms", quantile_ms(snapshot_pauses, 0.95))
            .add("swap_p50_ms", quantile_ms(swap_pauses, 0.5))
            .add("swap_p95_ms", quantile_ms(swap_pauses, 0.95)));
    std::filesystem::remove_all(compactor.root());
  }

  topk::bench::write_json_results(args, "mutability", records);
  if (!gate_passed) {
    std::cerr << "FAIL: mutable-tier results diverged from the cold exact "
                 "rebuild\n";
    return 1;
  }
  return 0;
}
