// Reproduces Table II: resource usage, clock frequency and power of
// the four evaluated designs.  Synthesis is unavailable offline, so
// the figures come from the calibrated resource model (exact for the
// paper's designs, analytic for everything else); the analytic block
// demonstrates the model on configurations the paper only mentions
// (more cores, different k/r).
#include <iostream>

#include "bench_common.hpp"
#include "core/packet_layout.hpp"
#include "hbmsim/resource_model.hpp"
#include "util/table.hpp"

namespace {

using topk::core::DesignConfig;
using topk::core::PacketLayout;
using topk::hbmsim::estimate_resources;
using topk::hbmsim::fits_device;
using topk::hbmsim::fractions;
using topk::hbmsim::ResourceFractions;
using topk::hbmsim::ResourceUsage;
using topk::util::format_double;

std::string percent(double fraction) {
  return format_double(fraction * 100.0, 0) + "%";
}

void add_design_row(topk::util::TablePrinter& table, const std::string& name,
                    const DesignConfig& design) {
  const PacketLayout layout = PacketLayout::solve(1024, design.value_bits);
  const ResourceUsage usage = estimate_resources(design, layout);
  const ResourceFractions f = fractions(usage);
  table.add_row({name, std::to_string(design.cores), percent(f.lut),
                 percent(f.ff), percent(f.bram), percent(f.uram),
                 percent(f.dsp), format_double(usage.clock_mhz, 0),
                 format_double(usage.power_w, 0) + " W",
                 fits_device(usage) ? "yes" : "NO"});
}

}  // namespace

int main(int argc, char** argv) {
  (void)topk::bench::parse_args(argc, argv);

  std::cout << "Reproducing paper Table II (resource usage, clock, power; "
               "modelled - no synthesis available offline).\n\n";
  topk::util::TablePrinter table({"Bit-width", "Cores", "LUT", "FF", "BRAM",
                                  "URAM", "DSP", "Clock (MHz)", "Power",
                                  "Fits"});
  add_design_row(table, "20 bits", DesignConfig::fixed(20));
  add_design_row(table, "25 bits", DesignConfig::fixed(25));
  add_design_row(table, "32 bits", DesignConfig::fixed(32));
  add_design_row(table, "32 bits, float", DesignConfig::float32());
  table.add_separator();

  // Beyond-Table-II configurations via the analytic path.
  DesignConfig dense_k = DesignConfig::fixed(20);
  dense_k.k = 16;
  add_design_row(table, "20 bits, k=16", dense_k);
  DesignConfig many_cores = DesignConfig::fixed(20, 64);
  add_design_row(table, "20 bits, 64 cores", many_cores);
  DesignConfig small = DesignConfig::fixed(20, 16);
  add_design_row(table, "20 bits, 16 cores", small);
  add_design_row(table, "20 bits, signed (ext.)", DesignConfig::signed_fixed(20));
  table.print(std::cout);

  std::cout << "\nAvailable (xcu280): LUT 1097419, FF 2180971, BRAM 1812, "
               "URAM 960, DSP 9020.\n";
  std::cout << "Paper reference rows: 20b 38/35/20/33/7% @253MHz 34W; 25b "
               "38/36/20/30/11% @240MHz 35W; 32b 35/33/20/27/17% @249MHz "
               "35W; F32 44/37/20/26/19% @204MHz 45W.\n";
  std::cout << "The 64-core row supports the paper's claim that HBM "
               "channels, not fabric, limit the core count.\n";
  return 0;
}
