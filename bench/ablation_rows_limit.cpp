// Ablation: the rows-per-packet budget r (paper section IV-B).
// The hardware tracks results for at most r finished rows per packet;
// the paper reports that B/4 < r < B/2 saves up to 50% of the Top-K
// stage's resources with no accuracy loss on realistic densities.
// This bench sweeps r on a realistic and on an adversarial matrix,
// reporting dropped rows, measured precision against the exact result,
// modelled LUT savings, and the padding cost of the encoder-side
// enforcement alternative.
#include <iostream>

#include "baselines/cpu_topk_spmv.hpp"
#include "bench_common.hpp"
#include "core/accelerator.hpp"
#include "eval/ranking.hpp"
#include "hbmsim/resource_model.hpp"
#include "util/table.hpp"

namespace {

using topk::core::DesignConfig;
using topk::core::TopKAccelerator;
using topk::util::format_double;

void sweep_matrix(const topk::bench::BenchArgs& args, const std::string& label,
                  const topk::sparse::Csr& matrix) {
  constexpr int kTopK = 64;
  topk::util::Xoshiro256 rng(args.seed + 5);
  const auto x = topk::sparse::generate_dense_vector(matrix.cols(), rng);
  const auto exact = topk::baselines::cpu_topk_spmv(matrix, x, kTopK, args.threads);
  std::vector<std::uint32_t> relevant;
  for (const auto& entry : exact) {
    relevant.push_back(entry.index);
  }

  const topk::core::PacketLayout layout =
      topk::core::PacketLayout::solve(matrix.cols(), 20);

  std::cout << "\n[" << label << "] rows = " << matrix.rows()
            << ", nnz = " << matrix.nnz() << ", B = " << layout.capacity
            << ":\n";
  topk::util::TablePrinter table({"r", "Rows dropped", "Precision@64",
                                  "LUT (model)", "Enforced packets (+%)"});

  // Baseline packet count without enforcement.
  DesignConfig probe = DesignConfig::fixed(20, 8);
  const TopKAccelerator baseline(matrix, probe);
  const double base_packets =
      static_cast<double>(baseline.query(x, kTopK).stats.total_packets);

  for (const int r : {1, 2, 4, 8, layout.capacity}) {
    DesignConfig design = DesignConfig::fixed(20, 8);
    design.rows_per_packet = r;
    const TopKAccelerator accelerator(matrix, design);
    const auto result = accelerator.query(x, kTopK);

    std::vector<std::uint32_t> retrieved;
    for (const auto& entry : result.entries) {
      retrieved.push_back(entry.index);
    }
    const double precision = topk::eval::precision_at_k(retrieved, relevant);
    const double lut =
        topk::hbmsim::estimate_resources(design, accelerator.layout()).lut;

    // Encoder-side enforcement: packets added to guarantee zero drops.
    DesignConfig enforced = design;
    enforced.enforce_r_in_encoder = true;
    const TopKAccelerator enforced_accelerator(matrix, enforced);
    const auto enforced_result = enforced_accelerator.query(x, kTopK);
    const double enforced_packets =
        static_cast<double>(enforced_result.stats.total_packets);

    table.add_row(
        {std::to_string(r), std::to_string(result.stats.rows_dropped),
         format_double(precision, 3), format_double(lut / 1000.0, 0) + "k",
         format_double(enforced_packets, 0) + " (+" +
             format_double(100.0 * (enforced_packets / base_packets - 1.0), 1) +
             "%)"});
    if (enforced_result.stats.rows_dropped != 0) {
      std::cout << "ERROR: enforcement must eliminate drops\n";
    }
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const topk::bench::BenchArgs args = topk::bench::parse_args(argc, argv);
  std::cout << "Ablation of the rows-per-packet budget r (section IV-B).\n";

  {
    // Realistic: Table III density (20 nnz/row vs B = 15): at most 1-2
    // rows finish per packet, so even r = 2 is lossless.
    const auto matrix = topk::bench::make_table3_matrix(
        args, 0.5e7 / 10, 1024, 20.0, topk::sparse::RowDistribution::kUniform,
        4);
    sweep_matrix(args, "Realistic density (20 nnz/row)", matrix);
  }
  {
    // Adversarial: ~1.5 nnz/row packs up to B rows into one packet;
    // small r now drops rows and costs precision, unless the encoder
    // enforces the budget.
    topk::sparse::GeneratorConfig config;
    config.rows = args.scale_rows(0.5e7 / 10);
    config.cols = 1024;
    config.mean_nnz_per_row = 1.5;
    config.seed = args.seed + 6;
    sweep_matrix(args, "Adversarial density (1.5 nnz/row)",
                 topk::sparse::generate_matrix(config));
  }

  std::cout << "\nShape to verify (paper): on realistic densities r in "
               "(B/4, B/2) loses nothing while the Top-K stage LUT model "
               "shrinks; only adversarial sub-2 nnz/row matrices make small "
               "r lossy, and encoder enforcement restores exactness for a "
               "few percent more packets.\n";
  return 0;
}
