// Reproduces Table III: the evaluation matrices and their BS-CSR
// memory footprint.  By default matrices are generated at 1/20th of
// the paper's row counts and the footprint is extrapolated linearly to
// paper scale (the encoder is size-linear); --full generates the real
// sizes (several GB of RAM, minutes).
#include <iostream>

#include "bench_common.hpp"
#include "core/bscsr.hpp"
#include "core/packet_layout.hpp"
#include "util/table.hpp"

namespace {

using topk::bench::BenchArgs;
using topk::core::encode_bscsr;
using topk::core::PacketLayout;
using topk::core::ValueKind;
using topk::sparse::RowDistribution;
using topk::util::format_bytes;

struct Family {
  const char* label;
  RowDistribution distribution;
  double paper_rows;
};

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = topk::bench::parse_args(argc, argv);
  const double shrink = args.full ? 1.0 : 20.0;

  std::cout << "Reproducing paper Table III (evaluation matrices, BS-CSR "
               "sizes as in Figure 3, V = 20 bits).\n";
  if (!args.full) {
    std::cout << "(default scale: rows / " << shrink
              << ", sizes extrapolated to paper scale; --full for real "
                 "sizes)\n";
  }
  std::cout << '\n';

  const Family families[] = {
      {"Uniform", RowDistribution::kUniform, 0.5e7},
      {"Uniform", RowDistribution::kUniform, 1.0e7},
      {"Uniform", RowDistribution::kUniform, 1.5e7},
      {"Gamma(3,4/3)", RowDistribution::kGamma, 0.5e7},
      {"Gamma(3,4/3)", RowDistribution::kGamma, 1.0e7},
      {"Gamma(3,4/3)", RowDistribution::kGamma, 1.5e7},
  };

  topk::util::TablePrinter table({"Distribution", "Rows", "Non-zeros (min-max)",
                                  "BS-CSR size (min-max)", "vs naive COO"});
  std::uint64_t seed_offset = 0;
  for (const Family& family : families) {
    std::uint64_t nnz_min = UINT64_MAX;
    std::uint64_t nnz_max = 0;
    std::uint64_t size_min = UINT64_MAX;
    std::uint64_t size_max = 0;
    double coo_ratio = 0.0;
    int measured = 0;
    // Table III spans M in {512, 1024} and 20/40 average nnz per row.
    for (const std::uint32_t cols : {512u, 1024u}) {
      for (const double mean_nnz : {20.0, 40.0}) {
        const auto matrix = topk::bench::make_table3_matrix(
            args, family.paper_rows, cols, mean_nnz, family.distribution,
            seed_offset++);
        const PacketLayout layout = PacketLayout::solve(cols, 20);
        const auto encoded = encode_bscsr(matrix, layout, ValueKind::kFixed);
        const auto scale = static_cast<std::uint64_t>(shrink);
        nnz_min = std::min(nnz_min, matrix.nnz() * scale);
        nnz_max = std::max(nnz_max, matrix.nnz() * scale);
        size_min = std::min(size_min, encoded.stream_bytes() * scale);
        size_max = std::max(size_max, encoded.stream_bytes() * scale);
        coo_ratio += static_cast<double>(matrix.nnz() * 12) /
                     static_cast<double>(encoded.stream_bytes());
        ++measured;
      }
    }
    table.add_row({family.label,
                   topk::util::format_double(family.paper_rows / 1e7, 1) +
                       "e7",
                   topk::util::format_double(static_cast<double>(nnz_min) / 1e8, 2) +
                       "e8 - " +
                       topk::util::format_double(static_cast<double>(nnz_max) / 1e8, 2) +
                       "e8",
                   format_bytes(static_cast<double>(size_min)) + " - " +
                       format_bytes(static_cast<double>(size_max)),
                   topk::util::format_double(coo_ratio / measured, 2) + "x"});
  }

  // Sparsified GloVe-like corpus (paper: 0.2e7 rows, 2.4e7-4.6e7 nnz,
  // 0.1-0.3 GB).
  const auto glove = topk::bench::make_glove_like_matrix(args);
  const double glove_scale = args.full ? 1.0 : 100.0;
  const PacketLayout glove_layout = PacketLayout::solve(glove.cols(), 20);
  const auto glove_encoded = encode_bscsr(glove, glove_layout, ValueKind::kFixed);
  table.add_separator();
  table.add_row({"Sparsified GloVe-like", "0.2e7",
                 topk::util::format_double(
                     static_cast<double>(glove.nnz()) * glove_scale / 1e7, 2) +
                     "e7",
                 format_bytes(static_cast<double>(glove_encoded.stream_bytes()) *
                              glove_scale),
                 topk::util::format_double(
                     static_cast<double>(glove.nnz() * 12) /
                         static_cast<double>(glove_encoded.stream_bytes()),
                     2) +
                     "x"});
  table.print(std::cout);

  std::cout << "\nPaper reference: uniform 0.5e7 rows -> 1e8-2e8 nnz, "
               "0.4-0.8 GB; 1e7 -> 2e8-4e8, 0.8-1.7 GB; 1.5e7 -> 3e8-6e8, "
               "1.2-2.5 GB; GloVe 2.4e7-4.6e7 nnz, 0.1-0.3 GB.\n";
  std::cout << "Stored as naive COO the matrices would take ~3x the space "
               "(section V), matching the ratio column.\n";
  return 0;
}
