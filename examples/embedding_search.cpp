// Embedding similarity search end to end — the paper's motivating
// application (section I): a document/item corpus as dense embeddings,
// sparsified by dictionary coding, indexed once, and queried for
// nearest neighbours on EVERY registered backend, with accuracy
// measured against the exact CPU search.  One matrix, one loop, four
// execution strategies — the comparison the unified index API exists
// for.
//
//   $ ./embedding_search
#include <iostream>
#include <memory>

#include "embed/sparsify.hpp"
#include "eval/ranking.hpp"
#include "index/registry.hpp"
#include "sparse/generator.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  // 1. A GloVe-like dense corpus: 50k "documents", 300 dimensions,
  //    clustered by topic.
  topk::embed::CorpusConfig corpus_config;
  corpus_config.rows = 50'000;
  corpus_config.dim = 300;
  corpus_config.clusters = 128;
  corpus_config.seed = 3;
  std::cout << "Generating corpus (" << corpus_config.rows << " x "
            << corpus_config.dim << ")...\n";
  const topk::embed::DenseEmbeddings corpus =
      topk::embed::generate_glove_like(corpus_config);

  // 2. Sparsify with a 1024-atom random dictionary (the offline stand-
  //    in for dictionary learning [21]): ~16 non-zeros per document.
  const topk::embed::Dictionary dictionary(1024, corpus_config.dim, 4);
  topk::embed::SparsifyConfig sparsify_config;
  sparsify_config.target_nnz = 16;
  sparsify_config.use_matching_pursuit = false;
  topk::util::WallTimer sparsify_timer;
  const auto matrix = std::make_shared<const topk::sparse::Csr>(
      topk::embed::sparsify_corpus(corpus, dictionary, sparsify_config));
  std::cout << "Sparsified to " << matrix->nnz() << " nnz ("
            << static_cast<double>(matrix->nnz()) / matrix->rows()
            << " per row) in " << sparsify_timer.seconds() << " s\n";

  // 3. One index per registered backend over the shared matrix (16
  //    FPGA cores here: a mid-range config).  cpu-heap doubles as the
  //    exact reference.
  topk::index::IndexOptions options;
  options.design = topk::core::DesignConfig::fixed(20, 16);
  const auto reference = topk::index::make_index("cpu-heap", matrix);
  std::cout << '\n';

  // 4. Query: sparse-code fresh dense vectors near existing documents
  //    and compare every backend with the exact scan.
  constexpr int kQueries = 5;
  constexpr int kTopK = 10;
  topk::util::TablePrinter table(
      {"Backend", "Exact", "Top-1 agreement", "Precision@10", "NDCG@10"});
  for (const std::string& name : topk::index::registered_backends()) {
    const auto index = topk::index::make_index(name, matrix, options);
    topk::util::Xoshiro256 rng(5);  // same queries for every backend
    int top1_matches = 0;
    double precision_sum = 0.0;
    double ndcg_sum = 0.0;
    for (int q = 0; q < kQueries; ++q) {
      const auto source =
          static_cast<std::uint32_t>(rng.bounded(matrix->rows()));
      const std::vector<float> x =
          topk::sparse::generate_query_near_row(*matrix, source, 0.05, rng);

      const auto result = index->query(x, kTopK);
      const auto exact = reference->query(x, kTopK);
      const topk::eval::TopKQuality quality = topk::eval::evaluate_topk(
          result.entries, exact.entries,
          [&](std::uint32_t row) { return matrix->row_dot(row, x); });
      top1_matches +=
          result.entries.front().index == exact.entries.front().index ? 1 : 0;
      precision_sum += quality.precision;
      ndcg_sum += quality.ndcg;
    }
    table.add_row({name, index->describe().exact ? "yes" : "no",
                   std::to_string(top1_matches) + "/" +
                       std::to_string(kQueries),
                   topk::util::format_double(precision_sum / kQueries, 3),
                   topk::util::format_double(ndcg_sum / kQueries, 3)});
  }
  table.print(std::cout);
  std::cout << "\nThe approximate backends (fpga-sim, gpu-f16) retrieve the "
               "same neighbours as the exact scans (precision ~1) at a "
               "fraction of the modelled latency.\n";
  return 0;
}
