// Embedding similarity search end to end — the paper's motivating
// application (section I): a document/item corpus as dense embeddings,
// sparsified by dictionary coding, indexed on the accelerator, and
// queried for nearest neighbours, with accuracy measured against the
// exact CPU search.
//
//   $ ./embedding_search
#include <iostream>

#include "baselines/cpu_topk_spmv.hpp"
#include "core/accelerator.hpp"
#include "embed/sparsify.hpp"
#include "metrics/ranking.hpp"
#include "sparse/generator.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  // 1. A GloVe-like dense corpus: 50k "documents", 300 dimensions,
  //    clustered by topic.
  topk::embed::CorpusConfig corpus_config;
  corpus_config.rows = 50'000;
  corpus_config.dim = 300;
  corpus_config.clusters = 128;
  corpus_config.seed = 3;
  std::cout << "Generating corpus (" << corpus_config.rows << " x "
            << corpus_config.dim << ")...\n";
  const topk::embed::DenseEmbeddings corpus =
      topk::embed::generate_glove_like(corpus_config);

  // 2. Sparsify with a 1024-atom random dictionary (the offline stand-
  //    in for dictionary learning [21]): ~16 non-zeros per document.
  const topk::embed::Dictionary dictionary(1024, corpus_config.dim, 4);
  topk::embed::SparsifyConfig sparsify_config;
  sparsify_config.target_nnz = 16;
  sparsify_config.use_matching_pursuit = false;
  topk::util::WallTimer sparsify_timer;
  const topk::sparse::Csr matrix =
      topk::embed::sparsify_corpus(corpus, dictionary, sparsify_config);
  std::cout << "Sparsified to " << matrix.nnz() << " nnz ("
            << static_cast<double>(matrix.nnz()) / matrix.rows()
            << " per row) in " << sparsify_timer.seconds() << " s\n";

  // 3. Index on the accelerator (16 cores here: a mid-range config).
  const topk::core::TopKAccelerator accelerator(
      matrix, topk::core::DesignConfig::fixed(20, 16));

  // 4. Query: sparse-code a fresh dense vector near an existing
  //    document, search, and compare with the exact CPU scan.
  topk::util::Xoshiro256 rng(5);
  topk::util::TablePrinter table(
      {"Query near doc", "Top-1 (FPGA sim)", "Top-1 (exact)", "Precision@10",
       "NDCG@10"});
  for (int q = 0; q < 5; ++q) {
    const auto source = static_cast<std::uint32_t>(rng.bounded(matrix.rows()));
    const std::vector<float> x =
        topk::sparse::generate_query_near_row(matrix, source, 0.05, rng);

    const topk::core::QueryResult result = accelerator.query(x, 10);
    const auto exact = topk::baselines::cpu_topk_spmv(matrix, x, 10);
    const topk::metrics::TopKQuality quality = topk::metrics::evaluate_topk(
        result.entries, exact,
        [&](std::uint32_t row) { return matrix.row_dot(row, x); });

    table.add_row({std::to_string(source),
                   std::to_string(result.entries.front().index),
                   std::to_string(exact.front().index),
                   topk::util::format_double(quality.precision, 3),
                   topk::util::format_double(quality.ndcg, 3)});
  }
  table.print(std::cout);
  std::cout << "\nThe approximate accelerator retrieves the same neighbours "
               "as the exact scan (precision ~1) at a fraction of the "
               "modelled latency.\n";
  return 0;
}
