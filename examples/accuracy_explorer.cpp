// Accuracy explorer: how the paper's two approximation knobs —
// partition count c and per-partition k — trade precision for
// parallelism, comparing the closed-form model (Equation 1), the
// Monte Carlo estimate (Table I's method), and the *measured*
// precision of the bit-accurate accelerator simulation.
//
//   $ ./accuracy_explorer
#include <iostream>

#include "baselines/cpu_topk_spmv.hpp"
#include "core/accelerator.hpp"
#include "core/precision_model.hpp"
#include "eval/ranking.hpp"
#include "sparse/generator.hpp"
#include "util/table.hpp"

namespace {

double measured_precision(const topk::sparse::Csr& matrix, int cores, int k,
                          int top_k, int queries) {
  topk::core::DesignConfig design = topk::core::DesignConfig::fixed(32, cores);
  design.k = k;
  const topk::core::TopKAccelerator accelerator(matrix, design);
  topk::util::Xoshiro256 rng(42);
  double total = 0.0;
  for (int q = 0; q < queries; ++q) {
    const auto x = topk::sparse::generate_dense_vector(matrix.cols(), rng);
    const auto result = accelerator.query(x, top_k);
    const auto exact = topk::baselines::cpu_topk_spmv(matrix, x, top_k);
    std::vector<std::uint32_t> retrieved;
    std::vector<std::uint32_t> relevant;
    for (const auto& entry : result.entries) {
      retrieved.push_back(entry.index);
    }
    for (const auto& entry : exact) {
      relevant.push_back(entry.index);
    }
    total += topk::eval::precision_at_k(retrieved, relevant);
  }
  return total / queries;
}

}  // namespace

int main() {
  constexpr std::uint32_t kRows = 20'000;
  constexpr int kTopK = 100;
  constexpr int kQueries = 5;

  topk::sparse::GeneratorConfig generator;
  generator.rows = kRows;
  generator.cols = 512;
  generator.mean_nnz_per_row = 20.0;
  generator.seed = 6;
  const topk::sparse::Csr matrix = topk::sparse::generate_matrix(generator);

  std::cout << "Partition-approximation accuracy explorer: N = " << kRows
            << ", K = " << kTopK << " (model vs Monte Carlo vs measured "
            << "simulation, " << kQueries << " queries).\n\n";

  topk::util::Xoshiro256 rng(7);
  std::cout << "[Sweep 1] partitions c, fixed k = 8 (k*c must be >= K):\n";
  topk::util::TablePrinter c_table(
      {"c", "E[P] closed form", "E[P] Monte Carlo", "Measured precision"});
  for (const int cores : {16, 24, 32}) {
    c_table.add_row(
        {std::to_string(cores),
         topk::util::format_double(
             topk::core::expected_precision_closed(kRows, cores, 8, kTopK), 4),
         topk::util::format_double(
             topk::core::expected_precision_mc(kRows, cores, 8, kTopK, 20'000,
                                               rng),
             4),
         topk::util::format_double(
             measured_precision(matrix, cores, 8, kTopK, kQueries), 4)});
  }
  c_table.print(std::cout);

  std::cout << "\n[Sweep 2] per-partition k, fixed c = 16:\n";
  topk::util::TablePrinter k_table(
      {"k", "E[P] closed form", "E[P] Monte Carlo", "Measured precision"});
  for (const int k : {7, 8, 12, 16}) {
    k_table.add_row(
        {std::to_string(k),
         topk::util::format_double(
             topk::core::expected_precision_closed(kRows, 16, k, kTopK), 4),
         topk::util::format_double(
             topk::core::expected_precision_mc(kRows, 16, k, kTopK, 20'000,
                                               rng),
             4),
         topk::util::format_double(
             measured_precision(matrix, 16, k, kTopK, kQueries), 4)});
  }
  k_table.print(std::cout);

  std::cout << "\nReading: the three columns agree because the top-K rows "
               "of a random query land uniformly across partitions — the "
               "paper's modelling assumption (section III-A).  The best-"
               "ranked rows are never lost: only candidates beyond each "
               "partition's k-th place can fall out.\n";
  return 0;
}
