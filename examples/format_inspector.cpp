// Format inspector: prints the exact BS-CSR geometry for a given
// embedding size and value width, dumps the first packets of a tiny
// matrix field by field (the Figure 3 walkthrough), and compares
// footprints against COO/CSR.
//
//   $ ./format_inspector [M] [V]     (defaults: M = 1024, V = 20)
#include <cstdlib>
#include <iostream>

#include "core/bscsr.hpp"
#include "core/packet_layout.hpp"
#include "sparse/generator.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const std::uint32_t cols =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 1024;
  const int val_bits = argc > 2 ? std::atoi(argv[2]) : 20;

  const topk::core::PacketLayout layout =
      topk::core::PacketLayout::solve(cols, val_bits);
  std::cout << "BS-CSR packet geometry for M = " << cols << ", V = " << val_bits
            << " bits:\n";
  std::cout << "  capacity B       : " << layout.capacity << " non-zeros\n";
  std::cout << "  ptr field        : " << layout.ptr_bits << " bits x "
            << layout.capacity << '\n';
  std::cout << "  idx field        : " << layout.idx_bits << " bits x "
            << layout.capacity << '\n';
  std::cout << "  val field        : " << layout.val_bits << " bits x "
            << layout.capacity << '\n';
  std::cout << "  new_row flag     : 1 bit\n";
  std::cout << "  used / packet    : " << layout.used_bits() << " / "
            << layout.packet_bits << " bits (" << layout.padding_bits()
            << " padding)\n";
  std::cout << "  op. intensity    : " << layout.nnz_per_byte()
            << " nnz/byte (naive COO: " << 1.0 / 12.0 << ")\n\n";

  // A tiny matrix mirroring the Figure 3 walkthrough: a handful of
  // rows of varying length around one packet boundary.
  topk::sparse::Coo coo(6, cols);
  const float values[] = {0.2f, 0.2f, 0.3f, 0.4f, 0.3f, 0.2f, 0.5f, 0.4f,
                          0.5f, 0.8f, 0.6f, 0.4f, 0.8f, 0.1f, 0.9f, 0.7f,
                          0.3f, 0.6f, 0.2f, 0.5f};
  const std::uint32_t row_sizes[] = {2, 3, 1, 3, 4, 7};
  std::size_t v = 0;
  for (std::uint32_t r = 0; r < 6; ++r) {
    for (std::uint32_t i = 0; i < row_sizes[r]; ++i, ++v) {
      coo.push_back(r, (i * 13 + r) % cols, values[v % std::size(values)]);
    }
  }
  const topk::sparse::Csr matrix = topk::sparse::Csr::from_coo(std::move(coo));
  const topk::core::BsCsrMatrix encoded =
      topk::core::encode_bscsr(matrix, layout, topk::core::ValueKind::kFixed);

  std::cout << "Packet dump of a 6-row example (" << matrix.nnz()
            << " nnz -> " << encoded.num_packets() << " packets):\n";
  topk::core::PacketCursor cursor(encoded);
  std::size_t packet_index = 0;
  while (!cursor.done()) {
    const topk::core::PacketView view = cursor.next();
    std::cout << "  packet " << packet_index++ << ": new_row = "
              << (view.new_row ? 1 : 0) << ", boundaries = [";
    for (std::size_t i = 0; i < view.boundaries.size(); ++i) {
      std::cout << (i ? " " : "") << view.boundaries[i];
    }
    std::cout << "], idx = [";
    for (std::size_t i = 0; i < view.idx.size(); ++i) {
      std::cout << (i ? " " : "") << view.idx[i];
    }
    std::cout << "]\n";
  }

  // Footprint comparison on a realistic matrix.
  topk::sparse::GeneratorConfig generator;
  generator.rows = 100'000;
  generator.cols = cols;
  generator.mean_nnz_per_row = 20.0;
  generator.seed = 8;
  const topk::sparse::Csr big = topk::sparse::generate_matrix(generator);
  const topk::core::BsCsrMatrix big_encoded =
      topk::core::encode_bscsr(big, layout, topk::core::ValueKind::kFixed);
  std::cout << "\nFootprint on " << big.rows() << " x " << big.cols() << " ("
            << big.nnz() << " nnz):\n";
  topk::util::TablePrinter table({"Format", "Bytes", "Relative"});
  const auto bscsr_bytes = static_cast<double>(big_encoded.stream_bytes());
  table.add_row({"BS-CSR", topk::util::format_bytes(bscsr_bytes), "1.00x"});
  table.add_row({"Naive COO",
                 topk::util::format_bytes(static_cast<double>(big.nnz() * 12)),
                 topk::util::format_double(big.nnz() * 12 / bscsr_bytes, 2) +
                     "x"});
  table.add_row({"CSR",
                 topk::util::format_bytes(static_cast<double>(big.csr_bytes())),
                 topk::util::format_double(big.csr_bytes() / bscsr_bytes, 2) +
                     "x"});
  table.print(std::cout);
  return 0;
}
