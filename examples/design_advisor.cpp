// Design advisor: given a workload (collection size, embedding
// dimension, density, K) and an accuracy target, recommend an
// accelerator configuration — the interactive face of the paper's
// future-work "adaptive precision" idea.  The recommendation is then
// validated empirically: the advised design is instantiated as an
// "fpga-sim" SimilarityIndex over a sampled workload and its recall
// measured against the exact backend through the same unified API.
//
//   $ ./design_advisor [rows] [cols] [nnz_per_row] [K] [min_precision]
//   $ ./design_advisor 5000000 512 20 50 0.995
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <optional>

#include "eval/ranking.hpp"
#include "hbmsim/design_space.hpp"
#include "hbmsim/power_model.hpp"
#include "index/registry.hpp"
#include "sparse/generator.hpp"
#include "util/table.hpp"

namespace {

/// Instantiates the advised design on a sampled workload and measures
/// recall@K against the exact backend — closing the loop between the
/// analytic precision model and the functional simulator.
void validate_recommendation(const topk::hbmsim::WorkloadGoal& goal,
                             const topk::core::DesignConfig& design,
                             double nnz_per_row) {
  topk::sparse::GeneratorConfig generator;
  generator.rows = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(goal.rows, 20'000));
  generator.cols = goal.cols;
  generator.mean_nnz_per_row = nnz_per_row;
  generator.seed = 9;
  const auto matrix = std::make_shared<const topk::sparse::Csr>(
      topk::sparse::generate_matrix(generator));

  const auto advised = topk::index::IndexBuilder()
                           .backend("fpga-sim")
                           .matrix(matrix)
                           .design(design)
                           .build();
  const auto exact = topk::index::make_index("exact-sort", matrix);
  const int top_k = std::min(goal.top_k, advised->max_top_k());

  topk::util::Xoshiro256 rng(10);
  double recall_sum = 0.0;
  constexpr int kProbes = 5;
  for (int q = 0; q < kProbes; ++q) {
    const auto x =
        topk::sparse::generate_dense_vector(generator.cols, rng);
    const auto approx = advised->query(x, top_k);
    const auto truth = exact->query(x, top_k);
    std::vector<std::uint32_t> approx_rows;
    std::vector<std::uint32_t> truth_rows;
    for (const auto& entry : approx.entries) {
      approx_rows.push_back(entry.index);
    }
    for (const auto& entry : truth.entries) {
      truth_rows.push_back(entry.index);
    }
    recall_sum += topk::eval::precision_at_k(approx_rows, truth_rows);
  }
  std::cout << "Empirical check (" << generator.rows << "-row sample, "
            << kProbes << " probes): recall@" << top_k << " = "
            << topk::util::format_double(recall_sum / kProbes, 4)
            << " on the advised design, vs the " << goal.min_precision
            << " analytic floor.\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  topk::hbmsim::WorkloadGoal goal;
  goal.rows = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 10'000'000;
  goal.cols = argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 1024;
  const double nnz_per_row = argc > 3 ? std::atof(argv[3]) : 20.0;
  goal.nnz = static_cast<std::uint64_t>(goal.rows * nnz_per_row);
  goal.top_k = argc > 4 ? std::atoi(argv[4]) : 100;
  goal.min_precision = argc > 5 ? std::atof(argv[5]) : 0.99;

  std::cout << "Workload: N = " << goal.rows << ", M = " << goal.cols
            << ", nnz = " << goal.nnz << ", K = " << goal.top_k
            << ", precision floor = " << goal.min_precision << "\n\n";

  std::optional<topk::core::DesignConfig> first_feasible;
  for (const auto& board : topk::hbmsim::all_boards()) {
    std::cout << "=== " << board.name << " ===\n";
    try {
      const auto fastest = topk::hbmsim::recommend_fastest(goal, board);
      const auto cheapest = topk::hbmsim::recommend_cheapest(goal, board, 1.5);

      topk::util::TablePrinter table(
          {"Objective", "Design", "k", "B", "E[P]", "Latency", "Power"});
      const auto add = [&](const char* objective,
                           const topk::hbmsim::OperatingPoint& point) {
        table.add_row({objective, point.design.name(),
                       std::to_string(point.design.k),
                       std::to_string(point.layout.capacity),
                       topk::util::format_double(point.expected_precision, 4),
                       topk::util::format_double(point.modelled_seconds * 1e3, 2) +
                           " ms",
                       topk::util::format_double(point.modelled_power_w, 0) +
                           " W"});
      };
      add("fastest", fastest);
      add("cheapest (<=1.5x slower)", cheapest);
      table.print(std::cout);

      const double gnnz =
          static_cast<double>(goal.nnz) / fastest.modelled_seconds / 1e9;
      std::cout << "Projected throughput: "
                << topk::util::format_double(gnnz, 1) << " Gnnz/s; device "
                << "image needs "
                << topk::util::format_bytes(
                       static_cast<double>(goal.nnz) / fastest.layout.capacity *
                       fastest.layout.bytes_per_packet())
                << " of HBM (capacity "
                << topk::util::format_bytes(
                       static_cast<double>(board.hbm.capacity_bytes))
                << ").\n\n";
      if (!first_feasible) {
        first_feasible = fastest.design;
      }
    } catch (const std::exception& error) {
      std::cout << "no feasible design: " << error.what() << "\n\n";
    }
  }

  if (first_feasible) {
    validate_recommendation(goal, *first_feasible, nnz_per_row);
  }

  std::cout << "Tip: loosen the precision floor or lower K to unlock "
               "narrower value types (higher B, faster streaming).\n";
  return 0;
}
