// Design advisor: given a workload (collection size, embedding
// dimension, density, K) and an accuracy target, recommend an
// accelerator configuration — the interactive face of the paper's
// future-work "adaptive precision" idea.
//
//   $ ./design_advisor [rows] [cols] [nnz_per_row] [K] [min_precision]
//   $ ./design_advisor 5000000 512 20 50 0.995
#include <cstdlib>
#include <iostream>

#include "hbmsim/design_space.hpp"
#include "hbmsim/power_model.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  topk::hbmsim::WorkloadGoal goal;
  goal.rows = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 10'000'000;
  goal.cols = argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 1024;
  const double nnz_per_row = argc > 3 ? std::atof(argv[3]) : 20.0;
  goal.nnz = static_cast<std::uint64_t>(goal.rows * nnz_per_row);
  goal.top_k = argc > 4 ? std::atoi(argv[4]) : 100;
  goal.min_precision = argc > 5 ? std::atof(argv[5]) : 0.99;

  std::cout << "Workload: N = " << goal.rows << ", M = " << goal.cols
            << ", nnz = " << goal.nnz << ", K = " << goal.top_k
            << ", precision floor = " << goal.min_precision << "\n\n";

  for (const auto& board : topk::hbmsim::all_boards()) {
    std::cout << "=== " << board.name << " ===\n";
    try {
      const auto fastest = topk::hbmsim::recommend_fastest(goal, board);
      const auto cheapest = topk::hbmsim::recommend_cheapest(goal, board, 1.5);

      topk::util::TablePrinter table(
          {"Objective", "Design", "k", "B", "E[P]", "Latency", "Power"});
      const auto add = [&](const char* objective,
                           const topk::hbmsim::OperatingPoint& point) {
        table.add_row({objective, point.design.name(),
                       std::to_string(point.design.k),
                       std::to_string(point.layout.capacity),
                       topk::util::format_double(point.expected_precision, 4),
                       topk::util::format_double(point.modelled_seconds * 1e3, 2) +
                           " ms",
                       topk::util::format_double(point.modelled_power_w, 0) +
                           " W"});
      };
      add("fastest", fastest);
      add("cheapest (<=1.5x slower)", cheapest);
      table.print(std::cout);

      const double gnnz =
          static_cast<double>(goal.nnz) / fastest.modelled_seconds / 1e9;
      std::cout << "Projected throughput: "
                << topk::util::format_double(gnnz, 1) << " Gnnz/s; device "
                << "image needs "
                << topk::util::format_bytes(
                       static_cast<double>(goal.nnz) / fastest.layout.capacity *
                       fastest.layout.bytes_per_packet())
                << " of HBM (capacity "
                << topk::util::format_bytes(
                       static_cast<double>(board.hbm.capacity_bytes))
                << ").\n\n";
    } catch (const std::exception& error) {
      std::cout << "no feasible design: " << error.what() << "\n\n";
    }
  }

  std::cout << "Tip: loosen the precision floor or lower K to unlock "
               "narrower value types (higher B, faster streaming).\n";
  return 0;
}
