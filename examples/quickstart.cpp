// Quickstart: build a similarity index over a synthetic embedding
// matrix through the multi-backend registry and run one Top-K query.
//
//   $ ./quickstart
//
// Walks through the whole public API in ~60 lines: generate a sparse
// embedding collection, list the registered backends, build the FPGA
// simulator backend by name (the paper's default design: 32 cores,
// 20-bit fixed point, k = 8), query, and cross-check the result
// against the exact CPU backend through the very same interface.
#include <iostream>
#include <memory>

#include "index/registry.hpp"
#include "sparse/generator.hpp"
#include "util/rng.hpp"

int main() {
  // 1. An embedding collection: 100k sparse embeddings of dimension
  //    1024 with ~20 non-zeros each, L2-normalised (so dot products
  //    are cosine similarities).  Shared ownership lets several
  //    backends index the same matrix without copies.
  topk::sparse::GeneratorConfig generator;
  generator.rows = 100'000;
  generator.cols = 1024;
  generator.mean_nnz_per_row = 20.0;
  generator.seed = 1;
  const auto matrix = std::make_shared<const topk::sparse::Csr>(
      topk::sparse::generate_matrix(generator));
  std::cout << "Matrix: " << matrix->rows() << " x " << matrix->cols() << ", "
            << matrix->nnz() << " non-zeros\n";

  // 2. Every execution strategy of the paper is a registered backend.
  std::cout << "Backends:";
  for (const std::string& name : topk::index::registered_backends()) {
    std::cout << ' ' << name;
  }
  std::cout << '\n';

  // 3. Build the FPGA simulator by name — the paper's default design.
  topk::index::IndexOptions options;
  options.design = topk::core::DesignConfig::fixed(20);
  const auto fpga = topk::index::make_index("fpga-sim", matrix, options);
  const auto description = fpga->describe();
  std::cout << "Index:   " << description.backend << " (" << description.detail
            << "), device image " << description.memory_bytes / (1 << 20)
            << " MiB, top_k <= " << description.max_top_k << "\n";

  // 4. A dense query embedding similar to row 4242.
  topk::util::Xoshiro256 rng(2);
  const std::vector<float> x =
      topk::sparse::generate_query_near_row(*matrix, 4242, 0.05, rng);

  // 5. Query the top 10 most similar embeddings.
  const topk::index::QueryResult result = fpga->query(x, 10);
  std::cout << "\nTop-10 most similar rows (fpga-sim):\n";
  for (const topk::core::TopKEntry& entry : result.entries) {
    std::cout << "  row " << entry.index << "  score " << entry.value << '\n';
  }

  // 6. Execution statistics: the backend-neutral counters plus the
  //    FPGA extension payload, and the modelled on-device latency.
  const topk::core::ExecutionStats* device = topk::index::fpga_stats(result);
  std::cout << "\nScanned " << result.stats.rows_scanned << " rows; streamed "
            << device->total_packets << " packets (max/core "
            << device->max_core_packets << "), rows dropped: "
            << device->rows_dropped << '\n';
  std::cout << "Modelled U280 latency: " << result.stats.modelled_seconds * 1e3
            << " ms\n";

  // 7. The exact CPU baseline is one make_index call away — same
  //    matrix, same interface, ground-truth scores.
  const auto exact = topk::index::make_index("cpu-heap", matrix);
  const auto exact_result = exact->query(x, 10);
  std::cout << "\nExact top-1 (cpu-heap): row "
            << exact_result.entries.front().index
            << (exact_result.entries.front().index ==
                        result.entries.front().index
                    ? " — agrees with the accelerator.\n"
                    : " — differs from the accelerator.\n");
  return 0;
}
