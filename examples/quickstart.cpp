// Quickstart: build an accelerator over a synthetic embedding matrix
// and run one Top-K similarity query.
//
//   $ ./quickstart
//
// Walks through the whole public API in ~50 lines: generate a sparse
// embedding collection, configure the paper's default design (32
// cores, 20-bit fixed point, k = 8), query, and read the results and
// execution statistics.
#include <iostream>

#include "core/accelerator.hpp"
#include "hbmsim/timing_model.hpp"
#include "sparse/generator.hpp"
#include "util/rng.hpp"

int main() {
  // 1. An embedding collection: 100k sparse embeddings of dimension
  //    1024 with ~20 non-zeros each, L2-normalised (so dot products
  //    are cosine similarities).
  topk::sparse::GeneratorConfig generator;
  generator.rows = 100'000;
  generator.cols = 1024;
  generator.mean_nnz_per_row = 20.0;
  generator.seed = 1;
  const topk::sparse::Csr matrix = topk::sparse::generate_matrix(generator);
  std::cout << "Matrix: " << matrix.rows() << " x " << matrix.cols() << ", "
            << matrix.nnz() << " non-zeros\n";

  // 2. The paper's default design: 32 cores (one HBM channel each),
  //    20-bit unsigned fixed point, top k = 8 per partition.
  const topk::core::DesignConfig design = topk::core::DesignConfig::fixed(20);
  const topk::core::TopKAccelerator accelerator(matrix, design);
  std::cout << "Design:  " << design.name() << ", B = "
            << accelerator.layout().capacity << " nnz/packet, device image "
            << accelerator.stream_bytes() / (1 << 20) << " MiB\n";

  // 3. A dense query embedding similar to row 4242.
  topk::util::Xoshiro256 rng(2);
  const std::vector<float> x =
      topk::sparse::generate_query_near_row(matrix, 4242, 0.05, rng);

  // 4. Query the top 10 most similar embeddings.
  const topk::core::QueryResult result = accelerator.query(x, 10);
  std::cout << "\nTop-10 most similar rows:\n";
  for (const topk::core::TopKEntry& entry : result.entries) {
    std::cout << "  row " << entry.index << "  score " << entry.value << '\n';
  }

  // 5. Execution statistics and the modelled on-device latency.
  std::cout << "\nStreamed " << result.stats.total_packets
            << " packets (max/core " << result.stats.max_core_packets
            << "), rows dropped: " << result.stats.rows_dropped << '\n';
  const auto timing = topk::hbmsim::estimate_query_time(accelerator, matrix.nnz());
  std::cout << "Modelled U280 latency: " << timing.seconds * 1e3 << " ms ("
            << timing.nnz_per_second / 1e9 << " Gnnz/s, "
            << (timing.bandwidth_bound ? "bandwidth" : "compute")
            << "-bound)\n";
  return 0;
}
