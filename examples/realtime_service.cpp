// Real-time retrieval service simulation — the deployment scenario of
// the paper's introduction (recommender serving with strict latency
// budgets).  Builds an index once, persists/reloads the device image,
// then serves traffic through the serve::QueryEngine: a synchronous
// batch, followed by asynchronously submitted single queries through
// the engine's bounded request queue.  Latency percentiles come from
// the engine's built-in instrumentation; the modelled on-device
// latency comes from hbmsim.
//
//   $ ./realtime_service
#include <filesystem>
#include <future>
#include <iostream>

#include "core/accelerator.hpp"
#include "core/bscsr_io.hpp"
#include "hbmsim/timing_model.hpp"
#include "serve/query_engine.hpp"
#include "sparse/generator.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  // 1. Index: 200k embeddings, M = 1024, ~20 nnz per row.
  topk::sparse::GeneratorConfig generator;
  generator.rows = 200'000;
  generator.cols = 1024;
  generator.mean_nnz_per_row = 20.0;
  generator.seed = 11;
  const topk::sparse::Csr matrix = topk::sparse::generate_matrix(generator);
  const topk::core::TopKAccelerator accelerator(
      matrix, topk::core::DesignConfig::fixed(20));

  // 2. Persist one core's device image and verify it reloads — the
  //    "encode once, ship the image" deployment flow.
  const auto image_path =
      std::filesystem::temp_directory_path() / "topk_core0.bscsr";
  topk::core::save_bscsr(accelerator.core_streams().front(), image_path);
  const auto reloaded = topk::core::load_bscsr(image_path);
  std::cout << "Device image: " << accelerator.core_streams().size()
            << " core streams, core 0 = "
            << topk::util::format_bytes(
                   static_cast<double>(reloaded.stream_bytes()))
            << " (reload OK)\n";
  std::filesystem::remove(image_path);

  // 3. Bring up the serving engine: all hardware threads, bounded
  //    admission queue for the async path.
  topk::serve::QueryEngine engine(accelerator,
                                  {.workers = 0, .max_pending = 64});

  topk::util::Xoshiro256 rng(12);
  constexpr int kBatch = 24;
  constexpr int kAsync = 8;
  constexpr int kTopK = 100;
  std::vector<std::vector<float>> queries;
  queries.reserve(kBatch + kAsync);
  for (int q = 0; q < kBatch + kAsync; ++q) {
    queries.push_back(topk::sparse::generate_dense_vector(1024, rng));
  }

  // 3a. Offline-style batch: queries fan out dynamically across the
  //     persistent pool.
  topk::util::WallTimer batch_timer;
  const auto results = engine.query_batch(
      {queries.begin(), queries.begin() + kBatch}, kTopK);
  const double batch_ms = batch_timer.millis();

  // 3b. Online-style traffic: submit() returns a future per request.
  std::vector<std::future<topk::core::QueryResult>> futures;
  for (int q = kBatch; q < kBatch + kAsync; ++q) {
    futures.push_back(engine.submit(queries[q], kTopK));
  }
  for (auto& future : futures) {
    if (future.get().entries.size() != static_cast<std::size_t>(kTopK)) {
      std::cerr << "async invariant violated\n";
      return 1;
    }
  }

  const auto latency = engine.latency_summary();
  const auto modelled =
      topk::hbmsim::estimate_query_time(accelerator, matrix.nnz());

  topk::util::TablePrinter table({"Metric", "Value"});
  table.add_row({"Batch size", std::to_string(kBatch)});
  table.add_row({"Batch wall time (simulation)",
                 topk::util::format_double(batch_ms, 1) + " ms"});
  table.add_row({"Async requests served", std::to_string(kAsync)});
  table.add_row({"Queries instrumented",
                 std::to_string(latency.count)});
  table.add_row({"Per-query p50 (simulation)",
                 topk::util::format_double(latency.p50_ms, 1) + " ms"});
  table.add_row({"Per-query p99 (simulation)",
                 topk::util::format_double(latency.p99_ms, 1) + " ms"});
  table.add_row({"Modelled U280 latency / query",
                 topk::util::format_double(modelled.seconds * 1e3, 3) + " ms"});
  table.add_row({"Modelled U280 throughput",
                 topk::util::format_double(modelled.nnz_per_second / 1e9, 1) +
                     " Gnnz/s"});
  table.print(std::cout);

  // 4. Sanity: every batch result has K entries, no dropped rows, and
  //    the packet row budget was respected (the surfaced
  //    max_rows_in_packet counter vs the design's r).
  const int r_budget = accelerator.config().rows_per_packet;
  for (const auto& result : results) {
    if (result.entries.size() != static_cast<std::size_t>(kTopK) ||
        result.stats.rows_dropped != 0) {
      std::cerr << "service invariant violated\n";
      return 1;
    }
    if (result.stats.max_rows_in_packet >
        static_cast<std::uint64_t>(r_budget) &&
        result.stats.rows_dropped == 0) {
      std::cerr << "stats invariant violated\n";
      return 1;
    }
  }
  std::cout << "\nAll " << kBatch << " batched + " << kAsync
            << " async queries returned " << kTopK
            << " results with zero dropped rows (busiest packet finished "
            << results.front().stats.max_rows_in_packet << " rows vs r = "
            << r_budget << ").  The modelled on-device latency is what the "
               "paper's section V-A reports as real-time capable (<4 ms at "
               "2e8 nnz).\n";
  return 0;
}
