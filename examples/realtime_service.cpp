// Real-time retrieval service simulation — the deployment scenario of
// the paper's introduction (recommender serving with strict latency
// budgets).  Builds an FPGA-simulator index through the backend
// registry, persists/reloads the device image, then serves traffic
// through the backend-agnostic serve::QueryEngine: a synchronous
// batch, followed by asynchronously submitted single queries through
// the engine's bounded request queue.  A second engine over the exact
// CPU backend serves the same traffic through the identical code path
// — the multi-backend routing a production tier needs for shadow
// testing and fallback.
//
//   $ ./realtime_service
#include <filesystem>
#include <future>
#include <iostream>
#include <memory>

#include "core/bscsr_io.hpp"
#include "index/backends.hpp"
#include "index/registry.hpp"
#include "serve/query_engine.hpp"
#include "sparse/generator.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  // 1. Index: 200k embeddings, M = 1024, ~20 nnz per row, built
  //    through the registry.
  topk::sparse::GeneratorConfig generator;
  generator.rows = 200'000;
  generator.cols = 1024;
  generator.mean_nnz_per_row = 20.0;
  generator.seed = 11;
  const auto matrix = std::make_shared<const topk::sparse::Csr>(
      topk::sparse::generate_matrix(generator));
  topk::index::IndexOptions options;
  options.design = topk::core::DesignConfig::fixed(20);
  const auto fpga = std::make_shared<const topk::index::FpgaSimIndex>(
      matrix, options.design);

  // 2. Persist one core's device image and verify it reloads — the
  //    "encode once, ship the image" deployment flow.
  const auto image_path =
      std::filesystem::temp_directory_path() / "topk_core0.bscsr";
  topk::core::save_bscsr(fpga->accelerator().core_streams().front(),
                         image_path);
  const auto reloaded = topk::core::load_bscsr(image_path);
  std::cout << "Device image: " << fpga->accelerator().core_streams().size()
            << " core streams, core 0 = "
            << topk::util::format_bytes(
                   static_cast<double>(reloaded.stream_bytes()))
            << " (reload OK)\n";
  std::filesystem::remove(image_path);

  // 3. Bring up the serving engine: all hardware threads, bounded
  //    admission queue for the async path, latency window sized to
  //    this demo's traffic.
  topk::serve::QueryEngine engine(
      fpga, {.workers = 0, .max_pending = 64, .latency_window = 1024});

  topk::util::Xoshiro256 rng(12);
  constexpr int kBatch = 24;
  constexpr int kAsync = 8;
  constexpr int kTopK = 100;
  std::vector<std::vector<float>> queries;
  queries.reserve(kBatch + kAsync);
  for (int q = 0; q < kBatch + kAsync; ++q) {
    queries.push_back(topk::sparse::generate_dense_vector(1024, rng));
  }

  // 3a. Offline-style batch: queries fan out dynamically across the
  //     persistent pool.
  topk::util::WallTimer batch_timer;
  const auto results = engine.query_batch(
      {queries.begin(), queries.begin() + kBatch}, kTopK);
  const double batch_ms = batch_timer.millis();

  // 3b. Online-style traffic: submit() returns a future per request.
  std::vector<std::future<topk::index::QueryResult>> futures;
  for (int q = kBatch; q < kBatch + kAsync; ++q) {
    futures.push_back(engine.submit(queries[q], kTopK));
  }
  for (auto& future : futures) {
    if (future.get().entries.size() != static_cast<std::size_t>(kTopK)) {
      std::cerr << "async invariant violated\n";
      return 1;
    }
  }

  const auto latency = engine.latency_summary();
  const double modelled_ms = results.front().stats.modelled_seconds * 1e3;

  topk::util::TablePrinter table({"Metric", "Value"});
  table.add_row({"Backend", engine.index().describe().backend});
  table.add_row({"Batch size", std::to_string(kBatch)});
  table.add_row({"Batch wall time (simulation)",
                 topk::util::format_double(batch_ms, 1) + " ms"});
  table.add_row({"Async requests served", std::to_string(kAsync)});
  table.add_row({"Queries instrumented",
                 std::to_string(latency.count)});
  table.add_row({"Per-query p50 (simulation)",
                 topk::util::format_double(latency.p50_ms, 1) + " ms"});
  table.add_row({"Per-query p99 (simulation)",
                 topk::util::format_double(latency.p99_ms, 1) + " ms"});
  table.add_row({"Modelled U280 latency / query",
                 topk::util::format_double(modelled_ms, 3) + " ms"});
  table.print(std::cout);

  // 4. Sanity: every batch result has K entries, no dropped rows, and
  //    the packet row budget was respected (the surfaced
  //    max_rows_in_packet counter vs the design's r).
  const int r_budget = fpga->accelerator().config().rows_per_packet;
  for (const auto& result : results) {
    const topk::core::ExecutionStats* device = topk::index::fpga_stats(result);
    if (result.entries.size() != static_cast<std::size_t>(kTopK) ||
        device == nullptr || device->rows_dropped != 0) {
      std::cerr << "service invariant violated\n";
      return 1;
    }
    if (device->max_rows_in_packet > static_cast<std::uint64_t>(r_budget)) {
      std::cerr << "stats invariant violated\n";
      return 1;
    }
  }
  std::cout << "\nAll " << kBatch << " batched + " << kAsync
            << " async queries returned " << kTopK
            << " results with zero dropped rows (busiest packet finished "
            << topk::index::fpga_stats(results.front())->max_rows_in_packet
            << " rows vs r = " << r_budget << ").\n";

  // 5. Backend fallback: the exact CPU index serves the same traffic
  //    through the identical engine code path — swap one make_index
  //    argument and nothing else changes.
  topk::serve::QueryEngine cpu_engine(
      topk::index::make_index("cpu-heap", matrix), {.workers = 0});
  auto shadow = cpu_engine.submit(queries.front(), kTopK);
  const auto exact_top = shadow.get().entries.front();
  std::cout << "\nShadow check on cpu-heap: exact top-1 row " << exact_top.index
            << " vs accelerator row " << results.front().entries.front().index
            << "; cpu-heap p50 "
            << topk::util::format_double(cpu_engine.latency_summary().p50_ms, 1)
            << " ms through the same engine.  The modelled on-device latency "
               "is what the paper's section V-A reports as real-time capable "
               "(<4 ms at 2e8 nnz).\n";
  return 0;
}
