// Real-time retrieval service simulation — the deployment scenario of
// the paper's introduction (recommender serving with strict latency
// budgets).  Builds an index once, persists/reloads the device image,
// then serves query batches, reporting host-side simulation latency
// percentiles and the modelled on-device latency per query.
//
//   $ ./realtime_service
#include <filesystem>
#include <iostream>

#include "core/accelerator.hpp"
#include "core/bscsr_io.hpp"
#include "hbmsim/timing_model.hpp"
#include "sparse/generator.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  // 1. Index: 200k embeddings, M = 1024, ~20 nnz per row.
  topk::sparse::GeneratorConfig generator;
  generator.rows = 200'000;
  generator.cols = 1024;
  generator.mean_nnz_per_row = 20.0;
  generator.seed = 11;
  const topk::sparse::Csr matrix = topk::sparse::generate_matrix(generator);
  const topk::core::TopKAccelerator accelerator(
      matrix, topk::core::DesignConfig::fixed(20));

  // 2. Persist one core's device image and verify it reloads — the
  //    "encode once, ship the image" deployment flow.
  const auto image_path =
      std::filesystem::temp_directory_path() / "topk_core0.bscsr";
  topk::core::save_bscsr(accelerator.core_streams().front(), image_path);
  const auto reloaded = topk::core::load_bscsr(image_path);
  std::cout << "Device image: " << accelerator.core_streams().size()
            << " core streams, core 0 = "
            << topk::util::format_bytes(
                   static_cast<double>(reloaded.stream_bytes()))
            << " (reload OK)\n";
  std::filesystem::remove(image_path);

  // 3. Serve batches of queries and report latency percentiles of the
  //    host-side functional simulation.
  topk::util::Xoshiro256 rng(12);
  constexpr int kBatch = 24;
  constexpr int kTopK = 100;
  std::vector<std::vector<float>> queries;
  queries.reserve(kBatch);
  for (int q = 0; q < kBatch; ++q) {
    queries.push_back(topk::sparse::generate_dense_vector(1024, rng));
  }

  std::vector<double> latencies_ms;
  topk::util::WallTimer batch_timer;
  topk::core::QueryOptions options;
  options.threads = 0;  // all hardware threads
  const auto results = accelerator.query_batch(queries, kTopK, options);
  const double batch_ms = batch_timer.millis();

  for (int q = 0; q < kBatch; ++q) {
    topk::util::WallTimer timer;
    (void)accelerator.query(queries[q], kTopK);
    latencies_ms.push_back(timer.millis());
  }

  const auto modelled =
      topk::hbmsim::estimate_query_time(accelerator, matrix.nnz());

  topk::util::TablePrinter table({"Metric", "Value"});
  table.add_row({"Batch size", std::to_string(kBatch)});
  table.add_row({"Batch wall time (simulation)",
                 topk::util::format_double(batch_ms, 1) + " ms"});
  table.add_row({"Single-query p50 (simulation)",
                 topk::util::format_double(
                     topk::util::quantile(latencies_ms, 0.5), 1) +
                     " ms"});
  table.add_row({"Single-query p99 (simulation)",
                 topk::util::format_double(
                     topk::util::quantile(latencies_ms, 0.99), 1) +
                     " ms"});
  table.add_row({"Modelled U280 latency / query",
                 topk::util::format_double(modelled.seconds * 1e3, 3) + " ms"});
  table.add_row({"Modelled U280 throughput",
                 topk::util::format_double(modelled.nnz_per_second / 1e9, 1) +
                     " Gnnz/s"});
  table.print(std::cout);

  // 4. Sanity: every result has K entries, no dropped rows.
  for (const auto& result : results) {
    if (result.entries.size() != kTopK || result.stats.rows_dropped != 0) {
      std::cerr << "service invariant violated\n";
      return 1;
    }
  }
  std::cout << "\nAll " << kBatch << " queries returned " << kTopK
            << " results with zero dropped rows.  The modelled on-device "
               "latency is what the paper's section V-A reports as "
               "real-time capable (<4 ms at 2e8 nnz).\n";
  return 0;
}
