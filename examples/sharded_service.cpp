// Sharded serving demo — the host-scale version of the paper's
// multi-core design, with a persistent-deployment warm-restart path
// and per-shard replica sets.  A 60k-row collection is split into four
// nnz-balanced row-range shards served by mixed backends (three
// fpga-sim shards plus one exact cpu-heap straggler), and the
// composite ShardedIndex — itself a SimilarityIndex — serves batch and
// async traffic through the backend-agnostic serve::QueryEngine.
// Queries scatter across the shards on the shared thread pool; each
// (query, shard) cell routes to one replica (least-loaded) and fails
// over on error; the gather is a deterministic k-way merge, with the
// scatter described by the index::ShardStats extension (width,
// replicas, critical-path shard, candidates merged, failovers).
//
//   $ ./sharded_service                 # build the index, serve
//   $ ./sharded_service --replicas 2    # replica pairs + failover demo
//   $ ./sharded_service --save DIR      # also persist it as a deployment
//   $ ./sharded_service --load DIR      # warm restart: replay the images
//                                       # (no encoder) and serve
//   $ ./sharded_service --mutate        # mutable tier: absorb live
//                                       # inserts/deletes, compact, and
//                                       # prove bit-identical serving
//
// --replicas N composes with both paths: a cold build constructs N
// registry replicas per shard, a warm load replays each shard's
// digest-verified image N times.  With N >= 2 the demo additionally
// injects a fault — replica 0 of every shard is wrapped in an index
// that throws on every call — and proves failover serves results
// bit-identical to the healthy index, with the absorbed failures
// visible in the per-replica stats.
//
// --save additionally records a SHA-256 digest of every query result;
// --load recomputes it in the fresh process and fails unless the
// warm-loaded index reproduced the cold process's results bit for bit
// — the cross-process reuse proof CI runs (with --replicas 2, the
// replicated warm load must reproduce the unreplicated cold results).
// Observability: --metrics-dump FILE writes the Prometheus text
// exposition to FILE, the JSON snapshot to FILE.json, and the Chrome
// trace-event JSON (chrome://tracing) to FILE.trace.json at exit;
// --stats-every SEC prints a one-line human digest to stderr on that
// period while the demo runs.  Machine-readable output goes to the
// chosen sink, diagnostics to stderr — stdout stays the demo's report.
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <future>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "index/mutable_index.hpp"
#include "index/registry.hpp"
#include "persist/compactor.hpp"
#include "persist/deployment.hpp"
#include "persist/digest.hpp"
#include "serve/query_engine.hpp"
#include "shard/mutable_sharded_index.hpp"
#include "shard/sharded_index.hpp"
#include "sparse/generator.hpp"
#include "telemetry/exposition.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

constexpr int kBatch = 16;
constexpr int kAsync = 8;
constexpr int kTopK = 40;
constexpr std::uint32_t kCols = 1024;
constexpr const char* kResultsDigestFile = "results.sha256";

/// Sum of one family's series values in a registry snapshot (0 when
/// the family has not been registered yet).
double metric_value(
    const std::vector<topk::telemetry::FamilySnapshot>& families,
    const std::string& name) {
  for (const auto& family : families) {
    if (family.name != name) {
      continue;
    }
    double total = 0.0;
    for (const auto& series : family.series) {
      total += series.value;
    }
    return total;
  }
  return 0.0;
}

/// Scoped telemetry session: enables the trace recorder when a dump
/// file was requested, runs the --stats-every stderr ticker, and
/// writes the exposition files when it goes out of scope — so every
/// exit path of the demo dumps the same way.
class TelemetrySession {
 public:
  TelemetrySession(std::filesystem::path dump, double stats_every_seconds)
      : dump_(std::move(dump)) {
    if (!dump_.empty()) {
      topk::telemetry::tracer().enable();
    }
    if (stats_every_seconds > 0.0) {
      ticker_ = std::thread([this, stats_every_seconds] {
        run_ticker(stats_every_seconds);
      });
    }
  }

  TelemetrySession(const TelemetrySession&) = delete;
  TelemetrySession& operator=(const TelemetrySession&) = delete;

  ~TelemetrySession() {
    stop_.store(true, std::memory_order_relaxed);
    if (ticker_.joinable()) {
      ticker_.join();
    }
    if (dump_.empty()) {
      return;
    }
    const auto parent = dump_.parent_path();
    if (!parent.empty()) {
      std::filesystem::create_directories(parent);
    }
    const auto families = topk::telemetry::registry().snapshot();
    {
      std::ofstream out(dump_);
      topk::telemetry::write_prometheus(out, families);
    }
    {
      std::ofstream out(dump_.string() + ".json");
      topk::telemetry::write_json(out, families);
    }
    {
      std::ofstream out(dump_.string() + ".trace.json");
      topk::telemetry::tracer().write_chrome_trace(out);
    }
    std::cerr << "telemetry: wrote " << dump_.string() << " (Prometheus), "
              << dump_.string() << ".json (snapshot), " << dump_.string()
              << ".trace.json (" << topk::telemetry::tracer().snapshot().size()
              << " spans, " << topk::telemetry::tracer().dropped()
              << " dropped)\n";
  }

 private:
  void run_ticker(double period_seconds) {
    // Sleep in short slices so shutdown never waits a whole period.
    const auto slice = std::chrono::milliseconds(50);
    auto next = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(period_seconds));
    while (!stop_.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(slice);
      if (std::chrono::steady_clock::now() < next) {
        continue;
      }
      next += std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(period_seconds));
      const auto families = topk::telemetry::registry().snapshot();
      std::cerr << "[stats t=" << topk::util::format_double(
                       topk::telemetry::now_seconds(), 1)
                << "s] queries="
                << metric_value(families, "topk_engine_queries_total")
                << " cells=" << metric_value(families, "topk_shard_cells_total")
                << " failovers="
                << metric_value(families, "topk_shard_failovers_total")
                << " queue="
                << metric_value(families, "topk_engine_queue_depth")
                << " delta_rows=" << metric_value(families, "topk_delta_rows")
                << " compactions="
                << metric_value(families, "topk_compactions_total") << "\n";
    }
  }

  std::filesystem::path dump_;
  std::atomic<bool> stop_{false};
  std::thread ticker_;
};

/// SHA-256 over every result's (row id, score) pairs in serve order —
/// one number that two processes can compare to prove bit-identical
/// serving.
std::string results_digest(
    const std::vector<topk::index::QueryResult>& results) {
  topk::persist::Sha256 hasher;
  for (const auto& result : results) {
    for (const auto& entry : result.entries) {
      hasher.update(&entry.index, sizeof(entry.index));
      hasher.update(&entry.value, sizeof(entry.value));
    }
  }
  const auto digest = hasher.finish();
  return topk::persist::sha256_hex({digest.data(), digest.size()});
}

/// A replica device that is down: every call throws.  Metadata still
/// forwards, so the replica set validates — exactly the failure mode
/// failover exists for.
class DownReplica final : public topk::index::SimilarityIndex {
 public:
  explicit DownReplica(
      std::shared_ptr<const topk::index::SimilarityIndex> inner)
      : inner_(std::move(inner)) {}

  [[nodiscard]] topk::index::QueryResult query(
      std::span<const float> /*x*/, int /*top_k*/,
      const topk::index::QueryOptions& /*options*/ = {}) const override {
    throw std::runtime_error("injected fault: replica device down");
  }
  [[nodiscard]] std::uint32_t rows() const noexcept override {
    return inner_->rows();
  }
  [[nodiscard]] std::uint32_t cols() const noexcept override {
    return inner_->cols();
  }
  [[nodiscard]] topk::index::IndexDescription describe() const override {
    return inner_->describe();
  }
  [[nodiscard]] int max_top_k() const noexcept override {
    return inner_->max_top_k();
  }

 private:
  std::shared_ptr<const topk::index::SimilarityIndex> inner_;
};

/// Fault-injection proof: replica 0 of every shard goes down; the
/// replicated index must absorb every failure and reproduce the
/// healthy index's results bit for bit.  Returns false on any
/// disagreement.
bool run_failover_demo(const topk::shard::ShardedIndex& healthy,
                       const std::vector<std::vector<float>>& queries,
                       const std::string& healthy_digest) {
  std::vector<topk::shard::Shard> shards;
  for (std::size_t s = 0; s < healthy.shard_count(); ++s) {
    shards.push_back(healthy.shard(s));
    shards.back().replicas[0] =
        std::make_shared<DownReplica>(shards.back().replicas[0]);
  }
  const topk::shard::ShardedIndex faulty(std::move(shards), "sharded-faulty",
                                         healthy.routing());

  auto results = faulty.query_batch(queries, kTopK);
  std::uint64_t failovers = 0;
  for (const auto& result : results) {
    const topk::index::ShardStats* scatter = topk::index::shard_stats(result);
    if (scatter != nullptr) {
      failovers += scatter->failovers;
    }
  }
  std::uint64_t absorbed_failures = 0;
  std::uint64_t surviving_queries = 0;
  for (std::size_t s = 0; s < faulty.shard_count(); ++s) {
    for (const auto& replica : faulty.replica_stats(s)) {
      absorbed_failures += replica.failures;
      surviving_queries += replica.queries;
    }
  }
  const std::string digest = results_digest(results);
  const bool identical = digest == healthy_digest;
  std::cout << "\nFault injection: replica 0 of every shard down — "
            << failovers << " cells failed over, " << absorbed_failures
            << " failures absorbed, " << surviving_queries
            << " cells served by the survivors; results vs healthy index: "
            << (identical ? "bit-identical" : "MISMATCH") << "\n";
  return identical;
}

/// Mutable-tier demo: a mutable-sharded index absorbs live inserts and
/// deletes while serving through the engine, compaction folds the
/// delta into a fresh sealed generation off the serving path, and both
/// the pre- and post-compaction results must be bit-identical to an
/// exact-sort index rebuilt cold from the logically-equivalent matrix.
/// Returns the process exit code.
int run_mutate_demo(int replicas) {
  constexpr std::uint32_t kRows = 20'000;
  constexpr std::uint32_t kAppends = 200;

  topk::sparse::GeneratorConfig generator;
  generator.rows = kRows;
  generator.cols = kCols;
  generator.mean_nnz_per_row = 20.0;
  generator.seed = 23;
  const auto matrix = std::make_shared<const topk::sparse::Csr>(
      topk::sparse::generate_matrix(generator));
  // The appended rows come from a second generated matrix so the
  // logically-equivalent rebuild below can splice them back in.
  generator.rows = kAppends;
  generator.seed = 24;
  const topk::sparse::Csr appended = topk::sparse::generate_matrix(generator);

  const auto index = topk::index::IndexBuilder()
                         .backend("mutable-sharded-cpu-heap")
                         .matrix(matrix)
                         .shards(4)
                         .replicas(replicas)
                         .build();
  const auto mut = topk::index::as_mutable(index);
  const auto typed =
      std::dynamic_pointer_cast<topk::shard::MutableShardedIndex>(index);

  // Live mutations: append every extra row, tombstone three base rows.
  const std::vector<std::uint32_t> deleted = {7, 1'234, 9'999};
  for (std::uint32_t r = 0; r < appended.rows(); ++r) {
    (void)mut->insert_row(appended.row_cols(r), appended.row_values(r));
  }
  for (const std::uint32_t id : deleted) {
    if (!mut->delete_row(id)) {
      std::cerr << "delete of live row " << id << " was a no-op\n";
      return 1;
    }
  }

  // The oracle: exact-sort over the logically-equivalent matrix (live
  // base rows then appended rows, ascending id), ids remapped back.
  std::vector<std::uint32_t> live_ids;
  topk::sparse::Coo coo(kRows - 3 + kAppends, kCols);
  for (std::uint32_t r = 0; r < kRows; ++r) {
    if (r == deleted[0] || r == deleted[1] || r == deleted[2]) {
      continue;
    }
    const auto row = static_cast<std::uint32_t>(live_ids.size());
    live_ids.push_back(r);
    const auto cols = matrix->row_cols(r);
    const auto vals = matrix->row_values(r);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      coo.push_back(row, cols[i], vals[i]);
    }
  }
  for (std::uint32_t r = 0; r < appended.rows(); ++r) {
    const auto row = static_cast<std::uint32_t>(live_ids.size());
    live_ids.push_back(kRows + r);
    const auto cols = appended.row_cols(r);
    const auto vals = appended.row_values(r);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      coo.push_back(row, cols[i], vals[i]);
    }
  }
  const topk::index::ExactSortIndex rebuilt(
      std::make_shared<const topk::sparse::Csr>(
          topk::sparse::Csr::from_coo(std::move(coo))));

  topk::serve::QueryEngine engine(
      index, {.workers = 0, .max_pending = 64, .latency_window = 1024});
  topk::util::Xoshiro256 rng(25);
  std::vector<std::vector<float>> queries;
  for (int q = 0; q < kBatch; ++q) {
    queries.push_back(topk::sparse::generate_dense_vector(kCols, rng));
  }

  const auto serve_and_check = [&](const std::string& stage) {
    auto results = engine.query_batch(queries, kTopK);
    for (std::size_t q = 0; q < queries.size(); ++q) {
      auto expected = rebuilt.query(queries[q], kTopK).entries;
      for (auto& entry : expected) {
        entry.index = live_ids[entry.index];
      }
      if (results[q].entries != expected) {
        std::cerr << stage << ": query " << q
                  << " differs from the exact-sort rebuild\n";
        return std::string();
      }
    }
    return results_digest(results);
  };

  const auto stats = mut->delta_stats();
  std::cout << "Mutable tier: " << matrix->rows() << " sealed rows + "
            << stats.delta_rows << " delta rows, " << stats.tombstones
            << " tombstones, " << mut->live_rows() << " live (generation "
            << stats.generation << ", " << replicas << " replica(s)/shard)\n";
  const std::string before = serve_and_check("pre-compaction");
  if (before.empty()) {
    return 1;
  }
  std::cout << "Pre-compaction serving vs cold exact rebuild: bit-identical "
               "(digest " << before.substr(0, 12) << "...)\n";

  // Async traffic through the same engine: the admission queue is what
  // mints per-request trace ids, so these are the requests whose
  // queue-wait spans show up in the --metrics-dump trace.
  std::vector<std::future<topk::index::QueryResult>> futures;
  for (int q = 0; q < kAsync; ++q) {
    futures.push_back(
        engine.submit(queries[static_cast<std::size_t>(q) % queries.size()],
                      kTopK));
  }
  for (auto& future : futures) {
    if (future.get().entries.size() != static_cast<std::size_t>(kTopK)) {
      std::cerr << "async result smaller than top-k\n";
      return 1;
    }
  }

  const auto deploy_root = std::filesystem::temp_directory_path() /
                           "topk_sharded_service_mutate";
  std::filesystem::remove_all(deploy_root);
  topk::persist::Compactor compactor(typed, deploy_root);
  const auto report = compactor.compact();
  if (!report.has_value()) {
    std::cerr << "compaction unexpectedly found an empty delta\n";
    return 1;
  }
  topk::util::TablePrinter table({"Compaction", "Value"});
  table.add_row({"Generation swapped in", std::to_string(report->generation)});
  table.add_row({"Folded rows", std::to_string(report->folded_rows)});
  table.add_row({"Inherited tombstones", std::to_string(report->tombstones)});
  table.add_row({"Folded mutations", std::to_string(report->folded_mutations)});
  table.add_row({"Snapshot pause",
                 topk::util::format_double(report->snapshot_seconds * 1e3, 3) +
                     " ms"});
  table.add_row({"Atomic swap pause",
                 topk::util::format_double(report->swap_seconds * 1e3, 3) +
                     " ms"});
  table.add_row({"Total (off serving path)",
                 topk::util::format_double(report->total_seconds * 1e3, 1) +
                     " ms"});
  table.print(std::cout);

  const std::string after = serve_and_check("post-compaction");
  std::filesystem::remove_all(deploy_root);
  if (after.empty()) {
    return 1;
  }
  const bool identical = after == before;
  std::cout << "Post-compaction serving vs pre-compaction: "
            << (identical ? "bit-identical" : "MISMATCH") << " (digest "
            << after.substr(0, 12) << "...)\n";
  return identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  enum class Mode { kCold, kSave, kLoad, kMutate };
  Mode mode = Mode::kCold;
  std::filesystem::path deploy_dir;
  std::filesystem::path metrics_dump;
  double stats_every = 0.0;
  std::uint32_t cold_rows = 60'000;
  int replicas = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if ((arg == "--save" || arg == "--load") && i + 1 < argc) {
      mode = arg == "--save" ? Mode::kSave : Mode::kLoad;
      deploy_dir = argv[++i];
    } else if (arg == "--mutate") {
      mode = Mode::kMutate;
    } else if (arg == "--metrics-dump" && i + 1 < argc) {
      metrics_dump = argv[++i];
    } else if (arg == "--stats-every" && i + 1 < argc) {
      try {
        stats_every = std::stod(argv[++i]);
      } catch (const std::exception&) {
        stats_every = 0.0;
      }
      if (stats_every <= 0.0) {
        std::cerr << "--stats-every needs a positive period in seconds\n";
        return 2;
      }
    } else if (arg == "--rows" && i + 1 < argc) {
      try {
        cold_rows = static_cast<std::uint32_t>(std::stoul(argv[++i]));
      } catch (const std::exception&) {
        cold_rows = 0;
      }
      if (cold_rows < 4) {
        std::cerr << "--rows needs at least one row per shard\n";
        return 2;
      }
    } else if (arg == "--replicas" && i + 1 < argc) {
      try {
        replicas = std::stoi(argv[++i]);
      } catch (const std::exception&) {
        replicas = 0;
      }
      if (replicas < 1) {
        std::cerr << "--replicas needs a positive count\n";
        return 2;
      }
    } else {
      std::cerr << "usage: sharded_service [--replicas N] [--rows N] "
                   "[--metrics-dump FILE] [--stats-every SEC] "
                   "[--save DIR | --load DIR | --mutate]\n";
      return 2;
    }
  }
  // Declared before the demo state so it destructs last: the dump sees
  // every metric the demo recorded, on every exit path below.
  TelemetrySession telemetry(metrics_dump, stats_every);
  if (mode == Mode::kMutate) {
    return run_mutate_demo(replicas);
  }

  // 1. The index: either built cold from the collection (60k sparse
  //    embeddings, M = 1024, ~20 nnz/row; mixed backends — fpga-sim
  //    shards with an exact cpu-heap straggler on the last row range,
  //    the fallback/shadow mix of a partial rollout), or warm-loaded
  //    from a persisted deployment without touching the encoder.  With
  //    --replicas N every shard becomes a replica set: N registry
  //    builds cold, N replays of the same digest-verified image warm.
  std::shared_ptr<topk::shard::ShardedIndex> sharded;
  std::shared_ptr<const topk::sparse::Csr> matrix;
  topk::util::WallTimer index_timer;
  if (mode == Mode::kLoad) {
    topk::index::IndexOptions load_options;
    load_options.replicas = replicas;
    sharded =
        topk::shard::ShardedIndexBuilder::from_deployment(deploy_dir,
                                                          load_options);
    std::cout << "Warm-loaded deployment from " << deploy_dir << " in "
              << topk::util::format_double(index_timer.millis(), 1)
              << " ms (no encoder, " << replicas << " replica(s)/shard)\n";
  } else {
    topk::sparse::GeneratorConfig generator;
    generator.rows = cold_rows;
    generator.cols = kCols;
    generator.mean_nnz_per_row = 20.0;
    generator.seed = 21;
    matrix = std::make_shared<const topk::sparse::Csr>(
        topk::sparse::generate_matrix(generator));
    std::cout << "Collection: " << matrix->rows() << " x " << matrix->cols()
              << ", " << matrix->nnz() << " non-zeros\n";

    topk::index::IndexOptions options;
    options.design = topk::core::DesignConfig::fixed(20, 8);
    index_timer.reset();
    sharded = topk::shard::ShardedIndexBuilder()
                  .matrix(matrix)
                  .shards(4)
                  .policy(topk::shard::ShardPolicy::kNnzBalanced)
                  .inner_backend("fpga-sim")
                  .inner_options(options)
                  .shard_backend(3, "cpu-heap")
                  .replicas(replicas)
                  .label("sharded-mixed")
                  .build();
    std::cout << "Cold-built index in "
              << topk::util::format_double(index_timer.millis(), 1) << " ms ("
              << replicas << " replica(s)/shard)\n";
  }
  const auto description = sharded->describe();
  std::cout << "Index: " << description.backend << " — " << description.detail
            << "\n\n";

  // 2. Serve it exactly like any flat backend: the engine's worker
  //    budget becomes the scatter width of each query.  The workload
  //    is seeded, so a cold and a warm process serve identical
  //    queries.
  topk::serve::QueryEngine engine(
      sharded, {.workers = 0, .max_pending = 64, .latency_window = 1024});

  topk::util::Xoshiro256 rng(22);
  std::vector<std::vector<float>> queries;
  for (int q = 0; q < kBatch + kAsync; ++q) {
    queries.push_back(topk::sparse::generate_dense_vector(kCols, rng));
  }

  topk::util::WallTimer batch_timer;
  auto results =
      engine.query_batch({queries.begin(), queries.begin() + kBatch}, kTopK);
  const double batch_ms = batch_timer.millis();

  std::vector<std::future<topk::index::QueryResult>> futures;
  for (int q = kBatch; q < kBatch + kAsync; ++q) {
    futures.push_back(engine.submit(queries[q], kTopK));
  }
  for (auto& future : futures) {
    results.push_back(future.get());
    if (results.back().entries.size() != static_cast<std::size_t>(kTopK)) {
      std::cerr << "async invariant violated\n";
      return 1;
    }
  }

  // 3. Invariants: every query saw all rows (the shards' rows_scanned
  //    sum to the collection), scattered across all four shards with
  //    the requested replication, gathered at least kTopK candidates,
  //    and — all replicas healthy — never failed over; the
  //    slowest-shard load signal is live for every backend mix.
  for (const auto& result : results) {
    const topk::index::ShardStats* scatter = topk::index::shard_stats(result);
    if (result.entries.size() != static_cast<std::size_t>(kTopK) ||
        result.stats.rows_scanned != sharded->rows() || scatter == nullptr ||
        scatter->shards != 4 || scatter->replicas != replicas ||
        scatter->gathered_candidates < static_cast<std::uint64_t>(kTopK) ||
        scatter->failovers != 0 || scatter->slowest_shard < 0) {
      std::cerr << "scatter-gather invariant violated\n";
      return 1;
    }
  }

  const auto latency = engine.latency_summary();
  const topk::index::ShardStats* scatter =
      topk::index::shard_stats(results.front());
  topk::util::TablePrinter table({"Metric", "Value"});
  table.add_row({"Backend", description.backend});
  table.add_row({"Shards", std::to_string(scatter->shards)});
  table.add_row({"Replicas / shard", std::to_string(scatter->replicas)});
  table.add_row({"Routing policy", topk::shard::to_string(sharded->routing())});
  table.add_row({"Batch + async queries",
                 std::to_string(kBatch) + " + " + std::to_string(kAsync)});
  table.add_row({"Batch wall time",
                 topk::util::format_double(batch_ms, 1) + " ms"});
  table.add_row({"p50 / p99 latency",
                 topk::util::format_double(latency.p50_ms, 1) + " / " +
                     topk::util::format_double(latency.p99_ms, 1) + " ms"});
  table.add_row({"Candidates gathered / query",
                 std::to_string(scatter->gathered_candidates)});
  table.add_row({"Slowest shard (modelled or measured)",
                 std::to_string(scatter->slowest_shard) + " (" +
                     topk::util::format_double(
                         scatter->slowest_seconds * 1e3, 3) +
                     " ms)"});
  table.add_row({"Modelled FPGA critical path",
                 topk::util::format_double(
                     results.front().stats.modelled_seconds * 1e3, 3) +
                     " ms"});
  table.print(std::cout);

  const std::string digest = results_digest(results);

  // 4. Replication: with R >= 2, prove the point of the replica tier —
  //    kill replica 0 of every shard and serve the same workload
  //    bit-identically off the survivors.
  if (replicas >= 2) {
    if (!run_failover_demo(*sharded, queries, digest)) {
      return 1;
    }
  }

  // 5. Persistence: --save writes the deployment images plus the
  //    results digest; --load proves the warm-loaded index reproduced
  //    the cold process's results bit for bit (at any replica count —
  //    replication must never change a bit).
  if (mode == Mode::kSave) {
    topk::util::WallTimer save_timer;
    topk::persist::save_deployment(*sharded, deploy_dir);
    std::ofstream(deploy_dir / kResultsDigestFile) << digest << '\n';
    std::cout << "\nSaved deployment to " << deploy_dir << " in "
              << topk::util::format_double(save_timer.millis(), 1)
              << " ms (results digest " << digest.substr(0, 12) << "...)\n";
  } else if (mode == Mode::kLoad) {
    std::ifstream digest_file(deploy_dir / kResultsDigestFile);
    std::string expected;
    if (!(digest_file >> expected)) {
      std::cerr << "cannot read " << deploy_dir / kResultsDigestFile
                << " (was the deployment saved with --save?)\n";
      return 1;
    }
    const bool identical = digest == expected;
    std::cout << "\nWarm process vs cold process results: "
              << (identical ? "bit-identical" : "MISMATCH") << " (digest "
              << digest.substr(0, 12) << "...)\n";
    if (!identical) {
      return 1;
    }
    return 0;
  }

  // 6. The registry one-liner: a uniform sharded backend is just
  //    another name, and its exact variant agrees with the flat exact
  //    scan bit-for-bit.
  const auto sharded_exact =
      topk::index::make_index("sharded-exact-sort", matrix);
  const auto flat_exact = topk::index::make_index("exact-sort", matrix);
  const bool identical =
      sharded_exact->query(queries.front(), kTopK).entries ==
      flat_exact->query(queries.front(), kTopK).entries;
  std::cout << "\nsharded-exact-sort vs exact-sort on the same query: "
            << (identical ? "bit-identical" : "MISMATCH") << "\n";
  return identical ? 0 : 1;
}
