// Sharded serving demo — the host-scale version of the paper's
// multi-core design.  A 60k-row collection is split into four
// nnz-balanced row-range shards served by mixed backends (three
// fpga-sim shards plus one exact cpu-heap straggler), and the
// composite ShardedIndex — itself a SimilarityIndex — serves batch and
// async traffic through the backend-agnostic serve::QueryEngine.
// Queries scatter across the shards on the shared thread pool; the
// gather is a deterministic k-way merge, with the scatter described by
// the index::ShardStats extension (width, critical-path shard,
// candidates merged).
//
//   $ ./sharded_service
#include <future>
#include <iostream>
#include <memory>
#include <vector>

#include "index/registry.hpp"
#include "serve/query_engine.hpp"
#include "shard/sharded_index.hpp"
#include "sparse/generator.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  // 1. The collection: 60k sparse embeddings, M = 1024, ~20 nnz/row.
  topk::sparse::GeneratorConfig generator;
  generator.rows = 60'000;
  generator.cols = 1024;
  generator.mean_nnz_per_row = 20.0;
  generator.seed = 21;
  const auto matrix = std::make_shared<const topk::sparse::Csr>(
      topk::sparse::generate_matrix(generator));
  std::cout << "Collection: " << matrix->rows() << " x " << matrix->cols()
            << ", " << matrix->nnz() << " non-zeros\n";

  // 2. Mixed-backend sharded index: fpga-sim shards with an exact
  //    cpu-heap straggler on the last row range — the fallback/shadow
  //    mix a production tier runs during a partial rollout.
  topk::index::IndexOptions options;
  options.design = topk::core::DesignConfig::fixed(20, 8);
  const auto sharded = topk::shard::ShardedIndexBuilder()
                           .matrix(matrix)
                           .shards(4)
                           .policy(topk::shard::ShardPolicy::kNnzBalanced)
                           .inner_backend("fpga-sim")
                           .inner_options(options)
                           .shard_backend(3, "cpu-heap")
                           .label("sharded-mixed")
                           .build();
  const auto description = sharded->describe();
  std::cout << "Index: " << description.backend << " — " << description.detail
            << "\n\n";

  // 3. Serve it exactly like any flat backend: the engine's worker
  //    budget becomes the scatter width of each query.
  topk::serve::QueryEngine engine(
      sharded, {.workers = 0, .max_pending = 64, .latency_window = 1024});

  constexpr int kBatch = 16;
  constexpr int kAsync = 8;
  constexpr int kTopK = 40;
  topk::util::Xoshiro256 rng(22);
  std::vector<std::vector<float>> queries;
  for (int q = 0; q < kBatch + kAsync; ++q) {
    queries.push_back(topk::sparse::generate_dense_vector(1024, rng));
  }

  topk::util::WallTimer batch_timer;
  const auto results =
      engine.query_batch({queries.begin(), queries.begin() + kBatch}, kTopK);
  const double batch_ms = batch_timer.millis();

  std::vector<std::future<topk::index::QueryResult>> futures;
  for (int q = kBatch; q < kBatch + kAsync; ++q) {
    futures.push_back(engine.submit(queries[q], kTopK));
  }
  for (auto& future : futures) {
    if (future.get().entries.size() != static_cast<std::size_t>(kTopK)) {
      std::cerr << "async invariant violated\n";
      return 1;
    }
  }

  // 4. Invariants: every query saw all rows (the shards' rows_scanned
  //    sum to the collection), scattered across all four shards, and
  //    gathered at least kTopK candidates.
  for (const auto& result : results) {
    const topk::index::ShardStats* scatter = topk::index::shard_stats(result);
    if (result.entries.size() != static_cast<std::size_t>(kTopK) ||
        result.stats.rows_scanned != matrix->rows() || scatter == nullptr ||
        scatter->shards != 4 ||
        scatter->gathered_candidates < static_cast<std::uint64_t>(kTopK)) {
      std::cerr << "scatter-gather invariant violated\n";
      return 1;
    }
  }

  const auto latency = engine.latency_summary();
  const topk::index::ShardStats* scatter =
      topk::index::shard_stats(results.front());
  topk::util::TablePrinter table({"Metric", "Value"});
  table.add_row({"Backend", description.backend});
  table.add_row({"Shards", std::to_string(scatter->shards)});
  table.add_row({"Batch + async queries",
                 std::to_string(kBatch) + " + " + std::to_string(kAsync)});
  table.add_row({"Batch wall time",
                 topk::util::format_double(batch_ms, 1) + " ms"});
  table.add_row({"p50 / p99 latency",
                 topk::util::format_double(latency.p50_ms, 1) + " / " +
                     topk::util::format_double(latency.p99_ms, 1) + " ms"});
  table.add_row({"Candidates gathered / query",
                 std::to_string(scatter->gathered_candidates)});
  table.add_row({"Critical-path shard (modelled)",
                 std::to_string(scatter->slowest_shard)});
  table.add_row({"Modelled FPGA critical path",
                 topk::util::format_double(
                     results.front().stats.modelled_seconds * 1e3, 3) +
                     " ms"});
  table.print(std::cout);

  // 5. The registry one-liner: a uniform sharded backend is just
  //    another name, and its exact variant agrees with the flat exact
  //    scan bit-for-bit.
  const auto sharded_exact =
      topk::index::make_index("sharded-exact-sort", matrix);
  const auto flat_exact = topk::index::make_index("exact-sort", matrix);
  const bool identical =
      sharded_exact->query(queries.front(), kTopK).entries ==
      flat_exact->query(queries.front(), kTopK).entries;
  std::cout << "\nsharded-exact-sort vs exact-sort on the same query: "
            << (identical ? "bit-identical" : "MISMATCH") << "\n";
  return identical ? 0 : 1;
}
