// Sharded serving demo — the host-scale version of the paper's
// multi-core design, with a persistent-deployment warm-restart path.
// A 60k-row collection is split into four nnz-balanced row-range
// shards served by mixed backends (three fpga-sim shards plus one
// exact cpu-heap straggler), and the composite ShardedIndex — itself a
// SimilarityIndex — serves batch and async traffic through the
// backend-agnostic serve::QueryEngine.  Queries scatter across the
// shards on the shared thread pool; the gather is a deterministic
// k-way merge, with the scatter described by the index::ShardStats
// extension (width, critical-path shard, candidates merged).
//
//   $ ./sharded_service                 # build the index, serve
//   $ ./sharded_service --save DIR      # also persist it as a deployment
//   $ ./sharded_service --load DIR      # warm restart: replay the images
//                                       # (no encoder) and serve
//
// --save additionally records a SHA-256 digest of every query result;
// --load recomputes it in the fresh process and fails unless the
// warm-loaded index reproduced the cold process's results bit for bit
// — the cross-process reuse proof CI runs.
#include <filesystem>
#include <fstream>
#include <future>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "index/registry.hpp"
#include "persist/deployment.hpp"
#include "persist/digest.hpp"
#include "serve/query_engine.hpp"
#include "shard/sharded_index.hpp"
#include "sparse/generator.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

constexpr int kBatch = 16;
constexpr int kAsync = 8;
constexpr int kTopK = 40;
constexpr std::uint32_t kCols = 1024;
constexpr const char* kResultsDigestFile = "results.sha256";

/// SHA-256 over every result's (row id, score) pairs in serve order —
/// one number that two processes can compare to prove bit-identical
/// serving.
std::string results_digest(
    const std::vector<topk::index::QueryResult>& results) {
  topk::persist::Sha256 hasher;
  for (const auto& result : results) {
    for (const auto& entry : result.entries) {
      hasher.update(&entry.index, sizeof(entry.index));
      hasher.update(&entry.value, sizeof(entry.value));
    }
  }
  const auto digest = hasher.finish();
  return topk::persist::sha256_hex({digest.data(), digest.size()});
}

}  // namespace

int main(int argc, char** argv) {
  enum class Mode { kCold, kSave, kLoad };
  Mode mode = Mode::kCold;
  std::filesystem::path deploy_dir;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if ((arg == "--save" || arg == "--load") && i + 1 < argc) {
      mode = arg == "--save" ? Mode::kSave : Mode::kLoad;
      deploy_dir = argv[++i];
    } else {
      std::cerr << "usage: sharded_service [--save DIR | --load DIR]\n";
      return 2;
    }
  }

  // 1. The index: either built cold from the collection (60k sparse
  //    embeddings, M = 1024, ~20 nnz/row; mixed backends — fpga-sim
  //    shards with an exact cpu-heap straggler on the last row range,
  //    the fallback/shadow mix of a partial rollout), or warm-loaded
  //    from a persisted deployment without touching the encoder.
  std::shared_ptr<topk::shard::ShardedIndex> sharded;
  std::shared_ptr<const topk::sparse::Csr> matrix;
  topk::util::WallTimer index_timer;
  if (mode == Mode::kLoad) {
    sharded = topk::shard::ShardedIndexBuilder::from_deployment(deploy_dir);
    std::cout << "Warm-loaded deployment from " << deploy_dir << " in "
              << topk::util::format_double(index_timer.millis(), 1)
              << " ms (no encoder)\n";
  } else {
    topk::sparse::GeneratorConfig generator;
    generator.rows = 60'000;
    generator.cols = kCols;
    generator.mean_nnz_per_row = 20.0;
    generator.seed = 21;
    matrix = std::make_shared<const topk::sparse::Csr>(
        topk::sparse::generate_matrix(generator));
    std::cout << "Collection: " << matrix->rows() << " x " << matrix->cols()
              << ", " << matrix->nnz() << " non-zeros\n";

    topk::index::IndexOptions options;
    options.design = topk::core::DesignConfig::fixed(20, 8);
    index_timer.reset();
    sharded = topk::shard::ShardedIndexBuilder()
                  .matrix(matrix)
                  .shards(4)
                  .policy(topk::shard::ShardPolicy::kNnzBalanced)
                  .inner_backend("fpga-sim")
                  .inner_options(options)
                  .shard_backend(3, "cpu-heap")
                  .label("sharded-mixed")
                  .build();
    std::cout << "Cold-built index in "
              << topk::util::format_double(index_timer.millis(), 1) << " ms\n";
  }
  const auto description = sharded->describe();
  std::cout << "Index: " << description.backend << " — " << description.detail
            << "\n\n";

  // 2. Serve it exactly like any flat backend: the engine's worker
  //    budget becomes the scatter width of each query.  The workload
  //    is seeded, so a cold and a warm process serve identical
  //    queries.
  topk::serve::QueryEngine engine(
      sharded, {.workers = 0, .max_pending = 64, .latency_window = 1024});

  topk::util::Xoshiro256 rng(22);
  std::vector<std::vector<float>> queries;
  for (int q = 0; q < kBatch + kAsync; ++q) {
    queries.push_back(topk::sparse::generate_dense_vector(kCols, rng));
  }

  topk::util::WallTimer batch_timer;
  auto results =
      engine.query_batch({queries.begin(), queries.begin() + kBatch}, kTopK);
  const double batch_ms = batch_timer.millis();

  std::vector<std::future<topk::index::QueryResult>> futures;
  for (int q = kBatch; q < kBatch + kAsync; ++q) {
    futures.push_back(engine.submit(queries[q], kTopK));
  }
  for (auto& future : futures) {
    results.push_back(future.get());
    if (results.back().entries.size() != static_cast<std::size_t>(kTopK)) {
      std::cerr << "async invariant violated\n";
      return 1;
    }
  }

  // 3. Invariants: every query saw all rows (the shards' rows_scanned
  //    sum to the collection), scattered across all four shards, and
  //    gathered at least kTopK candidates.
  for (const auto& result : results) {
    const topk::index::ShardStats* scatter = topk::index::shard_stats(result);
    if (result.entries.size() != static_cast<std::size_t>(kTopK) ||
        result.stats.rows_scanned != sharded->rows() || scatter == nullptr ||
        scatter->shards != 4 ||
        scatter->gathered_candidates < static_cast<std::uint64_t>(kTopK)) {
      std::cerr << "scatter-gather invariant violated\n";
      return 1;
    }
  }

  const auto latency = engine.latency_summary();
  const topk::index::ShardStats* scatter =
      topk::index::shard_stats(results.front());
  topk::util::TablePrinter table({"Metric", "Value"});
  table.add_row({"Backend", description.backend});
  table.add_row({"Shards", std::to_string(scatter->shards)});
  table.add_row({"Batch + async queries",
                 std::to_string(kBatch) + " + " + std::to_string(kAsync)});
  table.add_row({"Batch wall time",
                 topk::util::format_double(batch_ms, 1) + " ms"});
  table.add_row({"p50 / p99 latency",
                 topk::util::format_double(latency.p50_ms, 1) + " / " +
                     topk::util::format_double(latency.p99_ms, 1) + " ms"});
  table.add_row({"Candidates gathered / query",
                 std::to_string(scatter->gathered_candidates)});
  table.add_row({"Critical-path shard (modelled)",
                 std::to_string(scatter->slowest_shard)});
  table.add_row({"Modelled FPGA critical path",
                 topk::util::format_double(
                     results.front().stats.modelled_seconds * 1e3, 3) +
                     " ms"});
  table.print(std::cout);

  // 4. Persistence: --save writes the deployment images plus the
  //    results digest; --load proves the warm-loaded index reproduced
  //    the cold process's results bit for bit.
  const std::string digest = results_digest(results);
  if (mode == Mode::kSave) {
    topk::util::WallTimer save_timer;
    topk::persist::save_deployment(*sharded, deploy_dir);
    std::ofstream(deploy_dir / kResultsDigestFile) << digest << '\n';
    std::cout << "\nSaved deployment to " << deploy_dir << " in "
              << topk::util::format_double(save_timer.millis(), 1)
              << " ms (results digest " << digest.substr(0, 12) << "...)\n";
  } else if (mode == Mode::kLoad) {
    std::ifstream digest_file(deploy_dir / kResultsDigestFile);
    std::string expected;
    if (!(digest_file >> expected)) {
      std::cerr << "cannot read " << deploy_dir / kResultsDigestFile
                << " (was the deployment saved with --save?)\n";
      return 1;
    }
    const bool identical = digest == expected;
    std::cout << "\nWarm process vs cold process results: "
              << (identical ? "bit-identical" : "MISMATCH") << " (digest "
              << digest.substr(0, 12) << "...)\n";
    if (!identical) {
      return 1;
    }
    return 0;
  }

  // 5. The registry one-liner: a uniform sharded backend is just
  //    another name, and its exact variant agrees with the flat exact
  //    scan bit-for-bit.
  const auto sharded_exact =
      topk::index::make_index("sharded-exact-sort", matrix);
  const auto flat_exact = topk::index::make_index("exact-sort", matrix);
  const bool identical =
      sharded_exact->query(queries.front(), kTopK).entries ==
      flat_exact->query(queries.front(), kTopK).entries;
  std::cout << "\nsharded-exact-sort vs exact-sort on the same query: "
            << (identical ? "bit-identical" : "MISMATCH") << "\n";
  return identical ? 0 : 1;
}
