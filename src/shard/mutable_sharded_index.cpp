#include "shard/mutable_sharded_index.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "telemetry/trace.hpp"
#include "util/timer.hpp"

namespace topk::shard {

namespace {

std::shared_ptr<index::DeltaIndex> make_delta(
    const ShardedIndex& base, std::uint64_t capacity,
    std::vector<std::uint32_t> inherited) {
  if (inherited.empty()) {
    return std::make_shared<index::DeltaIndex>(base.rows(), base.cols(),
                                               capacity);
  }
  return std::make_shared<index::DeltaIndex>(
      base.rows(), base.rows(), base.cols(), capacity, std::move(inherited),
      std::map<std::uint32_t, index::DeltaVersion>{}, std::uint64_t{0});
}

}  // namespace

MutableShardedIndex::MutableShardedIndex(
    std::shared_ptr<const ShardedIndex> base,
    std::shared_ptr<const sparse::Csr> base_matrix, RebuildRecipe recipe,
    MutableConfig config, std::uint64_t generation,
    std::vector<std::uint32_t> inherited)
    : recipe_(std::move(recipe)), config_(std::move(config)) {
  if (!base) {
    throw std::invalid_argument(config_.label + ": null base index");
  }
  if (base_matrix &&
      (base_matrix->rows() != base->rows() ||
       base_matrix->cols() != base->cols())) {
    throw std::invalid_argument(config_.label +
                                ": base matrix shape disagrees with the "
                                "sealed base");
  }
  auto state = std::make_shared<State>();
  state->delta =
      make_delta(*base, config_.delta_capacity, std::move(inherited));
  state->base = std::move(base);
  state->base_matrix = std::move(base_matrix);
  state->generation = generation;
  state_ = std::move(state);
}

std::shared_ptr<const MutableShardedIndex::State>
MutableShardedIndex::current_state() const {
  util::ReaderLock lock(mutex_);
  return state_;
}

// ---- MutableIndex surface ------------------------------------------------

// Mutations hold the state lock SHARED across the delta call: a
// concurrent swap (exclusive) either waits for the mutation to land in
// the delta it is about to fold/split, or the mutation sees the fresh
// delta — a mutation can never slip into a retired delta unseen.

std::uint32_t MutableShardedIndex::insert_row(
    std::span<const std::uint32_t> columns, std::span<const float> values) {
  util::ReaderLock lock(mutex_);
  return state_->delta->append_row(columns, values);
}

void MutableShardedIndex::insert_row(std::uint32_t row,
                                     std::span<const std::uint32_t> columns,
                                     std::span<const float> values) {
  util::ReaderLock lock(mutex_);
  state_->delta->upsert_row(row, columns, values);
}

bool MutableShardedIndex::delete_row(std::uint32_t row) {
  util::ReaderLock lock(mutex_);
  return state_->delta->delete_row(row);
}

std::uint64_t MutableShardedIndex::live_rows() const {
  return current_state()->delta->live_rows();
}

index::DeltaStats MutableShardedIndex::delta_stats() const {
  const auto state = current_state();
  index::DeltaStats stats;
  stats.generation = state->generation;
  stats.delta_rows = state->delta->delta_rows();
  stats.tombstones = state->delta->tombstones();
  stats.superseded = state->delta->superseded();
  stats.mutations_since_seal = state->delta->mutations();
  stats.delta_capacity = config_.delta_capacity;
  stats.compact_threshold = config_.compact_threshold;
  return stats;
}

// ---- SimilarityIndex surface ---------------------------------------------

index::QueryResult MutableShardedIndex::annotate(
    index::QueryResult result, const State& state,
    const index::DeltaIndex::Scan& scan) const {
  index::MutableTierStats stats;
  if (const auto* shard =
          std::get_if<index::ShardStats>(&result.stats.backend)) {
    stats.shard = *shard;
  }
  stats.generation = state.generation;
  stats.delta_scanned = scan.scanned;
  stats.delta_candidates = static_cast<std::uint64_t>(scan.entries.size());
  stats.masked_rows = static_cast<std::uint64_t>(scan.masked.size());
  result.stats.rows_scanned += scan.scanned;
  result.stats.backend = stats;
  return result;
}

index::QueryResult MutableShardedIndex::query(
    std::span<const float> x, int top_k,
    const index::QueryOptions& options) const {
  validate_query(x, top_k);
  // One state copy per query: the generation serving this query stays
  // alive (shared_ptr) across the scan + scatter even if a compaction
  // swaps mid-flight, and the scan + overlay come from the same
  // delta, so the query sees one consistent logical matrix.
  const auto state = current_state();
  index::DeltaIndex::Scan scan;
  {
    telemetry::SpanTimer span("delta-scan", "mutable");
    scan = state->delta->scan(x, top_k);
    if (span.active()) {
      span.add_arg(telemetry::arg("scanned",
                                  static_cast<std::uint64_t>(scan.scanned)));
      span.add_arg(telemetry::arg(
          "masked", static_cast<std::uint64_t>(scan.masked.size())));
    }
  }
  const ShardedIndex::DeltaOverlay overlay{scan.entries, scan.masked};
  return annotate(state->base->query_with_delta(x, top_k, overlay, options),
                  *state, scan);
}

std::vector<index::QueryResult> MutableShardedIndex::query_batch(
    const std::vector<std::vector<float>>& queries, int top_k,
    const index::QueryOptions& options) const {
  validate_batch(queries, top_k);
  const auto state = current_state();
  std::vector<index::DeltaIndex::Scan> scans;
  scans.reserve(queries.size());
  std::vector<ShardedIndex::DeltaOverlay> overlays;
  overlays.reserve(queries.size());
  {
    telemetry::SpanTimer span("delta-scan", "mutable");
    for (const auto& x : queries) {
      scans.push_back(state->delta->scan(x, top_k));
      overlays.push_back(ShardedIndex::DeltaOverlay{scans.back().entries,
                                                    scans.back().masked});
    }
    if (span.active()) {
      span.add_arg(telemetry::arg("queries",
                                  static_cast<std::uint64_t>(queries.size())));
    }
  }
  std::vector<index::QueryResult> results =
      state->base->query_batch_with_delta(queries, top_k, overlays, options);
  for (std::size_t q = 0; q < results.size(); ++q) {
    results[q] = annotate(std::move(results[q]), *state, scans[q]);
  }
  return results;
}

std::uint32_t MutableShardedIndex::rows() const noexcept {
  return current_state()->delta->rows();
}

std::uint32_t MutableShardedIndex::cols() const noexcept {
  return current_state()->base->cols();
}

int MutableShardedIndex::max_top_k() const noexcept {
  return current_state()->base->max_top_k();
}

index::IndexDescription MutableShardedIndex::describe() const {
  const auto state = current_state();
  const index::IndexDescription base = state->base->describe();
  const index::IndexDescription delta = state->delta->describe();
  index::IndexDescription description;
  description.backend = config_.label;
  description.detail = "generation " + std::to_string(state->generation) +
                       ": " + base.detail + " + delta (" +
                       std::to_string(state->delta->delta_rows()) +
                       " live rows, " +
                       std::to_string(state->delta->tombstones()) +
                       " tombstones)";
  description.exact = base.exact;  // the delta scan is always exact
  description.rows = state->delta->rows();
  description.cols = base.cols;
  description.max_top_k = base.max_top_k;
  description.memory_bytes = base.memory_bytes + delta.memory_bytes;
  return description;
}

std::shared_ptr<const ShardedIndex> MutableShardedIndex::base() const {
  return current_state()->base;
}

std::shared_ptr<const sparse::Csr> MutableShardedIndex::base_matrix() const {
  return current_state()->base_matrix;
}

// ---- compaction protocol -------------------------------------------------

std::optional<MutableShardedIndex::CompactionTicket>
MutableShardedIndex::begin_compaction() {
  util::WallTimer timer;
  CompactionTicket ticket;
  std::shared_ptr<const State> state;
  {
    // The exclusive section only claims the guard; the O(delta)
    // snapshot copy runs below with queries and mutations flowing.
    util::WriterLock lock(mutex_);
    if (compacting_) {
      throw std::logic_error(config_.label +
                             ": a compaction is already in flight");
    }
    if (state_->delta->mutations() == 0) {
      return std::nullopt;  // empty-delta no-op; the guard stays free
    }
    if (!state_->base_matrix) {
      throw std::runtime_error(
          config_.label +
          ": no host copy of the base matrix to fold against (an fpga-sim "
          "warm load serves its quantised device image only — rebuild cold "
          "to compact)");
    }
    compacting_ = true;
    state = state_;
  }
  // The claimed guard pins this generation: no other compaction can
  // swap state_ until finish/abort, so the snapshot below is of the
  // live delta.  Mutations landing during the copy get sequence
  // numbers above the snapshot watermark and ride over as residuals.
  ticket.generation = state->generation;
  ticket.snapshot = state->delta->snapshot();
  ticket.base_matrix = state->base_matrix;
  ticket.recipe = recipe_;
  ticket.snapshot_seconds = timer.seconds();
  return ticket;
}

MutableShardedIndex::FoldedMatrix MutableShardedIndex::fold(
    const CompactionTicket& ticket) {
  const index::DeltaIndex::Snapshot& snap = ticket.snapshot;
  const sparse::Csr& base = *ticket.base_matrix;
  FoldedMatrix out;
  std::vector<std::uint64_t> row_ptr;
  row_ptr.reserve(static_cast<std::size_t>(snap.next_id) + 1);
  row_ptr.push_back(0);
  std::vector<std::uint32_t> col_idx;
  std::vector<float> values;

  auto version_it = snap.versions.begin();
  auto inherited_it = snap.inherited.begin();
  for (std::uint32_t id = 0; id < snap.next_id; ++id) {
    const index::DeltaVersion* version = nullptr;
    if (version_it != snap.versions.end() && version_it->first == id) {
      version = &version_it->second;
      ++version_it;
    }
    while (inherited_it != snap.inherited.end() && *inherited_it < id) {
      ++inherited_it;
    }
    const bool inherited =
        inherited_it != snap.inherited.end() && *inherited_it == id;
    if (version != nullptr && !version->tombstone) {
      col_idx.insert(col_idx.end(), version->columns.begin(),
                     version->columns.end());
      values.insert(values.end(), version->values.begin(),
                    version->values.end());
    } else if (version == nullptr && id < snap.base_rows && !inherited) {
      const auto cols = base.row_cols(id);
      const auto vals = base.row_values(id);
      col_idx.insert(col_idx.end(), cols.begin(), cols.end());
      values.insert(values.end(), vals.begin(), vals.end());
    } else {
      // Tombstoned, inherited, or (defensively) an appended id with no
      // version: folded as an empty row that the next generation's
      // inherited set keeps masked forever.
      out.retired.push_back(id);
    }
    row_ptr.push_back(static_cast<std::uint64_t>(col_idx.size()));
  }
  out.matrix = sparse::Csr::from_parts(snap.next_id, base.cols(),
                                       std::move(row_ptr), std::move(col_idx),
                                       std::move(values));
  return out;
}

double MutableShardedIndex::finish_compaction(
    const CompactionTicket& ticket,
    std::shared_ptr<const ShardedIndex> next_base,
    std::shared_ptr<const sparse::Csr> next_matrix,
    std::vector<std::uint32_t> retired) {
  if (!next_base || !next_matrix) {
    throw std::invalid_argument(config_.label +
                                ": null next generation handed to "
                                "finish_compaction");
  }
  if (next_base->rows() != ticket.snapshot.next_id ||
      next_matrix->rows() != ticket.snapshot.next_id) {
    throw std::invalid_argument(
        config_.label + ": next generation rows (" +
        std::to_string(next_base->rows()) +
        ") disagree with the folded id space (" +
        std::to_string(ticket.snapshot.next_id) + ")");
  }
  util::WallTimer timer;
  util::WriterLock lock(mutex_);
  if (!compacting_ || state_->generation != ticket.generation) {
    throw std::logic_error(config_.label +
                           ": finish_compaction without a matching "
                           "begin_compaction");
  }
  // Mutations are blocked right now (they hold mutex_ shared), so the
  // residual split is exact: everything folded has seq <= the snapshot
  // watermark, everything newer moves into the fresh delta verbatim.
  index::DeltaIndex::Snapshot current = state_->delta->snapshot();
  std::map<std::uint32_t, index::DeltaVersion> residual;
  for (auto& [id, version] : current.versions) {
    if (version.seq > ticket.snapshot.seq) {
      residual.emplace(id, std::move(version));
    }
  }
  auto state = std::make_shared<State>();
  state->delta = std::make_shared<index::DeltaIndex>(
      ticket.snapshot.next_id, current.next_id, next_matrix->cols(),
      config_.delta_capacity, std::move(retired), std::move(residual),
      current.seq);
  state->base = std::move(next_base);
  state->base_matrix = std::move(next_matrix);
  state->generation = ticket.generation + 1;
  state_ = std::move(state);
  compacting_ = false;
  return timer.seconds();
}

void MutableShardedIndex::abort_compaction() noexcept {
  util::WriterLock lock(mutex_);
  compacting_ = false;
}

}  // namespace topk::shard
