// Shard boundary planning for the scatter-gather index tier.
//
// The paper scales Top-K SpMV by splitting the row space across 32
// FPGA cores and merging per-core candidates; the shard tier lifts the
// same 1-D row-wise decomposition one level up, to whole indexes (the
// parallel all-pairs-similarity decomposition of PAPERS.md).  A plan
// is a contiguous cover of [0, rows) — deterministic boundaries keep
// sharded results reproducible and the gather a cheap k-way merge.
//
// Two policies:
//   kEvenRows     the paper's N/c scheme (sizes differ by at most one);
//   kNnzBalanced  boundaries cut on the nnz prefix sum so every shard
//                 scans ~the same number of non-zeros — the right
//                 split for skewed (Gamma-distributed) row densities,
//                 where an even row split leaves one shard holding
//                 most of the work.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/partitioner.hpp"
#include "sparse/csr.hpp"

namespace topk::shard {

/// How shard boundaries are chosen.
enum class ShardPolicy {
  kEvenRows,     ///< ~rows/shards rows each (paper's per-core scheme)
  kNnzBalanced,  ///< ~nnz/shards non-zeros each (skew-tolerant)
};

[[nodiscard]] std::string to_string(ShardPolicy policy);

/// A plan: contiguous half-open row ranges covering [0, rows), one per
/// shard, every shard non-empty.
using ShardPlan = std::vector<core::Partition>;

/// Even row split (reuses the paper's core partitioner).  Throws
/// std::invalid_argument for non-positive counts or counts above rows.
[[nodiscard]] ShardPlan plan_even_rows(std::uint32_t rows, int shards);

/// Nnz-balanced split: boundaries are the row_ptr positions closest to
/// the ideal nnz/shards multiples, adjusted so every shard keeps at
/// least one row.  Deterministic for a given matrix.  Throws like
/// plan_even_rows.  (sparse::matrix_stats quantifies the skew this
/// policy neutralises; plan_nnz_imbalance scores the result.)
[[nodiscard]] ShardPlan plan_nnz_balanced(const sparse::Csr& matrix, int shards);

/// Work imbalance of a plan: max shard nnz / ideal shard nnz
/// (total/shards).  1.0 is perfect balance; an even row split over a
/// skewed matrix scores well above the nnz-balanced plan (asserted in
/// tests/test_shard.cpp).
[[nodiscard]] double plan_nnz_imbalance(const sparse::Csr& matrix,
                                        const ShardPlan& plan);

/// Policy-dispatching facade used by ShardedIndexBuilder and the
/// registry factories.
class ShardPlanner {
 public:
  explicit ShardPlanner(ShardPolicy policy = ShardPolicy::kNnzBalanced)
      : policy_(policy) {}

  [[nodiscard]] ShardPolicy policy() const noexcept { return policy_; }

  /// Plans `shards` boundaries over `matrix` with the configured
  /// policy.  Throws like the free planning functions.
  [[nodiscard]] ShardPlan plan(const sparse::Csr& matrix, int shards) const;

 private:
  ShardPolicy policy_;
};

}  // namespace topk::shard
