// Sharded scatter-gather index tier over any SimilarityIndex backend.
//
// The paper's FPGA design scales Top-K SpMV by partitioning the row
// space across 32 cores and merging per-core Top-K candidates; the
// ShardedIndex lifts the identical pattern to host scale (the
// ROADMAP's "heavy traffic" north star): a collection is split into N
// contiguous row-range shards (shard_planner.hpp), one inner backend
// index serves each shard — mixed backends are allowed, e.g. fpga-sim
// shards with a cpu-heap straggler — and queries scatter across the
// shards on the shared serve::ThreadPool.  The gather stage is a
// deterministic k-way heap merge on the repo-wide Top-K order
// (core::topk_entry_before) that remaps local row ids to global ids,
// so a sharded index over exact inner backends is bit-identical to
// the unsharded backend on the same matrix (tests/test_shard.cpp).
//
// ShardedIndex is itself a SimilarityIndex, so it serves through
// serve::QueryEngine and sweeps through every registry-driven bench
// unchanged; the registry seeds "sharded-<inner>" factories for all
// built-in backends (index/registry.hpp).
#pragma once

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/partitioner.hpp"
#include "index/backends.hpp"
#include "index/similarity_index.hpp"
#include "shard/shard_planner.hpp"
#include "sparse/csr.hpp"

namespace topk::shard {

/// One shard: the global row range it serves and the inner index over
/// that range (whose local row 0 is global row range.row_begin).
struct Shard {
  core::Partition range;
  std::shared_ptr<const index::SimilarityIndex> inner;
};

/// Scatter-gather composite over per-shard inner indexes.
///
/// Thread-compatible like every SimilarityIndex.  QueryOptions.threads
/// is the scatter width: shards are claimed dynamically from the
/// shared pool and each inner index runs its own path sequentially.
/// Stats aggregate across shards — rows_scanned sums, modelled_seconds
/// is the max (the critical path of a parallel scatter) — with the
/// gather itself described by the index::ShardStats extension.
class ShardedIndex final : public index::SimilarityIndex {
 public:
  /// Takes ownership of the shard list.  Throws std::invalid_argument
  /// when the list is empty, a shard is null or empty, the ranges are
  /// not contiguous from row 0, an inner index's rows() does not match
  /// its range, or the column counts disagree.  `backend_label` is
  /// what describe().backend reports (the registry factories pass
  /// their key, e.g. "sharded-cpu-heap").
  explicit ShardedIndex(std::vector<Shard> shards,
                        std::string backend_label = "sharded");

  [[nodiscard]] index::QueryResult query(
      std::span<const float> x, int top_k,
      const index::QueryOptions& options = {}) const override;

  /// Batch scatter: the (query, shard) grid is claimed dynamically
  /// from the shared pool, then each query's shards gather in input
  /// order — per-query results are identical to query() at any thread
  /// count.
  [[nodiscard]] std::vector<index::QueryResult> query_batch(
      const std::vector<std::vector<float>>& queries, int top_k,
      const index::QueryOptions& options = {}) const override;

  [[nodiscard]] std::uint32_t rows() const noexcept override;
  [[nodiscard]] std::uint32_t cols() const noexcept override;
  [[nodiscard]] index::IndexDescription describe() const override;

  /// Sum of the shard caps when every shard is capped (each shard can
  /// surface at most its inner max_top_k candidates); 0 (unbounded)
  /// when any shard is uncapped.  A capped shard silently contributes
  /// min(top_k, cap) candidates, mirroring the paper's k*cores merge.
  [[nodiscard]] int max_top_k() const noexcept override;

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] const Shard& shard(std::size_t i) const {
    return shards_.at(i);
  }

 private:
  /// Queries shard `s` with top_k clamped to the shard's cap; entries
  /// come back in local row ids.
  [[nodiscard]] index::QueryResult query_shard(std::size_t s,
                                               std::span<const float> x,
                                               int top_k) const;

  /// Deterministic k-way heap merge of per-shard results (local ids)
  /// into one global result, aggregating stats.
  [[nodiscard]] index::QueryResult gather(
      std::span<const index::QueryResult> per_shard, int top_k) const;

  std::vector<Shard> shards_;
  std::string label_;
  std::uint32_t rows_ = 0;
  std::uint32_t cols_ = 0;
  int max_top_k_ = 0;
};

/// Fluent construction of a ShardedIndex from a shared collection:
///
///   auto sharded = ShardedIndexBuilder()
///                      .matrix(csr)
///                      .shards(4)
///                      .policy(ShardPolicy::kNnzBalanced)
///                      .inner_backend("fpga-sim")
///                      .shard_backend(3, "cpu-heap")  // mixed shards
///                      .build();
///
/// Each shard's rows are sliced out of the matrix and handed to the
/// registry (index::make_index), so any registered backend — built-in
/// or third-party — can serve a shard.
class ShardedIndexBuilder {
 public:
  ShardedIndexBuilder& matrix(std::shared_ptr<const sparse::Csr> matrix);
  /// Copies (or moves) the matrix into shared ownership.
  ShardedIndexBuilder& matrix(sparse::Csr matrix);
  /// Shard count (default 4).  Validated against the row count at
  /// build() time by the planner.
  ShardedIndexBuilder& shards(int count);
  ShardedIndexBuilder& policy(ShardPolicy policy);
  /// Inner backend for every shard without an override (default
  /// "cpu-heap").
  ShardedIndexBuilder& inner_backend(std::string name);
  /// Options handed to every inner factory (e.g. the FPGA design).
  ShardedIndexBuilder& inner_options(const index::IndexOptions& options);
  /// Overrides the backend of one shard — mixed-backend deployments
  /// (an exact straggler next to fpga-sim shards).  Throws at build()
  /// if `shard` is outside [0, shards).
  ShardedIndexBuilder& shard_backend(int shard, std::string name);
  /// describe().backend of the built index.  Defaults to
  /// "sharded-<inner>" for uniform shards, "sharded" for mixed ones.
  ShardedIndexBuilder& label(std::string label);

  /// Throws std::invalid_argument if no matrix was set, the shard
  /// count does not fit the matrix, an override is out of range, or a
  /// backend name is unknown to the registry.
  [[nodiscard]] std::shared_ptr<ShardedIndex> build() const;

  /// Warm restart: reconstructs a ShardedIndex from a deployment
  /// directory written by persist::save_deployment, replaying the
  /// persisted shard images instead of re-running the encoder.
  /// `options` supplies the non-geometric knobs of the inner factories
  /// (e.g. the gpu-f16 perf model); the design, shard plan and
  /// backends come from the manifest.  Throws std::runtime_error
  /// naming the offending file on missing/corrupt/mismatched images.
  [[nodiscard]] static std::shared_ptr<ShardedIndex> from_deployment(
      const std::filesystem::path& dir,
      const index::IndexOptions& options = {});

 private:
  std::shared_ptr<const sparse::Csr> matrix_;
  int shards_ = 4;
  ShardPolicy policy_ = ShardPolicy::kNnzBalanced;
  std::string inner_backend_ = "cpu-heap";
  index::IndexOptions inner_options_;
  std::vector<std::pair<int, std::string>> overrides_;
  std::string label_;
};

}  // namespace topk::shard
