// Sharded scatter-gather index tier over any SimilarityIndex backend,
// with per-shard replica sets.
//
// The paper's FPGA design scales Top-K SpMV by partitioning the row
// space across 32 cores and merging per-core Top-K candidates; the
// ShardedIndex lifts the identical pattern to host scale (the
// ROADMAP's "heavy traffic" north star): a collection is split into N
// contiguous row-range shards (shard_planner.hpp), each row range is
// served by R replica inner indexes — mixed backends across shards are
// allowed, e.g. fpga-sim shards with a cpu-heap straggler — and
// queries scatter across the shards on the shared util::ThreadPool.
// Each (query, shard) cell routes to ONE replica by a RoutingPolicy
// (round-robin, or least-loaded on in-flight counts + an EWMA of
// observed wall time) and fails over to the next replica when the
// chosen one throws, so the tier survives a failing inner index and
// scales read throughput across replica devices.  The gather stage is
// a deterministic k-way heap merge on the repo-wide Top-K order
// (core::topk_entry_before) that remaps local row ids to global ids,
// so a sharded index over exact inner backends is bit-identical to
// the unsharded backend on the same matrix at ANY replica count and
// under any failover pattern (tests/test_shard.cpp,
// tests/test_replication.cpp) — replicas of a shard serve the same
// rows with the same backend, so which one answers never changes the
// result.
//
// ShardedIndex is itself a SimilarityIndex, so it serves through
// serve::QueryEngine and sweeps through every registry-driven bench
// unchanged; the registry seeds "sharded-<inner>" factories for all
// built-in backends (index/registry.hpp), replicated via
// IndexOptions::replicas.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/partitioner.hpp"
#include "index/backends.hpp"
#include "index/similarity_index.hpp"
#include "shard/shard_planner.hpp"
#include "sparse/csr.hpp"
#include "telemetry/metrics.hpp"
#include "util/sync.hpp"

namespace topk::shard {

/// How a (query, shard) cell picks the replica that serves it.
enum class RoutingPolicy {
  /// Cycle through the healthy replicas per shard — oblivious but
  /// perfectly fair under uniform replicas.
  kRoundRobin,
  /// Route to the healthy replica with the fewest in-flight calls,
  /// ties broken by the lower EWMA of observed per-call wall time
  /// (an unmeasured replica counts as 0 and is explored first), then
  /// by the lower replica id.  The right policy when replicas differ
  /// in speed or share the host with other load.
  kLeastLoaded,
};

[[nodiscard]] std::string to_string(RoutingPolicy policy);

/// One shard: the global row range it serves and the replica set of
/// inner indexes over that range (each replica's local row 0 is global
/// row range.row_begin).  Replicas must be interchangeable — same
/// rows, cols and (for bit-identical serving) the same backend over
/// the same slice; the builder and the deployment loader construct
/// them that way.
struct Shard {
  core::Partition range;
  std::vector<std::shared_ptr<const index::SimilarityIndex>> replicas;

  Shard() = default;
  /// Single-replica convenience, the unreplicated tier's shape.
  Shard(core::Partition shard_range,
        std::shared_ptr<const index::SimilarityIndex> inner)
      : range(shard_range), replicas{std::move(inner)} {}
  Shard(core::Partition shard_range,
        std::vector<std::shared_ptr<const index::SimilarityIndex>> shard_replicas)
      : range(shard_range), replicas(std::move(shard_replicas)) {}

  /// The first replica — the one whose image save_deployment persists
  /// and the benches time for critical-path measurements.
  [[nodiscard]] const index::SimilarityIndex& primary() const {
    return *replicas.front();
  }
};

/// Scatter-gather composite over per-shard replica sets.
///
/// Thread-compatible like every SimilarityIndex.  QueryOptions.threads
/// is the scatter width: shards are claimed dynamically from the
/// shared pool and each cell's chosen replica runs its own path
/// sequentially.  Stats aggregate across shards — rows_scanned sums,
/// modelled_seconds is the max (the critical path of a parallel
/// scatter) — with the gather and routing described by the
/// index::ShardStats extension, and cumulative per-replica health by
/// replica_stats().
class ShardedIndex final : public index::SimilarityIndex {
 public:
  /// Takes ownership of the shard list.  Throws std::invalid_argument
  /// when the list is empty, a shard has no replicas, a replica is
  /// null, the ranges are not contiguous from row 0, a replica's
  /// rows() does not match its range, or the column counts disagree.
  /// `backend_label` is what describe().backend reports (the registry
  /// factories pass their key, e.g. "sharded-cpu-heap").
  explicit ShardedIndex(std::vector<Shard> shards,
                        std::string backend_label = "sharded",
                        RoutingPolicy routing = RoutingPolicy::kLeastLoaded);

  [[nodiscard]] index::QueryResult query(
      std::span<const float> x, int top_k,
      const index::QueryOptions& options = {}) const override;

  /// Batch scatter: the (query, shard) grid is claimed dynamically
  /// from the shared pool, then each query's shards gather in input
  /// order — per-query results are identical to query() at any thread
  /// count and under any replica routing.
  [[nodiscard]] std::vector<index::QueryResult> query_batch(
      const std::vector<std::vector<float>>& queries, int top_k,
      const index::QueryOptions& options = {}) const override;

  /// What the mutable tier's delta scan contributes to one query: the
  /// candidates to merge alongside the sealed shards and the base rows
  /// to hide from them (see index::DeltaIndex::scan).
  struct DeltaOverlay {
    /// Top-k live delta rows (GLOBAL ids, sorted by
    /// core::topk_entry_before) — one extra source in the k-way merge,
    /// needing no local-to-global remap.
    std::span<const core::TopKEntry> entries;
    /// Sorted global base ids (< rows()) the merge must skip:
    /// tombstoned, inherited, or superseded rows.
    std::span<const std::uint32_t> masked;
  };

  /// query() with a delta overlay merged through the same
  /// deterministic gather.  Every shard is asked for
  /// top_k + masked.size() candidates (at most masked.size() of any
  /// shard's top entries can be masked away, so the merge always has
  /// >= top_k live base candidates in reach), masked ids are skipped
  /// as the per-shard heads advance, and the overlay entries compete
  /// as one more sorted source — so the result is bit-identical to a
  /// cold rebuild of the logically-equivalent matrix queried through
  /// the same shard plan.
  [[nodiscard]] index::QueryResult query_with_delta(
      std::span<const float> x, int top_k, const DeltaOverlay& overlay,
      const index::QueryOptions& options = {}) const;

  /// Batch variant of query_with_delta: one overlay per query, the
  /// (query, shard) grid scattered like query_batch.
  [[nodiscard]] std::vector<index::QueryResult> query_batch_with_delta(
      const std::vector<std::vector<float>>& queries, int top_k,
      std::span<const DeltaOverlay> overlays,
      const index::QueryOptions& options = {}) const;

  [[nodiscard]] std::uint32_t rows() const noexcept override;
  [[nodiscard]] std::uint32_t cols() const noexcept override;
  [[nodiscard]] index::IndexDescription describe() const override;

  /// Sum of the shard caps when every shard is capped (each shard can
  /// surface at most its inner max_top_k candidates); 0 (unbounded)
  /// when any shard is uncapped.  A shard's cap is the smallest cap
  /// among its capped replicas, so a clamped request is safe on
  /// whichever replica serves it.  A capped shard silently contributes
  /// min(top_k, cap) candidates, mirroring the paper's k*cores merge.
  [[nodiscard]] int max_top_k() const noexcept override;

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] const Shard& shard(std::size_t i) const {
    return shards_.at(i);
  }
  [[nodiscard]] std::size_t replica_count(std::size_t i) const {
    return shards_.at(i).replicas.size();
  }
  [[nodiscard]] RoutingPolicy routing() const noexcept { return routing_; }

  /// Snapshot of the cumulative per-replica counters of shard `i` —
  /// queries served, failures absorbed by failover, in-flight calls,
  /// the wall-time EWMA the least-loaded policy routes on, and the
  /// health bit with the last error message.
  [[nodiscard]] std::vector<index::ReplicaStats> replica_stats(
      std::size_t i) const;

 private:
  /// Live counters of one replica, shared by the routing policies and
  /// the stats snapshot.  Mutable runtime state of a const index —
  /// the event counts are telemetry::Counter cells (the registry's
  /// vocabulary, per -Wraw-stat), the routing hints are raw atomics,
  /// and the error record sits under its own mutex.
  ///
  /// Memory ordering: every operation on the atomics is relaxed, on
  /// purpose.  They are monotonic load/health *hints* feeding routing
  /// decisions and advisory stats snapshots — no other memory is
  /// published through them (the query results themselves synchronise
  /// through the thread pool's join), a stale read only makes a pick
  /// marginally less balanced, and failover corrects any mis-route.
  /// Each site carries its own one-line rationale.
  struct ReplicaState {
    telemetry::Counter queries;
    telemetry::Counter failures;
    std::atomic<int> inflight{0};
    std::atomic<double> ewma_seconds{0.0};
    std::atomic<bool> healthy{true};
    mutable util::Mutex error_mutex;
    /// Truncated to kMaxErrorLength — a failing replica under load must
    /// not grow memory with ever-longer exception payloads.
    std::string last_error TOPK_GUARDED_BY(error_mutex);
    /// telemetry::now_seconds() of the most recent failure; -1 = never.
    double last_error_seconds TOPK_GUARDED_BY(error_mutex) = -1.0;
  };

  /// Cap on the stored last_error message (see ReplicaState).
  static constexpr std::size_t kMaxErrorLength = 256;

  /// One (query, shard) cell's outcome: the replica's result plus the
  /// scatter-side measurements the gather aggregates.
  struct ShardCall {
    index::QueryResult result;
    double measured_seconds = 0.0;  ///< wall time of the serving call
    std::uint64_t failovers = 0;    ///< replicas that failed first
  };

  /// Start replica for a cell on shard `s` per the routing policy,
  /// preferring healthy replicas (all-unhealthy falls back to all).
  /// Every 16th pick on a shard with unhealthy replicas probes one of
  /// them instead, so a recovered replica rejoins on its first
  /// successful probe.
  [[nodiscard]] std::size_t pick_replica(std::size_t s) const;

  /// Queries shard `s` with top_k clamped to the shard's cap; entries
  /// come back in local row ids.  Routes to one replica and fails over
  /// cyclically through the rest on error, recording success/failure
  /// in the replica state; rethrows the last error once every replica
  /// has failed.
  [[nodiscard]] ShardCall query_shard(std::size_t s,
                                      std::span<const float> x,
                                      int top_k) const;

  /// Deterministic k-way heap merge of per-shard results (local ids)
  /// into one global result, aggregating stats; slowest_shard falls
  /// back to the measured wall time when a shard reports no modelled
  /// time, so the signal is live for every backend.  With an overlay,
  /// masked global ids are skipped as the shard heads advance and the
  /// overlay entries join the merge as one extra pre-sorted source.
  [[nodiscard]] index::QueryResult gather(
      std::span<const ShardCall> per_shard, int top_k,
      const DeltaOverlay* overlay = nullptr) const;

  /// Per-shard candidate request for a query with `masked` hidden base
  /// rows: top_k + masked, saturating on int.
  [[nodiscard]] static int inflated_top_k(int top_k, std::size_t masked);

  std::vector<Shard> shards_;
  std::string label_;
  RoutingPolicy routing_;
  std::uint32_t rows_ = 0;
  std::uint32_t cols_ = 0;
  int max_top_k_ = 0;
  int max_replicas_ = 1;
  std::vector<int> shard_caps_;
  /// state_[shard][replica]; unique_ptr keeps the atomics stable.
  std::vector<std::vector<std::unique_ptr<ReplicaState>>> state_;
  /// Round-robin tickets, one counter per shard.
  mutable std::vector<std::atomic<std::uint64_t>> round_robin_;
};

/// Fluent construction of a ShardedIndex from a shared collection:
///
///   auto sharded = ShardedIndexBuilder()
///                      .matrix(csr)
///                      .shards(4)
///                      .policy(ShardPolicy::kNnzBalanced)
///                      .inner_backend("fpga-sim")
///                      .shard_backend(3, "cpu-heap")  // mixed shards
///                      .replicas(2)                   // failover pair
///                      .routing(RoutingPolicy::kLeastLoaded)
///                      .build();
///
/// Each shard's rows are sliced out of the matrix once and handed to
/// the registry (index::make_index) R times, so any registered backend
/// — built-in or third-party — can serve a shard, and the replicas of
/// a shard are interchangeable by construction.
class ShardedIndexBuilder {
 public:
  ShardedIndexBuilder& matrix(std::shared_ptr<const sparse::Csr> matrix);
  /// Copies (or moves) the matrix into shared ownership.
  ShardedIndexBuilder& matrix(sparse::Csr matrix);
  /// Shard count (default 4).  Validated against the row count at
  /// build() time by the planner.
  ShardedIndexBuilder& shards(int count);
  ShardedIndexBuilder& policy(ShardPolicy policy);
  /// Replicas per shard (default 1).  Validated >= 1 at build() time.
  ShardedIndexBuilder& replicas(int count);
  /// Replica routing policy (default kLeastLoaded).
  ShardedIndexBuilder& routing(RoutingPolicy policy);
  /// Inner backend for every shard without an override (default
  /// "cpu-heap").
  ShardedIndexBuilder& inner_backend(std::string name);
  /// Options handed to every inner factory (e.g. the FPGA design).
  ShardedIndexBuilder& inner_options(const index::IndexOptions& options);
  /// Overrides the backend of one shard — mixed-backend deployments
  /// (an exact straggler next to fpga-sim shards).  Throws at build()
  /// if `shard` is outside [0, shards) or the same shard is overridden
  /// twice (a silent last-wins would hide deployment config bugs).
  ShardedIndexBuilder& shard_backend(int shard, std::string name);
  /// describe().backend of the built index.  Defaults to
  /// "sharded-<inner>" for uniform shards, "sharded" for mixed ones.
  ShardedIndexBuilder& label(std::string label);

  /// Throws std::invalid_argument if no matrix was set, the shard
  /// count does not fit the matrix, the replica count is below 1, an
  /// override is out of range or duplicated, or a backend name is
  /// unknown to the registry.
  [[nodiscard]] std::shared_ptr<ShardedIndex> build() const;

  /// Warm restart: reconstructs a ShardedIndex from a deployment
  /// directory written by persist::save_deployment, replaying the
  /// persisted shard images instead of re-running the encoder.
  /// `options` supplies the non-geometric knobs of the inner factories
  /// (e.g. the gpu-f16 perf model) plus the replica count
  /// (options.replicas loads the same digest-verified images that many
  /// times — the manifest digests guarantee byte-identical replicas);
  /// the design, shard plan and backends come from the manifest.
  /// Throws std::runtime_error naming the offending file on
  /// missing/corrupt/mismatched images.
  [[nodiscard]] static std::shared_ptr<ShardedIndex> from_deployment(
      const std::filesystem::path& dir,
      const index::IndexOptions& options = {});

 private:
  std::shared_ptr<const sparse::Csr> matrix_;
  int shards_ = 4;
  ShardPolicy policy_ = ShardPolicy::kNnzBalanced;
  int replicas_ = 1;
  RoutingPolicy routing_ = RoutingPolicy::kLeastLoaded;
  std::string inner_backend_ = "cpu-heap";
  index::IndexOptions inner_options_;
  std::vector<std::pair<int, std::string>> overrides_;
  std::string label_;
};

}  // namespace topk::shard
