#include "shard/shard_planner.hpp"

#include <algorithm>
#include <stdexcept>

namespace topk::shard {

namespace {

void check_shard_count(std::uint32_t rows, int shards) {
  if (shards <= 0) {
    throw std::invalid_argument("shard planner: shard count must be positive");
  }
  if (static_cast<std::uint64_t>(shards) > rows) {
    throw std::invalid_argument("shard planner: more shards than rows");
  }
}

}  // namespace

std::string to_string(ShardPolicy policy) {
  switch (policy) {
    case ShardPolicy::kEvenRows:
      return "even-rows";
    case ShardPolicy::kNnzBalanced:
      return "nnz-balanced";
  }
  return "unknown";
}

ShardPlan plan_even_rows(std::uint32_t rows, int shards) {
  check_shard_count(rows, shards);
  return core::make_row_partitions(rows, shards);
}

ShardPlan plan_nnz_balanced(const sparse::Csr& matrix, int shards) {
  const std::uint32_t rows = matrix.rows();
  check_shard_count(rows, shards);
  const auto total_nnz = static_cast<std::uint64_t>(matrix.nnz());
  const std::vector<std::uint64_t>& row_ptr = matrix.row_ptr();
  const auto count = static_cast<std::uint32_t>(shards);

  ShardPlan plan;
  plan.reserve(count);
  std::uint32_t begin = 0;
  for (std::uint32_t s = 0; s < count; ++s) {
    std::uint32_t end = rows;
    if (s + 1 < count) {
      // First row whose nnz prefix reaches the ideal boundary, kept
      // inside [begin + 1, rows - remaining shards] so every shard
      // (including the ones still to come) stays non-empty.
      const std::uint64_t target = total_nnz * (s + 1) / count;
      const auto cut = std::lower_bound(row_ptr.begin(), row_ptr.end(), target);
      end = static_cast<std::uint32_t>(cut - row_ptr.begin());
      end = std::clamp(end, begin + 1, rows - (count - 1 - s));
    }
    plan.push_back(core::Partition{begin, end});
    begin = end;
  }
  return plan;
}

double plan_nnz_imbalance(const sparse::Csr& matrix, const ShardPlan& plan) {
  if (plan.empty()) {
    throw std::invalid_argument("plan_nnz_imbalance: empty plan");
  }
  const std::vector<std::uint64_t>& row_ptr = matrix.row_ptr();
  std::uint64_t max_nnz = 0;
  for (const core::Partition& range : plan) {
    if (range.row_end > matrix.rows() || range.row_end < range.row_begin) {
      throw std::invalid_argument("plan_nnz_imbalance: range outside matrix");
    }
    max_nnz = std::max(max_nnz, row_ptr[range.row_end] - row_ptr[range.row_begin]);
  }
  const double ideal =
      static_cast<double>(matrix.nnz()) / static_cast<double>(plan.size());
  return ideal > 0.0 ? static_cast<double>(max_nnz) / ideal : 1.0;
}

ShardPlan ShardPlanner::plan(const sparse::Csr& matrix, int shards) const {
  switch (policy_) {
    case ShardPolicy::kEvenRows:
      return plan_even_rows(matrix.rows(), shards);
    case ShardPolicy::kNnzBalanced:
      return plan_nnz_balanced(matrix, shards);
  }
  throw std::invalid_argument("ShardPlanner: unknown policy");
}

}  // namespace topk::shard
