#include "shard/sharded_index.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <queue>
#include <stdexcept>
#include <utility>

#include "index/registry.hpp"
#include "persist/deployment.hpp"
#include "serve/thread_pool.hpp"

namespace topk::shard {

ShardedIndex::ShardedIndex(std::vector<Shard> shards, std::string backend_label)
    : shards_(std::move(shards)), label_(std::move(backend_label)) {
  if (shards_.empty()) {
    throw std::invalid_argument(label_ + ": no shards");
  }
  std::uint32_t expected_begin = 0;
  bool any_uncapped = false;
  std::int64_t cap_sum = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = shards_[s];
    const std::string tag = label_ + " shard " + std::to_string(s);
    if (!shard.inner) {
      throw std::invalid_argument(tag + ": null inner index");
    }
    if (shard.range.row_end <= shard.range.row_begin) {
      throw std::invalid_argument(tag + ": empty row range");
    }
    if (shard.range.row_begin != expected_begin) {
      throw std::invalid_argument(tag + ": row ranges are not contiguous");
    }
    if (shard.inner->rows() != shard.range.rows()) {
      throw std::invalid_argument(tag + ": inner rows() does not match range");
    }
    if (s == 0) {
      cols_ = shard.inner->cols();
    } else if (shard.inner->cols() != cols_) {
      throw std::invalid_argument(tag + ": column count mismatch");
    }
    const int cap = shard.inner->max_top_k();
    if (cap <= 0) {
      any_uncapped = true;
    } else {
      cap_sum += cap;
    }
    expected_begin = shard.range.row_end;
  }
  rows_ = expected_begin;
  max_top_k_ = any_uncapped
                   ? 0
                   : static_cast<int>(std::min<std::int64_t>(
                         cap_sum, std::numeric_limits<int>::max()));
}

index::QueryResult ShardedIndex::query_shard(std::size_t s,
                                             std::span<const float> x,
                                             int top_k) const {
  const index::SimilarityIndex& inner = *shards_[s].inner;
  const int cap = inner.max_top_k();
  const int shard_top_k = cap > 0 ? std::min(top_k, cap) : top_k;
  index::QueryOptions sequential;
  sequential.threads = 1;  // parallelism lives in the scatter
  return inner.query(x, shard_top_k, sequential);
}

index::QueryResult ShardedIndex::gather(
    std::span<const index::QueryResult> per_shard, int top_k) const {
  index::QueryResult out;
  index::ShardStats gathered;
  gathered.shards = static_cast<int>(shards_.size());
  for (std::size_t s = 0; s < per_shard.size(); ++s) {
    out.stats.rows_scanned += per_shard[s].stats.rows_scanned;
    if (per_shard[s].stats.modelled_seconds > out.stats.modelled_seconds) {
      out.stats.modelled_seconds = per_shard[s].stats.modelled_seconds;
      gathered.slowest_shard = static_cast<int>(s);
    }
    gathered.gathered_candidates += per_shard[s].entries.size();
  }

  // Deterministic k-way heap merge on the repo-wide Top-K order.  Each
  // shard's list is already sorted by (value desc, row asc) and the
  // local -> global remap adds a per-shard constant, so advancing the
  // per-shard heads in canonical order yields the globally sorted cut.
  struct Head {
    std::size_t shard;
    std::size_t pos;
  };
  const auto global_entry = [&](const Head& head) {
    core::TopKEntry entry = per_shard[head.shard].entries[head.pos];
    entry.index += shards_[head.shard].range.row_begin;
    return entry;
  };
  const auto heap_after = [&](const Head& a, const Head& b) {
    return core::topk_entry_before(global_entry(b), global_entry(a));
  };
  std::priority_queue<Head, std::vector<Head>, decltype(heap_after)> heads(
      heap_after);
  for (std::size_t s = 0; s < per_shard.size(); ++s) {
    if (!per_shard[s].entries.empty()) {
      heads.push(Head{s, 0});
    }
  }
  const auto wanted = static_cast<std::size_t>(top_k);
  out.entries.reserve(std::min<std::size_t>(wanted, gathered.gathered_candidates));
  while (!heads.empty() && out.entries.size() < wanted) {
    Head head = heads.top();
    heads.pop();
    out.entries.push_back(global_entry(head));
    if (++head.pos < per_shard[head.shard].entries.size()) {
      heads.push(head);
    }
  }
  out.stats.backend = gathered;
  return out;
}

index::QueryResult ShardedIndex::query(std::span<const float> x, int top_k,
                                       const index::QueryOptions& options) const {
  validate_query(x, top_k);
  const int threads = index::resolve_fanout_threads(options.threads, shards_.size());

  std::vector<index::QueryResult> per_shard(shards_.size());
  if (threads <= 1) {
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      per_shard[s] = query_shard(s, x, top_k);
    }
  } else {
    serve::ThreadPool& pool = serve::shared_pool();
    pool.ensure_workers(threads - 1);
    pool.parallel_for(shards_.size(), threads, [&](std::size_t s) {
      per_shard[s] = query_shard(s, x, top_k);
    });
  }
  return gather(per_shard, top_k);
}

std::vector<index::QueryResult> ShardedIndex::query_batch(
    const std::vector<std::vector<float>>& queries, int top_k,
    const index::QueryOptions& options) const {
  validate_batch(queries, top_k);
  std::vector<index::QueryResult> results(queries.size());
  if (queries.empty()) {
    return results;
  }

  // Scatter the full (query, shard) grid: with more workers than
  // queries the shards of a single query still run in parallel, and
  // dynamic claiming keeps a slow shard from stalling a whole batch.
  const std::size_t width = shards_.size();
  const std::size_t grid = queries.size() * width;
  const int threads = index::resolve_fanout_threads(options.threads, grid);
  std::vector<index::QueryResult> partial(grid);
  const auto run_cell = [&](std::size_t cell) {
    partial[cell] = query_shard(cell % width, queries[cell / width], top_k);
  };
  if (threads <= 1) {
    for (std::size_t cell = 0; cell < grid; ++cell) {
      run_cell(cell);
    }
  } else {
    serve::ThreadPool& pool = serve::shared_pool();
    pool.ensure_workers(threads - 1);
    pool.parallel_for(grid, threads, run_cell);
  }
  for (std::size_t q = 0; q < queries.size(); ++q) {
    results[q] = gather({partial.data() + q * width, width}, top_k);
  }
  return results;
}

std::uint32_t ShardedIndex::rows() const noexcept { return rows_; }

std::uint32_t ShardedIndex::cols() const noexcept { return cols_; }

int ShardedIndex::max_top_k() const noexcept { return max_top_k_; }

index::IndexDescription ShardedIndex::describe() const {
  index::IndexDescription description;
  description.backend = label_;

  // Summarise the inner mix in first-seen order: "cpu-heap x4" or
  // "fpga-sim x3 + cpu-heap x1".
  std::vector<std::pair<std::string, int>> mix;
  bool exact = true;
  std::uint64_t bytes = 0;
  for (const Shard& shard : shards_) {
    const index::IndexDescription inner = shard.inner->describe();
    exact = exact && inner.exact;
    bytes += inner.memory_bytes;
    const auto seen =
        std::find_if(mix.begin(), mix.end(),
                     [&](const auto& entry) { return entry.first == inner.backend; });
    if (seen == mix.end()) {
      mix.emplace_back(inner.backend, 1);
    } else {
      ++seen->second;
    }
  }
  description.detail = std::to_string(shards_.size()) + " row-range shards (";
  for (std::size_t i = 0; i < mix.size(); ++i) {
    if (i > 0) {
      description.detail += " + ";
    }
    description.detail += mix[i].first + " x" + std::to_string(mix[i].second);
  }
  description.detail += "), k-way gather";
  description.exact = exact;
  description.rows = rows_;
  description.cols = cols_;
  description.max_top_k = max_top_k_;
  description.memory_bytes = bytes;
  return description;
}

// ------------------------------------------------------ ShardedIndexBuilder

ShardedIndexBuilder& ShardedIndexBuilder::matrix(
    std::shared_ptr<const sparse::Csr> matrix) {
  matrix_ = std::move(matrix);
  return *this;
}

ShardedIndexBuilder& ShardedIndexBuilder::matrix(sparse::Csr matrix) {
  matrix_ = std::make_shared<const sparse::Csr>(std::move(matrix));
  return *this;
}

ShardedIndexBuilder& ShardedIndexBuilder::shards(int count) {
  shards_ = count;
  return *this;
}

ShardedIndexBuilder& ShardedIndexBuilder::policy(ShardPolicy policy) {
  policy_ = policy;
  return *this;
}

ShardedIndexBuilder& ShardedIndexBuilder::inner_backend(std::string name) {
  inner_backend_ = std::move(name);
  return *this;
}

ShardedIndexBuilder& ShardedIndexBuilder::inner_options(
    const index::IndexOptions& options) {
  inner_options_ = options;
  return *this;
}

ShardedIndexBuilder& ShardedIndexBuilder::shard_backend(int shard,
                                                        std::string name) {
  overrides_.emplace_back(shard, std::move(name));
  return *this;
}

ShardedIndexBuilder& ShardedIndexBuilder::label(std::string label) {
  label_ = std::move(label);
  return *this;
}

std::shared_ptr<ShardedIndex> ShardedIndexBuilder::build() const {
  if (!matrix_) {
    throw std::invalid_argument("ShardedIndexBuilder: no matrix set");
  }
  for (const auto& [shard, name] : overrides_) {
    if (shard < 0 || shard >= shards_) {
      throw std::invalid_argument("ShardedIndexBuilder: shard_backend(" +
                                  std::to_string(shard) +
                                  ") outside [0, " + std::to_string(shards_) +
                                  ")");
    }
  }
  const ShardPlan plan = ShardPlanner(policy_).plan(*matrix_, shards_);

  std::vector<Shard> built;
  built.reserve(plan.size());
  for (std::size_t s = 0; s < plan.size(); ++s) {
    std::string backend = inner_backend_;
    for (const auto& [shard, name] : overrides_) {
      if (static_cast<std::size_t>(shard) == s) {
        backend = name;
      }
    }
    const auto slice = std::make_shared<const sparse::Csr>(
        matrix_->slice_rows(plan[s].row_begin, plan[s].row_end));
    built.push_back(
        Shard{plan[s], index::make_index(backend, slice, inner_options_)});
  }
  std::string label = label_;
  if (label.empty()) {
    label = overrides_.empty() ? "sharded-" + inner_backend_ : "sharded";
  }
  return std::make_shared<ShardedIndex>(std::move(built), std::move(label));
}

std::shared_ptr<ShardedIndex> ShardedIndexBuilder::from_deployment(
    const std::filesystem::path& dir, const index::IndexOptions& options) {
  return persist::load_deployment(dir, options);
}

}  // namespace topk::shard
