#include "shard/sharded_index.hpp"

#include <algorithm>
#include <cstdint>
#include <exception>
#include <limits>
#include <queue>
#include <stdexcept>
#include <utility>

#include "index/registry.hpp"
#include "telemetry/trace.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace topk::shard {

namespace {

/// EWMA smoothing for observed per-call wall time: heavy enough on
/// history to ride out scheduler noise, responsive enough that a
/// replica going slow is visible within a few calls.
constexpr double kEwmaAlpha = 0.2;

/// Every kProbeInterval-th pick on a shard with both healthy and
/// unhealthy replicas routes to an unhealthy one: a transiently failed
/// replica must get a chance to succeed and rejoin, or one blip would
/// drain its traffic forever.  The cost of a probe that still fails is
/// one absorbed failover.
constexpr std::uint64_t kProbeInterval = 16;

// Process-wide aggregates over every ShardedIndex instance; the
// per-replica telemetry::Counter cells in ReplicaState stay the
// fine-grained view (replica_stats()).
telemetry::Counter& cells_metric() {
  static telemetry::Counter& c = telemetry::registry().counter(
      "topk_shard_cells_total", {},
      "(query, shard) cells served by a replica.");
  return c;
}

telemetry::Histogram& cell_seconds_metric() {
  static telemetry::Histogram& h = telemetry::registry().histogram(
      "topk_shard_cell_seconds", telemetry::Histogram::latency_buckets(), {},
      "Wall time of one (query, shard) replica call in seconds.");
  return h;
}

telemetry::Counter& failovers_metric() {
  static telemetry::Counter& c = telemetry::registry().counter(
      "topk_shard_failovers_total", {},
      "Replica call failures (absorbed by failover while another "
      "replica remains).");
  return c;
}

telemetry::Counter& probes_metric() {
  static telemetry::Counter& c = telemetry::registry().counter(
      "topk_shard_probes_total", {},
      "Recovery probes routed to unhealthy replicas.");
  return c;
}

telemetry::Counter& gather_candidates_metric() {
  static telemetry::Counter& c = telemetry::registry().counter(
      "topk_shard_gather_candidates_total", {},
      "Candidates entering the k-way gather merge.");
  return c;
}

telemetry::Gauge& slowest_metric() {
  static telemetry::Gauge& g = telemetry::registry().gauge(
      "topk_shard_slowest_seconds", {},
      "Critical-path shard time of the most recent gather.");
  return g;
}

}  // namespace

std::string to_string(RoutingPolicy policy) {
  switch (policy) {
    case RoutingPolicy::kRoundRobin:
      return "round-robin";
    case RoutingPolicy::kLeastLoaded:
      return "least-loaded";
  }
  return "unknown";
}

ShardedIndex::ShardedIndex(std::vector<Shard> shards, std::string backend_label,
                           RoutingPolicy routing)
    : shards_(std::move(shards)),
      label_(std::move(backend_label)),
      routing_(routing) {
  if (shards_.empty()) {
    throw std::invalid_argument(label_ + ": no shards");
  }
  std::uint32_t expected_begin = 0;
  bool any_uncapped = false;
  std::int64_t cap_sum = 0;
  shard_caps_.reserve(shards_.size());
  state_.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = shards_[s];
    const std::string tag = label_ + " shard " + std::to_string(s);
    if (shard.replicas.empty()) {
      throw std::invalid_argument(tag + ": no replicas");
    }
    if (shard.range.row_end <= shard.range.row_begin) {
      throw std::invalid_argument(tag + ": empty row range");
    }
    if (shard.range.row_begin != expected_begin) {
      throw std::invalid_argument(tag + ": row ranges are not contiguous");
    }
    // Every replica must be interchangeable with the others: same row
    // range, same column space.  The shard's top_k cap is the smallest
    // replica cap, so a clamped request is valid on whichever replica
    // ends up serving it.
    int shard_cap = 0;
    for (std::size_t r = 0; r < shard.replicas.size(); ++r) {
      const auto& replica = shard.replicas[r];
      const std::string replica_tag = tag + " replica " + std::to_string(r);
      if (!replica) {
        throw std::invalid_argument(replica_tag + ": null inner index");
      }
      if (replica->rows() != shard.range.rows()) {
        throw std::invalid_argument(replica_tag +
                                    ": inner rows() does not match range");
      }
      if (s == 0 && r == 0) {
        cols_ = replica->cols();
      } else if (replica->cols() != cols_) {
        throw std::invalid_argument(replica_tag + ": column count mismatch");
      }
      const int cap = replica->max_top_k();
      if (cap > 0) {
        shard_cap = shard_cap == 0 ? cap : std::min(shard_cap, cap);
      }
    }
    shard_caps_.push_back(shard_cap);
    if (shard_cap <= 0) {
      any_uncapped = true;
    } else {
      cap_sum += shard_cap;
    }
    max_replicas_ =
        std::max(max_replicas_, static_cast<int>(shard.replicas.size()));
    std::vector<std::unique_ptr<ReplicaState>> shard_state;
    shard_state.reserve(shard.replicas.size());
    for (std::size_t r = 0; r < shard.replicas.size(); ++r) {
      shard_state.push_back(std::make_unique<ReplicaState>());
    }
    state_.push_back(std::move(shard_state));
    expected_begin = shard.range.row_end;
  }
  rows_ = expected_begin;
  max_top_k_ = any_uncapped
                   ? 0
                   : static_cast<int>(std::min<std::int64_t>(
                         cap_sum, std::numeric_limits<int>::max()));
  round_robin_ = std::vector<std::atomic<std::uint64_t>>(shards_.size());
}

std::vector<index::ReplicaStats> ShardedIndex::replica_stats(
    std::size_t i) const {
  const auto& states = state_.at(i);
  std::vector<index::ReplicaStats> out;
  out.reserve(states.size());
  for (const auto& state : states) {
    index::ReplicaStats stats;
    // relaxed: an advisory snapshot — each counter is independently
    // coherent (atomic), and no cross-field consistency is promised to
    // readers, so there is nothing for a fence to order.
    stats.queries = state->queries.value();
    stats.failures = state->failures.value();
    stats.inflight = state->inflight.load(std::memory_order_relaxed);
    stats.ewma_seconds = state->ewma_seconds.load(std::memory_order_relaxed);
    stats.healthy = state->healthy.load(std::memory_order_relaxed);
    {
      util::MutexLock lock(state->error_mutex);
      stats.last_error = state->last_error;
      stats.last_error_seconds = state->last_error_seconds;
    }
    out.push_back(std::move(stats));
  }
  return out;
}

std::size_t ShardedIndex::pick_replica(std::size_t s) const {
  const auto& states = state_[s];
  const std::size_t count = states.size();
  if (count == 1) {
    return 0;
  }
  // Health-first routing without materialising candidate lists (this
  // runs once per (query, shard) cell on the scatter hot path):
  // replicas whose last call failed are skipped while any healthy one
  // remains, except for a periodic recovery probe — without it a
  // transient one-off failure would exclude a replica forever (nothing
  // else ever retries it once the healthy replicas stop throwing).
  // Health bits may flip between the passes below; a stale pick is
  // harmless (failover corrects it), so the scans fall back to
  // replica 0 rather than synchronise.
  // relaxed health reads throughout: the bit is a routing hint — a
  // stale value mis-routes one cell and failover absorbs it.
  std::size_t healthy_count = 0;
  for (std::size_t r = 0; r < count; ++r) {
    healthy_count += states[r]->healthy.load(std::memory_order_relaxed) ? 1 : 0;
  }
  const std::size_t unhealthy_count = count - healthy_count;
  const auto nth_matching = [&](std::size_t n, bool want_healthy) {
    for (std::size_t r = 0; r < count; ++r) {
      if (states[r]->healthy.load(std::memory_order_relaxed) == want_healthy &&
          n-- == 0) {
        return r;
      }
    }
    return std::size_t{0};  // a health bit flipped mid-scan
  };
  // One ticket per pick for both policies: the round-robin cursor and
  // the probe clock.  relaxed: only atomicity (distinct tickets) is
  // needed — ticket order across threads is immaterial to fairness.
  const std::uint64_t ticket =
      round_robin_[s].fetch_add(1, std::memory_order_relaxed);
  if (healthy_count > 0 && unhealthy_count > 0 &&
      ticket % kProbeInterval == kProbeInterval - 1) {
    probes_metric().inc();
    return nth_matching(
        static_cast<std::size_t>((ticket / kProbeInterval) % unhealthy_count),
        false);
  }
  // All-unhealthy degrades to routing over everything (want_healthy =
  // false then matches every replica).
  const bool want_healthy = healthy_count > 0;
  const std::size_t pool = want_healthy ? healthy_count : count;
  if (routing_ == RoutingPolicy::kRoundRobin) {
    return nth_matching(static_cast<std::size_t>(ticket % pool), want_healthy);
  }
  // Least-loaded: fewest in-flight calls, ties by the lower wall-time
  // EWMA (0 = unmeasured, explored first), then by the lower id — the
  // deterministic tie chain keeps serial traffic reproducible.
  std::size_t best = 0;
  bool found = false;
  int best_inflight = std::numeric_limits<int>::max();
  double best_ewma = std::numeric_limits<double>::max();
  for (std::size_t r = 0; r < count; ++r) {
    if (states[r]->healthy.load(std::memory_order_relaxed) != want_healthy) {
      continue;
    }
    // relaxed: load hints — a pick made on values one call stale costs
    // at most one sub-optimal route, never correctness.
    const int inflight = states[r]->inflight.load(std::memory_order_relaxed);
    const double ewma =
        states[r]->ewma_seconds.load(std::memory_order_relaxed);
    if (!found || inflight < best_inflight ||
        (inflight == best_inflight && ewma < best_ewma)) {
      best = r;
      found = true;
      best_inflight = inflight;
      best_ewma = ewma;
    }
  }
  return best;
}

ShardedIndex::ShardCall ShardedIndex::query_shard(std::size_t s,
                                                  std::span<const float> x,
                                                  int top_k) const {
  const Shard& shard = shards_[s];
  const auto& states = state_[s];
  const std::size_t count = shard.replicas.size();
  const int cap = shard_caps_[s];
  const int shard_top_k = cap > 0 ? std::min(top_k, cap) : top_k;
  index::QueryOptions sequential;
  sequential.threads = 1;  // parallelism lives in the scatter

  const std::size_t start = pick_replica(s);
  std::exception_ptr last_error;
  // Lock-free EWMA update; a lost race just re-blends with the
  // concurrent writer's value.  relaxed CAS: the EWMA is a scalar load
  // hint — the CAS loop already gives per-update atomicity, and no
  // other location's visibility hangs on this write.
  const auto feed_ewma = [](ReplicaState& state, double seconds) {
    double previous = state.ewma_seconds.load(std::memory_order_relaxed);
    double next = 0.0;
    do {
      next = previous == 0.0
                 ? seconds
                 : kEwmaAlpha * seconds + (1.0 - kEwmaAlpha) * previous;
    } while (!state.ewma_seconds.compare_exchange_weak(
        previous, next, std::memory_order_relaxed));
  };
  // A failed call is wall-timed like a successful one and feeds the
  // EWMA before the replica is marked unhealthy: without it the EWMA
  // freezes at the pre-failure latency, and once the replica recovers
  // the least-loaded policy keeps ranking it by stale history (slow
  // failures — timeouts — would even look attractive).
  // relaxed counter updates below (inflight/queries/failures/healthy):
  // each is an independent monotonic or last-writer-wins hint; nothing
  // reads them expecting to observe other memory ordered against them.
  const auto record_failure = [&](ReplicaState& state, double seconds,
                                  const char* message) {
    state.inflight.fetch_sub(1, std::memory_order_relaxed);
    state.failures.inc();
    failovers_metric().inc();
    feed_ewma(state, seconds);
    state.healthy.store(false, std::memory_order_relaxed);
    // Truncate before storing: a replica failing in a tight loop must
    // not grow memory with ever-longer exception payloads.
    std::string error(message);
    if (error.size() > kMaxErrorLength) {
      error.resize(kMaxErrorLength);
    }
    util::MutexLock lock(state.error_mutex);
    state.last_error = std::move(error);
    state.last_error_seconds = telemetry::now_seconds();
  };
  for (std::size_t attempt = 0; attempt < count; ++attempt) {
    const std::size_t r = (start + attempt) % count;
    ReplicaState& state = *states[r];
    // One span per attempt, so a failover leaves a visible failed cell
    // next to the succeeding one in the trace.
    telemetry::SpanTimer span("cell", "shard");
    if (span.active()) {
      span.add_arg(telemetry::arg("shard", static_cast<std::uint64_t>(s)));
      span.add_arg(telemetry::arg("replica", static_cast<std::uint64_t>(r)));
      span.add_arg(
          telemetry::arg("failovers", static_cast<std::uint64_t>(attempt)));
    }
    state.inflight.fetch_add(1, std::memory_order_relaxed);
    util::WallTimer timer;
    try {
      ShardCall call;
      call.result = shard.replicas[r]->query(x, shard_top_k, sequential);
      const double seconds = timer.seconds();
      state.inflight.fetch_sub(1, std::memory_order_relaxed);
      state.queries.inc();
      cells_metric().inc();
      cell_seconds_metric().observe(seconds);
      state.healthy.store(true, std::memory_order_relaxed);
      feed_ewma(state, seconds);
      call.measured_seconds = seconds;
      call.failovers = attempt;
      span.add_arg(telemetry::arg("ok", true));
      return call;
    } catch (const std::exception& error) {
      record_failure(state, timer.seconds(), error.what());
      last_error = std::current_exception();
    } catch (...) {
      record_failure(state, timer.seconds(), "unknown error");
      last_error = std::current_exception();
    }
    span.add_arg(telemetry::arg("ok", false));
  }
  // Every replica failed: the shard is down, surface the last error to
  // the caller (the scatter propagates it out of query/query_batch).
  std::rethrow_exception(last_error);
}

index::QueryResult ShardedIndex::gather(std::span<const ShardCall> per_shard,
                                        int top_k,
                                        const DeltaOverlay* overlay) const {
  telemetry::SpanTimer span("gather", "shard");
  index::QueryResult out;
  index::ShardStats gathered;
  gathered.shards = static_cast<int>(shards_.size());
  gathered.replicas = max_replicas_;
  double slowest_seconds = -1.0;
  for (std::size_t s = 0; s < per_shard.size(); ++s) {
    const index::QueryStats& stats = per_shard[s].result.stats;
    out.stats.rows_scanned += stats.rows_scanned;
    out.stats.modelled_seconds =
        std::max(out.stats.modelled_seconds, stats.modelled_seconds);
    // The load signal: the shard's modelled device time when it
    // reports one, its measured wall time otherwise — so cpu-heap and
    // exact-sort shards drive the slowest-shard signal too instead of
    // leaving it at -1.
    const double shard_seconds = stats.modelled_seconds > 0.0
                                     ? stats.modelled_seconds
                                     : per_shard[s].measured_seconds;
    if (shard_seconds > slowest_seconds) {
      slowest_seconds = shard_seconds;
      gathered.slowest_shard = static_cast<int>(s);
      gathered.slowest_seconds = shard_seconds;
    }
    gathered.failovers += per_shard[s].failovers;
    gathered.gathered_candidates +=
        static_cast<std::uint64_t>(per_shard[s].result.entries.size());
  }
  if (overlay != nullptr) {
    gathered.gathered_candidates +=
        static_cast<std::uint64_t>(overlay->entries.size());
  }
  gather_candidates_metric().add(gathered.gathered_candidates);
  if (slowest_seconds >= 0.0) {
    slowest_metric().set(slowest_seconds);
  }
  if (span.active()) {
    span.add_arg(telemetry::arg("candidates", gathered.gathered_candidates));
    span.add_arg(telemetry::arg("top_k", static_cast<std::int64_t>(top_k)));
    span.add_arg(telemetry::arg("slowest_shard",
                                static_cast<std::int64_t>(gathered.slowest_shard)));
  }

  // Deterministic k-way heap merge on the repo-wide Top-K order.  Each
  // shard's list is already sorted by (value desc, row asc) and the
  // local -> global remap adds a per-shard constant, so advancing the
  // per-shard heads in canonical order yields the globally sorted cut.
  // The delta overlay joins as one extra pre-sorted source (already in
  // global ids); masked global ids are skipped as the shard heads
  // advance, before they can enter the heap.
  struct Head {
    std::size_t shard;
    std::size_t pos;
  };
  const std::size_t delta_source = per_shard.size();
  const auto source_entries = [&](std::size_t source) {
    return source == delta_source
               ? overlay->entries
               : std::span<const core::TopKEntry>(
                     per_shard[source].result.entries);
  };
  const auto global_entry = [&](const Head& head) {
    core::TopKEntry entry = source_entries(head.shard)[head.pos];
    if (head.shard != delta_source) {
      entry.index += shards_[head.shard].range.row_begin;
    }
    return entry;
  };
  const auto heap_after = [&](const Head& a, const Head& b) {
    return core::topk_entry_before(global_entry(b), global_entry(a));
  };
  std::priority_queue<Head, std::vector<Head>, decltype(heap_after)> heads(
      heap_after);
  const auto push_head = [&](Head head) {
    const std::size_t size = source_entries(head.shard).size();
    if (overlay != nullptr && head.shard != delta_source) {
      while (head.pos < size &&
             std::binary_search(overlay->masked.begin(),
                                overlay->masked.end(),
                                global_entry(head).index)) {
        ++head.pos;
      }
    }
    if (head.pos < size) {
      heads.push(head);
    }
  };
  for (std::size_t s = 0; s < per_shard.size(); ++s) {
    push_head(Head{s, 0});
  }
  if (overlay != nullptr) {
    push_head(Head{delta_source, 0});
  }
  const auto wanted = static_cast<std::uint64_t>(top_k);
  out.entries.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(wanted, gathered.gathered_candidates)));
  while (!heads.empty() && out.entries.size() < wanted) {
    Head head = heads.top();
    heads.pop();
    out.entries.push_back(global_entry(head));
    ++head.pos;
    push_head(head);
  }
  out.stats.backend = gathered;
  return out;
}

int ShardedIndex::inflated_top_k(int top_k, std::size_t masked) {
  const std::uint64_t wanted =
      static_cast<std::uint64_t>(top_k) + static_cast<std::uint64_t>(masked);
  return static_cast<int>(std::min<std::uint64_t>(
      wanted,
      static_cast<std::uint64_t>(std::numeric_limits<int>::max())));
}

index::QueryResult ShardedIndex::query(std::span<const float> x, int top_k,
                                       const index::QueryOptions& options) const {
  validate_query(x, top_k);
  const int threads = index::resolve_fanout_threads(options.threads, shards_.size());

  std::vector<ShardCall> per_shard(shards_.size());
  {
    // Pool threads have their own (empty) trace context: capture the
    // caller's id before the fan-out and re-establish it per lambda so
    // every cell span lands on this query's trace.
    const std::uint64_t trace = telemetry::current_trace_id();
    telemetry::SpanTimer span("scatter", "shard");
    if (threads <= 1) {
      for (std::size_t s = 0; s < shards_.size(); ++s) {
        per_shard[s] = query_shard(s, x, top_k);
      }
    } else {
      util::ThreadPool& pool = util::shared_pool();
      pool.ensure_workers(threads - 1);
      pool.parallel_for(shards_.size(), threads, [&, trace](std::size_t s) {
        telemetry::TraceContextScope scope(trace);
        per_shard[s] = query_shard(s, x, top_k);
      });
    }
  }
  return gather(per_shard, top_k);
}

std::vector<index::QueryResult> ShardedIndex::query_batch(
    const std::vector<std::vector<float>>& queries, int top_k,
    const index::QueryOptions& options) const {
  validate_batch(queries, top_k);
  std::vector<index::QueryResult> results(queries.size());
  if (queries.empty()) {
    return results;
  }

  // Scatter the full (query, shard) grid: with more workers than
  // queries the shards of a single query still run in parallel, and
  // dynamic claiming keeps a slow shard from stalling a whole batch.
  const std::size_t width = shards_.size();
  const std::size_t grid = queries.size() * width;
  const int threads = index::resolve_fanout_threads(options.threads, grid);
  std::vector<ShardCall> partial(grid);
  const std::uint64_t trace = telemetry::current_trace_id();
  const auto run_cell = [&, trace](std::size_t cell) {
    telemetry::TraceContextScope scope(trace);
    partial[cell] = query_shard(cell % width, queries[cell / width], top_k);
  };
  {
    telemetry::SpanTimer span("scatter", "shard");
    if (span.active()) {
      span.add_arg(telemetry::arg("grid", static_cast<std::uint64_t>(grid)));
    }
    if (threads <= 1) {
      for (std::size_t cell = 0; cell < grid; ++cell) {
        run_cell(cell);
      }
    } else {
      util::ThreadPool& pool = util::shared_pool();
      pool.ensure_workers(threads - 1);
      pool.parallel_for(grid, threads, run_cell);
    }
  }
  for (std::size_t q = 0; q < queries.size(); ++q) {
    results[q] = gather({partial.data() + q * width, width}, top_k);
  }
  return results;
}

index::QueryResult ShardedIndex::query_with_delta(
    std::span<const float> x, int top_k, const DeltaOverlay& overlay,
    const index::QueryOptions& options) const {
  validate_query(x, top_k);
  // Each shard is over-asked by the mask size: at most masked.size()
  // of its top entries can be skipped at the merge, so >= top_k live
  // candidates survive per shard and the global cut is exact.
  const int shard_k = inflated_top_k(top_k, overlay.masked.size());
  const int threads =
      index::resolve_fanout_threads(options.threads, shards_.size());
  std::vector<ShardCall> per_shard(shards_.size());
  {
    const std::uint64_t trace = telemetry::current_trace_id();
    telemetry::SpanTimer span("scatter", "shard");
    if (threads <= 1) {
      for (std::size_t s = 0; s < shards_.size(); ++s) {
        per_shard[s] = query_shard(s, x, shard_k);
      }
    } else {
      util::ThreadPool& pool = util::shared_pool();
      pool.ensure_workers(threads - 1);
      pool.parallel_for(shards_.size(), threads, [&, trace](std::size_t s) {
        telemetry::TraceContextScope scope(trace);
        per_shard[s] = query_shard(s, x, shard_k);
      });
    }
  }
  return gather(per_shard, top_k, &overlay);
}

std::vector<index::QueryResult> ShardedIndex::query_batch_with_delta(
    const std::vector<std::vector<float>>& queries, int top_k,
    std::span<const DeltaOverlay> overlays,
    const index::QueryOptions& options) const {
  validate_batch(queries, top_k);
  if (overlays.size() != queries.size()) {
    throw std::invalid_argument(label_ + ": " + std::to_string(queries.size()) +
                                " queries but " +
                                std::to_string(overlays.size()) +
                                " delta overlays");
  }
  std::vector<index::QueryResult> results(queries.size());
  if (queries.empty()) {
    return results;
  }
  const std::size_t width = shards_.size();
  const std::size_t grid = queries.size() * width;
  const int threads = index::resolve_fanout_threads(options.threads, grid);
  std::vector<ShardCall> partial(grid);
  const std::uint64_t trace = telemetry::current_trace_id();
  const auto run_cell = [&, trace](std::size_t cell) {
    telemetry::TraceContextScope scope(trace);
    const std::size_t q = cell / width;
    partial[cell] = query_shard(
        cell % width, queries[q],
        inflated_top_k(top_k, overlays[q].masked.size()));
  };
  {
    telemetry::SpanTimer span("scatter", "shard");
    if (span.active()) {
      span.add_arg(telemetry::arg("grid", static_cast<std::uint64_t>(grid)));
    }
    if (threads <= 1) {
      for (std::size_t cell = 0; cell < grid; ++cell) {
        run_cell(cell);
      }
    } else {
      util::ThreadPool& pool = util::shared_pool();
      pool.ensure_workers(threads - 1);
      pool.parallel_for(grid, threads, run_cell);
    }
  }
  for (std::size_t q = 0; q < queries.size(); ++q) {
    results[q] =
        gather({partial.data() + q * width, width}, top_k, &overlays[q]);
  }
  return results;
}

std::uint32_t ShardedIndex::rows() const noexcept { return rows_; }

std::uint32_t ShardedIndex::cols() const noexcept { return cols_; }

int ShardedIndex::max_top_k() const noexcept { return max_top_k_; }

index::IndexDescription ShardedIndex::describe() const {
  index::IndexDescription description;
  description.backend = label_;

  // Summarise the inner mix in first-seen order: "cpu-heap x4" or
  // "fpga-sim x3 + cpu-heap x1"; the mix names shards, not replicas.
  // The footprint dedupes storage shared between replicas: the builder
  // and the deployment loader hand every CSR-backed replica of a shard
  // the same slice, so counting each would overstate resident bytes
  // R-fold, while fpga-sim replicas each own a device image and count
  // individually (unknown backends count per replica — an upper
  // bound).
  const auto storage_key =
      [](const index::SimilarityIndex& replica) -> const void* {
    if (const auto* heap = dynamic_cast<const index::CpuHeapIndex*>(&replica)) {
      return &heap->matrix();
    }
    if (const auto* sort =
            dynamic_cast<const index::ExactSortIndex*>(&replica)) {
      return &sort->matrix();
    }
    if (const auto* gpu = dynamic_cast<const index::GpuModelIndex*>(&replica)) {
      return &gpu->matrix();
    }
    return &replica;
  };
  std::vector<std::pair<std::string, int>> mix;
  std::vector<const void*> counted_storage;
  bool exact = true;
  std::uint64_t bytes = 0;
  for (const Shard& shard : shards_) {
    const index::IndexDescription primary = shard.primary().describe();
    const auto seen =
        std::find_if(mix.begin(), mix.end(),
                     [&](const auto& entry) { return entry.first == primary.backend; });
    if (seen == mix.end()) {
      mix.emplace_back(primary.backend, 1);
    } else {
      ++seen->second;
    }
    for (const auto& replica : shard.replicas) {
      const index::IndexDescription inner = replica->describe();
      exact = exact && inner.exact;
      const void* key = storage_key(*replica);
      if (std::find(counted_storage.begin(), counted_storage.end(), key) ==
          counted_storage.end()) {
        counted_storage.push_back(key);
        bytes += inner.memory_bytes;
      }
    }
  }
  description.detail = std::to_string(shards_.size()) + " row-range shards (";
  for (std::size_t i = 0; i < mix.size(); ++i) {
    if (i > 0) {
      description.detail += " + ";
    }
    description.detail += mix[i].first + " x" + std::to_string(mix[i].second);
  }
  description.detail += ")";
  if (max_replicas_ > 1) {
    description.detail += " x" + std::to_string(max_replicas_) +
                          " replicas, " + to_string(routing_) + " routing";
  }
  description.detail += ", k-way gather";
  description.exact = exact;
  description.rows = rows_;
  description.cols = cols_;
  description.max_top_k = max_top_k_;
  description.memory_bytes = bytes;
  return description;
}

// ------------------------------------------------------ ShardedIndexBuilder

ShardedIndexBuilder& ShardedIndexBuilder::matrix(
    std::shared_ptr<const sparse::Csr> matrix) {
  matrix_ = std::move(matrix);
  return *this;
}

ShardedIndexBuilder& ShardedIndexBuilder::matrix(sparse::Csr matrix) {
  matrix_ = std::make_shared<const sparse::Csr>(std::move(matrix));
  return *this;
}

ShardedIndexBuilder& ShardedIndexBuilder::shards(int count) {
  shards_ = count;
  return *this;
}

ShardedIndexBuilder& ShardedIndexBuilder::policy(ShardPolicy policy) {
  policy_ = policy;
  return *this;
}

ShardedIndexBuilder& ShardedIndexBuilder::replicas(int count) {
  replicas_ = count;
  return *this;
}

ShardedIndexBuilder& ShardedIndexBuilder::routing(RoutingPolicy policy) {
  routing_ = policy;
  return *this;
}

ShardedIndexBuilder& ShardedIndexBuilder::inner_backend(std::string name) {
  inner_backend_ = std::move(name);
  return *this;
}

ShardedIndexBuilder& ShardedIndexBuilder::inner_options(
    const index::IndexOptions& options) {
  inner_options_ = options;
  return *this;
}

ShardedIndexBuilder& ShardedIndexBuilder::shard_backend(int shard,
                                                        std::string name) {
  overrides_.emplace_back(shard, std::move(name));
  return *this;
}

ShardedIndexBuilder& ShardedIndexBuilder::label(std::string label) {
  label_ = std::move(label);
  return *this;
}

std::shared_ptr<ShardedIndex> ShardedIndexBuilder::build() const {
  if (!matrix_) {
    throw std::invalid_argument("ShardedIndexBuilder: no matrix set");
  }
  if (replicas_ < 1) {
    throw std::invalid_argument("ShardedIndexBuilder: replicas(" +
                                std::to_string(replicas_) +
                                ") must be at least 1");
  }
  for (std::size_t i = 0; i < overrides_.size(); ++i) {
    const auto& [shard, name] = overrides_[i];
    if (shard < 0 || shard >= shards_) {
      throw std::invalid_argument("ShardedIndexBuilder: shard_backend(" +
                                  std::to_string(shard) +
                                  ") outside [0, " + std::to_string(shards_) +
                                  ")");
    }
    // A duplicate override is a config bug (e.g. a deployment script
    // editing the wrong line) — silent last-wins would hide it.
    for (std::size_t j = i + 1; j < overrides_.size(); ++j) {
      if (overrides_[j].first == shard) {
        throw std::invalid_argument(
            "ShardedIndexBuilder: duplicate shard_backend override for shard " +
            std::to_string(shard) + " ('" + name + "' and '" +
            overrides_[j].second + "')");
      }
    }
  }
  const ShardPlan plan = ShardPlanner(policy_).plan(*matrix_, shards_);

  std::vector<Shard> built;
  built.reserve(plan.size());
  for (std::size_t s = 0; s < plan.size(); ++s) {
    std::string backend = inner_backend_;
    for (const auto& [shard, name] : overrides_) {
      if (static_cast<std::size_t>(shard) == s) {
        backend = name;
      }
    }
    // One slice shared by every replica of the shard; each replica is
    // its own registry-built index over it (for CSR-backed backends
    // the replicas share the slice's memory, for fpga-sim each encodes
    // its own — deterministic, hence byte-identical — device image).
    const auto slice = std::make_shared<const sparse::Csr>(
        matrix_->slice_rows(plan[s].row_begin, plan[s].row_end));
    std::vector<std::shared_ptr<const index::SimilarityIndex>> replicas;
    replicas.reserve(static_cast<std::size_t>(replicas_));
    for (int r = 0; r < replicas_; ++r) {
      replicas.push_back(index::make_index(backend, slice, inner_options_));
    }
    built.push_back(Shard{plan[s], std::move(replicas)});
  }
  std::string label = label_;
  if (label.empty()) {
    label = overrides_.empty() ? "sharded-" + inner_backend_ : "sharded";
  }
  return std::make_shared<ShardedIndex>(std::move(built), std::move(label),
                                        routing_);
}

}  // namespace topk::shard
