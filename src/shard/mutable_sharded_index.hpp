// Mutable sharded tier: the LSM composition of a sealed ShardedIndex
// base with an in-memory index::DeltaIndex absorbing mutations.
//
// Queries scan the delta (exact, brute-force) and hand the scan to the
// sealed base as a ShardedIndex::DeltaOverlay: delta candidates join
// the deterministic k-way gather as one more source, and tombstoned /
// superseded / inherited base rows are masked before the Top-K cut —
// so every post-mutation result is bit-identical to an exact index
// built cold from the logically-equivalent matrix (the live rows in
// ascending id order), at any replica count and thread count.
//
// Compaction (persist::Compactor) folds base + delta into a fresh
// generation-stamped deployment image off the serving path, warm-loads
// it, and swaps it in through the three-call protocol here
// (begin_compaction / finish_compaction / abort_compaction).  Serving
// is never blocked: queries copy the current State under a brief
// shared lock and keep the old generation alive through shared_ptr
// ownership until their calls return; the only exclusive sections are
// the delta snapshot copy and the pointer swap itself.  Mutations that
// arrive while a fold runs carry sequence numbers above the snapshot
// watermark and are re-seeded into the fresh delta at swap time, so
// nothing is lost and nothing is applied twice.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "index/delta_index.hpp"
#include "index/mutable_index.hpp"
#include "shard/shard_planner.hpp"
#include "shard/sharded_index.hpp"
#include "sparse/csr.hpp"
#include "util/sync.hpp"

namespace topk::shard {

/// Everything needed to cold-rebuild the sealed tier over a folded
/// matrix: compaction re-runs the original construction recipe, so a
/// generation-N index has the same shard policy, inner backend,
/// replica count and routing as generation 0.
struct RebuildRecipe {
  int shards = 4;
  ShardPolicy policy = ShardPolicy::kNnzBalanced;
  int replicas = 1;
  RoutingPolicy routing = RoutingPolicy::kLeastLoaded;
  std::string inner_backend = "cpu-heap";
  index::IndexOptions inner_options;
  /// Label of the sealed base ("sharded-<inner>") — also the manifest
  /// label of every generation's deployment image.
  std::string label = "sharded-cpu-heap";
};

/// Knobs of the mutable tier.
struct MutableConfig {
  /// Live delta rows beyond which inserts throw (backpressure towards
  /// compaction); 0 = unbounded.
  std::uint64_t delta_capacity = 0;
  /// Mutations since the last seal at which Compactor::maybe_compact()
  /// fires; 0 = compact only on explicit request.
  std::uint64_t compact_threshold = 0;
  /// describe().backend of the mutable tier, e.g.
  /// "mutable-sharded-cpu-heap".
  std::string label = "mutable-sharded";
};

/// The LSM-shaped mutable index over a sealed sharded base.
/// Thread-safe for any mix of queries, mutations and one concurrent
/// compaction.
class MutableShardedIndex final : public index::MutableIndex {
 public:
  /// Wraps a freshly built (generation 0) or warm-loaded (generation =
  /// the manifest's) sealed base.  `base_matrix` is the host CSR the
  /// base was built from — compaction folds against it; it may be null
  /// (e.g. an fpga-sim warm load, whose quantised device image cannot
  /// reproduce the exact host values), in which case begin_compaction
  /// throws.  `inherited` seeds the delta's inherited-tombstone set
  /// (sorted ids a previous generation folded away as empty rows).
  MutableShardedIndex(std::shared_ptr<const ShardedIndex> base,
                      std::shared_ptr<const sparse::Csr> base_matrix,
                      RebuildRecipe recipe, MutableConfig config,
                      std::uint64_t generation = 0,
                      std::vector<std::uint32_t> inherited = {});

  // ---- MutableIndex surface ----

  std::uint32_t insert_row(std::span<const std::uint32_t> columns,
                           std::span<const float> values) override;
  void insert_row(std::uint32_t row, std::span<const std::uint32_t> columns,
                  std::span<const float> values) override;
  bool delete_row(std::uint32_t row) override;
  [[nodiscard]] std::uint64_t live_rows() const override;
  [[nodiscard]] index::DeltaStats delta_stats() const override;

  // ---- SimilarityIndex surface ----

  [[nodiscard]] index::QueryResult query(
      std::span<const float> x, int top_k,
      const index::QueryOptions& options = {}) const override;
  [[nodiscard]] std::vector<index::QueryResult> query_batch(
      const std::vector<std::vector<float>>& queries, int top_k,
      const index::QueryOptions& options = {}) const override;
  /// Id high-water mark: base rows + delta appends (deleted ids stay
  /// counted; see live_rows()).
  [[nodiscard]] std::uint32_t rows() const noexcept override;
  [[nodiscard]] std::uint32_t cols() const noexcept override;
  [[nodiscard]] index::IndexDescription describe() const override;
  [[nodiscard]] int max_top_k() const noexcept override;

  /// The sealed base currently serving (the generation a concurrent
  /// compaction would replace).  Mainly for stats/tests; queries hold
  /// their own reference, so this pointer may be superseded at any
  /// time.
  [[nodiscard]] std::shared_ptr<const ShardedIndex> base() const;
  [[nodiscard]] std::shared_ptr<const sparse::Csr> base_matrix() const;
  [[nodiscard]] const RebuildRecipe& recipe() const noexcept {
    return recipe_;
  }
  [[nodiscard]] const MutableConfig& config() const noexcept {
    return config_;
  }

  // ---- compaction protocol (driven by persist::Compactor) ----

  /// Consistent fold input handed to the compactor.
  struct CompactionTicket {
    std::uint64_t generation = 0;  ///< the generation being replaced
    index::DeltaIndex::Snapshot snapshot;
    std::shared_ptr<const sparse::Csr> base_matrix;
    RebuildRecipe recipe;
    /// Duration of the delta snapshot copy — the only pause mutations
    /// observe during a compaction.
    double snapshot_seconds = 0.0;
  };

  /// The folded (logically-equivalent) matrix plus the ids it retired:
  /// every deleted id < matrix.rows(), folded away as an empty row and
  /// masked forever via the next delta's inherited set.
  struct FoldedMatrix {
    sparse::Csr matrix;
    std::vector<std::uint32_t> retired;  ///< sorted
  };

  /// Claims the single-compactor guard and snapshots the delta.
  /// Returns std::nullopt — without claiming the guard — when the
  /// delta has absorbed no mutation since the last seal (the
  /// empty-delta no-op).  Throws std::logic_error if a compaction is
  /// already in flight and std::runtime_error when no host base matrix
  /// is available to fold against.
  [[nodiscard]] std::optional<CompactionTicket> begin_compaction();

  /// Folds the ticket's base + delta into the full matrix of the next
  /// generation: rows [0, snapshot.next_id), each the latest live
  /// version (delta version if present, else the base row), deleted
  /// ids as empty rows recorded in `retired`.  Pure function of the
  /// ticket — runs off every lock.
  [[nodiscard]] static FoldedMatrix fold(const CompactionTicket& ticket);

  /// Atomically installs the next generation: the warm-loaded sealed
  /// base over the folded matrix, and a fresh delta seeded with
  /// `retired` as inherited tombstones plus every mutation that
  /// arrived after the ticket's snapshot (seq > snapshot.seq).
  /// Releases the compaction guard.  Returns the duration of the
  /// exclusive swap section — the pause concurrent queries/mutations
  /// can observe at swap time.
  double finish_compaction(const CompactionTicket& ticket,
                           std::shared_ptr<const ShardedIndex> next_base,
                           std::shared_ptr<const sparse::Csr> next_matrix,
                           std::vector<std::uint32_t> retired);

  /// Releases the compaction guard after a failed fold/build/save/load
  /// — the current generation keeps serving, nothing was swapped.
  void abort_compaction() noexcept;

 private:
  /// One immutable serving generation; queries copy the shared_ptr
  /// under a brief shared lock and the old generation drains naturally
  /// when the last in-flight query releases its copy.
  struct State {
    std::shared_ptr<const ShardedIndex> base;
    std::shared_ptr<const sparse::Csr> base_matrix;  ///< may be null
    std::shared_ptr<index::DeltaIndex> delta;
    std::uint64_t generation = 0;
  };

  [[nodiscard]] std::shared_ptr<const State> current_state() const;
  [[nodiscard]] index::QueryResult annotate(
      index::QueryResult result, const State& state,
      const index::DeltaIndex::Scan& scan) const;

  RebuildRecipe recipe_;
  MutableConfig config_;

  mutable util::SharedMutex mutex_;
  std::shared_ptr<const State> state_ TOPK_GUARDED_BY(mutex_);
  /// Single-compactor guard (begin_compaction claims, finish/abort
  /// release).
  bool compacting_ TOPK_GUARDED_BY(mutex_) = false;
};

}  // namespace topk::shard
