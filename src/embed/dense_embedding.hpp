// Dense embedding corpus generation.
//
// The paper sparsifies the GloVe word-embedding corpus [26] for its
// real-data experiments.  GloVe is not downloadable offline, so this
// module synthesises a GloVe-like corpus (DESIGN.md substitution):
// rows are drawn around a set of cluster centroids (word embeddings
// cluster by topic), with per-component variances decaying as a power
// law (the leading principal components of GloVe carry most of the
// energy).  The result exhibits the two properties the experiments
// rely on: meaningful nearest-neighbour structure and realistic
// coefficient-magnitude decay under sparse coding.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace topk::embed {

/// Row-major dense matrix of embeddings.
class DenseEmbeddings {
 public:
  DenseEmbeddings() = default;

  /// Throws std::invalid_argument for zero dimensions.
  DenseEmbeddings(std::uint32_t rows, std::uint32_t dim);

  [[nodiscard]] std::uint32_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::uint32_t dim() const noexcept { return dim_; }

  [[nodiscard]] std::span<float> row(std::uint32_t r);
  [[nodiscard]] std::span<const float> row(std::uint32_t r) const;

  /// L2-normalises every row (zero rows are left untouched).
  void l2_normalize_rows();

 private:
  std::uint32_t rows_ = 0;
  std::uint32_t dim_ = 0;
  std::vector<float> data_;
};

/// Parameters of the synthetic GloVe-like corpus.
struct CorpusConfig {
  std::uint32_t rows = 100'000;
  std::uint32_t dim = 300;       ///< GloVe's standard dimensionality
  std::uint32_t clusters = 64;   ///< topic clusters
  double cluster_spread = 0.35;  ///< within-cluster noise scale
  double power_law_exponent = 0.5;  ///< component variance ~ (j+1)^-exp
  std::uint64_t seed = 7;
};

/// Validates a config; throws std::invalid_argument on zero sizes,
/// clusters > rows, or non-positive spread.
void validate(const CorpusConfig& config);

/// Generates the corpus; rows are L2-normalised.
[[nodiscard]] DenseEmbeddings generate_glove_like(const CorpusConfig& config);

}  // namespace topk::embed
