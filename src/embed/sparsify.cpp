#include "embed/sparsify.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace topk::embed {

Dictionary::Dictionary(std::uint32_t atoms, std::uint32_t dim, std::uint64_t seed)
    : embeddings_(atoms, dim) {
  util::Xoshiro256 rng(seed);
  for (std::uint32_t a = 0; a < atoms; ++a) {
    auto row = embeddings_.row(a);
    for (float& v : row) {
      // Box-Muller keeps atoms isotropic.
      const double u1 = rng.uniform();
      const double u2 = rng.uniform();
      v = static_cast<float>(std::sqrt(-2.0 * std::log(1.0 - u1)) *
                             std::cos(6.283185307179586 * u2));
    }
  }
  embeddings_.l2_normalize_rows();
}

void validate(const SparsifyConfig& config, const Dictionary& dictionary) {
  if (config.target_nnz == 0) {
    throw std::invalid_argument("SparsifyConfig: target_nnz must be positive");
  }
  if (config.target_nnz > dictionary.atoms()) {
    throw std::invalid_argument("SparsifyConfig: target_nnz exceeds dictionary");
  }
}

namespace {

double dot(std::span<const float> a, std::span<const float> b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return sum;
}

std::vector<std::pair<std::uint32_t, float>> code_matching_pursuit(
    std::span<const float> dense, const Dictionary& dictionary,
    std::uint32_t target_nnz) {
  std::vector<double> residual(dense.begin(), dense.end());
  std::vector<double> coefficients(dictionary.atoms(), 0.0);

  for (std::uint32_t step = 0; step < target_nnz; ++step) {
    // Pick the atom with the largest positive projection onto the
    // residual (non-negative coding).
    std::uint32_t best_atom = dictionary.atoms();
    double best_projection = 0.0;
    for (std::uint32_t a = 0; a < dictionary.atoms(); ++a) {
      const auto atom = dictionary.atom(a);
      double projection = 0.0;
      for (std::size_t i = 0; i < atom.size(); ++i) {
        projection += static_cast<double>(atom[i]) * residual[i];
      }
      if (projection > best_projection) {
        best_projection = projection;
        best_atom = a;
      }
    }
    if (best_atom == dictionary.atoms() || best_projection <= 1e-12) {
      break;  // residual has no positive component left
    }
    coefficients[best_atom] += best_projection;
    const auto atom = dictionary.atom(best_atom);
    for (std::size_t i = 0; i < atom.size(); ++i) {
      residual[i] -= best_projection * static_cast<double>(atom[i]);
    }
  }

  std::vector<std::pair<std::uint32_t, float>> code;
  for (std::uint32_t a = 0; a < dictionary.atoms(); ++a) {
    if (coefficients[a] > 0.0) {
      code.emplace_back(a, static_cast<float>(coefficients[a]));
    }
  }
  return code;
}

std::vector<std::pair<std::uint32_t, float>> code_top_magnitude(
    std::span<const float> dense, const Dictionary& dictionary,
    std::uint32_t target_nnz) {
  std::vector<std::pair<std::uint32_t, float>> projections;
  projections.reserve(dictionary.atoms());
  for (std::uint32_t a = 0; a < dictionary.atoms(); ++a) {
    const double projection = dot(dictionary.atom(a), dense);
    if (projection > 0.0) {
      projections.emplace_back(a, static_cast<float>(projection));
    }
  }
  const std::size_t keep =
      std::min<std::size_t>(target_nnz, projections.size());
  std::partial_sort(projections.begin(),
                    projections.begin() + static_cast<std::ptrdiff_t>(keep),
                    projections.end(), [](const auto& x, const auto& y) {
                      return x.second > y.second;
                    });
  projections.resize(keep);
  std::sort(projections.begin(), projections.end());
  return projections;
}

}  // namespace

std::vector<std::pair<std::uint32_t, float>> sparse_code(
    std::span<const float> dense, const Dictionary& dictionary,
    const SparsifyConfig& config) {
  if (dense.size() != dictionary.dim()) {
    throw std::invalid_argument("sparse_code: dimension mismatch");
  }
  validate(config, dictionary);
  if (config.use_matching_pursuit) {
    return code_matching_pursuit(dense, dictionary, config.target_nnz);
  }
  return code_top_magnitude(dense, dictionary, config.target_nnz);
}

sparse::Csr sparsify_corpus(const DenseEmbeddings& corpus,
                            const Dictionary& dictionary,
                            const SparsifyConfig& config) {
  if (corpus.dim() != dictionary.dim()) {
    throw std::invalid_argument("sparsify_corpus: dimension mismatch");
  }
  validate(config, dictionary);

  sparse::Coo coo(corpus.rows(), dictionary.atoms());
  coo.reserve(static_cast<std::size_t>(corpus.rows()) * config.target_nnz);
  for (std::uint32_t r = 0; r < corpus.rows(); ++r) {
    const auto code = sparse_code(corpus.row(r), dictionary, config);
    for (const auto& [atom, coefficient] : code) {
      coo.push_back(r, atom, coefficient);
    }
  }
  sparse::Csr matrix = sparse::Csr::from_coo(std::move(coo));
  matrix.l2_normalize_rows();
  return matrix;
}

}  // namespace topk::embed
