#include "embed/dense_embedding.hpp"

#include <cmath>
#include <stdexcept>

namespace topk::embed {

namespace {

/// Standard Gaussian via Box-Muller.
double gaussian(topk::util::Xoshiro256& rng) {
  const double u1 = rng.uniform();
  const double u2 = rng.uniform();
  return std::sqrt(-2.0 * std::log(1.0 - u1)) *
         std::cos(6.283185307179586 * u2);
}

}  // namespace

DenseEmbeddings::DenseEmbeddings(std::uint32_t rows, std::uint32_t dim)
    : rows_(rows), dim_(dim),
      data_(static_cast<std::size_t>(rows) * dim, 0.0f) {
  if (rows == 0 || dim == 0) {
    throw std::invalid_argument("DenseEmbeddings: dimensions must be positive");
  }
}

std::span<float> DenseEmbeddings::row(std::uint32_t r) {
  if (r >= rows_) {
    throw std::out_of_range("DenseEmbeddings::row: out of range");
  }
  return std::span<float>(data_).subspan(static_cast<std::size_t>(r) * dim_, dim_);
}

std::span<const float> DenseEmbeddings::row(std::uint32_t r) const {
  if (r >= rows_) {
    throw std::out_of_range("DenseEmbeddings::row: out of range");
  }
  return std::span<const float>(data_).subspan(
      static_cast<std::size_t>(r) * dim_, dim_);
}

void DenseEmbeddings::l2_normalize_rows() {
  for (std::uint32_t r = 0; r < rows_; ++r) {
    auto values = row(r);
    double sum_sq = 0.0;
    for (const float v : values) {
      sum_sq += static_cast<double>(v) * static_cast<double>(v);
    }
    if (sum_sq <= 0.0) {
      continue;
    }
    const auto inv_norm = static_cast<float>(1.0 / std::sqrt(sum_sq));
    for (float& v : values) {
      v *= inv_norm;
    }
  }
}

void validate(const CorpusConfig& config) {
  if (config.rows == 0 || config.dim == 0) {
    throw std::invalid_argument("CorpusConfig: dimensions must be positive");
  }
  if (config.clusters == 0 || config.clusters > config.rows) {
    throw std::invalid_argument("CorpusConfig: clusters must be in [1, rows]");
  }
  if (config.cluster_spread <= 0.0) {
    throw std::invalid_argument("CorpusConfig: spread must be positive");
  }
  if (config.power_law_exponent < 0.0) {
    throw std::invalid_argument("CorpusConfig: negative power-law exponent");
  }
}

DenseEmbeddings generate_glove_like(const CorpusConfig& config) {
  validate(config);
  util::Xoshiro256 rng(config.seed);

  // Per-component scales: leading components carry most of the energy.
  std::vector<double> scale(config.dim);
  for (std::uint32_t j = 0; j < config.dim; ++j) {
    scale[j] = std::pow(static_cast<double>(j) + 1.0, -config.power_law_exponent);
  }

  // Cluster centroids.
  DenseEmbeddings centroids(config.clusters, config.dim);
  for (std::uint32_t c = 0; c < config.clusters; ++c) {
    auto row = centroids.row(c);
    for (std::uint32_t j = 0; j < config.dim; ++j) {
      row[j] = static_cast<float>(gaussian(rng) * scale[j]);
    }
  }

  DenseEmbeddings corpus(config.rows, config.dim);
  for (std::uint32_t r = 0; r < config.rows; ++r) {
    const auto c = static_cast<std::uint32_t>(rng.bounded(config.clusters));
    const auto centroid = centroids.row(c);
    auto row = corpus.row(r);
    for (std::uint32_t j = 0; j < config.dim; ++j) {
      row[j] = centroid[j] + static_cast<float>(gaussian(rng) * scale[j] *
                                                config.cluster_spread);
    }
  }
  corpus.l2_normalize_rows();
  return corpus;
}

}  // namespace topk::embed
