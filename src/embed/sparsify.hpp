// Sparse coding of dense embeddings.
//
// The paper sparsifies GloVe with the online dictionary-learning
// technique of Mairal et al. [21], producing non-negative sparse codes
// of dimension M in {512, 1024} with ~10-25 non-zeros.  This module
// implements the encoding side: a fixed random dictionary of M
// L2-normalised atoms and two sparse coders —
//
//  * matching pursuit (greedy residual fitting, the classic
//    approximation of OMP [20]); and
//  * top-magnitude projection (one-shot: largest projections kept) —
//
// both constrained to non-negative coefficients, matching the unsigned
// fixed-point datapath.  The output is a CSR matrix of sparse
// embeddings ready for the accelerator.
#pragma once

#include <cstdint>

#include "embed/dense_embedding.hpp"
#include "sparse/csr.hpp"

namespace topk::embed {

/// A dictionary of `atoms` L2-normalised random directions in R^dim
/// (row-major, atoms x dim).
class Dictionary {
 public:
  /// Throws std::invalid_argument for zero sizes.
  Dictionary(std::uint32_t atoms, std::uint32_t dim, std::uint64_t seed);

  [[nodiscard]] std::uint32_t atoms() const noexcept { return embeddings_.rows(); }
  [[nodiscard]] std::uint32_t dim() const noexcept { return embeddings_.dim(); }

  [[nodiscard]] std::span<const float> atom(std::uint32_t a) const {
    return embeddings_.row(a);
  }

 private:
  DenseEmbeddings embeddings_;
};

/// Sparse-coding options.
///
/// The projection coder (default) keeps the largest positive
/// dictionary projections; empirically it preserves pairwise cosine
/// structure well — which is what Top-K similarity search needs.
/// Matching pursuit reconstructs each vector more accurately but its
/// greedy atom choices decorrelate for nearby inputs once target_nnz
/// is a sizeable fraction of the dimension, degrading neighbourhood
/// preservation; prefer it only for reconstruction-oriented uses.
struct SparsifyConfig {
  std::uint32_t target_nnz = 16;  ///< non-zeros per sparse embedding
  bool use_matching_pursuit = false;  ///< true = greedy MP (see above)
};

/// Validates options; throws std::invalid_argument for zero target_nnz
/// or target_nnz exceeding the dictionary size.
void validate(const SparsifyConfig& config, const Dictionary& dictionary);

/// Encodes one dense vector into non-negative sparse coefficients over
/// the dictionary; returns (atom, coefficient) pairs sorted by atom.
[[nodiscard]] std::vector<std::pair<std::uint32_t, float>> sparse_code(
    std::span<const float> dense, const Dictionary& dictionary,
    const SparsifyConfig& config);

/// Sparsifies a whole corpus into an N x M CSR matrix (M = dictionary
/// atoms), rows L2-normalised — the "Sparsified GloVe" input of
/// Table III.  Throws std::invalid_argument on dimension mismatch.
[[nodiscard]] sparse::Csr sparsify_corpus(const DenseEmbeddings& corpus,
                                          const Dictionary& dictionary,
                                          const SparsifyConfig& config);

}  // namespace topk::embed
