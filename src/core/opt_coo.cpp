#include "core/opt_coo.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

#include "fixed/fixed_point.hpp"
#include "util/bitio.hpp"

namespace topk::core {

namespace {

std::uint32_t encode_value(float value, ValueKind kind,
                           const fixed::FixedFormat& format) noexcept {
  switch (kind) {
    case ValueKind::kFloat32:
      return std::bit_cast<std::uint32_t>(value);
    case ValueKind::kSignedFixed:
      return fixed::quantize_signed(static_cast<double>(value), format);
    case ValueKind::kFixed:
      break;
  }
  return fixed::quantize(static_cast<double>(value), format);
}

}  // namespace

OptCooLayout OptCooLayout::solve(std::uint32_t rows, std::uint32_t cols,
                                 int val_bits, int packet_bits) {
  if (rows == 0 || cols == 0) {
    throw std::invalid_argument("OptCooLayout::solve: empty shape");
  }
  if (val_bits < 2 || val_bits > 32) {
    throw std::invalid_argument("OptCooLayout::solve: val_bits out of range");
  }
  if (packet_bits <= 0 || packet_bits % 64 != 0) {
    throw std::invalid_argument(
        "OptCooLayout::solve: packet_bits must be a positive multiple of 64");
  }
  OptCooLayout layout;
  layout.packet_bits = packet_bits;
  layout.row_bits = util::bits_for_value(rows - 1);
  layout.col_bits = util::bits_for_value(cols - 1);
  layout.val_bits = val_bits;
  layout.capacity = packet_bits / layout.bits_per_entry();
  if (layout.capacity == 0) {
    throw std::invalid_argument(
        "OptCooLayout::solve: packet too small for a single entry");
  }
  return layout;
}

OptCooMatrix encode_opt_coo(const sparse::Csr& matrix, const OptCooLayout& layout,
                            ValueKind kind) {
  if (matrix.rows() == 0 || matrix.nnz() == 0) {
    throw std::invalid_argument("encode_opt_coo: matrix must have non-zeros");
  }
  if (matrix.rows() > (std::uint64_t{1} << layout.row_bits) ||
      matrix.cols() > (std::uint64_t{1} << layout.col_bits)) {
    throw std::invalid_argument("encode_opt_coo: field widths too small");
  }
  if (kind == ValueKind::kFloat32 && layout.val_bits != 32) {
    throw std::invalid_argument("encode_opt_coo: float32 requires 32-bit values");
  }
  const fixed::FixedFormat format{layout.val_bits, 1};
  if (kind != ValueKind::kFloat32) {
    fixed::validate(format);
  }

  OptCooMatrix out;
  out.layout_ = layout;
  out.value_kind_ = kind;
  out.rows_ = matrix.rows();
  out.cols_ = matrix.cols();
  out.nnz_ = matrix.nnz();

  util::BitWriter writer;
  const auto capacity = static_cast<std::uint64_t>(layout.capacity);
  std::uint64_t in_packet = 0;
  std::uint32_t last_row = 0;
  for (std::uint32_t r = 0; r < matrix.rows(); ++r) {
    const auto cols = matrix.row_cols(r);
    const auto vals = matrix.row_values(r);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      writer.append(r, layout.row_bits);
      writer.append(cols[i], layout.col_bits);
      writer.append(encode_value(vals[i], kind, format), layout.val_bits);
      last_row = r;
      if (++in_packet == capacity) {
        writer.align_to(layout.packet_bits);
        in_packet = 0;
      }
    }
  }
  // Pad the final packet with zero-valued repeats of the last row.
  if (in_packet != 0) {
    while (in_packet < capacity) {
      writer.append(last_row, layout.row_bits);
      writer.append(0, layout.col_bits);
      writer.append(0, layout.val_bits);
      ++in_packet;
    }
    writer.align_to(layout.packet_bits);
  }

  out.words_ = writer.take_words();
  out.num_packets_ = (matrix.nnz() + capacity - 1) / capacity;
  return out;
}

KernelResult run_topk_spmv_opt_coo(const OptCooMatrix& matrix,
                                   std::span<const float> x, int k) {
  if (x.size() != matrix.cols()) {
    throw std::invalid_argument("run_topk_spmv_opt_coo: vector size mismatch");
  }
  if (k <= 0) {
    throw std::invalid_argument("run_topk_spmv_opt_coo: k must be positive");
  }
  const OptCooLayout& layout = matrix.layout();
  const fixed::FixedFormat format{layout.val_bits, 1};
  const bool is_float = matrix.value_kind() == ValueKind::kFloat32;
  const bool is_signed = matrix.value_kind() == ValueKind::kSignedFixed;

  // Vector raws as in the BS-CSR kernel (Q1.31 / S.31 / float).
  const std::vector<std::uint32_t> x_unsigned =
      is_float || is_signed ? std::vector<std::uint32_t>{} : quantize_vector(x);
  const std::vector<std::uint32_t> x_signed =
      is_signed ? quantize_vector_signed(x) : std::vector<std::uint32_t>{};

  TopKScratchpad topk(k);
  KernelStats stats;

  util::BitReader reader(matrix.words());
  bool row_open = false;
  std::uint32_t current_row = 0;
  fixed::FixedAccumulator acc_unsigned;
  std::int64_t acc_signed = 0;
  float acc_float = 0.0f;

  const auto emit = [&] {
    ++stats.rows_emitted;
    if (is_float) {
      topk.insert(current_row, static_cast<double>(acc_float));
      acc_float = 0.0f;
    } else if (is_signed) {
      topk.insert(current_row,
                  std::ldexp(static_cast<double>(acc_signed),
                             -fixed::kAccFracBits));
      acc_signed = 0;
    } else {
      topk.insert(current_row, acc_unsigned.to_double());
      acc_unsigned.reset();
    }
  };

  std::size_t bit = 0;
  for (std::uint64_t p = 0; p < matrix.num_packets(); ++p) {
    ++stats.packets;
    bit = static_cast<std::size_t>(p) *
          static_cast<std::size_t>(layout.packet_bits);
    for (int i = 0; i < layout.capacity; ++i) {
      const auto row =
          static_cast<std::uint32_t>(reader.read(bit, layout.row_bits));
      bit += static_cast<std::size_t>(layout.row_bits);
      const auto col =
          static_cast<std::uint32_t>(reader.read(bit, layout.col_bits));
      bit += static_cast<std::size_t>(layout.col_bits);
      const auto raw =
          static_cast<std::uint32_t>(reader.read(bit, layout.val_bits));
      bit += static_cast<std::size_t>(layout.val_bits);

      if (row >= matrix.rows() || col >= matrix.cols()) {
        throw std::runtime_error("run_topk_spmv_opt_coo: corrupt stream");
      }
      if (row_open && row != current_row) {
        if (row < current_row) {
          throw std::runtime_error(
              "run_topk_spmv_opt_coo: rows out of order (corrupt stream)");
        }
        emit();
      }
      current_row = row;
      row_open = true;
      if (is_float) {
        acc_float += std::bit_cast<float>(raw) * x[col];
      } else if (is_signed) {
        const std::int64_t product =
            fixed::sign_extend(raw, layout.val_bits) *
            fixed::sign_extend(x_signed[col], 32);
        const int shift =
            format.frac_bits() + fixed::kVectorFracBits - fixed::kAccFracBits;
        acc_signed += shift >= 0 ? (product >> shift) : (product << -shift);
      } else {
        acc_unsigned.add_product(raw, format.frac_bits(), x_unsigned[col]);
      }
    }
  }
  if (row_open) {
    emit();
  }

  KernelResult result;
  result.topk = topk.sorted_descending();
  result.stats = stats;
  return result;
}

}  // namespace topk::core
