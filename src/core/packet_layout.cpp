#include "core/packet_layout.hpp"

#include <stdexcept>

#include "util/bitio.hpp"

namespace topk::core {

PacketLayout PacketLayout::solve(std::uint32_t cols, int val_bits, int packet_bits) {
  if (cols == 0) {
    throw std::invalid_argument("PacketLayout::solve: cols must be positive");
  }
  if (val_bits < 2 || val_bits > 32) {
    throw std::invalid_argument("PacketLayout::solve: val_bits must be in [2, 32]");
  }
  if (packet_bits <= 0 || packet_bits % 64 != 0) {
    throw std::invalid_argument(
        "PacketLayout::solve: packet_bits must be a positive multiple of 64");
  }

  const int idx_bits = util::bits_for_value(cols - 1);

  // The capacity is monotone in B's feasibility test, but ptr_bits
  // depends on B itself; a simple descending scan is exact and cheap.
  const int max_candidate = packet_bits;  // loose upper bound
  for (int capacity = max_candidate; capacity >= 1; --capacity) {
    const int ptr_bits =
        util::bits_for_value(static_cast<std::uint64_t>(capacity));
    const long long used =
        1LL + static_cast<long long>(capacity) * (ptr_bits + idx_bits + val_bits);
    if (used <= packet_bits) {
      PacketLayout layout;
      layout.packet_bits = packet_bits;
      layout.ptr_bits = ptr_bits;
      layout.idx_bits = idx_bits;
      layout.val_bits = val_bits;
      layout.capacity = capacity;
      return layout;
    }
  }
  throw std::invalid_argument(
      "PacketLayout::solve: packet too small for a single entry");
}

}  // namespace topk::core
