#include "core/topk_spmv.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace topk::core {

TopKScratchpad::TopKScratchpad(int k) : k_(k) {
  if (k <= 0) {
    throw std::invalid_argument("TopKScratchpad: k must be positive");
  }
  entries_.reserve(static_cast<std::size_t>(k));
}

void TopKScratchpad::insert(std::uint32_t index, double value) {
  if (entries_.size() < static_cast<std::size_t>(k_)) {
    entries_.push_back(TopKEntry{index, value});
    if (entries_.size() == static_cast<std::size_t>(k_)) {
      refresh_argmin();
    }
    return;
  }
  if (value >= entries_[argmin_].value) {
    entries_[argmin_] = TopKEntry{index, value};
    refresh_argmin();
  }
}

double TopKScratchpad::worst() const noexcept {
  if (entries_.empty()) {
    return 0.0;
  }
  if (entries_.size() < static_cast<std::size_t>(k_)) {
    double w = entries_[0].value;
    for (const TopKEntry& e : entries_) {
      w = std::min(w, e.value);
    }
    return w;
  }
  return entries_[argmin_].value;
}

void TopKScratchpad::refresh_argmin() noexcept {
  argmin_ = 0;
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    if (entries_[i].value < entries_[argmin_].value) {
      argmin_ = i;
    }
  }
}

std::vector<TopKEntry> TopKScratchpad::sorted_descending() const {
  std::vector<TopKEntry> out = entries_;
  std::sort(out.begin(), out.end(), TopKEntryOrder{});
  return out;
}

std::vector<std::uint32_t> quantize_vector(std::span<const float> x) {
  const fixed::FixedFormat format{32, 1};  // Q1.31, the URAM layout
  std::vector<std::uint32_t> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = fixed::quantize(static_cast<double>(x[i]), format);
  }
  return out;
}

std::vector<std::uint32_t> quantize_vector_signed(std::span<const float> x) {
  const fixed::FixedFormat format{32, 1};  // S.31 two's complement
  std::vector<std::uint32_t> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = fixed::quantize_signed(static_cast<double>(x[i]), format);
  }
  return out;
}

namespace {

/// Shared streaming skeleton; `Arith` supplies the product/accumulate
/// semantics (fixed point or float32).
template <typename Arith>
KernelResult run_kernel(const BsCsrMatrix& matrix, const Arith& arith, int k,
                        int rows_per_packet) {
  const auto capacity = static_cast<std::size_t>(matrix.layout().capacity);

  TopKScratchpad topk(k);
  KernelStats stats;

  typename Arith::acc_type carry{};
  std::uint32_t row_curr = 0;
  std::vector<typename Arith::acc_type> products(capacity);

  PacketCursor cursor(matrix);
  while (!cursor.done()) {
    const PacketView packet = cursor.next();
    ++stats.packets;

    // Stage 1: B point-wise products (padding slots carry value 0 and
    // contribute nothing).
    for (std::size_t j = 0; j < capacity; ++j) {
      products[j] = arith.product(packet.val_raw[j], packet.idx[j]);
    }

    // Stage 3 (book-keeping): a new first row means anything carried
    // past the previous packet's last boundary was stream padding.
    if (packet.new_row) {
      carry = typename Arith::acc_type{};
    }

    // Stage 2 + 4: aggregate each boundary-delimited segment into the
    // carry, emit finished rows into the Top-K scratchpad (bounded by
    // the r budget), and keep the trailing partial sum as the carry.
    std::uint64_t finished_in_packet = 0;
    std::size_t pos = 0;
    for (const std::uint32_t boundary : packet.boundaries) {
      for (std::size_t j = pos; j < boundary; ++j) {
        carry = Arith::add(carry, products[j]);
      }
      pos = boundary;
      ++finished_in_packet;
      ++stats.rows_emitted;
      if (finished_in_packet <= static_cast<std::uint64_t>(rows_per_packet)) {
        topk.insert(row_curr, Arith::to_score(carry));
      } else {
        ++stats.rows_dropped;
      }
      ++row_curr;
      carry = typename Arith::acc_type{};
    }
    stats.max_rows_in_packet =
        std::max(stats.max_rows_in_packet, finished_in_packet);
    for (std::size_t j = pos; j < capacity; ++j) {
      carry = Arith::add(carry, products[j]);
    }
  }

  if (row_curr != matrix.rows()) {
    throw std::runtime_error("run_topk_spmv: row count mismatch (corrupt stream)");
  }

  KernelResult result;
  result.topk = topk.sorted_descending();
  result.stats = stats;
  return result;
}

/// Fixed-point arithmetic: exact integer products accumulated in
/// Q24.40; scores are exact doubles of the accumulator raws.
class FixedArith {
 public:
  using acc_type = fixed::FixedAccumulator;

  FixedArith(std::span<const std::uint32_t> x_raw, int val_frac_bits)
      : x_raw_(x_raw), val_frac_bits_(val_frac_bits) {}

  [[nodiscard]] acc_type product(std::uint32_t val_raw, std::uint32_t col) const {
    acc_type acc;
    acc.add_product(val_raw, val_frac_bits_, x_raw_[col]);
    return acc;
  }

  [[nodiscard]] static acc_type add(acc_type a, const acc_type& b) noexcept {
    a.add(b);
    return a;
  }

  [[nodiscard]] static double to_score(const acc_type& acc) noexcept {
    return acc.to_double();
  }

 private:
  std::span<const std::uint32_t> x_raw_;
  int val_frac_bits_;
};

/// Signed fixed-point arithmetic (kSignedFixed extension): exact
/// two's-complement integer products accumulated in a signed
/// counterpart of the Q24.40 register; C++20 guarantees arithmetic
/// right shifts on signed integers, matching the hardware shifter.
class SignedFixedArith {
 public:
  using acc_type = std::int64_t;

  SignedFixedArith(std::span<const std::uint32_t> x_raw, int val_bits,
                   int val_frac_bits)
      : x_raw_(x_raw), val_bits_(val_bits), val_frac_bits_(val_frac_bits) {}

  [[nodiscard]] acc_type product(std::uint32_t val_raw, std::uint32_t col) const {
    const std::int64_t value = fixed::sign_extend(val_raw, val_bits_);
    const std::int64_t vector = fixed::sign_extend(x_raw_[col], 32);
    const std::int64_t full = value * vector;  // <= 62 significant bits
    const int shift = val_frac_bits_ + fixed::kVectorFracBits - fixed::kAccFracBits;
    return shift >= 0 ? (full >> shift) : (full << -shift);
  }

  [[nodiscard]] static acc_type add(acc_type a, acc_type b) noexcept {
    return a + b;
  }

  [[nodiscard]] static double to_score(acc_type acc) noexcept {
    return std::ldexp(static_cast<double>(acc), -fixed::kAccFracBits);
  }

 private:
  std::span<const std::uint32_t> x_raw_;
  int val_bits_;
  int val_frac_bits_;
};

/// Float32 arithmetic: products and accumulation in binary32, exactly
/// like the paper's floating-point design.
class Float32Arith {
 public:
  using acc_type = float;

  explicit Float32Arith(std::span<const float> x) : x_(x) {}

  [[nodiscard]] acc_type product(std::uint32_t val_raw, std::uint32_t col) const {
    return std::bit_cast<float>(val_raw) * x_[col];
  }

  [[nodiscard]] static acc_type add(acc_type a, acc_type b) noexcept {
    return a + b;
  }

  [[nodiscard]] static double to_score(acc_type acc) noexcept {
    return static_cast<double>(acc);
  }

 private:
  std::span<const float> x_;
};

}  // namespace

QuantizedQuery quantize_query(std::span<const float> x, ValueKind kind,
                              std::vector<std::uint32_t>& raw_storage) {
  switch (kind) {
    case ValueKind::kFloat32:
      raw_storage.clear();
      break;
    case ValueKind::kSignedFixed:
      raw_storage = quantize_vector_signed(x);
      break;
    case ValueKind::kFixed:
      raw_storage = quantize_vector(x);
      break;
  }
  return QuantizedQuery{x, raw_storage};
}

KernelResult run_topk_spmv(const BsCsrMatrix& matrix, std::span<const float> x,
                           int k, int rows_per_packet) {
  if (x.size() != matrix.cols()) {
    throw std::invalid_argument("run_topk_spmv: vector size mismatch");
  }
  std::vector<std::uint32_t> raw_storage;
  const QuantizedQuery query =
      quantize_query(x, matrix.value_kind(), raw_storage);
  return run_topk_spmv(matrix, query, k, rows_per_packet);
}

KernelResult run_topk_spmv(const BsCsrMatrix& matrix,
                           const QuantizedQuery& query, int k,
                           int rows_per_packet) {
  if (query.x.size() != matrix.cols()) {
    throw std::invalid_argument("run_topk_spmv: vector size mismatch");
  }
  if (k <= 0) {
    throw std::invalid_argument("run_topk_spmv: k must be positive");
  }
  if (rows_per_packet <= 0) {
    throw std::invalid_argument("run_topk_spmv: rows_per_packet must be positive");
  }

  if (matrix.value_kind() == ValueKind::kFloat32) {
    if (!query.raw.empty()) {
      throw std::invalid_argument(
          "run_topk_spmv: raw span given for a float32 stream");
    }
    return run_kernel(matrix, Float32Arith(query.x), k, rows_per_packet);
  }
  if (query.raw.size() != matrix.cols()) {
    throw std::invalid_argument(
        "run_topk_spmv: quantised raw size mismatch for fixed-point stream");
  }
  if (matrix.value_kind() == ValueKind::kSignedFixed) {
    const fixed::FixedFormat format = matrix.value_format();
    return run_kernel(
        matrix,
        SignedFixedArith(query.raw, format.total_bits, format.frac_bits()), k,
        rows_per_packet);
  }
  const int frac_bits = matrix.value_format().frac_bits();
  return run_kernel(matrix, FixedArith(query.raw, frac_bits), k,
                    rows_per_packet);
}

}  // namespace topk::core
