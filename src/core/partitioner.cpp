#include "core/partitioner.hpp"

#include <algorithm>
#include <stdexcept>

namespace topk::core {

std::vector<Partition> make_row_partitions(std::uint32_t rows, int count) {
  if (count <= 0) {
    throw std::invalid_argument("make_row_partitions: count must be positive");
  }
  if (static_cast<std::uint64_t>(count) > rows) {
    throw std::invalid_argument("make_row_partitions: more partitions than rows");
  }
  const auto c = static_cast<std::uint32_t>(count);
  const std::uint32_t base = rows / c;
  const std::uint32_t remainder = rows % c;

  std::vector<Partition> partitions;
  partitions.reserve(c);
  std::uint32_t begin = 0;
  for (std::uint32_t i = 0; i < c; ++i) {
    const std::uint32_t size = base + (i < remainder ? 1 : 0);
    partitions.push_back(Partition{begin, begin + size});
    begin += size;
  }
  return partitions;
}

std::vector<TopKEntry> merge_partition_results(
    const std::vector<std::vector<TopKEntry>>& per_partition,
    const std::vector<Partition>& partitions, int top_k) {
  if (per_partition.size() != partitions.size()) {
    throw std::invalid_argument(
        "merge_partition_results: result/partition count mismatch");
  }
  if (top_k <= 0) {
    throw std::invalid_argument("merge_partition_results: top_k must be positive");
  }

  std::vector<TopKEntry> merged;
  for (std::size_t p = 0; p < per_partition.size(); ++p) {
    for (const TopKEntry& entry : per_partition[p]) {
      merged.push_back(
          TopKEntry{entry.index + partitions[p].row_begin, entry.value});
    }
  }
  std::sort(merged.begin(), merged.end(), TopKEntryOrder{});
  if (merged.size() > static_cast<std::size_t>(top_k)) {
    merged.resize(static_cast<std::size_t>(top_k));
  }
  return merged;
}

}  // namespace topk::core
