#include "core/accelerator.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

namespace topk::core {

TopKAccelerator::TopKAccelerator(const sparse::Csr& matrix,
                                 const DesignConfig& config)
    : config_(config) {
  validate(config);
  if (matrix.rows() == 0 || matrix.cols() == 0) {
    throw std::invalid_argument("TopKAccelerator: empty matrix");
  }
  if (matrix.rows() < static_cast<std::uint32_t>(config.cores)) {
    throw std::invalid_argument("TopKAccelerator: fewer rows than cores");
  }

  rows_ = matrix.rows();
  cols_ = matrix.cols();
  layout_ = PacketLayout::solve(matrix.cols(), config.value_bits,
                                config.packet_bits);
  partitions_ = make_row_partitions(matrix.rows(), config.cores);

  EncodeOptions encode_options;
  if (config.enforce_r_in_encoder) {
    encode_options.max_rows_per_packet = config.rows_per_packet;
  }

  streams_.reserve(partitions_.size());
  for (const Partition& partition : partitions_) {
    const sparse::Csr slice =
        matrix.slice_rows(partition.row_begin, partition.row_end);
    streams_.push_back(
        encode_bscsr(slice, layout_, config.value_kind, encode_options));
  }
}

namespace {

int resolve_threads(int requested, std::size_t work_items) {
  if (requested < 0) {
    throw std::invalid_argument("QueryOptions: negative thread count");
  }
  int threads = requested;
  if (threads == 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads == 0) {
      threads = 1;
    }
  }
  return static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(threads),
                            std::max<std::size_t>(1, work_items)));
}

}  // namespace

QueryResult TopKAccelerator::query(std::span<const float> x, int top_k,
                                   const QueryOptions& options) const {
  if (x.size() != cols_) {
    throw std::invalid_argument("TopKAccelerator::query: vector size mismatch");
  }
  if (top_k <= 0) {
    throw std::invalid_argument("TopKAccelerator::query: top_k must be positive");
  }
  const std::int64_t candidates =
      static_cast<std::int64_t>(config_.k) * config_.cores;
  if (top_k > candidates) {
    throw std::invalid_argument(
        "TopKAccelerator::query: top_k exceeds k * cores candidates");
  }
  const int threads = resolve_threads(options.threads, streams_.size());

  std::vector<KernelResult> per_core(streams_.size());
  const auto run_range = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      per_core[i] =
          run_topk_spmv(streams_[i], x, config_.k, config_.rows_per_packet);
    }
  };
  if (threads <= 1) {
    run_range(0, streams_.size());
  } else {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      const std::size_t begin = streams_.size() * t / threads;
      const std::size_t end = streams_.size() * (t + 1) / threads;
      workers.emplace_back([&, begin, end] { run_range(begin, end); });
    }
    for (std::thread& worker : workers) {
      worker.join();
    }
  }

  ExecutionStats stats;
  std::vector<std::vector<TopKEntry>> candidates_per_core;
  candidates_per_core.reserve(per_core.size());
  for (KernelResult& result : per_core) {
    stats.total_packets += result.stats.packets;
    stats.max_core_packets =
        std::max(stats.max_core_packets, result.stats.packets);
    stats.rows_dropped += result.stats.rows_dropped;
    stats.rows_emitted += result.stats.rows_emitted;
    candidates_per_core.push_back(std::move(result.topk));
  }

  QueryResult out;
  out.entries = merge_partition_results(candidates_per_core, partitions_, top_k);
  out.stats = stats;
  return out;
}

std::vector<QueryResult> TopKAccelerator::query_batch(
    const std::vector<std::vector<float>>& queries, int top_k,
    const QueryOptions& options) const {
  std::vector<QueryResult> results(queries.size());
  if (queries.empty()) {
    return results;
  }
  const int threads = resolve_threads(options.threads, queries.size());

  // Pre-validate so worker threads never throw.
  for (const auto& x : queries) {
    if (x.size() != cols_) {
      throw std::invalid_argument(
          "TopKAccelerator::query_batch: vector size mismatch");
    }
  }
  const auto run_range = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      results[i] = query(queries[i], top_k);
    }
  };
  // Validate top_k once up front (query() would throw inside workers).
  if (top_k <= 0 ||
      top_k > static_cast<std::int64_t>(config_.k) * config_.cores) {
    throw std::invalid_argument("TopKAccelerator::query_batch: invalid top_k");
  }
  if (threads <= 1) {
    run_range(0, queries.size());
  } else {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      const std::size_t begin = queries.size() * t / threads;
      const std::size_t end = queries.size() * (t + 1) / threads;
      workers.emplace_back([&, begin, end] { run_range(begin, end); });
    }
    for (std::thread& worker : workers) {
      worker.join();
    }
  }
  return results;
}

std::uint64_t TopKAccelerator::stream_bytes() const noexcept {
  std::uint64_t bytes = 0;
  for (const BsCsrMatrix& stream : streams_) {
    bytes += stream.stream_bytes();
  }
  return bytes;
}

std::uint64_t TopKAccelerator::max_core_packets() const noexcept {
  std::uint64_t max_packets = 0;
  for (const BsCsrMatrix& stream : streams_) {
    max_packets = std::max(max_packets, stream.num_packets());
  }
  return max_packets;
}

}  // namespace topk::core
