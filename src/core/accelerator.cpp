#include "core/accelerator.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "util/cpu_features.hpp"
#include "util/thread_pool.hpp"

namespace topk::core {

TopKAccelerator::TopKAccelerator(const sparse::Csr& matrix,
                                 const DesignConfig& config)
    : config_(config) {
  validate(config);
  if (matrix.rows() == 0 || matrix.cols() == 0) {
    throw std::invalid_argument("TopKAccelerator: empty matrix");
  }
  if (matrix.rows() < static_cast<std::uint32_t>(config.cores)) {
    throw std::invalid_argument("TopKAccelerator: fewer rows than cores");
  }

  rows_ = matrix.rows();
  cols_ = matrix.cols();
  layout_ = PacketLayout::solve(matrix.cols(), config.value_bits,
                                config.packet_bits);
  partitions_ = make_row_partitions(matrix.rows(), config.cores);

  EncodeOptions encode_options;
  if (config.enforce_r_in_encoder) {
    encode_options.max_rows_per_packet = config.rows_per_packet;
  }

  streams_.reserve(partitions_.size());
  for (const Partition& partition : partitions_) {
    const sparse::Csr slice =
        matrix.slice_rows(partition.row_begin, partition.row_end);
    streams_.push_back(
        encode_bscsr(slice, layout_, config.value_kind, encode_options));
  }
}

TopKAccelerator TopKAccelerator::from_parts(const DesignConfig& config,
                                            std::vector<Partition> partitions,
                                            std::vector<BsCsrMatrix> streams) {
  validate(config);
  if (partitions.empty() || partitions.size() != streams.size()) {
    throw std::invalid_argument(
        "TopKAccelerator::from_parts: partition/stream count mismatch");
  }
  if (partitions.size() != static_cast<std::size_t>(config.cores)) {
    throw std::invalid_argument(
        "TopKAccelerator::from_parts: stream count does not match the "
        "design's core count");
  }

  TopKAccelerator out;
  out.config_ = config;
  out.cols_ = streams.front().cols();
  out.layout_ =
      PacketLayout::solve(out.cols_, config.value_bits, config.packet_bits);
  std::uint32_t expected_begin = 0;
  for (std::size_t i = 0; i < partitions.size(); ++i) {
    const std::string tag =
        "TopKAccelerator::from_parts: core " + std::to_string(i);
    if (partitions[i].row_end <= partitions[i].row_begin ||
        partitions[i].row_begin != expected_begin) {
      throw std::invalid_argument(tag + ": partitions are not contiguous");
    }
    if (streams[i].rows() != partitions[i].rows()) {
      throw std::invalid_argument(tag +
                                  ": stream rows do not match the partition");
    }
    if (streams[i].cols() != out.cols_) {
      throw std::invalid_argument(tag + ": column count mismatch");
    }
    if (streams[i].value_kind() != config.value_kind) {
      throw std::invalid_argument(tag +
                                  ": value kind does not match the design");
    }
    if (streams[i].layout() != out.layout_) {
      throw std::invalid_argument(tag +
                                  ": packet layout does not match the design");
    }
    expected_begin = partitions[i].row_end;
  }
  out.rows_ = expected_begin;
  out.partitions_ = std::move(partitions);
  out.streams_ = std::move(streams);
  return out;
}

namespace {

int resolve_threads(int requested, std::size_t work_items) {
  if (requested < 0) {
    throw std::invalid_argument("QueryOptions: negative thread count");
  }
  int threads = requested;
  if (threads == 0) {
    threads = util::default_thread_count();
  }
  return static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(threads),
                            std::max<std::size_t>(1, work_items)));
}

}  // namespace

void TopKAccelerator::check_vector(std::span<const float> x) const {
  if (x.size() != cols_) {
    throw std::invalid_argument("TopKAccelerator: query vector size mismatch");
  }
}

void TopKAccelerator::check_top_k(int top_k) const {
  if (top_k <= 0) {
    throw std::invalid_argument("TopKAccelerator: top_k must be positive");
  }
  const std::int64_t candidates =
      static_cast<std::int64_t>(config_.k) * config_.cores;
  if (top_k > candidates) {
    throw std::invalid_argument(
        "TopKAccelerator: top_k exceeds k * cores candidates");
  }
}

void TopKAccelerator::validate_query(std::span<const float> x,
                                     int top_k) const {
  check_vector(x);
  check_top_k(top_k);
}

QueryResult TopKAccelerator::query(std::span<const float> x, int top_k,
                                   const QueryOptions& options) const {
  validate_query(x, top_k);
  const int threads = resolve_threads(options.threads, streams_.size());

  // Quantise the query once and stream every core with the same raws —
  // the per-query amortisation the hardware gets for free from its
  // single URAM copy of x.
  std::vector<std::uint32_t> raw_storage;
  const QuantizedQuery quantized =
      quantize_query(x, config_.value_kind, raw_storage);

  // parallel_for runs inline on the calling thread when threads <= 1,
  // so no separate sequential branch is needed.
  std::vector<KernelResult> per_core(streams_.size());
  util::ThreadPool& pool = util::shared_pool();
  pool.ensure_workers(threads - 1);
  pool.parallel_for(streams_.size(), threads, [&](std::size_t i) {
    per_core[i] = run_topk_spmv(streams_[i], quantized, config_.k,
                                config_.rows_per_packet);
  });

  ExecutionStats stats;
  std::vector<std::vector<TopKEntry>> candidates_per_core;
  candidates_per_core.reserve(per_core.size());
  for (KernelResult& result : per_core) {
    stats.total_packets += result.stats.packets;
    stats.max_core_packets =
        std::max(stats.max_core_packets, result.stats.packets);
    stats.rows_dropped += result.stats.rows_dropped;
    stats.rows_emitted += result.stats.rows_emitted;
    stats.max_rows_in_packet =
        std::max(stats.max_rows_in_packet, result.stats.max_rows_in_packet);
    candidates_per_core.push_back(std::move(result.topk));
  }

  QueryResult out;
  out.entries = merge_partition_results(candidates_per_core, partitions_, top_k);
  out.stats = stats;
  return out;
}

void TopKAccelerator::validate_batch(
    const std::vector<std::vector<float>>& queries, int top_k) const {
  for (const auto& x : queries) {
    check_vector(x);
  }
  check_top_k(top_k);
}

std::vector<QueryResult> TopKAccelerator::query_batch(
    const std::vector<std::vector<float>>& queries, int top_k,
    const QueryOptions& options) const {
  std::vector<QueryResult> results(queries.size());
  if (queries.empty()) {
    return results;
  }
  const int threads = resolve_threads(options.threads, queries.size());
  validate_batch(queries, top_k);  // so worker threads never throw

  // Dynamic per-query scheduling on the shared pool: a worker claims
  // the next unstarted query as soon as it finishes one, so one slow
  // query no longer stalls a whole static block of the batch.
  util::ThreadPool& pool = util::shared_pool();
  pool.ensure_workers(threads - 1);
  pool.parallel_for(queries.size(), threads, [&](std::size_t i) {
    results[i] = query(queries[i], top_k);
  });
  return results;
}

std::uint64_t TopKAccelerator::stream_bytes() const noexcept {
  std::uint64_t bytes = 0;
  for (const BsCsrMatrix& stream : streams_) {
    bytes += stream.stream_bytes();
  }
  return bytes;
}

std::uint64_t TopKAccelerator::max_core_packets() const noexcept {
  std::uint64_t max_packets = 0;
  for (const BsCsrMatrix& stream : streams_) {
    max_packets = std::max(max_packets, stream.num_packets());
  }
  return max_packets;
}

}  // namespace topk::core
