// BS-CSR packet geometry (paper section III-B, Figure 3).
//
// Every HBM packet of `packet_bits` bits (512 on the U280) is an
// independent CSR partition holding B non-zeros:
//
//   [ new_row : 1 bit ][ ptr[B] : ptr_bits each ]
//   [ idx[B] : idx_bits each ][ val[B] : val_bits each ] [zero padding]
//
// with the capacity B chosen as the largest integer satisfying
//
//   B * (ceil(log2(B + 1)) + ceil(log2 M) + V) + 1 <= packet_bits
//
// (section IV-C).  ptr entries store the cumulative non-zero count at
// each row boundary inside the packet, so they must be able to encode
// values up to and including B — hence log2(B + 1).
#pragma once

#include <cstddef>
#include <cstdint>

namespace topk::core {

/// Immutable description of a packet's bit-level geometry.
struct PacketLayout {
  int packet_bits = 512;
  int ptr_bits = 0;   ///< bits per ptr entry: ceil(log2(capacity + 1))
  int idx_bits = 0;   ///< bits per column index: ceil(log2 M)
  int val_bits = 0;   ///< V: bits per value
  int capacity = 0;   ///< B: non-zeros per packet

  /// Bits consumed by one (ptr, idx, val) slot.
  [[nodiscard]] constexpr int bits_per_entry() const noexcept {
    return ptr_bits + idx_bits + val_bits;
  }
  /// Bits actually used in the packet (flag + B slots).
  [[nodiscard]] constexpr int used_bits() const noexcept {
    return 1 + capacity * bits_per_entry();
  }
  /// Unused trailing bits per packet.
  [[nodiscard]] constexpr int padding_bits() const noexcept {
    return packet_bits - used_bits();
  }
  [[nodiscard]] constexpr int words_per_packet() const noexcept {
    return packet_bits / 64;
  }
  [[nodiscard]] constexpr int bytes_per_packet() const noexcept {
    return packet_bits / 8;
  }

  /// Operational intensity in non-zeros per byte streamed (the x-axis
  /// of the paper's roofline, Figure 6a): B / packet bytes.
  [[nodiscard]] constexpr double nnz_per_byte() const noexcept {
    return static_cast<double>(capacity) / bytes_per_packet();
  }

  /// Solves for the largest capacity B given the embedding size M
  /// (column count; determines idx_bits) and value width V.  Throws
  /// std::invalid_argument if no entry fits (val_bits too large for
  /// packet_bits) or parameters are out of range.
  [[nodiscard]] static PacketLayout solve(std::uint32_t cols, int val_bits,
                                          int packet_bits = 512);

  friend constexpr bool operator==(const PacketLayout&, const PacketLayout&) = default;
};

}  // namespace topk::core
