// Serialisation of encoded BS-CSR streams ("device images").
//
// Encoding a paper-scale matrix takes longer than streaming it, so a
// deployment encodes once and ships the packed image to the
// accelerator at load time.  The binary format is a little-endian
// header (magic/version, layout geometry, value kind, shape, counts,
// encoder statistics) followed by the raw packet words — exactly the
// bytes an XDMA transfer would write to HBM.
#pragma once

#include <filesystem>
#include <iosfwd>

#include "core/bscsr.hpp"

namespace topk::core {

/// Writes an encoded stream.  Throws std::runtime_error on I/O errors.
void save_bscsr(const BsCsrMatrix& matrix, const std::filesystem::path& path);
void save_bscsr(const BsCsrMatrix& matrix, std::ostream& os);

/// Reads a stream written by save_bscsr, validating header consistency
/// (magic, layout arithmetic, word counts) and auditing the header's
/// row/column counts against the packet words actually present (the
/// stream's ptr boundaries must account for every claimed row).
/// Throws std::runtime_error on malformed input.
[[nodiscard]] BsCsrMatrix load_bscsr(const std::filesystem::path& path);
[[nodiscard]] BsCsrMatrix load_bscsr(std::istream& is);

}  // namespace topk::core
