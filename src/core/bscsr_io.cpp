#include "core/bscsr_io.hpp"

#include <fstream>
#include <stdexcept>
#include <string>

#include "util/bitio.hpp"

namespace topk::core {

namespace {

constexpr std::uint64_t kMagic = 0x42534353'52494D31ULL;  // "BSCSRIM1"

/// Audits a deserialised stream's header against the packet words
/// actually present: every row (empty source rows included — the
/// encoder injects a placeholder entry) ends at exactly one ptr
/// boundary, so the header row count must equal the stream's total
/// boundary count, and the header column count must be addressable by
/// the layout's idx_bits.  Reads only the flag and ptr region of each
/// packet, keeping a warm image load far cheaper than re-encoding.
/// Throws std::runtime_error on any disagreement — a tampered or
/// mismatched header must never reach the streaming kernel, whose row
/// recovery trusts the boundary count.
void validate_stream_shape(const BsCsrMatrix& matrix) {
  const PacketLayout& layout = matrix.layout();
  if (matrix.cols() > (std::uint64_t{1} << layout.idx_bits)) {
    throw std::runtime_error(
        "load_bscsr: header cols (" + std::to_string(matrix.cols()) +
        ") exceed the " + std::to_string(layout.idx_bits) +
        "-bit index range of the stored packets");
  }
  util::BitReader reader(matrix.words());
  const auto capacity = static_cast<std::size_t>(layout.capacity);
  std::uint64_t boundary_count = 0;
  for (std::uint64_t p = 0; p < matrix.num_packets(); ++p) {
    std::size_t pos = static_cast<std::size_t>(p) *
                          static_cast<std::size_t>(layout.packet_bits) +
                      1;  // skip the new_row flag
    std::uint32_t prev = 0;
    bool in_padding = false;
    for (std::size_t i = 0; i < capacity; ++i) {
      const auto b = static_cast<std::uint32_t>(reader.read(pos, layout.ptr_bits));
      pos += static_cast<std::size_t>(layout.ptr_bits);
      if (b == 0) {
        in_padding = true;
        continue;
      }
      if (in_padding || b <= prev || b > capacity) {
        throw std::runtime_error("load_bscsr: malformed ptr field in packet " +
                                 std::to_string(p));
      }
      ++boundary_count;
      prev = b;
    }
  }
  if (boundary_count != matrix.rows()) {
    throw std::runtime_error(
        "load_bscsr: header rows (" + std::to_string(matrix.rows()) +
        ") disagree with the stream's row boundaries (" +
        std::to_string(boundary_count) + ")");
  }
}

template <typename T>
void write_pod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void read_pod(std::istream& is, T& value) {
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!is) {
    throw std::runtime_error("load_bscsr: truncated stream");
  }
}

}  // namespace

void save_bscsr(const BsCsrMatrix& matrix, std::ostream& os) {
  write_pod(os, kMagic);
  write_pod(os, static_cast<std::int32_t>(matrix.layout().packet_bits));
  write_pod(os, static_cast<std::int32_t>(matrix.layout().ptr_bits));
  write_pod(os, static_cast<std::int32_t>(matrix.layout().idx_bits));
  write_pod(os, static_cast<std::int32_t>(matrix.layout().val_bits));
  write_pod(os, static_cast<std::int32_t>(matrix.layout().capacity));
  write_pod(os, static_cast<std::int32_t>(matrix.value_kind()));
  write_pod(os, matrix.rows());
  write_pod(os, matrix.cols());
  write_pod(os, matrix.source_nnz());
  write_pod(os, matrix.stored_entries());
  const EncodeStats& stats = matrix.stats();
  write_pod(os, stats.packets);
  write_pod(os, stats.padded_slots);
  write_pod(os, stats.placeholder_entries);
  write_pod(os, stats.max_rows_in_packet);
  write_pod(os, static_cast<std::uint64_t>(matrix.words().size()));
  os.write(reinterpret_cast<const char*>(matrix.words().data()),
           static_cast<std::streamsize>(matrix.words().size() * 8));
  if (!os) {
    throw std::runtime_error("save_bscsr: write failure");
  }
}

void save_bscsr(const BsCsrMatrix& matrix, const std::filesystem::path& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    throw std::runtime_error("save_bscsr: cannot open " + path.string());
  }
  save_bscsr(matrix, os);
}

BsCsrMatrix load_bscsr(std::istream& is) {
  std::uint64_t magic = 0;
  read_pod(is, magic);
  if (magic != kMagic) {
    throw std::runtime_error("load_bscsr: bad magic");
  }
  PacketLayout layout;
  std::int32_t field = 0;
  read_pod(is, field);
  layout.packet_bits = field;
  read_pod(is, field);
  layout.ptr_bits = field;
  read_pod(is, field);
  layout.idx_bits = field;
  read_pod(is, field);
  layout.val_bits = field;
  read_pod(is, field);
  layout.capacity = field;
  read_pod(is, field);
  if (field < 0 || field > static_cast<std::int32_t>(ValueKind::kSignedFixed)) {
    throw std::runtime_error("load_bscsr: unknown value kind");
  }
  const auto kind = static_cast<ValueKind>(field);

  std::uint32_t rows = 0;
  std::uint32_t cols = 0;
  std::uint64_t source_nnz = 0;
  std::uint64_t stored_entries = 0;
  read_pod(is, rows);
  read_pod(is, cols);
  read_pod(is, source_nnz);
  read_pod(is, stored_entries);

  EncodeStats stats;
  read_pod(is, stats.packets);
  read_pod(is, stats.padded_slots);
  read_pod(is, stats.placeholder_entries);
  read_pod(is, stats.max_rows_in_packet);

  std::uint64_t word_count = 0;
  read_pod(is, word_count);
  // Guard against corrupt headers before allocating (1 TiB cap).
  if (word_count > (1ULL << 37)) {
    throw std::runtime_error("load_bscsr: implausible word count");
  }
  std::vector<std::uint64_t> words(word_count);
  is.read(reinterpret_cast<char*>(words.data()),
          static_cast<std::streamsize>(word_count * 8));
  if (!is) {
    throw std::runtime_error("load_bscsr: truncated stream");
  }

  BsCsrMatrix matrix;
  try {
    matrix = BsCsrMatrix::from_parts(layout, kind, rows, cols, source_nnz,
                                     stored_entries, std::move(words), stats);
  } catch (const std::invalid_argument& error) {
    throw std::runtime_error(std::string("load_bscsr: ") + error.what());
  }
  validate_stream_shape(matrix);
  return matrix;
}

BsCsrMatrix load_bscsr(const std::filesystem::path& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw std::runtime_error("load_bscsr: cannot open " + path.string());
  }
  return load_bscsr(is);
}

}  // namespace topk::core
