// Matrix partitioning and result merging (paper section III-A).
//
// The matrix is split row-wise into c partitions of ~N/c rows, one per
// FPGA core / HBM channel.  Each core returns its local top k; the
// host merges the k*c candidates into the final (approximate) Top-K.
#pragma once

#include <cstdint>
#include <vector>

#include "core/topk_spmv.hpp"

namespace topk::core {

/// Half-open row range [row_begin, row_end) assigned to one core.
struct Partition {
  std::uint32_t row_begin = 0;
  std::uint32_t row_end = 0;

  [[nodiscard]] constexpr std::uint32_t rows() const noexcept {
    return row_end - row_begin;
  }
  friend constexpr bool operator==(const Partition&, const Partition&) = default;
};

/// Splits `rows` into `count` contiguous partitions whose sizes differ
/// by at most one (the paper's N/c scheme).  Partitions may not be
/// empty: throws std::invalid_argument if count is non-positive or
/// exceeds rows.
[[nodiscard]] std::vector<Partition> make_row_partitions(std::uint32_t rows,
                                                         int count);

/// Merges per-partition top-k lists (local row indices) into a single
/// global list: indices are rebased by each partition's row_begin, the
/// union is sorted by descending value (ties by ascending index), and
/// the best `top_k` survive.  Throws std::invalid_argument if the
/// list/partition counts differ or top_k is non-positive.
[[nodiscard]] std::vector<TopKEntry> merge_partition_results(
    const std::vector<std::vector<TopKEntry>>& per_partition,
    const std::vector<Partition>& partitions, int top_k);

}  // namespace topk::core
