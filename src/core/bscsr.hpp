// Block-Streaming CSR (BS-CSR) encoder/decoder — the paper's novel
// sparse matrix layout (section III-B, Figure 3).
//
// The matrix is serialised row-major into fixed-size packets (one HBM
// transaction each).  Within a packet:
//   * `new_row` (1 bit): 1 iff the packet's first entry starts a new
//     row, i.e. the previous packet's last row was complete;
//   * `ptr` (B entries, ptr_bits each): the cumulative non-zero count
//     at each row boundary inside the packet, in increasing order,
//     zero-padded (0 is unambiguous because every row boundary has a
//     positive cumulative count).  A boundary equal to B marks a row
//     ending exactly at the packet edge;
//   * `idx` (B entries): column indices;
//   * `val` (B entries): values, either raw unsigned fixed point or
//     float32 bits depending on the design.
//
// The format stores no row ids: consumers recover them by counting
// boundaries (the streaming property the hardware relies on).  Empty
// rows are materialised as a single placeholder entry (column 0,
// value 0) as described in the paper.  Packets shorter than B entries
// (the stream tail, or early closes when the encoder enforces the
// rows-per-packet limit) are padded with zero slots after the last
// recorded boundary; decoders recognise padding because a following
// packet carries new_row == 1 (or the stream ends).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/design.hpp"
#include "core/packet_layout.hpp"
#include "fixed/fixed_point.hpp"
#include "sparse/csr.hpp"

namespace topk::core {

/// Options controlling the encoder.
struct EncodeOptions {
  /// When positive, close a packet as soon as it contains this many
  /// row boundaries, guaranteeing that the streaming kernel's Top-K
  /// stage (which tracks at most r finished rows per packet) never
  /// drops a row.  Zero disables enforcement (the paper's hardware
  /// relies on realistic row densities instead).
  int max_rows_per_packet = 0;
};

/// Aggregate statistics from an encoding pass, used by the format
/// benchmarks (Figure 3 / Table III).
struct EncodeStats {
  std::uint64_t packets = 0;
  std::uint64_t padded_slots = 0;       ///< zero slots appended as padding
  std::uint64_t placeholder_entries = 0; ///< entries injected for empty rows
  std::uint64_t max_rows_in_packet = 0;  ///< max boundaries in any packet
};

/// An encoded BS-CSR stream for one matrix (or matrix partition).
class BsCsrMatrix {
 public:
  BsCsrMatrix() = default;

  [[nodiscard]] const PacketLayout& layout() const noexcept { return layout_; }
  [[nodiscard]] ValueKind value_kind() const noexcept { return value_kind_; }
  /// Fixed-point format of the stored values (meaningful for kFixed).
  [[nodiscard]] fixed::FixedFormat value_format() const noexcept {
    return fixed::FixedFormat{layout_.val_bits, 1};
  }

  [[nodiscard]] std::uint32_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::uint32_t cols() const noexcept { return cols_; }
  /// Non-zeros of the source matrix (excluding placeholders/padding).
  [[nodiscard]] std::uint64_t source_nnz() const noexcept { return source_nnz_; }
  /// Entries physically stored in the stream (source + placeholders).
  [[nodiscard]] std::uint64_t stored_entries() const noexcept {
    return stored_entries_;
  }

  [[nodiscard]] std::uint64_t num_packets() const noexcept { return num_packets_; }
  [[nodiscard]] std::uint64_t stream_bytes() const noexcept {
    return num_packets_ * static_cast<std::uint64_t>(layout_.bytes_per_packet());
  }

  [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept {
    return words_;
  }
  [[nodiscard]] const EncodeStats& stats() const noexcept { return stats_; }

  /// Reassembles a matrix from previously serialised parts (see
  /// core/bscsr_io.hpp).  Throws std::invalid_argument when the word
  /// buffer size disagrees with the layout/packet count or the layout
  /// is inconsistent.
  [[nodiscard]] static BsCsrMatrix from_parts(
      const PacketLayout& layout, ValueKind kind, std::uint32_t rows,
      std::uint32_t cols, std::uint64_t source_nnz, std::uint64_t stored_entries,
      std::vector<std::uint64_t> words, const EncodeStats& stats);

  friend BsCsrMatrix encode_bscsr(const sparse::Csr&, const PacketLayout&,
                                  ValueKind, const EncodeOptions&);

 private:
  PacketLayout layout_;
  ValueKind value_kind_ = ValueKind::kFixed;
  std::uint32_t rows_ = 0;
  std::uint32_t cols_ = 0;
  std::uint64_t source_nnz_ = 0;
  std::uint64_t stored_entries_ = 0;
  std::uint64_t num_packets_ = 0;
  std::vector<std::uint64_t> words_;
  EncodeStats stats_;
};

/// Encodes `matrix` into a BS-CSR stream.  Values are quantised to the
/// layout's val_bits (unsigned Q1.(V-1)) for kFixed or bit-cast for
/// kFloat32 (which requires val_bits == 32).  Throws
/// std::invalid_argument on layout/matrix mismatches (cols exceeding
/// idx_bits range, float32 with narrow values).
[[nodiscard]] BsCsrMatrix encode_bscsr(const sparse::Csr& matrix,
                                       const PacketLayout& layout, ValueKind kind,
                                       const EncodeOptions& options = {});

/// One decoded packet, in struct-of-arrays form mirroring the wire
/// layout.  Spans point into the view's scratch storage.
struct PacketView {
  bool new_row = false;
  /// Row boundaries: strictly increasing cumulative counts in [1, B].
  std::span<const std::uint32_t> boundaries;
  std::span<const std::uint32_t> idx;       ///< B column indices
  std::span<const std::uint32_t> val_raw;   ///< B raw values
};

/// Sequential packet reader.  The BsCsrMatrix must outlive the cursor.
class PacketCursor {
 public:
  explicit PacketCursor(const BsCsrMatrix& matrix);

  [[nodiscard]] bool done() const noexcept { return next_packet_ >= total_; }

  /// Decodes the next packet.  The returned spans are valid until the
  /// next call.  Throws std::runtime_error on malformed streams
  /// (non-monotone boundaries) and std::out_of_range past the end.
  [[nodiscard]] PacketView next();

  [[nodiscard]] std::uint64_t packets_read() const noexcept { return next_packet_; }

 private:
  const BsCsrMatrix* matrix_;
  std::uint64_t next_packet_ = 0;
  std::uint64_t total_ = 0;
  std::vector<std::uint32_t> boundaries_;
  std::vector<std::uint32_t> idx_;
  std::vector<std::uint32_t> val_;
};

/// Decodes a BS-CSR stream back to CSR.  Values come back quantised
/// (kFixed) or exact (kFloat32); empty source rows come back as the
/// single placeholder entry the encoder injected.  Used by round-trip
/// property tests and by format tooling.  Throws std::runtime_error on
/// malformed streams.
[[nodiscard]] sparse::Csr decode_bscsr(const BsCsrMatrix& matrix);

}  // namespace topk::core
