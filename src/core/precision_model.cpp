#include "core/precision_model.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace topk::core {

namespace {

void check_args(std::uint64_t rows, int partitions, int k, int top_k) {
  if (rows == 0) {
    throw std::invalid_argument("precision model: rows must be positive");
  }
  if (partitions <= 0 || static_cast<std::uint64_t>(partitions) > rows) {
    throw std::invalid_argument("precision model: partitions must be in [1, rows]");
  }
  if (k <= 0 || top_k <= 0) {
    throw std::invalid_argument("precision model: k and top_k must be positive");
  }
}

/// log C(n, r) via lgamma; requires r in [0, n].
double log_binomial(double n, double r) {
  return std::lgamma(n + 1.0) - std::lgamma(r + 1.0) - std::lgamma(n - r + 1.0);
}

/// E[min(X, k)] for X ~ Hypergeometric(N, m, K): m marked rows (one
/// partition), K draws (the global top-K positions).
double expected_min_hypergeometric(double n_total, double n_marked, int draws,
                                   int k) {
  const int x_max = static_cast<int>(
      std::min<double>(draws, n_marked));
  double expectation = 0.0;
  for (int x = 0; x <= x_max; ++x) {
    if (draws - x > n_total - n_marked) {
      continue;  // impossible configuration
    }
    const double log_p = log_binomial(n_marked, x) +
                         log_binomial(n_total - n_marked, draws - x) -
                         log_binomial(n_total, draws);
    expectation += std::min(x, k) * std::exp(log_p);
  }
  return expectation;
}

}  // namespace

double expected_precision_closed(std::uint64_t rows, int partitions, int k,
                                 int top_k) {
  check_args(rows, partitions, k, top_k);
  // Partition sizes differ by at most one; weight the two sizes by
  // their multiplicities for an exact expectation.
  const std::uint64_t base = rows / static_cast<std::uint64_t>(partitions);
  const std::uint64_t remainder = rows % static_cast<std::uint64_t>(partitions);
  const double n_total = static_cast<double>(rows);

  double retrieved = 0.0;
  if (remainder > 0) {
    retrieved += static_cast<double>(remainder) *
                 expected_min_hypergeometric(
                     n_total, static_cast<double>(base + 1), top_k, k);
  }
  retrieved += static_cast<double>(partitions - remainder) *
               expected_min_hypergeometric(n_total, static_cast<double>(base),
                                           top_k, k);
  return std::min(1.0, retrieved / static_cast<double>(top_k));
}

double expected_precision_averaged(std::uint64_t rows, int partitions, int k,
                                   int top_k) {
  check_args(rows, partitions, k, top_k);
  double sum = 0.0;
  for (int ki = 1; ki <= top_k; ++ki) {
    sum += expected_precision_closed(rows, partitions, k, ki);
  }
  return sum / static_cast<double>(top_k);
}

double expected_precision_mc(std::uint64_t rows, int partitions, int k,
                             int top_k, int trials,
                             util::Xoshiro256& rng) {
  check_args(rows, partitions, k, top_k);
  if (trials <= 0) {
    throw std::invalid_argument("expected_precision_mc: trials must be positive");
  }

  const std::uint64_t base = rows / static_cast<std::uint64_t>(partitions);
  const std::uint64_t remainder = rows % static_cast<std::uint64_t>(partitions);
  std::vector<int> counts(static_cast<std::size_t>(partitions));

  double total_precision = 0.0;
  for (int t = 0; t < trials; ++t) {
    std::fill(counts.begin(), counts.end(), 0);
    for (int i = 0; i < top_k; ++i) {
      // Draw a uniform row and map it to its partition (the first
      // `remainder` partitions hold base+1 rows).  Sampling with
      // replacement is indistinguishable at K << N.
      const std::uint64_t row = rng.bounded(rows);
      const std::uint64_t big_span = remainder * (base + 1);
      std::size_t partition;
      if (row < big_span) {
        partition = static_cast<std::size_t>(row / (base + 1));
      } else {
        partition =
            static_cast<std::size_t>(remainder + (row - big_span) / base);
      }
      ++counts[partition];
    }
    int retrieved = 0;
    for (const int count : counts) {
      retrieved += std::min(count, k);
    }
    total_precision +=
        static_cast<double>(retrieved) / static_cast<double>(top_k);
  }
  return total_precision / static_cast<double>(trials);
}

}  // namespace topk::core
