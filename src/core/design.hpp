// Design-space configuration for the multi-core Top-K SpMV accelerator.
//
// A "design" in the paper is a choice of value arithmetic (V-bit
// unsigned fixed point or float32), core count c (one HBM channel per
// core), per-partition result count k, and the number of finished rows
// r tracked per packet (section IV-C).  Table II evaluates four
// designs: 20-bit, 25-bit and 32-bit fixed point plus float32, all
// with 32 cores, k = 8, and r between 4 and 8.
#pragma once

#include <string>

namespace topk::core {

/// Arithmetic used for matrix values inside BS-CSR packets.
enum class ValueKind {
  kFixed,        ///< unsigned Q1.(V-1) fixed point (paper's main designs)
  kFloat32,      ///< IEEE binary32 (the paper's F32 reference design)
  /// Two's-complement signed fixed point with V total bits (1 sign +
  /// V-1 fractional).  An extension beyond the paper: the published
  /// designs assume non-negative embeddings; signed values support
  /// raw (unshifted) GloVe-style embeddings at the cost of one
  /// magnitude bit.
  kSignedFixed,
};

[[nodiscard]] std::string to_string(ValueKind kind);

/// Full configuration of one accelerator instance.
struct DesignConfig {
  ValueKind value_kind = ValueKind::kFixed;
  /// V: storage bits per matrix value.  Must be 32 for kFloat32.
  int value_bits = 20;
  /// c: number of cores == number of HBM pseudo-channels used.
  int cores = 32;
  /// k: Top-k entries kept per partition (k * cores >= K at query time).
  int k = 8;
  /// r: finished rows the Top-K update stage can absorb per packet.
  /// Rows finishing beyond this budget in a single packet are dropped
  /// by the hardware (section IV-B); see enforce_r_in_encoder.
  int rows_per_packet = 8;
  /// When true the encoder closes packets early so that no packet ever
  /// finishes more than rows_per_packet rows, trading a little stream
  /// padding for a zero-drop guarantee.
  bool enforce_r_in_encoder = false;
  /// HBM packet width in bits (512 on the Alveo U280, section III-B).
  int packet_bits = 512;

  /// Named constructor for the fixed-point designs of Table II.
  [[nodiscard]] static DesignConfig fixed(int value_bits, int cores = 32);
  /// Named constructor for the float32 design of Table II.
  [[nodiscard]] static DesignConfig float32(int cores = 32);
  /// Named constructor for the signed fixed-point extension.
  [[nodiscard]] static DesignConfig signed_fixed(int value_bits, int cores = 32);

  /// Display name following the paper's figures, e.g. "FPGA 20b 32C".
  [[nodiscard]] std::string name() const;

  friend bool operator==(const DesignConfig&, const DesignConfig&) = default;
};

/// Throws std::invalid_argument if the configuration is inconsistent
/// (value_bits outside [2,32], float32 with value_bits != 32,
/// non-positive cores/k/r, packet_bits not a positive multiple of 64).
void validate(const DesignConfig& config);

}  // namespace topk::core
