// Streaming Top-K SpMV kernel over BS-CSR packets (paper Algorithm 1).
//
// Functional model of the 4-stage hardware pipeline of section IV-B:
//   1. per-slot products of packet values with the URAM-resident x;
//   2. per-row aggregation inside the packet (segments delimited by
//      the packet's ptr boundaries);
//   3. cross-packet row book-keeping: a carry accumulator holds the
//      running sum of the row that spans packet boundaries, and the
//      new_row bit resolves whether a packet continues it;
//   4. Top-k scratchpad update with argmin replacement, limited to at
//      most r finished rows per packet (rows beyond the budget are
//      dropped, exactly like the hardware's bounded update stage).
//
// Arithmetic follows the design: unsigned fixed point (exact integer
// products into a Q24.40 accumulator, comparisons on raws) or float32.
// Scores are surfaced as doubles — exact for every fixed-point raw
// that can arise from embedding-scale data.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/bscsr.hpp"

namespace topk::core {

/// One Top-K result: a matrix row index and its (approximate) score.
struct TopKEntry {
  std::uint32_t index = 0;
  double value = 0.0;

  friend bool operator==(const TopKEntry&, const TopKEntry&) = default;
};

/// The repo-wide deterministic Top-K ordering: descending value, with
/// ties broken by ascending row index.  Every backend, every per-core
/// merge and the sharded gather stage sort with this one definition,
/// so per-core, per-shard and whole-matrix results are bit-comparable
/// (regression: tests/test_shard.cpp engineered-ties suite).
[[nodiscard]] constexpr bool topk_entry_before(const TopKEntry& a,
                                               const TopKEntry& b) noexcept {
  if (a.value != b.value) {
    return a.value > b.value;
  }
  return a.index < b.index;
}

/// Function-object form of topk_entry_before for std algorithms.
struct TopKEntryOrder {
  [[nodiscard]] constexpr bool operator()(const TopKEntry& a,
                                          const TopKEntry& b) const noexcept {
    return topk_entry_before(a, b);
  }
};

/// Execution counters reported by the kernel.
struct KernelStats {
  std::uint64_t packets = 0;       ///< packets streamed
  std::uint64_t rows_emitted = 0;  ///< finished rows (incl. dropped)
  std::uint64_t rows_dropped = 0;  ///< rows lost to the r-limit
  /// Maximum rows that finished within a single packet (compare r).
  std::uint64_t max_rows_in_packet = 0;
};

/// Fixed-capacity Top-K scratchpad with hardware argmin-replacement
/// semantics: the first k candidates fill the store; afterwards a
/// candidate with value >= the current minimum replaces it (paper
/// Algorithm 1, step 4).  Comparisons use the score value; ties are
/// resolved in favour of the incumbent-replacing candidate, matching
/// the hardware's >= test.
class TopKScratchpad {
 public:
  /// Throws std::invalid_argument for non-positive k.
  explicit TopKScratchpad(int k);

  void insert(std::uint32_t index, double value);

  [[nodiscard]] int capacity() const noexcept { return k_; }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// Current minimum tracked value (0 when empty).
  [[nodiscard]] double worst() const noexcept;

  /// Extracts entries sorted by descending value (ties by ascending
  /// row index for determinism).
  [[nodiscard]] std::vector<TopKEntry> sorted_descending() const;

 private:
  void refresh_argmin() noexcept;

  int k_;
  std::size_t argmin_ = 0;
  std::vector<TopKEntry> entries_;
};

/// Result of running the kernel over one BS-CSR stream.
struct KernelResult {
  std::vector<TopKEntry> topk;  ///< descending by value
  KernelStats stats;
};

/// Runs the streaming kernel: the top `k` rows of `matrix` by dot
/// product with `x`, tracking at most `rows_per_packet` finished rows
/// per packet.  `x` must have matrix.cols() elements.  Throws
/// std::invalid_argument on size/parameter mismatches and
/// std::runtime_error on malformed streams.
[[nodiscard]] KernelResult run_topk_spmv(const BsCsrMatrix& matrix,
                                         std::span<const float> x, int k,
                                         int rows_per_packet);

/// A query vector that has already been through the URAM quantisation
/// stage.  `raw` holds the Q1.31 (kFixed) or S.31 (kSignedFixed) raws
/// and must be empty for kFloat32 streams, which read `x` directly.
/// Both spans are views: the caller owns the storage.
struct QuantizedQuery {
  std::span<const float> x;
  std::span<const std::uint32_t> raw;
};

/// Quantises `x` once for the given arithmetic — the per-query
/// amortisation hook: a multi-core accelerator quantises the vector a
/// single time and streams every core with the same raws, instead of
/// re-deriving them per core.  `raw_storage` receives the raws (left
/// empty for kFloat32) and must stay alive as long as the returned
/// views are used.
[[nodiscard]] QuantizedQuery quantize_query(
    std::span<const float> x, ValueKind kind,
    std::vector<std::uint32_t>& raw_storage);

/// Kernel entry point over a pre-quantised query.  Bit-identical to
/// the span-of-float overload (quantisation is element-wise and
/// deterministic); throws std::invalid_argument if the raw span's
/// presence or size does not match the stream's value kind.
[[nodiscard]] KernelResult run_topk_spmv(const BsCsrMatrix& matrix,
                                         const QuantizedQuery& query, int k,
                                         int rows_per_packet);

/// Quantises a dense query vector to the Q1.31 raws the URAM stage
/// stores (section IV-A).  Exposed so callers can amortise the
/// conversion across partitions.
[[nodiscard]] std::vector<std::uint32_t> quantize_vector(std::span<const float> x);

/// Signed variant for kSignedFixed designs: two's complement S.31
/// raws (one sign bit, 31 fractional bits).
[[nodiscard]] std::vector<std::uint32_t> quantize_vector_signed(
    std::span<const float> x);

}  // namespace topk::core
