#include "core/bscsr.hpp"

#include <bit>
#include <stdexcept>

#include "util/bitio.hpp"

namespace topk::core {

namespace {

/// Encodes one value to its raw wire representation.
std::uint32_t encode_value(float value, ValueKind kind,
                           const fixed::FixedFormat& format) noexcept {
  switch (kind) {
    case ValueKind::kFloat32:
      return std::bit_cast<std::uint32_t>(value);
    case ValueKind::kSignedFixed:
      return fixed::quantize_signed(static_cast<double>(value), format);
    case ValueKind::kFixed:
      break;
  }
  return fixed::quantize(static_cast<double>(value), format);
}

/// Incrementally builds packets and flushes them to a BitWriter.
class PacketBuilder {
 public:
  PacketBuilder(const PacketLayout& layout, util::BitWriter& writer,
                EncodeStats& stats)
      : layout_(layout), writer_(writer), stats_(stats) {
    idx_.reserve(static_cast<std::size_t>(layout.capacity));
    val_.reserve(static_cast<std::size_t>(layout.capacity));
    boundaries_.reserve(static_cast<std::size_t>(layout.capacity));
  }

  [[nodiscard]] bool empty() const noexcept { return idx_.empty(); }
  [[nodiscard]] bool full() const noexcept {
    return idx_.size() == static_cast<std::size_t>(layout_.capacity);
  }
  [[nodiscard]] std::size_t boundary_count() const noexcept {
    return boundaries_.size();
  }

  /// Adds one entry.  `starts_new_row` must be true iff this entry is
  /// the first of its row; `ends_row` iff it is the last of its row.
  void add(std::uint32_t col, std::uint32_t raw, bool starts_new_row,
           bool ends_row) {
    if (empty()) {
      new_row_ = starts_new_row;
    }
    idx_.push_back(col);
    val_.push_back(raw);
    if (ends_row) {
      boundaries_.push_back(static_cast<std::uint32_t>(idx_.size()));
    }
  }

  /// Writes the packet (padding unused slots with zeros) and resets.
  void flush() {
    if (empty()) {
      return;
    }
    const auto capacity = static_cast<std::size_t>(layout_.capacity);
    stats_.padded_slots += capacity - idx_.size();
    stats_.max_rows_in_packet =
        std::max<std::uint64_t>(stats_.max_rows_in_packet, boundaries_.size());
    ++stats_.packets;

    writer_.append(new_row_ ? 1 : 0, 1);
    for (std::size_t i = 0; i < capacity; ++i) {
      writer_.append(i < boundaries_.size() ? boundaries_[i] : 0, layout_.ptr_bits);
    }
    for (std::size_t i = 0; i < capacity; ++i) {
      writer_.append(i < idx_.size() ? idx_[i] : 0, layout_.idx_bits);
    }
    for (std::size_t i = 0; i < capacity; ++i) {
      writer_.append(i < val_.size() ? val_[i] : 0, layout_.val_bits);
    }
    writer_.align_to(layout_.packet_bits);

    idx_.clear();
    val_.clear();
    boundaries_.clear();
    new_row_ = true;
  }

 private:
  PacketLayout layout_;
  util::BitWriter& writer_;
  EncodeStats& stats_;
  std::vector<std::uint32_t> idx_;
  std::vector<std::uint32_t> val_;
  std::vector<std::uint32_t> boundaries_;
  bool new_row_ = true;
};

}  // namespace

BsCsrMatrix encode_bscsr(const sparse::Csr& matrix, const PacketLayout& layout,
                         ValueKind kind, const EncodeOptions& options) {
  if (matrix.rows() == 0) {
    throw std::invalid_argument("encode_bscsr: matrix must have rows");
  }
  if (matrix.cols() > (std::uint64_t{1} << layout.idx_bits)) {
    throw std::invalid_argument("encode_bscsr: idx_bits too small for cols");
  }
  if (kind == ValueKind::kFloat32 && layout.val_bits != 32) {
    throw std::invalid_argument("encode_bscsr: float32 requires val_bits == 32");
  }
  if (options.max_rows_per_packet < 0) {
    throw std::invalid_argument("encode_bscsr: negative max_rows_per_packet");
  }

  const fixed::FixedFormat format{layout.val_bits, 1};
  if (kind == ValueKind::kFixed) {
    fixed::validate(format);
  }

  BsCsrMatrix out;
  out.layout_ = layout;
  out.value_kind_ = kind;
  out.rows_ = matrix.rows();
  out.cols_ = matrix.cols();
  out.source_nnz_ = matrix.nnz();

  util::BitWriter writer;
  PacketBuilder builder(layout, writer, out.stats_);
  std::uint64_t stored = 0;

  for (std::uint32_t r = 0; r < matrix.rows(); ++r) {
    const auto cols = matrix.row_cols(r);
    const auto vals = matrix.row_values(r);
    const std::size_t row_nnz = cols.size();

    if (row_nnz == 0) {
      // Placeholder entry so the row still produces a boundary and the
      // decoder's row counter stays aligned (section III-B).
      builder.add(0, 0, /*starts_new_row=*/true, /*ends_row=*/true);
      ++out.stats_.placeholder_entries;
      ++stored;
      if (builder.full() ||
          (options.max_rows_per_packet > 0 &&
           builder.boundary_count() >=
               static_cast<std::size_t>(options.max_rows_per_packet))) {
        builder.flush();
      }
      continue;
    }

    for (std::size_t i = 0; i < row_nnz; ++i) {
      const bool ends_row = (i + 1 == row_nnz);
      builder.add(cols[i], encode_value(vals[i], kind, format),
                  /*starts_new_row=*/i == 0, ends_row);
      ++stored;
      if (builder.full() ||
          (options.max_rows_per_packet > 0 && ends_row &&
           builder.boundary_count() >=
               static_cast<std::size_t>(options.max_rows_per_packet))) {
        builder.flush();
      }
    }
  }
  builder.flush();

  out.stored_entries_ = stored;
  out.words_ = writer.take_words();
  out.num_packets_ = out.stats_.packets;
  return out;
}

BsCsrMatrix BsCsrMatrix::from_parts(const PacketLayout& layout, ValueKind kind,
                                    std::uint32_t rows, std::uint32_t cols,
                                    std::uint64_t source_nnz,
                                    std::uint64_t stored_entries,
                                    std::vector<std::uint64_t> words,
                                    const EncodeStats& stats) {
  if (rows == 0 || cols == 0) {
    throw std::invalid_argument("BsCsrMatrix::from_parts: empty shape");
  }
  if (layout.capacity <= 0 || layout.packet_bits <= 0 ||
      layout.packet_bits % 64 != 0 || layout.used_bits() > layout.packet_bits) {
    throw std::invalid_argument("BsCsrMatrix::from_parts: bad layout");
  }
  if (kind == ValueKind::kFloat32 && layout.val_bits != 32) {
    throw std::invalid_argument(
        "BsCsrMatrix::from_parts: float32 requires 32-bit values");
  }
  const auto words_per_packet =
      static_cast<std::uint64_t>(layout.words_per_packet());
  if (words.size() != stats.packets * words_per_packet) {
    throw std::invalid_argument(
        "BsCsrMatrix::from_parts: word count does not match packet count");
  }
  if (stored_entries !=
          stats.packets * static_cast<std::uint64_t>(layout.capacity) -
              stats.padded_slots ||
      stored_entries < source_nnz) {
    throw std::invalid_argument(
        "BsCsrMatrix::from_parts: inconsistent entry counts");
  }

  BsCsrMatrix out;
  out.layout_ = layout;
  out.value_kind_ = kind;
  out.rows_ = rows;
  out.cols_ = cols;
  out.source_nnz_ = source_nnz;
  out.stored_entries_ = stored_entries;
  out.num_packets_ = stats.packets;
  out.words_ = std::move(words);
  out.stats_ = stats;
  return out;
}

PacketCursor::PacketCursor(const BsCsrMatrix& matrix)
    : matrix_(&matrix), total_(matrix.num_packets()) {
  const auto capacity = static_cast<std::size_t>(matrix.layout().capacity);
  boundaries_.reserve(capacity);
  idx_.resize(capacity);
  val_.resize(capacity);
}

PacketView PacketCursor::next() {
  if (done()) {
    throw std::out_of_range("PacketCursor::next: past end of stream");
  }
  const PacketLayout& layout = matrix_->layout();
  const auto capacity = static_cast<std::size_t>(layout.capacity);
  util::BitReader reader(matrix_->words());
  std::size_t pos = static_cast<std::size_t>(next_packet_) *
                    static_cast<std::size_t>(layout.packet_bits);

  PacketView view;
  view.new_row = reader.read(pos, 1) != 0;
  pos += 1;

  boundaries_.clear();
  std::uint32_t prev = 0;
  bool in_padding = false;
  for (std::size_t i = 0; i < capacity; ++i) {
    const auto b = static_cast<std::uint32_t>(reader.read(pos, layout.ptr_bits));
    pos += static_cast<std::size_t>(layout.ptr_bits);
    if (b == 0) {
      in_padding = true;
      continue;
    }
    if (in_padding || b <= prev || b > capacity) {
      throw std::runtime_error("PacketCursor: malformed ptr field");
    }
    boundaries_.push_back(b);
    prev = b;
  }
  for (std::size_t i = 0; i < capacity; ++i) {
    idx_[i] = static_cast<std::uint32_t>(reader.read(pos, layout.idx_bits));
    pos += static_cast<std::size_t>(layout.idx_bits);
  }
  for (std::size_t i = 0; i < capacity; ++i) {
    val_[i] = static_cast<std::uint32_t>(reader.read(pos, layout.val_bits));
    pos += static_cast<std::size_t>(layout.val_bits);
  }

  view.boundaries = boundaries_;
  view.idx = std::span<const std::uint32_t>(idx_);
  view.val_raw = std::span<const std::uint32_t>(val_);
  ++next_packet_;
  return view;
}

sparse::Csr decode_bscsr(const BsCsrMatrix& matrix) {
  const fixed::FixedFormat format = matrix.value_format();

  std::vector<std::uint64_t> row_ptr;
  row_ptr.reserve(static_cast<std::size_t>(matrix.rows()) + 1);
  row_ptr.push_back(0);
  std::vector<std::uint32_t> col_idx;
  std::vector<float> values;
  col_idx.reserve(matrix.stored_entries());
  values.reserve(matrix.stored_entries());

  // Entries of the (possibly) open row that ran past the last boundary
  // of the previous packet; discarded as padding if the next packet
  // starts a new row.
  std::vector<std::uint32_t> pending_cols;
  std::vector<float> pending_vals;

  const auto decode_value = [&](std::uint32_t raw) -> float {
    switch (matrix.value_kind()) {
      case ValueKind::kFloat32:
        return std::bit_cast<float>(raw);
      case ValueKind::kSignedFixed:
        return static_cast<float>(fixed::dequantize_signed(raw, format));
      case ValueKind::kFixed:
        break;
    }
    return static_cast<float>(fixed::dequantize(raw, format));
  };

  PacketCursor cursor(matrix);
  while (!cursor.done()) {
    const PacketView packet = cursor.next();
    if (packet.new_row) {
      // Anything buffered was padding after the previous packet's last
      // boundary.
      pending_cols.clear();
      pending_vals.clear();
    }
    std::size_t pos = 0;
    for (const std::uint32_t boundary : packet.boundaries) {
      for (std::size_t i = pos; i < boundary; ++i) {
        pending_cols.push_back(packet.idx[i]);
        pending_vals.push_back(decode_value(packet.val_raw[i]));
      }
      pos = boundary;
      col_idx.insert(col_idx.end(), pending_cols.begin(), pending_cols.end());
      values.insert(values.end(), pending_vals.begin(), pending_vals.end());
      row_ptr.push_back(col_idx.size());
      pending_cols.clear();
      pending_vals.clear();
    }
    for (std::size_t i = pos; i < packet.idx.size(); ++i) {
      pending_cols.push_back(packet.idx[i]);
      pending_vals.push_back(decode_value(packet.val_raw[i]));
    }
  }

  if (row_ptr.size() != static_cast<std::size_t>(matrix.rows()) + 1) {
    throw std::runtime_error("decode_bscsr: row count mismatch (corrupt stream)");
  }
  return sparse::Csr::from_parts(matrix.rows(), matrix.cols(), std::move(row_ptr),
                                 std::move(col_idx), std::move(values));
}

}  // namespace topk::core
