// Expected precision of the partitioned Top-K approximation
// (paper section III-A, Equation 1, Table I).
//
// If the K global top rows land uniformly at random across c row
// partitions and each partition surfaces only its local top k, a
// partition holding x > k of the global top-K loses x - k of them.
// With X ~ Hypergeometric(N, N/c, K) counting top-K rows in one
// partition, the expected number retrieved is c * E[min(X, k)] and the
// expected precision is that divided by K.  The paper estimates the
// same quantity with a Monte Carlo simulation; both are provided and
// cross-validated in the tests.
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace topk::core {

/// Closed-form expected precision via the hypergeometric occupancy
/// count.  Uses log-gamma for the binomials, exact summation over the
/// (tiny) support.  Throws std::invalid_argument for k <= 0, K <= 0,
/// c <= 0, or c > N.
[[nodiscard]] double expected_precision_closed(std::uint64_t rows, int partitions,
                                               int k, int top_k);

/// Paper-style estimate averaged over Ki = 1..K (the form printed as
/// Equation 1 averages the per-K precision over all prefixes).
[[nodiscard]] double expected_precision_averaged(std::uint64_t rows,
                                                 int partitions, int k,
                                                 int top_k);

/// Monte Carlo estimate: `trials` random assignments of the top_k
/// global rows to partitions (multinomial with the exact floor/ceil
/// partition sizes), averaging sum_i min(count_i, k) / K.
[[nodiscard]] double expected_precision_mc(std::uint64_t rows, int partitions,
                                           int k, int top_k, int trials,
                                           util::Xoshiro256& rng);

}  // namespace topk::core
