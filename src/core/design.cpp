#include "core/design.hpp"

#include <stdexcept>

namespace topk::core {

std::string to_string(ValueKind kind) {
  switch (kind) {
    case ValueKind::kFixed:
      return "fixed";
    case ValueKind::kFloat32:
      return "float32";
    case ValueKind::kSignedFixed:
      return "signed-fixed";
  }
  return "unknown";
}

DesignConfig DesignConfig::fixed(int value_bits, int cores) {
  DesignConfig config;
  config.value_kind = ValueKind::kFixed;
  config.value_bits = value_bits;
  config.cores = cores;
  validate(config);
  return config;
}

DesignConfig DesignConfig::float32(int cores) {
  DesignConfig config;
  config.value_kind = ValueKind::kFloat32;
  config.value_bits = 32;
  config.cores = cores;
  validate(config);
  return config;
}

DesignConfig DesignConfig::signed_fixed(int value_bits, int cores) {
  DesignConfig config;
  config.value_kind = ValueKind::kSignedFixed;
  config.value_bits = value_bits;
  config.cores = cores;
  validate(config);
  return config;
}

std::string DesignConfig::name() const {
  if (value_kind == ValueKind::kFloat32) {
    return "FPGA F32 " + std::to_string(cores) + "C";
  }
  if (value_kind == ValueKind::kSignedFixed) {
    return "FPGA s" + std::to_string(value_bits) + "b " +
           std::to_string(cores) + "C";
  }
  return "FPGA " + std::to_string(value_bits) + "b " + std::to_string(cores) + "C";
}

void validate(const DesignConfig& config) {
  if (config.value_bits < 2 || config.value_bits > 32) {
    throw std::invalid_argument("DesignConfig: value_bits must be in [2, 32]");
  }
  if (config.value_kind == ValueKind::kFloat32 && config.value_bits != 32) {
    throw std::invalid_argument("DesignConfig: float32 requires value_bits == 32");
  }
  if (config.cores <= 0) {
    throw std::invalid_argument("DesignConfig: cores must be positive");
  }
  if (config.k <= 0) {
    throw std::invalid_argument("DesignConfig: k must be positive");
  }
  if (config.rows_per_packet <= 0) {
    throw std::invalid_argument("DesignConfig: rows_per_packet must be positive");
  }
  if (config.packet_bits <= 0 || config.packet_bits % 64 != 0) {
    throw std::invalid_argument(
        "DesignConfig: packet_bits must be a positive multiple of 64");
  }
}

}  // namespace topk::core
