// Top-level accelerator API: the multi-core approximate Top-K SpMV
// device of section IV, as a functional simulator.
//
// Construction partitions the matrix across the configured cores,
// encodes each partition to BS-CSR, and precomputes the packet layout
// from the design's value width and the matrix's column count.
// query() streams every core's packets through the kernel and merges
// the per-core top-k lists — exactly the host-visible behaviour of the
// FPGA design.  Timing is *not* computed here (there is no FPGA): the
// hbmsim library turns the per-core packet counts reported in
// ExecutionStats into modelled wall-clock times.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/bscsr.hpp"
#include "core/design.hpp"
#include "core/partitioner.hpp"
#include "core/topk_spmv.hpp"
#include "sparse/csr.hpp"

namespace topk::core {

/// Per-query execution counters across all cores.
struct ExecutionStats {
  std::uint64_t total_packets = 0;
  /// Packets streamed by the busiest core — the quantity that bounds
  /// the (fully parallel) device latency.
  std::uint64_t max_core_packets = 0;
  std::uint64_t rows_dropped = 0;
  std::uint64_t rows_emitted = 0;
  /// Most rows finished within a single packet on any core — compare
  /// against the design's r budget (rows_per_packet) to see how close
  /// the stream comes to dropping rows.
  std::uint64_t max_rows_in_packet = 0;
};

/// Result of one query.
struct QueryResult {
  std::vector<TopKEntry> entries;  ///< descending by value, size <= K
  ExecutionStats stats;
};

/// Host-side execution options.  On the FPGA the c cores run
/// concurrently by construction; the software simulator reproduces
/// that on the shared persistent pool (util::shared_pool()) with
/// dynamic work claiming over the per-core streams.
struct QueryOptions {
  /// Maximum concurrency for one query's core streams (0 = hardware
  /// concurrency, 1 = sequential on the calling thread).
  int threads = 1;
};

/// The accelerator instance.  Thread-compatible: concurrent query()
/// calls on the same instance are safe (all state is read-only after
/// construction).
class TopKAccelerator {
 public:
  /// Builds the device image.  Throws std::invalid_argument if the
  /// configuration is invalid, the matrix is empty, or it has fewer
  /// rows than cores.
  TopKAccelerator(const sparse::Csr& matrix, const DesignConfig& config);

  /// Reassembles an accelerator from previously persisted per-core
  /// streams without re-running the encoder — the warm-restart path of
  /// persist::load_deployment.  The partitions must be contiguous from
  /// row 0 with one stream each, every stream's shape/kind/layout must
  /// agree with its partition and the design, and the stream count
  /// must equal the design's core count.  Throws std::invalid_argument
  /// on any inconsistency.
  [[nodiscard]] static TopKAccelerator from_parts(
      const DesignConfig& config, std::vector<Partition> partitions,
      std::vector<BsCsrMatrix> streams);

  /// Returns the approximate top `top_k` rows by dot product with `x`.
  /// Requires top_k <= k * cores (the merge can surface at most k
  /// candidates per core — the paper's k*c >= K constraint) and
  /// x.size() == cols; throws std::invalid_argument otherwise.
  [[nodiscard]] QueryResult query(std::span<const float> x, int top_k,
                                  const QueryOptions& options = {}) const;

  /// Runs a batch of queries (each a cols()-sized vector), spreading
  /// whole queries across `options.threads` workers — the throughput-
  /// oriented host loop of a real-time retrieval service.  Results
  /// align with the input order.  Throws like query().
  [[nodiscard]] std::vector<QueryResult> query_batch(
      const std::vector<std::vector<float>>& queries, int top_k,
      const QueryOptions& options = {}) const;

  /// Validates one query without running anything: `x` must have
  /// cols() elements and top_k must lie in (0, k * cores].  Throws
  /// std::invalid_argument otherwise.  query(), validate_batch() and
  /// the index/serving adapters all funnel through this single check,
  /// so the bounds — and the error messages — cannot drift apart.
  void validate_query(std::span<const float> x, int top_k) const;

  /// Batch variant of validate_query(): every vector is checked
  /// against cols() and top_k against (0, k * cores].
  void validate_batch(const std::vector<std::vector<float>>& queries,
                      int top_k) const;

  [[nodiscard]] const DesignConfig& config() const noexcept { return config_; }
  [[nodiscard]] const PacketLayout& layout() const noexcept { return layout_; }
  [[nodiscard]] const std::vector<Partition>& partitions() const noexcept {
    return partitions_;
  }
  [[nodiscard]] const std::vector<BsCsrMatrix>& core_streams() const noexcept {
    return streams_;
  }

  [[nodiscard]] std::uint32_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::uint32_t cols() const noexcept { return cols_; }

  /// Total device-memory footprint of all core streams, in bytes.
  [[nodiscard]] std::uint64_t stream_bytes() const noexcept;
  /// Packets held by the busiest core (bounds query latency).
  [[nodiscard]] std::uint64_t max_core_packets() const noexcept;

 private:
  TopKAccelerator() = default;  // for from_parts

  void check_vector(std::span<const float> x) const;
  void check_top_k(int top_k) const;

  DesignConfig config_;
  PacketLayout layout_;
  std::uint32_t rows_ = 0;
  std::uint32_t cols_ = 0;
  std::vector<Partition> partitions_;
  std::vector<BsCsrMatrix> streams_;
};

}  // namespace topk::core
