// "Optimized COO" — the middle format of Figure 3, implemented as a
// real codec so the BS-CSR comparison is measured, not hypothetical.
//
// Like BS-CSR it packs bit-reduced fields into fixed-size HBM packets,
// but it keeps an explicit row index per non-zero (ceil(log2 N) bits)
// instead of BS-CSR's per-packet ptr array.  That makes every packet
// trivially self-describing — no new_row flag, no boundary decoding —
// at the price of idx-sized redundancy per entry: at V = 20 and
// M = 1024 a 512-bit packet holds 8 entries versus BS-CSR's 15
// (Figure 3's middle row: "496 bit, 8 values").
//
// Unused slots in the final packet repeat the last row index with a
// zero value, so they aggregate to nothing.  Rows with no entries
// simply never appear (a COO property); the kernel therefore only
// surfaces rows that own at least one non-zero.
#pragma once

#include <cstdint>
#include <vector>

#include "core/design.hpp"
#include "core/topk_spmv.hpp"
#include "sparse/csr.hpp"

namespace topk::core {

/// Packet geometry for the optimized COO layout.
struct OptCooLayout {
  int packet_bits = 512;
  int row_bits = 0;  ///< ceil(log2 N)
  int col_bits = 0;  ///< ceil(log2 M)
  int val_bits = 0;  ///< V
  int capacity = 0;  ///< entries per packet

  [[nodiscard]] constexpr int bits_per_entry() const noexcept {
    return row_bits + col_bits + val_bits;
  }
  [[nodiscard]] constexpr int bytes_per_packet() const noexcept {
    return packet_bits / 8;
  }
  [[nodiscard]] constexpr double nnz_per_byte() const noexcept {
    return static_cast<double>(capacity) / bytes_per_packet();
  }

  /// Solves capacity = floor(packet_bits / bits_per_entry).  Throws
  /// std::invalid_argument if a single entry does not fit or any
  /// argument is out of range.
  [[nodiscard]] static OptCooLayout solve(std::uint32_t rows, std::uint32_t cols,
                                          int val_bits, int packet_bits = 512);
};

/// An encoded optimized-COO stream.
class OptCooMatrix {
 public:
  OptCooMatrix() = default;

  [[nodiscard]] const OptCooLayout& layout() const noexcept { return layout_; }
  [[nodiscard]] ValueKind value_kind() const noexcept { return value_kind_; }
  [[nodiscard]] std::uint32_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::uint32_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::uint64_t nnz() const noexcept { return nnz_; }
  [[nodiscard]] std::uint64_t num_packets() const noexcept { return num_packets_; }
  [[nodiscard]] std::uint64_t stream_bytes() const noexcept {
    return num_packets_ * static_cast<std::uint64_t>(layout_.bytes_per_packet());
  }
  [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept {
    return words_;
  }

  friend OptCooMatrix encode_opt_coo(const sparse::Csr&, const OptCooLayout&,
                                     ValueKind);

 private:
  OptCooLayout layout_;
  ValueKind value_kind_ = ValueKind::kFixed;
  std::uint32_t rows_ = 0;
  std::uint32_t cols_ = 0;
  std::uint64_t nnz_ = 0;
  std::uint64_t num_packets_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Encodes a CSR matrix (row-major entry order) into the layout.
/// Value encoding follows `kind` exactly as in BS-CSR.  Throws
/// std::invalid_argument on layout/matrix mismatches or an empty
/// matrix.
[[nodiscard]] OptCooMatrix encode_opt_coo(const sparse::Csr& matrix,
                                          const OptCooLayout& layout,
                                          ValueKind kind);

/// Streaming Top-K SpMV over an optimized-COO stream — the baseline
/// kernel the roofline compares BS-CSR against.  Only rows owning at
/// least one non-zero can appear in the result.  Throws
/// std::invalid_argument on size mismatches.
[[nodiscard]] KernelResult run_topk_spmv_opt_coo(const OptCooMatrix& matrix,
                                                 std::span<const float> x,
                                                 int k);

}  // namespace topk::core
