#include "fixed/half.hpp"

#include <bit>
#include <cstring>

namespace topk::fixed {

namespace {
constexpr std::uint32_t kF32SignMask = 0x80000000u;
constexpr int kF32ExpBias = 127;
constexpr int kF16ExpBias = 15;
}  // namespace

std::uint16_t float_to_half_bits(float value) noexcept {
  const auto f = std::bit_cast<std::uint32_t>(value);
  const std::uint16_t sign = static_cast<std::uint16_t>((f & kF32SignMask) >> 16);
  const std::uint32_t abs = f & ~kF32SignMask;
  const int exponent = static_cast<int>(abs >> 23);
  const std::uint32_t mantissa = abs & 0x7FFFFFu;

  if (exponent == 0xFF) {
    // Inf / NaN: keep a non-zero mantissa for NaN (quiet bit set).
    const std::uint16_t payload =
        mantissa != 0 ? static_cast<std::uint16_t>(0x200 | (mantissa >> 13)) : 0;
    return static_cast<std::uint16_t>(sign | 0x7C00 | payload);
  }

  // Unbiased exponent of the input.
  const int e = exponent - kF32ExpBias;
  if (e > 15) {
    // Overflow -> infinity.
    return static_cast<std::uint16_t>(sign | 0x7C00);
  }

  if (e >= -14) {
    // Normal half range.  Round the 23-bit mantissa to 10 bits,
    // round-to-nearest-even on the dropped 13 bits.
    std::uint32_t m = mantissa;
    std::uint32_t rounded = m >> 13;
    const std::uint32_t rest = m & 0x1FFFu;
    if (rest > 0x1000u || (rest == 0x1000u && (rounded & 1u))) {
      ++rounded;
    }
    std::uint32_t half_exp = static_cast<std::uint32_t>(e + kF16ExpBias);
    if (rounded == 0x400u) {  // mantissa overflowed into the exponent
      rounded = 0;
      ++half_exp;
      if (half_exp >= 31) {
        return static_cast<std::uint16_t>(sign | 0x7C00);
      }
    }
    return static_cast<std::uint16_t>(sign | (half_exp << 10) | rounded);
  }

  if (e >= -25) {
    // Subnormal half: shift the implicit-1 mantissa right.
    std::uint32_t m = mantissa | 0x800000u;          // implicit leading 1
    const int shift = -e - 14 + 13;                  // 14..24
    const std::uint32_t rounded_down = m >> shift;
    const std::uint32_t rest = m & ((1u << shift) - 1);
    const std::uint32_t halfway = 1u << (shift - 1);
    std::uint32_t result = rounded_down;
    if (rest > halfway || (rest == halfway && (result & 1u))) {
      ++result;
    }
    return static_cast<std::uint16_t>(sign | result);
  }

  // Underflow to signed zero.
  return sign;
}

float half_bits_to_float(std::uint16_t bits) noexcept {
  const std::uint32_t sign = static_cast<std::uint32_t>(bits & 0x8000u) << 16;
  const std::uint32_t exponent = (bits >> 10) & 0x1Fu;
  const std::uint32_t mantissa = bits & 0x3FFu;

  std::uint32_t f;
  if (exponent == 0) {
    if (mantissa == 0) {
      f = sign;  // signed zero
    } else {
      // Subnormal: normalise by shifting the mantissa up.
      int e = -1;
      std::uint32_t m = mantissa;
      do {
        ++e;
        m <<= 1;
      } while ((m & 0x400u) == 0);
      const std::uint32_t exp32 =
          static_cast<std::uint32_t>(kF32ExpBias - kF16ExpBias - e);
      f = sign | (exp32 << 23) | ((m & 0x3FFu) << 13);
    }
  } else if (exponent == 31) {
    f = sign | 0x7F800000u | (mantissa << 13);  // inf / NaN
  } else {
    const std::uint32_t exp32 = exponent + (kF32ExpBias - kF16ExpBias);
    f = sign | (exp32 << 23) | (mantissa << 13);
  }
  return std::bit_cast<float>(f);
}

}  // namespace topk::fixed
