#include "fixed/fixed_point.hpp"

#include <algorithm>
#include <cmath>

namespace topk::fixed {

double FixedFormat::resolution() const noexcept {
  return std::ldexp(1.0, -frac_bits());
}

void validate(const FixedFormat& format) {
  if (format.total_bits < 2 || format.total_bits > 32) {
    throw std::invalid_argument("FixedFormat: total_bits must be in [2, 32]");
  }
  if (format.int_bits < 0 || format.int_bits >= format.total_bits) {
    throw std::invalid_argument("FixedFormat: int_bits must be in [0, total_bits)");
  }
}

std::uint32_t quantize(double value, const FixedFormat& format) noexcept {
  if (!(value > 0.0)) {  // also catches NaN
    return 0;
  }
  const double scaled = std::ldexp(value, format.frac_bits());
  const double rounded = std::nearbyint(scaled);
  const double max_raw = static_cast<double>(format.max_raw());
  if (rounded >= max_raw) {
    return format.max_raw();
  }
  return static_cast<std::uint32_t>(rounded);
}

double dequantize(std::uint32_t raw, const FixedFormat& format) noexcept {
  return std::ldexp(static_cast<double>(raw), -format.frac_bits());
}

std::uint32_t quantize_signed(double value, const FixedFormat& format) noexcept {
  if (std::isnan(value)) {
    return 0;
  }
  const double scaled = std::nearbyint(std::ldexp(value, format.frac_bits()));
  const double max_raw =
      std::ldexp(1.0, format.total_bits - 1) - 1.0;  // 2^(V-1) - 1
  const double min_raw = -std::ldexp(1.0, format.total_bits - 1);
  const double clamped = std::clamp(scaled, min_raw, max_raw);
  const auto as_int = static_cast<std::int64_t>(clamped);
  const std::uint32_t mask = format.total_bits >= 32
                                 ? 0xFFFFFFFFu
                                 : ((std::uint32_t{1} << format.total_bits) - 1);
  return static_cast<std::uint32_t>(as_int) & mask;
}

double dequantize_signed(std::uint32_t raw, const FixedFormat& format) noexcept {
  return std::ldexp(static_cast<double>(sign_extend(raw, format.total_bits)),
                    -format.frac_bits());
}

double FixedAccumulator::to_double() const noexcept {
  return std::ldexp(static_cast<double>(raw_), -kAccFracBits);
}

}  // namespace topk::fixed
