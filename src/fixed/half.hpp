// IEEE 754 binary16 ("half") software emulation.
//
// The paper compares its fixed-point FPGA designs against a GPU
// running cuSPARSE with half-precision storage (Figure 7, "GPU F16").
// No GPU is available here, so the baseline's numerics are reproduced
// in software: values are stored as binary16 and, in the strictest
// mode, also accumulated in binary16 — every add rounds to nearest
// even, exactly what a Tensor-Core-free fp16 SpMV accumulator does.
#pragma once

#include <cstdint>

namespace topk::fixed {

/// Converts a float to IEEE binary16 bits (round to nearest even,
/// overflow to infinity, subnormal and NaN preserving).
[[nodiscard]] std::uint16_t float_to_half_bits(float value) noexcept;

/// Converts IEEE binary16 bits to float (exact).
[[nodiscard]] float half_bits_to_float(std::uint16_t bits) noexcept;

/// Value type wrapping binary16 with float-mediated arithmetic: every
/// operation computes in float and rounds the result back to half,
/// which is bit-equivalent to native fp16 arithmetic for + and * (the
/// double rounding is benign because float has more than 2x the
/// precision of half).
class Half {
 public:
  constexpr Half() noexcept = default;

  [[nodiscard]] static Half from_float(float value) noexcept {
    Half h;
    h.bits_ = float_to_half_bits(value);
    return h;
  }

  [[nodiscard]] static constexpr Half from_bits(std::uint16_t bits) noexcept {
    Half h;
    h.bits_ = bits;
    return h;
  }

  [[nodiscard]] float to_float() const noexcept { return half_bits_to_float(bits_); }
  [[nodiscard]] constexpr std::uint16_t bits() const noexcept { return bits_; }

  friend Half operator+(Half a, Half b) noexcept {
    return from_float(a.to_float() + b.to_float());
  }
  friend Half operator*(Half a, Half b) noexcept {
    return from_float(a.to_float() * b.to_float());
  }
  friend bool operator<(Half a, Half b) noexcept {
    return a.to_float() < b.to_float();
  }
  friend bool operator==(Half a, Half b) noexcept {
    return a.to_float() == b.to_float();
  }

 private:
  std::uint16_t bits_ = 0;
};

}  // namespace topk::fixed
