// Unsigned fixed-point arithmetic mirroring the paper's datapath.
//
// The FPGA designs store matrix values as unsigned Q1.(V-1) fixed point
// with V in {20, 25, 32} (paper Table II: Q1.19, Q1.24, Q1.31) and the
// query vector x as Q1.31 in URAM.  Dot products are computed as exact
// integer products accumulated into a wide fixed accumulator; Top-K
// comparisons happen on accumulator raws.  This header provides:
//
//  * UFixed<TotalBits, IntBits> — compile-time format, used by tests
//    and by code that wants a concrete type;
//  * FixedFormat / quantize / dequantize — runtime-V quantisation used
//    by the BS-CSR encoder (V is a design parameter swept by benches);
//  * FixedAccumulator — the Q24.40 accumulator used by the streaming
//    kernel; wide enough that summing any realistic embedding row
//    (values <= 1, hundreds of terms) cannot overflow.
#pragma once

#include <compare>
#include <cstdint>
#include <stdexcept>

namespace topk::fixed {

/// Number of fractional bits in the kernel's accumulator.  Products of
/// Q1.(V-1) x Q1.31 raws are shifted down to this precision before
/// accumulation; 40 fractional bits keep quantisation error far below
/// the V-bit input quantisation while leaving 24 integer bits of
/// headroom in a 64-bit register.
inline constexpr int kAccFracBits = 40;

/// Fractional bits used for the dense query vector x (Q1.31, the worst
/// case URAM layout described in section IV-A of the paper).
inline constexpr int kVectorFracBits = 31;

/// Runtime description of an unsigned fixed-point format.
struct FixedFormat {
  int total_bits = 32;  ///< V: total storage bits (2..32).
  int int_bits = 1;     ///< integer bits (the paper always uses 1).

  [[nodiscard]] constexpr int frac_bits() const noexcept {
    return total_bits - int_bits;
  }
  /// Largest representable raw value.
  [[nodiscard]] constexpr std::uint32_t max_raw() const noexcept {
    return total_bits >= 32 ? 0xFFFFFFFFu
                            : ((std::uint32_t{1} << total_bits) - 1);
  }
  /// Resolution (value of one LSB).
  [[nodiscard]] double resolution() const noexcept;

  friend constexpr bool operator==(const FixedFormat&, const FixedFormat&) = default;
};

/// Validates a format for use as a BS-CSR value type.  Throws
/// std::invalid_argument for totals outside [2, 32] or int_bits outside
/// [0, total).
void validate(const FixedFormat& format);

/// Quantises `value` (clamped to the representable range [0, 2^int -
/// lsb]) to raw storage with round-to-nearest.  Negative inputs clamp
/// to zero: the paper's designs are unsigned (embeddings are
/// non-negative after the sparsification used in section V).
[[nodiscard]] std::uint32_t quantize(double value, const FixedFormat& format) noexcept;

/// Inverse of quantize (exact).
[[nodiscard]] double dequantize(std::uint32_t raw, const FixedFormat& format) noexcept;

/// Signed (two's complement) quantisation for the kSignedFixed
/// extension.  The format keeps the same frac_bits() as its unsigned
/// reading; the top bit becomes the sign, so the representable range
/// is [-2^(int_bits-1)... exactly: raw in [-2^(V-1), 2^(V-1) - 1]
/// scaled by 2^-frac_bits.  Values are clamped to that range and
/// rounded to nearest; the low total_bits of the two's complement
/// representation are returned.
[[nodiscard]] std::uint32_t quantize_signed(double value,
                                            const FixedFormat& format) noexcept;

/// Inverse of quantize_signed (exact): sign-extends the low
/// total_bits and scales.
[[nodiscard]] double dequantize_signed(std::uint32_t raw,
                                       const FixedFormat& format) noexcept;

/// Sign-extends the low `bits` bits of `raw` to a 64-bit integer.
[[nodiscard]] constexpr std::int64_t sign_extend(std::uint32_t raw,
                                                 int bits) noexcept {
  const std::uint64_t value = raw & (bits >= 32 ? 0xFFFFFFFFu
                                                : ((std::uint32_t{1} << bits) - 1));
  const std::uint64_t sign_bit = std::uint64_t{1} << (bits - 1);
  return static_cast<std::int64_t>((value ^ sign_bit)) -
         static_cast<std::int64_t>(sign_bit);
}

/// Wide accumulator with kAccFracBits fractional bits, mimicking the
/// datapath's aggregation registers.  The raw value is an unsigned
/// 64-bit integer; all arithmetic is exact modulo the initial product
/// shift.
class FixedAccumulator {
 public:
  constexpr FixedAccumulator() noexcept = default;

  /// Accumulates the product of a matrix value (raw in `val_format`)
  /// and a vector value (raw Q1.31).  The 64-bit product is shifted
  /// down to kAccFracBits fractional bits with truncation, exactly as
  /// a hardware right-shift would.
  constexpr void add_product(std::uint32_t val_raw, int val_frac_bits,
                             std::uint32_t vec_raw) noexcept {
    const std::uint64_t product =
        static_cast<std::uint64_t>(val_raw) * static_cast<std::uint64_t>(vec_raw);
    const int shift = val_frac_bits + kVectorFracBits - kAccFracBits;
    // shift >= 0 whenever val_frac_bits >= 9; formats with fewer
    // fractional bits shift left instead (still exact).
    raw_ += shift >= 0 ? (product >> shift) : (product << -shift);
  }

  constexpr void add(const FixedAccumulator& other) noexcept { raw_ += other.raw_; }
  constexpr void reset() noexcept { raw_ = 0; }

  [[nodiscard]] constexpr std::uint64_t raw() const noexcept { return raw_; }
  [[nodiscard]] double to_double() const noexcept;

  friend constexpr auto operator<=>(const FixedAccumulator&,
                                    const FixedAccumulator&) = default;

 private:
  std::uint64_t raw_ = 0;
};

/// Compile-time unsigned fixed point Q(IntBits).(TotalBits-IntBits).
/// Addition and multiplication saturate at the representable maximum,
/// matching Vitis HLS ap_ufixed<.., AP_RND, AP_SAT> behaviour for the
/// configurations the paper uses.
template <int TotalBits, int IntBits = 1>
class UFixed {
  static_assert(TotalBits >= 2 && TotalBits <= 32, "TotalBits must be in [2, 32]");
  static_assert(IntBits >= 0 && IntBits < TotalBits, "IntBits must be in [0, TotalBits)");

 public:
  static constexpr int kTotalBits = TotalBits;
  static constexpr int kIntBits = IntBits;
  static constexpr int kFracBits = TotalBits - IntBits;

  constexpr UFixed() noexcept = default;

  [[nodiscard]] static constexpr FixedFormat format() noexcept {
    return FixedFormat{TotalBits, IntBits};
  }

  [[nodiscard]] static UFixed from_double(double value) noexcept {
    return from_raw(quantize(value, format()));
  }

  [[nodiscard]] static constexpr UFixed from_raw(std::uint32_t raw) noexcept {
    UFixed out;
    out.raw_ = raw & mask();
    return out;
  }

  [[nodiscard]] constexpr std::uint32_t raw() const noexcept { return raw_; }

  [[nodiscard]] double to_double() const noexcept {
    return dequantize(raw_, format());
  }

  /// Saturating addition.
  friend constexpr UFixed operator+(UFixed a, UFixed b) noexcept {
    const std::uint64_t sum =
        static_cast<std::uint64_t>(a.raw_) + static_cast<std::uint64_t>(b.raw_);
    return from_raw(sum > mask() ? mask() : static_cast<std::uint32_t>(sum));
  }

  /// Saturating multiplication with truncation of low bits (hardware
  /// multiplier followed by a right shift).
  friend constexpr UFixed operator*(UFixed a, UFixed b) noexcept {
    const std::uint64_t product =
        static_cast<std::uint64_t>(a.raw_) * static_cast<std::uint64_t>(b.raw_);
    const std::uint64_t shifted = product >> kFracBits;
    return from_raw(shifted > mask() ? mask() : static_cast<std::uint32_t>(shifted));
  }

  friend constexpr auto operator<=>(UFixed a, UFixed b) noexcept {
    return a.raw_ <=> b.raw_;
  }
  friend constexpr bool operator==(UFixed, UFixed) noexcept = default;

 private:
  [[nodiscard]] static constexpr std::uint32_t mask() noexcept {
    return TotalBits >= 32 ? 0xFFFFFFFFu : ((std::uint32_t{1} << TotalBits) - 1);
  }

  std::uint32_t raw_ = 0;
};

/// The three fixed-point formats evaluated in the paper (Table II).
inline constexpr FixedFormat kQ1_19{20, 1};
inline constexpr FixedFormat kQ1_24{25, 1};
inline constexpr FixedFormat kQ1_31{32, 1};

}  // namespace topk::fixed
