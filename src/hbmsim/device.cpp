#include "hbmsim/device.hpp"

#include <stdexcept>

namespace topk::hbmsim {

DeviceSimulator::DeviceSimulator(const sparse::Csr& matrix,
                                 const core::DesignConfig& design,
                                 BoardProfile board,
                                 const TimingOptions& timing_options)
    : board_(std::move(board)),
      timing_options_(timing_options),
      accelerator_(matrix, design),
      source_nnz_(matrix.nnz()) {
  validate(board_);
  if (design.cores > board_.hbm.channels) {
    throw std::invalid_argument(
        "DeviceSimulator: design needs more channels than " + board_.name +
        " provides");
  }
  const ResourceUsage usage =
      estimate_resources(design, accelerator_.layout());
  if (!fits_device(usage, board_.resources)) {
    throw std::invalid_argument("DeviceSimulator: design does not fit " +
                                board_.name + "'s fabric");
  }

  // Bind each core stream to its pseudo-channel and check HBM
  // capacity.  The paper's topology is the identity binding; capacity
  // is checked per channel (HBM pseudo-channels are fixed-size slices,
  // capacity/channels each).
  const std::uint64_t per_channel_capacity =
      board_.hbm.capacity_bytes / static_cast<std::uint64_t>(board_.hbm.channels);
  const auto& partitions = accelerator_.partitions();
  const auto& streams = accelerator_.core_streams();
  bindings_.reserve(streams.size());
  for (std::size_t i = 0; i < streams.size(); ++i) {
    ChannelBinding binding;
    binding.channel = static_cast<int>(i);
    binding.row_begin = partitions[i].row_begin;
    binding.row_end = partitions[i].row_end;
    binding.image_bytes = streams[i].stream_bytes();
    if (binding.image_bytes > per_channel_capacity) {
      throw std::invalid_argument(
          "DeviceSimulator: core " + std::to_string(i) +
          "'s image exceeds its pseudo-channel slice of " + board_.name);
    }
    bindings_.push_back(binding);
  }
}

DeviceQueryResult DeviceSimulator::query(std::span<const float> x, int top_k,
                                         int host_threads) {
  core::QueryOptions options;
  options.threads = host_threads;
  DeviceQueryResult out;
  out.result = accelerator_.query(x, top_k, options);
  out.timing = estimate_query_time(
      accelerator_.config(), accelerator_.layout(),
      out.result.stats.max_core_packets, source_nnz_, board_.hbm,
      timing_options_);

  ++counters_.queries;
  counters_.bytes_streamed +=
      out.result.stats.total_packets *
      static_cast<std::uint64_t>(accelerator_.layout().bytes_per_packet());
  counters_.busy_seconds += out.timing.seconds;
  counters_.rows_dropped += out.result.stats.rows_dropped;
  return out;
}

std::uint64_t DeviceSimulator::image_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const ChannelBinding& binding : bindings_) {
    total += binding.image_bytes;
  }
  return total;
}

double DeviceSimulator::hbm_utilization() const noexcept {
  return static_cast<double>(image_bytes()) /
         static_cast<double>(board_.hbm.capacity_bytes);
}

double DeviceSimulator::average_throughput() const noexcept {
  if (counters_.busy_seconds <= 0.0) {
    return 0.0;
  }
  return static_cast<double>(counters_.queries) *
         static_cast<double>(source_nnz_) / counters_.busy_seconds;
}

}  // namespace topk::hbmsim
