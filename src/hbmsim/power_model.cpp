#include "hbmsim/power_model.hpp"

#include <stdexcept>

#include "hbmsim/resource_model.hpp"

namespace topk::hbmsim {

namespace {
constexpr double kHostPowerW = 40.0;
constexpr double kCpuPowerW = 300.0;  // includes the host (dual-socket server)
constexpr double kGpuPowerW = 250.0;
}  // namespace

PowerProfile fpga_power(const core::DesignConfig& design,
                        const core::PacketLayout& layout) {
  const ResourceUsage usage = estimate_resources(design, layout);
  return PowerProfile{usage.power_w, kHostPowerW};
}

PowerProfile cpu_power() { return PowerProfile{kCpuPowerW, 0.0}; }

PowerProfile gpu_power() { return PowerProfile{kGpuPowerW, kHostPowerW}; }

double performance_per_watt(double throughput, const PowerProfile& profile,
                            bool include_host) {
  const double watts = include_host ? profile.total_w() : profile.device_w;
  if (watts <= 0.0) {
    throw std::invalid_argument("performance_per_watt: non-positive power");
  }
  return throughput / watts;
}

}  // namespace topk::hbmsim
