// Design-space exploration: adaptive precision and parallelism
// selection (paper section VI, future work).
//
// The paper's conclusion proposes "adaptive compressed matrix
// representations by reconfiguring the FPGA in terms of numerical
// precision to guarantee desired targets of accuracy or performance".
// This module composes the three calibrated models — precision
// (Eq. 1), timing (clock/II/bandwidth) and resources (Table II) — to
// enumerate the (V, k, r, cores) design space for a given workload and
// pick operating points:
//
//   * recommend_fastest(goal, board): minimum modelled latency subject
//     to a precision floor and board feasibility;
//   * recommend_cheapest(goal, board): minimum modelled power subject
//     to the same constraints (the "smaller cards" scenario);
//   * pareto_front(points): latency/precision-optimal subset.
#pragma once

#include <cstdint>
#include <vector>

#include "core/design.hpp"
#include "core/packet_layout.hpp"
#include "hbmsim/boards.hpp"
#include "hbmsim/timing_model.hpp"

namespace topk::hbmsim {

/// The workload a design is being selected for.
struct WorkloadGoal {
  std::uint64_t rows = 10'000'000;  ///< N
  std::uint32_t cols = 1024;        ///< M
  std::uint64_t nnz = 200'000'000;  ///< total non-zeros
  int top_k = 100;                  ///< K requested at query time
  /// Floor on the expected Top-K precision (Eq. 1 model).
  double min_precision = 0.99;
  /// Floor on value resolution: require V >= this many bits (guards
  /// against quantisation error, which Eq. 1 does not model).
  int min_value_bits = 10;
};

/// One evaluated configuration.
struct OperatingPoint {
  core::DesignConfig design;
  core::PacketLayout layout;
  double expected_precision = 0.0;  ///< Eq. 1 model at goal.top_k
  double modelled_seconds = 0.0;    ///< timing model for goal.nnz
  double modelled_power_w = 0.0;    ///< resource-model board power
  bool fits = false;                ///< resources fit the board
  bool meets_precision = false;     ///< precision >= goal floor

  [[nodiscard]] bool feasible() const noexcept {
    return fits && meets_precision;
  }
};

/// Validates a goal; throws std::invalid_argument on zero sizes,
/// precision outside (0, 1], or min_value_bits outside [2, 32].
void validate(const WorkloadGoal& goal);

/// Evaluates a single configuration against a goal/board.
[[nodiscard]] OperatingPoint evaluate_design(const core::DesignConfig& design,
                                             const WorkloadGoal& goal,
                                             const BoardProfile& board);

/// Enumerates the default grid: V in {8,12,16,20,25,32} (>= the
/// goal's floor), k in {4, 8, 16}, cores in {8, 16, channels}, float32
/// included; r fixed at 8.  Returns every point (feasible or not) so
/// callers can inspect the whole space.
[[nodiscard]] std::vector<OperatingPoint> enumerate_design_space(
    const WorkloadGoal& goal, const BoardProfile& board);

/// Fastest feasible point.  Throws std::runtime_error if no point in
/// the enumerated space satisfies the goal on this board.
[[nodiscard]] OperatingPoint recommend_fastest(const WorkloadGoal& goal,
                                               const BoardProfile& board);

/// Lowest-power feasible point that is at most `slowdown_budget` times
/// slower than the fastest feasible point.  Throws std::runtime_error
/// if nothing is feasible.
[[nodiscard]] OperatingPoint recommend_cheapest(const WorkloadGoal& goal,
                                                const BoardProfile& board,
                                                double slowdown_budget = 1.5);

/// Latency/precision Pareto-optimal subset of `points` (feasible-fit
/// points only), sorted by ascending latency.
[[nodiscard]] std::vector<OperatingPoint> pareto_front(
    std::vector<OperatingPoint> points);

}  // namespace topk::hbmsim
