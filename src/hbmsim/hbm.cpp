#include "hbmsim/hbm.hpp"

#include <stdexcept>

namespace topk::hbmsim {

void validate(const HbmConfig& config) {
  if (config.channels <= 0) {
    throw std::invalid_argument("HbmConfig: channels must be positive");
  }
  if (config.peak_channel_gbps <= 0.0 || config.streaming_channel_gbps <= 0.0) {
    throw std::invalid_argument("HbmConfig: bandwidths must be positive");
  }
  if (config.streaming_channel_gbps > config.peak_channel_gbps) {
    throw std::invalid_argument("HbmConfig: streaming bandwidth exceeds peak");
  }
  if (config.measured_efficiency <= 0.0 || config.measured_efficiency > 1.0) {
    throw std::invalid_argument("HbmConfig: efficiency must be in (0, 1]");
  }
  if (config.capacity_bytes == 0) {
    throw std::invalid_argument("HbmConfig: capacity must be positive");
  }
}

HbmConfig alveo_u280() { return HbmConfig{}; }

}  // namespace topk::hbmsim
