// FPGA resource model calibrated to Table II of the paper.
//
// Synthesis is not available offline, so resource usage is modelled.
// For the paper's four evaluated designs (20/25/32-bit fixed and
// float32, 32 cores, k=8) the model returns the exact Table II
// figures; for any other configuration it extrapolates with analytic
// per-core cost formulas anchored on those calibration points:
//
//  * URAM: each core stores ceil(B/2) replicas of x (two read ports
//    per URAM bank, B random reads per cycle — section IV-A) plus a
//    fixed two-bank buffer.  This formula alone reproduces Table II's
//    33/30/27/26% within one bank.
//  * DSP:  one MAC lane per packet slot; lanes cost 1 DSP up to 20-bit
//    values, 2 up to 27 bits (the DSP48E2 27x18 multiplier), 4 at 32
//    bits, and ~5 for float32, plus a shared shell.
//  * LUT/FF: decode + aggregation logic scales with B * bits_per_entry
//    (nearly constant across the fixed designs, which is why Table II
//    shows flat LUT%), the Top-K unit with k * r, plus the shell.
//  * BRAM: shell-dominated (constant 20% in Table II) plus per-core
//    stream FIFOs.
#pragma once

#include "core/design.hpp"
#include "core/packet_layout.hpp"

namespace topk::hbmsim {

/// Absolute resource counts.
struct ResourceUsage {
  double lut = 0.0;
  double ff = 0.0;
  double bram = 0.0;
  double uram = 0.0;
  double dsp = 0.0;
  double clock_mhz = 0.0;
  double power_w = 0.0;  ///< board power during execution
};

/// Device totals for the xcu280-fsvh2892-2L-e (Table II last row).
struct DeviceResources {
  double lut = 1'097'419;
  double ff = 2'180'971;
  double bram = 1'812;
  double uram = 960;
  double dsp = 9'020;
};

/// Fractional utilisation of `usage` on `device`, each in [0, 1+).
struct ResourceFractions {
  double lut = 0.0;
  double ff = 0.0;
  double bram = 0.0;
  double uram = 0.0;
  double dsp = 0.0;
};

[[nodiscard]] ResourceFractions fractions(const ResourceUsage& usage,
                                          const DeviceResources& device = {});

/// Estimates resource usage for a design (see file comment).  The
/// packet layout supplies B and the per-entry bit widths.  Throws
/// std::invalid_argument on invalid configs.
[[nodiscard]] ResourceUsage estimate_resources(const core::DesignConfig& design,
                                               const core::PacketLayout& layout);

/// True if the design fits the device (all fractions <= 1).
[[nodiscard]] bool fits_device(const ResourceUsage& usage,
                               const DeviceResources& device = {});

}  // namespace topk::hbmsim
