#include "hbmsim/resource_model.hpp"

#include <cmath>

#include "hbmsim/timing_model.hpp"

namespace topk::hbmsim {

namespace {

/// Table II calibration rows: utilisation fractions for the four
/// evaluated designs (32 cores, k = 8).
struct CalibrationRow {
  core::ValueKind kind;
  int value_bits;
  double lut_frac;
  double ff_frac;
  double bram_frac;
  double uram_frac;
  double dsp_frac;
  double clock_mhz;
  double power_w;
};
constexpr CalibrationRow kTableII[] = {
    {core::ValueKind::kFixed, 20, 0.38, 0.35, 0.20, 0.33, 0.07, 253.0, 34.0},
    {core::ValueKind::kFixed, 25, 0.38, 0.36, 0.20, 0.30, 0.11, 240.0, 35.0},
    {core::ValueKind::kFixed, 32, 0.35, 0.33, 0.20, 0.27, 0.17, 249.0, 35.0},
    {core::ValueKind::kFloat32, 32, 0.44, 0.37, 0.20, 0.26, 0.19, 204.0, 45.0},
};

const CalibrationRow* find_calibration(const core::DesignConfig& design) {
  if (design.cores != 32 || design.k != 8 || design.packet_bits != 512) {
    return nullptr;
  }
  for (const CalibrationRow& row : kTableII) {
    if (row.kind == design.value_kind && row.value_bits == design.value_bits) {
      return &row;
    }
  }
  return nullptr;
}

/// DSPs consumed by one MAC lane as a function of value width (the
/// DSP48E2 natively multiplies 27x18; wider operands cascade).
double dsp_per_lane(const core::DesignConfig& design) {
  if (design.value_kind == core::ValueKind::kFloat32) {
    return 5.0;  // fp32 multiply (3) + accumulate (2)
  }
  if (design.value_bits <= 20) {
    return 1.0;
  }
  if (design.value_bits <= 27) {
    return 2.0;
  }
  return 4.0;
}

// Shell (HBM controllers, XDMA, clocking) baseline costs; roughly the
// static utilisation of a U280 Vitis target.
constexpr double kShellLut = 160'000;
constexpr double kShellFf = 320'000;
constexpr double kShellBram = 300;
constexpr double kShellDsp = 150;

}  // namespace

ResourceFractions fractions(const ResourceUsage& usage,
                            const DeviceResources& device) {
  ResourceFractions f;
  f.lut = usage.lut / device.lut;
  f.ff = usage.ff / device.ff;
  f.bram = usage.bram / device.bram;
  f.uram = usage.uram / device.uram;
  f.dsp = usage.dsp / device.dsp;
  return f;
}

ResourceUsage estimate_resources(const core::DesignConfig& design,
                                 const core::PacketLayout& layout) {
  core::validate(design);
  const DeviceResources device;

  if (const CalibrationRow* row = find_calibration(design)) {
    ResourceUsage usage;
    usage.lut = row->lut_frac * device.lut;
    usage.ff = row->ff_frac * device.ff;
    usage.bram = row->bram_frac * device.bram;
    usage.uram = row->uram_frac * device.uram;
    usage.dsp = row->dsp_frac * device.dsp;
    usage.clock_mhz = row->clock_mhz;
    usage.power_w = row->power_w;
    return usage;
  }

  const double b = layout.capacity;
  const double entry_bits = layout.bits_per_entry();
  const double cores = design.cores;
  const bool is_float = design.value_kind == core::ValueKind::kFloat32;

  ResourceUsage usage;
  // Decode/aggregation logic scales with the packet's payload bits;
  // the Top-K unit with k comparators over r candidate lanes; float
  // cores add soft-logic FP adders.
  const double lut_core = 1'500.0 + 11.0 * b * entry_bits +
                          25.0 * design.k * design.rows_per_packet +
                          (is_float ? 2'000.0 : 0.0);
  const double ff_core = 2'500.0 + 14.0 * b * entry_bits +
                         30.0 * design.k * design.rows_per_packet +
                         (is_float ? 1'200.0 : 0.0);
  usage.lut = kShellLut + cores * lut_core;
  usage.ff = kShellFf + cores * ff_core;
  usage.bram = kShellBram + cores * 2.0;
  usage.uram = cores * (std::ceil(b / 2.0) + 2.0);
  usage.dsp = kShellDsp + cores * b * dsp_per_lane(design);
  usage.clock_mhz = design_clock_hz(design) / 1e6;
  // Dynamic power grows with active cores and arithmetic width.
  usage.power_w = 22.0 + 0.35 * cores + (is_float ? 10.0 : 0.0) +
                  0.02 * design.value_bits;
  return usage;
}

bool fits_device(const ResourceUsage& usage, const DeviceResources& device) {
  const ResourceFractions f = fractions(usage, device);
  return f.lut <= 1.0 && f.ff <= 1.0 && f.bram <= 1.0 && f.uram <= 1.0 &&
         f.dsp <= 1.0;
}

}  // namespace topk::hbmsim
