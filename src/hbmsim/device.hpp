// Simulated accelerator device: the host-runtime view of the board.
//
// TopKAccelerator (core/) is the pure functional model: partitions,
// BS-CSR streams, bit-accurate queries.  DeviceSimulator wraps it with
// the board-level concerns a real deployment has to handle:
//
//   * admission: the encoded image must fit the board's HBM capacity
//     and the design must fit its fabric and channel count;
//   * channel binding: each core stream is assigned one pseudo-channel
//     (the paper's 1 core <-> 1 channel topology) and the per-channel
//     footprint is tracked;
//   * execution: every query returns the functional result together
//     with the modelled on-device latency, and the device accumulates
//     service counters (queries, bytes streamed, busy time).
//
// This is the API an application would integrate against; swapping the
// simulator for a real XRT-backed device would preserve it.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/accelerator.hpp"
#include "hbmsim/boards.hpp"
#include "hbmsim/resource_model.hpp"
#include "hbmsim/timing_model.hpp"

namespace topk::hbmsim {

/// One pseudo-channel's allocation.
struct ChannelBinding {
  int channel = 0;                 ///< HBM pseudo-channel index
  std::uint32_t row_begin = 0;     ///< partition rows served
  std::uint32_t row_end = 0;
  std::uint64_t image_bytes = 0;   ///< BS-CSR image resident on the channel
};

/// Functional result plus modelled execution profile of one query.
struct DeviceQueryResult {
  core::QueryResult result;
  TimingEstimate timing;
};

/// Lifetime service counters.
struct DeviceCounters {
  std::uint64_t queries = 0;
  std::uint64_t bytes_streamed = 0;   ///< total HBM read traffic
  double busy_seconds = 0.0;          ///< modelled device-busy time
  std::uint64_t rows_dropped = 0;
};

/// The simulated board with one loaded matrix.
class DeviceSimulator {
 public:
  /// Loads `matrix` onto `board` under `design`.  Throws
  /// std::invalid_argument if the design exceeds the board's channels
  /// or fabric, or the encoded image exceeds HBM capacity.
  DeviceSimulator(const sparse::Csr& matrix, const core::DesignConfig& design,
                  BoardProfile board = board_u280(),
                  const TimingOptions& timing_options = {});

  /// Executes one query: bit-accurate result + modelled latency.
  /// `host_threads` parallelises the functional simulation only (no
  /// effect on the modelled device time).
  [[nodiscard]] DeviceQueryResult query(std::span<const float> x, int top_k,
                                        int host_threads = 1);

  [[nodiscard]] const BoardProfile& board() const noexcept { return board_; }
  [[nodiscard]] const core::TopKAccelerator& accelerator() const noexcept {
    return accelerator_;
  }
  [[nodiscard]] const std::vector<ChannelBinding>& bindings() const noexcept {
    return bindings_;
  }
  [[nodiscard]] const DeviceCounters& counters() const noexcept {
    return counters_;
  }

  /// Total HBM bytes occupied by the loaded image.
  [[nodiscard]] std::uint64_t image_bytes() const noexcept;
  /// Fraction of HBM capacity in use.
  [[nodiscard]] double hbm_utilization() const noexcept;
  /// Modelled average throughput since load (nnz/s over busy time).
  [[nodiscard]] double average_throughput() const noexcept;

 private:
  BoardProfile board_;
  TimingOptions timing_options_;
  core::TopKAccelerator accelerator_;
  std::uint64_t source_nnz_ = 0;
  std::vector<ChannelBinding> bindings_;
  DeviceCounters counters_;
};

}  // namespace topk::hbmsim
