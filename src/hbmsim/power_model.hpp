// Power and performance-per-watt model (paper section V-B).
//
// Measured figures from the paper, via an external power meter:
//   FPGA board: 34-35 W fixed point, 45 W float32, plus 40 W host;
//   CPU (2x Xeon Gold 6248): ~300 W during execution (incl. host);
//   GPU (Tesla P100): ~250 W plus 40 W host.
// The headline claims reproduced by bench/fig5: the fixed-point FPGA
// design has ~400x the CPU's performance/W (speedup 100x, power ratio
// 300/75) and 14.2x the idealised GPU's (speedup 2x, 250/35 board-only;
// 7.7x with equal hosts).
#pragma once

#include "core/design.hpp"
#include "core/packet_layout.hpp"

namespace topk::hbmsim {

struct PowerProfile {
  double device_w = 0.0;  ///< accelerator board / CPU package power
  double host_w = 0.0;    ///< host server share

  [[nodiscard]] constexpr double total_w() const noexcept {
    return device_w + host_w;
  }
};

/// FPGA board power for a design (Table II column), plus the 40 W host.
[[nodiscard]] PowerProfile fpga_power(const core::DesignConfig& design,
                                      const core::PacketLayout& layout);

/// The paper's CPU baseline (host included in the 300 W figure).
[[nodiscard]] PowerProfile cpu_power();

/// The paper's GPU baseline (250 W board + 40 W host).
[[nodiscard]] PowerProfile gpu_power();

/// Performance/W given a throughput (any unit) and a profile; set
/// `include_host` to compare full systems rather than boards.
[[nodiscard]] double performance_per_watt(double throughput,
                                          const PowerProfile& profile,
                                          bool include_host);

}  // namespace topk::hbmsim
