#include "hbmsim/timing_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace topk::hbmsim {

namespace {

/// Table II clock anchors for the fixed-point designs at k = 8.
struct ClockAnchor {
  int value_bits;
  double mhz;
};
constexpr ClockAnchor kFixedAnchors[] = {{20, 253.0}, {25, 240.0}, {32, 249.0}};
constexpr double kFloatClockMhz = 204.0;

/// Clock derating per unit of k beyond the paper's k = 8 (longer
/// argmin comparison chain; section IV-B reports that higher k lowers
/// the clock).
constexpr double kClockPenaltyPerK = 0.03;

double fixed_clock_mhz(int value_bits) {
  if (value_bits <= kFixedAnchors[0].value_bits) {
    return kFixedAnchors[0].mhz;
  }
  for (std::size_t i = 1; i < std::size(kFixedAnchors); ++i) {
    if (value_bits <= kFixedAnchors[i].value_bits) {
      const auto& lo = kFixedAnchors[i - 1];
      const auto& hi = kFixedAnchors[i];
      const double t = static_cast<double>(value_bits - lo.value_bits) /
                       static_cast<double>(hi.value_bits - lo.value_bits);
      return lo.mhz + t * (hi.mhz - lo.mhz);
    }
  }
  return kFixedAnchors[std::size(kFixedAnchors) - 1].mhz;
}

}  // namespace

double design_clock_hz(const core::DesignConfig& design) {
  core::validate(design);
  const double base_mhz = design.value_kind == core::ValueKind::kFloat32
                              ? kFloatClockMhz
                              : fixed_clock_mhz(design.value_bits);
  const int extra_k = std::max(0, design.k - 8);
  const double derate = 1.0 + kClockPenaltyPerK * static_cast<double>(extra_k);
  return base_mhz * 1e6 / derate;
}

double initiation_interval(const core::DesignConfig& design) {
  return design.value_kind == core::ValueKind::kFloat32 ? 3.0 : 1.0;
}

TimingEstimate estimate_query_time(const core::DesignConfig& design,
                                   const core::PacketLayout& layout,
                                   std::uint64_t max_core_packets,
                                   std::uint64_t source_nnz,
                                   const HbmConfig& hbm,
                                   const TimingOptions& options) {
  core::validate(design);
  validate(hbm);
  if (options.fixed_overhead_s < 0.0) {
    throw std::invalid_argument("TimingOptions: negative overhead");
  }
  if (design.cores > hbm.channels) {
    throw std::invalid_argument(
        "estimate_query_time: design uses more cores than HBM channels");
  }

  TimingEstimate estimate;
  estimate.clock_hz = design_clock_hz(design);
  estimate.initiation_interval = initiation_interval(design);

  const double packet_bytes = layout.bytes_per_packet();
  const double compute_rate = estimate.clock_hz / estimate.initiation_interval;
  const double bandwidth_rate =
      hbm.effective_channel_bytes_per_s() / packet_bytes;
  estimate.packets_per_second_per_core = std::min(compute_rate, bandwidth_rate);
  estimate.bandwidth_bound = bandwidth_rate <= compute_rate;

  estimate.seconds =
      static_cast<double>(max_core_packets) /
          estimate.packets_per_second_per_core +
      options.fixed_overhead_s;
  estimate.nnz_per_second =
      estimate.seconds > 0.0 ? static_cast<double>(source_nnz) / estimate.seconds
                             : 0.0;
  estimate.effective_bandwidth_bytes_per_s =
      estimate.packets_per_second_per_core * packet_bytes * design.cores;
  return estimate;
}

TimingEstimate estimate_query_time(const core::TopKAccelerator& accelerator,
                                   std::uint64_t source_nnz, const HbmConfig& hbm,
                                   const TimingOptions& options) {
  return estimate_query_time(accelerator.config(), accelerator.layout(),
                             accelerator.max_core_packets(), source_nnz, hbm,
                             options);
}

}  // namespace topk::hbmsim
