// Analytic timing model for the multi-core FPGA design.
//
// There is no FPGA in this environment, so wall-clock execution time
// is modelled instead of measured (DESIGN.md, substitution table).
// The model applies the paper's own performance equation — each core
// processes one B-non-zero packet per initiation interval at the
// design clock, bounded by its HBM channel's effective bandwidth
// (section IV-C: "our hardware design processes c*B non-zeros per
// clock cycle") — to the *real* packet counts produced by the BS-CSR
// encoder, plus a fixed host/launch overhead.
//
// Calibration anchors, all from the paper:
//  * clock frequencies per design from Table II (253/240/249/204 MHz);
//  * fixed-point pipelines run at II = 1; the float32 design's
//    accumulation loop has a RAW dependence on the float adder, and
//    II = 3 reproduces Figure 5's F32-vs-20b ratio (43x vs 106x);
//  * the channel efficiency in HbmConfig reproduces the measured
//    "57 billion non-zeros per second" for the 32-core 20-bit design.
#pragma once

#include "core/accelerator.hpp"
#include "core/design.hpp"
#include "core/packet_layout.hpp"
#include "hbmsim/hbm.hpp"

namespace topk::hbmsim {

/// Modelled execution profile of one query.
struct TimingEstimate {
  double clock_hz = 0.0;
  double initiation_interval = 1.0;
  double packets_per_second_per_core = 0.0;  ///< min(clock/II, bw/packet)
  double seconds = 0.0;                      ///< end-to-end latency
  double nnz_per_second = 0.0;               ///< source nnz / seconds
  double effective_bandwidth_bytes_per_s = 0.0;
  bool bandwidth_bound = false;  ///< channel (not clock) limited
};

/// Tunable non-paper constants of the model.
struct TimingOptions {
  /// Host-side launch + result-readback overhead per query, seconds.
  double fixed_overhead_s = 100e-6;
};

/// Design clock in Hz: Table II anchors for k = 8 (20b: 253 MHz,
/// 25b: 240 MHz, 32b: 249 MHz, float32: 204 MHz), piecewise-linear in
/// V between anchors, and derated for k > 8 (deeper argmin comparator
/// chains lower the achievable clock, section IV-B).
[[nodiscard]] double design_clock_hz(const core::DesignConfig& design);

/// Pipeline initiation interval: 1 for fixed point, 3 for float32
/// (floating-point accumulator RAW dependence).
[[nodiscard]] double initiation_interval(const core::DesignConfig& design);

/// Models the latency of streaming `max_core_packets` packets per core
/// (the busiest core bounds the device) plus overhead.  `source_nnz`
/// only feeds the reported throughput.  Throws std::invalid_argument
/// on invalid configs.
[[nodiscard]] TimingEstimate estimate_query_time(
    const core::DesignConfig& design, const core::PacketLayout& layout,
    std::uint64_t max_core_packets, std::uint64_t source_nnz,
    const HbmConfig& hbm = alveo_u280(), const TimingOptions& options = {});

/// Convenience overload pulling layout/packet counts from a built
/// accelerator.
[[nodiscard]] TimingEstimate estimate_query_time(
    const core::TopKAccelerator& accelerator, std::uint64_t source_nnz,
    const HbmConfig& hbm = alveo_u280(), const TimingOptions& options = {});

}  // namespace topk::hbmsim
