// HBM2 subsystem model of the Xilinx Alveo U280 (paper section IV/V).
//
// The U280 exposes 8 GB of HBM2 through 32 pseudo-channels with a
// nominal aggregate bandwidth of 460 GB/s.  The paper's design gives
// each core a single pseudo-channel read in continuous 256-beat AXI4
// bursts of 512-bit packets.  Three bandwidth figures matter:
//
//  * peak:        460 / 32 = 14.375 GB/s per channel (datasheet);
//  * streaming:   13.2 GB/s per channel — the per-core ceiling the
//    paper itself uses for its roofline (Figure 6a: "1 core,
//    13.2 GB/s ... 32 cores, 422.4 GB/s");
//  * measured:    the paper's end-to-end 20-bit design sustains
//    "over 57 billion non-zeros per second", i.e. ~58% of the
//    streaming ceiling; `measured_efficiency` captures that gap
//    (controller/refresh/burst-turnaround overheads).
#pragma once

#include <cstdint>

namespace topk::hbmsim {

/// Static description of the HBM subsystem.
struct HbmConfig {
  int channels = 32;                    ///< pseudo-channels (U280)
  double peak_channel_gbps = 14.375;    ///< datasheet peak per channel
  double streaming_channel_gbps = 13.2; ///< sequential-burst ceiling (Fig. 6a)
  /// Fraction of the streaming ceiling the full design sustains
  /// end-to-end; calibrated to the paper's measured 57 Gnnz/s.
  double measured_efficiency = 0.58;
  std::uint64_t capacity_bytes = 8ULL << 30;  ///< 8 GB HBM2

  /// Effective bytes/second one core can stream from its channel.
  [[nodiscard]] double effective_channel_bytes_per_s() const noexcept {
    return streaming_channel_gbps * 1e9 * measured_efficiency;
  }
  /// Aggregate streaming-ceiling bandwidth for `cores` channels, bytes/s.
  [[nodiscard]] double streaming_bytes_per_s(int cores) const noexcept {
    return streaming_channel_gbps * 1e9 * cores;
  }
};

/// Validates an HbmConfig; throws std::invalid_argument on
/// non-positive channels/bandwidths or efficiency outside (0, 1].
void validate(const HbmConfig& config);

/// Returns the default U280 configuration used across the benches.
[[nodiscard]] HbmConfig alveo_u280();

}  // namespace topk::hbmsim
