#include "hbmsim/design_space.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/precision_model.hpp"
#include "hbmsim/resource_model.hpp"

namespace topk::hbmsim {

void validate(const WorkloadGoal& goal) {
  if (goal.rows == 0 || goal.cols == 0 || goal.nnz == 0) {
    throw std::invalid_argument("WorkloadGoal: sizes must be positive");
  }
  if (goal.top_k <= 0) {
    throw std::invalid_argument("WorkloadGoal: top_k must be positive");
  }
  if (goal.min_precision <= 0.0 || goal.min_precision > 1.0) {
    throw std::invalid_argument("WorkloadGoal: min_precision must be in (0, 1]");
  }
  if (goal.min_value_bits < 2 || goal.min_value_bits > 32) {
    throw std::invalid_argument("WorkloadGoal: min_value_bits out of range");
  }
}

OperatingPoint evaluate_design(const core::DesignConfig& design,
                               const WorkloadGoal& goal,
                               const BoardProfile& board) {
  validate(goal);
  core::validate(design);
  validate(board);

  OperatingPoint point;
  point.design = design;
  point.layout = core::PacketLayout::solve(goal.cols, design.value_bits);

  point.expected_precision = core::expected_precision_closed(
      goal.rows, design.cores, design.k, goal.top_k);
  point.meets_precision =
      point.expected_precision >= goal.min_precision &&
      static_cast<std::int64_t>(design.k) * design.cores >= goal.top_k;

  const ResourceUsage usage = estimate_resources(design, point.layout);
  // The resource model's power figure is calibrated on the U280; remap
  // its static share onto the target board's floor.
  const double dynamic_power_w =
      std::max(0.0, usage.power_w - board_u280().static_power_w);
  point.modelled_power_w = board.static_power_w + dynamic_power_w;
  point.fits = fits_device(usage, board.resources) &&
               point.modelled_power_w <= board.max_power_w &&
               design.cores <= board.hbm.channels;

  const std::uint64_t packets_per_core =
      goal.nnz /
          (static_cast<std::uint64_t>(design.cores) *
           static_cast<std::uint64_t>(point.layout.capacity)) +
      1;
  point.modelled_seconds =
      estimate_query_time(design, point.layout, packets_per_core, goal.nnz,
                          board.hbm)
          .seconds;
  return point;
}

std::vector<OperatingPoint> enumerate_design_space(const WorkloadGoal& goal,
                                                   const BoardProfile& board) {
  validate(goal);
  validate(board);

  std::vector<OperatingPoint> points;
  const int core_options[] = {8, 16, board.hbm.channels};
  for (const int value_bits : {8, 12, 16, 20, 25, 32}) {
    if (value_bits < goal.min_value_bits) {
      continue;
    }
    for (const int k : {4, 8, 16}) {
      for (const int cores : core_options) {
        if (static_cast<std::uint64_t>(cores) > goal.rows) {
          continue;
        }
        core::DesignConfig design = core::DesignConfig::fixed(value_bits, cores);
        design.k = k;
        points.push_back(evaluate_design(design, goal, board));
        if (value_bits == 32) {
          core::DesignConfig float_design = core::DesignConfig::float32(cores);
          float_design.k = k;
          points.push_back(evaluate_design(float_design, goal, board));
        }
      }
    }
  }
  return points;
}

namespace {

std::vector<OperatingPoint> feasible_points(const WorkloadGoal& goal,
                                            const BoardProfile& board) {
  std::vector<OperatingPoint> points = enumerate_design_space(goal, board);
  std::erase_if(points, [](const OperatingPoint& p) { return !p.feasible(); });
  if (points.empty()) {
    throw std::runtime_error(
        "design_space: no feasible operating point for this goal on " +
        board.name);
  }
  return points;
}

}  // namespace

OperatingPoint recommend_fastest(const WorkloadGoal& goal,
                                 const BoardProfile& board) {
  std::vector<OperatingPoint> points = feasible_points(goal, board);
  return *std::min_element(points.begin(), points.end(),
                           [](const OperatingPoint& a, const OperatingPoint& b) {
                             return a.modelled_seconds < b.modelled_seconds;
                           });
}

OperatingPoint recommend_cheapest(const WorkloadGoal& goal,
                                  const BoardProfile& board,
                                  double slowdown_budget) {
  if (slowdown_budget < 1.0) {
    throw std::invalid_argument(
        "recommend_cheapest: slowdown_budget must be >= 1");
  }
  std::vector<OperatingPoint> points = feasible_points(goal, board);
  const double fastest =
      std::min_element(points.begin(), points.end(),
                       [](const OperatingPoint& a, const OperatingPoint& b) {
                         return a.modelled_seconds < b.modelled_seconds;
                       })
          ->modelled_seconds;
  std::erase_if(points, [&](const OperatingPoint& p) {
    return p.modelled_seconds > fastest * slowdown_budget;
  });
  return *std::min_element(points.begin(), points.end(),
                           [](const OperatingPoint& a, const OperatingPoint& b) {
                             if (a.modelled_power_w != b.modelled_power_w) {
                               return a.modelled_power_w < b.modelled_power_w;
                             }
                             return a.modelled_seconds < b.modelled_seconds;
                           });
}

std::vector<OperatingPoint> pareto_front(std::vector<OperatingPoint> points) {
  std::erase_if(points, [](const OperatingPoint& p) { return !p.fits; });
  std::sort(points.begin(), points.end(),
            [](const OperatingPoint& a, const OperatingPoint& b) {
              if (a.modelled_seconds != b.modelled_seconds) {
                return a.modelled_seconds < b.modelled_seconds;
              }
              return a.expected_precision > b.expected_precision;
            });
  std::vector<OperatingPoint> front;
  double best_precision = -1.0;
  for (const OperatingPoint& point : points) {
    if (point.expected_precision > best_precision) {
      front.push_back(point);
      best_precision = point.expected_precision;
    }
  }
  return front;
}

}  // namespace topk::hbmsim
