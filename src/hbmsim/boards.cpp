#include "hbmsim/boards.hpp"

#include <stdexcept>

namespace topk::hbmsim {

BoardProfile board_u280() {
  BoardProfile board;
  board.name = "Alveo U280";
  board.hbm = alveo_u280();
  board.resources = DeviceResources{};
  board.static_power_w = 20.0;
  board.max_power_w = 225.0;
  return board;
}

BoardProfile board_u50() {
  BoardProfile board;
  board.name = "Alveo U50";
  board.hbm = alveo_u280();
  // 316 GB/s aggregate over 32 pseudo-channels; streaming ceiling
  // scaled by the same peak/streaming ratio as the U280.
  board.hbm.peak_channel_gbps = 316.0 / 32.0;
  board.hbm.streaming_channel_gbps = board.hbm.peak_channel_gbps * (13.2 / 14.375);
  // xcu50 fabric: ~872k LUT, 1743k FF, 1344 BRAM, 640 URAM, 5952 DSP.
  board.resources.lut = 872'000;
  board.resources.ff = 1'743'000;
  board.resources.bram = 1'344;
  board.resources.uram = 640;
  board.resources.dsp = 5'952;
  board.static_power_w = 15.0;
  board.max_power_w = 75.0;
  return board;
}

BoardProfile board_u55c() {
  BoardProfile board;
  board.name = "Alveo U55C";
  board.hbm = alveo_u280();
  board.hbm.capacity_bytes = 16ULL << 30;
  // xcu55c fabric is U280-class.
  board.resources.lut = 1'303'680;
  board.resources.ff = 2'607'360;
  board.resources.bram = 2'016;
  board.resources.uram = 960;
  board.resources.dsp = 9'024;
  board.static_power_w = 18.0;
  board.max_power_w = 150.0;
  return board;
}

std::vector<BoardProfile> all_boards() {
  return {board_u280(), board_u50(), board_u55c()};
}

void validate(const BoardProfile& board) {
  validate(board.hbm);
  if (board.name.empty()) {
    throw std::invalid_argument("BoardProfile: empty name");
  }
  if (board.resources.lut <= 0 || board.resources.ff <= 0 ||
      board.resources.bram <= 0 || board.resources.uram <= 0 ||
      board.resources.dsp <= 0) {
    throw std::invalid_argument("BoardProfile: resource totals must be positive");
  }
  if (board.static_power_w < 0 || board.max_power_w <= board.static_power_w) {
    throw std::invalid_argument("BoardProfile: inconsistent power envelope");
  }
}

int max_cores_on_board(const core::DesignConfig& design,
                       const core::PacketLayout& layout,
                       const BoardProfile& board) {
  validate(board);
  // Binary-search-free scan: core counts are tiny (<= channels).
  int best = 0;
  for (int cores = 1; cores <= board.hbm.channels; ++cores) {
    core::DesignConfig candidate = design;
    candidate.cores = cores;
    const ResourceUsage usage = estimate_resources(candidate, layout);
    if (fits_device(usage, board.resources)) {
      best = cores;
    } else {
      break;  // usage is monotone in cores
    }
  }
  if (best == 0) {
    throw std::invalid_argument(
        "max_cores_on_board: a single core does not fit " + board.name);
  }
  return best;
}

}  // namespace topk::hbmsim
