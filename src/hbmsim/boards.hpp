// FPGA accelerator board profiles (paper section VI, future work).
//
// The paper's conclusion proposes deploying the design on smaller
// HBM-equipped cards: "with similar memory bandwidth, the computation
// can be cheaper and even more power-efficient, with no performance
// loss".  A BoardProfile bundles the HBM subsystem, the device
// resources and a power baseline so the timing/resource models can be
// evaluated per board; bench/ablation_boards sweeps them.
//
// Figures are from the public Xilinx/AMD data sheets:
//   * Alveo U280: 8 GB HBM2, 460 GB/s over 32 pseudo-channels,
//     xcu280 fabric (the paper's board);
//   * Alveo U50:  8 GB HBM2, 316 GB/s over 32 pseudo-channels, a
//     smaller xcu50 fabric and a 75 W low-profile form factor;
//   * Alveo U55C: 16 GB HBM2, 460 GB/s over 32 pseudo-channels, a
//     fabric comparable to the U280 in a 150 W card.
#pragma once

#include <string>
#include <vector>

#include "hbmsim/hbm.hpp"
#include "hbmsim/resource_model.hpp"

namespace topk::hbmsim {

/// A deployable accelerator card.
struct BoardProfile {
  std::string name;
  HbmConfig hbm;
  DeviceResources resources;
  /// Shell/static power floor of the card in watts (subtracted from
  /// the paper's measured 34-45 W budget when retargeting designs).
  double static_power_w = 0.0;
  /// Card thermal design power, watts (feasibility ceiling).
  double max_power_w = 0.0;

  friend bool operator==(const BoardProfile&, const BoardProfile&) = default;
};

/// The paper's board (Table II fabric, 460 GB/s HBM2).
[[nodiscard]] BoardProfile board_u280();

/// Alveo U50: same channel count, ~69% of the bandwidth, smaller
/// fabric, 75 W form factor.
[[nodiscard]] BoardProfile board_u50();

/// Alveo U55C: U280-class bandwidth with 16 GB HBM2.
[[nodiscard]] BoardProfile board_u55c();

/// All built-in profiles, U280 first.
[[nodiscard]] std::vector<BoardProfile> all_boards();

/// Validates a profile (delegates to the HBM validator, checks
/// resource totals and power bounds).  Throws std::invalid_argument.
void validate(const BoardProfile& board);

/// Largest core count deployable on `board` for `design`'s per-core
/// footprint: limited by HBM channels and by every resource class.
/// Throws std::invalid_argument if even one core does not fit.
[[nodiscard]] int max_cores_on_board(const core::DesignConfig& design,
                                     const core::PacketLayout& layout,
                                     const BoardProfile& board);

}  // namespace topk::hbmsim
