// Concrete SimilarityIndex adapters — one per execution strategy the
// paper compares:
//
//   FpgaSimIndex   the multi-core approximate FPGA design (owns a
//                  core::TopKAccelerator; approximate, modelled device
//                  time via hbmsim);
//   CpuHeapIndex   the multi-threaded CSR min-heap CPU baseline
//                  (sparse_dot_topn-style; exact, doubles as ground
//                  truth);
//   ExactSortIndex the "full SpMV then sort" strategy section II
//                  argues against (exact, O(N log N));
//   GpuModelIndex  the Tesla P100 baseline: functional F16 emulation
//                  for accuracy + the analytic bandwidth model for
//                  timing;
//   CpuSimdIndex   the vectorized host kernel (runtime AVX-512 / AVX2
//                  / scalar dispatch, simd/topk_simd.hpp): exact in
//                  its default screen+rescore mode, approximate in the
//                  binary16 screen-only mode ("cpu-simd-f16").
//
// All adapters share the collection through shared_ptr<const Csr>, so
// several backends over the same matrix cost one copy — the setup of
// every cross-backend bench and test.
#pragma once

#include <memory>
#include <string>

#include "baselines/gpu_model.hpp"
#include "core/accelerator.hpp"
#include "core/design.hpp"
#include "index/similarity_index.hpp"
#include "simd/blocked_csr.hpp"
#include "sparse/csr.hpp"

namespace topk::index {

/// Backend construction parameters.  Only the fields a given backend
/// reads are consumed; the rest are ignored (a "gpu-f16" index does
/// not care about the FPGA design).
struct IndexOptions {
  /// FPGA design for "fpga-sim" (Table II default: 20-bit, 32 cores).
  core::DesignConfig design = core::DesignConfig::fixed(20);
  /// Analytic timing model for "gpu-f16".
  baselines::GpuPerfModel gpu_model;
  /// Shard count for the "sharded-*" backends (clamped to the row
  /// count so tiny collections still construct).  The inner backends
  /// consume the other fields, e.g. every fpga-sim shard gets
  /// `design`.
  int shards = 4;
  /// Shard planning for "sharded-*": nnz-balanced row boundaries
  /// (default) or an even row split when false.
  bool nnz_balanced_shards = true;
  /// Replicas per shard for the "sharded-*" backends (clamped to at
  /// least 1).  Cold builds construct each replica through the
  /// registry; deployment warm loads (deployment_dir) load the same
  /// digest-verified images this many times, so the replicas are
  /// byte-identical by construction.  Queries route to one replica per
  /// (query, shard) cell and fail over to the others on error.
  int replicas = 1;
  /// Warm restart for the "sharded-*" backends: when non-empty, the
  /// factory loads the persisted deployment at this directory (see
  /// persist/deployment.hpp) instead of encoding the matrix — the
  /// matrix argument may then be null.  The deployment's recorded
  /// label must match the requested backend name; serving a
  /// deployment saved under a different inner backend is rejected
  /// with std::runtime_error.  The "mutable-sharded-*" factories
  /// accept deployments labelled with their sealed-base name
  /// ("sharded-<inner>") and adopt the manifest's generation and
  /// tombstone set.
  std::string deployment_dir;
  /// For the "mutable-sharded-*" backends: live delta rows beyond
  /// which insert_row throws (backpressure towards compaction); 0 =
  /// unbounded.
  std::uint64_t delta_capacity = 0;
  /// For the "mutable-sharded-*" backends: mutations since the last
  /// seal at which persist::Compactor::maybe_compact() fires; 0 =
  /// compact only on explicit request.
  std::uint64_t compact_threshold = 0;
};

/// The paper's accelerator behind the unified interface.
class FpgaSimIndex final : public SimilarityIndex {
 public:
  /// Builds the device image from the matrix.  Throws like
  /// core::TopKAccelerator.
  FpgaSimIndex(std::shared_ptr<const sparse::Csr> matrix,
               const core::DesignConfig& design);

  /// Adopts an already-built accelerator (shares ownership), e.g. one
  /// whose streams were loaded from a persisted device image.
  explicit FpgaSimIndex(std::shared_ptr<const core::TopKAccelerator> accelerator);

  [[nodiscard]] QueryResult query(std::span<const float> x, int top_k,
                                  const QueryOptions& options = {}) const override;
  [[nodiscard]] std::uint32_t rows() const noexcept override;
  [[nodiscard]] std::uint32_t cols() const noexcept override;
  [[nodiscard]] IndexDescription describe() const override;
  /// The FPGA merge can surface at most k * cores candidates.
  [[nodiscard]] int max_top_k() const noexcept override;

  [[nodiscard]] const core::TopKAccelerator& accelerator() const noexcept {
    return *accelerator_;
  }

 private:
  std::shared_ptr<const core::TopKAccelerator> accelerator_;
  std::uint64_t source_nnz_ = 0;
  /// Cached analytic device latency — a function of the immutable
  /// design/layout/packet counts only, so computed once.
  double modelled_seconds_ = 0.0;
};

/// Multi-threaded exact CPU baseline (per-thread min-heaps over row
/// ranges, merged).  options.threads controls the intra-query fan-out.
class CpuHeapIndex final : public SimilarityIndex {
 public:
  explicit CpuHeapIndex(std::shared_ptr<const sparse::Csr> matrix);

  [[nodiscard]] QueryResult query(std::span<const float> x, int top_k,
                                  const QueryOptions& options = {}) const override;
  [[nodiscard]] std::uint32_t rows() const noexcept override;
  [[nodiscard]] std::uint32_t cols() const noexcept override;
  [[nodiscard]] IndexDescription describe() const override;

  [[nodiscard]] const sparse::Csr& matrix() const noexcept { return *matrix_; }
  [[nodiscard]] const sparse::Csr* host_csr() const noexcept override {
    return matrix_.get();
  }

 private:
  std::shared_ptr<const sparse::Csr> matrix_;
};

/// Exact reference: full y = A*x then partial sort.  Single-threaded;
/// options.threads is ignored.
class ExactSortIndex final : public SimilarityIndex {
 public:
  explicit ExactSortIndex(std::shared_ptr<const sparse::Csr> matrix);

  [[nodiscard]] QueryResult query(std::span<const float> x, int top_k,
                                  const QueryOptions& options = {}) const override;
  [[nodiscard]] std::uint32_t rows() const noexcept override;
  [[nodiscard]] std::uint32_t cols() const noexcept override;
  [[nodiscard]] IndexDescription describe() const override;

  [[nodiscard]] const sparse::Csr& matrix() const noexcept { return *matrix_; }
  [[nodiscard]] const sparse::Csr* host_csr() const noexcept override {
    return matrix_.get();
  }

 private:
  std::shared_ptr<const sparse::Csr> matrix_;
};

/// GPU F16 baseline: bit-faithful binary16 SpMV emulation for the
/// entries, analytic P100 times in the stats extension.
class GpuModelIndex final : public SimilarityIndex {
 public:
  /// Throws std::invalid_argument on invalid model constants.
  GpuModelIndex(std::shared_ptr<const sparse::Csr> matrix,
                const baselines::GpuPerfModel& model = {});

  [[nodiscard]] QueryResult query(std::span<const float> x, int top_k,
                                  const QueryOptions& options = {}) const override;
  [[nodiscard]] std::uint32_t rows() const noexcept override;
  [[nodiscard]] std::uint32_t cols() const noexcept override;
  [[nodiscard]] IndexDescription describe() const override;

  [[nodiscard]] const baselines::GpuPerfModel& perf_model() const noexcept {
    return model_;
  }

  [[nodiscard]] const sparse::Csr& matrix() const noexcept { return *matrix_; }
  [[nodiscard]] const sparse::Csr* host_csr() const noexcept override {
    return matrix_.get();
  }

 private:
  std::shared_ptr<const sparse::Csr> matrix_;
  baselines::GpuPerfModel model_;
};

/// Vectorized host kernel behind the unified interface.  kExact runs
/// the two-phase screen/rescore (bit-identical to cpu-heap); kHalfScreen
/// serves the f32-scan-over-binary16-values approximation as
/// "cpu-simd-f16" (recall-floor gated like gpu-f16).  The ISA level is
/// picked per process by util::cpu_features; SimdStats on each result
/// records the level and rescore count.
class CpuSimdIndex final : public SimilarityIndex {
 public:
  enum class Mode { kExact, kHalfScreen };

  /// Builds the screening layout (strategy auto-picked by block
  /// occupancy; see simd::LayoutOptions).  Throws like
  /// simd::BlockedCsr::build.
  explicit CpuSimdIndex(std::shared_ptr<const sparse::Csr> matrix,
                        Mode mode = Mode::kExact);

  [[nodiscard]] QueryResult query(std::span<const float> x, int top_k,
                                  const QueryOptions& options = {}) const override;
  [[nodiscard]] std::uint32_t rows() const noexcept override;
  [[nodiscard]] std::uint32_t cols() const noexcept override;
  [[nodiscard]] IndexDescription describe() const override;

  [[nodiscard]] Mode mode() const noexcept { return mode_; }
  [[nodiscard]] const simd::BlockedCsr& layout() const noexcept {
    return layout_;
  }
  [[nodiscard]] const sparse::Csr* host_csr() const noexcept override {
    return layout_.shared_source().get();
  }

 private:
  simd::BlockedCsr layout_;
  Mode mode_ = Mode::kExact;
};

}  // namespace topk::index
