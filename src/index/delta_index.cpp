#include "index/delta_index.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "telemetry/metrics.hpp"

namespace topk::index {

namespace {

// Process-wide aggregates over every delta tier; the per-instance view
// stays delta_rows()/tombstones()/mutations() on the index itself.
telemetry::Counter& scans_metric() {
  static telemetry::Counter& c = telemetry::registry().counter(
      "topk_delta_scans_total", {}, "Delta-tier scans served to queries.");
  return c;
}

telemetry::Counter& masked_rows_metric() {
  static telemetry::Counter& c = telemetry::registry().counter(
      "topk_delta_masked_rows_total", {},
      "Base rows hidden from sealed shards across delta scans.");
  return c;
}

telemetry::Counter& mutations_metric() {
  static telemetry::Counter& c = telemetry::registry().counter(
      "topk_delta_mutations_total", {},
      "Mutations accepted by a delta tier (appends, upserts, deletes).");
  return c;
}

telemetry::Gauge& delta_rows_metric() {
  static telemetry::Gauge& g = telemetry::registry().gauge(
      "topk_delta_rows", {},
      "Live delta rows of the most recently mutated delta tier.");
  return g;
}

telemetry::Gauge& tombstones_metric() {
  static telemetry::Gauge& g = telemetry::registry().gauge(
      "topk_delta_tombstones", {},
      "Deleted rows of the most recently mutated delta tier.");
  return g;
}

}  // namespace

DeltaIndex::DeltaIndex(std::uint32_t base_rows, std::uint32_t cols,
                       std::uint64_t capacity)
    : base_rows_(base_rows), cols_(cols), capacity_(capacity),
      next_id_(base_rows) {
  if (cols_ == 0) {
    throw std::invalid_argument("DeltaIndex: zero columns");
  }
}

DeltaIndex::DeltaIndex(std::uint32_t base_rows, std::uint32_t next_id,
                       std::uint32_t cols, std::uint64_t capacity,
                       std::vector<std::uint32_t> inherited,
                       std::map<std::uint32_t, DeltaVersion> versions,
                       std::uint64_t next_seq)
    : base_rows_(base_rows), cols_(cols), capacity_(capacity),
      next_id_(next_id), next_seq_(next_seq),
      versions_(std::move(versions)), inherited_(std::move(inherited)) {
  if (cols_ == 0) {
    throw std::invalid_argument("DeltaIndex: zero columns");
  }
  if (next_id_ < base_rows_) {
    throw std::invalid_argument("DeltaIndex: next_id below base_rows");
  }
  if (!std::is_sorted(inherited_.begin(), inherited_.end())) {
    throw std::invalid_argument("DeltaIndex: inherited tombstones unsorted");
  }
  if (!inherited_.empty() && inherited_.back() >= base_rows_) {
    throw std::invalid_argument(
        "DeltaIndex: inherited tombstone outside the base");
  }
  for (const auto& [id, version] : versions_) {
    if (id >= next_id_) {
      throw std::invalid_argument("DeltaIndex: version id beyond next_id");
    }
    if (version.seq > next_seq_) {
      throw std::invalid_argument("DeltaIndex: version seq beyond next_seq");
    }
  }
  // Each residual version is one unfolded change the next compaction
  // must pick up; the counter makes "anything to fold?" a single read.
  mutations_ = versions_.size();
  for (const std::uint32_t id : inherited_) {
    if (!versions_.contains(id)) {
      ++deleted_;
    }
  }
  for (const auto& [id, version] : versions_) {
    if (version.tombstone) {
      ++deleted_;
    }
  }
}

bool DeltaIndex::is_deleted_locked(std::uint32_t row) const {
  const auto it = versions_.find(row);
  if (it != versions_.end()) {
    return it->second.tombstone;
  }
  return std::binary_search(inherited_.begin(), inherited_.end(), row);
}

void DeltaIndex::store_row_locked(std::uint32_t row,
                                  std::span<const std::uint32_t> columns,
                                  std::span<const float> values) {
  if (columns.size() != values.size()) {
    throw std::invalid_argument(
        "DeltaIndex: column/value counts differ (" +
        std::to_string(columns.size()) + " vs " +
        std::to_string(values.size()) + ")");
  }
  DeltaVersion version;
  version.columns.assign(columns.begin(), columns.end());
  version.values.assign(values.begin(), values.end());
  // Canonical CSR row order (ascending columns, no duplicates): the
  // scan accumulates in this order, which is exactly what a cold
  // rebuild through Csr::from_coo would do — the bit-identicality
  // invariant hangs on it.
  std::vector<std::size_t> order(version.columns.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return version.columns[a] < version.columns[b];
  });
  DeltaVersion sorted;
  sorted.columns.reserve(order.size());
  sorted.values.reserve(order.size());
  for (const std::size_t i : order) {
    if (version.columns[i] >= cols_) {
      throw std::invalid_argument("DeltaIndex: column " +
                                  std::to_string(version.columns[i]) +
                                  " outside [0, " + std::to_string(cols_) + ")");
    }
    if (!sorted.columns.empty() && sorted.columns.back() == version.columns[i]) {
      throw std::invalid_argument("DeltaIndex: duplicate column " +
                                  std::to_string(version.columns[i]) +
                                  " in inserted row");
    }
    sorted.columns.push_back(version.columns[i]);
    sorted.values.push_back(version.values[i]);
  }
  const bool was_live = row < next_id_ && !is_deleted_locked(row);
  const auto it = versions_.find(row);
  const bool replaces_delta_row =
      it != versions_.end() && !it->second.tombstone;
  if (!replaces_delta_row && capacity_ > 0 && delta_rows_locked() >= capacity_) {
    throw std::runtime_error(
        "DeltaIndex: delta at capacity (" + std::to_string(capacity_) +
        " rows) — compact before inserting more");
  }
  sorted.seq = ++next_seq_;
  ++mutations_;
  if (!was_live && row < next_id_) {
    --deleted_;  // revived
  }
  versions_.insert_or_assign(it == versions_.end() ? versions_.begin() : it,
                             row, std::move(sorted));
  if (row == next_id_) {
    ++next_id_;
  }
}

std::uint32_t DeltaIndex::append_row(std::span<const std::uint32_t> columns,
                                     std::span<const float> values) {
  util::WriterLock lock(mutex_);
  const std::uint32_t id = next_id_;
  store_row_locked(id, columns, values);
  mutations_metric().inc();
  delta_rows_metric().set(static_cast<double>(delta_rows_locked()));
  return id;
}

void DeltaIndex::upsert_row(std::uint32_t row,
                            std::span<const std::uint32_t> columns,
                            std::span<const float> values) {
  util::WriterLock lock(mutex_);
  if (row > next_id_) {
    throw std::invalid_argument("DeltaIndex: upsert at row " +
                                std::to_string(row) + " beyond the id space [0, " +
                                std::to_string(next_id_) + "]");
  }
  store_row_locked(row, columns, values);
  mutations_metric().inc();
  delta_rows_metric().set(static_cast<double>(delta_rows_locked()));
}

bool DeltaIndex::delete_row(std::uint32_t row) {
  util::WriterLock lock(mutex_);
  if (row >= next_id_) {
    throw std::invalid_argument("DeltaIndex: delete of nonexistent row " +
                                std::to_string(row) + " (rows: " +
                                std::to_string(next_id_) + ")");
  }
  if (is_deleted_locked(row)) {
    return false;
  }
  DeltaVersion tombstone;
  tombstone.tombstone = true;
  tombstone.seq = ++next_seq_;
  ++mutations_;
  ++deleted_;
  versions_.insert_or_assign(row, std::move(tombstone));
  mutations_metric().inc();
  tombstones_metric().set(static_cast<double>(deleted_));
  return true;
}

DeltaIndex::Scan DeltaIndex::scan(std::span<const float> x, int top_k) const {
  util::ReaderLock lock(mutex_);
  Scan out;
  // Mask = inherited ∪ {version ids < base_rows}: both lists are
  // sorted (std::map iterates ascending), so a linear merge dedupes.
  auto inherited_it = inherited_.begin();
  const auto push_masked = [&](std::uint32_t id) {
    if (out.masked.empty() || out.masked.back() != id) {
      out.masked.push_back(id);
    }
  };
  std::vector<core::TopKEntry> scored;
  scored.reserve(versions_.size());
  for (const auto& [id, version] : versions_) {
    if (id < base_rows_) {
      while (inherited_it != inherited_.end() && *inherited_it < id) {
        push_masked(*inherited_it++);
      }
      push_masked(id);
    }
    if (version.tombstone) {
      continue;
    }
    double acc = 0.0;
    for (std::size_t i = 0; i < version.columns.size(); ++i) {
      acc += static_cast<double>(version.values[i]) *
             static_cast<double>(x[version.columns[i]]);
    }
    scored.push_back(core::TopKEntry{id, acc});
  }
  while (inherited_it != inherited_.end()) {
    push_masked(*inherited_it++);
  }
  out.scanned = scored.size();
  scans_metric().inc();
  masked_rows_metric().add(static_cast<std::uint64_t>(out.masked.size()));
  const auto cut = std::min<std::size_t>(
      scored.size(), static_cast<std::size_t>(std::max(top_k, 0)));
  std::partial_sort(scored.begin(), scored.begin() + static_cast<std::ptrdiff_t>(cut),
                    scored.end(), core::TopKEntryOrder{});
  scored.resize(cut);
  out.entries = std::move(scored);
  return out;
}

QueryResult DeltaIndex::query(std::span<const float> x, int top_k,
                              const QueryOptions& /*options*/) const {
  validate_query(x, top_k);
  Scan scanned = scan(x, top_k);
  QueryResult result;
  result.entries = std::move(scanned.entries);
  result.stats.rows_scanned = scanned.scanned;
  return result;
}

std::uint32_t DeltaIndex::rows() const noexcept {
  util::ReaderLock lock(mutex_);
  return next_id_;
}

std::uint32_t DeltaIndex::cols() const noexcept { return cols_; }

IndexDescription DeltaIndex::describe() const {
  util::ReaderLock lock(mutex_);
  IndexDescription description;
  description.backend = "delta";
  description.detail = "in-memory delta tier: " +
                       std::to_string(versions_.size()) + " versions over " +
                       std::to_string(base_rows_) + " base rows, exact scan";
  description.exact = true;
  description.rows = next_id_;
  description.cols = cols_;
  std::uint64_t bytes = 0;
  for (const auto& [id, version] : versions_) {
    bytes += version.columns.size() * 4 + version.values.size() * 4;
  }
  description.memory_bytes = bytes;
  return description;
}

std::uint64_t DeltaIndex::live_rows() const {
  util::ReaderLock lock(mutex_);
  return static_cast<std::uint64_t>(next_id_) - deleted_;
}

std::uint64_t DeltaIndex::delta_rows() const {
  // The lockless predecessor of this method raced stats readers
  // (delta_stats()/describe() walking versions_) against concurrent
  // mutations rebalancing the map — the annotation migration flagged
  // it, and tests/test_mutable.cpp's ConcurrentDeltaStats TSan stress
  // is the regression.
  util::ReaderLock lock(mutex_);
  return delta_rows_locked();
}

std::uint64_t DeltaIndex::delta_rows_locked() const {
  std::uint64_t live_versions = 0;
  for (const auto& [id, version] : versions_) {
    if (!version.tombstone) {
      ++live_versions;
    }
  }
  return live_versions;
}

std::uint64_t DeltaIndex::tombstones() const {
  util::ReaderLock lock(mutex_);
  return deleted_;
}

std::uint64_t DeltaIndex::superseded() const {
  util::ReaderLock lock(mutex_);
  std::uint64_t count = 0;
  for (const auto& [id, version] : versions_) {
    if (id < base_rows_ && !version.tombstone) {
      ++count;
    }
  }
  return count;
}

std::uint64_t DeltaIndex::mutations() const {
  util::ReaderLock lock(mutex_);
  return mutations_;
}

DeltaIndex::Snapshot DeltaIndex::snapshot() const {
  util::ReaderLock lock(mutex_);
  Snapshot out;
  out.base_rows = base_rows_;
  out.next_id = next_id_;
  out.seq = next_seq_;
  out.versions.assign(versions_.begin(), versions_.end());
  out.inherited = inherited_;
  return out;
}

}  // namespace topk::index
