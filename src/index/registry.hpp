// String-keyed backend registry and factory for SimilarityIndex.
//
// Benches and examples select execution strategies from the command
// line ("--backend=cpu-heap"); the registry turns those names into
// live indexes without the call site naming a concrete type.  The
// built-in backends register themselves on first use:
//
//   "fpga-sim"    FpgaSimIndex   (options.design)
//   "cpu-heap"    CpuHeapIndex
//   "exact-sort"  ExactSortIndex
//   "gpu-f16"     GpuModelIndex  (options.gpu_model)
//
// plus a "sharded-<name>" scatter-gather variant of each
// (shard::ShardedIndex over options.shards row-range shards; see
// src/shard/) and a "mutable-sharded-<name>" LSM variant
// (shard::MutableShardedIndex — the sealed tier plus an in-memory
// delta absorbing insert_row/delete_row; see
// shard/mutable_sharded_index.hpp and persist/compactor.hpp).  New
// backends (an ANN structure, a remote stub) register with
// register_backend() and immediately show up in every registry-driven
// bench loop.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "index/backends.hpp"
#include "index/similarity_index.hpp"
#include "sparse/csr.hpp"

namespace topk::index {

/// Constructs one backend over a shared collection.
using IndexFactory = std::function<std::shared_ptr<SimilarityIndex>(
    std::shared_ptr<const sparse::Csr>, const IndexOptions&)>;

/// Registers a backend under `name`.  Throws std::invalid_argument on
/// an empty name, a null factory, or a name already registered
/// (built-ins included).  Thread-safe.
void register_backend(const std::string& name, IndexFactory factory);

/// All registered backend names, sorted.  Always contains the four
/// built-ins and their sharded-* variants.
[[nodiscard]] std::vector<std::string> registered_backends();

/// True when `name` is a registered backend.
[[nodiscard]] bool has_backend(std::string_view name);

/// Builds the named backend over the shared collection.  Throws
/// std::invalid_argument for unknown names (the message lists the
/// registered ones) or a null matrix — except that the sharded-*
/// factories accept a null matrix when options.deployment_dir names a
/// persisted deployment to warm-load instead.
[[nodiscard]] std::shared_ptr<SimilarityIndex> make_index(
    std::string_view name, std::shared_ptr<const sparse::Csr> matrix,
    const IndexOptions& options = {});

/// Convenience overload copying the matrix into shared ownership —
/// for call sites that hand the collection off entirely.  Prefer the
/// shared_ptr overload when several backends index the same matrix.
[[nodiscard]] std::shared_ptr<SimilarityIndex> make_index(
    std::string_view name, const sparse::Csr& matrix,
    const IndexOptions& options = {});

/// Fluent construction when the options outgrow a brace-init list:
///
///   auto fpga = IndexBuilder()
///                   .backend("fpga-sim")
///                   .matrix(csr)
///                   .design(core::DesignConfig::fixed(25, 16))
///                   .build();
class IndexBuilder {
 public:
  IndexBuilder& backend(std::string name);
  IndexBuilder& matrix(std::shared_ptr<const sparse::Csr> matrix);
  /// Copies (or moves) the matrix into shared ownership.
  IndexBuilder& matrix(sparse::Csr matrix);
  IndexBuilder& design(const core::DesignConfig& design);
  IndexBuilder& gpu_model(const baselines::GpuPerfModel& model);
  /// Shard count / planning policy for the "sharded-*" backends.
  IndexBuilder& shards(int count);
  IndexBuilder& nnz_balanced_shards(bool balanced);
  /// Replicas per shard for the "sharded-*" backends (failover +
  /// load-balanced routing; see shard/sharded_index.hpp).
  IndexBuilder& replicas(int count);
  /// Warm-load a "sharded-*" backend from a persisted deployment
  /// directory (see persist/deployment.hpp); no matrix required.
  IndexBuilder& deployment_dir(std::string dir);
  /// Delta-row bound of the "mutable-sharded-*" backends (0 =
  /// unbounded); inserts throw once the delta holds this many live
  /// rows.
  IndexBuilder& delta_capacity(std::uint64_t rows);
  /// Mutation count at which persist::Compactor::maybe_compact()
  /// fires for the "mutable-sharded-*" backends (0 = manual only).
  IndexBuilder& compact_threshold(std::uint64_t mutations);

  /// Throws std::invalid_argument if no matrix was set or the backend
  /// is unknown.
  [[nodiscard]] std::shared_ptr<SimilarityIndex> build() const;

 private:
  std::string backend_ = "fpga-sim";
  std::shared_ptr<const sparse::Csr> matrix_;
  IndexOptions options_;
};

}  // namespace topk::index
