// In-memory delta tier of a mutable index: the LSM memtable.
//
// A DeltaIndex absorbs insert_row/delete_row mutations under a
// shared-mutex (concurrent queries take the lock shared, mutations
// exclusive) and serves them by brute-force exact scan — double
// accumulation in ascending-column order, the same arithmetic as
// sparse::Csr::row_dot, so a delta row scores bit-identically to the
// same row in a cold-rebuilt CSR matrix.  It stores at most one
// version per global row id (an upsert replaces, a delete tombstones),
// plus the inherited tombstone set: ids whose deletion a previous
// compaction folded into the sealed base as empty rows, which must
// stay masked forever (an empty live row legitimately scores 0.0; a
// deleted one must never serve at all).
//
// scan() is the query-path entry: the top-k live delta rows (global
// ids, repo-wide topk_entry_before order) plus the sorted set of base
// ids the sealed tier must mask (tombstoned, inherited, or superseded
// by a delta version) — exactly the two inputs
// shard::ShardedIndex::query_with_delta merges through the k-way
// gather.  snapshot() gives the compactor a consistent copy to fold
// off the serving path; every version carries a sequence number so the
// swap can split off the residual mutations that arrived while the
// fold ran.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "index/similarity_index.hpp"
#include "util/sync.hpp"

namespace topk::index {

/// One row mutation: the latest version of a global row id.
struct DeltaVersion {
  /// Mutation sequence number within the current generation (1-based;
  /// the compaction watermark splits folded from residual versions).
  std::uint64_t seq = 0;
  bool tombstone = false;
  /// Sorted unique column indices and their values (empty for a
  /// tombstone).
  std::vector<std::uint32_t> columns;
  std::vector<float> values;
};

/// Mutable in-memory row store over the id space [0, next_id), where
/// ids below base_rows belong to the sealed base.  Thread-safe.
class DeltaIndex final : public SimilarityIndex {
 public:
  /// Consistent copy of the whole delta — the compactor's fold input.
  struct Snapshot {
    std::uint32_t base_rows = 0;
    std::uint32_t next_id = 0;
    /// Watermark: every version in this snapshot has seq <= seq.
    std::uint64_t seq = 0;
    /// (id, version) ascending by id.
    std::vector<std::pair<std::uint32_t, DeltaVersion>> versions;
    /// Inherited tombstones (sorted): deletions already folded into
    /// the base as empty rows.
    std::vector<std::uint32_t> inherited;
  };

  /// Query-path snapshot: what the gather merges with the sealed base.
  struct Scan {
    /// Top-k live delta rows by exact score, global ids, sorted by
    /// core::topk_entry_before.
    std::vector<core::TopKEntry> entries;
    /// Sorted base ids (< base_rows) the sealed tier must not serve:
    /// tombstoned, inherited, or superseded by a delta version.
    std::vector<std::uint32_t> masked;
    /// Live delta rows scored by this scan.
    std::uint64_t scanned = 0;
  };

  /// An empty delta over a sealed base of `base_rows` rows (gen-0
  /// shape).  `capacity` bounds the live delta rows (inserts beyond it
  /// throw — backpressure towards compaction); 0 means unbounded.
  DeltaIndex(std::uint32_t base_rows, std::uint32_t cols,
             std::uint64_t capacity);

  /// Post-compaction shape: the id space already extends to `next_id`
  /// >= base_rows, `inherited` (sorted) carries the folded deletions,
  /// and `versions` the residual mutations that arrived while the fold
  /// ran (their seq values are preserved; `next_seq` continues the
  /// generation's mutation clock).  Throws std::invalid_argument on an
  /// out-of-range id or unsorted inherited list.
  DeltaIndex(std::uint32_t base_rows, std::uint32_t next_id,
             std::uint32_t cols, std::uint64_t capacity,
             std::vector<std::uint32_t> inherited,
             std::map<std::uint32_t, DeltaVersion> versions,
             std::uint64_t next_seq);

  // ---- mutations (exclusive lock) ----

  /// Appends at id = next_id and returns it.  Validation as in
  /// MutableIndex::insert_row.
  std::uint32_t append_row(std::span<const std::uint32_t> columns,
                           std::span<const float> values);

  /// Upserts at `row` <= next_id (== next_id appends); revives a
  /// deleted id.
  void upsert_row(std::uint32_t row, std::span<const std::uint32_t> columns,
                  std::span<const float> values);

  /// Tombstones a live row; false if already deleted.  Throws
  /// std::invalid_argument for row >= next_id.
  bool delete_row(std::uint32_t row);

  // ---- query path (shared lock) ----

  [[nodiscard]] Scan scan(std::span<const float> x, int top_k) const;

  /// SimilarityIndex surface: brute-force exact top-k over the live
  /// delta rows alone.  Entries carry GLOBAL row ids (the delta has no
  /// private id space); rows() is the id high-water mark next_id.
  [[nodiscard]] QueryResult query(std::span<const float> x, int top_k,
                                  const QueryOptions& options = {}) const override;
  [[nodiscard]] std::uint32_t rows() const noexcept override;
  [[nodiscard]] std::uint32_t cols() const noexcept override;
  [[nodiscard]] IndexDescription describe() const override;

  // ---- counters (shared lock) ----

  [[nodiscard]] std::uint32_t base_rows() const noexcept { return base_rows_; }
  /// Live rows of the whole mutable index: next_id minus deleted ids.
  [[nodiscard]] std::uint64_t live_rows() const;
  /// Live row versions held here (what a compaction folds).
  [[nodiscard]] std::uint64_t delta_rows() const;
  /// Currently deleted ids (tombstone versions + unrevived inherited).
  [[nodiscard]] std::uint64_t tombstones() const;
  /// Base ids hidden because a newer version lives here.
  [[nodiscard]] std::uint64_t superseded() const;
  /// Mutations absorbed since this delta was installed.
  [[nodiscard]] std::uint64_t mutations() const;
  [[nodiscard]] std::uint64_t capacity() const noexcept { return capacity_; }

  /// Consistent copy for the compactor (shared lock; the pause this
  /// copy imposes on concurrent mutations is the memtable-freeze cost
  /// bench_mutability reports).
  [[nodiscard]] Snapshot snapshot() const;

 private:
  /// True when `row` serves no result (tombstoned or inherited and not
  /// revived).
  [[nodiscard]] bool is_deleted_locked(std::uint32_t row) const
      TOPK_REQUIRES_SHARED(mutex_);
  /// Validates and canonicalises one inserted row (sort by column,
  /// reject duplicates/out-of-range), then stores it.
  void store_row_locked(std::uint32_t row,
                        std::span<const std::uint32_t> columns,
                        std::span<const float> values) TOPK_REQUIRES(mutex_);
  /// Lock-held core of delta_rows(), shared with store_row_locked's
  /// capacity check (shared_mutex is not recursive, so the public
  /// method locks and this one assumes).
  [[nodiscard]] std::uint64_t delta_rows_locked() const
      TOPK_REQUIRES_SHARED(mutex_);

  const std::uint32_t base_rows_;
  const std::uint32_t cols_;
  const std::uint64_t capacity_;

  mutable util::SharedMutex mutex_;
  std::uint32_t next_id_ TOPK_GUARDED_BY(mutex_);
  std::uint64_t next_seq_ TOPK_GUARDED_BY(mutex_) = 0;
  std::uint64_t mutations_ TOPK_GUARDED_BY(mutex_) = 0;
  /// cached tombstones() value
  std::uint64_t deleted_ TOPK_GUARDED_BY(mutex_) = 0;
  std::map<std::uint32_t, DeltaVersion> versions_ TOPK_GUARDED_BY(mutex_);
  std::vector<std::uint32_t> inherited_ TOPK_GUARDED_BY(mutex_);  ///< sorted
};

}  // namespace topk::index
