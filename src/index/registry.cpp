#include "index/registry.hpp"

#include <map>
#include <stdexcept>
#include <utility>

#include "util/sync.hpp"

namespace topk::index {

namespace {

struct Registry {
  util::Mutex mutex;
  std::map<std::string, IndexFactory, std::less<>> factories
      TOPK_GUARDED_BY(mutex);
};

/// Function-local static seeded with the built-ins: no static-init
/// order hazards, and the four paper backends are always present.
Registry& registry() {
  static Registry instance;
  static const bool seeded = [] {
    Registry& r = instance;
    // The magic-static guard already serialises seeding against every
    // other registry() caller; the lock is for the analysis (and free —
    // uncontended by construction).
    util::MutexLock lock(r.mutex);
    r.factories.emplace(
        "fpga-sim",
        [](std::shared_ptr<const sparse::Csr> matrix,
           const IndexOptions& options) -> std::shared_ptr<SimilarityIndex> {
          return std::make_shared<FpgaSimIndex>(std::move(matrix),
                                                options.design);
        });
    r.factories.emplace(
        "cpu-heap",
        [](std::shared_ptr<const sparse::Csr> matrix,
           const IndexOptions&) -> std::shared_ptr<SimilarityIndex> {
          return std::make_shared<CpuHeapIndex>(std::move(matrix));
        });
    r.factories.emplace(
        "exact-sort",
        [](std::shared_ptr<const sparse::Csr> matrix,
           const IndexOptions&) -> std::shared_ptr<SimilarityIndex> {
          return std::make_shared<ExactSortIndex>(std::move(matrix));
        });
    r.factories.emplace(
        "gpu-f16",
        [](std::shared_ptr<const sparse::Csr> matrix,
           const IndexOptions& options) -> std::shared_ptr<SimilarityIndex> {
          return std::make_shared<GpuModelIndex>(std::move(matrix),
                                                 options.gpu_model);
        });
    r.factories.emplace(
        "cpu-simd",
        [](std::shared_ptr<const sparse::Csr> matrix,
           const IndexOptions&) -> std::shared_ptr<SimilarityIndex> {
          return std::make_shared<CpuSimdIndex>(std::move(matrix),
                                                CpuSimdIndex::Mode::kExact);
        });
    r.factories.emplace(
        "cpu-simd-f16",
        [](std::shared_ptr<const sparse::Csr> matrix,
           const IndexOptions&) -> std::shared_ptr<SimilarityIndex> {
          return std::make_shared<CpuSimdIndex>(
              std::move(matrix), CpuSimdIndex::Mode::kHalfScreen);
        });
    return true;
  }();
  (void)seeded;
  return instance;
}

std::string known_backends_message(const Registry& r)
    TOPK_REQUIRES(r.mutex) {
  std::string message;
  for (const auto& [name, factory] : r.factories) {
    if (!message.empty()) {
      message += ", ";
    }
    message += name;
  }
  return message;
}

}  // namespace

void register_backend(const std::string& name, IndexFactory factory) {
  if (name.empty()) {
    throw std::invalid_argument("register_backend: empty name");
  }
  if (!factory) {
    throw std::invalid_argument("register_backend: null factory");
  }
  // Stage the node outside the lock so the publish itself is
  // allocation-free: std::map::merge splices the already-built node in
  // without allocating or copying, which keeps the exclusive section
  // noexcept-clean (tools/analyze.py -Wswap-noexcept audits this — a
  // bad_alloc mid-mutation would otherwise be able to tear the table
  // other threads read).
  std::map<std::string, IndexFactory, std::less<>> staged;
  staged.emplace(name, std::move(factory));
  Registry& r = registry();
  util::MutexLock lock(r.mutex);
  if (r.factories.find(name) != r.factories.end()) {
    throw std::invalid_argument("register_backend: '" + name +
                                "' already registered");
  }
  r.factories.merge(staged);
}

std::vector<std::string> registered_backends() {
  Registry& r = registry();
  util::MutexLock lock(r.mutex);
  std::vector<std::string> names;
  names.reserve(r.factories.size());
  for (const auto& [name, factory] : r.factories) {
    names.push_back(name);
  }
  return names;  // std::map iterates sorted
}

bool has_backend(std::string_view name) {
  Registry& r = registry();
  util::MutexLock lock(r.mutex);
  return r.factories.find(name) != r.factories.end();
}

std::shared_ptr<SimilarityIndex> make_index(
    std::string_view name, std::shared_ptr<const sparse::Csr> matrix,
    const IndexOptions& options) {
  IndexFactory factory;
  {
    Registry& r = registry();
    util::MutexLock lock(r.mutex);
    const auto it = r.factories.find(name);
    if (it == r.factories.end()) {
      throw std::invalid_argument("make_index: unknown backend '" +
                                  std::string(name) + "' (registered: " +
                                  known_backends_message(r) + ")");
    }
    factory = it->second;
  }
  // Construct outside the lock: building an FPGA image encodes the
  // whole matrix and must not serialise unrelated make_index calls.
  return factory(std::move(matrix), options);
}

std::shared_ptr<SimilarityIndex> make_index(std::string_view name,
                                            const sparse::Csr& matrix,
                                            const IndexOptions& options) {
  return make_index(name, std::make_shared<const sparse::Csr>(matrix), options);
}

IndexBuilder& IndexBuilder::backend(std::string name) {
  backend_ = std::move(name);
  return *this;
}

IndexBuilder& IndexBuilder::matrix(std::shared_ptr<const sparse::Csr> matrix) {
  matrix_ = std::move(matrix);
  return *this;
}

IndexBuilder& IndexBuilder::matrix(sparse::Csr matrix) {
  matrix_ = std::make_shared<const sparse::Csr>(std::move(matrix));
  return *this;
}

IndexBuilder& IndexBuilder::design(const core::DesignConfig& design) {
  options_.design = design;
  return *this;
}

IndexBuilder& IndexBuilder::gpu_model(const baselines::GpuPerfModel& model) {
  options_.gpu_model = model;
  return *this;
}

IndexBuilder& IndexBuilder::shards(int count) {
  options_.shards = count;
  return *this;
}

IndexBuilder& IndexBuilder::nnz_balanced_shards(bool balanced) {
  options_.nnz_balanced_shards = balanced;
  return *this;
}

IndexBuilder& IndexBuilder::replicas(int count) {
  options_.replicas = count;
  return *this;
}

IndexBuilder& IndexBuilder::deployment_dir(std::string dir) {
  options_.deployment_dir = std::move(dir);
  return *this;
}

IndexBuilder& IndexBuilder::delta_capacity(std::uint64_t rows) {
  options_.delta_capacity = rows;
  return *this;
}

IndexBuilder& IndexBuilder::compact_threshold(std::uint64_t mutations) {
  options_.compact_threshold = mutations;
  return *this;
}

std::shared_ptr<SimilarityIndex> IndexBuilder::build() const {
  // A warm-loading sharded backend reads its images, not a matrix.
  if (!matrix_ && options_.deployment_dir.empty()) {
    throw std::invalid_argument("IndexBuilder: no matrix set");
  }
  return make_index(backend_, matrix_, options_);
}

}  // namespace topk::index
